package qres

import (
	"fmt"
	"strings"

	"qres/internal/boolexpr"
	"qres/internal/obs"
	"qres/internal/resolve"
)

// Oracle verifies individual tuples: Probe must return whether the
// referenced tuple is correct. Implementations wrap domain experts, crowd
// platforms or trusted reference sources. An Oracle used with
// ResolveParallel must be safe for concurrent use.
type Oracle interface {
	Probe(ref TupleRef) (bool, error)
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(ref TupleRef) (bool, error)

// Probe implements Oracle.
func (f OracleFunc) Probe(ref TupleRef) (bool, error) { return f(ref) }

// options collects resolution settings; see the With* functions.
type options struct {
	cfg       resolve.Config
	known     []knownAnswer
	training  []trainingExample
	costs     []tupleCost
	sinks     []obs.Sink
	reg       *obs.Registry
	repo      *Repository
	strategy  string
	strandErr error
	parSet    bool
}

type knownAnswer struct {
	ref    TupleRef
	answer bool
}

type tupleCost struct {
	ref  TupleRef
	cost float64
}

type trainingExample struct {
	meta   map[string]string
	answer bool
}

// Option configures a resolution run.
type Option func(*options)

// WithStrategy selects the probe-selection strategy:
//
//	"qvalue"   — the Q-Value utility (needs CNF; large expressions split)
//	"ro"       — the RO utility (likeliest-term targeting)
//	"general"  — the General utility (alternating True/False targeting;
//	             the default, and the paper's most scalable recommendation)
//	"random"   — baseline: random probe order
//	"greedy"   — baseline: most frequent variable first
//	"lal-only" — baseline: pure active learning, no Boolean utility
func WithStrategy(name string) Option {
	return func(o *options) { o.strategy = strings.ToLower(name) }
}

// WithLearning selects how answer probabilities are learned: "ep" (none;
// every probability is 0.5), "offline" (train once on the initial known
// answers), or "online" (retrain after every probe and use LAL-guided
// exploration — the default).
func WithLearning(mode string) Option {
	return func(o *options) {
		switch strings.ToLower(mode) {
		case "ep":
			o.cfg.Learning = resolve.LearnEP
		case "offline":
			o.cfg.Learning = resolve.LearnOffline
		case "online":
			o.cfg.Learning = resolve.LearnOnline
		default:
			o.strandErr = fmt.Errorf("qres: unknown learning mode %q", mode)
		}
	}
}

// WithModel selects the Learner's classifier: "rf" (random forest, the
// default) or "nb" (naive Bayes).
func WithModel(model string) Option {
	return func(o *options) {
		switch strings.ToLower(model) {
		case "rf":
			o.cfg.Model = resolve.ModelRF
		case "nb":
			o.cfg.Model = resolve.ModelNB
		default:
			o.strandErr = fmt.Errorf("qres: unknown model %q", model)
		}
	}
}

// WithTrees sets the random-forest size (default 100).
func WithTrees(n int) Option {
	return func(o *options) { o.cfg.Trees = n }
}

// Parallelism bounds worker counts per parallel dimension of a resolution
// session. The zero value of every dimension means one worker per CPU; 1
// means serial. Results — trained models, probe sequences, resolved answer
// sets — are bit-identical for any combination of worker counts, so these
// knobs trade only latency, never outcomes.
type Parallelism struct {
	// Forest bounds forest-training parallelism in the Learner.
	Forest int
	// Rescore bounds incremental-rescore parallelism in the utility caches.
	Rescore int
	// Shards bounds how many connected components are scored concurrently
	// when the workset splits (component-sharded probe selection).
	Shards int
	// Engine bounds morsel-driven parallelism in query evaluation
	// (DB.Query and the serving path): 0 = one worker per CPU, 1 =
	// serial streaming execution. Like every other dimension the results
	// are bit-identical for any value — columns, row order and
	// provenance expressions match the serial executor exactly.
	Engine int
}

// WithParallelism bounds every parallel dimension of the session in one
// option, replacing the per-dimension options (WithForestWorkers, ...).
// Dimensions left at zero default to one worker per CPU.
func WithParallelism(p Parallelism) Option {
	return func(o *options) {
		o.parSet = true
		o.cfg.Parallel = resolve.Parallelism{
			Forest:  p.Forest,
			Rescore: p.Rescore,
			Shards:  p.Shards,
			Engine:  p.Engine,
		}
	}
}

// WithForestWorkers bounds forest-training parallelism in the Learner
// (0 = one worker per CPU, 1 = serial). Trained models — and hence probe
// sequences — are bit-identical for any value, so the knob trades only
// training latency, never results.
//
// Deprecated: use WithParallelism(Parallelism{Forest: n}). This wrapper is
// honored only while Parallelism's Forest dimension is unset.
func WithForestWorkers(n int) Option {
	return func(o *options) { o.cfg.ForestWorkers = n }
}

// WithSeed fixes the random seed, making the probe sequence deterministic.
func WithSeed(seed int64) Option {
	return func(o *options) { o.cfg.Seed = seed }
}

// WithSplitBound sets the maximum DNF terms per expression part when
// splitting large provenance expressions (default 8).
func WithSplitBound(maxTerms int) Option {
	return func(o *options) { o.cfg.SplitMaxTerms = maxTerms }
}

// WithoutSplitting disables expression splitting (the "qvalue" strategy
// may then fail on expressions whose CNF is too large).
func WithoutSplitting() Option {
	return func(o *options) { o.cfg.DisableSplitting = true }
}

// WithCost assigns a verification cost to a tuple (default 1.0). Costs
// are always accounted in Resolution.Cost; combined with WithCostAware the
// selector also ranks candidates by score per unit cost, deferring
// expensive verifications when cheaper ones make the same progress.
func WithCost(ref TupleRef, cost float64) Option {
	return func(o *options) { o.costs = append(o.costs, tupleCost{ref: ref, cost: cost}) }
}

// WithCostAware enables cost-aware probe selection (the paper's Section 9
// extension): candidates are ranked by combined score per unit cost.
func WithCostAware() Option {
	return func(o *options) { o.cfg.CostAware = true }
}

// WithKnownAnswer seeds the session with an already-verified tuple: its
// answer is substituted into the provenance before any oracle call and it
// becomes Learner training data.
func WithKnownAnswer(ref TupleRef, correct bool) Option {
	return func(o *options) { o.known = append(o.known, knownAnswer{ref: ref, answer: correct}) }
}

// WithTrainingExample seeds the Learner with a labeled example that is not
// one of this database's tuples (e.g. verification history from other
// datasets): metadata plus the verified correctness.
func WithTrainingExample(meta map[string]string, correct bool) Option {
	return func(o *options) {
		m := make(map[string]string, len(meta))
		for k, v := range meta {
			m[k] = v
		}
		o.training = append(o.training, trainingExample{meta: m, answer: correct})
	}
}

// Resolution is the outcome of a resolution run: the exact ground-truth
// answer and its cost.
type Resolution struct {
	// Probes is the number of oracle verifications issued.
	Probes int
	// CorrectRows are the indices (into the Result) of the rows verified
	// to be ground-truth answers.
	CorrectRows []int
	// Verified maps every row index to its resolved correctness.
	Verified map[int]bool
	// Cost is the total verification cost: the sum of the probed tuples'
	// WithCost values (equal to Probes when no costs were assigned).
	Cost float64
	// ProbedTuples lists the verified tuples in probe order (nil when the
	// oracle wrapper cannot observe ordering, e.g. parallel runs).
	ProbedTuples []TupleRef
	// Components and CriticalPathProbes are set by ResolveParallel.
	Components         int
	CriticalPathProbes int
}

// IsCorrect reports the resolved correctness of a result row.
func (r *Resolution) IsCorrect(row int) bool { return r.Verified[row] }

// buildOptions assembles the internal configuration.
func (db *DB) buildOptions(opts []Option) (*options, error) {
	o := &options{strategy: "general"}
	o.cfg.Learning = resolve.LearnOnline
	for _, opt := range opts {
		opt(o)
	}
	if o.strandErr != nil {
		return nil, o.strandErr
	}
	if len(o.costs) > 0 {
		o.cfg.Costs = make(map[boolexpr.Var]float64, len(o.costs))
		for _, c := range o.costs {
			v, err := db.varFor(c.ref)
			if err != nil {
				return nil, err
			}
			o.cfg.Costs[v] = c.cost
		}
	}
	switch o.strategy {
	case "qvalue", "q-value":
		o.cfg.Utility = resolve.QValue{}
	case "ro":
		o.cfg.Utility = resolve.RO{}
	case "general":
		o.cfg.Utility = resolve.General{}
	case "random":
		o.cfg.Baseline = resolve.BaselineRandom
	case "greedy":
		o.cfg.Baseline = resolve.BaselineGreedy
	case "lal-only", "lalonly":
		o.cfg.Baseline = resolve.BaselineLALOnly
	default:
		return nil, fmt.Errorf("qres: unknown strategy %q", o.strategy)
	}
	// Every run records per-stage timings into its own registry so
	// Session.Metrics works without opting in; trace sinks only attach when
	// WithObserver / WithTrace asked for them.
	o.reg = obs.NewRegistry()
	var sink obs.Sink
	switch len(o.sinks) {
	case 0:
	case 1:
		sink = o.sinks[0]
	default:
		sink = obs.MultiSink(o.sinks)
	}
	o.cfg.Obs = obs.New("", sink, o.reg)
	return o, nil
}

// repository seeds the internal probes repository from options. With
// WithRepository the shared repository is used (and extended) in place;
// otherwise each run gets a private one.
func (db *DB) repository(o *options) (*resolve.Repository, error) {
	repo := resolve.NewRepository()
	if o.repo != nil {
		repo = o.repo.inner
	}
	for _, ex := range o.training {
		repo.Add(ex.meta, ex.answer)
	}
	for _, k := range o.known {
		v, err := db.varFor(k.ref)
		if err != nil {
			return nil, err
		}
		repo.AddVar(v, db.udb.MetaFor(v), k.answer)
	}
	return repo, nil
}

// oracleAdapter bridges the public tuple-level oracle to the internal
// variable-level one.
type oracleAdapter struct {
	db    *DB
	inner Oracle
	log   []TupleRef
}

func (a *oracleAdapter) Probe(v boolexpr.Var) (bool, error) {
	ref, ok := a.db.udb.RefFor(v)
	if !ok {
		return false, fmt.Errorf("qres: oracle asked about unknown variable %d", v)
	}
	pub := TupleRef{Table: ref.Relation, Index: ref.Index}
	answer, err := a.inner.Probe(pub)
	if err != nil {
		return false, err
	}
	a.log = append(a.log, pub)
	return answer, nil
}

// Resolve drives a full resolution session over the query result: it
// selects tuples to verify, calls the oracle, and repeats until every
// output row's correctness is decided. The result's exact ground-truth
// answer set is returned along with the number of verifications used.
func (db *DB) Resolve(res *Result, orc Oracle, opts ...Option) (*Resolution, error) {
	o, err := db.buildOptions(opts)
	if err != nil {
		return nil, err
	}
	repo, err := db.repository(o)
	if err != nil {
		return nil, err
	}
	adapter := &oracleAdapter{db: db, inner: orc}
	sess, err := resolve.NewSession(db.udb, res.res, adapter, repo, o.cfg)
	if err != nil {
		return nil, err
	}
	out, err := sess.Run()
	if err != nil {
		return nil, err
	}
	r := db.resolution(out.Answers, out.Probes, adapter.log, 0, 0)
	r.Cost = out.Stats.Cost
	return r, nil
}

// ResolveParallel resolves variable-disjoint groups of output rows
// concurrently (one independent probe-selection process per group), which
// preserves the total number of verifications while cutting latency to
// roughly the largest group's. The oracle must be safe for concurrent use.
func (db *DB) ResolveParallel(res *Result, orc Oracle, opts ...Option) (*Resolution, error) {
	o, err := db.buildOptions(opts)
	if err != nil {
		return nil, err
	}
	repo, err := db.repository(o)
	if err != nil {
		return nil, err
	}
	adapter := &concurrentAdapter{db: db, inner: orc}
	out, err := resolve.ResolveParallel(db.udb, res.res, adapter, repo, o.cfg)
	if err != nil {
		return nil, err
	}
	r := db.resolution(out.Answers, out.Probes, nil, out.Components, out.CriticalPathProbes)
	r.Cost = out.Stats.Cost
	return r, nil
}

func (db *DB) resolution(answers []resolve.RowAnswer, probes int, log []TupleRef, components, critical int) *Resolution {
	r := &Resolution{
		Probes:             probes,
		Verified:           make(map[int]bool, len(answers)),
		ProbedTuples:       log,
		Components:         components,
		CriticalPathProbes: critical,
	}
	for _, a := range answers {
		r.Verified[a.Row] = a.Correct
		if a.Correct {
			r.CorrectRows = append(r.CorrectRows, a.Row)
		}
	}
	return r
}

// concurrentAdapter is the goroutine-safe variant of oracleAdapter (probe
// ordering is not recorded).
type concurrentAdapter struct {
	db    *DB
	inner Oracle
}

func (a *concurrentAdapter) Probe(v boolexpr.Var) (bool, error) {
	ref, ok := a.db.udb.RefFor(v)
	if !ok {
		return false, fmt.Errorf("qres: oracle asked about unknown variable %d", v)
	}
	return a.inner.Probe(TupleRef{Table: ref.Relation, Index: ref.Index})
}

// Quickstart: the smallest end-to-end use of qres.
//
// We load a handful of automatically extracted facts whose correctness is
// uncertain, ask a query, and let qres decide the exact set of correct
// answers by asking a simulated expert about as few tuples as possible.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"qres"
)

func main() {
	db := qres.New()
	db.MustCreateTable("acquired",
		qres.Column{Name: "company", Kind: qres.String},
		qres.Column{Name: "buyer", Kind: qres.String})

	// Facts extracted from the Web — each might be wrong. The metadata
	// ("source") is what qres learns correctness from.
	facts := []struct {
		company, buyer, source string
		actuallyCorrect        bool
	}{
		{"audi", "volkswagen", "reliable.example", true},
		{"whatsapp", "facebook", "reliable.example", true},
		{"nokia", "apple", "rumors.example", false},
		{"github", "microsoft", "reliable.example", true},
		{"spacex", "google", "rumors.example", false},
		{"deepmind", "google", "reliable.example", true},
	}
	truth := make(map[qres.TupleRef]bool)
	for _, f := range facts {
		ref := db.MustInsert("acquired", []any{f.company, f.buyer},
			map[string]string{"source": f.source})
		truth[ref] = f.actuallyCorrect
	}

	// Which companies did Google acquire, for certain?
	res, err := db.Query(`SELECT DISTINCT company FROM acquired WHERE buyer = 'google'`)
	if err != nil {
		panic(err)
	}
	fmt.Println("Uncertain answer with provenance:")
	fmt.Print(res)

	// The oracle stands in for a human expert; qres calls it as rarely as
	// it can.
	probes := 0
	expert := qres.OracleFunc(func(ref qres.TupleRef) (bool, error) {
		probes++
		values, _, _ := db.Tuple(ref)
		fmt.Printf("  expert verifies %v: %t\n", values, truth[ref])
		return truth[ref], nil
	})

	out, err := db.Resolve(res, expert, qres.WithStrategy("general"), qres.WithSeed(1))
	if err != nil {
		panic(err)
	}

	fmt.Printf("\nVerified with %d expert call(s):\n", out.Probes)
	for i := 0; i < res.Len(); i++ {
		mark := "✗"
		if out.IsCorrect(i) {
			mark = "✓"
		}
		fmt.Printf("  %s %v\n", mark, res.Row(i))
	}
}

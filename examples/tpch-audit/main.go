// TPC-H audit: mission-critical verification of analytic query answers.
//
// An order-management database was populated by several ingestion batches,
// one of which is suspected to be corrupted. Before acting on the results
// of a shipping-priority analysis (a stripped TPC-H Q3), the operations
// team wants the exact set of correct answers, verifying as few source
// rows as possible against the system of record.
//
// The example compares the Q-Value strategy (the paper's strongest
// performer when CNFs are tractable) against the Greedy baseline, and
// prints the feature the Learner found most predictive — it should
// discover the corrupted batch on its own.
//
//	go run ./examples/tpch-audit
package main

import (
	"fmt"
	"math/rand"

	"qres"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	db := qres.New()
	db.MustCreateTable("customer",
		qres.Column{Name: "c_custkey", Kind: qres.Int},
		qres.Column{Name: "c_mktsegment", Kind: qres.String})
	db.MustCreateTable("orders",
		qres.Column{Name: "o_orderkey", Kind: qres.Int},
		qres.Column{Name: "o_custkey", Kind: qres.Int},
		qres.Column{Name: "o_orderdate", Kind: qres.DateKind})
	db.MustCreateTable("lineitem",
		qres.Column{Name: "l_orderkey", Kind: qres.Int},
		qres.Column{Name: "l_shipdate", Kind: qres.DateKind})

	// Batch "batch-03" is corrupted: 70% of its rows are wrong; the other
	// batches are 95% accurate.
	truth := make(map[qres.TupleRef]bool)
	insert := func(table string, values []any) {
		batch := fmt.Sprintf("batch-%02d", rng.Intn(6))
		acc := 0.95
		if batch == "batch-03" {
			acc = 0.30
		}
		ref := db.MustInsert(table, values, map[string]string{"batch": batch})
		truth[ref] = rng.Float64() < acc
	}

	const customers, orders = 60, 400
	segments := []string{"BUILDING", "MACHINERY", "AUTOMOBILE"}
	for c := 0; c < customers; c++ {
		insert("customer", []any{c, segments[rng.Intn(len(segments))]})
	}
	for o := 0; o < orders; o++ {
		odate := qres.Date{Year: 1994 + rng.Intn(3), Month: 1 + rng.Intn(12), Day: 1 + rng.Intn(28)}
		insert("orders", []any{o, rng.Intn(customers), odate})
		for l := 0; l < 1+rng.Intn(3); l++ {
			insert("lineitem", []any{o, qres.Date{
				Year: odate.Year, Month: odate.Month, Day: 1 + rng.Intn(28),
			}})
		}
	}

	res, err := db.Query(`
		SELECT DISTINCT l.l_orderkey, o.o_orderdate
		FROM customer AS c, orders AS o, lineitem AS l
		WHERE c.c_mktsegment = 'BUILDING'
		  AND c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
		  AND o.o_orderdate < 1996.01.01`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Analysis returned %d order rows; correctness depends on %d of %d source rows.\n\n",
		res.Len(), res.UniqueTupleCount(), db.NumTuples())

	systemOfRecord := func(counter *int) qres.Oracle {
		return qres.OracleFunc(func(ref qres.TupleRef) (bool, error) {
			*counter++
			return truth[ref], nil
		})
	}

	for _, strategy := range []string{"greedy", "qvalue"} {
		calls := 0
		out, err := db.Resolve(res, systemOfRecord(&calls),
			qres.WithStrategy(strategy),
			qres.WithLearning("online"),
			qres.WithTrees(30),
			qres.WithSeed(5))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s verified %3d/%3d answers correct using %3d lookups (%.0f%% of the provenance)\n",
			strategy, len(out.CorrectRows), res.Len(), out.Probes,
			100*float64(out.Probes)/float64(res.UniqueTupleCount()))
	}

	fmt.Println("\nThe audit is exact: rows reported correct are exactly the ground-truth answers.")
}

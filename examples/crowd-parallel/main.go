// Crowd-parallel: cutting oracle latency with component-parallel probing.
//
// When the oracle is a crowdsourcing platform, each verification takes
// seconds to minutes. The framework's parallel probe selection (paper
// Section 6) partitions the provenance into variable-disjoint components
// and resolves them concurrently: the number of paid verifications stays
// the same while wall-clock time drops to the slowest component's chain.
//
// This example builds a review-moderation workload whose per-product
// provenance is naturally disjoint, wraps the crowd in a fixed per-answer
// latency, and compares sequential vs parallel wall time.
//
//	go run ./examples/crowd-parallel
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"qres"
)

const crowdLatency = 3 * time.Millisecond // stands in for minutes per task

func main() {
	rng := rand.New(rand.NewSource(21))
	db := qres.New()
	db.MustCreateTable("reviews",
		qres.Column{Name: "product", Kind: qres.String},
		qres.Column{Name: "reviewer", Kind: qres.String},
		qres.Column{Name: "stars", Kind: qres.Int})

	// 40 products × a handful of (possibly fake) five-star reviews each.
	// Each product's provenance is disjoint from every other product's,
	// which is the ideal case for parallel probing.
	truth := make(map[qres.TupleRef]bool)
	var mu sync.Mutex
	for p := 0; p < 40; p++ {
		product := fmt.Sprintf("product-%02d", p)
		for r := 0; r < 2+rng.Intn(4); r++ {
			ref := db.MustInsert("reviews",
				[]any{product, fmt.Sprintf("user-%03d", rng.Intn(500)), 5},
				map[string]string{"channel": "import"})
			truth[ref] = rng.Float64() < 0.6 // 40% of 5-star reviews are fake
		}
	}

	// Which products certainly have at least one genuine 5-star review?
	res, err := db.Query(`SELECT DISTINCT product FROM reviews WHERE stars = 5`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d products to moderate; %d reviews in their provenance.\n\n",
		res.Len(), res.UniqueTupleCount())

	crowd := qres.OracleFunc(func(ref qres.TupleRef) (bool, error) {
		time.Sleep(crowdLatency) // the human in the loop
		mu.Lock()
		defer mu.Unlock()
		return truth[ref], nil
	})

	opts := []qres.Option{
		qres.WithStrategy("general"), qres.WithLearning("ep"), qres.WithSeed(9),
	}

	start := time.Now()
	seq, err := db.Resolve(res, crowd, opts...)
	if err != nil {
		panic(err)
	}
	seqTime := time.Since(start)

	start = time.Now()
	par, err := db.ResolveParallel(res, crowd, opts...)
	if err != nil {
		panic(err)
	}
	parTime := time.Since(start)

	fmt.Printf("sequential: %3d crowd tasks in %6.1fms\n", seq.Probes, seqTime.Seconds()*1000)
	fmt.Printf("parallel:   %3d crowd tasks in %6.1fms across %d components (critical path %d tasks)\n",
		par.Probes, parTime.Seconds()*1000, par.Components, par.CriticalPathProbes)

	agree := true
	for i := 0; i < res.Len(); i++ {
		if seq.IsCorrect(i) != par.IsCorrect(i) {
			agree = false
		}
	}
	fmt.Printf("answers identical: %t\n", agree)
}

// Entrepreneurs: the paper's Section 1 scenario at a realistic size.
//
// A data analyst mines a Web-extracted knowledge base for promising
// entrepreneurs: founders of recently acquired companies. Extraction is
// noisy — some sources are much less reliable than others — and business
// recommendations must rest on correct data only, so every answer has to
// be verified through a (costly) data expert.
//
// The example shows the two levers the framework offers:
//
//  1. query-guided probing: only tuples in the answer's provenance are
//     ever considered, and the utility function orders them so that a few
//     verifications decide many answers;
//
//  2. learning from metadata: the expert's past verdicts (seeded as
//     training examples, then accumulated online) let qres predict which
//     tuples are likely wrong and verify those first.
//
//     go run ./examples/entrepreneurs
package main

import (
	"fmt"
	"math/rand"

	"qres"
)

const (
	companies        = 120
	foundersEach     = 2
	reliableAccuracy = 0.95
	rumorsAccuracy   = 0.45
)

func main() {
	rng := rand.New(rand.NewSource(7))
	db := qres.New()
	db.MustCreateTable("acquisitions",
		qres.Column{Name: "acquired", Kind: qres.String},
		qres.Column{Name: "acquirer", Kind: qres.String},
		qres.Column{Name: "date", Kind: qres.DateKind})
	db.MustCreateTable("founders",
		qres.Column{Name: "company", Kind: qres.String},
		qres.Column{Name: "person", Kind: qres.String})

	truth := make(map[qres.TupleRef]bool)
	insert := func(table string, values []any) {
		// Half the facts come from a reliable newswire, half from a rumor
		// aggregator; correctness follows the source's accuracy — the
		// correlation the Learner exploits.
		source, acc := "newswire.example", reliableAccuracy
		if rng.Intn(2) == 0 {
			source, acc = "rumors.example", rumorsAccuracy
		}
		ref := db.MustInsert(table, values, map[string]string{"source": source})
		truth[ref] = rng.Float64() < acc
	}

	for c := 0; c < companies; c++ {
		company := fmt.Sprintf("startup-%03d", c)
		year := 2014 + rng.Intn(10)
		insert("acquisitions", []any{company, fmt.Sprintf("corp-%02d", rng.Intn(15)),
			qres.Date{Year: year, Month: 1 + rng.Intn(12), Day: 1 + rng.Intn(28)}})
		for f := 0; f < foundersEach; f++ {
			insert("founders", []any{company, fmt.Sprintf("person-%03d", rng.Intn(150))})
		}
	}

	// Founders of companies acquired since 2017 — the analyst's shortlist.
	res, err := db.Query(`
		SELECT DISTINCT f.person
		FROM acquisitions AS a, founders AS f
		WHERE a.acquired = f.company AND a.date >= 2017.01.01`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Shortlist has %d candidate entrepreneurs; their correctness depends on %d of %d tuples.\n",
		res.Len(), res.UniqueTupleCount(), db.NumTuples())

	expert := func(counter *int) qres.Oracle {
		return qres.OracleFunc(func(ref qres.TupleRef) (bool, error) {
			*counter++
			return truth[ref], nil
		})
	}

	// The expert's verification history on other projects seeds the
	// Learner: verdicts about each source's reliability.
	var seeds []qres.Option
	for i := 0; i < 60; i++ {
		src, acc := "newswire.example", reliableAccuracy
		if i%2 == 0 {
			src, acc = "rumors.example", rumorsAccuracy
		}
		seeds = append(seeds, qres.WithTrainingExample(
			map[string]string{"source": src}, rng.Float64() < acc))
	}

	run := func(label string, opts ...qres.Option) int {
		calls := 0
		out, err := db.Resolve(res, expert(&calls), opts...)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-34s %4d expert calls, %d verified entrepreneurs\n",
			label, out.Probes, len(out.CorrectRows))
		return out.Probes
	}

	fmt.Println("\nResolution cost by configuration:")
	naive := res.UniqueTupleCount()
	fmt.Printf("  %-34s %4d expert calls (verify everything)\n", "naive", naive)
	run("random order", qres.WithStrategy("random"), qres.WithSeed(3))
	run("utility only (no learning)",
		qres.WithStrategy("general"), qres.WithLearning("ep"), qres.WithSeed(3))
	all := append([]qres.Option{
		qres.WithStrategy("general"), qres.WithLearning("online"),
		qres.WithTrees(30), qres.WithSeed(3),
	}, seeds...)
	run("utility + learned probabilities", all...)
}

module qres

go 1.22

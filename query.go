package qres

import (
	"fmt"
	"strings"

	"qres/internal/boolexpr"
	"qres/internal/engine"
	"qres/internal/sqlparse"
)

// Result is the annotated answer of an SPJU query: output rows, each
// carrying the Boolean provenance expression over tuple-correctness
// variables that decides whether the row is a ground-truth answer.
type Result struct {
	db   *DB
	res  *engine.Result
	cols []string
	plan engine.Node
}

// Query evaluates an SPJU SQL statement with provenance tracking and
// freezes the database. The supported fragment is
// SELECT [DISTINCT] cols FROM t1 [AS a1], t2 ... [WHERE cond] [UNION ...]
// with comparison, LIKE, IN, IS [NOT] NULL and AND/OR/NOT conditions, plus
// the year(date) function.
//
// Evaluation is serial by default. Passing WithParallelism enables
// morsel-driven parallel evaluation governed by its Engine dimension
// (0 = one worker per CPU, 1 = serial); results are bit-identical to the
// serial path for any worker count. Other options are ignored here — they
// configure resolution sessions.
func (db *DB) Query(sql string, opts ...Option) (*Result, error) {
	db.freeze()
	plan, err := sqlparse.ParseAndCompile(sql, db.data)
	if err != nil {
		return nil, err
	}
	x := engine.Exec{Workers: 1}
	if len(opts) > 0 {
		var o options
		for _, opt := range opts {
			opt(&o)
		}
		if o.parSet {
			x.Workers = o.cfg.Parallel.Engine
		}
	}
	res, err := engine.RunWith(db.udb, plan, x)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(res.Columns))
	for i, c := range res.Columns {
		cols[i] = c.String()
	}
	return &Result{db: db, res: res, cols: cols, plan: plan}, nil
}

// PlanShape renders the compact operator-tree signature of the plan as the
// engine executed it, after the rewrite pass — pushed-down selections show
// as "Select*" and fused ORDER BY … LIMIT k as "TopK[k]". See the "Query
// engine" chapter of ARCHITECTURE.md for how to read shapes.
func (r *Result) PlanShape() string {
	return engine.Shape(engine.Rewrite(r.plan))
}

// Len returns the number of output rows.
func (r *Result) Len() int { return len(r.res.Rows) }

// Columns returns the output column names.
func (r *Result) Columns() []string { return append([]string(nil), r.cols...) }

// Row renders the values of row i.
func (r *Result) Row(i int) []string {
	tup := r.res.Rows[i].Tuple
	out := make([]string, len(tup))
	for j, v := range tup {
		out[j] = v.String()
	}
	return out
}

// Provenance renders row i's Boolean provenance expression using
// "table[index]" variable names.
func (r *Result) Provenance(i int) string {
	return r.res.Rows[i].Prov.Format(r.db.udb.Registry())
}

// Uncertain reports whether row i's membership in the answer depends on
// unresolved tuples (constant provenance rows are already decided).
func (r *Result) Uncertain(i int) bool { return !r.res.Rows[i].Prov.Decided() }

// Tuples returns the references of the tuples that row i's correctness
// depends on — the candidate verifications for this row.
func (r *Result) Tuples(i int) []TupleRef {
	vars := r.res.Rows[i].Prov.Vars()
	out := make([]TupleRef, 0, len(vars))
	for _, v := range vars {
		if ref, ok := r.db.udb.RefFor(v); ok {
			out = append(out, TupleRef{Table: ref.Relation, Index: ref.Index})
		}
	}
	return out
}

// UniqueTupleCount returns the number of distinct tuples the whole
// result's correctness depends on — the verification budget an exhaustive
// approach would need.
func (r *Result) UniqueTupleCount() int { return len(r.res.UniqueVars()) }

// String renders a compact table of the result with provenance.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", strings.Join(r.cols, " | "))
	for i := range r.res.Rows {
		fmt.Fprintf(&b, "%s  ⟵  %s\n", strings.Join(r.Row(i), " | "), r.Provenance(i))
	}
	return b.String()
}

// varFor maps a public tuple reference to its internal variable.
func (db *DB) varFor(ref TupleRef) (boolexpr.Var, error) {
	v, ok := db.udb.VarFor(ref.Table, ref.Index)
	if !ok {
		return 0, fmt.Errorf("%w: no tuple %s", ErrUnknownVariable, ref)
	}
	return v, nil
}

package qres_test

import (
	"testing"

	"qres"
)

func TestStepwiseSession(t *testing.T) {
	db := buildPaperDB(t)
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	orc := randomOracle(db, 0.5, 17)
	sess, err := db.NewSession(res, orc,
		qres.WithStrategy("general"), qres.WithLearning("ep"), qres.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}

	// Before any probe: everything unknown (the query rows all depend on
	// unresolved tuples), no resolution available.
	for i, st := range sess.Status() {
		if st != qres.Unknown {
			t.Fatalf("row %d decided before probing: %v", i, st)
		}
	}
	if _, err := sess.Resolution(); err == nil {
		t.Fatal("Resolution before done must fail")
	}

	// Step to completion; statuses must move monotonically from Unknown
	// to decided (a decided row never becomes undecided again).
	decided := make([]bool, res.Len())
	steps := 0
	for !sess.Done() {
		ref, done, err := sess.Step()
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if !done && ref == (qres.TupleRef{}) {
			t.Fatal("step without probed tuple")
		}
		for i, st := range sess.Status() {
			if decided[i] && st == qres.Unknown {
				t.Fatalf("row %d became undecided again", i)
			}
			if st != qres.Unknown {
				decided[i] = true
			}
		}
		if steps > res.UniqueTupleCount() {
			t.Fatal("session did not terminate within the probe budget")
		}
	}
	if sess.Probes() != steps {
		t.Fatalf("Probes = %d, steps = %d", sess.Probes(), steps)
	}

	out, err := sess.Resolution()
	if err != nil {
		t.Fatal(err)
	}
	// Statuses and resolution agree.
	for i, st := range sess.Status() {
		want := qres.Incorrect
		if out.IsCorrect(i) {
			want = qres.Correct
		}
		if st != want {
			t.Errorf("row %d: status %v, resolution %v", i, st, want)
		}
	}
	// Matches a one-shot Resolve on a fresh copy.
	db2 := buildPaperDB(t)
	res2, _ := db2.Query(paperSQL)
	ref, err := db2.Resolve(res2, randomOracle(db2, 0.5, 17),
		qres.WithStrategy("general"), qres.WithLearning("ep"), qres.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Len(); i++ {
		if out.IsCorrect(i) != ref.IsCorrect(i) {
			t.Errorf("row %d: stepwise disagrees with one-shot", i)
		}
	}
}

func TestSessionFinish(t *testing.T) {
	db := buildPaperDB(t)
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := db.NewSession(res, randomOracle(db, 0.5, 19),
		qres.WithStrategy("greedy"), qres.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	// A couple of manual steps, then Finish drives the rest.
	if _, _, err := sess.Step(); err != nil {
		t.Fatal(err)
	}
	out, err := sess.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Done() {
		t.Fatal("Finish left the session unfinished")
	}
	if out.Probes != sess.Probes() {
		t.Fatal("probe counts disagree")
	}
	if len(out.ProbedTuples) != out.Probes {
		t.Fatal("probe log incomplete")
	}
	if statuses := sess.Status(); len(statuses) != res.Len() {
		t.Fatal("status length wrong")
	}
}

func TestStatusStrings(t *testing.T) {
	if qres.Unknown.String() != "unknown" ||
		qres.Correct.String() != "correct" ||
		qres.Incorrect.String() != "incorrect" {
		t.Fatal("status strings wrong")
	}
}

package qres

import (
	"errors"

	"qres/internal/resolve"
)

// Sentinel errors of the resolution API. Callers branch on them with
// errors.Is; returned errors may wrap a sentinel with detail (the tuple or
// variable involved). The serving layer maps each sentinel to a stable
// machine-readable error code — see the README's "Serving" section for the
// wire contract.
var (
	// ErrSessionDone: the operation needs an unfinished session, but every
	// row's correctness is already decided.
	ErrSessionDone = resolve.ErrSessionDone
	// ErrSessionNotDone: Resolution was called before the session finished;
	// drive Step (or Finish) to completion first.
	ErrSessionNotDone = errors.New("qres: session not finished; call Step or Finish until done")
	// ErrNoProbePending: SubmitAnswer was called with no probe outstanding;
	// call NextProbe first.
	ErrNoProbePending = resolve.ErrNoProbePending
	// ErrProbeMismatch: the submitted answer references a different tuple
	// than the outstanding probe.
	ErrProbeMismatch = resolve.ErrProbeMismatch
	// ErrNoOracle: Step was called on a session constructed without an
	// oracle; such sessions are driven through NextProbe/SubmitAnswer.
	ErrNoOracle = resolve.ErrNoOracle
	// ErrUnknownVariable: a TupleRef (or internal variable) does not name a
	// tuple of this database.
	ErrUnknownVariable = resolve.ErrUnknownVariable
)

package qres_test

import (
	"fmt"

	"qres"
	"qres/internal/engine"
	"qres/internal/testdb"
)

// Example demonstrates the full workflow: build an uncertain database,
// query it with provenance tracking, and resolve the exact answer through
// an oracle.
func Example() {
	db := qres.New()
	db.MustCreateTable("facts",
		qres.Column{Name: "subject", Kind: qres.String},
		qres.Column{Name: "relation", Kind: qres.String},
		qres.Column{Name: "object", Kind: qres.String})

	correct := map[qres.TupleRef]bool{}
	insert := func(s, r, o, source string, isCorrect bool) {
		ref := db.MustInsert("facts", []any{s, r, o}, map[string]string{"source": source})
		correct[ref] = isCorrect
	}
	insert("volkswagen", "acquired", "audi", "archive.example", true)
	insert("apple", "acquired", "nokia", "rumors.example", false)
	insert("google", "acquired", "deepmind", "archive.example", true)

	res, err := db.Query(`SELECT DISTINCT subject FROM facts WHERE relation = 'acquired'`)
	if err != nil {
		panic(err)
	}

	oracle := qres.OracleFunc(func(ref qres.TupleRef) (bool, error) {
		return correct[ref], nil
	})
	out, err := db.Resolve(res, oracle,
		qres.WithStrategy("general"), qres.WithLearning("ep"), qres.WithSeed(1))
	if err != nil {
		panic(err)
	}

	for i := 0; i < res.Len(); i++ {
		fmt.Printf("%s correct=%t\n", res.Row(i)[0], out.IsCorrect(i))
	}
	// Output:
	// volkswagen correct=true
	// apple correct=false
	// google correct=true
}

// ExampleResult_Provenance shows the Boolean provenance annotation of an
// output row: the row is a correct answer exactly when its expression is
// satisfied by the true/false status of the referenced tuples.
func ExampleResult_Provenance() {
	db := qres.New()
	db.MustCreateTable("reviews",
		qres.Column{Name: "product", Kind: qres.String},
		qres.Column{Name: "stars", Kind: qres.Int})
	db.MustInsert("reviews", []any{"widget", 5}, nil)
	db.MustInsert("reviews", []any{"widget", 5}, nil)
	db.MustInsert("reviews", []any{"gadget", 5}, nil)

	res, err := db.Query(`SELECT DISTINCT product FROM reviews WHERE stars = 5`)
	if err != nil {
		panic(err)
	}
	for i := 0; i < res.Len(); i++ {
		fmt.Printf("%s: %s\n", res.Row(i)[0], res.Provenance(i))
	}
	// Output:
	// widget: reviews[0] ∨ reviews[1]
	// gadget: reviews[2]
}

// Example_queryEngine walks through the query engine on the paper's
// running example: build an algebra plan, compare its shape with the
// shape the rewrite pass executes (pushed selections render as Select*),
// and run it over the uncertain database with provenance tracking. The
// same rewritten plan is what `DB.Query` executes — `Result.PlanShape`
// exposes the executed shape on the public API.
func Example_queryEngine() {
	udb := testdb.PaperUncertainDB()
	plan := testdb.PaperQuery() // SELECT DISTINCT a.Acquired, e.Institute FROM ... WHERE ...

	fmt.Println("plan:    ", engine.Shape(plan))
	fmt.Println("executed:", engine.Shape(engine.Rewrite(plan)))

	res, err := engine.Run(udb, plan)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Header())
	for _, row := range res.Rows {
		fmt.Printf("%s  ⟵  %s\n", row.Tuple, row.Prov.Format(udb.Registry()))
	}
	// Output:
	// plan:     Distinct(Select(Join(Join(Scan,Scan),Scan)))
	// executed: Distinct(Join(Join(Select*(Scan),Select*(Scan)),Scan))
	// Acquired, Institute
	// (A2Bdone, U. Melbourne)  ⟵  (acquisitions[0] ∧ roles[0] ∧ education[0]) ∨ (acquisitions[0] ∧ roles[1] ∧ education[1]) ∨ (acquisitions[0] ∧ roles[2] ∧ education[3])
	// (A2Bdone, U. Sau Paolo)  ⟵  (acquisitions[0] ∧ roles[2] ∧ education[2])
	// (microBarg, U. Sau Paolo)  ⟵  (acquisitions[1] ∧ roles[3] ∧ education[2]) ∨ (acquisitions[1] ∧ roles[4] ∧ education[4])
	// (microBarg, U. Melbourne)  ⟵  (acquisitions[1] ∧ roles[3] ∧ education[3])
}

// ExampleSession_NextProbe drives a resolution through the asynchronous
// NextProbe / SubmitAnswer pair: probe selection is decoupled from answer
// delivery, so a remote oracle (an expert, a crowd platform) can take
// arbitrarily long per answer without holding a goroutine. The session is
// constructed with a nil oracle — answers only ever arrive via
// SubmitAnswer.
func ExampleSession_NextProbe() {
	db := qres.New()
	db.MustCreateTable("claims",
		qres.Column{Name: "fact", Kind: qres.String},
		qres.Column{Name: "src", Kind: qres.String})
	correct := map[qres.TupleRef]bool{
		db.MustInsert("claims", []any{"a", "wiki"}, map[string]string{"source": "wiki"}):   true,
		db.MustInsert("claims", []any{"b", "forum"}, map[string]string{"source": "forum"}): false,
	}
	res, err := db.Query(`SELECT DISTINCT fact FROM claims`)
	if err != nil {
		panic(err)
	}
	sess, err := db.NewSession(res, nil,
		qres.WithStrategy("general"), qres.WithLearning("ep"), qres.WithSeed(3))
	if err != nil {
		panic(err)
	}
	for {
		probe, done, err := sess.NextProbe()
		if err != nil {
			panic(err)
		}
		if done {
			break
		}
		// The answer would normally come back later, from outside.
		if _, err := sess.SubmitAnswer(probe.Ref, correct[probe.Ref]); err != nil {
			panic(err)
		}
		fmt.Printf("verified %s -> %t\n", probe.Ref, correct[probe.Ref])
	}
	resolution, err := sess.Resolution()
	if err != nil {
		panic(err)
	}
	fmt.Printf("correct rows: %v\n", resolution.CorrectRows)
	// Output:
	// verified claims[0] -> true
	// verified claims[1] -> false
	// correct rows: [0]
}

// ExampleWithRepository shares one Known Probes Repository across two
// resolutions: answers obtained by the first session are substituted into
// the second before any oracle call, so the second query resolves without
// probing at all.
func ExampleWithRepository() {
	db := qres.New()
	db.MustCreateTable("facts",
		qres.Column{Name: "subject", Kind: qres.String},
		qres.Column{Name: "object", Kind: qres.String})
	db.MustInsert("facts", []any{"x", "y"}, nil)
	db.MustInsert("facts", []any{"x", "z"}, nil)

	first, err := db.Query(`SELECT DISTINCT object FROM facts`)
	if err != nil {
		panic(err)
	}
	repo := db.ProbeRepository()
	oracle := qres.OracleFunc(func(qres.TupleRef) (bool, error) { return true, nil })
	out1, err := db.Resolve(first, oracle,
		qres.WithRepository(repo), qres.WithStrategy("general"), qres.WithLearning("ep"))
	if err != nil {
		panic(err)
	}

	second, err := db.Query(`SELECT DISTINCT subject FROM facts`)
	if err != nil {
		panic(err)
	}
	out2, err := db.Resolve(second, oracle,
		qres.WithRepository(repo), qres.WithStrategy("general"), qres.WithLearning("ep"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("first query probes: %d\n", out1.Probes)
	fmt.Printf("second query probes: %d (reused from repository)\n", out2.Probes)
	// Output:
	// first query probes: 2
	// second query probes: 0 (reused from repository)
}

// ExampleDB_Resolve_knownAnswers seeds the session with verifications that
// were already performed, so only genuinely new tuples reach the oracle.
func ExampleDB_Resolve_knownAnswers() {
	db := qres.New()
	db.MustCreateTable("t", qres.Column{Name: "x", Kind: qres.Int})
	ref0 := db.MustInsert("t", []any{1}, nil)
	ref1 := db.MustInsert("t", []any{2}, nil)

	res, err := db.Query(`SELECT DISTINCT x FROM t`)
	if err != nil {
		panic(err)
	}
	calls := 0
	oracle := qres.OracleFunc(func(qres.TupleRef) (bool, error) {
		calls++
		return true, nil
	})
	out, err := db.Resolve(res, oracle,
		qres.WithKnownAnswer(ref0, true),
		qres.WithKnownAnswer(ref1, false),
		qres.WithStrategy("general"), qres.WithLearning("ep"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("oracle calls: %d, correct rows: %v\n", out.Probes, out.CorrectRows)
	// Output:
	// oracle calls: 0, correct rows: [0]
}

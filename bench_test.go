package qres_test

// This file holds the testing.B entry points that regenerate every table
// and figure of the paper's evaluation (one benchmark per experiment; see
// DESIGN.md for the experiment index), plus micro-benchmarks of the
// framework's hot components. The experiment benchmarks run the harness at
// a reduced "bench" scale so the full suite completes in minutes; use
// cmd/qres-bench for the quick- and full-scale regenerations with printed
// report tables.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
	"time"

	"qres/internal/bench"
	"qres/internal/boolexpr"
	"qres/internal/datagen"
	"qres/internal/engine"
	"qres/internal/learn"
	"qres/internal/resolve"
	"qres/internal/sqlparse"
	"qres/internal/testdb"
	"qres/internal/uncertain"
)

// benchScale keeps each experiment iteration in the seconds range.
func benchScale() bench.Scale {
	return bench.Scale{TPCHSF: 0.0012, NELLAthletes: 60, InitialProbes: 60, Trees: 10, Reps: 1}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	sc := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := exp.Run(sc, int64(2023+i))
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

// One benchmark per paper table/figure (the per-experiment index lives in
// DESIGN.md; paper-vs-measured numbers in EXPERIMENTS.md).

func BenchmarkTable3QueryStats(b *testing.B)     { runExperiment(b, "table3") }
func BenchmarkTable4ComponentTimes(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkFig5Overall(b *testing.B)          { runExperiment(b, "fig5") }
func BenchmarkFig6OutputSize(b *testing.B)       { runExperiment(b, "fig6") }
func BenchmarkFig7Probabilities(b *testing.B)    { runExperiment(b, "fig7") }
func BenchmarkFig8Splitting(b *testing.B)        { runExperiment(b, "fig8") }
func BenchmarkFig9Learning(b *testing.B)         { runExperiment(b, "fig9") }

// Ablation benchmarks for the design choices called out in DESIGN.md §5.

func BenchmarkAblationSelector(b *testing.B)   { runExperiment(b, "ablation-selector") }
func BenchmarkAblationModel(b *testing.B)      { runExperiment(b, "ablation-model") }
func BenchmarkAblationSplitBound(b *testing.B) { runExperiment(b, "ablation-splitbound") }
func BenchmarkAblationTrees(b *testing.B)      { runExperiment(b, "ablation-trees") }
func BenchmarkAblationParallel(b *testing.B)   { runExperiment(b, "ablation-parallel") }

// Component micro-benchmarks.

// BenchmarkProvenanceEvaluation measures SPJU evaluation with provenance
// tracking on the paper's running example.
func BenchmarkProvenanceEvaluation(b *testing.B) {
	udb := testdb.PaperUncertainDB()
	plan := testdb.PaperQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(udb, plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine measures SPJU evaluation on the join-heavy TPC-H-like
// queries, comparing the pinned materializing executor (engine.RunReference,
// the pre-streaming control) against the streaming executor (engine.Run:
// predicate pushdown + Volcano iterators) and the morsel-parallel executor
// at 2, 4 and 8 workers (engine.RunWith). All modes run the same plans over
// the same database and produce row-for-row identical results (the
// equivalence tests in internal/engine enforce this), so ns/op is directly
// comparable. The scale factor defaults to 0.02 and can be raised with
// QRES_ENGINE_SF (EXPERIMENTS.md regenerates at 0.02, 0.1 and 1);
// generation uses Lean mode so large scale factors skip the metadata the
// engine never reads. After all sub-benchmarks run, the per-query
// measurements are appended as one trajectory point to
// results/BENCH_engine.json, with serial streaming pinned as the control
// the parallel speedups are computed against.
func BenchmarkEngine(b *testing.B) {
	sf := 0.02
	if s := os.Getenv("QRES_ENGINE_SF"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			b.Fatalf("bad QRES_ENGINE_SF %q: %v", s, err)
		}
		sf = v
	}
	udb := datagen.TPCH(datagen.TPCHConfig{SF: sf, Seed: 7, Lean: true})
	type measure struct{ ns, bytes float64 }
	measures := make(map[string]map[string]measure)
	queries := []string{"Q3", "Q10"}
	parallelWorkers := []int{2, 4, 8}
	for _, qname := range queries {
		plan, err := sqlparse.ParseAndCompile(datagen.TPCHQueries()[qname], udb.Data())
		if err != nil {
			b.Fatalf("compile %s: %v", qname, err)
		}
		measures[qname] = make(map[string]measure)
		modes := []struct {
			name string
			run  func() (*engine.Result, error)
		}{
			{"reference", func() (*engine.Result, error) { return engine.RunReference(udb, plan) }},
			{"streaming", func() (*engine.Result, error) { return engine.Run(udb, plan) }},
		}
		for _, w := range parallelWorkers {
			w := w
			modes = append(modes, struct {
				name string
				run  func() (*engine.Result, error)
			}{fmt.Sprintf("parallel%d", w), func() (*engine.Result, error) {
				return engine.RunWith(udb, plan, engine.Exec{Workers: w})
			}})
		}
		for _, mode := range modes {
			b.Run(qname+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				var before, after runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&before)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := mode.run()
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Rows) == 0 {
						b.Fatalf("%s returned no rows at SF %g", qname, sf)
					}
				}
				b.StopTimer()
				runtime.ReadMemStats(&after)
				measures[qname][mode.name] = measure{
					ns:    float64(b.Elapsed().Nanoseconds()) / float64(b.N),
					bytes: float64(after.TotalAlloc-before.TotalAlloc) / float64(b.N),
				}
			})
		}
	}
	point := map[string]any{
		"date":         time.Now().UTC().Format("2006-01-02"),
		"benchmark":    "engine",
		"scale_factor": sf,
		"tuples":       udb.Data().TotalTuples(),
	}
	for _, qname := range queries {
		ref, str := measures[qname]["reference"], measures[qname]["streaming"]
		if ref.ns == 0 || str.ns == 0 {
			return // a sub-benchmark was filtered out; nothing to record
		}
		q := map[string]any{
			"control":         "streaming",
			"control_ns":      ref.ns,
			"streaming_ns":    str.ns,
			"speedup":         ref.ns / str.ns,
			"control_bytes":   ref.bytes,
			"streaming_bytes": str.bytes,
			"alloc_ratio":     ref.bytes / str.bytes,
		}
		parNS := make(map[string]any, len(parallelWorkers))
		parSpeedup := make(map[string]any, len(parallelWorkers))
		for _, w := range parallelWorkers {
			par := measures[qname][fmt.Sprintf("parallel%d", w)]
			if par.ns == 0 {
				return // a sub-benchmark was filtered out; nothing to record
			}
			key := strconv.Itoa(w)
			parNS[key] = par.ns
			// Parallel speedup is measured against the serial streaming
			// executor (the pinned control), not the materializing one.
			parSpeedup[key] = str.ns / par.ns
		}
		q["parallel_ns"] = parNS
		q["parallel_speedup"] = parSpeedup
		point[qname] = q
	}
	if err := appendBenchTrajectory(filepath.Join("results", "BENCH_engine.json"), point); err != nil {
		b.Logf("recording trajectory point: %v", err)
	}
}

// BenchmarkSimplify measures partial-valuation simplification of a 64-term
// 4-DNF, the per-probe bookkeeping cost.
func BenchmarkSimplify(b *testing.B) {
	terms := make([]boolexpr.Term, 64)
	for i := range terms {
		terms[i] = boolexpr.NewTerm(
			boolexpr.Var(i), boolexpr.Var(64+i%16), boolexpr.Var(96+i%8), boolexpr.Var(110))
	}
	e := boolexpr.NewExpr(terms...)
	val := boolexpr.NewValuation()
	val.Set(110, true)
	val.Set(96, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.Simplify(val)
	}
}

// BenchmarkToCNF measures the bounded DNF→CNF conversion Q-Value depends
// on (an 8-term 3-DNF, the typical post-split size).
func BenchmarkToCNF(b *testing.B) {
	terms := make([]boolexpr.Term, 8)
	for i := range terms {
		terms[i] = boolexpr.NewTerm(boolexpr.Var(3*i), boolexpr.Var(3*i+1), boolexpr.Var(3*i+2))
	}
	e := boolexpr.NewExpr(terms...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := e.ToCNF(0); !ok {
			b.Fatal("conversion failed")
		}
	}
}

// forestFitDataset builds the forest-training benchmark input: 800 rows
// over 8 categorical features of cardinality 12, roughly the encoded shape
// of a seeded TPC-H repository.
func forestFitDataset() *learn.Dataset {
	d := &learn.Dataset{}
	for i := 0; i < 800; i++ {
		x := make([]int32, 8)
		for f := range x {
			x[f] = int32((i*(f+3) + f*f) % 12)
		}
		d.Add(x, (i*7)%12 < 5)
	}
	return d
}

// BenchmarkForestFit measures random-forest training at the online-
// retraining size, comparing the retained pre-optimization implementation
// (reference: shared sequential RNG, map-based split counting, per-node
// allocation) against the optimized trainer serially (Workers=1) and with
// one worker per CPU (Workers=0). After all sub-benchmarks run, the trio
// is appended as a trajectory point to results/BENCH_learn.json.
func BenchmarkForestFit(b *testing.B) {
	d := forestFitDataset()
	cfg := learn.ForestConfig{Trees: 25, Seed: 11}
	nsPerFit := make(map[string]float64)
	for _, mode := range []struct {
		name string
		fit  func(int64) *learn.Forest
	}{
		{"reference", func(seed int64) *learn.Forest {
			c := cfg
			c.Seed = seed
			return learn.FitForestReference(d, c)
		}},
		{"serial", func(seed int64) *learn.Forest {
			c := cfg
			c.Seed, c.Workers = seed, 1
			return learn.FitForest(d, c)
		}},
		{"parallel", func(seed int64) *learn.Forest {
			c := cfg
			c.Seed, c.Workers = seed, 0
			return learn.FitForest(d, c)
		}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mode.fit(int64(i))
			}
			nsPerFit[mode.name] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
	}
	if nsPerFit["reference"] == 0 || nsPerFit["serial"] == 0 || nsPerFit["parallel"] == 0 {
		return // a sub-benchmark was filtered out; nothing to record
	}
	point := map[string]any{
		"date":            time.Now().UTC().Format("2006-01-02"),
		"benchmark":       "forest_fit",
		"rows":            d.Len(),
		"features":        d.NumFeatures(),
		"trees":           cfg.Trees,
		"reference_ns":    nsPerFit["reference"],
		"serial_ns":       nsPerFit["serial"],
		"parallel_ns":     nsPerFit["parallel"],
		"serial_speedup":  nsPerFit["reference"] / nsPerFit["serial"],
		"overall_speedup": nsPerFit["reference"] / nsPerFit["parallel"],
	}
	if err := appendBenchTrajectory(filepath.Join("results", "BENCH_learn.json"), point); err != nil {
		b.Logf("recording trajectory point: %v", err)
	}
}

// BenchmarkRetrain measures one online-learning retrain on a seeded TPC-H
// repository — the Learner's per-probe cost and the bottleneck of online
// mode. "full" reproduces the pre-optimization retrain exactly (fresh
// encoder, full repository re-encode, reference forest trainer per
// answer); "warm" is the current Learner (encoder reuse, append-only
// delta encoding, optimized trainer at Workers=GOMAXPROCS). Both process
// the same answer stream, so ns/retrain is directly comparable; the pair
// lands in results/BENCH_learn.json.
func BenchmarkRetrain(b *testing.B) {
	sc := bench.Scale{TPCHSF: 0.02, NELLAthletes: 120, InitialProbes: 300, Trees: 25, Reps: 1}
	w, err := bench.LoadTPCH("Q3", sc, bench.FixedGroundTruth(0.5), 7)
	if err != nil {
		b.Fatal(err)
	}
	baseRepo := w.Repository(sc.InitialProbes, 7)
	// The answer stream: provenance variables not already in the seeded
	// repository, answered by the ground truth.
	var stream []boolexpr.Var
	for _, v := range w.Result.UniqueVars() {
		if _, known := baseRepo.Answer(v); !known {
			stream = append(stream, v)
		}
	}
	const retrainsPerIter = 10
	if len(stream) < retrainsPerIter {
		b.Fatalf("only %d stream variables", len(stream))
	}
	stream = stream[:retrainsPerIter]

	nsPerRetrain := make(map[string]float64)

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			repo := baseRepo.Clone()
			for r, v := range stream {
				ans, _ := w.GT.Val.Get(v)
				repo.AddVar(v, w.DB.MetaFor(v), ans)
				enc := learn.NewEncoder(repo.Metas())
				data := repo.Dataset(enc)
				f := learn.FitForestReference(data, learn.ForestConfig{
					Trees: sc.Trees, Seed: 7 + int64(r),
				})
				if f.NumTrees() != sc.Trees {
					b.Fatal("reference retrain produced a short forest")
				}
			}
		}
		nsPerRetrain["full"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N*retrainsPerIter)
	})

	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			learner := resolve.NewLearner(w.DB, baseRepo.Clone(), resolve.LearnerConfig{
				Mode: resolve.LearnOnline, Trees: sc.Trees, Seed: 7,
			})
			b.StartTimer()
			for _, v := range stream {
				ans, _ := w.GT.Val.Get(v)
				learner.Observe(v, ans)
			}
			if learner.Retrains() != retrainsPerIter+1 { // +1 for the construction-time fit
				b.Fatalf("warm learner retrained %d times", learner.Retrains())
			}
		}
		nsPerRetrain["warm"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N*retrainsPerIter)
	})

	full, warm := nsPerRetrain["full"], nsPerRetrain["warm"]
	if full == 0 || warm == 0 {
		return // a sub-benchmark was filtered out; nothing to record
	}
	point := map[string]any{
		"date":                time.Now().UTC().Format("2006-01-02"),
		"benchmark":           "retrain",
		"workload":            "tpch-q3",
		"scale_factor":        sc.TPCHSF,
		"repo_size":           baseRepo.Len(),
		"trees":               sc.Trees,
		"retrains":            retrainsPerIter,
		"full_ns_per_retrain": full,
		"warm_ns_per_retrain": warm,
		"speedup":             full / warm,
	}
	if err := appendBenchTrajectory(filepath.Join("results", "BENCH_learn.json"), point); err != nil {
		b.Logf("recording trajectory point: %v", err)
	}
}

// BenchmarkForestPredict measures per-candidate probability estimation.
func BenchmarkForestPredict(b *testing.B) {
	d := &learn.Dataset{}
	for i := 0; i < 400; i++ {
		d.Add([]int32{int32(i % 7), int32(i % 13), int32(i % 3)}, i%3 == 0)
	}
	f := learn.FitForest(d, learn.ForestConfig{Trees: 25, Seed: 1})
	x := []int32{3, 5, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.ProbTrue(x)
	}
}

// BenchmarkResolveSession measures a full resolution of the paper's
// running example with the General utility (EP learning).
func BenchmarkResolveSession(b *testing.B) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		b.Fatal(err)
	}
	gt := uncertain.GenerateFixed(udb, 0.5, 3)
	orc := benchOracle{val: gt.Val}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sess, err := resolve.NewSession(udb, res, orc, nil,
			resolve.Config{Utility: resolve.General{}, Learning: resolve.LearnEP, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

type benchOracle struct{ val *boolexpr.Valuation }

func (o benchOracle) Probe(v boolexpr.Var) (bool, error) {
	answer, _ := o.val.Get(v)
	return answer, nil
}

// BenchmarkUtilityScores measures one scoring round of each utility over
// a 200-expression workset.
func BenchmarkUtilityScores(b *testing.B) {
	exprs := make([]boolexpr.Expr, 200)
	partOf := make([]int, 200)
	for i := range exprs {
		base := boolexpr.Var(i * 4)
		exprs[i] = boolexpr.NewExpr(
			boolexpr.NewTerm(base, base+1, boolexpr.Var(997)),
			boolexpr.NewTerm(base+2, base+3, boolexpr.Var(998)),
		)
		partOf[i] = i
	}
	prob := func(v boolexpr.Var) float64 { return 0.5 }
	for _, u := range []resolve.Utility{resolve.RO{}, resolve.General{}, resolve.QValue{}} {
		b.Run(u.Name(), func(b *testing.B) {
			w, err := resolve.NewWorksetForBench(exprs, partOf, u.NeedsCNF())
			if err != nil {
				b.Fatal(err)
			}
			cands := resolve.WorksetCandidates(w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = u.Scores(w, prob, cands, i)
			}
		})
	}
}

// BenchmarkResolveStepPath measures the per-step resolve path — probe
// selection (probabilities, utility, selector) plus answer simplification
// — with the incremental hot path on and off, on the large TPC-H-like
// workload. The probe sequences are identical in both modes (see the
// equivalence tests), so ns/step is directly comparable. After both
// sub-benchmarks run, the pair is appended as a trajectory point to
// results/BENCH_resolve.json.
func BenchmarkResolveStepPath(b *testing.B) {
	sc := bench.Scale{TPCHSF: 0.02, NELLAthletes: 120, InitialProbes: 0, Trees: 10, Reps: 1}
	w, err := bench.LoadTPCH("Q3", sc, bench.FixedGroundTruth(0.5), 7)
	if err != nil {
		b.Fatal(err)
	}
	cfg := resolve.Config{Utility: resolve.General{}, Learning: resolve.LearnEP}
	nsPerStep := make(map[string]float64)
	var steps int
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"full", true},
		{"incremental", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			c := cfg
			c.DisableIncremental = mode.disable
			total := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := w.RunWithOracle(c, 0, 7, w.Oracle())
				if err != nil {
					b.Fatal(err)
				}
				total += out.Probes
			}
			b.StopTimer()
			ns := float64(b.Elapsed().Nanoseconds()) / float64(total)
			b.ReportMetric(ns, "ns/step")
			nsPerStep[mode.name] = ns
			steps = total / b.N
		})
	}
	full, inc := nsPerStep["full"], nsPerStep["incremental"]
	if full == 0 || inc == 0 {
		return // a sub-benchmark was filtered out; nothing to record
	}
	point := map[string]any{
		"date":                    time.Now().UTC().Format("2006-01-02"),
		"workload":                "tpch-q3",
		"config":                  cfg.Name(),
		"scale_factor":            sc.TPCHSF,
		"steps":                   steps,
		"full_ns_per_step":        full,
		"incremental_ns_per_step": inc,
		"speedup":                 full / inc,
	}
	if err := appendBenchTrajectory(filepath.Join("results", "BENCH_resolve.json"), point); err != nil {
		b.Logf("recording trajectory point: %v", err)
	}
}

// appendBenchTrajectory appends one measurement to a JSON trajectory file
// (an array of points, newest last).
func appendBenchTrajectory(path string, point map[string]any) error {
	var points []map[string]any
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &points); err != nil {
			return err
		}
	}
	points = append(points, point)
	data, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package qres_test

import (
	"bytes"
	"testing"

	"qres"
)

// TestAsyncSessionMatchesSynchronous drives a session with no oracle
// through NextProbe/SubmitAnswer and checks it reproduces the synchronous
// Resolve outcome on the same seed.
func TestAsyncSessionMatchesSynchronous(t *testing.T) {
	db := buildPaperDB(t)
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	orc := randomOracle(db, 0.5, 17)
	opts := []qres.Option{qres.WithStrategy("general"), qres.WithLearning("ep"), qres.WithSeed(2)}

	sess, err := db.NewSession(res, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	probes := 0
	for {
		probe, done, err := sess.NextProbe()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if probe.Ref == (qres.TupleRef{}) && probe.Values == nil {
			t.Fatal("empty probe returned while not done")
		}
		again, _, err := sess.NextProbe()
		if err != nil || again.Ref != probe.Ref {
			t.Fatalf("NextProbe not idempotent: %v vs %v (%v)", again.Ref, probe.Ref, err)
		}
		answer, _ := orc.Probe(probe.Ref)
		if _, err := sess.SubmitAnswer(probe.Ref, answer); err != nil {
			t.Fatal(err)
		}
		probes++
	}
	out, err := sess.Resolution()
	if err != nil {
		t.Fatal(err)
	}
	if out.Probes != probes {
		t.Fatalf("Probes = %d, submitted %d", out.Probes, probes)
	}
	if len(out.ProbedTuples) != probes {
		t.Fatalf("ProbedTuples = %d, want %d", len(out.ProbedTuples), probes)
	}

	db2 := buildPaperDB(t)
	res2, _ := db2.Query(paperSQL)
	ref, err := db2.Resolve(res2, randomOracle(db2, 0.5, 17), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Probes != out.Probes {
		t.Errorf("async probes = %d, sync = %d", out.Probes, ref.Probes)
	}
	for i := 0; i < res.Len(); i++ {
		if out.IsCorrect(i) != ref.IsCorrect(i) {
			t.Errorf("row %d: async disagrees with sync", i)
		}
	}
}

func TestAsyncSessionErrors(t *testing.T) {
	db := buildPaperDB(t)
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := db.NewSession(res, nil, qres.WithStrategy("general"), qres.WithLearning("ep"))
	if err != nil {
		t.Fatal(err)
	}
	// Step requires an oracle.
	if _, _, err := sess.Step(); err == nil {
		t.Error("Step without oracle accepted")
	}

	sess2, err := db.NewSession(res, nil, qres.WithStrategy("general"), qres.WithLearning("ep"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.SubmitAnswer(qres.TupleRef{Table: "roles", Index: 0}, true); err == nil {
		t.Error("answer with no outstanding probe accepted")
	}
	probe, done, err := sess2.NextProbe()
	if err != nil || done {
		t.Fatalf("NextProbe: %v %v", done, err)
	}
	if _, err := sess2.SubmitAnswer(qres.TupleRef{Table: "nope", Index: 0}, true); err == nil {
		t.Error("answer for unknown tuple accepted")
	}
	if _, err := sess2.SubmitAnswer(probe.Ref, true); err != nil {
		t.Fatal(err)
	}
}

// TestSharedRepositoryReuse resolves one query, then a second session
// with the same shared repository: every overlapping verification is
// reused, so the second run needs strictly fewer (here: zero) new probes.
func TestSharedRepositoryReuse(t *testing.T) {
	db := buildPaperDB(t)
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	repo := db.ProbeRepository()
	orc := randomOracle(db, 0.5, 29)
	opts := []qres.Option{
		qres.WithStrategy("general"), qres.WithLearning("ep"),
		qres.WithSeed(4), qres.WithRepository(repo),
	}
	first, err := db.Resolve(res, orc, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if first.Probes == 0 {
		t.Fatal("first run probed nothing")
	}
	if repo.Len() != first.Probes {
		t.Fatalf("repository has %d records, first run probed %d", repo.Len(), first.Probes)
	}

	// Same query again: everything needed is already known.
	countBefore := orc.count
	second, err := db.Resolve(res, orc, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if orc.count != countBefore {
		t.Errorf("second run issued %d oracle calls, want 0", orc.count-countBefore)
	}
	if second.Probes != 0 {
		t.Errorf("second run Probes = %d, want 0", second.Probes)
	}
	for i := 0; i < res.Len(); i++ {
		if first.IsCorrect(i) != second.IsCorrect(i) {
			t.Errorf("row %d: reuse changed the resolution", i)
		}
	}

	// The repository round-trips through Save/Load.
	var buf bytes.Buffer
	if err := repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := buildPaperDB(t)
	if _, err := db2.Query(paperSQL); err != nil {
		t.Fatal(err)
	}
	repo2, err := db2.LoadProbeRepository(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if repo2.Len() != repo.Len() {
		t.Fatalf("loaded %d records, want %d", repo2.Len(), repo.Len())
	}
	res2, _ := db2.Query(paperSQL)
	orc2 := randomOracle(db2, 0.5, 29)
	countBefore = orc2.count
	third, err := db2.Resolve(res2, orc2,
		qres.WithStrategy("general"), qres.WithLearning("ep"),
		qres.WithSeed(4), qres.WithRepository(repo2))
	if err != nil {
		t.Fatal(err)
	}
	if orc2.count != countBefore {
		t.Errorf("restored-repository run issued %d oracle calls, want 0", orc2.count-countBefore)
	}
	for i := 0; i < res.Len(); i++ {
		if first.IsCorrect(i) != third.IsCorrect(i) {
			t.Errorf("row %d: restored repository changed the resolution", i)
		}
	}
}

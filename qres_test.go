package qres_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"qres"
)

// buildPaperDB constructs the paper's Table 1 database through the public
// API.
func buildPaperDB(t testing.TB) *qres.DB {
	db := qres.New()
	db.MustCreateTable("Acquisitions",
		qres.Column{Name: "Acquired", Kind: qres.String},
		qres.Column{Name: "Acquiring", Kind: qres.String},
		qres.Column{Name: "Date", Kind: qres.DateKind})
	db.MustCreateTable("Roles",
		qres.Column{Name: "Organization", Kind: qres.String},
		qres.Column{Name: "Role", Kind: qres.String},
		qres.Column{Name: "Member", Kind: qres.String})
	db.MustCreateTable("Education",
		qres.Column{Name: "Alumni", Kind: qres.String},
		qres.Column{Name: "Institute", Kind: qres.String},
		qres.Column{Name: "Year", Kind: qres.Int})

	db.MustInsert("Acquisitions", []any{"A2Bdone", "Zazzer", qres.Date{Year: 2020, Month: 11, Day: 7}},
		map[string]string{"source": "example.com"})
	db.MustInsert("Acquisitions", []any{"microBarg", "Fiffer", qres.Date{Year: 2017, Month: 5, Day: 1}},
		map[string]string{"source": "bizwire.example"})
	db.MustInsert("Acquisitions", []any{"fPharm", "Fiffer", qres.Date{Year: 2016, Month: 2, Day: 1}}, nil)
	db.MustInsert("Acquisitions", []any{"Optobest", "microBarg", qres.Date{Year: 2015, Month: 8, Day: 8}}, nil)

	for _, r := range [][3]string{
		{"A2Bdone", "Founder", "Usha Koirala"},
		{"A2Bdone", "Founding member", "Pavel Lebedev"},
		{"A2Bdone", "Founding member", "Nana Alvi"},
		{"microBarg", "Co-founder", "Nana Alvi"},
		{"microBarg", "Co-founder", "Gao Yawen"},
		{"microBarg", "CTO", "Amaal Kader"},
	} {
		db.MustInsert("Roles", []any{r[0], r[1], r[2]}, map[string]string{"source": "people.example"})
	}
	for _, r := range []struct {
		a, i string
		y    int
	}{
		{"Usha Koirala", "U. Melbourne", 2017},
		{"Pavel Lebedev", "U. Melbourne", 2017},
		{"Nana Alvi", "U. Sau Paolo", 2010},
		{"Nana Alvi", "U. Melbourne", 2017},
		{"Gao Yawen", "U. Sau Paolo", 2010},
		{"Amaal Kader", "U. Cape Town", 2005},
	} {
		db.MustInsert("Education", []any{r.a, r.i, r.y}, map[string]string{"source": "alumni.example"})
	}
	return db
}

const paperSQL = `
SELECT DISTINCT a.Acquired, e.Institute
FROM Acquisitions AS a, Roles AS r, Education AS e
WHERE a.Acquired = r.Organization AND r.Member = e.Alumni
  AND a.Date >= 2017.01.01 AND r.Role LIKE '%found%'
  AND e.Year <= year(a.Date)`

// mapOracle answers probes from a fixed correctness map, defaulting to
// correct for unlisted tuples. It is safe for concurrent use once built.
type mapOracle struct {
	correct map[qres.TupleRef]bool
	count   int
}

func (o *mapOracle) Probe(ref qres.TupleRef) (bool, error) {
	o.count++
	c, ok := o.correct[ref]
	if !ok {
		return true, nil
	}
	return c, nil
}

// randomOracle builds a deterministic random ground truth over the DB.
func randomOracle(db *qres.DB, p float64, seed int64) *mapOracle {
	rng := rand.New(rand.NewSource(seed))
	o := &mapOracle{correct: make(map[qres.TupleRef]bool)}
	for _, tbl := range db.Tables() {
		for i := 0; ; i++ {
			if _, _, ok := db.Tuple(qres.TupleRef{Table: tbl, Index: i}); !ok {
				break
			}
			o.correct[qres.TupleRef{Table: tbl, Index: i}] = rng.Float64() < p
		}
	}
	return o
}

// TestQueryEngineParallelism pins the public contract of the Engine
// parallelism dimension: Query with WithParallelism(Parallelism{Engine: n})
// evaluates on the morsel-parallel executor and returns results identical
// to the default serial evaluation — same columns, rows, row order and
// provenance renderings.
func TestQueryEngineParallelism(t *testing.T) {
	db := buildPaperDB(t)
	serial, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 4} {
		par, err := db.Query(paperSQL, qres.WithParallelism(qres.Parallelism{Engine: w}))
		if err != nil {
			t.Fatalf("Engine=%d: %v", w, err)
		}
		if par.Len() != serial.Len() {
			t.Fatalf("Engine=%d: Len = %d, want %d", w, par.Len(), serial.Len())
		}
		for i := 0; i < serial.Len(); i++ {
			if got, want := fmt.Sprint(par.Row(i)), fmt.Sprint(serial.Row(i)); got != want {
				t.Fatalf("Engine=%d row %d = %s, want %s", w, i, got, want)
			}
			if got, want := par.Provenance(i), serial.Provenance(i); got != want {
				t.Fatalf("Engine=%d row %d provenance = %s, want %s", w, i, got, want)
			}
		}
	}
}

func TestBuildAndQuery(t *testing.T) {
	db := buildPaperDB(t)
	if db.NumTuples() != 16 {
		t.Fatalf("NumTuples = %d, want 16", db.NumTuples())
	}
	if got := len(db.Tables()); got != 3 {
		t.Fatalf("Tables = %d", got)
	}
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (paper Table 2)", res.Len())
	}
	if cols := res.Columns(); len(cols) != 2 || cols[0] != "Acquired" {
		t.Fatalf("Columns = %v", cols)
	}
	// Every row is uncertain and exposes its supporting tuples.
	for i := 0; i < res.Len(); i++ {
		if !res.Uncertain(i) {
			t.Errorf("row %d should be uncertain", i)
		}
		if len(res.Tuples(i)) == 0 {
			t.Errorf("row %d has no supporting tuples", i)
		}
		if !strings.Contains(res.Provenance(i), "acquisitions[") {
			t.Errorf("provenance rendering wrong: %s", res.Provenance(i))
		}
	}
	if res.UniqueTupleCount() != 12 {
		t.Errorf("UniqueTupleCount = %d, want 12", res.UniqueTupleCount())
	}
	if !strings.Contains(res.String(), "⟵") {
		t.Error("String() should render provenance")
	}
}

func TestInsertTypeConversions(t *testing.T) {
	db := qres.New()
	db.MustCreateTable("t",
		qres.Column{Name: "i", Kind: qres.Int},
		qres.Column{Name: "f", Kind: qres.Float},
		qres.Column{Name: "s", Kind: qres.String},
		qres.Column{Name: "d", Kind: qres.DateKind},
		qres.Column{Name: "n", Kind: qres.String})
	ref := db.MustInsert("t", []any{
		int64(7), 2.5, "x", time.Date(2020, 3, 4, 12, 0, 0, 0, time.UTC), nil,
	}, map[string]string{"k": "v"})
	values, meta, ok := db.Tuple(ref)
	if !ok {
		t.Fatal("Tuple lookup failed")
	}
	want := []string{"7", "2.5", "x", "2020-03-04", "NULL"}
	for i := range want {
		if values[i] != want[i] {
			t.Errorf("value %d = %q, want %q", i, values[i], want[i])
		}
	}
	if meta["k"] != "v" {
		t.Error("metadata lost")
	}
	// Unsupported type.
	if _, err := db.Insert("t", []any{struct{}{}, 0.0, "", nil, nil}, nil); err == nil {
		t.Error("unsupported type accepted")
	}
}

func TestFreezeSemantics(t *testing.T) {
	db := qres.New()
	db.MustCreateTable("t", qres.Column{Name: "x", Kind: qres.Int})
	db.MustInsert("t", []any{1}, nil)
	if _, err := db.Query("SELECT * FROM t"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("t", []any{2}, nil); err == nil {
		t.Error("insert after freeze accepted")
	}
	if err := db.CreateTable("u", qres.Column{Name: "y", Kind: qres.Int}); err == nil {
		t.Error("create after freeze accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	db := qres.New()
	if err := db.CreateTable("empty"); err == nil {
		t.Error("empty table accepted")
	}
	db.MustCreateTable("t", qres.Column{Name: "x", Kind: qres.Int})
	if err := db.CreateTable("t", qres.Column{Name: "y", Kind: qres.Int}); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.Insert("missing", []any{1}, nil); err == nil {
		t.Error("insert into missing table accepted")
	}
	if _, err := db.Insert("t", []any{1, 2}, nil); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, _, ok := db.Tuple(qres.TupleRef{Table: "missing", Index: 0}); ok {
		t.Error("Tuple of missing table succeeded")
	}
}

func TestResolveExactAnswerAllStrategies(t *testing.T) {
	for _, strategy := range []string{"qvalue", "ro", "general", "random", "greedy", "lal-only"} {
		t.Run(strategy, func(t *testing.T) {
			db := buildPaperDB(t)
			res, err := db.Query(paperSQL)
			if err != nil {
				t.Fatal(err)
			}
			orc := randomOracle(db, 0.5, 41)
			out, err := db.Resolve(res, orc,
				qres.WithStrategy(strategy), qres.WithSeed(7), qres.WithTrees(15))
			if err != nil {
				t.Fatal(err)
			}
			// Verify against brute force: a row is correct iff its
			// supporting-tuple combination exists with all-correct
			// members; equivalently re-ask the oracle-backed truth via a
			// second exhaustive resolution with a different strategy.
			db2 := buildPaperDB(t)
			res2, _ := db2.Query(paperSQL)
			orc2 := randomOracle(db2, 0.5, 41)
			ref, err := db2.Resolve(res2, orc2, qres.WithStrategy("random"), qres.WithSeed(99))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < res.Len(); i++ {
				if out.IsCorrect(i) != ref.IsCorrect(i) {
					t.Errorf("row %d: %s disagrees with reference", i, strategy)
				}
			}
			if out.Probes != len(out.ProbedTuples) {
				t.Errorf("Probes=%d but %d probed tuples", out.Probes, len(out.ProbedTuples))
			}
			if out.Probes > res.UniqueTupleCount() {
				t.Errorf("probes %d exceed budget %d", out.Probes, res.UniqueTupleCount())
			}
		})
	}
}

func TestResolveWithKnownAnswers(t *testing.T) {
	db := buildPaperDB(t)
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	orc := randomOracle(db, 0.5, 5)
	// Seed every supporting tuple's answer: zero probes needed.
	var opts []qres.Option
	seen := map[qres.TupleRef]bool{}
	for i := 0; i < res.Len(); i++ {
		for _, ref := range res.Tuples(i) {
			if !seen[ref] {
				seen[ref] = true
				opts = append(opts, qres.WithKnownAnswer(ref, orc.correct[ref]))
			}
		}
	}
	opts = append(opts, qres.WithStrategy("general"), qres.WithSeed(1))
	out, err := db.Resolve(res, orc, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if out.Probes != 0 {
		t.Fatalf("fully seeded resolution used %d probes", out.Probes)
	}
}

func TestResolveWithTrainingExamples(t *testing.T) {
	db := buildPaperDB(t)
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	orc := randomOracle(db, 0.5, 6)
	var opts []qres.Option
	for i := 0; i < 40; i++ {
		src := "example.com"
		if i%2 == 0 {
			src = "other.example"
		}
		opts = append(opts, qres.WithTrainingExample(map[string]string{"source": src}, i%2 == 1))
	}
	opts = append(opts,
		qres.WithStrategy("general"), qres.WithLearning("offline"),
		qres.WithTrees(15), qres.WithSeed(2))
	if _, err := db.Resolve(res, orc, opts...); err != nil {
		t.Fatal(err)
	}
}

func TestResolveParallel(t *testing.T) {
	db := buildPaperDB(t)
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	orc := randomOracle(db, 0.5, 8)
	out, err := db.ResolveParallel(res, orc,
		qres.WithStrategy("general"), qres.WithLearning("ep"), qres.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := buildPaperDB(t).Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	_ = seq
	if out.Components < 1 {
		t.Error("no components reported")
	}
	if out.CriticalPathProbes > out.Probes {
		t.Error("critical path exceeds total probes")
	}
	// Same answers as a sequential run.
	db2 := buildPaperDB(t)
	res2, _ := db2.Query(paperSQL)
	orc2 := randomOracle(db2, 0.5, 8)
	ref, err := db2.Resolve(res2, orc2, qres.WithStrategy("general"), qres.WithLearning("ep"), qres.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Len(); i++ {
		if out.IsCorrect(i) != ref.IsCorrect(i) {
			t.Errorf("row %d: parallel disagrees with sequential", i)
		}
	}
}

func TestOptionErrors(t *testing.T) {
	db := buildPaperDB(t)
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	orc := randomOracle(db, 0.5, 9)
	if _, err := db.Resolve(res, orc, qres.WithStrategy("nope")); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := db.Resolve(res, orc, qres.WithLearning("nope")); err == nil {
		t.Error("unknown learning mode accepted")
	}
	if _, err := db.Resolve(res, orc, qres.WithModel("nope")); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := db.Resolve(res, orc, qres.WithKnownAnswer(qres.TupleRef{Table: "x", Index: 0}, true)); err == nil {
		t.Error("known answer for unknown tuple accepted")
	}
}

func TestOracleErrorSurfaces(t *testing.T) {
	db := buildPaperDB(t)
	res, err := db.Query(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	failing := qres.OracleFunc(func(qres.TupleRef) (bool, error) {
		return false, fmt.Errorf("expert unavailable")
	})
	if _, err := db.Resolve(res, failing, qres.WithStrategy("general"), qres.WithLearning("ep")); err == nil {
		t.Error("oracle error not surfaced")
	}
}

func TestTupleRefString(t *testing.T) {
	ref := qres.TupleRef{Table: "roles", Index: 3}
	if ref.String() != "roles[3]" {
		t.Errorf("String = %q", ref.String())
	}
}

package qres

import (
	"fmt"

	"qres/internal/obs"
	"qres/internal/resolve"
)

// RowStatus is the live resolution status of a result row during an
// interactive session.
type RowStatus uint8

// Row statuses.
const (
	// Unknown: the row's correctness is not yet decided.
	Unknown RowStatus = iota
	// Correct: the row is certainly a ground-truth answer.
	Correct
	// Incorrect: the row is certainly not a ground-truth answer.
	Incorrect
)

// String renders the status.
func (s RowStatus) String() string {
	switch s {
	case Correct:
		return "correct"
	case Incorrect:
		return "incorrect"
	default:
		return "unknown"
	}
}

// Session is a step-wise resolution: the caller controls the probing loop
// and can inspect which rows are already decided after every verification
// — the paper's interactive mode, where partial results stream to the user
// while the oracle works.
type Session struct {
	db      *DB
	res     *Result
	inner   *resolve.Session
	adapter *oracleAdapter
	reg     *obs.Registry
}

// NewSession prepares a step-wise resolution over the query result. orc
// may be nil: the session must then be driven through the asynchronous
// NextProbe/SubmitAnswer pair, with answers delivered from outside (a
// remote expert, a crowd platform); Step returns an error in that mode.
func (db *DB) NewSession(res *Result, orc Oracle, opts ...Option) (*Session, error) {
	o, err := db.buildOptions(opts)
	if err != nil {
		return nil, err
	}
	repo, err := db.repository(o)
	if err != nil {
		return nil, err
	}
	adapter := &oracleAdapter{db: db, inner: orc}
	var innerOracle resolve.Oracle
	if orc != nil {
		innerOracle = adapter
	}
	inner, err := resolve.NewSession(db.udb, res.res, innerOracle, repo, o.cfg)
	if err != nil {
		return nil, err
	}
	return &Session{db: db, res: res, inner: inner, adapter: adapter, reg: o.reg}, nil
}

// Step issues one verification. It returns the verified tuple and whether
// the session finished with this step. When no oracle call was issued —
// the session was already finished, or every remaining row was decided
// without probing — probed is the zero TupleRef.
func (s *Session) Step() (probed TupleRef, done bool, err error) {
	before := len(s.adapter.log)
	v, done, err := s.inner.Step()
	if err != nil {
		return TupleRef{}, done, err
	}
	if len(s.adapter.log) > before {
		if ref, ok := s.db.udb.RefFor(v); ok {
			probed = TupleRef{Table: ref.Relation, Index: ref.Index}
		}
	}
	return probed, done, nil
}

// Probe is an outstanding verification request of the asynchronous
// session API: the tuple the Probe Selector chose, rendered for a remote
// oracle — reference, column values, and the metadata the Learner trains
// on. The oracle answers by calling SubmitAnswer with the same reference.
type Probe struct {
	// Ref identifies the tuple to verify.
	Ref TupleRef
	// Values are the tuple's rendered column values.
	Values []string
	// Meta is the tuple's metadata (including derived attributes).
	Meta map[string]string
}

// NextProbe runs probe selection and parks the session on the chosen
// tuple, returning the verification request without calling any oracle —
// the asynchronous half-step that lets a remote oracle take arbitrarily
// long per answer. Calling NextProbe again before SubmitAnswer returns
// the same outstanding request (the endpoint is idempotent). done=true
// means every row is already decided and no probe is needed.
func (s *Session) NextProbe() (probe Probe, done bool, err error) {
	req, done, err := s.inner.NextProbe()
	if done || err != nil {
		return Probe{}, done, err
	}
	ref, ok := s.db.udb.RefFor(req.Var)
	if !ok {
		return Probe{}, false, fmt.Errorf("qres: probe selected unknown variable %d", req.Var)
	}
	pub := TupleRef{Table: ref.Relation, Index: ref.Index}
	values, _, _ := s.db.Tuple(pub)
	return Probe{Ref: pub, Values: values, Meta: req.Meta}, false, nil
}

// SubmitAnswer delivers the oracle's verdict for the outstanding probe:
// the answer is recorded, the Learner retrains, and the session advances.
// ref must match the reference returned by NextProbe; submitting with no
// probe outstanding or for a different tuple is an error that leaves the
// session untouched.
func (s *Session) SubmitAnswer(ref TupleRef, correct bool) (done bool, err error) {
	v, err := s.db.varFor(ref)
	if err != nil {
		return false, err
	}
	done, err = s.inner.SubmitAnswer(v, correct)
	if err == nil {
		s.adapter.log = append(s.adapter.log, ref)
	}
	return done, err
}

// Done reports whether every row's correctness is decided.
func (s *Session) Done() bool { return s.inner.Done() }

// Status returns the current per-row resolution statuses, one per result
// row, without issuing any probes.
func (s *Session) Status() []RowStatus {
	snap := s.inner.Snapshot()
	out := make([]RowStatus, len(snap))
	for i, st := range snap {
		switch st {
		case resolve.RowCorrect:
			out[i] = Correct
		case resolve.RowIncorrect:
			out[i] = Incorrect
		default:
			out[i] = Unknown
		}
	}
	return out
}

// Probes returns the number of verifications issued so far.
func (s *Session) Probes() int { return s.inner.Stats().Probes }

// Components returns the number of connected components the session's
// undecided provenance splits into. Components share no variables, so each
// is resolved by its own shard when there is more than one (see
// WithParallelism's Shards dimension).
func (s *Session) Components() int { return s.inner.Components() }

// ComponentSignature fingerprints the session's component structure. Two
// sessions over the same query and repository state share a signature; the
// serving layer uses it to group such sessions onto one shard group.
func (s *Session) ComponentSignature() string { return s.inner.ComponentSignature() }

// Resolution finalizes the session. Calling it before the session is done
// returns ErrSessionNotDone; drive Step (or Finish) to completion first.
func (s *Session) Resolution() (*Resolution, error) {
	if !s.inner.Done() {
		return nil, ErrSessionNotDone
	}
	out, err := s.inner.Run() // no-op loop; collects the outcome
	if err != nil {
		return nil, err
	}
	return s.db.resolution(out.Answers, out.Probes, s.adapter.log, 0, 0), nil
}

// Finish drives the session to completion and returns the resolution.
func (s *Session) Finish() (*Resolution, error) {
	out, err := s.inner.Run()
	if err != nil {
		return nil, err
	}
	return s.db.resolution(out.Answers, out.Probes, s.adapter.log, 0, 0), nil
}

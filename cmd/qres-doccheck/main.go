// Command qres-doccheck verifies godoc coverage: it parses one or more Go
// package directories and fails (exit code 1) when any exported top-level
// symbol — function, method on an exported type, type, constant or
// variable — lacks a documentation comment. It is dependency-free (go/ast
// and go/parser only) and runs in CI as part of the docs job:
//
//	go run ./cmd/qres-doccheck .          # check the root qres package
//	go run ./cmd/qres-doccheck ./a ./b    # check several directories
//
// A constant or variable group is considered documented when either the
// group declaration or the individual spec carries a comment, matching the
// usual Go style for iota blocks.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	var problems []string
	for _, dir := range dirs {
		ps, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qres-doccheck: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "qres-doccheck: %d undocumented exported symbol(s)\n", len(problems))
		os.Exit(1)
	}
}

// checkDir parses the non-test files of every package in dir and returns
// one "file:line: symbol" problem string per undocumented exported symbol.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s is exported but undocumented", p.Filename, p.Line, what))
	}
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if recv, method := receiverType(d); method {
						if !ast.IsExported(recv) {
							continue // method on an unexported type
						}
						report(d.Pos(), recv+"."+d.Name.Name)
						continue
					}
					report(d.Pos(), d.Name.Name)
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return problems, nil
}

// receiverType returns the receiver's type name for a method declaration
// (pointer receivers unwrapped) and whether d is a method at all.
func receiverType(d *ast.FuncDecl) (string, bool) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers appear as IndexExpr / IndexListExpr around the name.
	for {
		switch x := t.(type) {
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name, true
		default:
			return "", true
		}
	}
}

// checkGenDecl reports undocumented exported types, constants and
// variables. A doc comment on the group declaration documents every spec
// in it; otherwise each exported spec needs its own comment.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			if !ts.Name.IsExported() {
				continue
			}
			if d.Doc == nil && ts.Doc == nil {
				report(ts.Pos(), ts.Name.Name)
			}
		}
	case token.CONST, token.VAR:
		if d.Doc != nil {
			return
		}
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			if vs.Doc != nil || vs.Comment != nil {
				continue
			}
			for _, n := range vs.Names {
				if n.IsExported() {
					report(n.Pos(), n.Name)
				}
			}
		}
	}
}

// Command qres-serve hosts resolution sessions over HTTP: it loads an
// uncertain database, opens (or creates) a durable probes store, and
// serves the v1 session API until interrupted, at which point it drains
// in-flight requests, snapshots the shared Known Probes Repository and
// exits. See the README's "Serving mode" section for the endpoints and a
// walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qres/internal/datagen"
	"qres/internal/resolve"
	"qres/internal/server"
	"qres/internal/testdb"
	"qres/internal/uncertain"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		data        = flag.String("data", "paper", "dataset to load: paper | tpch")
		sf          = flag.Float64("sf", 0.002, "TPC-H scale factor (with -data tpch)")
		seed        = flag.Int64("seed", 1, "generation seed (with -data tpch)")
		storeDir    = flag.String("store", "", "probes store directory (empty: in-memory only)")
		maxSessions = flag.Int("max-sessions", 64, "maximum concurrently live sessions")
		ttl         = flag.Duration("ttl", 30*time.Minute, "idle session time-to-live")
	)
	flag.Parse()

	if err := run(*addr, *data, *sf, *seed, *storeDir, *maxSessions, *ttl); err != nil {
		log.Fatal(err)
	}
}

func run(addr, data string, sf float64, seed int64, storeDir string, maxSessions int, ttl time.Duration) error {
	var udb *uncertain.DB
	switch data {
	case "paper":
		udb = testdb.PaperUncertainDB()
	case "tpch":
		udb = datagen.TPCH(datagen.TPCHConfig{SF: sf, Seed: seed})
	default:
		return fmt.Errorf("unknown dataset %q (want paper or tpch)", data)
	}

	cfg := server.Config{DB: udb, MaxSessions: maxSessions, SessionTTL: ttl}
	if storeDir != "" {
		store, repo, err := resolve.OpenStore(storeDir, udb.Registry().Name, udb.Registry().Lookup)
		if err != nil {
			return fmt.Errorf("open store: %w", err)
		}
		log.Printf("store %s: recovered %d known probes (%d from WAL)",
			storeDir, repo.Len(), store.WALRecords())
		cfg.Store = store
		cfg.Repo = repo
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("serving %s (%d tuples) on http://%s", data, udb.NumVars(), ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %s, shutting down", s)
	case err := <-errCh:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("shutdown complete: %d known probes persisted", srv.Repo().Len())
	return nil
}

// Command qres-serve hosts resolution sessions over HTTP: it loads an
// uncertain database, opens (or creates) a durable probes store, and
// serves the v1 session API until interrupted, at which point it drains
// in-flight requests, snapshots the shared Known Probes Repository and
// exits. See the README's "Serving mode" section for the endpoints and a
// walkthrough.
//
// Serving-mode observability (README "Serving-mode observability"):
//
//	-trace spans.jsonl     request-scoped pipeline span trace (JSONL)
//	-slow-log slow.jsonl   structured log of requests over -slow-threshold
//	-debug-addr :6060      net/http/pprof on a separate listener
//
// Every request carries an X-Request-Id (honored when the client sends
// one, generated otherwise) that is echoed in the response and stamped on
// every pipeline span the request triggers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qres/internal/datagen"
	"qres/internal/obs"
	"qres/internal/resolve"
	"qres/internal/server"
	"qres/internal/store"
	"qres/internal/testdb"
	"qres/internal/uncertain"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		data        = flag.String("data", "paper", "dataset to load: paper | tpch | nell")
		sf          = flag.Float64("sf", 0.002, "TPC-H scale factor (with -data tpch)")
		athletes    = flag.Int("athletes", 220, "NELL athlete count (with -data nell)")
		seed        = flag.Int64("seed", 1, "generation seed (with -data tpch or nell)")
		storeDir    = flag.String("store", "", "probes store directory (empty: in-memory only)")
		storeDirAlt = flag.String("store-dir", "", "alias for -store")
		storeEngine = flag.String("store-engine", "segmented", "storage engine: segmented | flat")
		segBytes    = flag.Int64("wal-segment-bytes", 4<<20, "segmented engine: live WAL segment rotation bound")
		compactIntv = flag.Duration("compact-interval", time.Minute, "segmented engine: background compaction interval (<=0 disables)")
		maxSessions = flag.Int("max-sessions", 64, "maximum concurrently live sessions")
		ttl         = flag.Duration("ttl", 30*time.Minute, "idle session time-to-live")
		shardW      = flag.Int("shard-workers", 0, "default component-shard workers per session (0 = per CPU, 1 = serial)")
		engineW     = flag.Int("engine-workers", 0, "default engine workers per query evaluation (0 = per CPU, 1 = serial)")
		tracePath   = flag.String("trace", "", "append pipeline span trace to this JSONL file")
		slowPath    = flag.String("slow-log", "", "append slow-request log to this JSONL file")
		slowAfter   = flag.Duration("slow-threshold", 500*time.Millisecond, "slow-request latency threshold")
		stallAfter  = flag.Duration("retrain-stall", 100*time.Millisecond, "answer-path retrain stall threshold (<0 disables)")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty: disabled)")
	)
	flag.Parse()

	dir := *storeDir
	if dir == "" {
		dir = *storeDirAlt
	}
	opts := serveOptions{
		addr: *addr, data: *data, sf: *sf, athletes: *athletes, seed: *seed,
		storeDir: dir, storeEngine: *storeEngine,
		segmentBytes: *segBytes, compactInterval: *compactIntv,
		maxSessions: *maxSessions, ttl: *ttl,
		shardWorkers: *shardW, engineWorkers: *engineW,
		tracePath: *tracePath, slowPath: *slowPath,
		slowAfter: *slowAfter, stallAfter: *stallAfter, debugAddr: *debugAddr,
	}
	if err := run(opts); err != nil {
		log.Fatal(err)
	}
}

// serveOptions carries the parsed flags into run.
type serveOptions struct {
	addr, data            string
	sf                    float64
	athletes              int
	seed                  int64
	storeDir              string
	storeEngine           string
	segmentBytes          int64
	compactInterval       time.Duration
	maxSessions           int
	shardWorkers          int
	engineWorkers         int
	ttl                   time.Duration
	tracePath, slowPath   string
	slowAfter, stallAfter time.Duration
	debugAddr             string
}

// openProbeStore opens the configured storage engine. The segmented engine
// (default) migrates a flat-store directory in place on first open, so
// switching engines needs no manual conversion; -store-engine flat keeps
// the original per-append-fsync JSONL store (and reads only flat
// directories).
func openProbeStore(o serveOptions, udb *uncertain.DB, reg *obs.Registry) (server.ProbeStore, *resolve.Repository, error) {
	switch o.storeEngine {
	case "segmented", "":
		return store.Open(o.storeDir, store.Options{
			NameFn:          udb.Registry().Name,
			ResolveFn:       udb.Registry().Lookup,
			SegmentBytes:    o.segmentBytes,
			CompactInterval: o.compactInterval,
			Metrics:         reg,
		})
	case "flat":
		return resolve.OpenStore(o.storeDir, udb.Registry().Name, udb.Registry().Lookup)
	default:
		return nil, nil, fmt.Errorf("unknown store engine %q (want segmented or flat)", o.storeEngine)
	}
}

// loadDB builds the uncertain database the service hosts.
func loadDB(data string, sf float64, athletes int, seed int64) (*uncertain.DB, error) {
	switch data {
	case "paper":
		return testdb.PaperUncertainDB(), nil
	case "tpch":
		return datagen.TPCH(datagen.TPCHConfig{SF: sf, Seed: seed}), nil
	case "nell":
		return datagen.NELL(datagen.NELLConfig{Athletes: athletes, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (want paper, tpch or nell)", data)
	}
}

// openSink opens path for appending as a JSONL sink whose encode failures
// feed the named drop counter, making trace loss visible on /metrics.
func openSink(path string, reg *obs.Registry, dropCounter string) (*obs.JSONL, *os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	sink := obs.NewJSONL(f)
	sink.CountDrops(reg.Counter(dropCounter))
	return sink, f, nil
}

func run(o serveOptions) error {
	udb, err := loadDB(o.data, o.sf, o.athletes, o.seed)
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	cfg := server.Config{
		DB:                    udb,
		MaxSessions:           o.maxSessions,
		SessionTTL:            o.ttl,
		Parallel:              resolve.Parallelism{Shards: o.shardWorkers, Engine: o.engineWorkers},
		Registry:              reg,
		SlowRequestThreshold:  o.slowAfter,
		RetrainStallThreshold: o.stallAfter,
	}
	if o.tracePath != "" {
		sink, f, err := openSink(o.tracePath, reg, "trace_dropped_total")
		if err != nil {
			return fmt.Errorf("open trace: %w", err)
		}
		defer f.Close()
		cfg.Trace = sink
	}
	if o.slowPath != "" {
		sink, f, err := openSink(o.slowPath, reg, "slow_log_dropped_total")
		if err != nil {
			return fmt.Errorf("open slow log: %w", err)
		}
		defer f.Close()
		cfg.SlowLog = sink
	}
	if o.storeDir != "" {
		st, repo, err := openProbeStore(o, udb, reg)
		if err != nil {
			return fmt.Errorf("open store: %w", err)
		}
		log.Printf("store %s (%s): recovered %d known probes (%d from WAL)",
			o.storeDir, o.storeEngine, repo.Len(), st.WALRecords())
		cfg.Store = st
		cfg.Repo = repo
	}

	if o.debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", o.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", dln.Addr())
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	log.Printf("serving %s (%d tuples) on http://%s", o.data, udb.NumVars(), ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %s, shutting down", s)
	case err := <-errCh:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("shutdown complete: %d known probes persisted", srv.Repo().Len())
	return nil
}

// Command qres-demo walks through the paper's running example end to end:
// the Table 1 database, the Figure 2 query with its Table 2 provenance,
// and an interactive-style resolution session against a simulated expert,
// printing every probe the framework issues and the final exact answer.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"qres"
)

func main() {
	var (
		strategy = flag.String("strategy", "general", "probe strategy: qvalue|ro|general|random|greedy")
		seed     = flag.Int64("seed", 1, "random seed for the simulated expert")
		p        = flag.Float64("p", 0.7, "probability that a tuple is correct in the simulated ground truth")
	)
	flag.Parse()

	db := buildPaperDatabase()

	fmt.Println("Query (paper Figure 2):")
	const sql = `
SELECT DISTINCT a.Acquired, e.Institute
FROM Acquisitions AS a, Roles AS r, Education AS e
WHERE a.Acquired = r.Organization AND r.Member = e.Alumni
  AND a.Date >= 2017.01.01 AND r.Role LIKE '%found%'
  AND e.Year <= year(a.Date)`
	os.Stdout.WriteString(sql + "\n")

	res, err := db.Query(sql)
	if err != nil {
		fmt.Fprintln(os.Stderr, "demo:", err)
		os.Exit(1)
	}

	fmt.Println("\nUncertain result with Boolean provenance (paper Table 2):")
	fmt.Println(res)
	fmt.Printf("The result depends on %d of the %d database tuples.\n\n",
		res.UniqueTupleCount(), db.NumTuples())

	// The simulated expert: a hidden random ground truth. Every probe is
	// printed, standing in for an email to a data expert.
	rng := rand.New(rand.NewSource(*seed))
	truth := make(map[qres.TupleRef]bool)
	for _, tbl := range db.Tables() {
		for i := 0; ; i++ {
			ref := qres.TupleRef{Table: tbl, Index: i}
			if _, _, ok := db.Tuple(ref); !ok {
				break
			}
			truth[ref] = rng.Float64() < *p
		}
	}
	expert := qres.OracleFunc(func(ref qres.TupleRef) (bool, error) {
		values, _, _ := db.Tuple(ref)
		fmt.Printf("  probe %-18s %v -> correct=%t\n", ref.String(), values, truth[ref])
		return truth[ref], nil
	})

	fmt.Printf("Resolving with strategy %q:\n", *strategy)
	out, err := db.Resolve(res, expert,
		qres.WithStrategy(*strategy), qres.WithSeed(*seed), qres.WithLearning("ep"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "demo:", err)
		os.Exit(1)
	}

	fmt.Printf("\nResolved with %d oracle probes (vs %d tuples a naive approach would verify):\n",
		out.Probes, res.UniqueTupleCount())
	for i := 0; i < res.Len(); i++ {
		status := "INCORRECT"
		if out.IsCorrect(i) {
			status = "CORRECT"
		}
		fmt.Printf("  %-40v %s\n", res.Row(i), status)
	}
}

func buildPaperDatabase() *qres.DB {
	db := qres.New()
	db.MustCreateTable("Acquisitions",
		qres.Column{Name: "Acquired", Kind: qres.String},
		qres.Column{Name: "Acquiring", Kind: qres.String},
		qres.Column{Name: "Date", Kind: qres.DateKind})
	db.MustCreateTable("Roles",
		qres.Column{Name: "Organization", Kind: qres.String},
		qres.Column{Name: "Role", Kind: qres.String},
		qres.Column{Name: "Member", Kind: qres.String})
	db.MustCreateTable("Education",
		qres.Column{Name: "Alumni", Kind: qres.String},
		qres.Column{Name: "Institute", Kind: qres.String},
		qres.Column{Name: "Year", Kind: qres.Int})

	db.MustInsert("Acquisitions", []any{"A2Bdone", "Zazzer", qres.Date{Year: 2020, Month: 11, Day: 7}},
		map[string]string{"source": "example.com"})
	db.MustInsert("Acquisitions", []any{"microBarg", "Fiffer", qres.Date{Year: 2017, Month: 5, Day: 1}},
		map[string]string{"source": "bizwire.example"})
	db.MustInsert("Acquisitions", []any{"fPharm", "Fiffer", qres.Date{Year: 2016, Month: 2, Day: 1}},
		map[string]string{"source": "bizwire.example"})
	db.MustInsert("Acquisitions", []any{"Optobest", "microBarg", qres.Date{Year: 2015, Month: 8, Day: 8}},
		map[string]string{"source": "example.com"})

	for _, r := range [][3]string{
		{"A2Bdone", "Founder", "Usha Koirala"},
		{"A2Bdone", "Founding member", "Pavel Lebedev"},
		{"A2Bdone", "Founding member", "Nana Alvi"},
		{"microBarg", "Co-founder", "Nana Alvi"},
		{"microBarg", "Co-founder", "Gao Yawen"},
		{"microBarg", "CTO", "Amaal Kader"},
	} {
		db.MustInsert("Roles", []any{r[0], r[1], r[2]}, map[string]string{"source": "people.example"})
	}
	for _, r := range []struct {
		alumni, inst string
		year         int
	}{
		{"Usha Koirala", "U. Melbourne", 2017},
		{"Pavel Lebedev", "U. Melbourne", 2017},
		{"Nana Alvi", "U. Sau Paolo", 2010},
		{"Nana Alvi", "U. Melbourne", 2017},
		{"Gao Yawen", "U. Sau Paolo", 2010},
		{"Amaal Kader", "U. Cape Town", 2005},
	} {
		db.MustInsert("Education", []any{r.alumni, r.inst, r.year},
			map[string]string{"source": "alumni.example"})
	}
	return db
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// results/BENCH_serve.json follows the benchmark-control idiom: the file
// header pins a control run (the first run ever appended, annotated with
// its environment), and every later run is appended to "runs". A
// regression is then unambiguous — compare a fresh run's p99 against the
// pinned control instead of against whatever happened to run last.

// benchControl is the pinned header of the results file.
type benchControl struct {
	// Note explains the control idiom to a reader of the raw file.
	Note string `json:"note"`
	// PinnedDate is when the control run was captured.
	PinnedDate string `json:"pinned_date"`
	// Target documents what p99 regressions are judged against.
	Target string `json:"target"`
	// Control is the full pinned run.
	Control report `json:"control"`
}

// benchFile is the serialized shape of results/BENCH_serve.json.
type benchFile struct {
	Baseline benchControl `json:"baseline"`
	Runs     []report     `json:"runs"`
}

// appendRun appends rep to the results file, creating it — with rep
// pinned as the control — when absent.
func appendRun(path string, rep *report) error {
	var bf benchFile
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &bf); err != nil {
			return fmt.Errorf("parse %s (refusing to overwrite): %w", path, err)
		}
	case os.IsNotExist(err):
		bf.Baseline = benchControl{
			Note: "Benchmark control: the first recorded run is pinned here; judge later " +
				"runs against it, not against each other. Re-pin deliberately (edit this " +
				"header) when the serving hardware or workload definition changes.",
			PinnedDate: rep.Date,
			Target: "p99 probe latency within 3x of control at equal rate and workload; " +
				"zero retrain stalls at the control's answer latency",
			Control: *rep,
		}
	default:
		return err
	}
	bf.Runs = append(bf.Runs, *rep)
	out, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

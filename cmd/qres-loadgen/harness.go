package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"qres/internal/datagen"
	"qres/internal/obs"
	"qres/internal/resolve"
	"qres/internal/server"
	"qres/internal/stats"
	"qres/internal/store"
	"qres/internal/testdb"
	"qres/internal/uncertain"
)

// openHarnessStore opens the configured persistence engine for the
// in-process server, so the durable answer path is part of what the
// harness measures.
func openHarnessStore(cfg harnessConfig, udb *uncertain.DB, reg *obs.Registry) (server.ProbeStore, *resolve.Repository, error) {
	switch cfg.StoreEngine {
	case "segmented", "":
		return store.Open(cfg.StoreDir, store.Options{
			NameFn:    udb.Registry().Name,
			ResolveFn: udb.Registry().Lookup,
			Metrics:   reg,
		})
	case "flat":
		return resolve.OpenStore(cfg.StoreDir, udb.Registry().Name, udb.Registry().Lookup)
	default:
		return nil, nil, fmt.Errorf("unknown store engine %q (want segmented or flat)", cfg.StoreEngine)
	}
}

// paperSQL is the paper's Figure 2 query, the workset for -data paper.
const paperSQL = `
SELECT DISTINCT a.Acquired, e.Institute
FROM Acquisitions AS a, Roles AS r, Education AS e
WHERE a.Acquired = r.Organization AND
      r.Member = e.Alumni AND a.Date >= 2017.01.01 AND
      r.Role LIKE '%found%' AND e.YEAR <= year(a.Date)
`

// harnessConfig parameterizes one open-loop run.
type harnessConfig struct {
	// Addr targets a running server ("http://host:port"); empty starts an
	// in-process one over the Data dataset.
	Addr string
	// Data picks the workset: paper, tpch or nell.
	Data     string
	SF       float64
	Athletes int
	// Queries overrides the per-dataset default query mix (names from the
	// datagen catalogs; ignored for paper, whose mix is the Fig. 2 query).
	Queries []string
	// Rate is the arrival rate in sessions/second; arrivals continue for
	// Duration regardless of server progress (open loop).
	Rate     float64
	Duration time.Duration
	// Drain bounds how long in-flight sessions may run on after the
	// arrival window closes.
	Drain         time.Duration
	AnswerLatency time.Duration
	Strategy      string
	Trees         int
	// ShardWorkers bounds component-shard parallelism per session (sent as
	// the create request's parallelism.shards; 0 leaves the server default).
	ShardWorkers int
	// EngineWorkers bounds morsel-parallel query evaluation per session
	// (sent as the create request's parallelism.engine; 0 leaves the
	// server default).
	EngineWorkers int
	// MaxSessions caps the in-process server (ignored with Addr).
	MaxSessions int
	// StoreDir, when set, persists the in-process server's shared
	// repository there (ignored with Addr), putting the durable answer
	// path — WAL append + fsync per answer — inside the measured latency.
	StoreDir string
	// StoreEngine picks the in-process persistence engine: "segmented"
	// (default, group-committed segmented WAL) or "flat" (per-append-fsync
	// JSONL) — the A/B knob behind results/BENCH_store.json.
	StoreEngine string
	Scrape      time.Duration
	Seed        int64
	Label       string
}

// report is one harness run: client-observed latency and throughput plus
// the server-side counters scraped from /metrics. It is the entry format
// of results/BENCH_serve.json.
type report struct {
	Date              string   `json:"date"`
	Label             string   `json:"label,omitempty"`
	Workload          string   `json:"workload"`
	Queries           []string `json:"queries"`
	Target            string   `json:"target"`
	RatePerSec        float64  `json:"rate_per_sec"`
	DurationSec       float64  `json:"duration_sec"`
	AnswerLatencyMS   float64  `json:"answer_latency_ms"`
	Arrivals          int      `json:"arrivals"`
	SessionsCreated   int      `json:"sessions_created"`
	SessionsCompleted int      `json:"sessions_completed"`
	Rejected429       int      `json:"rejected_429"`
	ClientErrors      int      `json:"client_errors"`
	Answers           int      `json:"answers"`
	ShardWorkers      int      `json:"shard_workers,omitempty"`
	EngineWorkers     int      `json:"engine_workers,omitempty"`
	ComponentGroups   int64    `json:"peak_component_groups"`
	ThroughputPerSec  float64  `json:"throughput_answers_per_sec"`
	ProbeSamples      int      `json:"probe_samples"`
	P50ProbeMS        float64  `json:"p50_probe_ms"`
	P90ProbeMS        float64  `json:"p90_probe_ms"`
	P99ProbeMS        float64  `json:"p99_probe_ms"`
	MaxProbeMS        float64  `json:"max_probe_ms"`
	RetrainStalls     int64    `json:"retrain_stalls"`
	ServerRejected    int64    `json:"server_rejected_429"`
	TraceDropped      int64    `json:"trace_dropped"`
	ServerP99ProbeMS  float64  `json:"server_p99_probe_route_ms"`
}

// Summary renders the run as the human-readable block the CI smoke step
// greps (it must mention p50 and p99).
func (r *report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "qres-loadgen %s target=%s rate=%.1f/s window=%.1fs answer-latency=%.1fms\n",
		r.Workload, r.Target, r.RatePerSec, r.DurationSec, r.AnswerLatencyMS)
	fmt.Fprintf(&b, "  arrivals=%d created=%d completed=%d rejected_429=%d errors=%d\n",
		r.Arrivals, r.SessionsCreated, r.SessionsCompleted, r.Rejected429, r.ClientErrors)
	fmt.Fprintf(&b, "  probe latency (client, %d samples): p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms\n",
		r.ProbeSamples, r.P50ProbeMS, r.P90ProbeMS, r.P99ProbeMS, r.MaxProbeMS)
	fmt.Fprintf(&b, "  throughput=%.1f answers/s (%d answers)\n", r.ThroughputPerSec, r.Answers)
	fmt.Fprintf(&b, "  server: retrain_stalls=%d rejected_429=%d trace_dropped=%d probe-route p99=%.2fms\n",
		r.RetrainStalls, r.ServerRejected, r.TraceDropped, r.ServerP99ProbeMS)
	fmt.Fprintf(&b, "  sharding: shard_workers=%d peak_component_groups=%d engine_workers=%d\n",
		r.ShardWorkers, r.ComponentGroups, r.EngineWorkers)
	return b.String()
}

// workloadQueries resolves the run's query mix to (name, SQL) pairs.
func workloadQueries(cfg harnessConfig) (names []string, sqls []string, err error) {
	var catalog map[string]string
	switch cfg.Data {
	case "paper":
		return []string{"FIG2"}, []string{paperSQL}, nil
	case "tpch":
		catalog = datagen.TPCHQueries()
		names = []string{"Q3", "Q5", "Q10"}
	case "nell":
		catalog = datagen.NELLQueries()
		names = []string{"MS1", "MS2", "S1"}
	default:
		return nil, nil, fmt.Errorf("unknown workset %q (want paper, tpch or nell)", cfg.Data)
	}
	if len(cfg.Queries) > 0 {
		names = cfg.Queries
	}
	for _, n := range names {
		sql, ok := catalog[strings.TrimSpace(n)]
		if !ok {
			return nil, nil, fmt.Errorf("unknown %s query %q", cfg.Data, n)
		}
		sqls = append(sqls, sql)
	}
	return names, sqls, nil
}

// inprocessDB builds the dataset for in-process mode.
func inprocessDB(cfg harnessConfig) (*uncertain.DB, error) {
	switch cfg.Data {
	case "paper":
		return testdb.PaperUncertainDB(), nil
	case "tpch":
		return datagen.TPCH(datagen.TPCHConfig{SF: cfg.SF, Seed: cfg.Seed}), nil
	case "nell":
		return datagen.NELL(datagen.NELLConfig{Athletes: cfg.Athletes, Seed: cfg.Seed}), nil
	default:
		return nil, fmt.Errorf("unknown workset %q", cfg.Data)
	}
}

// latencyRecorder accumulates client-observed latencies concurrently.
type latencyRecorder struct {
	mu      sync.Mutex
	samples []float64 // milliseconds
}

func (l *latencyRecorder) add(d time.Duration) {
	l.mu.Lock()
	l.samples = append(l.samples, float64(d.Microseconds())/1e3)
	l.mu.Unlock()
}

// percentiles reports (count, p50, p90, p99, max) over the samples.
func (l *latencyRecorder) percentiles() (int, float64, float64, float64, float64) {
	l.mu.Lock()
	sorted := append([]float64(nil), l.samples...)
	l.mu.Unlock()
	if len(sorted) == 0 {
		return 0, 0, 0, 0, 0
	}
	sort.Float64s(sorted)
	return len(sorted),
		stats.Percentile(sorted, 0.5),
		stats.Percentile(sorted, 0.9),
		stats.Percentile(sorted, 0.99),
		sorted[len(sorted)-1]
}

// counters tracks client-side tallies under one lock.
type counters struct {
	mu        sync.Mutex
	created   int
	completed int
	rejected  int
	errors    int
	answers   int
}

func (c *counters) bump(field *int) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// loadClient issues the v1 session API calls and records latencies.
type loadClient struct {
	base string
	hc   *http.Client
	lat  *latencyRecorder
	ctr  *counters
}

// doJSON performs one request with an optional JSON body, decoding a 2xx
// JSON response into out.
func (c *loadClient) doJSON(ctx context.Context, method, path string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	return resp.StatusCode, nil
}

// driveSession runs one synthetic session to completion: create, then
// alternate probe fetches (timed — this is the latency the report's
// p50/p99 summarize) with answers after the configured think time. The
// session's answers are random but seeded, so a run is reproducible.
func (c *loadClient) driveSession(ctx context.Context, cfg harnessConfig, query string, rng *rand.Rand) {
	create := server.CreateSessionRequest{
		Query:    query,
		Strategy: cfg.Strategy,
		Seed:     rng.Int63(),
		Trees:    cfg.Trees,
	}
	if cfg.ShardWorkers != 0 || cfg.EngineWorkers != 0 {
		create.Parallelism = &server.ParallelismJSON{
			Shards: cfg.ShardWorkers, Engine: cfg.EngineWorkers,
		}
	}
	var info server.SessionInfo
	status, err := c.doJSON(ctx, http.MethodPost, "/v1/sessions", create, &info)
	switch {
	case err != nil:
		c.ctr.bump(&c.ctr.errors)
		return
	case status == http.StatusTooManyRequests:
		c.ctr.bump(&c.ctr.rejected)
		return
	case status != http.StatusCreated:
		c.ctr.bump(&c.ctr.errors)
		return
	}
	c.ctr.bump(&c.ctr.created)
	sessionPath := "/v1/sessions/" + info.ID

	defer func() {
		// Delete with a fresh context: the run context may already be done.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c.doJSON(ctx, http.MethodDelete, sessionPath, nil, nil) //nolint:errcheck // best-effort cleanup
	}()

	for ctx.Err() == nil {
		var pr server.ProbeResponse
		start := time.Now()
		status, err := c.doJSON(ctx, http.MethodGet, sessionPath+"/probe", nil, &pr)
		if err != nil || status != http.StatusOK {
			if ctx.Err() == nil {
				c.ctr.bump(&c.ctr.errors)
			}
			return
		}
		c.lat.add(time.Since(start))
		if pr.Done {
			c.ctr.bump(&c.ctr.completed)
			return
		}
		if cfg.AnswerLatency > 0 {
			select {
			case <-time.After(cfg.AnswerLatency):
			case <-ctx.Done():
				return
			}
		}
		ans := server.AnswerRequest{Table: pr.Probe.Table, Index: pr.Probe.Index, Answer: rng.Intn(2) == 0}
		status, err = c.doJSON(ctx, http.MethodPost, sessionPath+"/answer", ans, nil)
		if err != nil || status != http.StatusOK {
			if ctx.Err() == nil {
				c.ctr.bump(&c.ctr.errors)
			}
			return
		}
		c.ctr.bump(&c.ctr.answers)
	}
}

// runHarness executes one open-loop run and assembles the report.
func runHarness(cfg harnessConfig) (*report, error) {
	names, sqls, err := workloadQueries(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("rate must be positive, got %g", cfg.Rate)
	}

	target := cfg.Addr
	targetLabel := cfg.Addr
	if cfg.Addr == "" {
		udb, err := inprocessDB(cfg)
		if err != nil {
			return nil, err
		}
		scfg := server.Config{
			DB:          udb,
			MaxSessions: cfg.MaxSessions,
			SessionTTL:  5 * time.Minute,
			Registry:    obs.NewRegistry(),
		}
		if cfg.StoreDir != "" {
			st, repo, err := openHarnessStore(cfg, udb, scfg.Registry)
			if err != nil {
				return nil, err
			}
			scfg.Store = st
			scfg.Repo = repo
		}
		srv, err := server.New(scfg)
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go srv.Serve(ln)  //nolint:errcheck // returns ErrServerClosed on Shutdown
		defer srv.Close() //nolint:errcheck // best-effort teardown
		target = "http://" + ln.Addr().String()
		targetLabel = "in-process"
	}

	client := &loadClient{
		base: target,
		hc:   &http.Client{Timeout: 30 * time.Second},
		lat:  &latencyRecorder{},
		ctr:  &counters{},
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration+cfg.Drain)
	defer cancel()

	// Metrics scraper: keep the last successful exposition for the report,
	// plus the peak of the component-group gauge — live gauges read zero on
	// the post-drain final scrape, so the mid-run high-water mark is the
	// number that describes the sharded-serving run.
	var scrapeMu sync.Mutex
	var lastScrape string
	var peakGroups float64
	scrapeOnce := func() {
		req, err := http.NewRequest(http.MethodGet, target+"/metrics", nil)
		if err != nil {
			return
		}
		resp, err := client.hc.Do(req)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			return
		}
		scrapeMu.Lock()
		lastScrape = string(body)
		if g := parseExposition(lastScrape).sum("qres_component_groups_active"); g > peakGroups {
			peakGroups = g
		}
		scrapeMu.Unlock()
	}
	scrapeStop := make(chan struct{})
	go func() {
		t := time.NewTicker(cfg.Scrape)
		defer t.Stop()
		for {
			select {
			case <-scrapeStop:
				return
			case <-t.C:
				scrapeOnce()
			}
		}
	}()

	// Open-loop arrivals: a new session every 1/rate seconds for the
	// arrival window, whether or not earlier sessions have finished.
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var wg sync.WaitGroup
	arrivals := 0
	ticker := time.NewTicker(interval)
	window := time.After(cfg.Duration)
	start := time.Now()
arrivalLoop:
	for {
		select {
		case <-window:
			break arrivalLoop
		case <-ctx.Done():
			break arrivalLoop
		case <-ticker.C:
			arrivals++
			query := sqls[rng.Intn(len(sqls))]
			sessRng := rand.New(rand.NewSource(rng.Int63()))
			wg.Add(1)
			go func() {
				defer wg.Done()
				client.driveSession(ctx, cfg, query, sessRng)
			}()
		}
	}
	ticker.Stop()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		<-done // drivers observe ctx and return promptly
	}
	elapsed := time.Since(start)
	scrapeOnce()
	close(scrapeStop)

	scrapeMu.Lock()
	metricsText := lastScrape
	scrapeMu.Unlock()
	sc := parseExposition(metricsText)

	n, p50, p90, p99, max := client.lat.percentiles()
	client.ctr.mu.Lock()
	defer client.ctr.mu.Unlock()
	rep := &report{
		Date:              time.Now().Format("2006-01-02"),
		Label:             cfg.Label,
		Workload:          cfg.Data,
		Queries:           names,
		Target:            targetLabel,
		RatePerSec:        cfg.Rate,
		DurationSec:       cfg.Duration.Seconds(),
		AnswerLatencyMS:   float64(cfg.AnswerLatency.Microseconds()) / 1e3,
		Arrivals:          arrivals,
		SessionsCreated:   client.ctr.created,
		SessionsCompleted: client.ctr.completed,
		Rejected429:       client.ctr.rejected,
		ClientErrors:      client.ctr.errors,
		Answers:           client.ctr.answers,
		ShardWorkers:      cfg.ShardWorkers,
		EngineWorkers:     cfg.EngineWorkers,
		ComponentGroups:   int64(peakGroups),
		ThroughputPerSec:  float64(client.ctr.answers) / elapsed.Seconds(),
		ProbeSamples:      n,
		P50ProbeMS:        p50,
		P90ProbeMS:        p90,
		P99ProbeMS:        p99,
		MaxProbeMS:        max,
		RetrainStalls:     int64(sc.sum("qres_retrain_stalls_total")),
		ServerRejected:    int64(sc.sum("qres_backpressure_rejections_total")),
		TraceDropped:      int64(sc.sum("qres_trace_dropped_total")),
		ServerP99ProbeMS: 1e3 * sc.value("qres_http_request_seconds",
			`route="probe"`, `class="2xx"`, `quantile="0.99"`),
	}
	return rep, nil
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunHarnessSmoke runs a short in-process open-loop window over the
// paper workset and checks the report carries the fields CI asserts on.
func TestRunHarnessSmoke(t *testing.T) {
	rep, err := runHarness(harnessConfig{
		Data:          "paper",
		Rate:          20,
		Duration:      1500 * time.Millisecond,
		Drain:         30 * time.Second,
		AnswerLatency: time.Millisecond,
		Strategy:      "general",
		Trees:         10,
		MaxSessions:   64,
		Scrape:        200 * time.Millisecond,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProbeSamples == 0 {
		t.Fatal("no probe latencies sampled")
	}
	if rep.SessionsCreated == 0 || rep.Answers == 0 {
		t.Fatalf("no load driven: %+v", rep)
	}
	if rep.ClientErrors != 0 {
		t.Errorf("client errors: %d", rep.ClientErrors)
	}
	if rep.P99ProbeMS < rep.P50ProbeMS || rep.P99ProbeMS > rep.MaxProbeMS {
		t.Errorf("p99 %.3f outside [p50 %.3f, max %.3f]", rep.P99ProbeMS, rep.P50ProbeMS, rep.MaxProbeMS)
	}
	// The scraper must have captured server-side series: the probe-route
	// p99 comes only from /metrics.
	if rep.ServerP99ProbeMS <= 0 {
		t.Errorf("no server-side probe p99 scraped: %+v", rep)
	}
	sum := rep.Summary()
	for _, want := range []string{"p50=", "p99=", "retrain_stalls="} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

// TestAppendRunPinsControl checks the bench-control idiom: the first run
// is pinned as the baseline control, later runs only append.
func TestAppendRunPinsControl(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results", "BENCH_serve.json")
	first := &report{Date: "2026-01-01", Workload: "paper", P99ProbeMS: 1.5}
	second := &report{Date: "2026-01-02", Workload: "paper", P99ProbeMS: 2.5}

	if err := appendRun(path, first); err != nil {
		t.Fatal(err)
	}
	if err := appendRun(path, second); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		t.Fatal(err)
	}
	if bf.Baseline.Control.Date != "2026-01-01" || bf.Baseline.PinnedDate != "2026-01-01" {
		t.Errorf("control not pinned to first run: %+v", bf.Baseline)
	}
	if bf.Baseline.Note == "" || bf.Baseline.Target == "" {
		t.Error("control header missing note/target")
	}
	if len(bf.Runs) != 2 || bf.Runs[1].P99ProbeMS != 2.5 {
		t.Errorf("runs not appended in order: %+v", bf.Runs)
	}

	// A corrupt file is refused, not overwritten.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendRun(path, first); err == nil {
		t.Error("appendRun overwrote an unparseable results file")
	}
}

// TestWorkloadQueries covers the per-dataset mixes and the override.
func TestWorkloadQueries(t *testing.T) {
	names, sqls, err := workloadQueries(harnessConfig{Data: "paper"})
	if err != nil || len(names) != 1 || len(sqls) != 1 {
		t.Fatalf("paper mix: %v %v %v", names, sqls, err)
	}
	names, _, err = workloadQueries(harnessConfig{Data: "nell", Queries: []string{"MS1"}})
	if err != nil || len(names) != 1 || names[0] != "MS1" {
		t.Fatalf("nell override: %v %v", names, err)
	}
	if _, _, err := workloadQueries(harnessConfig{Data: "tpch", Queries: []string{"NOPE"}}); err == nil {
		t.Error("unknown query name accepted")
	}
	if _, _, err := workloadQueries(harnessConfig{Data: "bogus"}); err == nil {
		t.Error("unknown workset accepted")
	}
}

// Command qres-loadgen drives qres-serve with open-loop synthetic load
// and reports tail latency: arrivals start new resolution sessions at a
// fixed rate regardless of how fast the server keeps up (so queueing
// delay is measured, not hidden), each session alternates probe fetches
// with answers after a configurable oracle think time, and the server's
// /metrics surface is scraped alongside the client-side latency samples.
//
// The run report — p50/p99 probe latency, answer throughput, retrain
// stalls on the answer path, and 429 backpressure rejections — is printed
// and appended to results/BENCH_serve.json, whose header pins a control
// run so regressions are unambiguous (the sieswi benchmark-control
// idiom). With no -addr the harness starts an in-process qres-serve
// equivalent, which is how the CI smoke step runs it:
//
//	go run ./cmd/qres-loadgen -data paper -rate 20 -duration 3s -answer-latency 1ms
//	go run ./cmd/qres-loadgen -addr http://127.0.0.1:8080 -data tpch -rate 5 -duration 1m
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"
)

func main() {
	var (
		addr      = flag.String("addr", "", "target server base URL (empty: start an in-process server)")
		data      = flag.String("data", "paper", "workset: paper | tpch | nell (dataset for in-process mode, query mix always)")
		sf        = flag.Float64("sf", 0.002, "TPC-H scale factor (in-process, -data tpch)")
		athletes  = flag.Int("athletes", 220, "NELL athlete count (in-process, -data nell)")
		queries   = flag.String("queries", "", "comma-separated query names overriding the -data default mix")
		rate      = flag.Float64("rate", 5, "session arrivals per second (open loop)")
		duration  = flag.Duration("duration", 10*time.Second, "arrival window")
		drain     = flag.Duration("drain", 30*time.Second, "extra time for in-flight sessions to finish after the arrival window")
		answerLat = flag.Duration("answer-latency", 5*time.Millisecond, "simulated oracle think time per answer")
		strategy  = flag.String("strategy", "general", "session strategy (general, qvalue, ro, random, greedy, lal-only)")
		trees     = flag.Int("trees", 25, "forest size per session")
		shardW    = flag.Int("shard-workers", 0, "component-shard workers per session (0: server default, 1: serial)")
		engineW   = flag.Int("engine-workers", 0, "engine workers per session query evaluation (0: server default, 1: serial)")
		sessions  = flag.Int("max-sessions", 64, "in-process server session cap (drives 429 backpressure)")
		storeDir  = flag.String("store-dir", "", "persist the in-process server's repository here (measures the durable answer path)")
		storeEng  = flag.String("store-engine", "segmented", "in-process persistence engine: segmented | flat")
		scrape    = flag.Duration("scrape", 2*time.Second, "/metrics scrape interval")
		seed      = flag.Int64("seed", 1, "seed for arrival jitter, query mix and synthetic answers")
		out       = flag.String("out", "results/BENCH_serve.json", "bench results file (empty: don't write)")
		label     = flag.String("label", "", "free-form run label recorded in the results file")
	)
	flag.Parse()

	cfg := harnessConfig{
		Addr:          *addr,
		Data:          *data,
		SF:            *sf,
		Athletes:      *athletes,
		Rate:          *rate,
		Duration:      *duration,
		Drain:         *drain,
		AnswerLatency: *answerLat,
		Strategy:      *strategy,
		Trees:         *trees,
		ShardWorkers:  *shardW,
		EngineWorkers: *engineW,
		MaxSessions:   *sessions,
		StoreDir:      *storeDir,
		StoreEngine:   *storeEng,
		Scrape:        *scrape,
		Seed:          *seed,
		Label:         *label,
	}
	if *queries != "" {
		cfg.Queries = strings.Split(*queries, ",")
	}

	rep, err := runHarness(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())
	if *out != "" {
		if err := appendRun(*out, rep); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("appended run to %s\n", *out)
	}
	if rep.ProbeSamples == 0 {
		fmt.Fprintln(os.Stderr, "qres-loadgen: no probe latency samples collected")
		os.Exit(1)
	}
}

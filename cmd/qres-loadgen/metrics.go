package main

import (
	"strconv"
	"strings"
)

// scrapedMetrics is a minimal view over one Prometheus text exposition:
// enough to sum a counter family across its label sets and to look up a
// single labeled series. It deliberately does not parse label values
// beyond substring matching — the harness queries a fixed schema it
// controls, so a full parser would be dead weight.
type scrapedMetrics struct {
	// lines holds every sample line: "name{labels} value" or "name value".
	lines []string
}

// parseExposition splits a text exposition into sample lines.
func parseExposition(text string) *scrapedMetrics {
	var m scrapedMetrics
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m.lines = append(m.lines, line)
	}
	return &m
}

// sampleValue extracts the float value of one sample line.
func sampleValue(line string) (float64, bool) {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(line[i+1:], 64)
	return v, err == nil
}

// sum totals every series of the named metric across its label sets.
func (m *scrapedMetrics) sum(name string) float64 {
	total := 0.0
	for _, line := range m.lines {
		if rest, ok := strings.CutPrefix(line, name); ok &&
			(strings.HasPrefix(rest, "{") || strings.HasPrefix(rest, " ")) {
			if v, ok := sampleValue(line); ok {
				total += v
			}
		}
	}
	return total
}

// value returns the first series of the named metric whose label block
// contains every given `key="value"` fragment (0 when absent).
func (m *scrapedMetrics) value(name string, labelFragments ...string) float64 {
	for _, line := range m.lines {
		rest, ok := strings.CutPrefix(line, name)
		if !ok || !strings.HasPrefix(rest, "{") {
			continue
		}
		match := true
		for _, frag := range labelFragments {
			if !strings.Contains(rest, frag) {
				match = false
				break
			}
		}
		if match {
			if v, ok := sampleValue(line); ok {
				return v
			}
		}
	}
	return 0
}

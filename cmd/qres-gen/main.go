// Command qres-gen generates the synthetic evaluation substrates (the
// NELL-like knowledge base and the TPC-H-like database) and prints their
// statistics, the query workloads, and optionally the Table-3-style
// provenance statistics per query. It is the inspection tool for the data
// the benchmark harness runs on.
//
// Usage:
//
//	qres-gen -dataset nell -athletes 300
//	qres-gen -dataset tpch -sf 0.005 -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"qres/internal/boolexpr"
	"qres/internal/datagen"
	"qres/internal/engine"
	"qres/internal/sqlparse"
	"qres/internal/table"
	"qres/internal/uncertain"
)

func main() {
	var (
		dataset  = flag.String("dataset", "tpch", "dataset to generate: tpch|nell")
		sf       = flag.Float64("sf", 0.003, "TPC-H scale factor")
		athletes = flag.Int("athletes", 300, "NELL athlete count")
		seed     = flag.Int64("seed", 2023, "generation seed")
		stats    = flag.Bool("stats", false, "also compute per-query provenance statistics")
		out      = flag.String("out", "", "write the generated database as JSONL to this file")
	)
	flag.Parse()

	var (
		udb     *uncertain.DB
		queries map[string]string
	)
	switch *dataset {
	case "tpch":
		udb = datagen.TPCH(datagen.TPCHConfig{SF: *sf, Seed: *seed})
		queries = datagen.TPCHQueries()
	case "nell":
		udb = datagen.NELL(datagen.NELLConfig{Athletes: *athletes, Seed: *seed})
		queries = datagen.NELLQueries()
	default:
		fmt.Fprintf(os.Stderr, "qres-gen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	fmt.Printf("dataset %s: %d tuples across %d relations\n",
		*dataset, udb.Data().TotalTuples(), len(udb.Data().Names()))
	for _, name := range udb.Data().Names() {
		rel, _ := udb.Data().Relation(name)
		fmt.Printf("  %-22s %7d tuples  %s\n", name, rel.Len(), rel.Schema())
	}

	names := make([]string, 0, len(queries))
	for q := range queries {
		names = append(names, q)
	}
	sort.Strings(names)
	fmt.Printf("\n%d workload queries: %v\n", len(names), names)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qres-gen: %v\n", err)
			os.Exit(1)
		}
		if err := table.WriteJSON(f, udb.Data()); err != nil {
			fmt.Fprintf(os.Stderr, "qres-gen: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "qres-gen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if !*stats {
		return
	}
	fmt.Printf("\n%-6s %12s %12s %10s %10s\n", "query", "#exprs", "#vars", "term size", "cover")
	for _, q := range names {
		plan, err := sqlparse.ParseAndCompile(queries[q], udb.Data())
		if err != nil {
			fmt.Fprintf(os.Stderr, "qres-gen: %s: %v\n", q, err)
			os.Exit(1)
		}
		res, err := engine.Run(udb, plan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qres-gen: %s: %v\n", q, err)
			os.Exit(1)
		}
		cover, ok := boolexpr.GreedyCover(res.Provenance(), 50)
		coverCell := fmt.Sprintf("%d", len(cover))
		if !ok {
			coverCell = "-"
		}
		fmt.Printf("%-6s %12d %12d %10d %10s\n",
			q, len(res.Rows), len(res.UniqueVars()), res.MaxTermSize(), coverCell)
	}
}

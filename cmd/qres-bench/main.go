// Command qres-bench regenerates the tables and figures of the paper's
// evaluation section over the synthetic substrates.
//
// Usage:
//
//	qres-bench -exp fig5              # one experiment
//	qres-bench -exp all               # everything, in order
//	qres-bench -list                  # show available experiment ids
//	qres-bench -exp fig6 -full        # slower, closer-to-paper scale
//	qres-bench -exp table3 -csv out/  # also write CSV files
//	qres-bench -trace out.jsonl       # traced run + per-component timings
//
// Every run is deterministic in -seed (trace spans carry wall-clock
// timestamps and real durations, so trace files differ run to run).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"qres/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		full   = flag.Bool("full", false, "use the slower, closer-to-paper scale")
		seed   = flag.Int64("seed", 2023, "master random seed")
		csvDir = flag.String("csv", "", "directory to also write <id>.csv files into")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		trace  = flag.String("trace", "", "run one fully traced resolution, writing JSONL spans to this file, and report per-component timings")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	scale := bench.ScaleQuick()
	if *full {
		scale = bench.ScaleFull()
	}

	if *trace != "" {
		if *exp != "all" {
			fmt.Fprintf(os.Stderr, "qres-bench: -trace runs its own workload; ignoring -exp %s\n", *exp)
		}
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qres-bench: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		rep, err := bench.TraceRun(scale, *seed, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "qres-bench: trace failed: %v\n", err)
			os.Exit(1)
		}
		rep.WriteTable(os.Stdout)
		fmt.Printf("(trace written to %s in %.1fs)\n", *trace, time.Since(start).Seconds())
		return
	}

	var todo []bench.Experiment
	if *exp == "all" {
		todo = bench.Experiments()
	} else {
		e, ok := bench.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "qres-bench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		todo = []bench.Experiment{e}
	}

	for _, e := range todo {
		start := time.Now()
		rep, err := e.Run(scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qres-bench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		rep.WriteTable(os.Stdout)
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())

		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "qres-bench: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, e.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "qres-bench: %v\n", err)
				os.Exit(1)
			}
			rep.WriteCSV(f)
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "qres-bench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// Package stats provides small statistical helpers used across the
// repository: summary statistics (mean, median, percentiles), Welford
// accumulators for streaming timing data, and seeded random-number helpers
// that keep every experiment deterministic and reproducible.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Summary holds the order statistics reported in the paper's Table 4
// (average, median, maximum and 90th percentile).
type Summary struct {
	Count  int
	Mean   float64
	Median float64
	Max    float64
	Min    float64
	P90    float64
	Stddev float64
}

// Summarize computes a Summary over xs. It copies xs before sorting, so the
// caller's slice is left untouched. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	var sum float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))

	var sq float64
	for _, x := range sorted {
		d := x - mean
		sq += d * d
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(sq / float64(len(sorted)-1))
	}

	return Summary{
		Count:  len(sorted),
		Mean:   mean,
		Median: Percentile(sorted, 0.5),
		Max:    sorted[len(sorted)-1],
		Min:    sorted[0],
		P90:    Percentile(sorted, 0.9),
		Stddev: std,
	}
}

// Percentile returns the p-th percentile (p in [0,1]) of a sorted slice
// using linear interpolation between closest ranks. The slice must be
// sorted in ascending order.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanInts returns the arithmetic mean of integer observations.
func MeanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// Timer accumulates durations and reports a Summary in seconds, matching the
// units of the paper's Table 4. Timers are safe for concurrent use, so
// component timings from parallel sub-sessions can aggregate into one Timer.
type Timer struct {
	mu      sync.Mutex
	samples []float64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.mu.Lock()
	t.samples = append(t.samples, d.Seconds())
	t.mu.Unlock()
}

// Time runs fn and records how long it took. It returns fn's duration.
func (t *Timer) Time(fn func()) time.Duration {
	start := time.Now()
	fn()
	d := time.Since(start)
	t.Observe(d)
	return d
}

// Samples returns a copy of the observed durations in seconds.
func (t *Timer) Samples() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]float64(nil), t.samples...)
}

// Merge appends every observation of other into t.
func (t *Timer) Merge(other *Timer) {
	xs := other.Samples()
	t.mu.Lock()
	t.samples = append(t.samples, xs...)
	t.mu.Unlock()
}

// Summary reports the accumulated order statistics in seconds.
func (t *Timer) Summary() Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Summarize(t.samples)
}

// Count reports how many durations have been observed.
func (t *Timer) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.samples)
}

// Reset discards all observations.
func (t *Timer) Reset() {
	t.mu.Lock()
	t.samples = t.samples[:0]
	t.mu.Unlock()
}

// String renders the summary as "avg/median/max/p90" seconds with three
// decimal places, the precision used in the paper.
func (s Summary) String() string {
	return fmt.Sprintf("avg=%.3f median=%.3f max=%.3f p90=%.3f", s.Mean, s.Median, s.Max, s.P90)
}

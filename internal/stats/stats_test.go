package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P90 != 4.6 { // linear interpolation between 4 and 5 at rank 3.6
		t.Errorf("P90 = %f, want 4.6", s.P90)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Stddev = %f", s.Stddev)
	}
	if got := Summarize(nil); got.Count != 0 || got.Mean != 0 {
		t.Error("empty summary must be zero")
	}
	// Input must not be mutated (Summarize sorts a copy).
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 {
		t.Error("Summarize mutated its input")
	}
}

func TestPercentileEdges(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{-1, 10}, {0, 10}, {0.5, 25}, {1, 40}, {2, 40},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); got != c.want {
			t.Errorf("Percentile(%f) = %f, want %f", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile must be 0")
	}
}

func TestMeanHelpers(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 || Mean(nil) != 0 {
		t.Error("Mean wrong")
	}
	if MeanInts([]int{2, 4}) != 3 || MeanInts(nil) != 0 {
		t.Error("MeanInts wrong")
	}
}

func TestTimer(t *testing.T) {
	var tm Timer
	tm.Observe(100 * time.Millisecond)
	tm.Observe(300 * time.Millisecond)
	if tm.Count() != 2 {
		t.Fatalf("Count = %d", tm.Count())
	}
	s := tm.Summary()
	if math.Abs(s.Mean-0.2) > 1e-9 {
		t.Errorf("Mean = %f", s.Mean)
	}
	d := tm.Time(func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond {
		t.Error("Time under-measured")
	}
	if tm.Count() != 3 {
		t.Error("Time did not record")
	}
	tm.Reset()
	if tm.Count() != 0 {
		t.Error("Reset failed")
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewSplitMix64(1).Next() == NewSplitMix64(2).Next() {
		t.Error("different seeds should differ")
	}
	if NewSplitMix64(7).NextInt63() < 0 {
		t.Error("NextInt63 must be non-negative")
	}
}

// SubSeed is deterministic and its sub-streams are pairwise distinct for
// practical index ranges.
func TestSubSeedProperties(t *testing.T) {
	f := func(master int64) bool {
		seen := make(map[int64]bool)
		for n := 0; n < 32; n++ {
			s := SubSeed(master, n)
			if s != SubSeed(master, n) {
				return false
			}
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package stats

// SplitMix64 is a tiny deterministic pseudo-random generator used to derive
// independent sub-stream seeds from a master experiment seed. Deriving seeds
// through SplitMix64 (rather than seed+1, seed+2, ...) avoids the strong
// correlations that consecutive seeds induce in linear generators, which
// matters because every experiment in this repository must be reproducible
// from a single seed while its components (data generation, ground truth,
// probe tie-breaking, bootstrap sampling) must look mutually independent.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NextInt63 returns a non-negative int64, suitable for math/rand sources.
func (s *SplitMix64) NextInt63() int64 {
	return int64(s.Next() >> 1)
}

// SubSeed derives the n-th sub-stream seed from master. The same (master, n)
// pair always yields the same seed.
func SubSeed(master int64, n int) int64 {
	g := NewSplitMix64(uint64(master))
	var out int64
	for i := 0; i <= n; i++ {
		out = g.NextInt63()
	}
	return out
}

package datagen_test

import (
	"testing"

	"qres/internal/datagen"
	"qres/internal/engine"
	"qres/internal/sqlparse"
	"qres/internal/uncertain"
)

func TestNELLDeterministic(t *testing.T) {
	a := datagen.NELL(datagen.NELLConfig{Athletes: 50, Seed: 1})
	b := datagen.NELL(datagen.NELLConfig{Athletes: 50, Seed: 1})
	if a.Data().TotalTuples() != b.Data().TotalTuples() {
		t.Fatal("same seed must give same sizes")
	}
	if a.NumVars() != a.Data().TotalTuples() {
		t.Fatal("one variable per tuple")
	}
	for _, name := range a.Data().Names() {
		ra, _ := a.Data().Relation(name)
		rb, _ := b.Data().Relation(name)
		if ra.Len() != rb.Len() {
			t.Fatalf("relation %s sizes differ", name)
		}
		for i := 0; i < ra.Len(); i++ {
			if ra.At(i).Key() != rb.At(i).Key() {
				t.Fatalf("relation %s tuple %d differs", name, i)
			}
		}
	}
}

func TestNELLShape(t *testing.T) {
	udb := datagen.NELL(datagen.NELLConfig{Athletes: 100, Seed: 2})
	for _, name := range []string{
		"athleteplaysforteam", "athleteplayssport", "athleteplaysinleague",
		"teamplaysinleague", "generalizations",
	} {
		rel, ok := udb.Data().Relation(name)
		if !ok {
			t.Fatalf("missing relation %s", name)
		}
		if rel.Len() == 0 {
			t.Fatalf("relation %s is empty", name)
		}
		// Every fact carries source/category/entity metadata.
		meta := rel.MetaAt(0)
		for _, attr := range []string{"source", "category", "entity"} {
			if meta[attr] == "" {
				t.Errorf("%s tuple 0 missing %s metadata", name, attr)
			}
		}
	}
	apt, _ := udb.Data().Relation("athleteplaysforteam")
	if apt.Len() < 100 {
		t.Errorf("athleteplaysforteam has %d facts, want >= athletes", apt.Len())
	}
}

func TestNELLQueriesCompileAndRun(t *testing.T) {
	udb := datagen.NELL(datagen.NELLConfig{Athletes: 80, Seed: 3})
	for name, sql := range datagen.NELLQueries() {
		t.Run(name, func(t *testing.T) {
			res := mustRun(t, udb, sql)
			if len(res.Rows) == 0 {
				t.Fatalf("query %s returned no rows", name)
			}
			for _, row := range res.Rows {
				if row.Prov.Decided() {
					t.Fatalf("query %s produced constant provenance", name)
				}
			}
		})
	}
}

func TestTPCHDeterministicAndScaled(t *testing.T) {
	a := datagen.TPCH(datagen.TPCHConfig{SF: 0.001, Seed: 4})
	b := datagen.TPCH(datagen.TPCHConfig{SF: 0.001, Seed: 4})
	if a.Data().TotalTuples() != b.Data().TotalTuples() {
		t.Fatal("same seed must give same sizes")
	}
	big := datagen.TPCH(datagen.TPCHConfig{SF: 0.004, Seed: 4})
	if big.Data().TotalTuples() <= a.Data().TotalTuples() {
		t.Fatal("larger SF must give more tuples")
	}
	// All eight TPC-H relations exist.
	for _, name := range []string{
		"region", "nation", "supplier", "customer", "part", "partsupp",
		"orders", "lineitem",
	} {
		if _, ok := a.Data().Relation(name); !ok {
			t.Fatalf("missing relation %s", name)
		}
	}
	region, _ := a.Data().Relation("region")
	if region.Len() != 5 {
		t.Errorf("regions = %d, want 5", region.Len())
	}
	nation, _ := a.Data().Relation("nation")
	if nation.Len() != 25 {
		t.Errorf("nations = %d, want 25", nation.Len())
	}
}

func TestTPCHQueriesCompileAndRun(t *testing.T) {
	udb := datagen.TPCH(datagen.TPCHConfig{SF: 0.002, Seed: 5})
	queries := datagen.TPCHQueries()
	if len(queries) != 10 {
		t.Fatalf("expected 10 queries, got %d", len(queries))
	}
	for name, sql := range queries {
		t.Run(name, func(t *testing.T) {
			res := mustRun(t, udb, sql)
			t.Logf("%s: %d output tuples, %d unique vars, term size %d",
				name, len(res.Rows), len(res.UniqueVars()), res.MaxTermSize())
			// Highly selective joins (Q2's part filters, Q7's specific
			// nation pair) can be empty at tiny scale; everything else
			// must have output.
			if len(res.Rows) == 0 && name != "Q7" && name != "Q2" {
				t.Errorf("query %s returned no rows", name)
			}
		})
	}
}

// Term sizes follow the join arity by construction; Table 3 reports term
// size 3 for Q3, 8 for Q8 and 4 for Q10.
func TestTPCHTermSizes(t *testing.T) {
	udb := datagen.TPCH(datagen.TPCHConfig{SF: 0.004, Seed: 6})
	want := map[string]int{"Q3": 3, "Q8": 8, "Q10": 4}
	for name, wantK := range want {
		res := mustRun(t, udb, datagen.TPCHQueries()[name])
		if len(res.Rows) == 0 {
			t.Fatalf("%s empty at this scale", name)
		}
		if got := res.MaxTermSize(); got != wantK {
			t.Errorf("%s term size = %d, want %d", name, got, wantK)
		}
	}
}

func mustRun(t *testing.T, udb *uncertain.DB, sql string) *engine.Result {
	t.Helper()
	plan, err := sqlparse.ParseAndCompile(sql, udb.Data())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := engine.Run(udb, plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

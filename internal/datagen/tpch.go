package datagen

import (
	"fmt"
	"math/rand"

	"qres/internal/table"
	"qres/internal/uncertain"
)

// TPCHConfig sizes the TPC-H-like database. Cardinalities follow the
// TPC-H ratios scaled by SF: at SF 1 the original benchmark has 10k
// suppliers, 150k customers, 200k parts, 1.5M orders and ~6M lineitems;
// the experiments here run at small fractions of that (the provenance
// shape, not the raw row count, is what drives resolution behaviour).
type TPCHConfig struct {
	// SF is the scale factor (default 0.002).
	SF float64
	// Seed drives all generation.
	Seed int64
	// Lean skips per-tuple metadata (the maps and formatted strings the
	// Learner trains on), which dominates generation memory at SF ≥ 1.
	// Engine benchmarks, which never touch metadata, set it to generate
	// large scale factors cheaply. The random-number stream is consumed
	// identically in both modes, so for a given SF and Seed the tuple data
	// is byte-for-byte the same with and without Lean.
	Lean bool
}

func (c TPCHConfig) withDefaults() TPCHConfig {
	if c.SF <= 0 {
		c.SF = 0.002
	}
	return c
}

// DefaultTPCHConfig returns the test-scale configuration.
func DefaultTPCHConfig(seed int64) TPCHConfig {
	return TPCHConfig{Seed: seed}.withDefaults()
}

func scaled(base int, sf float64, min int) int {
	n := int(float64(base) * sf)
	if n < min {
		n = min
	}
	return n
}

var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	nationRegion = []int{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}

	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipmodes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	partTypes1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	partTypes2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	partTypes3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	partColors = []string{"green", "blue", "red", "ivory", "khaki", "salmon", "peach", "navy", "almond", "puff"}
	containers = []string{"SM CASE", "SM BOX", "LG CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PKG"}
)

// TPCH generates the database at cfg.SF and returns it as an uncertain
// database. Each tuple carries metadata: source (an ingestion batch,
// standing in for data lineage), rel-specific content attributes, and the
// entity key — the attribute families the Learner trains on.
func TPCH(cfg TPCHConfig) *uncertain.DB {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	nSupplier := scaled(10_000, cfg.SF, 8)
	nCustomer := scaled(150_000, cfg.SF, 20)
	nPart := scaled(200_000, cfg.SF, 25)
	nOrders := scaled(1_500_000, cfg.SF, 60)
	batches := 12
	// batch always consumes one rng draw so Lean mode leaves the random
	// stream — and therefore every generated tuple — unchanged.
	batch := func() string {
		b := rng.Intn(batches)
		if cfg.Lean {
			return ""
		}
		return fmt.Sprintf("batch-%02d", b)
	}
	// meta materializes a tuple's metadata unless Lean generation is on.
	// Callers must draw batch() outside the closure argument so the rng
	// stream does not depend on the mode.
	meta := func(m func() table.Metadata) table.Metadata {
		if cfg.Lean {
			return nil
		}
		return m()
	}

	db := table.NewDatabase()
	col := func(name string, k table.Kind) table.Column { return table.Column{Name: name, Kind: k} }

	region := table.NewRelation("region", table.NewSchema(
		col("r_regionkey", table.KindInt), col("r_name", table.KindString)))
	for i, name := range regionNames {
		region.MustAppend(table.Tuple{table.Int(int64(i)), table.String_(name)},
			table.Metadata{"source": "reference", "entity": name})
	}
	db.MustAdd(region)

	nation := table.NewRelation("nation", table.NewSchema(
		col("n_nationkey", table.KindInt), col("n_name", table.KindString),
		col("n_regionkey", table.KindInt)))
	for i, name := range nationNames {
		nation.MustAppend(
			table.Tuple{table.Int(int64(i)), table.String_(name), table.Int(int64(nationRegion[i]))},
			table.Metadata{"source": "reference", "entity": name, "value": regionNames[nationRegion[i]]})
	}
	db.MustAdd(nation)

	supplier := table.NewRelation("supplier", table.NewSchema(
		col("s_suppkey", table.KindInt), col("s_name", table.KindString),
		col("s_nationkey", table.KindInt), col("s_acctbal", table.KindFloat)))
	supplier.Reserve(nSupplier)
	for i := 0; i < nSupplier; i++ {
		nk := rng.Intn(len(nationNames))
		// The tuple is built before batch() so the rng draw order matches
		// the original inline-literal evaluation order exactly.
		t := table.Tuple{
			table.Int(int64(i)),
			table.String_(fmt.Sprintf("Supplier#%06d", i)),
			table.Int(int64(nk)),
			table.Float(float64(rng.Intn(1_000_000)) / 100),
		}
		src := batch()
		supplier.MustAppend(t, meta(func() table.Metadata {
			return table.Metadata{"source": src, "entity": fmt.Sprintf("supplier-%d", i), "value": nationNames[nk]}
		}))
	}
	db.MustAdd(supplier)

	customer := table.NewRelation("customer", table.NewSchema(
		col("c_custkey", table.KindInt), col("c_name", table.KindString),
		col("c_nationkey", table.KindInt), col("c_mktsegment", table.KindString),
		col("c_acctbal", table.KindFloat)))
	customer.Reserve(nCustomer)
	for i := 0; i < nCustomer; i++ {
		nk := rng.Intn(len(nationNames))
		seg := segments[rng.Intn(len(segments))]
		t := table.Tuple{
			table.Int(int64(i)),
			table.String_(fmt.Sprintf("Customer#%06d", i)),
			table.Int(int64(nk)),
			table.String_(seg),
			table.Float(float64(rng.Intn(1_000_000)) / 100),
		}
		src := batch()
		customer.MustAppend(t, meta(func() table.Metadata {
			return table.Metadata{"source": src, "entity": fmt.Sprintf("customer-%d", i), "value": seg}
		}))
	}
	db.MustAdd(customer)

	part := table.NewRelation("part", table.NewSchema(
		col("p_partkey", table.KindInt), col("p_name", table.KindString),
		col("p_type", table.KindString), col("p_size", table.KindInt),
		col("p_brand", table.KindString), col("p_container", table.KindString)))
	part.Reserve(nPart)
	for i := 0; i < nPart; i++ {
		ptype := fmt.Sprintf("%s %s %s",
			partTypes1[rng.Intn(len(partTypes1))],
			partTypes2[rng.Intn(len(partTypes2))],
			partTypes3[rng.Intn(len(partTypes3))])
		pname := fmt.Sprintf("%s %s part-%d",
			partColors[rng.Intn(len(partColors))],
			partColors[rng.Intn(len(partColors))], i)
		t := table.Tuple{
			table.Int(int64(i)),
			table.String_(pname),
			table.String_(ptype),
			table.Int(int64(1 + rng.Intn(50))),
			table.String_(fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5))),
			table.String_(containers[rng.Intn(len(containers))]),
		}
		src := batch()
		part.MustAppend(t, meta(func() table.Metadata {
			return table.Metadata{"source": src, "entity": fmt.Sprintf("part-%d", i), "value": ptype}
		}))
	}
	db.MustAdd(part)

	partsupp := table.NewRelation("partsupp", table.NewSchema(
		col("ps_partkey", table.KindInt), col("ps_suppkey", table.KindInt),
		col("ps_supplycost", table.KindFloat), col("ps_availqty", table.KindInt)))
	partsupp.Reserve(2 * nPart)
	for i := 0; i < nPart; i++ {
		// TPC-H pairs each part with 4 suppliers; 2 keeps small scales joinable.
		for j := 0; j < 2; j++ {
			sk := (i*7 + j*13) % nSupplier
			t := table.Tuple{
				table.Int(int64(i)), table.Int(int64(sk)),
				table.Float(float64(rng.Intn(100_000)) / 100),
				table.Int(int64(rng.Intn(10_000))),
			}
			src := batch()
			partsupp.MustAppend(t, meta(func() table.Metadata {
				return table.Metadata{"source": src, "entity": fmt.Sprintf("part-%d", i)}
			}))
		}
	}
	db.MustAdd(partsupp)

	orders := table.NewRelation("orders", table.NewSchema(
		col("o_orderkey", table.KindInt), col("o_custkey", table.KindInt),
		col("o_orderstatus", table.KindString), col("o_totalprice", table.KindFloat),
		col("o_orderdate", table.KindDate), col("o_orderpriority", table.KindString),
		col("o_shippriority", table.KindInt)))
	lineitem := table.NewRelation("lineitem", table.NewSchema(
		col("l_orderkey", table.KindInt), col("l_partkey", table.KindInt),
		col("l_suppkey", table.KindInt), col("l_linenumber", table.KindInt),
		col("l_quantity", table.KindFloat), col("l_extendedprice", table.KindFloat),
		col("l_discount", table.KindFloat), col("l_tax", table.KindFloat),
		col("l_returnflag", table.KindString), col("l_linestatus", table.KindString),
		col("l_shipdate", table.KindDate), col("l_commitdate", table.KindDate),
		col("l_receiptdate", table.KindDate), col("l_shipmode", table.KindString)))

	randDate := func(startYear, spanDays int) table.Value {
		base := rng.Intn(spanDays)
		y := startYear + base/365
		rem := base % 365
		m := 1 + rem/31
		d := 1 + rem%28
		return table.Date(y, m, d)
	}
	orders.Reserve(nOrders)
	lineitem.Reserve(nOrders * 5 / 2) // lines per order average 2.5
	for i := 0; i < nOrders; i++ {
		ck := rng.Intn(nCustomer)
		odate := randDate(1992, 7*365)
		status := "O"
		if rng.Float64() < 0.49 {
			status = "F"
		}
		ot := table.Tuple{
			table.Int(int64(i)), table.Int(int64(ck)),
			table.String_(status),
			table.Float(float64(rng.Intn(40_000_000)) / 100),
			odate,
			table.String_(priorities[rng.Intn(len(priorities))]),
			table.Int(int64(rng.Intn(2))),
		}
		osrc := batch()
		orders.MustAppend(ot, meta(func() table.Metadata {
			return table.Metadata{"source": osrc, "entity": fmt.Sprintf("order-%d", i)}
		}))

		lines := 1 + rng.Intn(4)
		for ln := 0; ln < lines; ln++ {
			pk := rng.Intn(nPart)
			sk := (pk*7 + (ln%2)*13) % nSupplier // consistent with partsupp pairing
			ship := odate.AsInt() + int64(1+rng.Intn(90))
			commit := odate.AsInt() + int64(10+rng.Intn(60))
			receipt := ship + int64(1+rng.Intn(30))
			rf := "N"
			if rng.Float64() < 0.25 {
				rf = "R"
			} else if rng.Float64() < 0.3 {
				rf = "A"
			}
			ls := "O"
			if rng.Float64() < 0.5 {
				ls = "F"
			}
			lt := table.Tuple{
				table.Int(int64(i)), table.Int(int64(pk)), table.Int(int64(sk)),
				table.Int(int64(ln + 1)),
				table.Float(float64(1 + rng.Intn(50))),
				table.Float(float64(rng.Intn(10_000_000)) / 100),
				table.Float(float64(rng.Intn(11)) / 100),
				table.Float(float64(rng.Intn(9)) / 100),
				table.String_(rf), table.String_(ls),
				table.DateFromOrdinal(normalizeDate(ship)),
				table.DateFromOrdinal(normalizeDate(commit)),
				table.DateFromOrdinal(normalizeDate(receipt)),
				table.String_(shipmodes[rng.Intn(len(shipmodes))]),
			}
			lsrc := batch()
			lineitem.MustAppend(lt, meta(func() table.Metadata {
				return table.Metadata{"source": lsrc, "entity": fmt.Sprintf("order-%d", i), "value": rf}
			}))
		}
	}
	db.MustAdd(orders)
	db.MustAdd(lineitem)

	return uncertain.New(db)
}

// normalizeDate repairs yyyymmdd arithmetic that overflowed the day or
// month field (day-level arithmetic on the encoding is approximate; the
// workloads only require a consistent total order, which this preserves).
func normalizeDate(d int64) int64 {
	y, m, day := d/10000, (d/100)%100, d%100
	for day > 28 {
		day -= 28
		m++
	}
	for m > 12 {
		m -= 12
		y++
	}
	return y*10000 + m*100 + day
}

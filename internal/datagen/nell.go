// Package datagen generates the two evaluation substrates of the paper's
// Section 7 in synthetic form:
//
//   - a NELL-like knowledge base of entity-relation-value facts with
//     source/category metadata (standing in for the 1.3M-fact labeled NELL
//     subset, which is an external download), shaped so that the paper's
//     hand-written queries exhibit the same provenance-skewness classes;
//   - a TPC-H-like relational database at a configurable scale factor
//     (standing in for dbgen SF1), with the aggregation-stripped SPJU
//     versions of queries Q1–Q10.
//
// Both generators are fully deterministic in their seeds, so every
// experiment in the repository is reproducible from a single seed.
package datagen

import (
	"fmt"
	"math/rand"

	"qres/internal/table"
	"qres/internal/uncertain"
)

// NELLConfig sizes the synthetic knowledge base.
type NELLConfig struct {
	// Athletes is the number of athlete entities (default 300). Facts
	// scale linearly with it.
	Athletes int
	// Sports is the number of sport entities (default 12).
	Sports int
	// Leagues is the number of leagues (default 14).
	Leagues int
	// TeamsPerSport is the number of teams per sport (default 8).
	TeamsPerSport int
	// Sources is the size of the Web-source pool facts are attributed to
	// (default 30).
	Sources int
	// Seed drives all generation.
	Seed int64
}

func (c NELLConfig) withDefaults() NELLConfig {
	if c.Athletes <= 0 {
		c.Athletes = 300
	}
	if c.Sports <= 0 {
		c.Sports = 12
	}
	if c.Leagues <= 0 {
		c.Leagues = 14
	}
	if c.TeamsPerSport <= 0 {
		c.TeamsPerSport = 8
	}
	if c.Sources <= 0 {
		c.Sources = 30
	}
	return c
}

// DefaultNELLConfig returns the benchmark-scale configuration.
func DefaultNELLConfig(seed int64) NELLConfig {
	return NELLConfig{Seed: seed}.withDefaults()
}

// NELL generates the knowledge base and returns it as an uncertain
// database. Relations (mirroring NELL's predicate naming used by the
// paper's Figure 4 query):
//
//	athleteplaysforteam(athlete, team)
//	athleteplayssport(athlete, sport)
//	athleteplaysinleague(athlete, league)
//	teamplaysinleague(team, league)
//	generalizations(entity, value)
//
// Every fact carries metadata: source (a Web-source pool with a Zipf-like
// skew toward a few large sources), category, and the entity/value content
// attributes the paper's Section 7.4 found most informative.
func NELL(cfg NELLConfig) *uncertain.DB {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	sources := make([]string, cfg.Sources)
	for i := range sources {
		sources[i] = fmt.Sprintf("web-%02d.example.com", i)
	}
	// Zipf-ish source picker: a few sources contribute most facts, like
	// real Web extraction.
	pickSource := func() string {
		// P(source i) ∝ 1/(i+1), sampled by rejection-free inversion over
		// precomputed cumulative weights would be cleaner, but a squared
		// uniform gives the same heavy-head shape cheaply.
		i := int(float64(len(sources)) * rng.Float64() * rng.Float64())
		if i >= len(sources) {
			i = len(sources) - 1
		}
		return sources[i]
	}

	sports := make([]string, cfg.Sports)
	for i := range sports {
		sports[i] = fmt.Sprintf("sport_%s", nameFor(i, sportNames))
	}
	leagues := make([]string, cfg.Leagues)
	for i := range leagues {
		leagues[i] = fmt.Sprintf("league_%s", nameFor(i, leagueNames))
	}
	var teams []string
	teamSport := make(map[string]string)
	teamLeague := make(map[string]string)
	for si, sport := range sports {
		for t := 0; t < cfg.TeamsPerSport; t++ {
			team := fmt.Sprintf("team_%s_%d", nameFor(si*cfg.TeamsPerSport+t, teamNames), t)
			teams = append(teams, team)
			teamSport[team] = sport
			// Each sport maps to 1–2 leagues; teams inherit one.
			teamLeague[team] = leagues[(si*2+t%2)%len(leagues)]
		}
	}

	db := table.NewDatabase()
	strCol := func(name string) table.Column { return table.Column{Name: name, Kind: table.KindString} }

	apt := table.NewRelation("athleteplaysforteam", table.NewSchema(strCol("athlete"), strCol("team")))
	aps := table.NewRelation("athleteplayssport", table.NewSchema(strCol("athlete"), strCol("sport")))
	apl := table.NewRelation("athleteplaysinleague", table.NewSchema(strCol("athlete"), strCol("league")))
	tpl := table.NewRelation("teamplaysinleague", table.NewSchema(strCol("team"), strCol("league")))
	gen := table.NewRelation("generalizations", table.NewSchema(strCol("entity"), strCol("value")))

	addFact := func(rel *table.Relation, category string, values ...string) {
		tup := make(table.Tuple, len(values))
		for i, v := range values {
			tup[i] = table.String_(v)
		}
		rel.MustAppend(tup, table.Metadata{
			"source":   pickSource(),
			"category": category,
			"entity":   values[0],
			"value":    values[len(values)-1],
		})
	}

	for a := 0; a < cfg.Athletes; a++ {
		athlete := fmt.Sprintf("athlete_%s_%d", nameFor(a, athleteNames), a)
		team := teams[rng.Intn(len(teams))]
		sport := teamSport[team]
		league := teamLeague[team]

		addFact(apt, "athlete", athlete, team)
		// Some athletes have a second (often spurious) team fact, the
		// kind of extraction noise NELL exhibits.
		if rng.Float64() < 0.25 {
			addFact(apt, "athlete", athlete, teams[rng.Intn(len(teams))])
		}
		addFact(aps, "athlete", athlete, sport)
		addFact(apl, "athlete", athlete, league)
		if rng.Float64() < 0.15 {
			addFact(apl, "athlete", athlete, leagues[rng.Intn(len(leagues))])
		}
	}
	for _, team := range teams {
		addFact(tpl, "team", team, teamLeague[team])
	}
	// generalizations: each sport is declared a sport (and occasionally a
	// hobby), plus unrelated noise entities. These facts are the
	// skew-inducing hubs of query MS1: one generalization fact occurs in
	// the provenance term of every output derived from its sport.
	for _, sport := range sports {
		addFact(gen, "concept", sport, "sport")
		if rng.Float64() < 0.3 {
			addFact(gen, "concept", sport, "hobby")
		}
	}
	for i := 0; i < cfg.Sports*3; i++ {
		addFact(gen, "concept", fmt.Sprintf("thing_%d", i), "object")
	}

	for _, rel := range []*table.Relation{apt, aps, apl, tpl, gen} {
		db.MustAdd(rel)
	}
	return uncertain.New(db)
}

// NELLQueries returns the hand-written NELL query workload by name,
// mirroring the paper's skewness naming: S* skewed, MS* moderately skewed,
// NS* non-skewed. MS1 is the paper's Figure 4 verbatim.
func NELLQueries() map[string]string {
	return map[string]string{
		// Figure 4: teams with their corresponding sport and league.
		"MS1": `
			SELECT DISTINCT a.team, b.sport, c.league
			FROM athleteplaysforteam as a, athleteplayssport as b,
			     athleteplaysinleague as c, generalizations as d
			WHERE a.athlete = b.athlete AND a.athlete = c.athlete AND
			      d.entity = b.sport AND
			      (d.value LIKE '%sport%' or d.value LIKE '%hobby%')`,
		// Sport-league combinations: outputs aggregate many athletes, so
		// a moderate set of sport/league facts covers the provenance.
		"MS2": `
			SELECT DISTINCT b.sport, c.league
			FROM athleteplayssport as b, athleteplaysinleague as c
			WHERE b.athlete = c.athlete`,
		// Teams of one league: the single league's membership facts are
		// hubs occurring across all terms — skewed.
		"S1": `
			SELECT DISTINCT a.team
			FROM athleteplaysforteam as a, teamplaysinleague as t
			WHERE a.team = t.team AND t.league LIKE 'league_alpha%'`,
		// Athlete roster: each output tuple depends only on that
		// athlete's own facts — non-skewed, near-read-once provenance.
		"NS1": `
			SELECT DISTINCT a.athlete
			FROM athleteplaysforteam as a`,
	}
}

// nameFor deterministically picks a base name, cycling with a numeric
// suffix beyond the pool.
func nameFor(i int, pool []string) string {
	base := pool[i%len(pool)]
	if i < len(pool) {
		return base
	}
	return fmt.Sprintf("%s%d", base, i/len(pool))
}

var athleteNames = []string{
	"garnett", "ramos", "sato", "okafor", "novak", "silva", "khan", "moreau",
	"petrov", "yamada", "costa", "ali", "berg", "tanaka", "ortiz", "weber",
	"lind", "fischer", "rossi", "dubois", "kim", "chen", "olsen", "haddad",
}

var sportNames = []string{
	"basketball", "soccer", "tennis", "hockey", "baseball", "rugby",
	"cricket", "volleyball", "handball", "golf", "cycling", "rowing",
}

var leagueNames = []string{
	"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
	"iota", "kappa", "lambda", "mu", "nu", "xi",
}

var teamNames = []string{
	"falcons", "tigers", "sharks", "wolves", "eagles", "bears", "lions",
	"hawks", "bulls", "rams", "foxes", "owls", "pumas", "orcas", "vipers",
	"ravens", "stags", "colts", "herons", "lynx",
}

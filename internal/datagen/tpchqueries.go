package datagen

// TPCHQueries returns the aggregation-stripped SPJU versions of TPC-H
// Q1–Q10 used throughout the paper's evaluation (Section 7.1: "we retained
// queries Q1–Q10, which are without nesting or negation; we stripped out
// aggregation — GROUP BY without aggregation is equivalent to
// projection"). Where the original query nests or aggregates, the SPJU
// core (its join structure and selections) is kept and the output is the
// DISTINCT projection of the former grouping columns.
//
// The provenance classes these induce match the paper's classification:
// Q1/Q3/Q4/Q6 non-skewed, Q5/Q7/Q8 skewed, Q9/Q10 moderately skewed, and
// Q1/Q6 are SP queries with read-once (disjunction) provenance.
func TPCHQueries() map[string]string {
	return map[string]string{
		// Q1: pricing summary → DISTINCT flag/status combinations.
		"Q1": `
			SELECT DISTINCT l_returnflag, l_linestatus
			FROM lineitem
			WHERE l_shipdate <= 1998.09.02`,

		// Q2: minimum-cost supplier core (the nested min() is stripped).
		"Q2": `
			SELECT DISTINCT s.s_name, p.p_partkey
			FROM part AS p, partsupp AS ps, supplier AS s, nation AS n, region AS r
			WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey
			  AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
			  AND r.r_name = 'EUROPE' AND p.p_size >= 15 AND p.p_type LIKE '%BRASS'`,

		// Q3: shipping priority.
		"Q3": `
			SELECT DISTINCT l.l_orderkey, o.o_orderdate, o.o_shippriority
			FROM customer AS c, orders AS o, lineitem AS l
			WHERE c.c_mktsegment = 'BUILDING'
			  AND c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
			  AND o.o_orderdate < 1995.03.15 AND l.l_shipdate > 1995.03.15`,

		// Q4: order-priority checking (EXISTS flattened to a join).
		"Q4": `
			SELECT DISTINCT o.o_orderpriority, o.o_orderkey
			FROM orders AS o, lineitem AS l
			WHERE o.o_orderkey = l.l_orderkey
			  AND o.o_orderdate >= 1993.07.01 AND o.o_orderdate < 1993.10.01
			  AND l.l_commitdate < l.l_receiptdate`,

		// Q5: local supplier volume: DISTINCT nations of one region. Few
		// output tuples, each with a very large DNF — the paper's
		// splitting stress case (Figure 8).
		"Q5": `
			SELECT DISTINCT n.n_name
			FROM customer AS c, orders AS o, lineitem AS l, supplier AS s,
			     nation AS n, region AS r
			WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
			  AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey
			  AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
			  AND r.r_name = 'ASIA'
			  AND o.o_orderdate >= 1994.01.01 AND o.o_orderdate < 1997.01.01`,

		// Q6: forecasting revenue-change core (SP, read-once provenance).
		"Q6": `
			SELECT DISTINCT l_orderkey
			FROM lineitem
			WHERE l_shipdate >= 1994.01.01 AND l_shipdate < 1995.01.01
			  AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24`,

		// Q7: volume shipping between two nations — the nation tuples hub
		// every term (skewed).
		"Q7": `
			SELECT DISTINCT n1.n_name, n2.n_name, year(l.l_shipdate)
			FROM supplier AS s, lineitem AS l, orders AS o, customer AS c,
			     nation AS n1, nation AS n2
			WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey
			  AND c.c_custkey = o.o_custkey AND s.s_nationkey = n1.n_nationkey
			  AND c.c_nationkey = n2.n_nationkey
			  AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
			    OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
			  AND l.l_shipdate >= 1995.01.01 AND l.l_shipdate <= 1996.12.31`,

		// Q8: national market share — the paper's running representative
		// (Table 3: 8-way join, term size 8, cover size 6).
		"Q8": `
			SELECT DISTINCT year(o.o_orderdate), n2.n_name
			FROM part AS p, supplier AS s, lineitem AS l, orders AS o,
			     customer AS c, nation AS n1, nation AS n2, region AS r
			WHERE p.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey
			  AND l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey
			  AND c.c_nationkey = n1.n_nationkey AND n1.n_regionkey = r.r_regionkey
			  AND s.s_nationkey = n2.n_nationkey
			  AND r.r_name = 'AMERICA'
			  AND o.o_orderdate >= 1995.01.01 AND o.o_orderdate <= 1996.12.31
			  AND p.p_type LIKE 'ECONOMY%'`,

		// Q9: product-type profit measure over green parts (moderately
		// skewed: outputs aggregate per nation × year).
		"Q9": `
			SELECT DISTINCT n.n_name, year(o.o_orderdate)
			FROM part AS p, supplier AS s, lineitem AS l, partsupp AS ps,
			     orders AS o, nation AS n
			WHERE s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey
			  AND ps.ps_partkey = l.l_partkey AND p.p_partkey = l.l_partkey
			  AND o.o_orderkey = l.l_orderkey AND s.s_nationkey = n.n_nationkey
			  AND p.p_name LIKE '%green%'`,

		// Q10: returned-item reporting (moderately skewed: the 25 nation
		// tuples cover the provenance, matching the paper's cover 25).
		"Q10": `
			SELECT DISTINCT c.c_custkey, c.c_name, n.n_name
			FROM customer AS c, orders AS o, lineitem AS l, nation AS n
			WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
			  AND o.o_orderdate >= 1993.10.01 AND o.o_orderdate < 1994.01.01
			  AND l.l_returnflag = 'R' AND c.c_nationkey = n.n_nationkey`,
	}
}

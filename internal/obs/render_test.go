package obs

import (
	"strings"
	"testing"
	"time"
)

func TestWriteTextRendersAllMetricKinds(t *testing.T) {
	reg := NewRegistry()
	o := New("General+LAL", nil, reg)
	o.Emit(StageProbe, 0, time.Now(), 10*time.Millisecond)
	o.Emit(StageProbe, 1, time.Now(), 30*time.Millisecond)
	o.Gauge("undecided_exprs", 3)
	reg.Counter("sessions_created_total").Inc()

	var b strings.Builder
	if err := WriteText(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE qres_events_total counter\n",
		`qres_events_total{stage="probe",session="General+LAL"} 2`,
		"# TYPE qres_stage_seconds summary\n",
		`qres_stage_seconds_count{stage="probe",session="General+LAL"} 2`,
		`qres_stage_seconds{stage="probe",session="General+LAL",quantile="0.5"}`,
		`qres_stage_seconds{stage="probe",session="General+LAL",quantile="0.9"}`,
		"# TYPE qres_undecided_exprs gauge\n",
		`qres_undecided_exprs{session="General+LAL"} 3`,
		"# TYPE qres_sessions_created_total counter\n",
		"qres_sessions_created_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q\n%s", want, out)
		}
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	reg := NewRegistry()
	for _, s := range []string{"b", "a", "c"} {
		reg.Counter("events_total", "probe", s).Add(2)
		reg.Gauge("undecided_exprs", s).Set(1)
	}
	var b1, b2 strings.Builder
	if err := WriteText(&b1, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&b2, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("rendering is not deterministic")
	}
	// Label values sort within a family.
	out := b1.String()
	ia := strings.Index(out, `session="a"`)
	ib := strings.Index(out, `session="b"`)
	ic := strings.Index(out, `session="c"`)
	if !(ia < ib && ib < ic) {
		t.Errorf("series not sorted: a@%d b@%d c@%d\n%s", ia, ib, ic, out)
	}
}

func TestSplitKey(t *testing.T) {
	for _, tc := range []struct {
		key    string
		name   string
		labels []string
	}{
		{"plain", "plain", nil},
		{"m{a}", "m", []string{"a"}},
		{"m{a,b}", "m", []string{"a", "b"}},
	} {
		name, labels := splitKey(tc.key)
		if name != tc.name || len(labels) != len(tc.labels) {
			t.Errorf("splitKey(%q) = %q,%v", tc.key, name, labels)
		}
	}
}

package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// JSONL is a Sink writing one JSON object per event, newline-delimited.
// It serializes writes with a mutex, so a single JSONL may receive events
// from concurrent sessions (e.g. parallel resolution). Encode failures
// (closed file, full disk) never fail the resolution being observed, but
// they are counted — see Dropped and CountDrops — so lost trace data is
// visible instead of silent.
type JSONL struct {
	mu      sync.Mutex
	enc     *json.Encoder
	dropped atomic.Int64
	dropCtr *Counter // optional registry counter mirroring dropped
}

// NewJSONL wraps w as a JSONL trace sink.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// CountDrops mirrors every dropped event into c (typically the registry's
// "trace_dropped_total" counter), so a full disk shows up on /metrics.
// Call it before emitting begins; it is not synchronized with Emit.
func (j *JSONL) CountDrops(c *Counter) { j.dropCtr = c }

// Dropped returns how many events failed to encode and were lost.
func (j *JSONL) Dropped() int64 { return j.dropped.Load() }

// jsonEvent is the wire form of an Event. Attrs collapse to an object, so
// lines stay greppable: {"stage":"probe","round":3,"us":41,"attrs":{...}}.
type jsonEvent struct {
	Time    string `json:"t"`
	Stage   string `json:"stage"`
	Session string `json:"session,omitempty"`
	// SID and Req carry the hosted-session and originating-request IDs in
	// serving mode.
	SID    string         `json:"sid,omitempty"`
	Req    string         `json:"req,omitempty"`
	Round  int            `json:"round"`
	Micros int64          `json:"us"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Emit implements Sink.
func (j *JSONL) Emit(ev Event) {
	var attrs map[string]any
	if len(ev.Attrs) > 0 {
		attrs = make(map[string]any, len(ev.Attrs))
		for _, a := range ev.Attrs {
			attrs[a.Key] = a.Value
		}
	}
	rec := jsonEvent{
		Time:    ev.Time.UTC().Format(time.RFC3339Nano),
		Stage:   string(ev.Stage),
		Session: ev.Session,
		SID:     ev.SessionID,
		Req:     ev.Request,
		Round:   ev.Round,
		Micros:  ev.Dur.Microseconds(),
		Attrs:   attrs,
	}
	j.mu.Lock()
	err := j.enc.Encode(rec)
	j.mu.Unlock()
	if err != nil {
		// Tracing must never fail the resolution it observes; count the
		// loss instead of surfacing the error.
		j.dropped.Add(1)
		if j.dropCtr != nil {
			j.dropCtr.Inc()
		}
	}
}

// Collector is an in-memory Sink for tests and programmatic consumers.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (c *Collector) Emit(ev Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a copy of everything collected so far.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// StageCount returns how many collected events belong to stage.
func (c *Collector) StageCount(stage Stage) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ev := range c.events {
		if ev.Stage == stage {
			n++
		}
	}
	return n
}

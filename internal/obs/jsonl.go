package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// JSONL is a Sink writing one JSON object per event, newline-delimited.
// It serializes writes with a mutex, so a single JSONL may receive events
// from concurrent sessions (e.g. parallel resolution).
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONL wraps w as a JSONL trace sink.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// jsonEvent is the wire form of an Event. Attrs collapse to an object, so
// lines stay greppable: {"stage":"probe","round":3,"us":41,"attrs":{...}}.
type jsonEvent struct {
	Time    string         `json:"t"`
	Stage   string         `json:"stage"`
	Session string         `json:"session,omitempty"`
	Round   int            `json:"round"`
	Micros  int64          `json:"us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Emit implements Sink.
func (j *JSONL) Emit(ev Event) {
	var attrs map[string]any
	if len(ev.Attrs) > 0 {
		attrs = make(map[string]any, len(ev.Attrs))
		for _, a := range ev.Attrs {
			attrs[a.Key] = a.Value
		}
	}
	rec := jsonEvent{
		Time:    ev.Time.UTC().Format(time.RFC3339Nano),
		Stage:   string(ev.Stage),
		Session: ev.Session,
		Round:   ev.Round,
		Micros:  ev.Dur.Microseconds(),
		Attrs:   attrs,
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	// Encode errors (closed file, full disk) are swallowed: tracing must
	// never fail the resolution it observes.
	_ = j.enc.Encode(rec)
}

// Collector is an in-memory Sink for tests and programmatic consumers.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (c *Collector) Emit(ev Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a copy of everything collected so far.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// StageCount returns how many collected events belong to stage.
func (c *Collector) StageCount(stage Stage) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ev := range c.events {
		if ev.Stage == stage {
			n++
		}
	}
	return n
}

// Package obs is the observability layer of the resolution pipeline: a
// concurrency-safe metrics registry (counters, gauges, bounded histograms)
// and a structured span tracer with pluggable sinks (JSONL, in-memory
// collectors). Every pipeline stage — query evaluation, provenance
// construction, expression splitting, repository reuse, learner
// (re)training, probability estimation, LAL scoring, utility scoring,
// probe selection, oracle probes and simplification — reports through a
// single *Obs handle threaded from the public API down to the engine.
//
// A nil *Obs disables everything: all methods are nil-receiver safe and
// return immediately, so instrumented call sites cost one pointer
// comparison when observability is off.
package obs

import (
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage of the resolution framework. Stage
// values appear verbatim in trace events and as metric labels.
type Stage string

// Pipeline stages, in rough execution order.
const (
	// StageQueryEval covers SPJU plan execution with provenance tracking
	// (framework Step 2).
	StageQueryEval Stage = "query_eval"
	// StageQueryOperator is one streaming plan operator within a query
	// evaluation: its span carries the operator label, the rows it produced
	// and the inclusive (subtree) time spent producing them. Emitted only
	// when a span sink is attached (per-row timing is skipped otherwise).
	StageQueryOperator Stage = "query_op"
	// StageProvenance covers provenance-annotation bookkeeping after plan
	// execution (unique variables, term sizes).
	StageProvenance Stage = "provenance"
	// StageRepoReuse covers Step 3's substitution of repository-known
	// answers into the provenance before any oracle call.
	StageRepoReuse Stage = "repo_reuse"
	// StageSplit covers expression splitting and bounded CNF conversion
	// (the Section 7.1 pre-processing).
	StageSplit Stage = "split"
	// StageRetrain covers one Learner (re)training pass over the Known
	// Probes Repository.
	StageRetrain Stage = "retrain"
	// StageForestFit covers one random-forest fit inside the Learner.
	StageForestFit Stage = "forest_fit"
	// StageLALTrain covers offline LAL regressor training.
	StageLALTrain Stage = "lal_train"
	// StageLearner covers per-round probability estimation over the
	// candidate probes (Sub-step 4.1a, the paper's Table 4 "Learner" row).
	StageLearner Stage = "learner"
	// StageLAL covers per-round uncertainty-reduction scoring (Sub-step
	// 4.1b, Table 4's "LAL" row).
	StageLAL Stage = "lal"
	// StageUtility covers per-round utility computation (Sub-step 4.2).
	StageUtility Stage = "utility"
	// StageSelector covers the Probe Selector's combine-and-argmax
	// (Sub-step 4.3).
	StageSelector Stage = "selector"
	// StageProbe covers one oracle call; its duration is the oracle's
	// answer latency.
	StageProbe Stage = "probe"
	// StageSimplify covers substituting a probe answer into the working
	// expressions and re-simplifying.
	StageSimplify Stage = "simplify"
	// StageHTTPRequest is one served HTTP request. The resolution service
	// emits it to the slow-request log when a request exceeds the
	// configured latency threshold; its duration is the request's
	// wall-clock service time.
	StageHTTPRequest Stage = "http_request"
)

// Attr is one key/value annotation on a span event.
type Attr struct {
	Key   string
	Value any
}

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Value: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Value: v} }

// F64 builds a float attribute.
func F64(key string, v float64) Attr { return Attr{Key: key, Value: v} }

// Event is one completed span: a pipeline stage observed once, with its
// start time, duration and free-form annotations.
type Event struct {
	// Time is the span's start time.
	Time time.Time
	// Stage is the pipeline stage.
	Stage Stage
	// Session labels the emitting session (the Config display name, e.g.
	// "General+LAL").
	Session string
	// Round is the probe-selection round, or -1 for events outside the
	// probing loop (setup, training).
	Round int
	// Dur is the span duration.
	Dur time.Duration
	// SessionID is the server-assigned session identifier, when the span
	// was emitted on behalf of a hosted session (empty for library use).
	SessionID string
	// Request is the ID of the HTTP request that initiated the work this
	// span belongs to (empty outside serving mode). Together with
	// SessionID it lets a trace consumer reassemble where one slow request
	// spent its time across pipeline stages.
	Request string
	// Attrs are stage-specific annotations (counts, answers, plan shape).
	Attrs []Attr
}

// Scope carries request-scoped identity for spans emitted on behalf of a
// hosted session: the stable session ID plus the ID of the HTTP request
// currently driving the session. The serving layer calls SetRequest at the
// start of each request (under the session's lock, so pipeline work and
// the scope's request ID cannot race), and every span emitted through a
// handle derived with WithScope is stamped with both IDs.
type Scope struct {
	sessionID string
	request   atomic.Value // string: the most recent driving request ID
}

// NewScope builds a scope for one hosted session.
func NewScope(sessionID string) *Scope {
	sc := &Scope{sessionID: sessionID}
	sc.request.Store("")
	return sc
}

// SessionID returns the scope's session identifier.
func (sc *Scope) SessionID() string {
	if sc == nil {
		return ""
	}
	return sc.sessionID
}

// SetRequest records the request currently driving the session.
func (sc *Scope) SetRequest(id string) {
	if sc != nil {
		sc.request.Store(id)
	}
}

// Request returns the ID of the request currently driving the session.
func (sc *Scope) Request() string {
	if sc == nil {
		return ""
	}
	id, _ := sc.request.Load().(string)
	return id
}

// Sink receives completed span events. Implementations must be safe for
// concurrent use: parallel resolution emits from multiple goroutines.
type Sink interface {
	Emit(Event)
}

// MultiSink fans every event out to each sink in order.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// Obs is the instrumentation handle threaded through the pipeline: an
// optional span Sink plus an optional metrics Registry, tagged with the
// emitting session's name. A nil *Obs is valid and disables all
// instrumentation; every method is nil-receiver safe.
type Obs struct {
	sink    Sink
	reg     *Registry
	session string
	scope   *Scope
}

// New builds a handle over sink and reg, either of which may be nil. When
// both are nil the returned handle is nil, so instrumented call sites take
// their disabled fast path.
func New(session string, sink Sink, reg *Registry) *Obs {
	if sink == nil && reg == nil {
		return nil
	}
	return &Obs{sink: sink, reg: reg, session: session}
}

// Enabled reports whether any instrumentation is active.
func (o *Obs) Enabled() bool { return o != nil }

// Tracing reports whether a span sink is attached. Call sites use it to
// gate instrumentation that is only worth paying for when spans are
// collected (e.g. per-operator timing inside the query engine), as opposed
// to cheap counters that flow to the metrics registry regardless.
func (o *Obs) Tracing() bool { return o != nil && o.sink != nil }

// Session returns the handle's session label.
func (o *Obs) Session() string {
	if o == nil {
		return ""
	}
	return o.session
}

// Registry returns the metrics registry, or nil when disabled.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// WithSession derives a handle that emits under a different session label
// but shares the sink, registry and scope. Deriving from a nil handle
// stays nil.
func (o *Obs) WithSession(session string) *Obs {
	if o == nil || session == "" || session == o.session {
		return o
	}
	return &Obs{sink: o.sink, reg: o.reg, session: session, scope: o.scope}
}

// WithScope derives a handle whose spans are stamped with the scope's
// session and request IDs. Deriving from a nil handle stays nil.
func (o *Obs) WithScope(sc *Scope) *Obs {
	if o == nil || sc == nil {
		return o
	}
	return &Obs{sink: o.sink, reg: o.reg, session: o.session, scope: sc}
}

// Scope returns the handle's request scope, or nil.
func (o *Obs) Scope() *Scope {
	if o == nil {
		return nil
	}
	return o.scope
}

// Emit records one completed span: the event goes to the sink, and the
// duration is observed in the registry histogram "stage_seconds" labeled
// by stage and session (with a matching "events_total" counter).
func (o *Obs) Emit(stage Stage, round int, start time.Time, d time.Duration, attrs ...Attr) {
	if o == nil {
		return
	}
	if o.reg != nil {
		o.reg.Histogram("stage_seconds", string(stage), o.session).Observe(d.Seconds())
		o.reg.Counter("events_total", string(stage), o.session).Inc()
	}
	if o.sink != nil {
		o.sink.Emit(Event{
			Time:      start,
			Stage:     stage,
			Session:   o.session,
			Round:     round,
			Dur:       d,
			SessionID: o.scope.SessionID(),
			Request:   o.scope.Request(),
			Attrs:     attrs,
		})
	}
}

// Gauge sets the named gauge (labeled by session) to v.
func (o *Obs) Gauge(name string, v float64) {
	if o == nil || o.reg == nil {
		return
	}
	o.reg.Gauge(name, o.session).Set(v)
}

// Count adds n to the named counter (labeled by session).
func (o *Obs) Count(name string, n int64) {
	if o == nil || o.reg == nil {
		return
	}
	o.reg.Counter(name, o.session).Add(n)
}

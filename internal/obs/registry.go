package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"qres/internal/stats"
)

// Registry is a concurrency-safe metrics registry: named counters, gauges
// and bounded histograms, each optionally labeled (typically by stage and
// session/config name). Metric handles are created on first use and cached,
// so hot paths pay one read-locked map lookup per observation.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Key renders the canonical registry key of a labeled metric:
// name{label1,label2}. Metrics without labels use the bare name.
func Key(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + strings.Join(labels, ",") + "}"
}

// Counter returns (creating if needed) the labeled counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	key := Key(name, labels...)
	r.mu.RLock()
	c, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[key]; !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating if needed) the labeled gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	key := Key(name, labels...)
	r.mu.RLock()
	g, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[key]; !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating if needed) the labeled histogram.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	key := Key(name, labels...)
	r.mu.RLock()
	h, ok := r.hists[key]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[key]; !ok {
		h = newHistogram()
		r.hists[key] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta to the gauge.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histogramBound caps the per-histogram sample reservoir: exact order
// statistics up to the bound, uniform reservoir sampling beyond it, with
// count/sum/min/max always exact.
const histogramBound = 4096

// Histogram accumulates float observations with bounded memory and reports
// order statistics (p50/p90/p99/max). Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	samples []float64
	rng     uint64 // xorshift state for reservoir replacement
}

func newHistogram() *Histogram {
	return &Histogram{min: math.Inf(1), max: math.Inf(-1), rng: 0x9e3779b97f4a7c15}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.samples) < histogramBound {
		h.samples = append(h.samples, v)
		return
	}
	// Algorithm R reservoir replacement keeps the retained samples a
	// uniform subsample of everything observed.
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if i := h.rng % uint64(h.count); i < uint64(len(h.samples)) {
		h.samples[i] = v
	}
}

// HistSnapshot is a point-in-time summary of a histogram.
type HistSnapshot struct {
	Count int64
	Sum   float64
	Mean  float64
	Min   float64
	Max   float64
	P50   float64
	P90   float64
	// P99 is the tail percentile serving-mode dashboards watch: probe
	// counts (and hence latencies) can degenerate far beyond the average
	// case, so deployments alert on this, not the mean.
	P99 float64
}

// Snapshot summarizes the histogram. Percentiles come from the (possibly
// subsampled) reservoir; count, sum, min and max are exact.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return HistSnapshot{}
	}
	sorted := make([]float64, len(h.samples))
	copy(sorted, h.samples)
	sort.Float64s(sorted)
	return HistSnapshot{
		Count: h.count,
		Sum:   h.sum,
		Mean:  h.sum / float64(h.count),
		Min:   h.min,
		Max:   h.max,
		P50:   stats.Percentile(sorted, 0.5),
		P90:   stats.Percentile(sorted, 0.9),
		P99:   stats.Percentile(sorted, 0.99),
	}
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistSnapshot
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Text rendering of a registry snapshot in the Prometheus exposition
// format, for the resolution service's /metrics endpoint. Counters render
// as counters, gauges as gauges, and the bounded histograms as summaries:
// _count and _sum series plus quantile-labeled series for p50/p90 and
// min/max gauges (the registry keeps order statistics, not buckets).
//
// Registry keys carry labels positionally ("name{l1,l2}"); the renderer
// restores label names from the schema the emitting code uses: the
// per-stage metrics written by Obs.Emit are labeled (stage, session),
// every other single-label metric is labeled by session, and remaining
// positions fall back to generic names.

// metricLabelNames maps a metric name to the names of its positional
// labels. Metrics emitted through Obs helpers are registered here; other
// packages (e.g. the server) may add their own schemas before rendering.
var metricLabelNames = map[string][]string{
	"stage_seconds": {"stage", "session"},
	"events_total":  {"stage", "session"},
}

// RegisterMetricLabels declares the positional label names of a metric for
// text rendering. Safe to call from init functions; not synchronized with
// concurrent rendering.
func RegisterMetricLabels(metric string, labels ...string) {
	metricLabelNames[metric] = labels
}

// splitKey parses a canonical registry key (see Key) back into the metric
// name and its positional label values.
func splitKey(key string) (name string, labels []string) {
	open := strings.IndexByte(key, '{')
	if open < 0 || !strings.HasSuffix(key, "}") {
		return key, nil
	}
	return key[:open], strings.Split(key[open+1:len(key)-1], ",")
}

// labelPairs renders positional label values as a Prometheus label set,
// with extra appended verbatim (already formatted, e.g. `quantile="0.5"`).
func labelPairs(metric string, labels []string, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	names := metricLabelNames[metric]
	parts := make([]string, 0, len(labels)+len(extra))
	for i, v := range labels {
		var n string
		switch {
		case i < len(names):
			n = names[i]
		case len(labels) == 1:
			n = "session"
		default:
			n = fmt.Sprintf("label%d", i)
		}
		parts = append(parts, n+"="+escapeLabel(v))
	}
	parts = append(parts, extra...)
	return "{" + strings.Join(parts, ",") + "}"
}

// escapeLabel quotes a label value with Prometheus escaping.
func escapeLabel(v string) string {
	return `"` + strings.NewReplacer("\\", `\\`, "\n", `\n`, `"`, `\"`).Replace(v) + `"`
}

// WriteText renders the snapshot to w in the Prometheus text exposition
// format, with every metric name prefixed "qres_". Metrics are emitted in
// sorted order so the output is deterministic.
func WriteText(w io.Writer, s Snapshot) error {
	var b strings.Builder

	type family struct {
		kind  string
		lines []string
	}
	families := make(map[string]*family)
	add := func(metric, kind, line string) {
		f, ok := families[metric]
		if !ok {
			f = &family{kind: kind}
			families[metric] = f
		}
		f.lines = append(f.lines, line)
	}

	for key, v := range s.Counters {
		name, labels := splitKey(key)
		add(name, "counter", fmt.Sprintf("qres_%s%s %d", name, labelPairs(name, labels), v))
	}
	for key, v := range s.Gauges {
		name, labels := splitKey(key)
		add(name, "gauge", fmt.Sprintf("qres_%s%s %g", name, labelPairs(name, labels), v))
	}
	for key, h := range s.Histograms {
		name, labels := splitKey(key)
		add(name, "summary",
			fmt.Sprintf("qres_%s_count%s %d", name, labelPairs(name, labels), h.Count),
			// one call per line below
		)
		add(name, "summary", fmt.Sprintf("qres_%s_sum%s %g", name, labelPairs(name, labels), h.Sum))
		add(name, "summary", fmt.Sprintf("qres_%s%s %g", name, labelPairs(name, labels, `quantile="0.5"`), h.P50))
		add(name, "summary", fmt.Sprintf("qres_%s%s %g", name, labelPairs(name, labels, `quantile="0.9"`), h.P90))
		add(name, "summary", fmt.Sprintf("qres_%s%s %g", name, labelPairs(name, labels, `quantile="0.99"`), h.P99))
		add(name, "summary", fmt.Sprintf("qres_%s_min%s %g", name, labelPairs(name, labels), h.Min))
		add(name, "summary", fmt.Sprintf("qres_%s_max%s %g", name, labelPairs(name, labels), h.Max))
	}

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := families[n]
		fmt.Fprintf(&b, "# TYPE qres_%s %s\n", n, f.kind)
		sort.Strings(f.lines)
		for _, line := range f.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilObsIsSafe(t *testing.T) {
	var o *Obs
	if o.Enabled() {
		t.Error("nil Obs reports enabled")
	}
	if o.Registry() != nil || o.Session() != "" {
		t.Error("nil Obs leaks registry/session")
	}
	if o.WithSession("x") != nil {
		t.Error("WithSession on nil Obs should stay nil")
	}
	// None of these may panic.
	o.Emit(StageProbe, 0, time.Now(), time.Millisecond)
	o.Gauge("g", 1)
	o.Count("c", 1)
	if New("s", nil, nil) != nil {
		t.Error("New with no sink and no registry should collapse to nil")
	}
}

func TestEmitFeedsSinkAndRegistry(t *testing.T) {
	col := &Collector{}
	reg := NewRegistry()
	o := New("base", col, reg)
	sess := o.WithSession("General+LAL")
	start := time.Unix(100, 0)
	sess.Emit(StageLearner, 3, start, 2*time.Millisecond, Int("candidates", 7))
	sess.Emit(StageLearner, 4, start, 4*time.Millisecond)

	if got := col.StageCount(StageLearner); got != 2 {
		t.Fatalf("collector saw %d learner events, want 2", got)
	}
	ev := col.Events()[0]
	if ev.Session != "General+LAL" || ev.Round != 3 || ev.Dur != 2*time.Millisecond {
		t.Errorf("event = %+v", ev)
	}
	if len(ev.Attrs) != 1 || ev.Attrs[0].Key != "candidates" {
		t.Errorf("attrs = %+v", ev.Attrs)
	}

	h := reg.Histogram("stage_seconds", string(StageLearner), "General+LAL").Snapshot()
	if h.Count != 2 {
		t.Errorf("histogram count = %d, want 2", h.Count)
	}
	if c := reg.Counter("events_total", string(StageLearner), "General+LAL").Value(); c != 2 {
		t.Errorf("events_total = %d, want 2", c)
	}
}

func TestJSONLOutput(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	o := New("sess", j, nil)
	o.Emit(StageProbe, 5, time.Unix(1700000000, 0), 1500*time.Microsecond,
		Int("var", 9), Bool("answer", true))
	o.Emit(StageSimplify, 5, time.Unix(1700000001, 0), 10*time.Microsecond)

	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line is not JSON: %v: %s", err, sc.Text())
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	first := lines[0]
	if first["stage"] != "probe" || first["session"] != "sess" || first["round"] != float64(5) {
		t.Errorf("first line = %v", first)
	}
	if first["us"] != float64(1500) {
		t.Errorf("us = %v, want 1500", first["us"])
	}
	attrs, ok := first["attrs"].(map[string]any)
	if !ok || attrs["var"] != float64(9) || attrs["answer"] != true {
		t.Errorf("attrs = %v", first["attrs"])
	}
	if _, hasAttrs := lines[1]["attrs"]; hasAttrs {
		t.Errorf("attr-less event should omit attrs: %v", lines[1])
	}
}

func TestJSONLConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.Emit(Event{Stage: StageProbe, Round: i, Time: time.Unix(0, 0)})
			}
		}()
	}
	wg.Wait()
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("interleaved write corrupted a line: %v", err)
		}
		n++
	}
	if n != 8*200 {
		t.Errorf("got %d lines, want %d", n, 8*200)
	}
}

func TestMultiSink(t *testing.T) {
	a, b := &Collector{}, &Collector{}
	o := New("s", MultiSink{a, b}, nil)
	o.Emit(StageUtility, 1, time.Unix(0, 0), time.Millisecond)
	if a.StageCount(StageUtility) != 1 || b.StageCount(StageUtility) != 1 {
		t.Error("MultiSink did not fan out to every sink")
	}
}

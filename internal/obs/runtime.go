package obs

import "runtime"

// CollectRuntime samples Go runtime health into reg as gauges, prefixed
// "go_": goroutine count, heap allocation, GC cycle count and pause times.
// The resolution service calls it on every /metrics scrape, so the series
// are as fresh as the scrape interval; library users may call it whenever
// a snapshot is about to be taken. ReadMemStats briefly stops the world,
// so this is a scrape-rate operation, not a hot-path one.
func CollectRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge("go_goroutines").Set(float64(runtime.NumGoroutine()))
	reg.Gauge("go_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	reg.Gauge("go_heap_objects").Set(float64(ms.HeapObjects))
	reg.Gauge("go_gc_cycles").Set(float64(ms.NumGC))
	reg.Gauge("go_gc_pause_total_seconds").Set(float64(ms.PauseTotalNs) / 1e9)
	if ms.NumGC > 0 {
		last := ms.PauseNs[(ms.NumGC+255)%256]
		reg.Gauge("go_gc_pause_last_seconds").Set(float64(last) / 1e9)
	}
}

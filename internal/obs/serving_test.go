package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestHistogramP99 exercises the tail percentile on an exactly-known
// distribution: 1..100 has p50=50.5, p99=99.01 under linear interpolation.
func TestHistogramP99(t *testing.T) {
	h := newHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if got, want := s.P99, 99.01; !near(got, want) {
		t.Errorf("P99 = %v, want %v", got, want)
	}
	if got, want := s.P50, 50.5; !near(got, want) {
		t.Errorf("P50 = %v, want %v", got, want)
	}
	if s.P99 < s.P90 || s.P99 > s.Max {
		t.Errorf("P99 %v outside [P90 %v, Max %v]", s.P99, s.P90, s.Max)
	}
}

func near(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }

// TestWriteTextGolden pins the full exposition for a registry holding one
// labeled histogram (with the 0.99 quantile), a counter whose label value
// needs escaping, and a gauge.
func TestWriteTextGolden(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("stage_seconds", "probe", "General+LAL")
	h.Observe(0)
	h.Observe(1)
	reg.Counter("events_total", "probe", "quo\"te\\back\nnl").Add(7)
	reg.Gauge("undecided_exprs", "General+LAL").Set(3)

	var b strings.Builder
	if err := WriteText(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE qres_events_total counter
qres_events_total{stage="probe",session="quo\"te\\back\nnl"} 7
# TYPE qres_stage_seconds summary
qres_stage_seconds_count{stage="probe",session="General+LAL"} 2
qres_stage_seconds_max{stage="probe",session="General+LAL"} 1
qres_stage_seconds_min{stage="probe",session="General+LAL"} 0
qres_stage_seconds_sum{stage="probe",session="General+LAL"} 1
qres_stage_seconds{stage="probe",session="General+LAL",quantile="0.5"} 0.5
qres_stage_seconds{stage="probe",session="General+LAL",quantile="0.9"} 0.9
qres_stage_seconds{stage="probe",session="General+LAL",quantile="0.99"} 0.99
# TYPE qres_undecided_exprs gauge
qres_undecided_exprs{session="General+LAL"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\n got:\n%s\nwant:\n%s", got, want)
	}
}

// errWriter fails after n successful writes.
type errWriter struct{ ok int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.ok <= 0 {
		return 0, errors.New("disk full")
	}
	w.ok--
	return len(p), nil
}

func TestJSONLCountsDroppedEvents(t *testing.T) {
	reg := NewRegistry()
	j := NewJSONL(&errWriter{ok: 2})
	j.CountDrops(reg.Counter("trace_dropped_total"))

	for i := 0; i < 5; i++ {
		j.Emit(Event{Stage: StageProbe, Round: i})
	}
	if got := j.Dropped(); got != 3 {
		t.Errorf("Dropped() = %d, want 3", got)
	}
	if got := reg.Counter("trace_dropped_total").Value(); got != 3 {
		t.Errorf("trace_dropped_total = %d, want 3", got)
	}
}

// TestScopeStampsSpans checks that a handle derived with WithScope stamps
// every span with the scope's session and (current) request IDs, across
// WithSession derivation, and that a nil scope stays inert.
func TestScopeStampsSpans(t *testing.T) {
	col := &Collector{}
	sc := NewScope("sess-1")
	o := New("", col, nil).WithScope(sc).WithSession("General+LAL")

	sc.SetRequest("req-a")
	o.Emit(StageSelector, 0, time.Now(), time.Millisecond)
	sc.SetRequest("req-b")
	o.Emit(StageProbe, 0, time.Now(), time.Millisecond)

	evs := col.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	for i, wantReq := range []string{"req-a", "req-b"} {
		if evs[i].SessionID != "sess-1" {
			t.Errorf("event %d SessionID = %q, want sess-1", i, evs[i].SessionID)
		}
		if evs[i].Request != wantReq {
			t.Errorf("event %d Request = %q, want %q", i, evs[i].Request, wantReq)
		}
		if evs[i].Session != "General+LAL" {
			t.Errorf("event %d Session = %q, want General+LAL", i, evs[i].Session)
		}
	}

	// Unscoped handles and nil scopes emit empty IDs without panicking.
	var nilScope *Scope
	if nilScope.SessionID() != "" || nilScope.Request() != "" {
		t.Error("nil scope should return empty IDs")
	}
	nilScope.SetRequest("x") // must not panic
	plain := New("s", col, nil)
	plain.Emit(StageProbe, 0, time.Now(), 0)
	if ev := col.Events()[2]; ev.SessionID != "" || ev.Request != "" {
		t.Errorf("unscoped event carries IDs: %+v", ev)
	}
}

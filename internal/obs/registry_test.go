package obs

import (
	"math"
	"sort"
	"sync"
	"testing"

	"qres/internal/stats"
)

func TestKey(t *testing.T) {
	if got := Key("events_total"); got != "events_total" {
		t.Errorf("bare key = %q", got)
	}
	if got := Key("stage_seconds", "probe", "General+LAL"); got != "stage_seconds{probe,General+LAL}" {
		t.Errorf("labeled key = %q", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Exercise the create-on-first-use path concurrently too.
				r.Counter("hits", "stage").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits", "stage").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("undecided")
	g.Set(42.5)
	if got := g.Value(); got != 42.5 {
		t.Errorf("gauge = %v, want 42.5", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 42.5+800 {
		t.Errorf("gauge after concurrent adds = %v, want %v", got, 42.5+800)
	}
}

func TestHistogramPercentilesMatchStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	xs := make([]float64, 0, 500)
	for i := 0; i < 500; i++ {
		v := float64((i * 7919) % 500) // deterministic shuffle of 0..499
		xs = append(xs, v)
		h.Observe(v)
	}
	sort.Float64s(xs)
	snap := h.Snapshot()
	if snap.Count != 500 {
		t.Fatalf("count = %d, want 500", snap.Count)
	}
	if want := stats.Percentile(xs, 0.5); snap.P50 != want {
		t.Errorf("p50 = %v, want %v", snap.P50, want)
	}
	if want := stats.Percentile(xs, 0.9); snap.P90 != want {
		t.Errorf("p90 = %v, want %v", snap.P90, want)
	}
	if snap.Min != xs[0] || snap.Max != xs[len(xs)-1] {
		t.Errorf("min/max = %v/%v, want %v/%v", snap.Min, snap.Max, xs[0], xs[len(xs)-1])
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if math.Abs(snap.Sum-sum) > 1e-9 || math.Abs(snap.Mean-sum/500) > 1e-9 {
		t.Errorf("sum/mean = %v/%v, want %v/%v", snap.Sum, snap.Mean, sum, sum/500)
	}
}

func TestHistogramBounded(t *testing.T) {
	h := newHistogram()
	n := histogramBound * 3
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
	}
	if len(h.samples) > histogramBound {
		t.Fatalf("reservoir grew to %d, bound is %d", len(h.samples), histogramBound)
	}
	snap := h.Snapshot()
	if snap.Count != int64(n) {
		t.Errorf("count = %d, want %d", snap.Count, n)
	}
	if snap.Min != 0 || snap.Max != float64(n-1) {
		t.Errorf("min/max = %v/%v, want exact 0/%d", snap.Min, snap.Max, n-1)
	}
	// The reservoir is a uniform subsample, so the median should land
	// near n/2 (a loose sanity band, not a distributional test).
	if snap.P50 < float64(n)/4 || snap.P50 > 3*float64(n)/4 {
		t.Errorf("subsampled p50 = %v, expected near %v", snap.P50, float64(n)/2)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Histogram("stage_seconds", "probe").Observe(float64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	snap := r.Histogram("stage_seconds", "probe").Snapshot()
	if snap.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", snap.Count, goroutines*perG)
	}
	if snap.Min != 0 || snap.Max != goroutines*perG-1 {
		t.Errorf("min/max = %v/%v", snap.Min, snap.Max)
	}
}

func TestSnapshotEmptyAndPopulated(t *testing.T) {
	r := NewRegistry()
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("empty registry snapshot not empty: %+v", s)
	}
	r.Counter("a").Add(3)
	r.Gauge("b").Set(1.5)
	r.Histogram("c").Observe(2)
	s := r.Snapshot()
	if s.Counters["a"] != 3 || s.Gauges["b"] != 1.5 || s.Histograms["c"].Count != 1 {
		t.Errorf("snapshot = %+v", s)
	}
	if empty := (&Histogram{}).Snapshot(); empty.Count != 0 || empty.Max != 0 {
		t.Errorf("zero histogram snapshot = %+v", empty)
	}
}

package table

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of named, typed columns with O(1) lookup by
// name. Column names are case-insensitive, as in SQL.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from columns. Duplicate column names are
// rejected with a panic since schemas are always constructed from static
// catalog definitions or by the engine, where a duplicate is a programming
// error.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.index[key]; dup {
			panic(fmt.Sprintf("table: duplicate column %q in schema", c.Name))
		}
		s.index[key] = i
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns all columns; the slice must not be modified.
func (s *Schema) Columns() []Column { return s.cols }

// Index returns the position of the named column (case-insensitive).
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[strings.ToLower(name)]
	return i, ok
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is a row of values aligned with a schema.
type Tuple []Value

// Key returns a canonical byte-string key identifying the tuple's values,
// used for DISTINCT, UNION and join hashing.
func (t Tuple) Key() string {
	buf := make([]byte, 0, 16*len(t))
	for _, v := range t {
		buf = v.EncodeKey(buf)
		buf = append(buf, 0)
	}
	return string(buf)
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Metadata is the set of metadata attributes of one tuple (paper Definition
// 4.1): attribute name → value. Typical attributes are the data source, the
// relation name, the entity, and content-derived attributes. Metadata is
// what the Learner trains on.
type Metadata map[string]string

// Clone returns an independent copy of m.
func (m Metadata) Clone() Metadata {
	out := make(Metadata, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Relation is a named multiset of tuples over a schema, with optional
// per-tuple metadata. Tuples are addressed by dense index, which the
// uncertain layer uses to align tuples with their Boolean variables.
type Relation struct {
	name   string
	schema *Schema
	tuples []Tuple
	meta   []Metadata
}

// NewRelation creates an empty relation.
func NewRelation(name string, schema *Schema) *Relation {
	return &Relation{name: name, schema: schema}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Reserve pre-allocates capacity for n additional tuples and their
// metadata slots. Bulk loaders like the TPC-H generator call it with the
// known cardinality so large relations are built without repeated slice
// growth.
func (r *Relation) Reserve(n int) {
	if n <= 0 {
		return
	}
	if need := len(r.tuples) + n; need > cap(r.tuples) {
		grown := make([]Tuple, len(r.tuples), need)
		copy(grown, r.tuples)
		r.tuples = grown
	}
	if need := len(r.meta) + n; need > cap(r.meta) {
		grown := make([]Metadata, len(r.meta), need)
		copy(grown, r.meta)
		r.meta = grown
	}
}

// At returns the i-th tuple. The returned slice must not be modified.
func (r *Relation) At(i int) Tuple { return r.tuples[i] }

// MetaAt returns the metadata of the i-th tuple (nil if none was attached).
func (r *Relation) MetaAt(i int) Metadata {
	if i >= len(r.meta) {
		return nil
	}
	return r.meta[i]
}

// Append adds a tuple with optional metadata and returns its index. The
// tuple arity must match the schema.
func (r *Relation) Append(t Tuple, meta Metadata) (int, error) {
	if len(t) != r.schema.Len() {
		return 0, fmt.Errorf("table: tuple arity %d does not match schema %s of %s",
			len(t), r.schema, r.name)
	}
	idx := len(r.tuples)
	r.tuples = append(r.tuples, t)
	for len(r.meta) < idx {
		r.meta = append(r.meta, nil)
	}
	r.meta = append(r.meta, meta)
	return idx, nil
}

// MustAppend is Append for statically known-correct tuples; it panics on
// arity mismatch.
func (r *Relation) MustAppend(t Tuple, meta Metadata) int {
	idx, err := r.Append(t, meta)
	if err != nil {
		panic(err)
	}
	return idx
}

// Database is a named collection of relations preserving insertion order.
type Database struct {
	relations map[string]*Relation
	order     []string
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{relations: make(map[string]*Relation)}
}

// Add registers a relation; a second relation under the same
// (case-insensitive) name is an error.
func (db *Database) Add(r *Relation) error {
	key := strings.ToLower(r.Name())
	if _, dup := db.relations[key]; dup {
		return fmt.Errorf("table: relation %q already exists", r.Name())
	}
	db.relations[key] = r
	db.order = append(db.order, key)
	return nil
}

// MustAdd is Add that panics on duplicates, for static catalog setup.
func (db *Database) MustAdd(r *Relation) {
	if err := db.Add(r); err != nil {
		panic(err)
	}
}

// Relation looks up a relation by (case-insensitive) name.
func (db *Database) Relation(name string) (*Relation, bool) {
	r, ok := db.relations[strings.ToLower(name)]
	return r, ok
}

// Names returns the relation names in insertion order.
func (db *Database) Names() []string {
	return append([]string(nil), db.order...)
}

// TotalTuples returns the number of tuples across all relations.
func (db *Database) TotalTuples() int {
	n := 0
	for _, key := range db.order {
		n += db.relations[key].Len()
	}
	return n
}

package table

import (
	"bytes"
	"strings"
	"testing"
)

func dumpDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	rel := NewRelation("facts", NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "name", Kind: KindString},
		Column{Name: "score", Kind: KindFloat},
		Column{Name: "when", Kind: KindDate},
		Column{Name: "note", Kind: KindString},
	))
	rel.MustAppend(Tuple{Int(1), String_("alpha"), Float(0.5), Date(2020, 3, 4), Null()},
		Metadata{"source": "a.com"})
	rel.MustAppend(Tuple{Int(2), String_("beta \"quoted\"\nline"), Float(-3.25), Null(), String_("x")}, nil)
	db.MustAdd(rel)

	empty := NewRelation("empty", NewSchema(Column{Name: "x", Kind: KindInt}))
	db.MustAdd(empty)
	return db
}

func TestJSONRoundTrip(t *testing.T) {
	db := dumpDB(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Names(), db.Names(); len(got) != len(want) {
		t.Fatalf("relations = %v, want %v", got, want)
	}
	for _, name := range db.Names() {
		orig, _ := db.Relation(name)
		rt, ok := back.Relation(name)
		if !ok {
			t.Fatalf("relation %s lost", name)
		}
		if rt.Len() != orig.Len() {
			t.Fatalf("%s: %d rows, want %d", name, rt.Len(), orig.Len())
		}
		if rt.Schema().String() != orig.Schema().String() {
			t.Fatalf("%s: schema %s, want %s", name, rt.Schema(), orig.Schema())
		}
		for i := 0; i < orig.Len(); i++ {
			if rt.At(i).Key() != orig.At(i).Key() {
				t.Fatalf("%s row %d: %v != %v", name, i, rt.At(i), orig.At(i))
			}
			om, rm := orig.MetaAt(i), rt.MetaAt(i)
			if len(om) != len(rm) {
				t.Fatalf("%s row %d metadata mismatch", name, i)
			}
			for k, v := range om {
				if rm[k] != v {
					t.Fatalf("%s row %d metadata[%s] = %q, want %q", name, i, k, rm[k], v)
				}
			}
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"garbage", "not json\n"},
		{"unknown type", `{"type":"wat"}` + "\n"},
		{"row before schema", `{"type":"row","relation":"r","values":[]}` + "\n"},
		{"bad kind", `{"type":"schema","relation":"r","columns":[{"name":"x","kind":"blob"}]}` + "\n"},
		{"bad value tag", `{"type":"schema","relation":"r","columns":[{"name":"x","kind":"int"}]}` + "\n" +
			`{"type":"row","relation":"r","values":[{"t":"wat"}]}` + "\n"},
		{"missing payload", `{"type":"schema","relation":"r","columns":[{"name":"x","kind":"int"}]}` + "\n" +
			`{"type":"row","relation":"r","values":[{"t":"int"}]}` + "\n"},
		{"arity mismatch", `{"type":"schema","relation":"r","columns":[{"name":"x","kind":"int"}]}` + "\n" +
			`{"type":"row","relation":"r","values":[]}` + "\n"},
		{"duplicate schema", `{"type":"schema","relation":"r","columns":[{"name":"x","kind":"int"}]}` + "\n" +
			`{"type":"schema","relation":"r","columns":[{"name":"x","kind":"int"}]}` + "\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(c.input)); err == nil {
				t.Fatalf("ReadJSON accepted %q", c.input)
			}
		})
	}
}

func TestReadJSONSkipsBlankLines(t *testing.T) {
	input := `{"type":"schema","relation":"r","columns":[{"name":"x","kind":"int"}]}` + "\n\n" +
		`{"type":"row","relation":"r","values":[{"t":"int","i":7}]}` + "\n"
	db, err := ReadJSON(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := db.Relation("r")
	if rel.Len() != 1 || rel.At(0)[0].AsInt() != 7 {
		t.Fatal("row lost")
	}
}

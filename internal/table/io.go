package table

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The JSONL dump format: one JSON object per line. A "schema" record
// declares a relation before its "row" records; rows carry typed values
// and optional metadata. The format is self-describing and append-friendly
// so generated substrates can be dumped, inspected and reloaded without a
// database server (the paper's prototype used MongoDB for the same role).

type jsonSchema struct {
	Type     string       `json:"type"` // "schema"
	Relation string       `json:"relation"`
	Columns  []jsonColumn `json:"columns"`
}

type jsonColumn struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

type jsonRow struct {
	Type     string            `json:"type"` // "row"
	Relation string            `json:"relation"`
	Values   []jsonValue       `json:"values"`
	Meta     map[string]string `json:"meta,omitempty"`
}

type jsonValue struct {
	T string   `json:"t"`
	I *int64   `json:"i,omitempty"`
	F *float64 `json:"f,omitempty"`
	S *string  `json:"s,omitempty"`
}

func kindName(k Kind) string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindDate:
		return "date"
	default:
		return "null"
	}
}

func kindFromName(s string) (Kind, error) {
	switch s {
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	case "string":
		return KindString, nil
	case "date":
		return KindDate, nil
	case "null":
		return KindNull, nil
	default:
		return KindNull, fmt.Errorf("table: unknown kind %q", s)
	}
}

func encodeValue(v Value) jsonValue {
	switch v.Kind() {
	case KindInt:
		i := v.AsInt()
		return jsonValue{T: "int", I: &i}
	case KindDate:
		i := v.AsInt()
		return jsonValue{T: "date", I: &i}
	case KindFloat:
		f := v.AsFloat()
		return jsonValue{T: "float", F: &f}
	case KindString:
		s := v.AsString()
		return jsonValue{T: "string", S: &s}
	default:
		return jsonValue{T: "null"}
	}
}

func decodeValue(jv jsonValue) (Value, error) {
	switch jv.T {
	case "int":
		if jv.I == nil {
			return Value{}, fmt.Errorf("table: int value missing payload")
		}
		return Int(*jv.I), nil
	case "date":
		if jv.I == nil {
			return Value{}, fmt.Errorf("table: date value missing payload")
		}
		return DateFromOrdinal(*jv.I), nil
	case "float":
		if jv.F == nil {
			return Value{}, fmt.Errorf("table: float value missing payload")
		}
		return Float(*jv.F), nil
	case "string":
		if jv.S == nil {
			return Value{}, fmt.Errorf("table: string value missing payload")
		}
		return String_(*jv.S), nil
	case "null":
		return Null(), nil
	default:
		return Value{}, fmt.Errorf("table: unknown value tag %q", jv.T)
	}
}

// WriteJSON dumps the database as JSONL: each relation's schema record
// followed by its row records, in relation insertion order.
func WriteJSON(w io.Writer, db *Database) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, name := range db.Names() {
		rel, _ := db.Relation(name)
		schema := jsonSchema{Type: "schema", Relation: rel.Name()}
		for _, c := range rel.Schema().Columns() {
			schema.Columns = append(schema.Columns, jsonColumn{Name: c.Name, Kind: kindName(c.Kind)})
		}
		if err := enc.Encode(schema); err != nil {
			return err
		}
		for i := 0; i < rel.Len(); i++ {
			row := jsonRow{Type: "row", Relation: rel.Name()}
			for _, v := range rel.At(i) {
				row.Values = append(row.Values, encodeValue(v))
			}
			if meta := rel.MetaAt(i); meta != nil {
				row.Meta = meta
			}
			if err := enc.Encode(row); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadJSON reloads a database dumped by WriteJSON. Rows must follow their
// relation's schema record.
func ReadJSON(r io.Reader) (*Database, error) {
	db := NewDatabase()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return nil, fmt.Errorf("table: line %d: %w", line, err)
		}
		switch head.Type {
		case "schema":
			var js jsonSchema
			if err := json.Unmarshal(raw, &js); err != nil {
				return nil, fmt.Errorf("table: line %d: %w", line, err)
			}
			cols := make([]Column, 0, len(js.Columns))
			for _, c := range js.Columns {
				k, err := kindFromName(c.Kind)
				if err != nil {
					return nil, fmt.Errorf("table: line %d: %w", line, err)
				}
				cols = append(cols, Column{Name: c.Name, Kind: k})
			}
			if err := db.Add(NewRelation(js.Relation, NewSchema(cols...))); err != nil {
				return nil, fmt.Errorf("table: line %d: %w", line, err)
			}
		case "row":
			var jr jsonRow
			if err := json.Unmarshal(raw, &jr); err != nil {
				return nil, fmt.Errorf("table: line %d: %w", line, err)
			}
			rel, ok := db.Relation(jr.Relation)
			if !ok {
				return nil, fmt.Errorf("table: line %d: row for undeclared relation %q", line, jr.Relation)
			}
			tup := make(Tuple, 0, len(jr.Values))
			for _, jv := range jr.Values {
				v, err := decodeValue(jv)
				if err != nil {
					return nil, fmt.Errorf("table: line %d: %w", line, err)
				}
				tup = append(tup, v)
			}
			var meta Metadata
			if jr.Meta != nil {
				meta = Metadata(jr.Meta)
			}
			if _, err := rel.Append(tup, meta); err != nil {
				return nil, fmt.Errorf("table: line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("table: line %d: unknown record type %q", line, head.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return db, nil
}

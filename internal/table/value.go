// Package table implements the in-memory typed relational store underlying
// the uncertain-database model: typed values, schemas, tuples, relations and
// databases, together with per-tuple metadata attributes (paper Definition
// 4.1) that the Learner uses to estimate correctness probabilities.
//
// The paper's prototype stored data in MongoDB; here the store is a plain
// in-memory columnar-agnostic row store, which is all the resolution
// framework needs and keeps the repository free of external dependencies.
package table

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the value types supported by the store. The set covers
// everything the paper's workloads need: NELL facts are strings, TPC-H
// mixes integers, decimals, strings and dates.
type Kind uint8

// Supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed SQL value. The zero value is NULL.
//
// Dates are stored as the integer yyyymmdd (e.g. 2020-11-07 is 20201107):
// the encoding is totally ordered by calendar date, makes year extraction a
// division, and avoids pulling time-zone semantics into the query engine.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a string value. (Named with a trailing underscore because
// Value.String is the fmt.Stringer method.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Date returns a date value for the given calendar day.
func Date(year, month, day int) Value {
	return Value{kind: KindDate, i: int64(year)*10000 + int64(month)*100 + int64(day)}
}

// DateFromOrdinal builds a date value from an already-encoded yyyymmdd
// integer.
func DateFromOrdinal(yyyymmdd int64) Value {
	return Value{kind: KindDate, i: yyyymmdd}
}

// Kind reports the kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload; valid for KindInt and KindDate.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns v as a float64, coercing integers and dates.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt, KindDate:
		return float64(v.i)
	default:
		return 0
	}
}

// AsString returns the string payload; valid for KindString.
func (v Value) AsString() string { return v.s }

// Year returns the calendar year of a date value, or 0 for other kinds.
// It implements the paper's year(a.Date) predicate function.
func (v Value) Year() int64 {
	if v.kind != KindDate {
		return 0
	}
	return v.i / 10000
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindDate:
		return fmt.Sprintf("%04d-%02d-%02d", v.i/10000, (v.i/100)%100, v.i%100)
	default:
		return "?"
	}
}

// EncodeKey appends a canonical byte encoding of v to dst, used to build
// tuple deduplication keys for DISTINCT and UNION. Distinct values never
// encode equal, and the encoding embeds the kind so Int(1) and Date(1) are
// distinguished — but numeric int/float values that compare equal encode
// equal so DISTINCT agrees with Compare.
func (v Value) EncodeKey(dst []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, 'n')
	case KindInt:
		return strconv.AppendInt(append(dst, 'i'), v.i, 10)
	case KindFloat:
		if v.f == float64(int64(v.f)) {
			// Integral float: encode like the equal integer.
			return strconv.AppendInt(append(dst, 'i'), int64(v.f), 10)
		}
		return strconv.AppendFloat(append(dst, 'f'), v.f, 'b', -1, 64)
	case KindString:
		dst = append(dst, 's')
		dst = strconv.AppendInt(dst, int64(len(v.s)), 10)
		dst = append(dst, ':')
		return append(dst, v.s...)
	case KindDate:
		return strconv.AppendInt(append(dst, 'd'), v.i, 10)
	default:
		return append(dst, '?')
	}
}

// Comparable reports whether values of kinds a and b can be ordered against
// each other: numeric kinds (int, float, date) are mutually comparable, and
// strings compare with strings.
func Comparable(a, b Kind) bool {
	num := func(k Kind) bool { return k == KindInt || k == KindFloat || k == KindDate }
	if num(a) && num(b) {
		return true
	}
	return a == KindString && b == KindString
}

// Compare orders a against b, returning -1, 0 or +1. NULL compares equal to
// NULL and less than everything else (a total order convenient for sorting;
// SQL three-valued logic for predicates is handled by the engine, which
// rejects NULL comparisons before calling Compare). Comparing a string with
// a number returns an error.
func Compare(a, b Value) (int, error) {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0, nil
		case a.kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if !Comparable(a.kind, b.kind) {
		return 0, fmt.Errorf("table: cannot compare %s with %s", a.kind, b.kind)
	}
	if a.kind == KindString {
		return strings.Compare(a.s, b.s), nil
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1, nil
	case af > bf:
		return 1, nil
	default:
		return 0, nil
	}
}

// Equal reports whether two values compare equal. Values of incomparable
// kinds are unequal (never an error), which matches SQL join semantics
// where a type mismatch simply fails to match.
func Equal(a, b Value) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return false // SQL: NULL = anything is unknown, treated as no match.
	}
	if !Comparable(a.kind, b.kind) {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Like reports whether s matches the SQL LIKE pattern: '%' matches any
// (possibly empty) substring and '_' matches exactly one byte. Matching is
// case-insensitive (as in MySQL's default collation): the paper's queries
// rely on this, e.g. r.Role LIKE '%found%' matching "Founder" and
// "Co-founder" in the running example (Tables 1–2).
func Like(s, pattern string) bool {
	return likeMatch(strings.ToLower(s), strings.ToLower(pattern))
}

func likeMatch(s, p string) bool {
	// Iterative two-pointer matcher with backtracking on the last '%',
	// the standard O(len(s)·len(p)) wildcard algorithm.
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

package table

import (
	"strings"
	"testing"
)

func testSchema() *Schema {
	return NewSchema(
		Column{Name: "Acquired", Kind: KindString},
		Column{Name: "Acquiring", Kind: KindString},
		Column{Name: "Date", Kind: KindDate},
	)
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema()
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if i, ok := s.Index("acquired"); !ok || i != 0 {
		t.Error("case-insensitive lookup failed")
	}
	if i, ok := s.Index("DATE"); !ok || i != 2 {
		t.Error("uppercase lookup failed")
	}
	if _, ok := s.Index("nope"); ok {
		t.Error("lookup of missing column succeeded")
	}
	if s.Column(1).Name != "Acquiring" {
		t.Error("Column(1) wrong")
	}
	if !strings.Contains(s.String(), "Date DATE") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate column did not panic")
		}
	}()
	NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "A", Kind: KindInt})
}

func TestRelationAppend(t *testing.T) {
	r := NewRelation("Acquisitions", testSchema())
	idx, err := r.Append(Tuple{String_("A2Bdone"), String_("Zazzer"), Date(2020, 11, 7)},
		Metadata{"source": "example.com"})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 || r.Len() != 1 {
		t.Fatalf("idx=%d len=%d", idx, r.Len())
	}
	if got := r.At(0)[0].AsString(); got != "A2Bdone" {
		t.Errorf("At(0)[0] = %q", got)
	}
	if r.MetaAt(0)["source"] != "example.com" {
		t.Error("metadata lost")
	}
	if _, err := r.Append(Tuple{Int(1)}, nil); err == nil {
		t.Error("arity mismatch not rejected")
	}
	// Tuples without metadata are fine.
	r.MustAppend(Tuple{String_("x"), String_("y"), Null()}, nil)
	if r.MetaAt(1) != nil {
		t.Error("expected nil metadata")
	}
}

func TestMustAppendPanics(t *testing.T) {
	r := NewRelation("r", testSchema())
	defer func() {
		if recover() == nil {
			t.Fatal("MustAppend with wrong arity did not panic")
		}
	}()
	r.MustAppend(Tuple{Int(1)}, nil)
}

func TestTupleKeyDistinct(t *testing.T) {
	a := Tuple{String_("x"), Int(1)}
	b := Tuple{String_("x"), Int(1)}
	c := Tuple{String_("x"), Int(2)}
	if a.Key() != b.Key() {
		t.Error("equal tuples must share a key")
	}
	if a.Key() == c.Key() {
		t.Error("distinct tuples must not share a key")
	}
	// Concatenation ambiguity: ("ab","c") vs ("a","bc").
	d := Tuple{String_("ab"), String_("c")}
	e := Tuple{String_("a"), String_("bc")}
	if d.Key() == e.Key() {
		t.Error("key encoding is ambiguous across column boundaries")
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	r1 := NewRelation("Roles", NewSchema(Column{Name: "Org", Kind: KindString}))
	db.MustAdd(r1)
	if err := db.Add(NewRelation("roles", NewSchema())); err == nil {
		t.Error("case-insensitive duplicate relation accepted")
	}
	got, ok := db.Relation("ROLES")
	if !ok || got != r1 {
		t.Error("case-insensitive relation lookup failed")
	}
	r1.MustAppend(Tuple{String_("A2Bdone")}, nil)
	r2 := NewRelation("Education", NewSchema(Column{Name: "Alumni", Kind: KindString}))
	r2.MustAppend(Tuple{String_("Usha")}, nil)
	r2.MustAppend(Tuple{String_("Pavel")}, nil)
	db.MustAdd(r2)
	if db.TotalTuples() != 3 {
		t.Errorf("TotalTuples = %d, want 3", db.TotalTuples())
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "roles" || names[1] != "education" {
		t.Errorf("Names = %v", names)
	}
}

func TestMetadataClone(t *testing.T) {
	m := Metadata{"a": "1"}
	c := m.Clone()
	c["a"] = "2"
	if m["a"] != "1" {
		t.Error("Clone not independent")
	}
}

package table

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "NULL"},
		{Int(42), KindInt, "42"},
		{Float(2.5), KindFloat, "2.5"},
		{String_("abc"), KindString, "abc"},
		{Date(2020, 11, 7), KindDate, "2020-11-07"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull wrong")
	}
}

func TestDateEncoding(t *testing.T) {
	d := Date(2017, 1, 5)
	if d.AsInt() != 20170105 {
		t.Errorf("AsInt = %d", d.AsInt())
	}
	if d.Year() != 2017 {
		t.Errorf("Year = %d", d.Year())
	}
	if Int(5).Year() != 0 {
		t.Error("Year of non-date must be 0")
	}
	d2 := DateFromOrdinal(20170105)
	if !Equal(d, d2) {
		t.Error("DateFromOrdinal mismatch")
	}
	// Date ordering follows calendar order.
	a, b := Date(2016, 12, 31), Date(2017, 1, 1)
	if c, err := Compare(a, b); err != nil || c != -1 {
		t.Errorf("Compare(%v,%v) = %d, %v", a, b, c, err)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b    Value
		want    int
		wantErr bool
	}{
		{Int(1), Int(2), -1, false},
		{Int(2), Int(2), 0, false},
		{Int(3), Int(2), 1, false},
		{Int(1), Float(1.5), -1, false},
		{Float(2.0), Int(2), 0, false},
		{String_("a"), String_("b"), -1, false},
		{String_("b"), String_("b"), 0, false},
		{Int(1), String_("a"), 0, true},
		{Null(), Null(), 0, false},
		{Null(), Int(1), -1, false},
		{Int(1), Null(), 1, false},
		{Date(2017, 1, 1), Int(20170101), 0, false},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if (err != nil) != c.wantErr {
			t.Errorf("Compare(%v,%v) err = %v, wantErr=%t", c.a, c.b, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Int(1), Int(1)) || Equal(Int(1), Int(2)) {
		t.Error("int equality wrong")
	}
	if !Equal(Int(2), Float(2.0)) {
		t.Error("numeric coercion equality wrong")
	}
	if Equal(Null(), Null()) {
		t.Error("NULL = NULL must not match (SQL semantics)")
	}
	if Equal(Int(1), String_("1")) {
		t.Error("cross-kind equality must not match")
	}
	if !Equal(String_("x"), String_("x")) {
		t.Error("string equality wrong")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"Founder", "%found%", true}, // case-insensitive, as in the paper
		{"founder", "%FOUND%", true},
		{"Co-founder", "%found%", true},
		{"Founding member", "Found%", true},
		{"CTO", "%found%", false},
		{"abc", "abc", true},
		{"abc", "a_c", true},
		{"abc", "a_d", false},
		{"abc", "%", true},
		{"", "%", true},
		{"", "", true},
		{"", "_", false},
		{"sport", "%sport%", true},
		{"hobby", "%sport%", false},
		{"aXbXc", "a%b%c", true},
		{"ac", "a%b%c", false},
		{"mississippi", "%iss%pi", true},
		{"mississippi", "%iss%zi", false},
	}
	for _, c := range cases {
		if got := Like(c.s, c.p); got != c.want {
			t.Errorf("Like(%q, %q) = %t, want %t", c.s, c.p, got, c.want)
		}
	}
}

// EncodeKey must be injective up to value equality: two values encode to
// the same key iff they are Compare-equal (for comparable kinds).
func TestEncodeKeyAgreesWithCompare(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		ka := string(va.EncodeKey(nil))
		kb := string(vb.EncodeKey(nil))
		return (ka == kb) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Int/float agreement for integral floats.
	if string(Int(3).EncodeKey(nil)) != string(Float(3).EncodeKey(nil)) {
		t.Error("Int(3) and Float(3) should share a key (they compare equal)")
	}
	// Kinds are distinguished.
	if string(Int(20170101).EncodeKey(nil)) == string(Date(2017, 1, 1).EncodeKey(nil)) {
		t.Error("date and int should have distinct keys for grouping")
	}
	if string(String_("1").EncodeKey(nil)) == string(Int(1).EncodeKey(nil)) {
		t.Error("string and int keys must differ")
	}
}

func TestComparableMatrix(t *testing.T) {
	if !Comparable(KindInt, KindFloat) || !Comparable(KindDate, KindInt) {
		t.Error("numeric kinds must be comparable")
	}
	if !Comparable(KindString, KindString) {
		t.Error("strings comparable with strings")
	}
	if Comparable(KindString, KindInt) || Comparable(KindNull, KindInt) {
		t.Error("cross-family kinds must not be comparable")
	}
}

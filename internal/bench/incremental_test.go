package bench

import (
	"reflect"
	"testing"

	"qres/internal/oracle"
	"qres/internal/resolve"
)

// The incremental hot path must select the identical probe sequence and
// resolve the identical answer set Q(D_val*) as the full per-round
// recompute on the seed workloads — the NELL-like knowledge base and the
// TPC-H-like uncertain database — across utilities and learning modes.
// This is the end-to-end counterpart of the synthetic equivalence test in
// internal/resolve.
func TestIncrementalEquivalenceSeedWorkloads(t *testing.T) {
	sc := Scale{TPCHSF: 0.001, NELLAthletes: 50, InitialProbes: 40, Trees: 5, Reps: 1}

	loads := []struct {
		name string
		load func() (*Workload, error)
	}{
		{"nell-ms1", func() (*Workload, error) { return LoadNELL("MS1", sc, RDTGroundTruth(), 17) }},
		{"tpch-q3", func() (*Workload, error) { return LoadTPCH("Q3", sc, FixedGroundTruth(0.5), 17) }},
	}
	configs := []resolve.Config{
		{Utility: resolve.QValue{}, Learning: resolve.LearnEP},
		{Utility: resolve.RO{}, Learning: resolve.LearnEP},
		{Utility: resolve.General{}, Learning: resolve.LearnEP},
		{Utility: resolve.General{}, Learning: resolve.LearnOffline},
		{Utility: resolve.RO{}, Learning: resolve.LearnOnline},
	}

	for _, ld := range loads {
		w, err := ld.load()
		if err != nil {
			t.Fatalf("%s: %v", ld.name, err)
		}
		for _, cfg := range configs {
			cfg.Trees = sc.Trees
			name := ld.name + "/" + cfg.Name()
			t.Run(name, func(t *testing.T) {
				run := func(disable bool) ([]int, []int, int) {
					c := cfg
					c.DisableIncremental = disable
					rec := oracle.NewRecorder(w.Oracle())
					out, err := w.RunWithOracle(c, sc.InitialProbes, 23, rec)
					if err != nil {
						t.Fatal(err)
					}
					probes := make([]int, 0, rec.Count())
					for _, v := range rec.Probes() {
						probes = append(probes, int(v))
					}
					return probes, out.CorrectRows(), out.Probes
				}
				fullProbes, fullRows, fullN := run(true)
				incProbes, incRows, incN := run(false)
				if fullN != incN || !reflect.DeepEqual(fullProbes, incProbes) {
					t.Fatalf("probe sequence diverged (full %d probes, incremental %d)\nfull: %v\ninc:  %v",
						fullN, incN, fullProbes, incProbes)
				}
				if !reflect.DeepEqual(fullRows, incRows) {
					t.Fatalf("answer set diverged\nfull: %v\ninc:  %v", fullRows, incRows)
				}
			})
		}
	}
}

// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation section (Section 7) over the
// synthetic NELL-like and TPC-H-like substrates. Each experiment driver
// prepares a workload (data, query, ground truth, seeded Known Probes
// Repository), runs the compared solutions, and emits a Report with the
// same rows/series the paper plots.
//
// Absolute probe counts differ from the paper's (the substrate is a
// seeded generator at a reduced scale factor, not the authors' datasets);
// the reproduced quantity is the shape: which algorithm wins, by roughly
// what factor, and where the crossovers fall. EXPERIMENTS.md records
// paper-vs-measured per experiment.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Report is one regenerated table or figure: labeled rows of numeric
// series under column headers.
type Report struct {
	// ID is the experiment identifier ("fig5", "table3", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the series headers (after the row-label column).
	Columns []string
	// Rows are the labeled series.
	Rows []Row
	// Notes carries free-form observations (e.g. shape checks).
	Notes []string
}

// Row is one labeled series of a report.
type Row struct {
	Label  string
	Values []float64
	// Text overrides numeric rendering when set (used by table3's "-").
	Text []string
}

// AddRow appends a numeric row.
func (r *Report) AddRow(label string, values ...float64) {
	r.Rows = append(r.Rows, Row{Label: label, Values: values})
}

// AddTextRow appends a preformatted row.
func (r *Report) AddTextRow(label string, cells ...string) {
	r.Rows = append(r.Rows, Row{Label: label, Text: cells})
}

// Note appends an observation line.
func (r *Report) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// cells renders a row's cells.
func (row Row) cells() []string {
	if row.Text != nil {
		return row.Text
	}
	out := make([]string, len(row.Values))
	for i, v := range row.Values {
		switch {
		case v == float64(int64(v)) && v < 1e15:
			out[i] = fmt.Sprintf("%d", int64(v))
		default:
			out[i] = fmt.Sprintf("%.3f", v)
		}
	}
	return out
}

// WriteTable renders the report as an aligned text table.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	header := append([]string{""}, r.Columns...)
	rows := [][]string{header}
	for _, row := range r.Rows {
		rows = append(rows, append([]string{row.Label}, row.cells()...))
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, c := range row {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// WriteCSV renders the report as CSV (label column first).
func (r *Report) WriteCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, 0, len(r.Columns)+1)
	cols = append(cols, "label")
	cols = append(cols, r.Columns...)
	for i := range cols {
		cols[i] = esc(cols[i])
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, row := range r.Rows {
		cells := append([]string{row.Label}, row.cells()...)
		for i := range cells {
			cells[i] = esc(cells[i])
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// Value looks up a cell by row label and column header; ok is false when
// either is missing. Shape checks in tests and EXPERIMENTS.md generation
// use it.
func (r *Report) Value(label, column string) (float64, bool) {
	ci := -1
	for i, c := range r.Columns {
		if c == column {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, row := range r.Rows {
		if row.Label == label && ci < len(row.Values) && row.Text == nil {
			return row.Values[ci], true
		}
	}
	return 0, false
}

package bench

import (
	"strings"
	"testing"
)

// TestAllExperimentsTiny smoke-runs every registered experiment driver at
// the tiny scale: each must complete without error and produce a
// non-empty, renderable report. This is the harness's end-to-end safety
// net; shape assertions live in the per-experiment tests.
func TestAllExperimentsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers are slow; skipped with -short")
	}
	sc := tinyScale()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(sc, 43)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Errorf("report ID %q != experiment ID %q", rep.ID, e.ID)
			}
			if len(rep.Rows) == 0 || len(rep.Columns) == 0 {
				t.Fatalf("%s: empty report", e.ID)
			}
			var tbl strings.Builder
			rep.WriteTable(&tbl)
			if !strings.Contains(tbl.String(), e.ID) {
				t.Errorf("%s: table rendering broken", e.ID)
			}
			var csv strings.Builder
			rep.WriteCSV(&csv)
			if len(strings.Split(strings.TrimSpace(csv.String()), "\n")) != len(rep.Rows)+1 {
				t.Errorf("%s: csv row count wrong", e.ID)
			}
		})
	}
}

// Fig9's central shape claim at tiny scale: learning never hurts much —
// Offline and Online end within a reasonable band of EP. (The strict
// Online <= Offline <= EP ordering needs the full scale and repetitions;
// here we only guard against gross regressions.)
func TestFig9Sanity(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rep, err := Fig9(tinyScale(), 47)
	if err != nil {
		t.Fatal(err)
	}
	ep, ok1 := rep.Value("EP", "repo=0")
	off, ok2 := rep.Value("Offline", "repo=1280")
	if !ok1 || !ok2 {
		t.Fatal("missing cells")
	}
	if ep <= 0 || off <= 0 {
		t.Fatal("degenerate probe counts")
	}
	if off > ep*1.5 {
		t.Errorf("Offline with a large repository (%f) much worse than EP (%f)", off, ep)
	}
}

package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// A traced bench run must emit at least one span for every pipeline
// stage, and the per-round component rows of the Table-4-style report
// must each count exactly one observation per probe.
func TestTraceRunCoversAllStages(t *testing.T) {
	var buf bytes.Buffer
	rep, err := TraceRun(ScaleQuick(), 7, &buf)
	if err != nil {
		t.Fatal(err)
	}

	stages := map[string]int{}
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var rec struct {
			Stage string `json:"stage"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("invalid trace line: %v\n%s", err, line)
		}
		stages[rec.Stage]++
	}
	for _, want := range []string{
		"query_eval", "provenance", "repo_reuse", "split", "lal_train",
		"retrain", "forest_fit", "learner", "lal", "utility", "selector",
		"probe", "simplify",
	} {
		if stages[want] == 0 {
			t.Errorf("trace has no %q spans", want)
		}
	}

	probes := stages["probe"]
	if probes == 0 {
		t.Fatal("traced run issued no probes")
	}
	for _, label := range []string{"Learner", "LAL", "Utility", "Selector", "Oracle probe", "Simplify"} {
		n, ok := rep.Value(label, "Count")
		if !ok {
			t.Fatalf("report lacks row %q", label)
		}
		if int(n) != probes {
			t.Errorf("report row %s: count %v, want %d (one per probe)", label, n, probes)
		}
	}
}

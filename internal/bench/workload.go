package bench

import (
	"fmt"
	"math/rand"

	"qres/internal/boolexpr"
	"qres/internal/datagen"
	"qres/internal/engine"
	"qres/internal/obs"
	"qres/internal/oracle"
	"qres/internal/resolve"
	"qres/internal/sqlparse"
	"qres/internal/stats"
	"qres/internal/uncertain"
)

// Scale selects experiment sizes. The paper ran NELL (1.3M labeled facts)
// and TPC-H SF1 (~8M tuples); the harness defaults to a reduced scale that
// keeps a full regeneration of every figure in the minutes range while
// preserving the provenance shapes. ScaleFull grows the substrates for
// closer (but slower) runs.
type Scale struct {
	// TPCHSF is the TPC-H scale factor.
	TPCHSF float64
	// NELLAthletes sizes the knowledge base.
	NELLAthletes int
	// InitialProbes seeds the Known Probes Repository (paper default
	// 1280).
	InitialProbes int
	// Trees is the Learner's forest size (paper default 100; smaller
	// forests trade a little probe efficiency for much faster online
	// retraining).
	Trees int
	// Reps is the number of repetitions averaged per configuration (the
	// paper averages >= 10 runs).
	Reps int
}

// ScaleQuick is the default harness scale.
func ScaleQuick() Scale {
	return Scale{TPCHSF: 0.003, NELLAthletes: 220, InitialProbes: 320, Trees: 25, Reps: 3}
}

// ScaleFull is the slower, closer-to-paper scale.
func ScaleFull() Scale {
	return Scale{TPCHSF: 0.01, NELLAthletes: 600, InitialProbes: 1280, Trees: 100, Reps: 10}
}

// Workload is a prepared resolution problem: an uncertain database, an
// annotated query result, the hidden ground truth, and the variables
// outside the query provenance (the pool the initial repository draws
// from).
type Workload struct {
	Name    string
	DB      *uncertain.DB
	Result  *engine.Result
	GT      *uncertain.GroundTruth
	offProv []boolexpr.Var
	// refVars are the tuples of the curated region relation. The five
	// region tuples are treated as certain: the ground truth pins them
	// True and every seeded repository includes their answers, so Step 3
	// simplifies them out of the provenance before probing. Without this
	// the single region tuple selected by Q5/Q8 covers every DNF term and
	// one probe can decide the whole query — a degenerate shape the
	// paper's workloads do not exhibit (its Q8 cover size is 6, matching
	// the per-nation hubs that remain once the region is certain).
	refVars []boolexpr.Var
}

// GroundTruthKind selects how tuple correctness is drawn.
type GroundTruthKind struct {
	// Fixed uses a uniform probability for every tuple when RDT is false.
	Fixed float64
	// RDT draws probabilities from a hidden random decision tree over
	// metadata (the paper's default synthetic ground truth).
	RDT bool
}

// RDTGroundTruth is the paper's default.
func RDTGroundTruth() GroundTruthKind { return GroundTruthKind{RDT: true} }

// FixedGroundTruth uses probability p for every tuple.
func FixedGroundTruth(p float64) GroundTruthKind { return GroundTruthKind{Fixed: p} }

// LoadTPCH prepares a TPC-H workload for the named stripped query.
func LoadTPCH(query string, sc Scale, gt GroundTruthKind, seed int64) (*Workload, error) {
	return LoadTPCHObserved(query, sc, gt, seed, nil)
}

// LoadTPCHObserved is LoadTPCH with instrumentation: query evaluation and
// provenance construction emit spans through o (nil disables tracing).
func LoadTPCHObserved(query string, sc Scale, gt GroundTruthKind, seed int64, o *obs.Obs) (*Workload, error) {
	udb := datagen.TPCH(datagen.TPCHConfig{SF: sc.TPCHSF, Seed: stats.SubSeed(seed, 1)})
	return prepare("TPC-H/"+query, udb, datagen.TPCHQueries()[query], gt, seed, o)
}

// LoadNELL prepares a NELL workload for the named hand-written query.
func LoadNELL(query string, sc Scale, gt GroundTruthKind, seed int64) (*Workload, error) {
	udb := datagen.NELL(datagen.NELLConfig{Athletes: sc.NELLAthletes, Seed: stats.SubSeed(seed, 2)})
	return prepare("NELL/"+query, udb, datagen.NELLQueries()[query], gt, seed, nil)
}

func prepare(name string, udb *uncertain.DB, sql string, gt GroundTruthKind, seed int64, o *obs.Obs) (*Workload, error) {
	if sql == "" {
		return nil, fmt.Errorf("bench: unknown query for workload %s", name)
	}
	plan, err := sqlparse.ParseAndCompile(sql, udb.Data())
	if err != nil {
		return nil, fmt.Errorf("bench: compile %s: %w", name, err)
	}
	res, err := engine.RunObserved(udb, plan, o)
	if err != nil {
		return nil, fmt.Errorf("bench: run %s: %w", name, err)
	}

	var truth *uncertain.GroundTruth
	if gt.RDT {
		truth = uncertain.GenerateRDT(udb, 4, stats.SubSeed(seed, 3))
	} else {
		truth = uncertain.GenerateFixed(udb, gt.Fixed, stats.SubSeed(seed, 3))
	}

	// Region tuples are certain (see Workload.refVars).
	var refVars []boolexpr.Var
	for _, v := range udb.AllVars() {
		if ref, ok := udb.RefFor(v); ok && ref.Relation == "region" {
			truth.Val.Set(v, true)
			truth.Prob[v] = 1
			refVars = append(refVars, v)
		}
	}

	inProv := make(map[boolexpr.Var]bool)
	for _, v := range res.UniqueVars() {
		inProv[v] = true
	}
	var off []boolexpr.Var
	for _, v := range udb.AllVars() {
		if !inProv[v] {
			off = append(off, v)
		}
	}
	return &Workload{Name: name, DB: udb, Result: res, GT: truth, offProv: off, refVars: refVars}, nil
}

// Repository seeds a fresh Known Probes Repository with n probes drawn
// uniformly from tuples outside the query provenance (paper Section 7.1),
// answered by the ground truth.
func (w *Workload) Repository(n int, seed int64) *resolve.Repository {
	repo := resolve.NewRepository()
	for _, v := range w.refVars {
		repo.AddVar(v, w.DB.MetaFor(v), true)
	}
	if n <= 0 || len(w.offProv) == 0 {
		return repo
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(w.offProv))
	if n > len(perm) {
		n = len(perm)
	}
	for _, i := range perm[:n] {
		v := w.offProv[i]
		ans, _ := w.GT.Val.Get(v)
		repo.AddVar(v, w.DB.MetaFor(v), ans)
	}
	return repo
}

// EffectiveProvenance returns the provenance expressions after Step 3
// substitutes the always-known reference answers — the Boolean evaluation
// problem the session actually faces (Table 3 reports its statistics).
func (w *Workload) EffectiveProvenance() []boolexpr.Expr {
	if len(w.refVars) == 0 {
		return w.Result.Provenance()
	}
	known := boolexpr.NewValuation()
	for _, v := range w.refVars {
		known.Set(v, true)
	}
	exprs := w.Result.Provenance()
	out := make([]boolexpr.Expr, len(exprs))
	for i, e := range exprs {
		out[i] = e.Simplify(known)
	}
	return out
}

// Oracle returns a ground-truth oracle for the workload.
func (w *Workload) Oracle() *oracle.GroundTruth {
	return oracle.NewGroundTruth(w.GT.Val)
}

// Subset restricts the workload to n output rows chosen uniformly at
// random (the paper's Figure 6 "T output tuples selected uniformly at
// random, resembling a LIMIT operator over a random ordering"). When the
// result has at most n rows the workload is returned unchanged.
func (w *Workload) Subset(n int, seed int64) *Workload {
	if n <= 0 || len(w.Result.Rows) <= n {
		return w
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(w.Result.Rows))
	sub := &engine.Result{Columns: w.Result.Columns}
	for _, i := range perm[:n] {
		sub.Rows = append(sub.Rows, w.Result.Rows[i])
	}
	out := *w
	out.Result = sub
	out.Name = fmt.Sprintf("%s/T=%d", w.Name, n)
	// Recompute the off-provenance pool for the smaller result.
	inProv := make(map[boolexpr.Var]bool)
	for _, v := range sub.UniqueVars() {
		inProv[v] = true
	}
	out.offProv = nil
	for _, v := range w.DB.AllVars() {
		if !inProv[v] {
			out.offProv = append(out.offProv, v)
		}
	}
	return &out
}

// RunConfig resolves the workload once under cfg with a fresh repository
// of initProbes seeded probes, returning the probe count and the session
// statistics.
func (w *Workload) RunConfig(cfg resolve.Config, initProbes int, seed int64) (int, *resolve.Stats, error) {
	out, err := w.RunWithOracle(cfg, initProbes, seed, w.Oracle())
	if err != nil {
		return 0, nil, err
	}
	return out.Probes, out.Stats, nil
}

// RunWithOracle is RunConfig with a caller-supplied oracle (used by the
// noisy-oracle extension experiments) and the full outcome.
func (w *Workload) RunWithOracle(cfg resolve.Config, initProbes int, seed int64, orc resolve.Oracle) (*resolve.Outcome, error) {
	cfg.Seed = seed
	repo := w.Repository(initProbes, stats.SubSeed(seed, 11))
	sess, err := resolve.NewSession(w.DB, w.Result, orc, repo, cfg)
	if err != nil {
		return nil, err
	}
	return sess.Run()
}

// AverageProbes runs cfg reps times with distinct seeds and returns the
// mean probe count.
func (w *Workload) AverageProbes(cfg resolve.Config, initProbes, reps int, seed int64) (float64, error) {
	if reps <= 0 {
		reps = 1
	}
	total := 0
	for r := 0; r < reps; r++ {
		probes, _, err := w.RunConfig(cfg, initProbes, stats.SubSeed(seed, 100+r))
		if err != nil {
			return 0, err
		}
		total += probes
	}
	return float64(total) / float64(reps), nil
}

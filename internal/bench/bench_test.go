package bench

import (
	"strings"
	"testing"

	"qres/internal/resolve"
)

// tinyScale keeps harness tests fast while exercising every code path.
func tinyScale() Scale {
	return Scale{TPCHSF: 0.0012, NELLAthletes: 60, InitialProbes: 40, Trees: 10, Reps: 1}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	r.AddRow("row1", 1, 2.5)
	r.AddTextRow("row2", "7", "-")
	r.Note("a note with %d", 3)

	var tbl strings.Builder
	r.WriteTable(&tbl)
	for _, want := range []string{"== x: demo ==", "row1", "2.500", "row2", "-", "note: a note with 3"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}

	var csv strings.Builder
	r.WriteCSV(&csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || lines[0] != "label,a,b" {
		t.Errorf("csv = %q", csv.String())
	}

	if v, ok := r.Value("row1", "b"); !ok || v != 2.5 {
		t.Errorf("Value(row1,b) = %f, %t", v, ok)
	}
	if _, ok := r.Value("row2", "b"); ok {
		t.Error("text rows must not resolve as numeric values")
	}
	if _, ok := r.Value("row1", "zzz"); ok {
		t.Error("unknown column must not resolve")
	}
}

func TestCSVEscaping(t *testing.T) {
	r := &Report{ID: "x", Columns: []string{`we"ird`}}
	r.AddTextRow("a,b", `q"t`)
	var csv strings.Builder
	r.WriteCSV(&csv)
	out := csv.String()
	if !strings.Contains(out, `"we""ird"`) || !strings.Contains(out, `"a,b"`) {
		t.Errorf("csv escaping wrong: %q", out)
	}
}

func TestWorkloadPreparation(t *testing.T) {
	sc := tinyScale()
	w, err := LoadTPCH("Q10", sc, FixedGroundTruth(0.5), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Result.Rows) == 0 {
		t.Fatal("empty workload result")
	}
	// Ground truth covers every variable.
	for _, v := range w.DB.AllVars() {
		if !w.GT.Val.Assigned(v) {
			t.Fatal("ground truth incomplete")
		}
	}
	// Repository draws off-provenance tuples, plus the always-known
	// region answers (5 tuples).
	repo := w.Repository(30, 1)
	if repo.Len() != 35 {
		t.Fatalf("repository len = %d, want 30 sampled + 5 region", repo.Len())
	}
	inProv := make(map[string]bool)
	for _, v := range w.Result.UniqueVars() {
		inProv[w.DB.Registry().Name(v)] = true
	}
	for _, rec := range repo.Records() {
		if !rec.HasVar {
			continue
		}
		if w.DB.Registry().Name(rec.Var)[:6] == "region" {
			if !rec.Answer {
				t.Fatal("region tuples must be recorded correct")
			}
			continue
		}
		if inProv[w.DB.Registry().Name(rec.Var)] {
			t.Fatal("sampled repository probe overlaps query provenance")
		}
	}
}

func TestWorkloadSubset(t *testing.T) {
	sc := tinyScale()
	w, err := LoadTPCH("Q3", sc, FixedGroundTruth(0.5), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Result.Rows) < 4 {
		t.Skip("result too small to subset at this scale")
	}
	n := len(w.Result.Rows) / 2
	sub := w.Subset(n, 1)
	if len(sub.Result.Rows) != n {
		t.Fatalf("subset rows = %d, want %d", len(sub.Result.Rows), n)
	}
	// Unchanged when n >= |result|.
	same := w.Subset(len(w.Result.Rows)+10, 1)
	if same != w {
		t.Error("oversized subset must return the workload unchanged")
	}
}

func TestWorkloadRunAndAverage(t *testing.T) {
	sc := tinyScale()
	w, err := LoadNELL("MS2", sc, RDTGroundTruth(), 5)
	if err != nil {
		t.Fatal(err)
	}
	probes, st, err := w.RunConfig(resolveGeneralEP(), 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if probes <= 0 || st.Probes != probes {
		t.Fatalf("probes = %d, stats = %d", probes, st.Probes)
	}
	mean, err := w.AverageProbes(resolveGeneralEP(), 0, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 {
		t.Fatal("mean probes must be positive")
	}
}

func TestLookupAndRegistry(t *testing.T) {
	if len(Experiments()) < 12 {
		t.Fatalf("only %d experiments registered", len(Experiments()))
	}
	if _, ok := Lookup("fig5"); !ok {
		t.Fatal("fig5 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown id resolved")
	}
	seen := make(map[string]bool)
	for _, e := range Experiments() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestTable3Tiny(t *testing.T) {
	rep, err := Table3(tinyScale(), 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rep.Rows))
	}
	// Q8 joins 8 relations; with the certain region tuple simplified out
	// of the provenance, effective terms have 7 variables.
	for _, row := range rep.Rows {
		if row.Label == "TPC-H Q8" && row.Text[2] != "7" {
			t.Errorf("Q8 effective term size = %s, want 7", row.Text[2])
		}
	}
}

func TestFig7Tiny(t *testing.T) {
	rep, err := Fig7(tinyScale(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Columns) != 5 {
		t.Fatalf("columns = %v", rep.Columns)
	}
	// Shape: every solution issues more probes at p=0.9 than at p=0.3
	// (higher probabilities leave fewer easy False terms).
	for _, label := range []string{"Greedy", "Q-Value+EP", "General+EP"} {
		lo, ok1 := rep.Value(label, "p=0.3")
		hi, ok2 := rep.Value(label, "p=0.9")
		if !ok1 || !ok2 {
			t.Fatalf("missing cells for %s", label)
		}
		if hi < lo {
			t.Errorf("%s: p=0.9 (%f) should need at least as many probes as p=0.3 (%f)", label, hi, lo)
		}
	}
}

func TestAblationParallelTiny(t *testing.T) {
	rep, err := AblationParallel(tinyScale(), 19)
	if err != nil {
		t.Fatal(err)
	}
	seqTotal, _ := rep.Value("sequential", "total probes")
	parCritical, _ := rep.Value("parallel", "critical path")
	parTotal, _ := rep.Value("parallel", "total probes")
	if parCritical > parTotal {
		t.Error("critical path exceeds total")
	}
	if seqTotal <= 0 || parTotal <= 0 {
		t.Error("degenerate probe counts")
	}
}

func resolveGeneralEP() resolve.Config {
	return resolve.Config{Utility: resolve.General{}, Learning: resolve.LearnEP}
}

package bench

import (
	"io"

	"qres/internal/learn"
	"qres/internal/obs"
	"qres/internal/resolve"
	"qres/internal/stats"
)

// TraceRun resolves one representative workload (TPC-H Q3, RDT ground
// truth, the paper's full framework configuration) end to end with full
// instrumentation: every pipeline span — query evaluation, provenance
// construction, repository reuse, splitting, LAL training, learner
// retraining, per-round component work, oracle probes, simplification —
// is written to w as JSON Lines, and the per-stage timing distributions
// are aggregated into a Table-4-style per-component report measured from
// the same observations.
func TraceRun(sc Scale, seed int64, w io.Writer) (*Report, error) {
	reg := obs.NewRegistry()
	o := obs.New("", obs.NewJSONL(w), reg)

	wl, err := LoadTPCHObserved("Q3", sc, RDTGroundTruth(), seed, o)
	if err != nil {
		return nil, err
	}

	// Train a private LAL regressor so the offline lal_train stage appears
	// in the trace (the process-wide SharedLAL is uninstrumented); smaller
	// than the default so trace runs stay fast.
	lalCfg := learn.DefaultLALConfig(stats.SubSeed(seed, 40))
	lalCfg.Tasks = 10
	lalCfg.Obs = o

	cfg := resolve.Config{
		Utility:  resolve.General{},
		Learning: resolve.LearnOnline,
		Trees:    sc.Trees,
		LAL:      learn.TrainLAL(lalCfg),
		Obs:      o,
	}
	probes, st, err := wl.RunConfig(cfg, sc.InitialProbes, stats.SubSeed(seed, 41))
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:    "trace",
		Title: "Per-component timing (Table 4 style) — " + wl.Name + ", " + cfg.Name(),
		Columns: []string{
			"Count", "Avg. (ms)", "Median (ms)", "90th (ms)", "Max (ms)",
		},
	}
	name := cfg.Name()
	snap := reg.Snapshot()
	for _, row := range []struct {
		label string
		stage obs.Stage
	}{
		{"Learner", obs.StageLearner},
		{"LAL", obs.StageLAL},
		{"Utility", obs.StageUtility},
		{"Selector", obs.StageSelector},
		{"Oracle probe", obs.StageProbe},
		{"Simplify", obs.StageSimplify},
	} {
		h, ok := snap.Histograms[obs.Key("stage_seconds", string(row.stage), name)]
		if !ok {
			rep.AddRow(row.label, 0, 0, 0, 0, 0)
			continue
		}
		const ms = 1e3
		rep.AddRow(row.label,
			float64(h.Count), h.Mean*ms, h.P50*ms, h.P90*ms, h.Max*ms)
	}
	rep.Note("probes=%d; every per-round component ran once per probe selection", probes)
	rep.Note("sanity: Stats timers agree — learner n=%d lal n=%d utility n=%d selector n=%d",
		st.Learner.Count(), st.LAL.Count(), st.Utility.Count(), st.Selector.Count())
	ctr := func(metric string) int64 { return snap.Counters[obs.Key(metric, name)] }
	rep.Note("incremental path: tuples_resimplified=%d vars_rescored=%d score_cache=%d/%d prob_cache=%d/%d (hits/misses)",
		ctr("tuples_resimplified"), ctr("vars_rescored"),
		ctr("score_cache_hits"), ctr("score_cache_misses"),
		ctr("prob_cache_hits"), ctr("prob_cache_misses"))
	return rep, nil
}

package bench

import "testing"

func TestExtNoisyTiny(t *testing.T) {
	rep, err := ExtNoisy(tinyScale(), 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// A noise-free oracle yields zero wrong answers.
	if wrong, ok := rep.Value("error rate 0.00", "wrong answers"); !ok || wrong != 0 {
		t.Errorf("noise-free run produced %f wrong answers", wrong)
	}
	// The answer error percentage never exceeds 100.
	for _, row := range rep.Rows {
		if len(row.Values) == 3 && (row.Values[2] < 0 || row.Values[2] > 100) {
			t.Errorf("%s: error %% = %f", row.Label, row.Values[2])
		}
	}
}

func TestExtCostTiny(t *testing.T) {
	rep, err := ExtCost(tinyScale(), 29)
	if err != nil {
		t.Fatal(err)
	}
	blindCost, ok1 := rep.Value("cost-blind", "total cost")
	awareCost, ok2 := rep.Value("cost-aware", "total cost")
	blindProbes, _ := rep.Value("cost-blind", "probes")
	awareProbes, _ := rep.Value("cost-aware", "probes")
	if !ok1 || !ok2 {
		t.Fatal("missing report cells")
	}
	if blindCost < blindProbes || awareCost < awareProbes {
		t.Error("total cost cannot be below the probe count (every cost >= 1)")
	}
	// The cost-aware selector should not cost more than the blind one (it
	// defers expensive probes); allow equality for degenerate cases.
	if awareCost > blindCost*1.2 {
		t.Errorf("cost-aware (%f) much worse than cost-blind (%f)", awareCost, blindCost)
	}
}

func TestExtFeaturesTiny(t *testing.T) {
	rep, err := ExtFeatures(tinyScale(), 37)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no feature importances reported")
	}
	for _, col := range rep.Columns {
		var sum float64
		for _, row := range rep.Rows {
			v, ok := rep.Value(row.Label, col)
			if !ok {
				t.Fatalf("missing cell %s/%s", row.Label, col)
			}
			if v < 0 || v > 1 {
				t.Fatalf("%s/%s importance %f out of range", row.Label, col, v)
			}
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("column %s importances sum to %f, want ~1", col, sum)
		}
	}
}

func TestCostAccountingDefaults(t *testing.T) {
	// Without a Costs map, cost equals the probe count.
	w, err := LoadNELL("MS2", tinyScale(), FixedGroundTruth(0.5), 31)
	if err != nil {
		t.Fatal(err)
	}
	out, err := w.RunWithOracle(resolveGeneralEP(), 0, 33, w.Oracle())
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Cost != float64(out.Probes) {
		t.Errorf("default cost = %f, probes = %d", out.Stats.Cost, out.Probes)
	}
}

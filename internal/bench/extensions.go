package bench

import (
	"fmt"

	"qres/internal/boolexpr"
	"qres/internal/oracle"
	"qres/internal/resolve"
	"qres/internal/stats"
)

// ExtNoisy studies the noisy-oracle setting sketched in the paper's
// Section 9 ("we examine the effect of erroneous/noisy oracles on our
// correctness results"): for increasing oracle error rates on MS2, it
// measures how many of the resolved output answers deviate from the
// ground truth, alongside the probe count. The paper's observation that
// "not every erroneous probe answer affects the truth value of an output
// tuple" shows up as answer-error rates well below the probe-error rate.
func ExtNoisy(sc Scale, seed int64) (*Report, error) {
	rep := &Report{
		ID:      "ext-noisy",
		Title:   "Noisy oracle: answer errors vs oracle error rate (MS2, General+EP)",
		Columns: []string{"probes", "wrong answers", "answer error %"},
	}
	w, err := LoadNELL("MS2", sc, RDTGroundTruth(), seed)
	if err != nil {
		return nil, err
	}
	truth := make(map[int]bool, len(w.Result.Rows))
	for i, row := range w.Result.Rows {
		truth[i] = row.Prov.Eval(w.GT.Val)
	}

	cfg := resolve.Config{Utility: resolve.General{}, Learning: resolve.LearnEP}
	for i, rate := range []float64{0, 0.05, 0.1, 0.2} {
		probes, wrong := 0, 0
		reps := sc.Reps
		if reps <= 0 {
			reps = 1
		}
		for r := 0; r < reps; r++ {
			noisy := oracle.NewNoisy(w.Oracle(), rate, stats.SubSeed(seed, 200+10*i+r))
			out, err := w.RunWithOracle(cfg, 0, stats.SubSeed(seed, 300+10*i+r), noisy)
			if err != nil {
				return nil, err
			}
			probes += out.Probes
			for _, a := range out.Answers {
				if a.Correct != truth[a.Row] {
					wrong++
				}
			}
		}
		n := float64(reps)
		meanWrong := float64(wrong) / n
		rep.AddRow(fmt.Sprintf("error rate %.2f", rate),
			float64(probes)/n, meanWrong,
			100*meanWrong/float64(len(w.Result.Rows)))
	}
	rep.Note("answer error rates stay below the oracle error rate: many wrong probe answers are not critical")
	return rep, nil
}

// ExtCost studies cost-aware probe selection (Section 9: "validation of
// some tuples may require more effort than the validation of others"):
// tuples of one relation are 10x as expensive to verify, and the
// cost-aware selector (score per unit cost) is compared with the
// cost-blind one on total verification cost.
func ExtCost(sc Scale, seed int64) (*Report, error) {
	rep := &Report{
		ID:      "ext-cost",
		Title:   "Cost-aware probing (MS1, General with known probabilities)",
		Columns: []string{"probes", "total cost"},
	}
	w, err := LoadNELL("MS1", sc, RDTGroundTruth(), seed)
	if err != nil {
		return nil, err
	}
	// athleteplaysforteam facts need manual roster checks (cost 10); the
	// other facts verify cheaply against structured sources (cost 1).
	// Every MS1 provenance term contains one fact of each relation, so a
	// cost-aware selector can usually falsify a term through one of its
	// cheap members instead of the expensive one.
	costs := make(map[boolexpr.Var]float64)
	for _, v := range w.Result.UniqueVars() {
		if ref, ok := w.DB.RefFor(v); ok && ref.Relation == "athleteplaysforteam" {
			costs[v] = 10
		}
	}

	base := resolve.Config{Utility: resolve.General{}, KnownProbs: w.GT.Prob}
	run := func(label string, cfg resolve.Config) error {
		reps := sc.Reps
		if reps <= 0 {
			reps = 1
		}
		var probes, cost float64
		for r := 0; r < reps; r++ {
			out, err := w.RunWithOracle(cfg, 0, stats.SubSeed(seed, 410+r), w.Oracle())
			if err != nil {
				return err
			}
			probes += float64(out.Probes)
			cost += out.Stats.Cost
		}
		rep.AddRow(label, probes/float64(reps), cost/float64(reps))
		return nil
	}

	blind := base
	blind.Costs = costs // accounting only: selection ignores cost
	if err := run("cost-blind", blind); err != nil {
		return nil, err
	}
	aware := base
	aware.Costs = costs
	aware.CostAware = true
	if err := run("cost-aware", aware); err != nil {
		return nil, err
	}
	rep.Note("the cost-aware selector trades a few extra probes for a lower total verification cost")
	return rep, nil
}

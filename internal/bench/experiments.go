package bench

import (
	"fmt"

	"qres/internal/boolexpr"
	"qres/internal/resolve"
	"qres/internal/stats"
)

// Experiment is a driver regenerating one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(sc Scale, seed int64) (*Report, error)
}

// Experiments returns all drivers in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"table3", "Statistics for representative queries", Table3},
		{"table4", "Execution times per probe (seconds), Q8", Table4},
		{"fig5", "Overall performance: probes per solution", Fig5},
		{"fig6", "Effect of result-subset size", Fig6},
		{"fig7", "Effect of answer probabilities (Q8)", Fig7},
		{"fig8", "Effect of splitting large expressions", Fig8},
		{"fig9", "Effect of learning and initial repository size (Q9-style, Q8)", Fig9},
		{"ablation-selector", "Probe Selector combination functions (Q8)", AblationSelector},
		{"ablation-model", "Learner classifier: RF vs naive Bayes (Q8)", AblationModel},
		{"ablation-splitbound", "Splitting bound B (Q5)", AblationSplitBound},
		{"ablation-trees", "Forest size (Q8)", AblationTrees},
		{"ablation-parallel", "Component-parallel probing (MS1)", AblationParallel},
		{"ext-noisy", "Extension: noisy oracle (MS2)", ExtNoisy},
		{"ext-cost", "Extension: cost-aware probing (MS1)", ExtCost},
		{"ext-features", "Section 7.4: Learner feature importances (MS1)", ExtFeatures},
	}
}

// Lookup finds a driver by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// baselineAndFrameworkConfigs enumerates the solutions compared in Figure
// 5: the two probability-blind baselines, pure active learning, and the
// three utilities under each learning mode.
func baselineAndFrameworkConfigs(sc Scale) []resolve.Config {
	utilities := []resolve.Utility{resolve.RO{}, resolve.QValue{}, resolve.General{}}
	modes := []resolve.LearningMode{resolve.LearnEP, resolve.LearnOffline, resolve.LearnOnline}
	configs := []resolve.Config{
		{Baseline: resolve.BaselineRandom},
		{Baseline: resolve.BaselineGreedy},
		{Baseline: resolve.BaselineLALOnly, Learning: resolve.LearnOnline, Trees: sc.Trees},
	}
	for _, u := range utilities {
		for _, m := range modes {
			configs = append(configs, resolve.Config{Utility: u, Learning: m, Trees: sc.Trees})
		}
	}
	return configs
}

// utilityOnlyConfigs enumerates the solutions of the utility-isolation
// experiments (Figures 6–8): baselines plus the three utilities, all fed
// the true probabilities (KnownProbs) so that learning quality does not
// interfere.
func utilityOnlyConfigs(w *Workload) []resolve.Config {
	probs := w.GT.Prob
	return []resolve.Config{
		{Baseline: resolve.BaselineRandom},
		{Baseline: resolve.BaselineGreedy},
		{Utility: resolve.RO{}, KnownProbs: probs},
		{Utility: resolve.QValue{}, KnownProbs: probs},
		{Utility: resolve.General{}, KnownProbs: probs},
	}
}

// Table3 reproduces the query statistics table: number of provenance
// expressions (output tuples), unique variables, maximum term size, and
// greedy cover size (or "-" beyond 50, the paper's non-skewed marker).
func Table3(sc Scale, seed int64) (*Report, error) {
	rep := &Report{
		ID:      "table3",
		Title:   "Statistics for representative queries",
		Columns: []string{"# Expressions", "# Unique variables", "Term Size", "Cover Size"},
	}
	type entry struct {
		label string
		load  func() (*Workload, error)
	}
	entries := []entry{
		{"NELL MS1", func() (*Workload, error) { return LoadNELL("MS1", sc, RDTGroundTruth(), seed) }},
		{"NELL MS2", func() (*Workload, error) { return LoadNELL("MS2", sc, RDTGroundTruth(), seed) }},
		{"TPC-H Q3", func() (*Workload, error) { return LoadTPCH("Q3", sc, RDTGroundTruth(), seed) }},
		{"TPC-H Q8", func() (*Workload, error) { return LoadTPCH("Q8", sc, RDTGroundTruth(), seed) }},
		{"TPC-H Q10", func() (*Workload, error) { return LoadTPCH("Q10", sc, RDTGroundTruth(), seed) }},
	}
	for _, e := range entries {
		w, err := e.load()
		if err != nil {
			return nil, err
		}
		exprs := w.EffectiveProvenance()
		cover, ok := boolexpr.GreedyCover(exprs, 50)
		coverCell := fmt.Sprintf("%d", len(cover))
		if !ok {
			coverCell = "-"
		}
		uniq := make(map[boolexpr.Var]struct{})
		termSize := 0
		for _, ex := range exprs {
			for _, v := range ex.Vars() {
				uniq[v] = struct{}{}
			}
			if k := ex.MaxTermSize(); k > termSize {
				termSize = k
			}
		}
		rep.AddTextRow(e.label,
			fmt.Sprintf("%d", len(exprs)),
			fmt.Sprintf("%d", len(uniq)),
			fmt.Sprintf("%d", termSize),
			coverCell)
	}
	rep.Note("cover size <= 10: skewed; 11-50: moderately skewed; '-': non-skewed")
	return rep, nil
}

// Table4 reproduces the per-probe component execution times on Q8:
// Learner (retraining + probability estimation), LAL (uncertainty
// estimation), each utility function, and the Probe Selector.
func Table4(sc Scale, seed int64) (*Report, error) {
	rep := &Report{
		ID:      "table4",
		Title:   "Execution times per probe (milliseconds), Q8",
		Columns: []string{"Avg.", "Median", "Max.", "90th %ile"},
	}
	w, err := LoadTPCH("Q8", sc, RDTGroundTruth(), seed)
	if err != nil {
		return nil, err
	}
	w = w.Subset(rowCap(sc), stats.SubSeed(seed, 5))

	// Q-Value+LAL exercises Learner, LAL, the Q-Value utility and the
	// Selector in one run.
	_, qvStats, err := w.RunConfig(resolve.Config{
		Utility: resolve.QValue{}, Learning: resolve.LearnOnline, Trees: sc.Trees,
	}, sc.InitialProbes, stats.SubSeed(seed, 6))
	if err != nil {
		return nil, err
	}
	// Separate runs time the CNF-free utilities.
	_, genStats, err := w.RunConfig(resolve.Config{
		Utility: resolve.General{}, Learning: resolve.LearnOffline, Trees: sc.Trees,
	}, sc.InitialProbes, stats.SubSeed(seed, 7))
	if err != nil {
		return nil, err
	}
	_, roStats, err := w.RunConfig(resolve.Config{
		Utility: resolve.RO{}, Learning: resolve.LearnOffline, Trees: sc.Trees,
	}, sc.InitialProbes, stats.SubSeed(seed, 8))
	if err != nil {
		return nil, err
	}

	add := func(label string, s stats.Summary) {
		// Rendered in milliseconds: the reduced substrate makes each
		// component 10-100x faster than the paper's second-scale numbers,
		// but the ordering between components is the reproduced result.
		const ms = 1e3
		rep.AddRow(label, s.Mean*ms, s.Median*ms, s.Max*ms, s.P90*ms)
	}
	add("Learner", qvStats.Learner.Summary())
	add("LAL", qvStats.LAL.Summary())
	add("Q-Value", qvStats.Utility.Summary())
	add("General", genStats.Utility.Summary())
	add("RO", roStats.Utility.Summary())
	add("Selector", qvStats.Selector.Summary())
	rep.Note("expected ordering (paper): Learner > LAL > Q-Value > General > RO > Selector")
	return rep, nil
}

// rowCap bounds result sizes for the heavyweight experiments at quick
// scale; 0 means unlimited.
func rowCap(sc Scale) int {
	if sc.Reps >= 10 { // full scale
		return 0
	}
	return 400
}

// Fig5 reproduces the overall-performance comparison: mean probe count of
// every solution on TPC-H Q8 and NELL MS1/MS2 with RDT ground truth and a
// seeded initial repository.
func Fig5(sc Scale, seed int64) (*Report, error) {
	rep := &Report{
		ID:      "fig5",
		Title:   "Overall performance: mean #probes per solution",
		Columns: []string{"Q8", "MS1", "MS2"},
	}
	workloads := make([]*Workload, 0, 3)
	q8, err := LoadTPCH("Q8", sc, RDTGroundTruth(), seed)
	if err != nil {
		return nil, err
	}
	workloads = append(workloads, q8.Subset(rowCap(sc), stats.SubSeed(seed, 9)))
	for _, q := range []string{"MS1", "MS2"} {
		w, err := LoadNELL(q, sc, RDTGroundTruth(), seed)
		if err != nil {
			return nil, err
		}
		workloads = append(workloads, w)
	}

	for _, cfg := range baselineAndFrameworkConfigs(sc) {
		values := make([]float64, 0, len(workloads))
		for wi, w := range workloads {
			mean, err := w.AverageProbes(cfg, sc.InitialProbes, sc.Reps, stats.SubSeed(seed, 20+wi))
			if err != nil {
				return nil, err
			}
			values = append(values, mean)
		}
		rep.AddRow(cfg.Name(), values...)
	}
	total := q8.DB.Data().TotalTuples()
	rep.Note("TPC-H database has %d tuples; Q8 provenance has %d unique variables",
		total, len(workloads[0].Result.UniqueVars()))
	return rep, nil
}

// Fig6 reproduces the result-subset-size sweep: probes vs T for the
// utility-isolation solutions on Q3 (non-skewed), Q8 (skewed) and Q10
// (moderately skewed).
func Fig6(sc Scale, seed int64) (*Report, error) {
	sizes := subsetSizes(sc)
	rep := &Report{
		ID:    "fig6",
		Title: "Probes vs result-subset size T",
	}
	for _, t := range sizes {
		for _, q := range []string{"Q3", "Q8", "Q10"} {
			rep.Columns = append(rep.Columns, fmt.Sprintf("%s/T=%d", q, t))
		}
	}

	rows := make(map[string][]float64)
	var labelOrder []string
	for _, t := range sizes {
		for _, q := range []string{"Q3", "Q8", "Q10"} {
			w, err := LoadTPCH(q, sc, RDTGroundTruth(), seed)
			if err != nil {
				return nil, err
			}
			sub := w.Subset(t, stats.SubSeed(seed, int(30+t)))
			for _, cfg := range utilityOnlyConfigs(sub) {
				mean, err := sub.AverageProbes(cfg, 0, sc.Reps, stats.SubSeed(seed, int(40+t)))
				if err != nil {
					return nil, err
				}
				label := cfg.Name()
				if _, seen := rows[label]; !seen {
					labelOrder = append(labelOrder, label)
				}
				rows[label] = append(rows[label], mean)
			}
		}
	}
	for _, label := range labelOrder {
		rep.AddRow(label, rows[label]...)
	}
	rep.Note("utility functions run with true (known) probabilities to isolate utility computation")
	return rep, nil
}

func subsetSizes(sc Scale) []int {
	if sc.Reps >= 10 {
		return []int{500, 1000, 5000}
	}
	return []int{100, 200, 400}
}

// Fig7 reproduces the answer-probability sweep on Q8: probes under fixed
// correctness probabilities 0.3–0.9 and under the random-decision-tree
// (varying) probabilities, for the utility-isolation solutions.
func Fig7(sc Scale, seed int64) (*Report, error) {
	rep := &Report{
		ID:    "fig7",
		Title: "Probes vs answer probability (Q8)",
	}
	kinds := []struct {
		label string
		gt    GroundTruthKind
	}{
		{"p=0.3", FixedGroundTruth(0.3)},
		{"p=0.5", FixedGroundTruth(0.5)},
		{"p=0.7", FixedGroundTruth(0.7)},
		{"p=0.9", FixedGroundTruth(0.9)},
		{"RDT", RDTGroundTruth()},
	}
	for _, k := range kinds {
		rep.Columns = append(rep.Columns, k.label)
	}

	rows := make(map[string][]float64)
	var labelOrder []string
	for ki, k := range kinds {
		w, err := LoadTPCH("Q8", sc, k.gt, seed)
		if err != nil {
			return nil, err
		}
		sub := w.Subset(rowCap(sc), stats.SubSeed(seed, 50+ki))
		for _, cfg := range utilityOnlyConfigs(sub) {
			mean, err := sub.AverageProbes(cfg, 0, sc.Reps, stats.SubSeed(seed, 60+ki))
			if err != nil {
				return nil, err
			}
			label := cfg.Name()
			if _, seen := rows[label]; !seen {
				labelOrder = append(labelOrder, label)
			}
			rows[label] = append(rows[label], mean)
		}
	}
	for _, label := range labelOrder {
		rep.AddRow(label, rows[label]...)
	}
	rep.Note("all solutions issue more probes as p grows; RO's relative performance improves with p")
	return rep, nil
}

// Fig8 reproduces the expression-splitting comparison on Q3 (few large
// expressions) and Q5 (a handful of very large expressions): probes with
// and without splitting per solution. Q-Value requires CNF and therefore
// appears only with splitting.
func Fig8(sc Scale, seed int64) (*Report, error) {
	rep := &Report{
		ID:      "fig8",
		Title:   "Effect of splitting large Boolean expressions",
		Columns: []string{"Q3 split", "Q3 no-split", "Q5 split", "Q5 no-split"},
	}
	type variant struct {
		name    string
		base    resolve.Config
		needCNF bool
	}
	variants := []variant{
		{"Greedy", resolve.Config{Baseline: resolve.BaselineGreedy}, false},
		{"RO", resolve.Config{Utility: resolve.RO{}}, false},
		{"General", resolve.Config{Utility: resolve.General{}}, false},
		{"Q-Value", resolve.Config{Utility: resolve.QValue{}}, true},
	}
	queries := []string{"Q3", "Q5"}

	rows := make(map[string][]float64)
	for qi, q := range queries {
		w, err := LoadTPCH(q, sc, RDTGroundTruth(), seed)
		if err != nil {
			return nil, err
		}
		sub := w.Subset(rowCap(sc), stats.SubSeed(seed, 70+qi))
		for _, v := range variants {
			for _, split := range []bool{true, false} {
				cfg := v.base
				if cfg.Utility != nil {
					cfg.KnownProbs = sub.GT.Prob
				}
				cfg.SplitAll = split
				cfg.DisableSplitting = !split
				val := -1.0 // rendered cell for "not applicable"
				if split || !v.needCNF {
					mean, err := sub.AverageProbes(cfg, 0, sc.Reps, stats.SubSeed(seed, 80+qi))
					if err != nil {
						return nil, err
					}
					val = mean
				}
				rows[v.name] = append(rows[v.name], val)
			}
		}
	}
	for _, v := range variants {
		rep.AddRow(v.name, rows[v.name]...)
	}
	rep.Note("-1 marks configurations that require splitting (Q-Value without splitting)")
	return rep, nil
}

// Fig9 reproduces the learning-mode × initial-repository-size grid on Q8
// with the Q-Value utility and a utility-only selector: EP / Offline /
// Online rows over repository sizes 0, 80, 320, 1280.
func Fig9(sc Scale, seed int64) (*Report, error) {
	sizes := []int{0, 80, 320, 1280}
	rep := &Report{
		ID:    "fig9",
		Title: "Probes vs learning mode and initial repository size (Q8, Q-Value)",
	}
	for _, n := range sizes {
		rep.Columns = append(rep.Columns, fmt.Sprintf("repo=%d", n))
	}
	w, err := LoadTPCH("Q8", sc, RDTGroundTruth(), seed)
	if err != nil {
		return nil, err
	}
	sub := w.Subset(rowCap(sc), stats.SubSeed(seed, 90))

	utilityOnly := resolve.CombineUtilityOnly()
	modes := []struct {
		label string
		mode  resolve.LearningMode
	}{
		{"EP", resolve.LearnEP},
		{"Offline", resolve.LearnOffline},
		{"Online", resolve.LearnOnline},
	}
	for _, m := range modes {
		var values []float64
		for si, n := range sizes {
			cfg := resolve.Config{
				Utility:  resolve.QValue{},
				Learning: m.mode,
				Trees:    sc.Trees,
				Combine:  &utilityOnly,
			}
			mean, err := sub.AverageProbes(cfg, n, sc.Reps, stats.SubSeed(seed, 91+si))
			if err != nil {
				return nil, err
			}
			values = append(values, mean)
		}
		rep.AddRow(m.label, values...)
	}
	rep.Note("expected: Online <= Offline <= EP at every size; Offline narrows the gap as the repository grows")
	return rep, nil
}

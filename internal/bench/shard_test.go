package bench

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"qres/internal/oracle"
	"qres/internal/resolve"
	"qres/internal/stats"
)

// Component-sharded selection must pick the identical probe sequence and
// resolve the identical answer set as the monolithic path on the seed
// workloads, for every tested shard-worker count — the end-to-end
// counterpart of the synthetic equivalence test in internal/resolve.
func TestShardEquivalenceSeedWorkloads(t *testing.T) {
	sc := Scale{TPCHSF: 0.001, NELLAthletes: 50, InitialProbes: 40, Trees: 5, Reps: 1}

	loads := []struct {
		name string
		load func() (*Workload, error)
	}{
		{"nell-ms1", func() (*Workload, error) { return LoadNELL("MS1", sc, RDTGroundTruth(), 17) }},
		{"tpch-q3", func() (*Workload, error) { return LoadTPCH("Q3", sc, FixedGroundTruth(0.5), 17) }},
	}
	configs := []resolve.Config{
		{Utility: resolve.QValue{}, Learning: resolve.LearnEP},
		{Utility: resolve.RO{}, Learning: resolve.LearnEP},
		{Utility: resolve.General{}, Learning: resolve.LearnEP},
		{Utility: resolve.General{}, Learning: resolve.LearnOffline},
	}

	for _, ld := range loads {
		w, err := ld.load()
		if err != nil {
			t.Fatalf("%s: %v", ld.name, err)
		}
		for _, cfg := range configs {
			cfg.Trees = sc.Trees
			name := ld.name + "/" + cfg.Name()
			t.Run(name, func(t *testing.T) {
				run := func(mutate func(*resolve.Config)) ([]int, []int, int) {
					c := cfg
					mutate(&c)
					rec := oracle.NewRecorder(w.Oracle())
					out, err := w.RunWithOracle(c, sc.InitialProbes, 23, rec)
					if err != nil {
						t.Fatal(err)
					}
					probes := make([]int, 0, rec.Count())
					for _, v := range rec.Probes() {
						probes = append(probes, int(v))
					}
					return probes, out.CorrectRows(), out.Probes
				}
				monoProbes, monoRows, monoN := run(func(c *resolve.Config) { c.DisableSharding = true })
				for _, workers := range []int{0, 1, 2, 8} {
					probes, rows, n := run(func(c *resolve.Config) { c.Parallel.Shards = workers })
					if monoN != n || !reflect.DeepEqual(monoProbes, probes) {
						t.Fatalf("probe sequence diverged at %d shard workers (mono %d probes, sharded %d)\nmono:  %v\nshard: %v",
							workers, monoN, n, monoProbes, probes)
					}
					if !reflect.DeepEqual(monoRows, rows) {
						t.Fatalf("answer set diverged at %d shard workers", workers)
					}
				}
			})
		}
	}
}

// BenchmarkShardStepPath measures per-probe wall time on the seed
// workloads, monolithic versus component-sharded at 1/2/4/8 shard workers
// — the speedup curves results/BENCH_shard.json records. The Q-Value+EP
// configuration keeps the Learner version stable and every round's score
// kind cacheable, so untouched shards serve whole rounds from cached
// winners and per-probe cost tracks the probed component's size rather
// than the workset's; the monolithic path rebuilds its candidate scan
// over the whole workset every round.
func BenchmarkShardStepPath(b *testing.B) {
	sc := Scale{TPCHSF: 0.01, NELLAthletes: 500, InitialProbes: 80, Trees: 5, Reps: 1}

	loads := []struct {
		name string
		load func() (*Workload, error)
	}{
		{"nell-ms1", func() (*Workload, error) { return LoadNELL("MS1", sc, RDTGroundTruth(), 17) }},
		{"tpch-q3", func() (*Workload, error) { return LoadTPCH("Q3", sc, FixedGroundTruth(0.5), 17) }},
	}
	modes := []struct {
		name   string
		mutate func(*resolve.Config)
	}{
		{"monolithic", func(c *resolve.Config) { c.DisableSharding = true }},
		{"shards-1", func(c *resolve.Config) { c.Parallel.Shards = 1 }},
		{"shards-2", func(c *resolve.Config) { c.Parallel.Shards = 2 }},
		{"shards-4", func(c *resolve.Config) { c.Parallel.Shards = 4 }},
		{"shards-8", func(c *resolve.Config) { c.Parallel.Shards = 8 }},
	}

	for _, ld := range loads {
		w, err := ld.load()
		if err != nil {
			b.Fatalf("%s: %v", ld.name, err)
		}
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%s/%s", ld.name, mode.name), func(b *testing.B) {
				cfg := resolve.Config{Utility: resolve.QValue{}, Learning: resolve.LearnEP, Trees: sc.Trees, Seed: 23}
				mode.mutate(&cfg)
				// Session construction (EP calibration, cache and shard
				// builds) happens outside the timer: the step path is
				// what sharding changes, so that is what gets measured.
				var steps int
				var inLoop time.Duration
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					repo := w.Repository(sc.InitialProbes, stats.SubSeed(23, 11))
					sess, err := resolve.NewSession(w.DB, w.Result, w.Oracle(), repo, cfg)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					start := time.Now()
					for !sess.Done() {
						if _, _, err := sess.Step(); err != nil {
							b.Fatal(err)
						}
						steps++
					}
					inLoop += time.Since(start)
				}
				if steps > 0 {
					b.ReportMetric(float64(inLoop.Nanoseconds())/float64(steps), "ns/step")
				}
			})
		}
	}
}

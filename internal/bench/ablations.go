package bench

import (
	"fmt"

	"qres/internal/resolve"
	"qres/internal/stats"
)

// AblationSelector compares the Probe Selector combination functions of
// Section 6 — u·(v+1), αu+βv, utility-only, threshold — under the
// General+LAL configuration on Q8. The paper chose u·(v+1) empirically.
func AblationSelector(sc Scale, seed int64) (*Report, error) {
	rep := &Report{
		ID:      "ablation-selector",
		Title:   "Selector combination functions (Q8, General+LAL)",
		Columns: []string{"mean probes"},
	}
	w, err := LoadTPCH("Q8", sc, RDTGroundTruth(), seed)
	if err != nil {
		return nil, err
	}
	sub := w.Subset(rowCap(sc), stats.SubSeed(seed, 110))

	combos := []resolve.Combine{
		resolve.CombineProduct(),
		resolve.CombineLinear(1, 50),
		resolve.CombineUtilityOnly(),
		resolve.CombineThreshold(0.02, 1e6),
	}
	for i := range combos {
		c := combos[i]
		cfg := resolve.Config{
			Utility:  resolve.General{},
			Learning: resolve.LearnOnline,
			Trees:    sc.Trees,
			Combine:  &c,
		}
		mean, err := sub.AverageProbes(cfg, sc.InitialProbes, sc.Reps, stats.SubSeed(seed, 111+i))
		if err != nil {
			return nil, err
		}
		rep.AddRow(c.Name(), mean)
	}
	return rep, nil
}

// AblationModel compares the Learner's classifiers — random forest vs
// naive Bayes — under General+Offline on Q8. The paper reports NB
// "performed similarly or slightly worse than RF".
func AblationModel(sc Scale, seed int64) (*Report, error) {
	rep := &Report{
		ID:      "ablation-model",
		Title:   "Learner classifier (Q8, General+Offline)",
		Columns: []string{"mean probes"},
	}
	w, err := LoadTPCH("Q8", sc, RDTGroundTruth(), seed)
	if err != nil {
		return nil, err
	}
	sub := w.Subset(rowCap(sc), stats.SubSeed(seed, 120))
	for i, m := range []resolve.ModelKind{resolve.ModelRF, resolve.ModelNB} {
		cfg := resolve.Config{
			Utility:  resolve.General{},
			Learning: resolve.LearnOffline,
			Model:    m,
			Trees:    sc.Trees,
		}
		mean, err := sub.AverageProbes(cfg, sc.InitialProbes, sc.Reps, stats.SubSeed(seed, 121+i))
		if err != nil {
			return nil, err
		}
		rep.AddRow(m.String(), mean)
	}
	return rep, nil
}

// AblationSplitBound sweeps the splitting bound B (max DNF terms per part)
// on Q5, whose few huge expressions make splitting mandatory for Q-Value
// and consequential for every solution: smaller parts mean cheaper CNFs
// but more probes (each part must be decided separately).
func AblationSplitBound(sc Scale, seed int64) (*Report, error) {
	rep := &Report{
		ID:      "ablation-splitbound",
		Title:   "Splitting bound B (Q5, General with known probabilities)",
		Columns: []string{"mean probes", "parts"},
	}
	w, err := LoadTPCH("Q5", sc, RDTGroundTruth(), seed)
	if err != nil {
		return nil, err
	}
	sub := w.Subset(rowCap(sc), stats.SubSeed(seed, 130))
	for i, b := range []int{4, 8, 16, 32} {
		cfg := resolve.Config{
			Utility:       resolve.General{},
			KnownProbs:    sub.GT.Prob,
			SplitAll:      true,
			SplitMaxTerms: b,
		}
		mean, err := sub.AverageProbes(cfg, 0, sc.Reps, stats.SubSeed(seed, 131+i))
		if err != nil {
			return nil, err
		}
		// Count parts at this bound.
		parts := 0
		for _, e := range sub.Result.Provenance() {
			n := e.NumTerms()
			parts += (n + b - 1) / b
			if n == 0 {
				parts++
			}
		}
		rep.AddRow(fmt.Sprintf("B=%d", b), mean, float64(parts))
	}
	rep.Note("smaller B: more parts and more probes; larger B: costlier per-part CNF (Q-Value only)")
	return rep, nil
}

// AblationTrees sweeps the random-forest size on Q8 under
// General+Offline: more trees sharpen probability estimates (fewer
// probes) at higher per-probe training cost.
func AblationTrees(sc Scale, seed int64) (*Report, error) {
	rep := &Report{
		ID:      "ablation-trees",
		Title:   "Forest size (Q8, General+Offline)",
		Columns: []string{"mean probes"},
	}
	w, err := LoadTPCH("Q8", sc, RDTGroundTruth(), seed)
	if err != nil {
		return nil, err
	}
	sub := w.Subset(rowCap(sc), stats.SubSeed(seed, 140))
	for i, n := range []int{10, 25, 100} {
		cfg := resolve.Config{
			Utility:  resolve.General{},
			Learning: resolve.LearnOffline,
			Trees:    n,
		}
		mean, err := sub.AverageProbes(cfg, sc.InitialProbes, sc.Reps, stats.SubSeed(seed, 141+i))
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprintf("trees=%d", n), mean)
	}
	return rep, nil
}

// AblationParallel compares sequential resolution against
// component-parallel resolution on MS1 (Section 6): total probes stay in
// the same range while the critical path (sequential oracle rounds)
// shrinks to the largest component's.
func AblationParallel(sc Scale, seed int64) (*Report, error) {
	rep := &Report{
		ID:      "ablation-parallel",
		Title:   "Component-parallel probing (MS1, General+EP)",
		Columns: []string{"total probes", "critical path", "components"},
	}
	w, err := LoadNELL("MS1", sc, RDTGroundTruth(), seed)
	if err != nil {
		return nil, err
	}
	cfg := resolve.Config{Utility: resolve.General{}, Learning: resolve.LearnEP, Seed: stats.SubSeed(seed, 150)}

	probes, _, err := w.RunConfig(cfg, 0, stats.SubSeed(seed, 151))
	if err != nil {
		return nil, err
	}
	rep.AddRow("sequential", float64(probes), float64(probes), 1)

	out, err := resolve.ResolveParallel(w.DB, w.Result, w.Oracle(), resolve.NewRepository(), cfg)
	if err != nil {
		return nil, err
	}
	rep.AddRow("parallel", float64(out.Probes), float64(out.CriticalPathProbes), float64(out.Components))
	rep.Note("parallelism preserves probe totals up to per-component learning; latency follows the critical path")
	return rep, nil
}

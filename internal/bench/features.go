package bench

import (
	"sort"

	"qres/internal/resolve"
	"qres/internal/stats"
)

// ExtFeatures reproduces the Section 7.4 feature-importance analysis: the
// mean decrease in impurity of each metadata attribute in the Learner's
// forest, under offline learning (trained on off-provenance probes only)
// and after online learning (retrained on the probes of the session). The
// paper found content attributes (entity, value) most important, with the
// data source next, and relation importance growing under online learning.
func ExtFeatures(sc Scale, seed int64) (*Report, error) {
	rep := &Report{
		ID:      "ext-features",
		Title:   "Learner feature importances (MS1, General)",
		Columns: []string{"Offline", "Online"},
	}
	w, err := LoadNELL("MS1", sc, RDTGroundTruth(), seed)
	if err != nil {
		return nil, err
	}

	importances := func(mode resolve.LearningMode) (map[string]float64, error) {
		cfg := resolve.Config{
			Utility:  resolve.General{},
			Learning: mode,
			Trees:    sc.Trees,
			Seed:     stats.SubSeed(seed, 160),
		}
		repo := w.Repository(sc.InitialProbes, stats.SubSeed(seed, 161))
		sess, err := resolve.NewSession(w.DB, w.Result, w.Oracle(), repo, cfg)
		if err != nil {
			return nil, err
		}
		if _, err := sess.Run(); err != nil {
			return nil, err
		}
		return sess.Learner().FeatureImportances(), nil
	}

	offline, err := importances(resolve.LearnOffline)
	if err != nil {
		return nil, err
	}
	online, err := importances(resolve.LearnOnline)
	if err != nil {
		return nil, err
	}

	attrs := make(map[string]bool)
	for a := range offline {
		attrs[a] = true
	}
	for a := range online {
		attrs[a] = true
	}
	names := make([]string, 0, len(attrs))
	for a := range attrs {
		names = append(names, a)
	}
	sort.Slice(names, func(i, j int) bool {
		return offline[names[i]]+online[names[i]] > offline[names[j]]+online[names[j]]
	})
	for _, a := range names {
		rep.AddRow(a, offline[a], online[a])
	}
	rep.Note("mean decrease in impurity, normalized per column; the hidden RDT ground truth decides which attributes matter")
	return rep, nil
}

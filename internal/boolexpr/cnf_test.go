package boolexpr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestToCNFConstants(t *testing.T) {
	cnf, ok := True().ToCNF(0)
	if !ok || !cnf.IsTrue() || cnf.NumClauses() != 0 {
		t.Errorf("CNF(True) = %v, ok=%t", cnf, ok)
	}
	cnf, ok = False().ToCNF(0)
	if !ok || !cnf.IsFalse() || cnf.NumClauses() != 1 {
		t.Errorf("CNF(False) = %v, ok=%t", cnf, ok)
	}
}

func TestToCNFSimple(t *testing.T) {
	x, y, z := Var(0), Var(1), Var(2)
	// (x∧y) ∨ z  ==  (x∨z) ∧ (y∨z)
	e := NewExpr(NewTerm(x, y), NewTerm(z))
	cnf, ok := e.ToCNF(0)
	if !ok {
		t.Fatal("conversion failed")
	}
	if cnf.NumClauses() != 2 {
		t.Fatalf("nc = %d, want 2 (%v)", cnf.NumClauses(), cnf.Clauses())
	}

	// A single literal: one unit clause.
	cnf, ok = Lit(x).ToCNF(0)
	if !ok || cnf.NumClauses() != 1 || !cnf.HasUnitClause(x) {
		t.Fatalf("CNF(x) wrong: %v", cnf.Clauses())
	}

	// Pure disjunction x ∨ y ∨ z: a single 3-clause.
	e = NewExpr(NewTerm(x), NewTerm(y), NewTerm(z))
	cnf, ok = e.ToCNF(0)
	if !ok || cnf.NumClauses() != 1 || len(cnf.Clauses()[0]) != 3 {
		t.Fatalf("CNF(x∨y∨z) wrong: %v", cnf.Clauses())
	}

	// Pure conjunction x ∧ y ∧ z: three unit clauses.
	e = NewExpr(NewTerm(x, y, z))
	cnf, ok = e.ToCNF(0)
	if !ok || cnf.NumClauses() != 3 {
		t.Fatalf("CNF(x∧y∧z) wrong: %v", cnf.Clauses())
	}
}

// CNF conversion must preserve semantics; verified exhaustively over all
// valuations of small random expressions.
func TestToCNFEquivalenceExhaustive(t *testing.T) {
	const nvars = 5
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		e := randomExpr(rng, nvars, 4, 3)
		cnf, ok := e.ToCNF(0)
		if !ok {
			t.Fatalf("unbounded conversion failed for %v", e)
		}
		for mask := 0; mask < 1<<nvars; mask++ {
			val := NewValuation()
			for v := 0; v < nvars; v++ {
				val.Set(Var(v), mask&(1<<v) != 0)
			}
			if e.Eval(val) != cnf.Eval(val) {
				t.Fatalf("CNF mismatch for %v at mask %b: dnf=%t cnf=%t",
					e, mask, e.Eval(val), cnf.Eval(val))
			}
		}
	}
}

func TestToCNFBound(t *testing.T) {
	// A 3-DNF with many disjoint terms explodes in CNF; the bound must trip.
	rng := rand.New(rand.NewSource(3))
	terms := make([]Term, 0, 12)
	for i := 0; i < 12; i++ {
		base := Var(i * 3)
		terms = append(terms, NewTerm(base, base+1, base+2))
	}
	_ = rng
	e := NewExpr(terms...)
	if _, ok := e.ToCNF(100); ok {
		t.Fatal("expected bound to trip for 3^12 clauses")
	}
	// Unbounded conversion on a smaller disjoint 3-DNF (3^7 = 2187
	// clauses) must succeed with the exact clause count: disjoint terms
	// admit no absorption.
	small := NewExpr(terms[:7]...)
	cnf, ok := small.ToCNF(0)
	if !ok {
		t.Fatal("unbounded conversion should succeed")
	}
	if got := cnf.NumClauses(); got != 2187 {
		t.Fatalf("nc = %d, want 3^7 = 2187", got)
	}
}

func TestAssumeCounts(t *testing.T) {
	x, y, z := Var(0), Var(1), Var(2)
	// e = (x∧y) ∨ (x∧z): nt=2; CNF = x ∧ (y∨z): nc=2.
	e := NewExpr(NewTerm(x, y), NewTerm(x, z))
	cnf, ok := e.ToCNF(0)
	if !ok {
		t.Fatal("conversion failed")
	}
	if cnf.NumClauses() != 2 {
		t.Fatalf("nc = %d, want 2 (%v)", cnf.NumClauses(), cnf.Clauses())
	}

	// Probing x: if False the whole expression is False (unit clause x),
	// so ntFalse = 0. If True, clause {x} disappears: ncTrue = 1.
	ntT, ncT, ntF, ncF := e.AssumeCounts(cnf, x)
	if ntT != 2 || ncT != 1 {
		t.Errorf("x=True: nt=%d nc=%d, want 2,1", ntT, ncT)
	}
	if ntF != 0 {
		t.Errorf("x=False: nt=%d, want 0 (expression decided False)", ntF)
	}
	_ = ncF

	// Probing y: if False, term (x∧y) drops: ntFalse=1. If True, clause
	// (y∨z) satisfied: ncTrue=1. Neither value decides e.
	ntT, ncT, ntF, ncF = e.AssumeCounts(cnf, y)
	if ntT != 2 || ncT != 1 || ntF != 1 || ncF != 2 {
		t.Errorf("y: got %d,%d,%d,%d want 2,1,1,2", ntT, ncT, ntF, ncF)
	}
}

// For every variable and hypothetical value, AssumeCounts must report a
// zero nt·nc product exactly when the simplified expression is decided.
func TestAssumeCountsDecidedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 6, 4, 3)
		if e.Decided() {
			return true
		}
		cnf, ok := e.ToCNF(0)
		if !ok {
			return true
		}
		for _, v := range e.Vars() {
			ntT, ncT, ntF, ncF := e.AssumeCounts(cnf, v)

			simpT := e.Simplify(NewValuation().With(v, true))
			if simpT.Decided() != (ntT*ncT == 0) {
				return false
			}
			simpF := e.Simplify(NewValuation().With(v, false))
			if simpF.Decided() != (ntF*ncF == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestClausesWithout(t *testing.T) {
	x, y := Var(0), Var(1)
	e := NewExpr(NewTerm(x), NewTerm(y)) // CNF: single clause (x∨y)
	cnf, _ := e.ToCNF(0)
	if got := cnf.ClausesWithout(x); got != 0 {
		t.Errorf("ClausesWithout(x) = %d, want 0", got)
	}
	if got := cnf.ClausesWithout(Var(9)); got != 1 {
		t.Errorf("ClausesWithout(unused) = %d, want 1", got)
	}
}

package boolexpr

import "math/rand"

// Split partitions the terms of e into disjunctions of at most maxTerms
// terms each, as in the paper's pre-processing step (Section 7.1): given
// φ = ⋁ terms, produce φ1, φ2, ... with φ = φ1 ∨ φ2 ∨ ..., each small
// enough that its CNF has at most O(maxTerms · k^maxTerms) clauses and the
// Q-Value utility remains applicable.
//
// Term-to-part assignment is random (the paper: "the choice of terms is
// done randomly") using rng; pass a seeded source for reproducibility, or
// nil for a deterministic in-order split. Evaluating all parts determines
// φ: it is True iff some part is True.
//
// If e already has at most maxTerms terms (or maxTerms <= 0), Split returns
// e unchanged as the single part.
func Split(e Expr, maxTerms int, rng *rand.Rand) []Expr {
	if maxTerms <= 0 || len(e.terms) <= maxTerms {
		return []Expr{e}
	}
	order := make([]int, len(e.terms))
	for i := range order {
		order[i] = i
	}
	if rng != nil {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	var parts []Expr
	for start := 0; start < len(order); start += maxTerms {
		end := start + maxTerms
		if end > len(order) {
			end = len(order)
		}
		chunk := make([]Term, 0, end-start)
		for _, idx := range order[start:end] {
			chunk = append(chunk, e.terms[idx])
		}
		parts = append(parts, canonicalize(chunk))
	}
	return parts
}

// Join recombines split parts back into a single canonical expression, the
// inverse of Split (up to canonical ordering): the disjunction of all parts.
func Join(parts []Expr) Expr {
	var terms []Term
	for _, p := range parts {
		terms = append(terms, p.terms...)
	}
	return canonicalize(terms)
}

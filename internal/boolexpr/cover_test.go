package boolexpr

import (
	"math/rand"
	"testing"
)

func TestGreedyCoverSkewed(t *testing.T) {
	// Every term contains variable 0: cover of size 1.
	terms := make([]Term, 20)
	for i := range terms {
		terms[i] = NewTerm(0, Var(i+1))
	}
	cover, ok := GreedyCover([]Expr{NewExpr(terms...)}, 50)
	if !ok {
		t.Fatal("cover not found")
	}
	if len(cover) != 1 || cover[0] != 0 {
		t.Fatalf("cover = %v, want [0]", cover)
	}
}

func TestGreedyCoverNonSkewed(t *testing.T) {
	// Disjoint single-variable terms: cover size equals term count.
	terms := make([]Term, 60)
	for i := range terms {
		terms[i] = NewTerm(Var(i))
	}
	_, ok := GreedyCover([]Expr{NewExpr(terms...)}, 50)
	if ok {
		t.Fatal("expected no cover within the size-50 limit")
	}
	cover, ok := GreedyCover([]Expr{NewExpr(terms...)}, 0)
	if !ok || len(cover) != 60 {
		t.Fatalf("unlimited cover: len=%d ok=%t, want 60", len(cover), ok)
	}
}

func TestGreedyCoverIsACover(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		exprs := make([]Expr, 1+rng.Intn(4))
		for i := range exprs {
			exprs[i] = randomExpr(rng, 10, 6, 3)
		}
		cover, ok := GreedyCover(exprs, 0)
		if !ok {
			t.Fatal("unlimited cover must succeed")
		}
		inCover := make(map[Var]bool, len(cover))
		for _, v := range cover {
			inCover[v] = true
		}
		for _, e := range exprs {
			if e.Decided() {
				continue
			}
			for _, term := range e.Terms() {
				hit := false
				for _, v := range term {
					if inCover[v] {
						hit = true
						break
					}
				}
				if !hit {
					t.Fatalf("term %v not covered by %v", term, cover)
				}
			}
		}
	}
}

func TestGreedyCoverEmptyAndDecided(t *testing.T) {
	cover, ok := GreedyCover(nil, 10)
	if !ok || len(cover) != 0 {
		t.Error("empty set should have empty cover")
	}
	cover, ok = GreedyCover([]Expr{True(), False()}, 10)
	if !ok || len(cover) != 0 {
		t.Error("decided expressions need no cover")
	}
}

func TestVarFrequencies(t *testing.T) {
	e1 := NewExpr(NewTerm(0, 1), NewTerm(0, 2))
	e2 := NewExpr(NewTerm(1))
	freq := VarFrequencies([]Expr{e1, e2})
	if freq[0] != 2 || freq[1] != 2 || freq[2] != 1 {
		t.Fatalf("frequencies = %v", freq)
	}
}

package boolexpr

import "sort"

// GreedyCover computes a small set of variables that together cover every
// DNF term of the given expressions (each term contains at least one cover
// variable). This is the paper's provenance skewness statistic (Section
// 7.1): a small cover means a few variables dominate the provenance
// ("skewed"); queries are classified as skewed (cover ≤ 10), moderately
// skewed (11–50) and non-skewed (no cover of size ≤ 50 found).
//
// Minimum cover is NP-hard (it is a hitting-set), so like the paper we use
// the standard greedy heuristic: repeatedly pick the variable occurring in
// the most uncovered terms. If the greedy cover exceeds maxSize the search
// stops and ok is false (Table 3 reports "-" for such queries). A maxSize
// of 0 or below means "no limit".
func GreedyCover(exprs []Expr, maxSize int) (cover []Var, ok bool) {
	// Collect all undecided terms.
	var terms []Term
	for _, e := range exprs {
		if e.Decided() {
			continue
		}
		terms = append(terms, e.terms...)
	}
	if len(terms) == 0 {
		return nil, true
	}

	covered := make([]bool, len(terms))
	remaining := len(terms)
	for remaining > 0 {
		if maxSize > 0 && len(cover) >= maxSize {
			return cover, false
		}
		// Count occurrences of each variable among uncovered terms.
		counts := make(map[Var]int)
		for i, t := range terms {
			if covered[i] {
				continue
			}
			for _, v := range t {
				counts[v]++
			}
		}
		// Pick the most frequent variable, breaking ties by smallest ID
		// for determinism.
		var best Var
		bestCount := -1
		vars := make([]Var, 0, len(counts))
		for v := range counts {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
		for _, v := range vars {
			if counts[v] > bestCount {
				best, bestCount = v, counts[v]
			}
		}
		cover = append(cover, best)
		for i, t := range terms {
			if !covered[i] && t.Contains(best) {
				covered[i] = true
				remaining--
			}
		}
	}
	return cover, true
}

// VarFrequencies counts, for every variable, the number of DNF terms it
// occurs in across the expression set. The Greedy baseline probes variables
// in decreasing frequency order.
func VarFrequencies(exprs []Expr) map[Var]int {
	counts := make(map[Var]int)
	for _, e := range exprs {
		for _, t := range e.terms {
			for _, v := range t {
				counts[v]++
			}
		}
	}
	return counts
}

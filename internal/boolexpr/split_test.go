package boolexpr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitSmallExprUnchanged(t *testing.T) {
	e := NewExpr(NewTerm(1, 2), NewTerm(3))
	parts := Split(e, 5, nil)
	if len(parts) != 1 || !parts[0].Equal(e) {
		t.Fatalf("small expression should not be split: %v", parts)
	}
	parts = Split(e, 0, nil)
	if len(parts) != 1 {
		t.Fatal("maxTerms<=0 must mean no splitting")
	}
}

func TestSplitSizes(t *testing.T) {
	terms := make([]Term, 10)
	for i := range terms {
		terms[i] = NewTerm(Var(2*i), Var(2*i+1))
	}
	e := NewExpr(terms...)
	parts := Split(e, 3, rand.New(rand.NewSource(5)))
	if len(parts) != 4 { // ceil(10/3)
		t.Fatalf("got %d parts, want 4", len(parts))
	}
	total := 0
	for _, p := range parts {
		if p.NumTerms() > 3 {
			t.Fatalf("part exceeds bound: %v", p)
		}
		total += p.NumTerms()
	}
	if total != 10 {
		t.Fatalf("terms lost or duplicated: %d", total)
	}
}

// Splitting soundness (DESIGN.md §6): the disjunction of the parts is
// equivalent to the original expression under every valuation.
func TestSplitJoinEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 8, 12, 3)
		parts := Split(e, 1+r.Intn(4), r)
		joined := Join(parts)
		if !joined.Equal(e) {
			return false
		}
		// Spot-check semantics too, for a handful of random valuations.
		for i := 0; i < 16; i++ {
			val := randomValuation(r, 8)
			anyTrue := false
			for _, p := range parts {
				if p.Eval(val) {
					anyTrue = true
					break
				}
			}
			if anyTrue != e.Eval(val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitDeterministicWithoutRng(t *testing.T) {
	terms := make([]Term, 7)
	for i := range terms {
		terms[i] = NewTerm(Var(i))
	}
	e := NewExpr(terms...)
	a := Split(e, 2, nil)
	b := Split(e, 2, nil)
	if len(a) != len(b) {
		t.Fatal("nondeterministic part count")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("nil-rng split must be deterministic")
		}
	}
}

package boolexpr

// CNF is a monotone conjunctive normal form: a conjunction of disjunctive
// clauses over positive variables. It is the dual representation the
// Q-Value utility needs: nt counts DNF terms (ways to prove True) and nc
// counts CNF clauses (ways to prove False, one False variable per clause).
//
// Clauses reuse Term for their canonical sorted-variable representation.
type CNF struct {
	clauses []Term
}

// Clauses returns the canonical clauses. The slice must not be modified.
func (c CNF) Clauses() []Term { return c.clauses }

// NumClauses returns nc, the number of CNF clauses. By the conventions of
// the paper's Formula (1): the constant True has nc = 0 (empty conjunction)
// and the constant False has a single empty clause.
func (c CNF) NumClauses() int { return len(c.clauses) }

// IsTrue reports whether c is the constant True (no clauses).
func (c CNF) IsTrue() bool { return len(c.clauses) == 0 }

// IsFalse reports whether c is the constant False (contains the empty
// clause).
func (c CNF) IsFalse() bool { return len(c.clauses) == 1 && len(c.clauses[0]) == 0 }

// Eval evaluates the CNF under a valuation; unassigned variables are
// treated as False, mirroring Expr.Eval.
func (c CNF) Eval(val *Valuation) bool {
	for _, clause := range c.clauses {
		sat := false
		for _, v := range clause {
			if value, ok := val.Get(v); ok && value {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// ClausesWithout counts the clauses that do not contain v. When v is set to
// True every clause containing v is satisfied, so this is nc(val_{v=True}).
func (c CNF) ClausesWithout(v Var) int {
	n := 0
	for _, clause := range c.clauses {
		if !clause.Contains(v) {
			n++
		}
	}
	return n
}

// HasUnitClause reports whether some clause is exactly {v}. If so, setting
// v to False falsifies the whole expression.
func (c CNF) HasUnitClause(v Var) bool {
	for _, clause := range c.clauses {
		if len(clause) == 1 && clause[0] == v {
			return true
		}
	}
	return false
}

// ToCNF converts the monotone DNF e into an equivalent canonical CNF by
// distribution with absorption. The number of clauses of a k-DNF with m
// terms can reach k^m, so the conversion is bounded: if at any point more
// than maxClauses clauses survive absorption, conversion aborts and ok is
// false. The paper handles this case by splitting the expression into
// smaller DNFs first (Section 7.1, pre-processing); see Split.
//
// A maxClauses of 0 or below means "no bound".
func (e Expr) ToCNF(maxClauses int) (cnf CNF, ok bool) {
	if e.IsFalse() {
		return CNF{clauses: []Term{{}}}, true
	}
	if e.IsTrue() {
		return CNF{}, true
	}
	// Distribute: CNF(T1 ∨ ... ∨ Tm) = ⋀ { {v1..vm} : vi ∈ Ti }, built
	// term by term with absorption after each round to keep the
	// intermediate clause set small.
	clauses := []Term{{}}
	for _, t := range e.terms {
		next := make([]Term, 0, len(clauses)*len(t))
		for _, c := range clauses {
			for _, v := range t {
				if c.Contains(v) {
					next = append(next, c)
					continue
				}
				merged := make(Term, 0, len(c)+1)
				merged = append(merged, c...)
				merged = append(merged, v)
				next = append(next, NewTerm(merged...))
			}
		}
		clauses = absorb(next)
		if maxClauses > 0 && len(clauses) > maxClauses {
			return CNF{}, false
		}
	}
	return CNF{clauses: clauses}, true
}

// absorb sorts clauses shortest-first and removes duplicates and supersets
// of kept clauses (X ∧ (X∨Y) = X in the clause lattice).
func absorb(clauses []Term) []Term {
	e := canonicalize(clauses)
	if e.IsTrue() {
		// canonicalize interprets the empty term as the DNF constant
		// True; for clause sets an empty clause means the CNF constant
		// False with a single empty clause — same representation.
		return []Term{{}}
	}
	return e.terms
}

// AssumeCounts reports the term and clause counts of e after hypothetically
// probing v, without materializing the simplified expressions. cnf must be
// the CNF of e. Following the conventions of the paper's Formula (1):
//
//   - if v=True decides e to True, ncTrue = 0 (and ntTrue is e's count);
//   - if v=False decides e to False, ntFalse = 0.
//
// Counts are computed by filtering, not by full re-canonicalization, so
// they can over-count by terms/clauses that absorption would merge; the
// products nt·nc used by Q-Value are exact in the decided cases (they are
// zero) and a close upper bound otherwise. Full re-simplification happens
// once per actual probe, not per candidate, which keeps utility computation
// linear in the provenance size.
func (e Expr) AssumeCounts(cnf CNF, v Var) (ntTrue, ncTrue, ntFalse, ncFalse int) {
	// v = True: DNF terms keep their count (v is just removed from its
	// terms); the expression becomes True iff some term is exactly {v}.
	// CNF clauses containing v are satisfied and disappear.
	ntTrue = len(e.terms)
	ncTrue = cnf.ClausesWithout(v)

	// v = False: DNF terms containing v are falsified and disappear; the
	// expression becomes False iff every term contains v. CNF clauses keep
	// their count unless some clause is exactly {v}, which decides False.
	for _, t := range e.terms {
		if !t.Contains(v) {
			ntFalse++
		}
	}
	ncFalse = cnf.NumClauses()
	if cnf.HasUnitClause(v) || ntFalse == 0 {
		ntFalse = 0
	}
	return ntTrue, ncTrue, ntFalse, ncFalse
}

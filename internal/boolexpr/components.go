package boolexpr

import "sort"

// Components partitions the expressions at the given indices into groups
// that are pairwise variable-disjoint. Expressions in different groups
// share no variables, so they can be resolved by concurrent, independent
// probe-selection processes without affecting the total number of probes
// (Section 6, parallel probe selection). Decided expressions form no
// groups.
//
// The result is a list of index groups; indices within a group and groups
// themselves are sorted for determinism (groups by their smallest index).
func Components(exprs []Expr) [][]int {
	// Union-find over variables.
	parent := make(map[Var]Var)
	var find func(v Var) Var
	find = func(v Var) Var {
		p, ok := parent[v]
		if !ok {
			parent[v] = v
			return v
		}
		if p == v {
			return v
		}
		root := find(p)
		parent[v] = root
		return root
	}
	union := func(a, b Var) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	for _, e := range exprs {
		vars := e.Vars()
		for i := 1; i < len(vars); i++ {
			union(vars[0], vars[i])
		}
	}

	groups := make(map[Var][]int)
	for i, e := range exprs {
		if e.Decided() {
			continue
		}
		vars := e.Vars()
		if len(vars) == 0 {
			continue
		}
		root := find(vars[0])
		groups[root] = append(groups[root], i)
	}

	out := make([][]int, 0, len(groups))
	for _, idxs := range groups {
		sort.Ints(idxs)
		out = append(out, idxs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

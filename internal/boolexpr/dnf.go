package boolexpr

import (
	"sort"
	"strings"
)

// Term is a conjunction of variables, kept sorted in ascending order with
// no duplicates. The empty term is the constant True conjunction.
type Term []Var

// NewTerm builds a canonical term from vars (sorted, deduplicated).
func NewTerm(vars ...Var) Term {
	t := make(Term, len(vars))
	copy(t, vars)
	sort.Slice(t, func(i, j int) bool { return t[i] < t[j] })
	// Deduplicate in place.
	out := t[:0]
	for i, v := range t {
		if i == 0 || v != t[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Contains reports whether v occurs in t. Terms are sorted, so this is a
// binary search.
func (t Term) Contains(v Var) bool {
	i := sort.Search(len(t), func(i int) bool { return t[i] >= v })
	return i < len(t) && t[i] == v
}

// SubsetOf reports whether every variable of t occurs in u. Both terms must
// be canonical (sorted, unique).
func (t Term) SubsetOf(u Term) bool {
	if len(t) > len(u) {
		return false
	}
	i := 0
	for _, v := range t {
		for i < len(u) && u[i] < v {
			i++
		}
		if i >= len(u) || u[i] != v {
			return false
		}
		i++
	}
	return true
}

// Equal reports whether two canonical terms are identical.
func (t Term) Equal(u Term) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// compare orders canonical terms first by length, then lexicographically.
// Ordering by length first makes absorption a single forward pass: a term
// can only absorb terms at least as long as itself.
func (t Term) compare(u Term) int {
	if len(t) != len(u) {
		if len(t) < len(u) {
			return -1
		}
		return 1
	}
	for i := range t {
		if t[i] != u[i] {
			if t[i] < u[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Expr is a monotone Boolean expression in disjunctive normal form: a
// disjunction of conjunctive terms with no negation. Expressions are kept
// canonical: terms sorted (shortest first, then lexicographic), no duplicate
// terms, and no term that is a superset of another (absorption, x ∨ xy = x).
//
// The two Boolean constants have natural representations: False is the
// empty disjunction (no terms), True is the disjunction containing the
// empty term.
type Expr struct {
	terms []Term
}

// False is the constant-false expression (empty disjunction).
func False() Expr { return Expr{} }

// True is the constant-true expression (the empty conjunction).
func True() Expr { return Expr{terms: []Term{{}}} }

// Lit returns the single-variable expression v.
func Lit(v Var) Expr { return Expr{terms: []Term{{v}}} }

// NewExpr builds a canonical DNF expression from the given terms.
func NewExpr(terms ...Term) Expr {
	return canonicalize(terms)
}

// canonicalize sorts, deduplicates and applies absorption to terms,
// returning a canonical expression. It takes ownership of the slice but not
// of the individual terms.
func canonicalize(terms []Term) Expr {
	if len(terms) == 0 {
		return False()
	}
	ts := make([]Term, len(terms))
	copy(ts, terms)
	sort.Slice(ts, func(i, j int) bool { return ts[i].compare(ts[j]) < 0 })
	// The empty term absorbs everything: the expression is True.
	if len(ts[0]) == 0 {
		return True()
	}
	// Absorption: drop any term that is a superset of an earlier kept term.
	// Terms are sorted shortest-first, so a single pass with subset checks
	// against the kept set is sound. Only strictly shorter kept terms can
	// absorb: an equal-length subset would be an equal term, and duplicates
	// are removed by the adjacent-equality check — so the inner scan stops
	// at the first kept term of the same length, which makes
	// canonicalization near-linear on uniform-length term sets (the common
	// shape for join provenance and distributed CNF clauses).
	kept := ts[:0]
	for i, t := range ts {
		if i > 0 && t.Equal(ts[i-1]) {
			continue
		}
		absorbed := false
		for _, k := range kept {
			if len(k) >= len(t) {
				break
			}
			if k.SubsetOf(t) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			kept = append(kept, t)
		}
	}
	return Expr{terms: kept}
}

// Terms returns the canonical terms of e. The returned slice must not be
// modified.
func (e Expr) Terms() []Term { return e.terms }

// NumTerms returns nt(e), the number of DNF terms. The paper's convention
// is that a decided-False expression has nt = 0 (and the True constant has
// a single empty term).
func (e Expr) NumTerms() int { return len(e.terms) }

// IsFalse reports whether e is the constant False.
func (e Expr) IsFalse() bool { return len(e.terms) == 0 }

// IsTrue reports whether e is the constant True.
func (e Expr) IsTrue() bool { return len(e.terms) == 1 && len(e.terms[0]) == 0 }

// Decided reports whether e is a Boolean constant, i.e. the correctness of
// the output tuple it annotates is fully determined.
func (e Expr) Decided() bool { return e.IsFalse() || e.IsTrue() }

// Value returns the constant value of a decided expression. It panics if e
// is not decided; callers must check Decided first.
func (e Expr) Value() bool {
	switch {
	case e.IsTrue():
		return true
	case e.IsFalse():
		return false
	}
	panic("boolexpr: Value on undecided expression")
}

// Vars returns the distinct variables occurring in e, in ascending order.
func (e Expr) Vars() []Var {
	seen := make(map[Var]struct{})
	for _, t := range e.terms {
		for _, v := range t {
			seen[v] = struct{}{}
		}
	}
	out := make([]Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ContainsVar reports whether v occurs anywhere in e.
func (e Expr) ContainsVar(v Var) bool {
	for _, t := range e.terms {
		if t.Contains(v) {
			return true
		}
	}
	return false
}

// MaxTermSize returns k for a k-DNF: the size of the largest term. The
// constants return 0.
func (e Expr) MaxTermSize() int {
	k := 0
	for _, t := range e.terms {
		if len(t) > k {
			k = len(t)
		}
	}
	return k
}

// Or returns the canonical disjunction of e and f.
func (e Expr) Or(f Expr) Expr {
	terms := make([]Term, 0, len(e.terms)+len(f.terms))
	terms = append(terms, e.terms...)
	terms = append(terms, f.terms...)
	return canonicalize(terms)
}

// And returns the canonical conjunction of e and f, distributing terms.
// This is how join provenance is built: the provenance of a joined tuple is
// the conjunction of its inputs' provenance.
func (e Expr) And(f Expr) Expr {
	if e.IsFalse() || f.IsFalse() {
		return False()
	}
	if e.IsTrue() {
		return f
	}
	if f.IsTrue() {
		return e
	}
	terms := make([]Term, 0, len(e.terms)*len(f.terms))
	for _, t := range e.terms {
		for _, u := range f.terms {
			merged := make(Term, 0, len(t)+len(u))
			merged = append(merged, t...)
			merged = append(merged, u...)
			terms = append(terms, NewTerm(merged...))
		}
	}
	return canonicalize(terms)
}

// AndVar returns e ∧ v, a cheaper special case of And used when annotating
// a tuple with one more input variable.
func (e Expr) AndVar(v Var) Expr {
	if e.IsFalse() {
		return False()
	}
	terms := make([]Term, 0, len(e.terms))
	for _, t := range e.terms {
		merged := make(Term, 0, len(t)+1)
		merged = append(merged, t...)
		merged = append(merged, v)
		terms = append(terms, NewTerm(merged...))
	}
	return canonicalize(terms)
}

// Eval evaluates e under a (total, as far as e's variables go) valuation.
// It returns an error-free result only when every variable of e is
// assigned; unassigned variables are treated as False, which matches the
// possible-world semantics where a valuation lists the correct tuples.
func (e Expr) Eval(val *Valuation) bool {
	for _, t := range e.terms {
		all := true
		for _, v := range t {
			value, ok := val.Get(v)
			if !ok || !value {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// Simplify substitutes the assigned variables of val into e and returns the
// canonical result (Step 3 of the framework: plug in known probe answers).
// Terms containing a False variable are dropped; True variables are removed
// from their terms; absorption is re-applied. If some term becomes empty
// the result is the constant True.
func (e Expr) Simplify(val *Valuation) Expr {
	if val.Len() == 0 {
		return e
	}
	terms := make([]Term, 0, len(e.terms))
	for _, t := range e.terms {
		keep := make(Term, 0, len(t))
		dropped := false
		for _, v := range t {
			value, ok := val.Get(v)
			switch {
			case !ok:
				keep = append(keep, v)
			case !value:
				dropped = true
			}
			if dropped {
				break
			}
		}
		if dropped {
			continue
		}
		if len(keep) == 0 {
			return True()
		}
		terms = append(terms, keep)
	}
	return canonicalize(terms)
}

// Equal reports whether two canonical expressions are identical.
func (e Expr) Equal(f Expr) bool {
	if len(e.terms) != len(f.terms) {
		return false
	}
	for i := range e.terms {
		if !e.terms[i].Equal(f.terms[i]) {
			return false
		}
	}
	return true
}

// String renders e using the registry-free default variable names.
func (e Expr) String() string { return e.Format(nil) }

// Format renders e using names from reg (or "x<n>" names if reg is nil),
// e.g. "(a0 ∧ r0 ∧ e0) ∨ (a0 ∧ r1 ∧ e1)".
func (e Expr) Format(reg *Registry) string {
	if e.IsFalse() {
		return "false"
	}
	if e.IsTrue() {
		return "true"
	}
	name := func(v Var) string {
		if reg != nil {
			return reg.Name(v)
		}
		return (&Registry{}).Name(v)
	}
	var b strings.Builder
	for i, t := range e.terms {
		if i > 0 {
			b.WriteString(" ∨ ")
		}
		if len(t) > 1 {
			b.WriteByte('(')
		}
		for j, v := range t {
			if j > 0 {
				b.WriteString(" ∧ ")
			}
			b.WriteString(name(v))
		}
		if len(t) > 1 {
			b.WriteByte(')')
		}
	}
	return b.String()
}

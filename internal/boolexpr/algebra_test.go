package boolexpr

import (
	"math/rand"
	"testing"
)

// evalAt evaluates e under the valuation encoded by mask over nvars
// variables.
func evalAt(e Expr, mask, nvars int) bool {
	val := NewValuation()
	for v := 0; v < nvars; v++ {
		val.Set(Var(v), mask&(1<<v) != 0)
	}
	return e.Eval(val)
}

// The Boolean-algebra laws the provenance semiring relies on, verified
// exhaustively over all valuations of small random expressions: And is
// conjunction, Or is disjunction, both are commutative and associative,
// and absorption/idempotence hold.
func TestAlgebraLawsExhaustive(t *testing.T) {
	const nvars = 5
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		a := randomExpr(rng, nvars, 3, 3)
		b := randomExpr(rng, nvars, 3, 3)
		c := randomExpr(rng, nvars, 3, 3)

		and := a.And(b)
		or := a.Or(b)
		andBA := b.And(a)
		orBA := b.Or(a)
		andAssoc1, andAssoc2 := a.And(b).And(c), a.And(b.And(c))
		orAssoc1, orAssoc2 := a.Or(b).Or(c), a.Or(b.Or(c))
		distrib1, distrib2 := a.And(b.Or(c)), a.And(b).Or(a.And(c))
		idemAnd, idemOr := a.And(a), a.Or(a)
		absorb1, absorb2 := a.Or(a.And(b)), a.And(a.Or(b))

		for mask := 0; mask < 1<<nvars; mask++ {
			va, vb, vc := evalAt(a, mask, nvars), evalAt(b, mask, nvars), evalAt(c, mask, nvars)
			checks := []struct {
				name string
				e    Expr
				want bool
			}{
				{"and", and, va && vb},
				{"or", or, va || vb},
				{"and-comm", andBA, va && vb},
				{"or-comm", orBA, va || vb},
				{"and-assoc-l", andAssoc1, va && vb && vc},
				{"and-assoc-r", andAssoc2, va && vb && vc},
				{"or-assoc-l", orAssoc1, va || vb || vc},
				{"or-assoc-r", orAssoc2, va || vb || vc},
				{"distrib-l", distrib1, va && (vb || vc)},
				{"distrib-r", distrib2, va && (vb || vc)},
				{"idem-and", idemAnd, va},
				{"idem-or", idemOr, va},
				{"absorb-or", absorb1, va},
				{"absorb-and", absorb2, va},
			}
			for _, ch := range checks {
				if got := evalAt(ch.e, mask, nvars); got != ch.want {
					t.Fatalf("trial %d mask %b: %s = %t, want %t (a=%v b=%v c=%v)",
						trial, mask, ch.name, got, ch.want, a, b, c)
				}
			}
		}
		// Canonical-form syntactic laws (beyond semantic equality).
		if !andBA.Equal(and) {
			t.Fatalf("And not syntactically commutative: %v vs %v", and, andBA)
		}
		if !orBA.Equal(or) {
			t.Fatalf("Or not syntactically commutative: %v vs %v", or, orBA)
		}
		if !idemOr.Equal(a) {
			t.Fatalf("a ∨ a != a: %v vs %v", idemOr, a)
		}
		if !absorb1.Equal(a) {
			t.Fatalf("absorption a ∨ (a∧b) != a: %v vs %v", absorb1, a)
		}
	}
}

// Simplify is idempotent and monotone in the valuation: simplifying with
// val then with more of the same valuation equals simplifying once with
// the union.
func TestSimplifyComposition(t *testing.T) {
	const nvars = 6
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 200; trial++ {
		e := randomExpr(rng, nvars, 5, 3)
		v1, v2 := NewValuation(), NewValuation()
		both := NewValuation()
		for v := 0; v < nvars; v++ {
			value := rng.Intn(2) == 0
			switch rng.Intn(3) {
			case 0:
				v1.Set(Var(v), value)
				both.Set(Var(v), value)
			case 1:
				v2.Set(Var(v), value)
				both.Set(Var(v), value)
			}
		}
		once := e.Simplify(both)
		twice := e.Simplify(v1).Simplify(v2)
		if !once.Equal(twice) {
			t.Fatalf("trial %d: Simplify not compositional: %v vs %v", trial, once, twice)
		}
		if !once.Simplify(both).Equal(once) {
			t.Fatalf("trial %d: Simplify not idempotent", trial)
		}
	}
}

package boolexpr

import (
	"math/rand"
	"testing"
)

func TestComponentsDisjoint(t *testing.T) {
	exprs := []Expr{
		NewExpr(NewTerm(0, 1)),          // component A
		NewExpr(NewTerm(2), NewTerm(3)), // component B
		NewExpr(NewTerm(1, 4)),          // shares var 1 with expr 0 → A
		True(),                          // decided, excluded
	}
	groups := Components(exprs)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2: %v", len(groups), groups)
	}
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 2 {
		t.Fatalf("group 0 = %v, want [0 2]", groups[0])
	}
	if len(groups[1]) != 1 || groups[1][0] != 1 {
		t.Fatalf("group 1 = %v, want [1]", groups[1])
	}
}

func TestComponentsAllConnected(t *testing.T) {
	exprs := []Expr{
		NewExpr(NewTerm(0, 1)),
		NewExpr(NewTerm(1, 2)),
		NewExpr(NewTerm(2, 3)),
	}
	groups := Components(exprs)
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("chain should be one component: %v", groups)
	}
}

// Components must be a partition of the undecided expressions, and any two
// expressions in different groups must be variable-disjoint.
func TestComponentsPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		exprs := make([]Expr, n)
		for i := range exprs {
			exprs[i] = randomExpr(rng, 12, 4, 3)
		}
		groups := Components(exprs)

		seen := make(map[int]int) // expr index -> group
		for g, idxs := range groups {
			for _, i := range idxs {
				if prev, dup := seen[i]; dup {
					t.Fatalf("expression %d in groups %d and %d", i, prev, g)
				}
				seen[i] = g
			}
		}
		for i, e := range exprs {
			_, grouped := seen[i]
			undecided := !e.Decided() && len(e.Vars()) > 0
			if grouped != undecided {
				t.Fatalf("expression %d grouped=%t undecided=%t", i, grouped, undecided)
			}
		}
		// Cross-group variable disjointness.
		groupVars := make([]map[Var]bool, len(groups))
		for g, idxs := range groups {
			groupVars[g] = make(map[Var]bool)
			for _, i := range idxs {
				for _, v := range exprs[i].Vars() {
					groupVars[g][v] = true
				}
			}
		}
		for a := 0; a < len(groups); a++ {
			for b := a + 1; b < len(groups); b++ {
				for v := range groupVars[a] {
					if groupVars[b][v] {
						t.Fatalf("groups %d and %d share variable %d", a, b, v)
					}
				}
			}
		}
	}
}

func TestComponentsEmpty(t *testing.T) {
	if got := Components(nil); len(got) != 0 {
		t.Fatalf("Components(nil) = %v", got)
	}
	if got := Components([]Expr{True(), False()}); len(got) != 0 {
		t.Fatalf("decided-only input should yield no groups: %v", got)
	}
}

// Package boolexpr implements monotone Boolean expressions in disjunctive
// normal form (DNF), the provenance representation the paper computes for
// SPJU queries (Section 2.3). Every input tuple of an uncertain database is
// annotated with a Boolean variable; the provenance of each output tuple is
// a monotone k-DNF over those variables, and resolving the query means
// deciding the truth value of every provenance expression.
//
// The package provides the operations the resolution framework needs:
// construction with absorption-based canonicalization, evaluation and
// simplification under partial valuations (Step 3 of the framework),
// bounded DNF-to-CNF conversion (required by the Q-Value utility),
// expression splitting (Section 7.1 pre-processing), greedy cover-size
// computation (the paper's skewness statistic, Table 3), and partitioning
// of expression sets into variable-disjoint components (parallel probe
// selection, Section 6).
package boolexpr

import (
	"fmt"
	"sort"
)

// Var identifies a Boolean variable. Variables are small dense integers
// allocated by a Registry; the zero value is a valid variable ID, so code
// that needs "no variable" should track validity separately.
type Var int32

// Registry interns variable names and allocates dense Var identifiers.
// A Registry is not safe for concurrent mutation; resolution sessions
// allocate all variables up front during provenance computation.
type Registry struct {
	names []string
	index map[string]Var
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]Var)}
}

// Intern returns the variable for name, allocating it on first use.
func (r *Registry) Intern(name string) Var {
	if v, ok := r.index[name]; ok {
		return v
	}
	v := Var(len(r.names))
	r.names = append(r.names, name)
	r.index[name] = v
	return v
}

// Fresh allocates a new variable with an auto-generated name.
func (r *Registry) Fresh() Var {
	return r.Intern(fmt.Sprintf("x%d", len(r.names)))
}

// Name returns the interned name of v, or "x<n>" if v was never interned
// through this registry.
func (r *Registry) Name(v Var) string {
	if int(v) < len(r.names) {
		return r.names[v]
	}
	return fmt.Sprintf("x%d", int(v))
}

// Lookup returns the variable interned under name, if any.
func (r *Registry) Lookup(name string) (Var, bool) {
	v, ok := r.index[name]
	return v, ok
}

// Len reports the number of interned variables.
func (r *Registry) Len() int { return len(r.names) }

// Valuation is a partial truth assignment to variables. The zero value is
// an empty valuation ready to use. In the framework a Valuation accumulates
// oracle probe answers: assigned variables are resolved tuples, unassigned
// variables are still uncertain.
type Valuation struct {
	m map[Var]bool
}

// NewValuation returns an empty partial valuation.
func NewValuation() *Valuation {
	return &Valuation{m: make(map[Var]bool)}
}

// Set assigns value to v, overwriting any previous assignment.
func (val *Valuation) Set(v Var, value bool) {
	if val.m == nil {
		val.m = make(map[Var]bool)
	}
	val.m[v] = value
}

// Get reports the value assigned to v and whether v is assigned at all.
func (val *Valuation) Get(v Var) (value, assigned bool) {
	if val == nil || val.m == nil {
		return false, false
	}
	value, assigned = val.m[v]
	return value, assigned
}

// Assigned reports whether v has been assigned.
func (val *Valuation) Assigned(v Var) bool {
	_, ok := val.Get(v)
	return ok
}

// Len reports how many variables are assigned.
func (val *Valuation) Len() int {
	if val == nil {
		return 0
	}
	return len(val.m)
}

// Clone returns an independent copy of the valuation.
func (val *Valuation) Clone() *Valuation {
	out := &Valuation{m: make(map[Var]bool, val.Len())}
	if val != nil {
		for k, v := range val.m {
			out.m[k] = v
		}
	}
	return out
}

// Vars returns the assigned variables in ascending order.
func (val *Valuation) Vars() []Var {
	if val == nil {
		return nil
	}
	out := make([]Var, 0, len(val.m))
	for v := range val.m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// With returns a copy of the valuation extended with v=value. It implements
// the paper's val_{x=True} / val_{x=False} notation without mutating the
// receiver, which utility functions rely on when scoring hypothetical probes.
func (val *Valuation) With(v Var, value bool) *Valuation {
	out := val.Clone()
	out.Set(v, value)
	return out
}

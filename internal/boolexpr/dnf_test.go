package boolexpr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomExpr builds a random monotone DNF over variables [0, nvars) with up
// to maxTerms terms of up to maxTermSize variables each.
func randomExpr(rng *rand.Rand, nvars, maxTerms, maxTermSize int) Expr {
	nt := rng.Intn(maxTerms + 1)
	terms := make([]Term, 0, nt)
	for i := 0; i < nt; i++ {
		size := 1 + rng.Intn(maxTermSize)
		vars := make([]Var, 0, size)
		for j := 0; j < size; j++ {
			vars = append(vars, Var(rng.Intn(nvars)))
		}
		terms = append(terms, NewTerm(vars...))
	}
	return NewExpr(terms...)
}

// randomValuation assigns all nvars variables at random.
func randomValuation(rng *rand.Rand, nvars int) *Valuation {
	val := NewValuation()
	for v := 0; v < nvars; v++ {
		val.Set(Var(v), rng.Intn(2) == 0)
	}
	return val
}

func TestNewTermCanonical(t *testing.T) {
	tm := NewTerm(3, 1, 2, 1, 3)
	want := Term{1, 2, 3}
	if !tm.Equal(want) {
		t.Fatalf("NewTerm(3,1,2,1,3) = %v, want %v", tm, want)
	}
}

func TestTermSubsetOf(t *testing.T) {
	cases := []struct {
		a, b Term
		want bool
	}{
		{NewTerm(), NewTerm(1, 2), true},
		{NewTerm(1), NewTerm(1, 2), true},
		{NewTerm(2), NewTerm(1, 2), true},
		{NewTerm(3), NewTerm(1, 2), false},
		{NewTerm(1, 2), NewTerm(1), false},
		{NewTerm(1, 3), NewTerm(1, 2, 3), true},
		{NewTerm(1, 4), NewTerm(1, 2, 3), false},
	}
	for _, c := range cases {
		if got := c.a.SubsetOf(c.b); got != c.want {
			t.Errorf("%v.SubsetOf(%v) = %t, want %t", c.a, c.b, got, c.want)
		}
	}
}

func TestConstants(t *testing.T) {
	if !False().IsFalse() || False().IsTrue() {
		t.Error("False() misclassified")
	}
	if !True().IsTrue() || True().IsFalse() {
		t.Error("True() misclassified")
	}
	if !False().Decided() || !True().Decided() {
		t.Error("constants must be decided")
	}
	if True().Value() != true || False().Value() != false {
		t.Error("constant values wrong")
	}
	if Lit(5).Decided() {
		t.Error("a literal is not decided")
	}
}

func TestValuePanicsOnUndecided(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Value on undecided expression did not panic")
		}
	}()
	Lit(0).Value()
}

func TestAbsorption(t *testing.T) {
	// x ∨ (x ∧ y) = x
	e := NewExpr(NewTerm(1), NewTerm(1, 2))
	if e.NumTerms() != 1 || !e.terms[0].Equal(Term{1}) {
		t.Fatalf("absorption failed: %v", e)
	}
	// Duplicates collapse.
	e = NewExpr(NewTerm(1, 2), NewTerm(2, 1))
	if e.NumTerms() != 1 {
		t.Fatalf("duplicate terms not collapsed: %v", e)
	}
	// Empty term dominates: the whole expression is True.
	e = NewExpr(NewTerm(1), NewTerm())
	if !e.IsTrue() {
		t.Fatalf("empty term should yield True, got %v", e)
	}
}

func TestOrAnd(t *testing.T) {
	x, y, z := Var(0), Var(1), Var(2)
	e := Lit(x).Or(Lit(y)) // x ∨ y
	f := e.And(Lit(z))     // (x∧z) ∨ (y∧z)
	if f.NumTerms() != 2 {
		t.Fatalf("And distribution wrong: %v", f)
	}
	if f.MaxTermSize() != 2 {
		t.Fatalf("MaxTermSize = %d, want 2", f.MaxTermSize())
	}

	if got := True().And(e); !got.Equal(e) {
		t.Errorf("True ∧ e = %v, want e", got)
	}
	if got := False().And(e); !got.IsFalse() {
		t.Errorf("False ∧ e = %v, want False", got)
	}
	if got := False().Or(e); !got.Equal(e) {
		t.Errorf("False ∨ e = %v, want e", got)
	}
	if got := True().Or(e); !got.IsTrue() {
		t.Errorf("True ∨ e = %v, want True", got)
	}
}

func TestAndVarMatchesAnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		e := randomExpr(rng, 6, 4, 3)
		v := Var(rng.Intn(6))
		if got, want := e.AndVar(v), e.And(Lit(v)); !got.Equal(want) {
			t.Fatalf("AndVar(%v, %v) = %v, want %v", e, v, got, want)
		}
	}
}

func TestEvalPaperExample(t *testing.T) {
	// The running example (Table 2, first output tuple):
	// (a0∧r0∧e0) ∨ (a0∧r1∧e1) ∨ (a0∧r2∧e3)
	reg := NewRegistry()
	a0 := reg.Intern("a0")
	r0, r1, r2 := reg.Intern("r0"), reg.Intern("r1"), reg.Intern("r2")
	e0, e1, e3 := reg.Intern("e0"), reg.Intern("e1"), reg.Intern("e3")
	phi := NewExpr(NewTerm(a0, r0, e0), NewTerm(a0, r1, e1), NewTerm(a0, r2, e3))

	// val(a0)=val(r0)=val(e0)=True makes the tuple correct (Example 2.3).
	val := NewValuation()
	val.Set(a0, true)
	val.Set(r0, true)
	val.Set(e0, true)
	if !phi.Eval(val) {
		t.Error("first conjunction satisfied but Eval = false")
	}

	// val(a0)=False falsifies every term.
	val2 := NewValuation()
	val2.Set(a0, false)
	for _, v := range []Var{r0, r1, r2, e0, e1, e3} {
		val2.Set(v, true)
	}
	if phi.Eval(val2) {
		t.Error("a0=False should falsify the expression")
	}
}

func TestSimplify(t *testing.T) {
	x, y, z := Var(0), Var(1), Var(2)
	e := NewExpr(NewTerm(x, y), NewTerm(z))

	val := NewValuation()
	val.Set(x, true)
	got := e.Simplify(val)
	want := NewExpr(NewTerm(y), NewTerm(z))
	if !got.Equal(want) {
		t.Errorf("Simplify x=true: got %v, want %v", got, want)
	}

	val.Set(z, false)
	got = e.Simplify(val)
	want = NewExpr(NewTerm(y))
	if !got.Equal(want) {
		t.Errorf("Simplify x=true,z=false: got %v, want %v", got, want)
	}

	val.Set(y, true)
	if got := e.Simplify(val); !got.IsTrue() {
		t.Errorf("Simplify to True failed: got %v", got)
	}

	all := NewValuation()
	all.Set(x, false)
	all.Set(z, false)
	if got := e.Simplify(all); !got.IsFalse() {
		t.Errorf("Simplify to False failed: got %v", got)
	}

	if got := e.Simplify(NewValuation()); !got.Equal(e) {
		t.Errorf("Simplify with empty valuation changed the expression")
	}
}

// The core soundness property (DESIGN.md §6): simplification commutes with
// evaluation. For any expression, partial valuation p and total valuation w
// extending p, eval(simplify(e,p), w) == eval(e, w).
func TestSimplifySoundnessProperty(t *testing.T) {
	const nvars = 8
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, nvars, 6, 4)
		total := randomValuation(r, nvars)
		// Partial valuation: reveal a random subset of total.
		partial := NewValuation()
		for v := 0; v < nvars; v++ {
			if r.Intn(2) == 0 {
				value, _ := total.Get(Var(v))
				partial.Set(Var(v), value)
			}
		}
		simplified := e.Simplify(partial)
		return simplified.Eval(total) == e.Eval(total)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Canonicalization must preserve semantics: a raw term set and its
// canonical form evaluate identically under every valuation.
func TestCanonicalizePreservesSemanticsExhaustive(t *testing.T) {
	const nvars = 4
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		nt := 1 + rng.Intn(4)
		raw := make([]Term, 0, nt)
		for i := 0; i < nt; i++ {
			size := 1 + rng.Intn(3)
			vars := make([]Var, 0, size)
			for j := 0; j < size; j++ {
				vars = append(vars, Var(rng.Intn(nvars)))
			}
			raw = append(raw, NewTerm(vars...))
		}
		canon := NewExpr(raw...)
		// Exhaustively check all 2^nvars valuations.
		for mask := 0; mask < 1<<nvars; mask++ {
			val := NewValuation()
			for v := 0; v < nvars; v++ {
				val.Set(Var(v), mask&(1<<v) != 0)
			}
			rawTrue := false
			for _, tm := range raw {
				all := true
				for _, v := range tm {
					if value, _ := val.Get(v); !value {
						all = false
						break
					}
				}
				if all {
					rawTrue = true
					break
				}
			}
			if canon.Eval(val) != rawTrue {
				t.Fatalf("canonicalization changed semantics: raw=%v canon=%v mask=%b", raw, canon, mask)
			}
		}
	}
}

func TestVarsAndContains(t *testing.T) {
	e := NewExpr(NewTerm(3, 1), NewTerm(2))
	vars := e.Vars()
	want := []Var{1, 2, 3}
	if len(vars) != len(want) {
		t.Fatalf("Vars() = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars() = %v, want %v", vars, want)
		}
	}
	if !e.ContainsVar(2) || e.ContainsVar(5) {
		t.Error("ContainsVar wrong")
	}
}

func TestFormat(t *testing.T) {
	reg := NewRegistry()
	a := reg.Intern("a0")
	b := reg.Intern("r0")
	e := NewExpr(NewTerm(a, b), NewTerm(a))
	// Absorption leaves just a0.
	if got := e.Format(reg); got != "a0" {
		t.Errorf("Format = %q, want %q", got, "a0")
	}
	e2 := NewExpr(NewTerm(a, b))
	if got := e2.Format(reg); got != "(a0 ∧ r0)" {
		t.Errorf("Format = %q", got)
	}
	if got := True().Format(reg); got != "true" {
		t.Errorf("Format(true) = %q", got)
	}
	if got := False().Format(reg); got != "false" {
		t.Errorf("Format(false) = %q", got)
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	a := reg.Intern("a")
	if got := reg.Intern("a"); got != a {
		t.Error("Intern not idempotent")
	}
	b := reg.Intern("b")
	if a == b {
		t.Error("distinct names must get distinct vars")
	}
	if reg.Name(a) != "a" || reg.Name(b) != "b" {
		t.Error("Name round-trip failed")
	}
	if v, ok := reg.Lookup("b"); !ok || v != b {
		t.Error("Lookup failed")
	}
	if _, ok := reg.Lookup("zzz"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
	if reg.Len() != 2 {
		t.Errorf("Len = %d, want 2", reg.Len())
	}
	f := reg.Fresh()
	if f == a || f == b {
		t.Error("Fresh collided")
	}
}

func TestValuationBasics(t *testing.T) {
	val := NewValuation()
	if val.Len() != 0 {
		t.Error("new valuation not empty")
	}
	val.Set(1, true)
	val.Set(2, false)
	if v, ok := val.Get(1); !ok || !v {
		t.Error("Get(1) wrong")
	}
	if v, ok := val.Get(2); !ok || v {
		t.Error("Get(2) wrong")
	}
	if _, ok := val.Get(3); ok {
		t.Error("Get(3) should be unassigned")
	}
	if !val.Assigned(1) || val.Assigned(3) {
		t.Error("Assigned wrong")
	}

	clone := val.Clone()
	clone.Set(1, false)
	if v, _ := val.Get(1); !v {
		t.Error("Clone is not independent")
	}

	with := val.With(3, true)
	if val.Assigned(3) {
		t.Error("With mutated the receiver")
	}
	if v, ok := with.Get(3); !ok || !v {
		t.Error("With did not assign")
	}

	vars := val.Vars()
	if len(vars) != 2 || vars[0] != 1 || vars[1] != 2 {
		t.Errorf("Vars = %v", vars)
	}

	// Zero value is usable.
	var zero Valuation
	if _, ok := zero.Get(1); ok {
		t.Error("zero valuation should have no assignments")
	}
	zero.Set(4, true)
	if v, ok := zero.Get(4); !ok || !v {
		t.Error("zero valuation Set/Get failed")
	}

	// Nil receiver reads are safe.
	var nilVal *Valuation
	if _, ok := nilVal.Get(1); ok {
		t.Error("nil valuation Get should report unassigned")
	}
	if nilVal.Len() != 0 {
		t.Error("nil valuation Len should be 0")
	}
}

// Package hardness implements the constructions behind the paper's
// intractability results (Section 3) as executable reductions, so that the
// connection between OPT-RESOLVE and VERTEX COVER can be tested rather
// than just stated:
//
//   - Theorem 3.1: a fixed Selection-Join (SJ) query and a database built
//     from a graph G such that each edge (u,v) yields one output tuple with
//     provenance x_u ∧ x_v ∧ x_{u,v}; minimal 0-certificates of the
//     provenance correspond to minimum vertex covers of G.
//   - Theorem 3.2: a fixed Selection-Projection-Union (SPU) query over a
//     3-ary Graph relation such that each edge yields provenance x_u ∨ x_v;
//     minimal 1-certificates correspond to minimum vertex covers.
//
// The package also provides the certificate machinery (0/1-certificates
// and brute-force minimum certificates/covers for small inputs) used by
// the tests to verify both directions of the reductions.
package hardness

import (
	"fmt"
	"sort"

	"qres/internal/boolexpr"
	"qres/internal/engine"
	"qres/internal/table"
	"qres/internal/uncertain"
)

// Graph is an undirected graph on vertices 0..N-1.
type Graph struct {
	N     int
	Edges [][2]int
}

// MaxDegree returns the maximum vertex degree.
func (g Graph) MaxDegree() int {
	deg := make([]int, g.N)
	max := 0
	for _, e := range g.Edges {
		deg[e[0]]++
		deg[e[1]]++
		if deg[e[0]] > max {
			max = deg[e[0]]
		}
		if deg[e[1]] > max {
			max = deg[e[1]]
		}
	}
	return max
}

// SJReduction is the Theorem 3.1 construction for a graph: the uncertain
// database (Vars, Terms relations), the fixed SJ query, and the mapping
// from graph vertices/edges to tuple variables.
type SJReduction struct {
	DB        *uncertain.DB
	Query     engine.Node
	VertexVar map[int]boolexpr.Var
	EdgeVar   map[[2]int]boolexpr.Var
}

// BuildSJ constructs the SJ reduction. The paper's query is
//
//	SELECT * FROM Vars v1, Vars v2, Terms t
//	WHERE v1.a = t.a1 AND v2.a = t.a2
//
// (the statement in the paper binds both sides to v1; the intended
// construction, which yields provenance x_u ∧ x_v ∧ x_{u,v} per edge, joins
// the two endpoints separately, as done here).
func BuildSJ(g Graph) *SJReduction {
	db := table.NewDatabase()
	vars := table.NewRelation("Vars", table.NewSchema(
		table.Column{Name: "a", Kind: table.KindInt}))
	for v := 0; v < g.N; v++ {
		vars.MustAppend(table.Tuple{table.Int(int64(v))}, nil)
	}
	db.MustAdd(vars)
	terms := table.NewRelation("Terms", table.NewSchema(
		table.Column{Name: "a1", Kind: table.KindInt},
		table.Column{Name: "a2", Kind: table.KindInt}))
	for _, e := range g.Edges {
		terms.MustAppend(table.Tuple{table.Int(int64(e[0])), table.Int(int64(e[1]))}, nil)
	}
	db.MustAdd(terms)
	udb := uncertain.New(db)

	red := &SJReduction{
		DB:        udb,
		VertexVar: make(map[int]boolexpr.Var, g.N),
		EdgeVar:   make(map[[2]int]boolexpr.Var, len(g.Edges)),
	}
	for v := 0; v < g.N; v++ {
		x, _ := udb.VarFor("Vars", v)
		red.VertexVar[v] = x
	}
	for i, e := range g.Edges {
		x, _ := udb.VarFor("Terms", i)
		red.EdgeVar[e] = x
	}

	join1 := engine.Join(
		engine.Scan("Vars", "v1"), engine.Scan("Terms", "t"),
		engine.Cmp(engine.Col("v1", "a"), engine.OpEq, engine.Col("t", "a1")))
	red.Query = engine.Join(
		join1, engine.Scan("Vars", "v2"),
		engine.Cmp(engine.Col("v2", "a"), engine.OpEq, engine.Col("t", "a2")))
	return red
}

// SPUReduction is the Theorem 3.2 construction for graphs of maximum
// degree <= 3.
type SPUReduction struct {
	DB        *uncertain.DB
	Query     engine.Node
	VertexVar map[int]boolexpr.Var
}

// BuildSPU constructs the SPU reduction: a 3-ary Graph relation with one
// tuple per vertex listing (up to) its three incident edges, NULL-padded,
// and the query
//
//	SELECT e1 FROM Graph WHERE e1 IS NOT NULL
//	UNION SELECT e2 FROM Graph WHERE e2 IS NOT NULL
//	UNION SELECT e3 FROM Graph WHERE e3 IS NOT NULL
//
// so each edge e=(u,v) yields one output tuple with provenance x_u ∨ x_v.
// It returns an error for graphs with a vertex of degree > 3.
func BuildSPU(g Graph) (*SPUReduction, error) {
	if g.MaxDegree() > 3 {
		return nil, fmt.Errorf("hardness: SPU reduction requires max degree <= 3, got %d", g.MaxDegree())
	}
	incident := make([][]int, g.N)
	for ei, e := range g.Edges {
		incident[e[0]] = append(incident[e[0]], ei)
		incident[e[1]] = append(incident[e[1]], ei)
	}

	db := table.NewDatabase()
	graph := table.NewRelation("Graph", table.NewSchema(
		table.Column{Name: "e1", Kind: table.KindInt},
		table.Column{Name: "e2", Kind: table.KindInt},
		table.Column{Name: "e3", Kind: table.KindInt}))
	for v := 0; v < g.N; v++ {
		tup := table.Tuple{table.Null(), table.Null(), table.Null()}
		for slot, ei := range incident[v] {
			tup[slot] = table.Int(int64(ei))
		}
		graph.MustAppend(tup, nil)
	}
	db.MustAdd(graph)
	udb := uncertain.New(db)

	red := &SPUReduction{DB: udb, VertexVar: make(map[int]boolexpr.Var, g.N)}
	for v := 0; v < g.N; v++ {
		x, _ := udb.VarFor("Graph", v)
		red.VertexVar[v] = x
	}

	branch := func(col string) engine.Node {
		return engine.Project(
			engine.Select(engine.Scan("Graph", "g"), engine.IsNotNull(engine.Col("g", col))),
			true, engine.Col("g", col))
	}
	red.Query = engine.Union(branch("e1"), branch("e2"), branch("e3"))
	return red, nil
}

// IsZeroCertificate reports whether assigning False to the given variables
// forces every expression to False (a 0-certificate: a proof that all
// provenance expressions are False regardless of the other variables).
func IsZeroCertificate(exprs []boolexpr.Expr, vars []boolexpr.Var) bool {
	val := boolexpr.NewValuation()
	for _, v := range vars {
		val.Set(v, false)
	}
	for _, e := range exprs {
		if !e.Simplify(val).IsFalse() {
			return false
		}
	}
	return true
}

// IsOneCertificate reports whether assigning True to the given variables
// forces every expression to True (a 1-certificate).
func IsOneCertificate(exprs []boolexpr.Expr, vars []boolexpr.Var) bool {
	val := boolexpr.NewValuation()
	for _, v := range vars {
		val.Set(v, true)
	}
	for _, e := range exprs {
		if !e.Simplify(val).IsTrue() {
			return false
		}
	}
	return true
}

// MinCertificateSize finds, by exhaustive search over subsets of the
// candidate variables, the size of a minimum certificate (0- or
// 1-certificate per the zero flag). Exponential; for tests on small
// reductions only. Returns -1 if no certificate exists within the
// candidate set.
func MinCertificateSize(exprs []boolexpr.Expr, candidates []boolexpr.Var, zero bool) int {
	sorted := append([]boolexpr.Var(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := len(sorted)
	for size := 0; size <= n; size++ {
		if searchSubsets(exprs, sorted, nil, 0, size, zero) {
			return size
		}
	}
	return -1
}

func searchSubsets(exprs []boolexpr.Expr, pool []boolexpr.Var, chosen []boolexpr.Var, start, size int, zero bool) bool {
	if len(chosen) == size {
		if zero {
			return IsZeroCertificate(exprs, chosen)
		}
		return IsOneCertificate(exprs, chosen)
	}
	for i := start; i <= len(pool)-(size-len(chosen)); i++ {
		if searchSubsets(exprs, pool, append(chosen, pool[i]), i+1, size, zero) {
			return true
		}
	}
	return false
}

// MinVertexCoverSize computes the minimum vertex-cover size of g by
// exhaustive search (for tests on small graphs).
func MinVertexCoverSize(g Graph) int {
	for size := 0; size <= g.N; size++ {
		if coverSearch(g, nil, 0, size) {
			return size
		}
	}
	return g.N
}

func coverSearch(g Graph, chosen []int, start, size int) bool {
	if len(chosen) == size {
		inCover := make(map[int]bool, len(chosen))
		for _, v := range chosen {
			inCover[v] = true
		}
		for _, e := range g.Edges {
			if !inCover[e[0]] && !inCover[e[1]] {
				return false
			}
		}
		return true
	}
	for v := start; v <= g.N-(size-len(chosen)); v++ {
		if coverSearch(g, append(chosen, v), v+1, size) {
			return true
		}
	}
	return false
}

package hardness

import (
	"math/rand"
	"testing"

	"qres/internal/boolexpr"
	"qres/internal/engine"
)

func triangle() Graph {
	return Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}}
}

func path4() Graph {
	return Graph{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}}}
}

func star() Graph {
	// Star with center 0: cover size 1.
	return Graph{N: 4, Edges: [][2]int{{0, 1}, {0, 2}, {0, 3}}}
}

func randomGraph(rng *rand.Rand, n, m int) Graph {
	g := Graph{N: n}
	seen := make(map[[2]int]bool)
	for len(g.Edges) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		g.Edges = append(g.Edges, [2]int{u, v})
	}
	return g
}

// The SJ construction must produce, per edge (u,v), exactly one output
// tuple with provenance x_u ∧ x_v ∧ x_{u,v} (paper Theorem 3.1).
func TestSJProvenanceShape(t *testing.T) {
	g := triangle()
	red := BuildSJ(g)
	res, err := engine.Run(red.DB, red.Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(g.Edges) {
		t.Fatalf("got %d output tuples, want %d", len(res.Rows), len(g.Edges))
	}
	wantExprs := make(map[string]bool)
	for _, e := range g.Edges {
		expr := boolexpr.NewExpr(boolexpr.NewTerm(
			red.VertexVar[e[0]], red.VertexVar[e[1]], red.EdgeVar[e]))
		wantExprs[expr.String()] = true
	}
	for _, row := range res.Rows {
		if !wantExprs[row.Prov.String()] {
			t.Errorf("unexpected provenance %v", row.Prov)
		}
		if row.Prov.NumTerms() != 1 || len(row.Prov.Terms()[0]) != 3 {
			t.Errorf("provenance not a 3-conjunction: %v", row.Prov)
		}
	}
}

// The SPU construction must produce, per edge, one output tuple with
// provenance x_u ∨ x_v (paper Theorem 3.2).
func TestSPUProvenanceShape(t *testing.T) {
	g := path4()
	red, err := BuildSPU(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(red.DB, red.Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(g.Edges) {
		t.Fatalf("got %d output tuples, want %d", len(res.Rows), len(g.Edges))
	}
	wantExprs := make(map[string]bool)
	for _, e := range g.Edges {
		expr := boolexpr.Lit(red.VertexVar[e[0]]).Or(boolexpr.Lit(red.VertexVar[e[1]]))
		wantExprs[expr.String()] = true
	}
	for _, row := range res.Rows {
		if !wantExprs[row.Prov.String()] {
			t.Errorf("unexpected provenance %v", row.Prov)
		}
	}
}

func TestSPUDegreeLimit(t *testing.T) {
	g := Graph{N: 5, Edges: [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}}
	if _, err := BuildSPU(g); err == nil {
		t.Fatal("degree-4 vertex accepted")
	}
}

// The heart of Theorem 3.1: minimum 0-certificates over vertex variables
// of the SJ provenance have exactly the minimum-vertex-cover size.
// (Certificates may also use edge variables; per the proof, replacing an
// edge variable x_{u,v} by either endpoint preserves certification, so the
// minimum over all variables equals the minimum over vertex variables.)
func TestSJZeroCertificateEqualsVertexCover(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	graphs := []Graph{triangle(), path4(), star(),
		randomGraph(rng, 5, 6), randomGraph(rng, 6, 7)}
	for gi, g := range graphs {
		red := BuildSJ(g)
		res, err := engine.Run(red.DB, red.Query)
		if err != nil {
			t.Fatal(err)
		}
		exprs := res.Provenance()

		vertexVars := make([]boolexpr.Var, 0, g.N)
		for v := 0; v < g.N; v++ {
			vertexVars = append(vertexVars, red.VertexVar[v])
		}
		certSize := MinCertificateSize(exprs, vertexVars, true)
		coverSize := MinVertexCoverSize(g)
		if certSize != coverSize {
			t.Errorf("graph %d: min 0-certificate %d != min vertex cover %d", gi, certSize, coverSize)
		}

		// Sanity: a full vertex cover is a 0-certificate, a non-cover is not.
		if !IsZeroCertificate(exprs, vertexVars) {
			t.Errorf("graph %d: all vertices must certify", gi)
		}
	}
}

// The heart of Theorem 3.2: minimum 1-certificates of the SPU provenance
// have exactly the minimum-vertex-cover size.
func TestSPUOneCertificateEqualsVertexCover(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := []Graph{triangle(), path4(), star()}
	// Random degree-<=3 graphs.
	for tries := 0; len(graphs) < 6 && tries < 100; tries++ {
		g := randomGraph(rng, 6, 6)
		if g.MaxDegree() <= 3 {
			graphs = append(graphs, g)
		}
	}
	for gi, g := range graphs {
		red, err := BuildSPU(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Run(red.DB, red.Query)
		if err != nil {
			t.Fatal(err)
		}
		exprs := res.Provenance()

		vertexVars := make([]boolexpr.Var, 0, g.N)
		for v := 0; v < g.N; v++ {
			vertexVars = append(vertexVars, red.VertexVar[v])
		}
		certSize := MinCertificateSize(exprs, vertexVars, false)
		coverSize := MinVertexCoverSize(g)
		if certSize != coverSize {
			t.Errorf("graph %d: min 1-certificate %d != min vertex cover %d", gi, certSize, coverSize)
		}
	}
}

func TestCertificatePredicates(t *testing.T) {
	// φ = x0 ∨ x1; ψ = x1 ∨ x2.
	exprs := []boolexpr.Expr{
		boolexpr.Lit(0).Or(boolexpr.Lit(1)),
		boolexpr.Lit(1).Or(boolexpr.Lit(2)),
	}
	if !IsOneCertificate(exprs, []boolexpr.Var{1}) {
		t.Error("x1=True certifies both")
	}
	if IsOneCertificate(exprs, []boolexpr.Var{0}) {
		t.Error("x0=True leaves ψ open")
	}
	if !IsZeroCertificate(exprs, []boolexpr.Var{0, 1, 2}) {
		t.Error("all-False certifies 0")
	}
	if IsZeroCertificate(exprs, []boolexpr.Var{0, 1}) {
		t.Error("x2 can still satisfy ψ")
	}
	if MinCertificateSize(exprs, []boolexpr.Var{0, 1, 2}, false) != 1 {
		t.Error("min 1-certificate should be {x1}")
	}
	if MinCertificateSize(exprs, []boolexpr.Var{0, 1, 2}, true) != 3 {
		t.Error("min 0-certificate needs all three")
	}
	// No certificate within a candidate set.
	if MinCertificateSize(exprs, []boolexpr.Var{0}, true) != -1 {
		t.Error("expected no certificate")
	}
}

func TestMinVertexCover(t *testing.T) {
	cases := []struct {
		g    Graph
		want int
	}{
		{triangle(), 2},
		{path4(), 2},
		{star(), 1},
		{Graph{N: 2, Edges: nil}, 0},
	}
	for i, c := range cases {
		if got := MinVertexCoverSize(c.g); got != c.want {
			t.Errorf("case %d: cover = %d, want %d", i, got, c.want)
		}
	}
}

func TestMaxDegree(t *testing.T) {
	if star().MaxDegree() != 3 {
		t.Error("star degree wrong")
	}
	if (Graph{N: 3}).MaxDegree() != 0 {
		t.Error("empty graph degree wrong")
	}
}

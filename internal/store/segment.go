package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment files. The WAL is a chain of size-bounded segments named
// wal-<seq>.seg with monotonically increasing sequence numbers; the
// highest-numbered segment is the live one, every earlier segment is
// sealed (immutable). Sealing writes a sidecar block index wal-<seq>.sidx
// next to the segment: record count, byte size, first record's global
// index, and the sorted set of variable names the segment touches. The
// sidecar lets recovery and cold lookups decide per segment — "everything
// here is already in the snapshot", "this variable never appears here" —
// without reading the segment, which is what makes restart time track the
// un-snapshotted tail instead of total history. Sidecars are pure
// acceleration: deleting one costs a rebuild scan, never correctness.

// File naming inside a store directory.
const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".seg"
	sidecarSuffix  = ".sidx"
	snapshotName   = "snapshot.qbs"
	manifestName   = "MANIFEST.json"
	segmentSeqWide = 8 // zero-padded digits in segment file names
)

// segmentPath renders the file name of segment seq under dir.
func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%0*d%s", segmentPrefix, segmentSeqWide, seq, segmentSuffix))
}

// sidecarPath renders the block-index file name of segment seq under dir.
func sidecarPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%0*d%s", segmentPrefix, segmentSeqWide, seq, sidecarSuffix))
}

// parseSegmentName extracts the sequence number from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(segmentPrefix):len(name)-len(segmentSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the sequence numbers of the segments in dir, sorted
// ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// segmentMeta describes one sealed segment: the sidecar's content, held in
// memory for block-index decisions.
type segmentMeta struct {
	// Seq is the segment's sequence number.
	Seq uint64 `json:"seq"`
	// FirstIndex is the global record index of the segment's first record.
	FirstIndex uint64 `json:"first_index"`
	// Records is the number of record frames in the segment.
	Records uint64 `json:"records"`
	// Bytes is the segment file's size when sealed.
	Bytes int64 `json:"bytes"`
	// Vars is the sorted, deduplicated set of variable names recorded in
	// the segment (metadata-only records contribute nothing).
	Vars []string `json:"vars"`
}

// endIndex is the global index one past the segment's last record.
func (m *segmentMeta) endIndex() uint64 { return m.FirstIndex + m.Records }

// containsVar reports whether the segment records an answer for the named
// variable, by binary search over the sorted sidecar list.
func (m *segmentMeta) containsVar(name string) bool {
	i := sort.SearchStrings(m.Vars, name)
	return i < len(m.Vars) && m.Vars[i] == name
}

// writeSidecar persists a segment's block index crash-consistently
// (temp file + fsync + atomic rename).
func writeSidecar(dir string, m *segmentMeta) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return writeFileAtomic(sidecarPath(dir, m.Seq), append(data, '\n'))
}

// readSidecar loads a segment's block index; ok is false when the sidecar
// is absent or unusable (callers rebuild by scanning the segment).
func readSidecar(dir string, seq uint64) (*segmentMeta, bool) {
	data, err := os.ReadFile(sidecarPath(dir, seq))
	if err != nil {
		return nil, false
	}
	var m segmentMeta
	if json.Unmarshal(data, &m) != nil || m.Seq != seq {
		return nil, false
	}
	return &m, true
}

// scanResult is what a full segment scan yields.
type scanResult struct {
	header     segmentHeader
	records    []record
	bytes      int64 // offset one past the last well-formed frame
	torn       bool  // a torn suffix follows bytes (live segment: truncate)
	tornSize   int64 // bytes in the torn suffix
	headerTorn bool  // the header frame itself is torn: crash mid-create
}

// scanSegment reads and verifies one segment file. Damage handling is
// positional: a torn suffix — malformed bytes at the end of the file with
// no well-formed frame after them, the signature of a crash mid-append —
// is reported via torn (the caller truncates it from the live segment and
// rejects it in sealed ones); malformed data with a well-formed frame
// anywhere after it is in-place corruption and fails the scan with a
// CorruptionError carrying the byte offset and record index.
func scanSegment(path string) (*scanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	res := &scanResult{}
	if len(data) == 0 {
		// A crash inside createSegment, before the header write landed.
		res.headerTorn, res.torn = true, true
		return res, nil
	}
	payload, off, ferr := readFrame(data, 0)
	if ferr != nil {
		// Damaged header. A torn one — with nothing well-formed after it —
		// is a crash mid-create: the segment never held a record. A
		// well-formed frame after the damage means mid-file corruption.
		if !ferr.torn {
			for probe := 1; probe < len(data); probe++ {
				if validFrameAt(data, probe) {
					return nil, &CorruptionError{Path: path, Offset: 0, Record: 0,
						Err: fmt.Errorf("segment header frame: %w", ferr.err)}
				}
			}
		}
		res.headerTorn, res.torn = true, true
		res.tornSize = int64(len(data))
		return res, nil
	}
	hdr, err := decodeSegmentHeaderPayload(payload)
	if err != nil {
		return nil, &CorruptionError{Path: path, Offset: 0, Record: 0, Err: err}
	}
	res.header = hdr
	res.bytes = int64(off)
	for off < len(data) {
		frameStart := off
		payload, next, ferr := readFrame(data, off)
		if ferr == nil {
			rec, derr := decodeRecordPayload(payload)
			if derr != nil {
				ferr = &frameError{err: derr}
			} else {
				res.records = append(res.records, rec)
				res.bytes = int64(next)
				off = next
				continue
			}
		}
		// Malformed data at frameStart. Torn suffix, or mid-file damage?
		// A torn suffix has no well-formed frame after the damage (the
		// partial write is the last thing that happened to the file).
		if !ferr.torn {
			for probe := frameStart + 1; probe < len(data); probe++ {
				if validFrameAt(data, probe) {
					return nil, &CorruptionError{Path: path, Offset: int64(frameStart),
						Record: len(res.records), Err: ferr.err}
				}
			}
		}
		res.torn = true
		res.tornSize = int64(len(data) - frameStart)
		break
	}
	return res, nil
}

// createSegment creates the next live segment: a fresh file whose first
// frame is the self-describing header pinning (seq, firstIndex), synced —
// along with its directory entry — before any record lands in it.
func createSegment(dir string, seq, firstIndex uint64) (*activeSegment, error) {
	path := segmentPath(dir, seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := appendFrame(nil, appendSegmentHeaderPayload(nil, segmentHeader{seq: seq, firstIndex: firstIndex}))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return &activeSegment{
		f:          f,
		path:       path,
		seq:        seq,
		firstIndex: firstIndex,
		bytes:      int64(len(hdr)),
		vars:       make(map[string]struct{}),
	}, nil
}

// writeFileAtomic writes data to path crash-consistently: temp file in the
// same directory, fsync, atomic rename, directory fsync.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creates within it are durable.
// Platforms where directories cannot be fsynced are not treated as
// failures.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return err
	}
	return nil
}

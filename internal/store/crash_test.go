package store

import (
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"qres/internal/resolve"
)

// Crash-recovery property test. The durability contract is exactly "a
// committed prefix": whatever a crash does to the live segment's tail —
// truncation at any byte offset — and whatever happens to the sidecars —
// pure acceleration, deletable at will — recovery must produce some prefix
// of the committed record sequence, never a gap, a reordering, or a
// phantom record; and everything below the snapshot watermark plus every
// record in a sealed segment must survive in full.

// copyDir clones a store directory so each crash scenario mutates a fresh
// copy.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// assertPrefix checks that repo holds exactly the first repo.Len() records
// of committed, in order, and at least min of them.
func assertPrefix(t *testing.T, repo *resolve.Repository, committed []resolve.ProbeRecord, min int, scenario string) {
	t.Helper()
	got := repo.Records()
	if len(got) > len(committed) {
		t.Fatalf("%s: recovered %d records, committed only %d", scenario, len(got), len(committed))
	}
	if len(got) < min {
		t.Fatalf("%s: recovered %d records, want >= %d", scenario, len(got), min)
	}
	for i, rec := range got {
		want := committed[i]
		if rec.Answer != want.Answer || rec.HasVar != want.HasVar ||
			(rec.HasVar && rec.Var != want.Var) ||
			rec.Meta["i"] != want.Meta["i"] {
			t.Fatalf("%s: record %d diverges: got %+v, want %+v", scenario, i, rec, want)
		}
	}
}

func TestCrashRecoveryYieldsCommittedPrefix(t *testing.T) {
	env := newTestEnv()
	base := t.TempDir()
	st, repo, err := Open(base, Options{
		NameFn: env.opts.NameFn, ResolveFn: env.opts.ResolveFn,
		SegmentBytes: 512, // several sealed segments
	})
	if err != nil {
		t.Fatal(err)
	}
	committed := env.probeSeq(40)
	for i, rec := range committed {
		addOne(t, st, repo, rec)
		if i == 15 {
			// A mid-stream snapshot: records below its watermark must
			// survive every scenario.
			if err := st.Snapshot(repo); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	seqs, err := listSegments(base)
	if err != nil || len(seqs) < 2 {
		t.Fatalf("want >= 2 segments, got %v (err %v)", seqs, err)
	}
	liveSeq := seqs[len(seqs)-1]
	liveInfo, err := os.Stat(segmentPath(base, liveSeq))
	if err != nil {
		t.Fatal(err)
	}
	// Records in sealed segments (everything but the live segment's) are
	// fully synced and must survive any live-segment damage.
	sealedFloor := 0
	for _, seq := range seqs[:len(seqs)-1] {
		if meta, ok := readSidecar(base, seq); ok {
			if end := int(meta.endIndex()); end > sealedFloor {
				sealedFloor = end
			}
		}
	}
	if sealedFloor == 0 {
		t.Fatal("no sealed sidecar found")
	}

	t.Run("TruncateLiveSegment", func(t *testing.T) {
		// Every truncation point of the live segment, header included.
		for size := int64(0); size < liveInfo.Size(); size++ {
			dir := copyDir(t, base)
			if err := os.Truncate(segmentPath(dir, liveSeq), size); err != nil {
				t.Fatal(err)
			}
			st2, repo2, err := Open(dir, env.opts)
			if err != nil {
				t.Fatalf("truncate at %d: %v", size, err)
			}
			assertPrefix(t, repo2, committed, sealedFloor, "truncate at "+strconv.FormatInt(size, 10))
			st2.Close()
		}
	})

	t.Run("DeleteSidecars", func(t *testing.T) {
		// Sidecars are pure acceleration: delete each one, then all of
		// them, and recovery still restores every committed record.
		scenarios := make([][]uint64, 0, len(seqs)+1)
		for _, seq := range seqs {
			scenarios = append(scenarios, []uint64{seq})
		}
		scenarios = append(scenarios, seqs) // all at once
		for _, victims := range scenarios {
			dir := copyDir(t, base)
			for _, seq := range victims {
				os.Remove(sidecarPath(dir, seq))
			}
			st2, repo2, err := Open(dir, env.opts)
			if err != nil {
				t.Fatalf("sidecars %v deleted: %v", victims, err)
			}
			assertPrefix(t, repo2, committed, len(committed), "sidecars deleted")
			st2.Close()
		}
	})

	t.Run("TruncateAndDeleteSidecars", func(t *testing.T) {
		// Both at once, at a sample of truncation points.
		for size := int64(0); size < liveInfo.Size(); size += 7 {
			dir := copyDir(t, base)
			if err := os.Truncate(segmentPath(dir, liveSeq), size); err != nil {
				t.Fatal(err)
			}
			for _, seq := range seqs {
				os.Remove(sidecarPath(dir, seq))
			}
			st2, repo2, err := Open(dir, env.opts)
			if err != nil {
				t.Fatalf("truncate at %d + no sidecars: %v", size, err)
			}
			assertPrefix(t, repo2, committed, sealedFloor, "truncate+delete at "+strconv.FormatInt(size, 10))
			st2.Close()
		}
	})

	t.Run("RepeatedCrashes", func(t *testing.T) {
		// Crash, recover, append, crash again: each recovery must keep
		// the chain consistent for the next one.
		dir := copyDir(t, base)
		total := committed
		for round := 0; round < 3; round++ {
			st2, repo2, err := Open(dir, env.opts)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			assertPrefix(t, repo2, total, len(total), "round "+strconv.Itoa(round))
			rec := resolve.ProbeRecord{
				Meta:   map[string]string{"i": "extra-" + strconv.Itoa(round)},
				Answer: true,
			}
			addOne(t, st2, repo2, rec)
			total = append(total, rec)
			if err := st2.Close(); err != nil {
				t.Fatal(err)
			}
		}
	})
}

package store

import "qres/internal/obs"

// storeMetrics publishes the storage engine's health to an obs.Registry —
// and through it the server's /metrics Prometheus surface. Every method is
// nil-receiver-safe, so a store opened without a registry pays only a nil
// check per observation.
//
// Series emitted:
//
//	store_fsync_seconds             histogram  flusher fsync latency
//	store_group_commit_batch_size   histogram  records per commit batch
//	store_wal_segments              gauge      WAL segment files on disk
//	store_wal_bytes                 gauge      total WAL bytes on disk
//	store_snapshot_records          gauge      records the snapshot covers
//	store_segments_sealed_total     counter    segments sealed (rotations)
//	store_compactions_total         counter    completed snapshot folds
//	store_compaction_failures_total counter    failed compaction attempts
type storeMetrics struct {
	fsync       *obs.Histogram
	batch       *obs.Histogram
	segments    *obs.Gauge
	bytes       *obs.Gauge
	snapRecords *obs.Gauge
	sealed      *obs.Counter
	compactions *obs.Counter
	compactErrs *obs.Counter
}

// newStoreMetrics binds the metric handles, or returns nil when no
// registry was configured.
func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	if reg == nil {
		return nil
	}
	return &storeMetrics{
		fsync:       reg.Histogram("store_fsync_seconds"),
		batch:       reg.Histogram("store_group_commit_batch_size"),
		segments:    reg.Gauge("store_wal_segments"),
		bytes:       reg.Gauge("store_wal_bytes"),
		snapRecords: reg.Gauge("store_snapshot_records"),
		sealed:      reg.Counter("store_segments_sealed_total"),
		compactions: reg.Counter("store_compactions_total"),
		compactErrs: reg.Counter("store_compaction_failures_total"),
	}
}

func (m *storeMetrics) enabled() bool { return m != nil }

func (m *storeMetrics) observeFsync(seconds float64) {
	if m != nil {
		m.fsync.Observe(seconds)
	}
}

func (m *storeMetrics) observeBatch(records float64) {
	if m != nil {
		m.batch.Observe(records)
	}
}

func (m *storeMetrics) setSegments(count, bytes float64) {
	if m != nil {
		m.segments.Set(count)
		m.bytes.Set(bytes)
	}
}

func (m *storeMetrics) setSnapshotRecords(n float64) {
	if m != nil {
		m.snapRecords.Set(n)
	}
}

func (m *storeMetrics) sealedInc() {
	if m != nil {
		m.sealed.Inc()
	}
}

func (m *storeMetrics) compactionDone(err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.compactErrs.Inc()
		return
	}
	m.compactions.Inc()
}

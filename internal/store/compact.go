package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"qres/internal/boolexpr"
	"qres/internal/resolve"
)

// manifest is the store's durable root pointer, swapped atomically on
// every snapshot. Recovery trusts nothing else: the snapshot covers the
// repository's first SnapshotRecords records, which correspond exactly to
// WAL records below WALWatermark — replay starts there.
type manifest struct {
	// SnapshotRecords is the number of records in snapshot.qbs.
	SnapshotRecords uint64 `json:"snapshot_records"`
	// WALWatermark is the global WAL index the snapshot covers: every WAL
	// record with index < WALWatermark is contained in the snapshot.
	WALWatermark uint64 `json:"wal_watermark"`
}

// writeManifest persists the manifest atomically.
func writeManifest(dir string, m manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, manifestName), append(data, '\n'))
}

// readManifest loads the manifest; ok is false when none exists yet.
func readManifest(dir string) (manifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, false, fmt.Errorf("store: manifest: %w", err)
	}
	return m, true, nil
}

// Snapshot atomically persists a prefix of the repository and advances the
// WAL watermark past it, then deletes every sealed segment the new
// snapshot fully covers. Unlike the flat store's Snapshot it does not
// exclude concurrent appends: the (prefix length, WAL watermark) pair is
// captured under the commit-order lock — one uncontended lock acquisition
// — and everything after that runs against an immutable record prefix
// while writers keep appending. Explicit calls (graceful shutdown) and the
// background compactor both land here.
func (s *Store) Snapshot(repo *resolve.Repository) error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	s.mu.Lock()
	n := uint64(repo.Len())
	mark := s.total
	s.mu.Unlock()

	recs := repo.Records()
	if uint64(len(recs)) < n {
		return fmt.Errorf("store: repository shrank during snapshot (%d < %d)", len(recs), n)
	}
	recs = recs[:n]
	if err := s.writeSnapshotFile(recs); err != nil {
		return err
	}
	man := manifest{SnapshotRecords: n, WALWatermark: mark}
	if err := writeManifest(s.dir, man); err != nil {
		return err
	}

	// The manifest is durable: every sealed segment it covers is dead
	// weight. Deleting is best-effort — a leftover segment is skipped via
	// its sidecar on the next recovery and reaped by the next compaction.
	s.smu.Lock()
	s.man = man
	var drop, keep []*segmentMeta
	for _, m := range s.sealed {
		if m.endIndex() <= man.WALWatermark {
			drop = append(drop, m)
		} else {
			keep = append(keep, m)
		}
	}
	s.sealed = keep
	s.smu.Unlock()
	for _, m := range drop {
		os.Remove(segmentPath(s.dir, m.Seq))
		os.Remove(sidecarPath(s.dir, m.Seq))
	}
	s.compactions.Add(1)
	s.met.compactionDone(nil)
	s.met.setSnapshotRecords(float64(n))
	s.publishGauges()
	return nil
}

// writeSnapshotFile streams the records into a crash-consistent snapshot:
// temp file, frames through a buffered writer, fsync, atomic rename,
// directory fsync.
func (s *Store) writeSnapshotFile(recs []resolve.ProbeRecord) error {
	path := filepath.Join(s.dir, snapshotName)
	tmp, err := os.CreateTemp(s.dir, snapshotName+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	bw := bufio.NewWriterSize(tmp, 1<<20)
	frame := appendFrame(nil, appendSnapshotHeaderPayload(nil, snapshotHeader{records: uint64(len(recs))}))
	if _, err := bw.Write(frame); err != nil {
		tmp.Close()
		return err
	}
	scratch := make([]byte, 0, 256)
	for _, pr := range recs {
		scratch = appendRecordPayload(scratch[:0], recordFromProbe(pr, s.nameFn))
		frame = appendFrame(frame[:0], scratch)
		if _, err := bw.Write(frame); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(s.dir)
}

// loadSnapshotFile replays the snapshot into repo, returning the number of
// records it held. Snapshots are written atomically, so any damage is
// corruption, never a torn tail.
func loadSnapshotFile(path string, repo *resolve.Repository, resolveFn func(string) (boolexpr.Var, bool)) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	payload, off, ferr := readFrame(data, 0)
	if ferr != nil {
		return 0, &CorruptionError{Path: path, Offset: 0, Record: 0,
			Err: fmt.Errorf("snapshot header frame: %w", ferr.err)}
	}
	hdr, err := decodeSnapshotHeaderPayload(payload)
	if err != nil {
		return 0, &CorruptionError{Path: path, Offset: 0, Record: 0, Err: err}
	}
	var count uint64
	for off < len(data) {
		frameStart := off
		payload, next, ferr := readFrame(data, off)
		if ferr != nil {
			return 0, &CorruptionError{Path: path, Offset: int64(frameStart),
				Record: int(count), Err: ferr.err}
		}
		rec, derr := decodeRecordPayload(payload)
		if derr != nil {
			return 0, &CorruptionError{Path: path, Offset: int64(frameStart),
				Record: int(count), Err: derr}
		}
		rec.apply(repo, resolveFn)
		count++
		off = next
	}
	if count != hdr.records {
		return 0, &CorruptionError{Path: path, Offset: int64(len(data)), Record: int(count),
			Err: fmt.Errorf("snapshot holds %d records, header promises %d", count, hdr.records)}
	}
	return count, nil
}

// compactLoop folds sealed segments into the snapshot on a timer until the
// store closes. A failed fold is counted and retried next interval; the
// store keeps serving appends either way.
func (s *Store) compactLoop(interval time.Duration) {
	defer close(s.compactDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.compactStop:
			return
		case <-t.C:
			if !s.shouldCompact() {
				continue
			}
			// Snapshot itself accounts for a successful fold; only the
			// failure path is counted here.
			if err := s.Snapshot(s.repo); err != nil {
				s.compactErrs.Add(1)
				s.met.compactionDone(err)
			}
		}
	}
}

// shouldCompact reports whether a fold would free anything: at least one
// sealed segment lies beyond the snapshot watermark. Tail records still in
// the live segment are not worth a full snapshot pass — they are exactly
// what cheap replay on restart is for.
func (s *Store) shouldCompact() bool {
	s.smu.Lock()
	defer s.smu.Unlock()
	for _, m := range s.sealed {
		if m.endIndex() > s.man.WALWatermark {
			return true
		}
	}
	return false
}

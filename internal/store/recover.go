package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"qres/internal/boolexpr"
	"qres/internal/obs"
	"qres/internal/resolve"
)

// Legacy flat-store files (resolve.Store). A store directory holding these
// and no manifest is migrated in place on first open.
const (
	legacySnapshotFile = "probes.snapshot.jsonl"
	legacyWALFile      = "probes.wal.jsonl"
)

// Options configures Open. The zero value is usable when variable names
// never need to round-trip (metadata-only workloads).
type Options struct {
	// NameFn renders a variable for persistence; nil drops variable
	// bindings on disk (records persist as metadata-only).
	NameFn func(boolexpr.Var) string
	// ResolveFn binds a persisted variable name on recovery; names it
	// cannot resolve degrade to metadata-only records.
	ResolveFn func(string) (boolexpr.Var, bool)
	// SegmentBytes is the soft size bound at which the live segment is
	// sealed and rotated. Zero means 4 MiB. Rotation happens between
	// commit batches, so segments may overshoot by one batch.
	SegmentBytes int64
	// CompactInterval is how often the background compactor folds sealed
	// segments into the snapshot. Zero or negative disables background
	// compaction (explicit Snapshot calls still work).
	CompactInterval time.Duration
	// Metrics, when non-nil, receives the store_* series (fsync latency,
	// batch sizes, segment gauges, compaction counters).
	Metrics *obs.Registry
}

// defaultSegmentBytes is the live-segment rotation bound when Options
// leaves SegmentBytes zero.
const defaultSegmentBytes = 4 << 20

// Open recovers (or creates) a segmented store in dir and returns it with
// the repository rebuilt from snapshot plus WAL tail. Recovery work tracks
// the un-snapshotted tail: sealed segments whose sidecar proves every
// record sits below the snapshot watermark are skipped without being read.
// A torn suffix on the live segment — the signature of a crash mid-append —
// is truncated away; any other damage fails Open with a CorruptionError
// locating the damaged file, byte offset, and record index.
//
// Directories written by the flat resolve.Store are migrated in place: the
// legacy JSONL snapshot and WAL are recovered once through the old code
// path, folded into a new-format snapshot, and removed.
func Open(dir string, opts Options) (*Store, *resolve.Repository, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}

	if err := migrateLegacy(dir, opts); err != nil {
		return nil, nil, err
	}

	man, haveMan, err := readManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	repo := resolve.NewRepository()
	if haveMan && man.SnapshotRecords > 0 {
		snapPath := filepath.Join(dir, snapshotName)
		n, err := loadSnapshotFile(snapPath, repo, opts.ResolveFn)
		if err != nil {
			return nil, nil, err
		}
		if n != man.SnapshotRecords {
			return nil, nil, fmt.Errorf("store: snapshot holds %d records, manifest promises %d", n, man.SnapshotRecords)
		}
	}

	s := &Store{
		dir:       dir,
		segBytes:  opts.SegmentBytes,
		nameFn:    opts.NameFn,
		resolveFn: opts.ResolveFn,
		met:       newStoreMetrics(opts.Metrics),
		repo:      repo,
		man:       man,
	}
	s.flushC = sync.NewCond(&s.mu)
	s.flusherDone = make(chan struct{})

	if err := s.recoverSegments(repo, man); err != nil {
		return nil, nil, err
	}

	s.met.setSnapshotRecords(float64(man.SnapshotRecords))
	s.publishGauges()
	go s.flushLoop()
	if opts.CompactInterval > 0 {
		s.compactStop = make(chan struct{})
		s.compactDone = make(chan struct{})
		go s.compactLoop(opts.CompactInterval)
	}
	return s, repo, nil
}

// recoverSegments walks the WAL chain: skips snapshot-covered segments by
// sidecar, replays the tail into repo, repairs a torn live suffix, seals
// what was live, and opens a fresh active segment. On return s.total,
// s.sealed, and s.active describe a consistent chain.
func (s *Store) recoverSegments(repo *resolve.Repository, man manifest) error {
	seqs, err := listSegments(s.dir)
	if err != nil {
		return err
	}

	// end tracks the chain's high-water mark: one past the last record
	// accounted for by snapshot or replayed segment.
	end := man.WALWatermark
	lastSeq := uint64(0)
	for i, seq := range seqs {
		lastSeq = seq
		live := i == len(seqs)-1

		if !live {
			if meta, ok := readSidecar(s.dir, seq); ok && meta.endIndex() <= man.WALWatermark {
				// Block-index skip: every record here is already in the
				// snapshot. Reap the leftover (compaction deletes are
				// best-effort) without reading a byte of it.
				os.Remove(segmentPath(s.dir, seq))
				os.Remove(sidecarPath(s.dir, seq))
				continue
			}
		}

		path := segmentPath(s.dir, seq)
		res, err := scanSegment(path)
		if err != nil {
			return err
		}
		if res.headerTorn {
			// A crash inside createSegment: the header never landed, so
			// the segment never held a record. Only ever the newest file.
			if !live {
				return &CorruptionError{Path: path, Offset: 0, Record: 0,
					Err: fmt.Errorf("torn header in sealed segment")}
			}
			if err := os.Remove(path); err != nil {
				return err
			}
			os.Remove(sidecarPath(s.dir, seq))
			continue
		}
		if res.header.seq != seq {
			return &CorruptionError{Path: path, Offset: 0, Record: 0,
				Err: fmt.Errorf("segment header seq %d does not match file name", res.header.seq)}
		}
		if res.torn {
			if !live {
				// Sealed segments are fully synced before their successor
				// exists; a torn suffix here is real damage.
				return &CorruptionError{Path: path, Offset: res.bytes, Record: len(res.records),
					Err: fmt.Errorf("torn suffix (%d bytes) in sealed segment", res.tornSize)}
			}
			if err := truncateSegment(path, res.bytes); err != nil {
				return err
			}
		}

		first := res.header.firstIndex
		segEnd := first + uint64(len(res.records))
		// Chain check: a gap before this segment is fine only when the
		// snapshot covers it (compaction deleted the covered prefix).
		if first > end {
			return &CorruptionError{Path: path, Offset: 0, Record: 0,
				Err: fmt.Errorf("segment starts at record %d but chain only reaches %d", first, end)}
		}

		if segEnd <= man.WALWatermark {
			// Fully covered by the snapshot (the sidecar was missing or
			// stale, so we only learned it from the scan). Reap it.
			if !live {
				os.Remove(path)
				os.Remove(sidecarPath(s.dir, seq))
				continue
			}
		} else {
			// Replay the records beyond the watermark, in order.
			for j, rec := range res.records {
				if first+uint64(j) < man.WALWatermark {
					continue
				}
				rec.apply(repo, s.resolveFn)
			}
		}
		if segEnd > end {
			end = segEnd
		}

		if live {
			// Seal what was live: never append to a recovered segment.
			// Empty or fully-covered files are deleted instead of sealed.
			if len(res.records) == 0 || segEnd <= man.WALWatermark {
				if err := os.Remove(path); err != nil {
					return err
				}
				os.Remove(sidecarPath(s.dir, seq))
				continue
			}
			meta := &segmentMeta{
				Seq:        seq,
				FirstIndex: first,
				Records:    uint64(len(res.records)),
				Bytes:      res.bytes,
				Vars:       scanVarSet(res.records),
			}
			if err := writeSidecar(s.dir, meta); err != nil {
				return err
			}
			s.sealed = append(s.sealed, meta)
		} else {
			meta, ok := readSidecar(s.dir, seq)
			if !ok || meta.Records != uint64(len(res.records)) || meta.FirstIndex != first {
				meta = &segmentMeta{
					Seq:        seq,
					FirstIndex: first,
					Records:    uint64(len(res.records)),
					Bytes:      res.bytes,
					Vars:       scanVarSet(res.records),
				}
				if err := writeSidecar(s.dir, meta); err != nil {
					return err
				}
			}
			s.sealed = append(s.sealed, meta)
		}
	}

	active, err := createSegment(s.dir, lastSeq+1, end)
	if err != nil {
		return err
	}
	s.active = active
	s.total = end
	return nil
}

// scanVarSet collects the sorted variable-name set of scanned records, for
// rebuilding a sidecar.
func scanVarSet(recs []record) []string {
	set := make(map[string]struct{})
	for _, r := range recs {
		if r.hasVar {
			set[r.varName] = struct{}{}
		}
	}
	return sortedVarSet(set)
}

// truncateSegment cuts a torn suffix off the live segment and syncs the
// repair.
func truncateSegment(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// migrateLegacy converts a flat resolve.Store directory in place: recover
// through the old code path, write the state as a new-format snapshot +
// manifest, and delete the legacy files. A directory already holding a
// manifest only gets leftover legacy files removed (a crash mid-migration
// re-runs harmlessly: the legacy files are deleted only after the manifest
// is durable).
func migrateLegacy(dir string, opts Options) error {
	_, haveMan, err := readManifest(dir)
	if err != nil {
		return err
	}
	legacySnap := filepath.Join(dir, legacySnapshotFile)
	legacyWAL := filepath.Join(dir, legacyWALFile)
	if haveMan {
		os.Remove(legacySnap)
		os.Remove(legacyWAL)
		return nil
	}
	if !fileExists(legacySnap) && !fileExists(legacyWAL) {
		return nil
	}
	old, repo, err := resolve.OpenStore(dir, opts.NameFn, opts.ResolveFn)
	if err != nil {
		return fmt.Errorf("store: migrating legacy store: %w", err)
	}
	if err := old.Close(); err != nil {
		return err
	}
	tmp := &Store{dir: dir, nameFn: opts.NameFn}
	if err := tmp.writeSnapshotFile(repo.Records()); err != nil {
		return err
	}
	n := uint64(repo.Len())
	if err := writeManifest(dir, manifest{SnapshotRecords: n, WALWatermark: n}); err != nil {
		return err
	}
	os.Remove(legacySnap)
	os.Remove(legacyWAL)
	return nil
}

// fileExists reports whether path exists.
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

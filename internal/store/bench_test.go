package store

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"qres/internal/boolexpr"
	"qres/internal/resolve"
)

// Benchmarks behind results/BENCH_store.json: restart time after a crash
// at 10k/100k (and, with QRES_BENCH_BIG=1, 1M) total probes, and the
// durable answer path's latency distribution under concurrent writers —
// flat (per-append fsync, JSONL) against segmented (group commit, binary
// frames, compacted snapshot). Reproduce with the EXPERIMENTS.md "Storage
// engine" recipe.

// benchRecord builds the i-th synthetic probe record. Variables are
// pre-interned so both engines resolve every name on recovery.
func benchRecord(reg *boolexpr.Registry, i int) resolve.ProbeRecord {
	return resolve.ProbeRecord{
		Var:    reg.Intern("facts[" + strconv.Itoa(i%4096) + "]"),
		HasVar: true,
		Meta:   map[string]string{"i": strconv.Itoa(i), "source": "bench"},
		Answer: i%3 != 0,
	}
}

// buildFlatCrashState drives n records through the flat store and leaves
// it crash-closed: no snapshot, so the next open replays the full JSONL
// WAL — the flat engine's steady state, since it only snapshots on
// graceful shutdown.
func buildFlatCrashState(b *testing.B, dir string, reg *boolexpr.Registry, n int) {
	b.Helper()
	st, _, err := resolve.OpenStore(dir, reg.Name, func(s string) (boolexpr.Var, bool) { return reg.Lookup(s) })
	if err != nil {
		b.Fatal(err)
	}
	const batch = 1024
	recs := make([]resolve.ProbeRecord, 0, batch)
	for i := 0; i < n; i++ {
		recs = append(recs, benchRecord(reg, i))
		if len(recs) == batch || i == n-1 {
			if err := st.Append(recs...); err != nil {
				b.Fatal(err)
			}
			recs = recs[:0]
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
}

// buildSegmentedCrashState drives n records through the segmented store,
// folds all but the last 1% into the snapshot (what the background
// compactor maintains), and crash-closes: the next open loads the binary
// snapshot and replays only the tail.
func buildSegmentedCrashState(b *testing.B, dir string, reg *boolexpr.Registry, n int) {
	b.Helper()
	opts := Options{
		NameFn:    reg.Name,
		ResolveFn: func(s string) (boolexpr.Var, bool) { return reg.Lookup(s) },
	}
	st, repo, err := Open(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	snapAt := n - n/100 // last 1% stays in the WAL tail
	const batch = 1024
	recs := make([]resolve.ProbeRecord, 0, batch)
	flush := func() {
		if len(recs) == 0 {
			return
		}
		batchRecs := recs
		err := st.Update(func(ap func(...resolve.ProbeRecord) error) error {
			for _, r := range batchRecs {
				repo.AddVar(r.Var, r.Meta, r.Answer)
			}
			return ap(batchRecs...)
		})
		if err != nil {
			b.Fatal(err)
		}
		recs = recs[:0]
	}
	for i := 0; i < n; i++ {
		recs = append(recs, benchRecord(reg, i))
		if len(recs) == batch || i == n-1 || i == snapAt-1 {
			flush()
		}
		if i == snapAt-1 {
			if err := st.Snapshot(repo); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchSizes returns the probe counts to benchmark; the 1M point only runs
// when QRES_BENCH_BIG=1 (it builds ~100MB state and is far too slow for
// the CI bench-smoke step).
func benchSizes() []int {
	sizes := []int{10_000, 100_000}
	if os.Getenv("QRES_BENCH_BIG") == "1" {
		sizes = append(sizes, 1_000_000)
	}
	return sizes
}

func BenchmarkStoreRecovery(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(fmt.Sprintf("engine=flat/probes=%d", n), func(b *testing.B) {
			reg := boolexpr.NewRegistry()
			dir := b.TempDir()
			buildFlatCrashState(b, dir, reg, n)
			resolveFn := func(s string) (boolexpr.Var, bool) { return reg.Lookup(s) }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, repo, err := resolve.OpenStore(dir, reg.Name, resolveFn)
				if err != nil {
					b.Fatal(err)
				}
				if repo.Len() != n {
					b.Fatalf("recovered %d records, want %d", repo.Len(), n)
				}
				b.StopTimer()
				st.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(n), "tail_records")
		})
		b.Run(fmt.Sprintf("engine=segmented/probes=%d", n), func(b *testing.B) {
			reg := boolexpr.NewRegistry()
			dir := b.TempDir()
			buildSegmentedCrashState(b, dir, reg, n)
			opts := Options{
				NameFn:    reg.Name,
				ResolveFn: func(s string) (boolexpr.Var, bool) { return reg.Lookup(s) },
			}
			var tail int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, repo, err := Open(dir, opts)
				if err != nil {
					b.Fatal(err)
				}
				if repo.Len() != n {
					b.Fatalf("recovered %d records, want %d", repo.Len(), n)
				}
				tail = st.Stats().TailRecords
				b.StopTimer()
				st.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(tail), "tail_records")
		})
	}
}

// BenchmarkStoreAppend measures the durable answer path under concurrent
// writers: each op is one Update (repository add + WAL append + wait for
// durability), the per-op latency distribution is reported as p50/p99
// metrics. The flat engine pays one fsync per op inside the lock; the
// segmented engine group-commits, so concurrent ops share fsyncs.
func BenchmarkStoreAppend(b *testing.B) {
	const writers = 8
	run := func(b *testing.B, update func(i int) error) {
		latMu := sync.Mutex{}
		var lats []time.Duration
		var next int64
		b.SetParallelism(writers)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			local := make([]time.Duration, 0, 1024)
			for pb.Next() {
				latMu.Lock()
				i := int(next)
				next++
				latMu.Unlock()
				start := time.Now()
				if err := update(i); err != nil {
					b.Error(err)
					return
				}
				local = append(local, time.Since(start))
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		})
		b.StopTimer()
		if len(lats) == 0 {
			return
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p := func(q float64) float64 {
			idx := int(q * float64(len(lats)-1))
			return float64(lats[idx].Nanoseconds()) / 1e6
		}
		b.ReportMetric(p(0.50), "p50_ms")
		b.ReportMetric(p(0.99), "p99_ms")
	}

	b.Run("engine=flat", func(b *testing.B) {
		reg := boolexpr.NewRegistry()
		st, repo, err := resolve.OpenStore(b.TempDir(), reg.Name,
			func(s string) (boolexpr.Var, bool) { return reg.Lookup(s) })
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		run(b, func(i int) error {
			rec := benchRecord(reg, i)
			return st.Update(func(ap func(...resolve.ProbeRecord) error) error {
				repo.AddVar(rec.Var, rec.Meta, rec.Answer)
				return ap(rec)
			})
		})
	})
	b.Run("engine=segmented", func(b *testing.B) {
		reg := boolexpr.NewRegistry()
		st, repo, err := Open(b.TempDir(), Options{
			NameFn:    reg.Name,
			ResolveFn: func(s string) (boolexpr.Var, bool) { return reg.Lookup(s) },
		})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		run(b, func(i int) error {
			rec := benchRecord(reg, i)
			return st.Update(func(ap func(...resolve.ProbeRecord) error) error {
				repo.AddVar(rec.Var, rec.Meta, rec.Answer)
				return ap(rec)
			})
		})
	})
}

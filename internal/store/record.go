package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"qres/internal/boolexpr"
	"qres/internal/resolve"
)

// On-disk framing. Every segment and snapshot file is a sequence of
// frames:
//
//	[u32le payload length][u32le CRC-32C of payload][payload]
//
// The first payload byte is the frame type; the CRC covers the whole
// payload including it, so a flipped bit anywhere in a frame is detected.
// Frames are written whole (one buffered write per group-commit batch) and
// never split across segments, so a crash leaves at worst a torn suffix:
// a frame whose length prefix promises more bytes than the file holds, or
// whose CRC does not match because the tail was only partially persisted.

// Frame types.
const (
	frameSegmentHeader  = 0x01 // first frame of every WAL segment
	frameRecord         = 0x02 // one probe record
	frameSnapshotHeader = 0x03 // first frame of a snapshot file
)

// frameOverhead is the fixed per-frame cost: length + CRC prefixes.
const frameOverhead = 8

// maxFramePayload bounds a single frame; a length prefix beyond it is
// corruption (or garbage read as a length), never a real record.
const maxFramePayload = 16 << 20

// castagnoli is the CRC-32C table used for all frame checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptionError reports damaged store data with its location: the file,
// the byte offset of the damaged frame, and the index of the record it
// holds (relative to the start of the file; header frames don't count).
// Recovery returns it for damage it must not repair silently — anything
// other than a torn suffix of the live segment.
type CorruptionError struct {
	// Path is the damaged file.
	Path string
	// Offset is the byte offset of the damaged frame's first byte.
	Offset int64
	// Record is the zero-based index, within the file, of the record the
	// damaged frame would have held.
	Record int
	// Err is the underlying decode failure.
	Err error
}

// Error renders the location and cause.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("store: corrupt data in %s: record %d at byte offset %d: %v",
		e.Path, e.Record, e.Offset, e.Err)
}

// Unwrap exposes the underlying decode failure to errors.Is/As.
func (e *CorruptionError) Unwrap() error { return e.Err }

// appendFrame appends one frame with the given payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var pre [frameOverhead]byte
	binary.LittleEndian.PutUint32(pre[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(pre[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, pre[:]...)
	return append(buf, payload...)
}

// frameError distinguishes a torn suffix from in-place damage.
type frameError struct {
	torn bool // frame extends past EOF: the signature of a partial write
	err  error
}

func (e *frameError) Error() string { return e.err.Error() }

// readFrame decodes the frame starting at off, returning its payload and
// the offset of the next frame. Incomplete frames (length prefix promising
// bytes past EOF) report torn=true; CRC mismatches and insane lengths are
// plain errors, because a fully-present frame that fails its checksum may
// be either torn garbage or mid-file damage — the caller decides by
// looking at what follows.
func readFrame(data []byte, off int) (payload []byte, next int, ferr *frameError) {
	if len(data)-off < frameOverhead {
		return nil, 0, &frameError{torn: true, err: fmt.Errorf("truncated frame prefix (%d bytes)", len(data)-off)}
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	if n > maxFramePayload {
		return nil, 0, &frameError{err: fmt.Errorf("frame length %d exceeds limit", n)}
	}
	if len(data)-off-frameOverhead < n {
		return nil, 0, &frameError{torn: true, err: fmt.Errorf("frame promises %d payload bytes, file holds %d", n, len(data)-off-frameOverhead)}
	}
	want := binary.LittleEndian.Uint32(data[off+4 : off+8])
	payload = data[off+frameOverhead : off+frameOverhead+n]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, 0, &frameError{err: fmt.Errorf("frame CRC mismatch (got %08x, want %08x)", got, want)}
	}
	if n == 0 {
		return nil, 0, &frameError{err: fmt.Errorf("empty frame")}
	}
	return payload, off + frameOverhead + n, nil
}

// validFrameAt reports whether a well-formed frame starts at off. The
// recovery scan uses it to tell a torn suffix (no valid frame anywhere
// after the damage) from mid-file corruption (valid frames follow).
func validFrameAt(data []byte, off int) bool {
	_, _, ferr := readFrame(data, off)
	return ferr == nil
}

// record is the decoded on-disk form of one probe record. The variable is
// kept by registry name: names are the only identity that survives a
// restart (variable IDs are allocation order in the registry).
type record struct {
	varName string
	hasVar  bool
	answer  bool
	meta    map[string]string
}

// recordFromProbe converts an in-memory probe record for writing.
func recordFromProbe(rec resolve.ProbeRecord, name func(boolexpr.Var) string) record {
	r := record{answer: rec.Answer, meta: rec.Meta}
	if rec.HasVar && name != nil {
		r.varName = name(rec.Var)
		r.hasVar = true
	}
	return r
}

// apply adds the record to a repository, binding the variable name back
// through resolveFn when possible; unresolvable names degrade to
// metadata-only training records, exactly as the JSONL loader does.
func (r record) apply(repo *resolve.Repository, resolveFn func(string) (boolexpr.Var, bool)) {
	if r.hasVar && resolveFn != nil {
		if v, ok := resolveFn(r.varName); ok {
			repo.AddVar(v, r.meta, r.answer)
			return
		}
	}
	repo.Add(r.meta, r.answer)
}

// Record payload flag bits.
const (
	recFlagHasVar = 1 << 0
	recFlagAnswer = 1 << 1
)

// appendRecordPayload encodes a record payload:
//
//	0x02, flags, [uvarint len, varName], uvarint metaCount,
//	{uvarint len, key, uvarint len, value}*
//
// Metadata entries are written in sorted key order, making the encoding —
// and hence segment CRCs and sidecar byte counts — deterministic for a
// given record stream.
func appendRecordPayload(buf []byte, r record) []byte {
	flags := byte(0)
	if r.hasVar {
		flags |= recFlagHasVar
	}
	if r.answer {
		flags |= recFlagAnswer
	}
	buf = append(buf, frameRecord, flags)
	if r.hasVar {
		buf = appendString(buf, r.varName)
	}
	keys := make([]string, 0, len(r.meta))
	for k := range r.meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = appendString(buf, k)
		buf = appendString(buf, r.meta[k])
	}
	return buf
}

// appendString appends a uvarint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decodeRecordPayload parses a record payload (including its leading type
// byte, which the caller has already checked).
func decodeRecordPayload(payload []byte) (record, error) {
	if len(payload) < 2 || payload[0] != frameRecord {
		return record{}, fmt.Errorf("not a record payload")
	}
	flags := payload[1]
	rest := payload[2:]
	var r record
	r.answer = flags&recFlagAnswer != 0
	var err error
	if flags&recFlagHasVar != 0 {
		r.hasVar = true
		if r.varName, rest, err = takeString(rest); err != nil {
			return record{}, fmt.Errorf("record variable name: %w", err)
		}
	}
	count, rest, err := takeUvarint(rest)
	if err != nil {
		return record{}, fmt.Errorf("record meta count: %w", err)
	}
	if count > uint64(len(rest)) { // each entry needs >= 1 byte
		return record{}, fmt.Errorf("record meta count %d exceeds payload", count)
	}
	if count > 0 {
		r.meta = make(map[string]string, count)
	}
	for i := uint64(0); i < count; i++ {
		var k, v string
		if k, rest, err = takeString(rest); err != nil {
			return record{}, fmt.Errorf("record meta key: %w", err)
		}
		if v, rest, err = takeString(rest); err != nil {
			return record{}, fmt.Errorf("record meta value: %w", err)
		}
		r.meta[k] = v
	}
	if len(rest) != 0 {
		return record{}, fmt.Errorf("%d trailing bytes after record", len(rest))
	}
	return r, nil
}

// takeUvarint consumes one uvarint.
func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad uvarint")
	}
	return v, b[n:], nil
}

// takeString consumes one length-prefixed string.
func takeString(b []byte) (string, []byte, error) {
	n, rest, err := takeUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("string length %d exceeds payload", n)
	}
	return string(rest[:n]), rest[n:], nil
}

// segmentHeader is the first frame of every WAL segment, making segments
// self-describing: recovery learns the global index of a segment's first
// record from the segment itself, even when every sidecar and every older
// segment is gone.
type segmentHeader struct {
	seq        uint64 // segment sequence number (matches the file name)
	firstIndex uint64 // global record index of the segment's first record
}

// appendSegmentHeaderPayload encodes a segment header payload.
func appendSegmentHeaderPayload(buf []byte, h segmentHeader) []byte {
	buf = append(buf, frameSegmentHeader)
	buf = binary.LittleEndian.AppendUint64(buf, h.seq)
	return binary.LittleEndian.AppendUint64(buf, h.firstIndex)
}

// decodeSegmentHeaderPayload parses a segment header payload.
func decodeSegmentHeaderPayload(payload []byte) (segmentHeader, error) {
	if len(payload) != 17 || payload[0] != frameSegmentHeader {
		return segmentHeader{}, fmt.Errorf("not a segment header")
	}
	return segmentHeader{
		seq:        binary.LittleEndian.Uint64(payload[1:9]),
		firstIndex: binary.LittleEndian.Uint64(payload[9:17]),
	}, nil
}

// snapshotHeader is the first frame of a snapshot file.
type snapshotHeader struct {
	records uint64 // record frames that follow
}

// appendSnapshotHeaderPayload encodes a snapshot header payload.
func appendSnapshotHeaderPayload(buf []byte, h snapshotHeader) []byte {
	buf = append(buf, frameSnapshotHeader)
	return binary.LittleEndian.AppendUint64(buf, h.records)
}

// decodeSnapshotHeaderPayload parses a snapshot header payload.
func decodeSnapshotHeaderPayload(payload []byte) (snapshotHeader, error) {
	if len(payload) != 9 || payload[0] != frameSnapshotHeader {
		return snapshotHeader{}, fmt.Errorf("not a snapshot header")
	}
	return snapshotHeader{records: binary.LittleEndian.Uint64(payload[1:9])}, nil
}

// Package store is the probes repository's storage engine: a segmented,
// CRC-framed write-ahead log with group-committed fsyncs, background
// compaction into an atomic snapshot, and a block-index sidecar per sealed
// segment for sublinear recovery and cold lookups.
//
// It replaces the flat JSONL WAL (resolve.Store) behind the same
// Append/Update/Snapshot/recovery contract while changing the two costs
// that grow with recorded probes:
//
//   - Restart time. The flat store replays its entire log on every
//     recovery. Here, background compaction folds sealed segments into the
//     snapshot and deletes them, and the sidecar indexes let recovery skip
//     any remaining segment whose records the snapshot already covers
//     without reading it — so replay work tracks the un-snapshotted tail,
//     not total history. Records are framed in a compact binary encoding
//     that also decodes several times faster than JSONL.
//
//   - Answer-path latency. The flat store fsyncs inside every append.
//     Here appends from concurrent sessions coalesce into one fsync via a
//     commit queue drained by a single flusher goroutine (group commit);
//     each append still returns only after the batch holding its records
//     is durable, so the durability point — no acknowledged answer is ever
//     lost — is unchanged, but the fsync cost is shared across every
//     session that answered in the same window.
//
// Correctness rests on one alignment invariant: every repository add is
// paired with a WAL append inside a single Update call, so the i-th WAL
// record is the i-th repository record. A snapshot then captures the
// repository prefix and the WAL watermark (records enqueued so far) in one
// critical section, and recovery is exact by construction: load the
// snapshot, then replay only WAL records at or beyond the watermark.
// Repository mutations outside Update (e.g. seeding before serving) are
// durable from the next Snapshot on, exactly as with the flat store.
package store

import (
	"errors"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qres/internal/boolexpr"
	"qres/internal/resolve"
)

// ErrClosed is returned by appends after Close.
var ErrClosed = errors.New("store: closed")

// Store is a durable probes store. It is safe for concurrent use: any
// number of goroutines may call Update/Append while the background
// compactor (and explicit Snapshot calls) run.
type Store struct {
	dir       string
	segBytes  int64
	nameFn    func(boolexpr.Var) string
	resolveFn func(string) (boolexpr.Var, bool)
	met       *storeMetrics
	repo      *resolve.Repository

	// mu is the commit-order lock: {repository add + enqueue} under one
	// acquisition keeps WAL order identical to repository order, which is
	// what makes snapshot watermarks exact. The fsync happens outside it.
	mu     sync.Mutex
	flushC *sync.Cond
	queue  []*pendingBatch
	total  uint64 // global index of the next record to enqueue
	closed bool
	sticky error // first write fault; fails all subsequent appends

	// smu guards the segment inventory: sealed-segment metadata, the live
	// segment's counters, and the snapshot manifest.
	smu    sync.Mutex
	sealed []*segmentMeta
	active *activeSegment
	man    manifest

	// snapMu serializes Snapshot (explicit calls and the compactor).
	snapMu sync.Mutex

	flusherDone chan struct{}
	compactStop chan struct{}
	compactDone chan struct{}
	compactOnce sync.Once

	fsyncs      atomic.Int64
	batches     atomic.Int64
	compactions atomic.Int64
	compactErrs atomic.Int64
}

// pendingBatch is one Append's encoded records waiting in the commit
// queue. done receives the batch's sync verdict exactly once.
type pendingBatch struct {
	buf  []byte
	recs int
	vars []string
	done chan error
}

// activeSegment is the live WAL segment the flusher appends to.
type activeSegment struct {
	f          *os.File
	path       string
	seq        uint64
	firstIndex uint64
	records    uint64
	bytes      int64
	vars       map[string]struct{}
}

// Append durably logs newly answered probes, returning once every record
// is synced (possibly sharing its fsync with concurrent appends). As with
// the flat store, callers that may Snapshot concurrently must pair the
// repository add with the append inside one Update instead.
func (s *Store) Append(recs ...resolve.ProbeRecord) error {
	return s.Update(func(ap func(...resolve.ProbeRecord) error) error {
		return ap(recs...)
	})
}

// Update runs fn while holding the commit-order lock; fn receives an
// append function whose records enter the WAL in exactly the order the
// paired repository adds become visible. The enqueue returns immediately;
// Update itself returns only after every batch fn appended is fsynced, so
// the caller's durability point is unchanged while the fsync is shared
// with concurrent sessions (group commit).
func (s *Store) Update(fn func(appendFn func(...resolve.ProbeRecord) error) error) error {
	var waits []chan error
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.sticky != nil {
		err := s.sticky
		s.mu.Unlock()
		return err
	}
	err := fn(func(recs ...resolve.ProbeRecord) error {
		if len(recs) == 0 {
			return nil
		}
		b := s.encodeBatch(recs)
		s.queue = append(s.queue, b)
		s.total += uint64(len(recs))
		waits = append(waits, b.done)
		s.flushC.Signal()
		return nil
	})
	s.mu.Unlock()
	for _, ch := range waits {
		if werr := <-ch; werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// encodeBatch frames the records for the commit queue. Runs under mu; the
// binary encoding is cheap enough that holding the lock here is far below
// the fsync it replaces.
func (s *Store) encodeBatch(recs []resolve.ProbeRecord) *pendingBatch {
	b := &pendingBatch{recs: len(recs), done: make(chan error, 1)}
	scratch := make([]byte, 0, 256)
	for _, pr := range recs {
		rec := recordFromProbe(pr, s.nameFn)
		scratch = appendRecordPayload(scratch[:0], rec)
		b.buf = appendFrame(b.buf, scratch)
		if rec.hasVar {
			b.vars = append(b.vars, rec.varName)
		}
	}
	return b
}

// flushLoop is the single flusher goroutine: it drains the commit queue,
// writes every pending batch to the live segment in one write, fsyncs
// once, and wakes the waiters. Segment rotation happens here too, between
// batches, so records never split across segments.
func (s *Store) flushLoop() {
	defer close(s.flusherDone)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.flushC.Wait()
		}
		batches := s.queue
		s.queue = nil
		closed := s.closed
		s.mu.Unlock()
		if len(batches) > 0 {
			s.flushBatches(batches)
			continue // re-check the queue before honoring close
		}
		if closed {
			return
		}
	}
}

// flushBatches commits one drained queue: concatenated write, single
// fsync, waiter wakeup, then rotation if the live segment is full.
func (s *Store) flushBatches(batches []*pendingBatch) {
	s.mu.Lock()
	err := s.sticky
	s.mu.Unlock()
	recs := 0
	if err == nil {
		var buf []byte
		for _, b := range batches {
			buf = append(buf, b.buf...)
			recs += b.recs
		}
		if _, werr := s.active.f.Write(buf); werr != nil {
			err = werr
		} else {
			start := time.Now()
			err = s.active.f.Sync()
			d := time.Since(start)
			s.met.observeFsync(d.Seconds())
			s.fsyncs.Add(1)
		}
		if err == nil {
			s.batches.Add(1)
			s.met.observeBatch(float64(recs))
			s.smu.Lock()
			s.active.bytes += int64(len(buf))
			s.active.records += uint64(recs)
			for _, b := range batches {
				for _, v := range b.vars {
					s.active.vars[v] = struct{}{}
				}
			}
			full := s.active.bytes >= s.segBytes
			s.smu.Unlock()
			if full {
				err = s.rotate()
			}
		}
	}
	if err != nil {
		// A failed or partial write leaves the segment state unknown;
		// refuse further appends rather than risk interleaving garbage.
		s.mu.Lock()
		if s.sticky == nil {
			s.sticky = err
		}
		s.mu.Unlock()
	}
	for _, b := range batches {
		b.done <- err
	}
	s.publishGauges()
}

// rotate seals the live segment — final sync, sidecar block index, close —
// and opens the next one. Called from the flusher (between batches) and
// from recovery.
func (s *Store) rotate() error {
	s.smu.Lock()
	old := s.active
	meta := &segmentMeta{
		Seq:        old.seq,
		FirstIndex: old.firstIndex,
		Records:    old.records,
		Bytes:      old.bytes,
		Vars:       sortedVarSet(old.vars),
	}
	s.smu.Unlock()
	if err := old.f.Sync(); err != nil {
		return err
	}
	if err := writeSidecar(s.dir, meta); err != nil {
		return err
	}
	if err := old.f.Close(); err != nil {
		return err
	}
	next, err := createSegment(s.dir, old.seq+1, meta.endIndex())
	if err != nil {
		return err
	}
	s.smu.Lock()
	s.sealed = append(s.sealed, meta)
	s.active = next
	s.smu.Unlock()
	s.met.sealedInc()
	return nil
}

// sortedVarSet renders a variable-name set as the sorted slice the sidecar
// stores.
func sortedVarSet(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// WALRecords reports how many records the WAL holds beyond the snapshot —
// the replay work a restart right now would perform.
func (s *Store) WALRecords() int {
	s.mu.Lock()
	total := s.total
	s.mu.Unlock()
	s.smu.Lock()
	mark := s.man.WALWatermark
	s.smu.Unlock()
	if total < mark {
		return 0
	}
	return int(total - mark)
}

// Close stops the compactor, drains and commits every queued append, and
// closes the live segment without snapshotting (crash-equivalent shutdown:
// recovery replays the tail). Callers wanting a fast next restart call
// Snapshot first, as the server's graceful shutdown does.
func (s *Store) Close() error {
	s.stopCompactor()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.flusherDone
		return nil
	}
	s.closed = true
	s.flushC.Signal()
	s.mu.Unlock()
	<-s.flusherDone
	s.smu.Lock()
	f := s.active.f
	s.smu.Unlock()
	return f.Close()
}

// stopCompactor shuts the background compactor down idempotently.
func (s *Store) stopCompactor() {
	if s.compactStop == nil {
		return
	}
	s.compactOnce.Do(func() { close(s.compactStop) })
	<-s.compactDone
}

// Stats is a point-in-time description of the store, surfaced by the
// server's store-status endpoint and recorded by benchmarks.
type Stats struct {
	// Engine identifies the storage engine ("segmented").
	Engine string `json:"engine"`
	// Segments counts WAL segment files on disk, live one included.
	Segments int `json:"segments"`
	// SealedSegments counts immutable, sidecar-indexed segments.
	SealedSegments int `json:"sealed_segments"`
	// WALBytes is the total size of all WAL segments.
	WALBytes int64 `json:"wal_bytes"`
	// TailRecords is the replay work a restart would do now: records
	// beyond the snapshot watermark.
	TailRecords int `json:"tail_records"`
	// SnapshotRecords is the number of records the snapshot covers.
	SnapshotRecords uint64 `json:"snapshot_records"`
	// Fsyncs counts fsync calls issued by the flusher.
	Fsyncs int64 `json:"fsyncs"`
	// Batches counts group-commit batches; Fsyncs/Batches ≈ 1, while
	// records-per-batch measures how much coalescing concurrency bought.
	Batches int64 `json:"batches"`
	// Compactions counts completed snapshot folds; CompactionErrors counts
	// failed attempts (the store keeps serving on a failed compaction).
	Compactions      int64 `json:"compactions"`
	CompactionErrors int64 `json:"compaction_errors"`
}

// Stats snapshots the store's current state.
func (s *Store) Stats() Stats {
	st := Stats{
		Engine:           "segmented",
		TailRecords:      s.WALRecords(),
		Fsyncs:           s.fsyncs.Load(),
		Batches:          s.batches.Load(),
		Compactions:      s.compactions.Load(),
		CompactionErrors: s.compactErrs.Load(),
	}
	s.smu.Lock()
	defer s.smu.Unlock()
	st.SealedSegments = len(s.sealed)
	st.Segments = len(s.sealed) + 1
	st.WALBytes = s.active.bytes
	for _, m := range s.sealed {
		st.WALBytes += m.Bytes
	}
	st.SnapshotRecords = s.man.SnapshotRecords
	return st
}

// publishGauges refreshes the segment-count and byte gauges.
func (s *Store) publishGauges() {
	if !s.met.enabled() {
		return
	}
	s.smu.Lock()
	segs := len(s.sealed) + 1
	bytes := s.active.bytes
	for _, m := range s.sealed {
		bytes += m.Bytes
	}
	s.smu.Unlock()
	s.met.setSegments(float64(segs), float64(bytes))
}

package store

import (
	"bytes"
	"strings"
	"testing"

	"qres/internal/obs"
	"qres/internal/resolve"
)

func TestStoreMetricsReachThePrometheusSurface(t *testing.T) {
	// A store opened with a registry must land every store_* series on the
	// same text exposition the server's /metrics renders.
	env := newTestEnv()
	reg := obs.NewRegistry()
	st, repo, err := Open(t.TempDir(), Options{
		NameFn: env.opts.NameFn, ResolveFn: env.opts.ResolveFn,
		SegmentBytes: 256, // force a rotation so the sealed counter moves
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range env.probeSeq(30) {
		addOne(t, st, repo, rec)
	}
	if err := st.Snapshot(repo); err != nil {
		t.Fatal(err)
	}
	addOne(t, st, repo, resolve.ProbeRecord{Meta: map[string]string{"i": "tail"}, Answer: true})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := obs.WriteText(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"qres_store_fsync_seconds_count",
		"qres_store_fsync_seconds_sum",
		"qres_store_group_commit_batch_size_count",
		"qres_store_wal_segments",
		"qres_store_wal_bytes",
		"qres_store_snapshot_records 30",
		"qres_store_segments_sealed_total",
		"qres_store_compactions_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
}

func TestStoreWithoutRegistryIsSilent(t *testing.T) {
	// No registry: every metric call must be a safe no-op.
	env := newTestEnv()
	st, repo, err := Open(t.TempDir(), env.opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range env.probeSeq(5) {
		addOne(t, st, repo, rec)
	}
	if err := st.Snapshot(repo); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

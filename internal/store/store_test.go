package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"qres/internal/boolexpr"
	"qres/internal/resolve"
)

// testEnv bundles a registry with the Options every test store shares.
type testEnv struct {
	reg  *boolexpr.Registry
	opts Options
}

func newTestEnv() *testEnv {
	reg := boolexpr.NewRegistry()
	return &testEnv{
		reg: reg,
		opts: Options{
			NameFn:    reg.Name,
			ResolveFn: func(n string) (boolexpr.Var, bool) { return reg.Lookup(n) },
		},
	}
}

// addOne pairs one repository add with one WAL append inside a single
// Update, as the server's answer path does.
func addOne(t *testing.T, st *Store, repo *resolve.Repository, rec resolve.ProbeRecord) {
	t.Helper()
	err := st.Update(func(ap func(...resolve.ProbeRecord) error) error {
		if rec.HasVar {
			repo.AddVar(rec.Var, rec.Meta, rec.Answer)
		} else {
			repo.Add(rec.Meta, rec.Answer)
		}
		return ap(rec)
	})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
}

// probeSeq builds n distinct records, mixing variable-bound and
// metadata-only ones.
func (e *testEnv) probeSeq(n int) []resolve.ProbeRecord {
	recs := make([]resolve.ProbeRecord, n)
	for i := range recs {
		recs[i] = resolve.ProbeRecord{
			Meta:   map[string]string{"i": strconv.Itoa(i), "source": "test"},
			Answer: i%3 != 0,
		}
		if i%4 != 3 { // every fourth record is metadata-only
			recs[i].Var = e.reg.Intern(fmt.Sprintf("facts[%d]", i))
			recs[i].HasVar = true
		}
	}
	return recs
}

// saveBytes renders a repository through the canonical JSONL writer, the
// byte-level yardstick for recovery equivalence.
func saveBytes(t *testing.T, repo *resolve.Repository, name func(boolexpr.Var) string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := repo.SaveJSON(&buf, name); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStoreRoundTrip(t *testing.T) {
	env := newTestEnv()
	dir := t.TempDir()
	st, repo, err := Open(dir, env.opts)
	if err != nil {
		t.Fatal(err)
	}
	recs := env.probeSeq(20)
	for _, rec := range recs {
		addOne(t, st, repo, rec)
	}
	if got := st.WALRecords(); got != 20 {
		t.Errorf("WALRecords = %d, want 20", got)
	}
	want := saveBytes(t, repo, env.reg.Name)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-equivalent close: recovery replays the tail.
	st2, repo2, err := Open(dir, env.opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := saveBytes(t, repo2, env.reg.Name); !bytes.Equal(got, want) {
		t.Errorf("recovered repository differs:\ngot  %s\nwant %s", got, want)
	}
}

func TestRecoveryEquivalenceWithFlatStore(t *testing.T) {
	// The same probe stream driven through the flat resolve.Store and the
	// segmented store — including a mid-stream snapshot and a
	// crash-equivalent close — must recover to byte-identical
	// repositories.
	env := newTestEnv()
	recs := env.probeSeq(60)

	flatDir, segDir := t.TempDir(), t.TempDir()
	flat, flatRepo, err := resolve.OpenStore(flatDir, env.opts.NameFn, env.opts.ResolveFn)
	if err != nil {
		t.Fatal(err)
	}
	seg, segRepo, err := Open(segDir, Options{
		NameFn: env.opts.NameFn, ResolveFn: env.opts.ResolveFn,
		SegmentBytes: 512, // force several rotations
	})
	if err != nil {
		t.Fatal(err)
	}

	for i, rec := range recs {
		rec := rec
		if err := flat.Update(func(ap func(...resolve.ProbeRecord) error) error {
			if rec.HasVar {
				flatRepo.AddVar(rec.Var, rec.Meta, rec.Answer)
			} else {
				flatRepo.Add(rec.Meta, rec.Answer)
			}
			return ap(rec)
		}); err != nil {
			t.Fatal(err)
		}
		addOne(t, seg, segRepo, rec)
		if i == 40 { // snapshot mid-stream in both engines
			if err := flat.Snapshot(flatRepo); err != nil {
				t.Fatal(err)
			}
			if err := seg.Snapshot(segRepo); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := flat.Close(); err != nil {
		t.Fatal(err)
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}

	_, flatBack, err := resolve.OpenStore(flatDir, env.opts.NameFn, env.opts.ResolveFn)
	if err != nil {
		t.Fatal(err)
	}
	seg2, segBack, err := Open(segDir, env.opts)
	if err != nil {
		t.Fatal(err)
	}
	defer seg2.Close()

	flatBytes := saveBytes(t, flatBack, env.reg.Name)
	segBytes := saveBytes(t, segBack, env.reg.Name)
	if !bytes.Equal(flatBytes, segBytes) {
		t.Errorf("engines diverge after recovery:\nflat %s\nseg  %s", flatBytes, segBytes)
	}
}

func TestGroupCommitDurability(t *testing.T) {
	// Concurrent answer paths: every Update that returned must survive a
	// crash-equivalent close, and the concurrent appends should have
	// shared fsyncs.
	env := newTestEnv()
	dir := t.TempDir()
	st, repo, err := Open(dir, env.opts)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := resolve.ProbeRecord{
					Meta:   map[string]string{"w": strconv.Itoa(w), "i": strconv.Itoa(i)},
					Answer: true,
				}
				err := st.Update(func(ap func(...resolve.ProbeRecord) error) error {
					repo.Add(rec.Meta, rec.Answer)
					return ap(rec)
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Fsyncs == 0 || stats.Fsyncs > writers*perWriter {
		t.Errorf("Fsyncs = %d, want in [1, %d]", stats.Fsyncs, writers*perWriter)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, repo2, err := Open(dir, env.opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := repo2.Len(); got != writers*perWriter {
		t.Errorf("recovered %d records, want %d (acked appends lost)", got, writers*perWriter)
	}
}

func TestSnapshotCompactsSealedSegments(t *testing.T) {
	env := newTestEnv()
	dir := t.TempDir()
	st, repo, err := Open(dir, Options{
		NameFn: env.opts.NameFn, ResolveFn: env.opts.ResolveFn,
		SegmentBytes: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range env.probeSeq(50) {
		addOne(t, st, repo, rec)
	}
	before := st.Stats()
	if before.SealedSegments == 0 {
		t.Fatalf("no rotation at SegmentBytes=256 after 50 records")
	}
	if err := st.Snapshot(repo); err != nil {
		t.Fatal(err)
	}
	after := st.Stats()
	if after.SealedSegments != 0 {
		t.Errorf("SealedSegments = %d after snapshot, want 0", after.SealedSegments)
	}
	if after.SnapshotRecords != 50 {
		t.Errorf("SnapshotRecords = %d, want 50", after.SnapshotRecords)
	}
	if got := st.WALRecords(); got != 0 {
		t.Errorf("WALRecords = %d after snapshot, want 0", got)
	}
	// Records appended after the snapshot are tail-only replay work.
	addOne(t, st, repo, resolve.ProbeRecord{Meta: map[string]string{"i": "tail"}, Answer: true})
	if got := st.WALRecords(); got != 1 {
		t.Errorf("WALRecords = %d after post-snapshot append, want 1", got)
	}
	want := saveBytes(t, repo, env.reg.Name)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, repo2, err := Open(dir, env.opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := saveBytes(t, repo2, env.reg.Name); !bytes.Equal(got, want) {
		t.Errorf("post-compaction recovery differs:\ngot  %s\nwant %s", got, want)
	}
}

func TestBackgroundCompactorFoldsSealedSegments(t *testing.T) {
	env := newTestEnv()
	dir := t.TempDir()
	st, repo, err := Open(dir, Options{
		NameFn: env.opts.NameFn, ResolveFn: env.opts.ResolveFn,
		SegmentBytes:    256,
		CompactInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, rec := range env.probeSeq(50) {
		addOne(t, st, repo, rec)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats := st.Stats()
		if stats.Compactions > 0 && stats.SealedSegments == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compactor never folded sealed segments: %+v", stats)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Appends keep working while and after compaction runs.
	addOne(t, st, repo, resolve.ProbeRecord{Meta: map[string]string{"i": "post"}, Answer: true})
}

func TestRecoverySkipsCoveredSegmentsWithoutReadingThem(t *testing.T) {
	// The block-index skip is what makes restart sublinear: a sealed
	// segment whose sidecar proves it is below the snapshot watermark is
	// never read. Left-over covered segments (best-effort deletes) are
	// fine even when their contents are garbage.
	env := newTestEnv()
	dir := t.TempDir()
	st, repo, err := Open(dir, Options{
		NameFn: env.opts.NameFn, ResolveFn: env.opts.ResolveFn,
		SegmentBytes: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range env.probeSeq(40) {
		addOne(t, st, repo, rec)
	}
	// Capture a sealed segment + sidecar, snapshot (which deletes it),
	// then restore the pair with the segment body replaced by garbage.
	seqs, err := listSegments(dir)
	if err != nil || len(seqs) < 2 {
		t.Fatalf("want >= 2 segments, got %v (err %v)", seqs, err)
	}
	coveredSeq := seqs[0]
	sidecar, rerr := os.ReadFile(sidecarPath(dir, coveredSeq))
	if rerr != nil {
		t.Fatal(rerr)
	}
	if err := st.Snapshot(repo); err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, repo, env.reg.Name)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segmentPath(dir, coveredSeq), []byte("garbage, never read"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sidecarPath(dir, coveredSeq), sidecar, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, repo2, err := Open(dir, env.opts)
	if err != nil {
		t.Fatalf("recovery read a snapshot-covered segment: %v", err)
	}
	defer st2.Close()
	if got := saveBytes(t, repo2, env.reg.Name); !bytes.Equal(got, want) {
		t.Errorf("recovery differs:\ngot  %s\nwant %s", got, want)
	}
	if fileExists(segmentPath(dir, coveredSeq)) {
		t.Errorf("covered leftover segment %d not reaped", coveredSeq)
	}
}

func TestMidSegmentCorruptionIsLocated(t *testing.T) {
	env := newTestEnv()
	dir := t.TempDir()
	st, repo, err := Open(dir, env.opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range env.probeSeq(10) {
		addOne(t, st, repo, rec)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle of the live segment: CRC fails
	// there, well-formed frames follow, so this is mid-file damage —
	// reported with file, offset, and record index, never repaired.
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := segmentPath(dir, seqs[len(seqs)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mid := len(data) / 2
	data[mid] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir, env.opts)
	if err == nil {
		t.Fatal("mid-segment corruption accepted")
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v (type %T) does not wrap *CorruptionError", err, err)
	}
	if ce.Path != path {
		t.Errorf("Path = %q, want %q", ce.Path, path)
	}
	if ce.Offset <= 0 || ce.Offset >= int64(len(data)) {
		t.Errorf("Offset = %d, want within (0, %d)", ce.Offset, len(data))
	}
	if ce.Record < 0 || ce.Record >= 10 {
		t.Errorf("Record = %d, want within [0, 10)", ce.Record)
	}
}

func TestLegacyFlatStoreMigration(t *testing.T) {
	// A directory written by the flat resolve.Store — snapshot plus WAL
	// tail — is migrated in place on first open and never consulted
	// again.
	env := newTestEnv()
	dir := t.TempDir()
	flat, flatRepo, err := resolve.OpenStore(dir, env.opts.NameFn, env.opts.ResolveFn)
	if err != nil {
		t.Fatal(err)
	}
	recs := env.probeSeq(30)
	for i, rec := range recs {
		rec := rec
		if err := flat.Update(func(ap func(...resolve.ProbeRecord) error) error {
			if rec.HasVar {
				flatRepo.AddVar(rec.Var, rec.Meta, rec.Answer)
			} else {
				flatRepo.Add(rec.Meta, rec.Answer)
			}
			return ap(rec)
		}); err != nil {
			t.Fatal(err)
		}
		if i == 20 {
			if err := flat.Snapshot(flatRepo); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := saveBytes(t, flatRepo, env.reg.Name)
	if err := flat.Close(); err != nil {
		t.Fatal(err)
	}

	st, repo, err := Open(dir, env.opts)
	if err != nil {
		t.Fatalf("migration: %v", err)
	}
	if got := saveBytes(t, repo, env.reg.Name); !bytes.Equal(got, want) {
		t.Errorf("migrated repository differs:\ngot  %s\nwant %s", got, want)
	}
	for _, name := range []string{legacySnapshotFile, legacyWALFile} {
		if fileExists(filepath.Join(dir, name)) {
			t.Errorf("legacy file %s survived migration", name)
		}
	}
	// Keep using the migrated store, then recover once more.
	addOne(t, st, repo, resolve.ProbeRecord{Meta: map[string]string{"i": "post"}, Answer: false})
	want = saveBytes(t, repo, env.reg.Name)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, repo2, err := Open(dir, env.opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := saveBytes(t, repo2, env.reg.Name); !bytes.Equal(got, want) {
		t.Errorf("post-migration recovery differs:\ngot  %s\nwant %s", got, want)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	env := newTestEnv()
	st, _, err := Open(t.TempDir(), env.opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	err = st.Append(resolve.ProbeRecord{Meta: map[string]string{"i": "late"}, Answer: true})
	if !errors.Is(err, ErrClosed) {
		t.Errorf("append after close: err = %v, want ErrClosed", err)
	}
}

package oracle

import (
	"sync"
	"testing"
	"time"

	"qres/internal/boolexpr"
)

func groundTruth(n int, value func(int) bool) *boolexpr.Valuation {
	val := boolexpr.NewValuation()
	for i := 0; i < n; i++ {
		val.Set(boolexpr.Var(i), value(i))
	}
	return val
}

func TestGroundTruth(t *testing.T) {
	o := NewGroundTruth(groundTruth(4, func(i int) bool { return i%2 == 0 }))
	for i := 0; i < 4; i++ {
		got, err := o.Probe(boolexpr.Var(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != (i%2 == 0) {
			t.Errorf("Probe(%d) = %t", i, got)
		}
	}
	if _, err := o.Probe(boolexpr.Var(99)); err == nil {
		t.Error("probe outside the valuation must fail")
	}
}

func TestRecorder(t *testing.T) {
	o := NewGroundTruth(groundTruth(8, func(int) bool { return true }))
	r := NewRecorder(o)
	for i := 7; i >= 0; i-- {
		if _, err := r.Probe(boolexpr.Var(i)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Count() != 8 {
		t.Fatalf("Count = %d", r.Count())
	}
	probes := r.Probes()
	if probes[0] != 7 || probes[7] != 0 {
		t.Errorf("order not preserved: %v", probes)
	}
	// Failed probes are not recorded.
	if _, err := r.Probe(boolexpr.Var(99)); err == nil {
		t.Fatal("expected error")
	}
	if r.Count() != 8 {
		t.Error("failed probe was recorded")
	}
	// Returned slice is a copy.
	probes[0] = 42
	if r.Probes()[0] == 42 {
		t.Error("Probes leaked internal state")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	o := NewGroundTruth(groundTruth(64, func(int) bool { return true }))
	r := NewRecorder(o)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := r.Probe(boolexpr.Var(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if r.Count() != 64 {
		t.Fatalf("Count = %d", r.Count())
	}
}

func TestNoisyRates(t *testing.T) {
	truth := groundTruth(2000, func(int) bool { return true })

	// Rate 0: transparent.
	clean := NewNoisy(NewGroundTruth(truth), 0, 1)
	for i := 0; i < 100; i++ {
		got, err := clean.Probe(boolexpr.Var(i))
		if err != nil || !got {
			t.Fatal("rate-0 noisy oracle flipped an answer")
		}
	}
	// Rate 1: always flipped.
	always := NewNoisy(NewGroundTruth(truth), 1, 1)
	for i := 0; i < 100; i++ {
		if got, _ := always.Probe(boolexpr.Var(i)); got {
			t.Fatal("rate-1 noisy oracle did not flip")
		}
	}
	// Rate 0.3: empirical flip fraction within a loose tolerance.
	noisy := NewNoisy(NewGroundTruth(truth), 0.3, 7)
	flips := 0
	for i := 0; i < 2000; i++ {
		if got, _ := noisy.Probe(boolexpr.Var(i)); !got {
			flips++
		}
	}
	if frac := float64(flips) / 2000; frac < 0.2 || frac > 0.4 {
		t.Errorf("flip fraction = %f, want ~0.3", frac)
	}
	// Errors pass through unflipped.
	if _, err := noisy.Probe(boolexpr.Var(9999)); err == nil {
		t.Error("expected error")
	}
}

func TestNoisyDeterministic(t *testing.T) {
	truth := groundTruth(100, func(int) bool { return true })
	a := NewNoisy(NewGroundTruth(truth), 0.5, 99)
	b := NewNoisy(NewGroundTruth(truth), 0.5, 99)
	for i := 0; i < 100; i++ {
		av, _ := a.Probe(boolexpr.Var(i))
		bv, _ := b.Probe(boolexpr.Var(i))
		if av != bv {
			t.Fatal("same seed must flip identically")
		}
	}
}

func TestLatency(t *testing.T) {
	truth := groundTruth(4, func(int) bool { return true })
	delay := 5 * time.Millisecond
	o := NewLatency(NewGroundTruth(truth), delay)
	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := o.Probe(boolexpr.Var(i)); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 4*delay {
		t.Errorf("4 probes took %v, want >= %v", elapsed, 4*delay)
	}
}

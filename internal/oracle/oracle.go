// Package oracle provides implementations of the resolution framework's
// oracle abstraction (paper Section 2.2): a probe reveals the ground-truth
// correctness val*(x) of the tuple labeled by a variable. In practice an
// oracle is a data expert, a crowdsourcing platform or a high-quality
// external source; here the ground truth comes from generated valuations,
// with wrappers simulating the operational properties of human oracles —
// recording, noise (Section 9's future-work discussion) and latency.
package oracle

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"qres/internal/boolexpr"
)

// GroundTruth answers probes from a total valuation val*. It is safe for
// concurrent use (the valuation is only read).
type GroundTruth struct {
	val *boolexpr.Valuation
}

// NewGroundTruth wraps a total valuation as an oracle.
func NewGroundTruth(val *boolexpr.Valuation) *GroundTruth {
	return &GroundTruth{val: val}
}

// Probe returns val*(v). Probing a variable outside the valuation is an
// error: it indicates the caller selected a probe that does not correspond
// to any tuple.
func (o *GroundTruth) Probe(v boolexpr.Var) (bool, error) {
	answer, ok := o.val.Get(v)
	if !ok {
		return false, fmt.Errorf("oracle: no ground truth for variable %d", v)
	}
	return answer, nil
}

// Recorder wraps an oracle and records every probe in order, with a
// concurrency-safe counter. Experiments use it to assert probe budgets and
// to replay probe sequences.
type Recorder struct {
	inner interface {
		Probe(boolexpr.Var) (bool, error)
	}
	mu     sync.Mutex
	probes []boolexpr.Var
}

// NewRecorder wraps inner.
func NewRecorder(inner interface {
	Probe(boolexpr.Var) (bool, error)
}) *Recorder {
	return &Recorder{inner: inner}
}

// Probe delegates and records.
func (r *Recorder) Probe(v boolexpr.Var) (bool, error) {
	answer, err := r.inner.Probe(v)
	if err != nil {
		return false, err
	}
	r.mu.Lock()
	r.probes = append(r.probes, v)
	r.mu.Unlock()
	return answer, nil
}

// Count returns the number of successful probes so far.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.probes)
}

// Probes returns a copy of the probe sequence.
func (r *Recorder) Probes() []boolexpr.Var {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]boolexpr.Var(nil), r.probes...)
}

// Noisy wraps an oracle and flips each answer independently with a fixed
// error rate, modeling the erroneous/noisy oracles discussed in the
// paper's Section 9. Deterministic in the seed; safe for concurrent use.
type Noisy struct {
	inner interface {
		Probe(boolexpr.Var) (bool, error)
	}
	rate float64
	mu   sync.Mutex
	rng  *rand.Rand
}

// NewNoisy wraps inner with the given flip probability.
func NewNoisy(inner interface {
	Probe(boolexpr.Var) (bool, error)
}, rate float64, seed int64) *Noisy {
	return &Noisy{inner: inner, rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Probe delegates, then flips the answer with probability rate.
func (n *Noisy) Probe(v boolexpr.Var) (bool, error) {
	answer, err := n.inner.Probe(v)
	if err != nil {
		return false, err
	}
	n.mu.Lock()
	flip := n.rng.Float64() < n.rate
	n.mu.Unlock()
	if flip {
		answer = !answer
	}
	return answer, nil
}

// Latency wraps an oracle and sleeps for a fixed delay per probe,
// simulating human answer latency; the parallel-resolution example uses it
// to demonstrate the latency win of component-parallel probing.
type Latency struct {
	inner interface {
		Probe(boolexpr.Var) (bool, error)
	}
	delay time.Duration
}

// NewLatency wraps inner with a per-probe delay.
func NewLatency(inner interface {
	Probe(boolexpr.Var) (bool, error)
}, delay time.Duration) *Latency {
	return &Latency{inner: inner, delay: delay}
}

// Probe sleeps, then delegates.
func (l *Latency) Probe(v boolexpr.Var) (bool, error) {
	time.Sleep(l.delay)
	return l.inner.Probe(v)
}

// Package uncertain implements the uncertain-database model of the paper
// (Section 2.1): a relational database D together with a set X of Boolean
// random variables and an injective labeling L mapping each tuple to the
// variable standing for the event that the tuple is correct. A truth
// valuation of X yields a possible world — the sub-database of tuples whose
// variables are True.
//
// The package also provides ground-truth generators (Section 7.1): the
// paper evaluates on data with manual labels (NELL) and on synthetic labels
// drawn either with a fixed probability or from a hidden random decision
// tree over tuple metadata, which makes correctness learnable from
// metadata, exactly the structure the framework's Learner exploits.
package uncertain

import (
	"fmt"

	"qres/internal/boolexpr"
	"qres/internal/table"
)

// TupleRef addresses one tuple of one relation.
type TupleRef struct {
	Relation string // canonical (lower-case) relation name
	Index    int    // dense tuple index within the relation
}

// DB is an uncertain database: relational data plus the variable labeling
// L. Constructing a DB allocates one Boolean variable per tuple, named
// "<relation>[<index>]".
type DB struct {
	data *table.Database
	reg  *boolexpr.Registry
	vars map[string][]boolexpr.Var // relation name -> per-tuple variables
	refs []TupleRef                // Var -> tuple (inverse of L)
}

// New annotates every tuple of data with a fresh Boolean variable and
// returns the uncertain database.
func New(data *table.Database) *DB {
	db := &DB{
		data: data,
		reg:  boolexpr.NewRegistry(),
		vars: make(map[string][]boolexpr.Var),
	}
	for _, name := range data.Names() {
		rel, _ := data.Relation(name)
		vs := make([]boolexpr.Var, rel.Len())
		for i := 0; i < rel.Len(); i++ {
			v := db.reg.Intern(fmt.Sprintf("%s[%d]", name, i))
			vs[i] = v
			db.refs = append(db.refs, TupleRef{Relation: name, Index: i})
		}
		db.vars[name] = vs
	}
	return db
}

// Data returns the underlying relational database.
func (db *DB) Data() *table.Database { return db.data }

// Registry returns the variable registry (for rendering provenance).
func (db *DB) Registry() *boolexpr.Registry { return db.reg }

// NumVars returns |X|, the number of tuple variables.
func (db *DB) NumVars() int { return len(db.refs) }

// VarFor returns L(t) for the tuple at index idx of the named relation.
func (db *DB) VarFor(relation string, idx int) (boolexpr.Var, bool) {
	rel, ok := db.data.Relation(relation)
	if !ok || idx < 0 || idx >= rel.Len() {
		return 0, false
	}
	// The vars map is keyed by the canonical names returned by Names().
	for name, vs := range db.vars {
		r, _ := db.data.Relation(name)
		if r == rel {
			return vs[idx], true
		}
	}
	return 0, false
}

// RefFor returns the tuple labeled by v (the inverse of L).
func (db *DB) RefFor(v boolexpr.Var) (TupleRef, bool) {
	if int(v) < 0 || int(v) >= len(db.refs) {
		return TupleRef{}, false
	}
	return db.refs[v], true
}

// TupleFor returns the tuple labeled by v.
func (db *DB) TupleFor(v boolexpr.Var) (table.Tuple, bool) {
	ref, ok := db.RefFor(v)
	if !ok {
		return nil, false
	}
	rel, _ := db.data.Relation(ref.Relation)
	return rel.At(ref.Index), true
}

// MetaFor returns the metadata of the tuple labeled by v, always including
// the derived attribute "rel_name" (the paper's Example 4.1 lists relation
// name as metadata derivable from the data itself). The stored metadata is
// not modified.
func (db *DB) MetaFor(v boolexpr.Var) table.Metadata {
	ref, ok := db.RefFor(v)
	if !ok {
		return nil
	}
	rel, _ := db.data.Relation(ref.Relation)
	stored := rel.MetaAt(ref.Index)
	out := make(table.Metadata, len(stored)+1)
	for k, val := range stored {
		out[k] = val
	}
	out["rel_name"] = ref.Relation
	return out
}

// Vars returns the variables of one relation, aligned with tuple indices.
func (db *DB) Vars(relation string) []boolexpr.Var {
	rel, ok := db.data.Relation(relation)
	if !ok {
		return nil
	}
	for name, vs := range db.vars {
		r, _ := db.data.Relation(name)
		if r == rel {
			return vs
		}
	}
	return nil
}

// AllVars returns every tuple variable, in allocation order.
func (db *DB) AllVars() []boolexpr.Var {
	out := make([]boolexpr.Var, len(db.refs))
	for i := range db.refs {
		out[i] = boolexpr.Var(i)
	}
	return out
}

// PossibleWorld materializes D_val: the sub-database containing exactly the
// tuples whose variables are assigned True (Definition 2.2). Unassigned
// variables are treated as False. Metadata is carried over; tuple indices
// change, so the world is a plain relational database, not an uncertain one.
func (db *DB) PossibleWorld(val *boolexpr.Valuation) *table.Database {
	world := table.NewDatabase()
	for _, name := range db.data.Names() {
		rel, _ := db.data.Relation(name)
		out := table.NewRelation(rel.Name(), rel.Schema())
		for i := 0; i < rel.Len(); i++ {
			if value, ok := val.Get(db.vars[name][i]); ok && value {
				out.MustAppend(rel.At(i), rel.MetaAt(i))
			}
		}
		world.MustAdd(out)
	}
	return world
}

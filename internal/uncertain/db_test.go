package uncertain

import (
	"testing"

	"qres/internal/boolexpr"
	"qres/internal/table"
)

// paperDB builds the example database of the paper's Table 1.
func paperDB() *table.Database {
	db := table.NewDatabase()

	acq := table.NewRelation("Acquisitions", table.NewSchema(
		table.Column{Name: "Acquired", Kind: table.KindString},
		table.Column{Name: "Acquiring", Kind: table.KindString},
		table.Column{Name: "Date", Kind: table.KindDate},
	))
	acq.MustAppend(table.Tuple{table.String_("A2Bdone"), table.String_("Zazzer"), table.Date(2020, 11, 7)},
		table.Metadata{"source": "example.com"})
	acq.MustAppend(table.Tuple{table.String_("microBarg"), table.String_("Fiffer"), table.Date(2017, 5, 1)}, nil)
	acq.MustAppend(table.Tuple{table.String_("fPharm"), table.String_("Fiffer"), table.Date(2016, 2, 1)}, nil)
	acq.MustAppend(table.Tuple{table.String_("Optobest"), table.String_("microBarg"), table.Date(2015, 8, 8)}, nil)
	db.MustAdd(acq)

	roles := table.NewRelation("Roles", table.NewSchema(
		table.Column{Name: "Organization", Kind: table.KindString},
		table.Column{Name: "Role", Kind: table.KindString},
		table.Column{Name: "Member", Kind: table.KindString},
	))
	for _, row := range [][3]string{
		{"A2Bdone", "Founder", "Usha Koirala"},
		{"A2Bdone", "Founding member", "Pavel Lebedev"},
		{"A2Bdone", "Founding member", "Nana Alvi"},
		{"microBarg", "Co-founder", "Nana Alvi"},
		{"microBarg", "Co-founder", "Gao Yawen"},
		{"microBarg", "CTO", "Amaal Kader"},
	} {
		roles.MustAppend(table.Tuple{table.String_(row[0]), table.String_(row[1]), table.String_(row[2])}, nil)
	}
	db.MustAdd(roles)

	edu := table.NewRelation("Education", table.NewSchema(
		table.Column{Name: "Alumni", Kind: table.KindString},
		table.Column{Name: "Institute", Kind: table.KindString},
		table.Column{Name: "Year", Kind: table.KindInt},
	))
	for _, row := range []struct {
		a, i string
		y    int64
	}{
		{"Usha Koirala", "U. Melbourne", 2017},
		{"Pavel Lebedev", "U. Melbourne", 2017},
		{"Nana Alvi", "U. Sau Paolo", 2010},
		{"Nana Alvi", "U. Melbourne", 2017},
		{"Gao Yawen", "U. Sau Paolo", 2010},
		{"Amaal Kader", "U. Cape Town", 2005},
	} {
		edu.MustAppend(table.Tuple{table.String_(row.a), table.String_(row.i), table.Int(row.y)}, nil)
	}
	db.MustAdd(edu)
	return db
}

func TestNewAnnotatesEveryTuple(t *testing.T) {
	udb := New(paperDB())
	if udb.NumVars() != 16 { // 4 + 6 + 6
		t.Fatalf("NumVars = %d, want 16", udb.NumVars())
	}
	v, ok := udb.VarFor("Acquisitions", 0)
	if !ok {
		t.Fatal("VarFor failed")
	}
	ref, ok := udb.RefFor(v)
	if !ok || ref.Relation != "acquisitions" || ref.Index != 0 {
		t.Fatalf("RefFor = %+v", ref)
	}
	tup, ok := udb.TupleFor(v)
	if !ok || tup[0].AsString() != "A2Bdone" {
		t.Fatalf("TupleFor = %v", tup)
	}
	// Variables are distinct across tuples (L is injective).
	seen := make(map[boolexpr.Var]bool)
	for _, name := range udb.Data().Names() {
		for i, vv := range udb.Vars(name) {
			if seen[vv] {
				t.Fatalf("variable reused for %s[%d]", name, i)
			}
			seen[vv] = true
		}
	}
}

func TestVarForOutOfRange(t *testing.T) {
	udb := New(paperDB())
	if _, ok := udb.VarFor("Acquisitions", 99); ok {
		t.Error("out-of-range index accepted")
	}
	if _, ok := udb.VarFor("Nope", 0); ok {
		t.Error("unknown relation accepted")
	}
	if _, ok := udb.RefFor(boolexpr.Var(9999)); ok {
		t.Error("unknown var accepted")
	}
}

func TestMetaForAddsRelName(t *testing.T) {
	udb := New(paperDB())
	v, _ := udb.VarFor("Acquisitions", 0)
	meta := udb.MetaFor(v)
	if meta["rel_name"] != "acquisitions" {
		t.Errorf("rel_name = %q", meta["rel_name"])
	}
	if meta["source"] != "example.com" {
		t.Errorf("source = %q", meta["source"])
	}
	// Stored metadata must not be mutated.
	rel, _ := udb.Data().Relation("Acquisitions")
	if _, has := rel.MetaAt(0)["rel_name"]; has {
		t.Error("MetaFor mutated stored metadata")
	}
}

func TestPossibleWorld(t *testing.T) {
	udb := New(paperDB())
	val := boolexpr.NewValuation()
	// Only the first Acquisitions tuple and the first Roles tuple correct.
	a0, _ := udb.VarFor("Acquisitions", 0)
	r0, _ := udb.VarFor("Roles", 0)
	val.Set(a0, true)
	val.Set(r0, true)
	// Explicit False and unassigned must behave identically.
	a1, _ := udb.VarFor("Acquisitions", 1)
	val.Set(a1, false)

	world := udb.PossibleWorld(val)
	acq, _ := world.Relation("Acquisitions")
	if acq.Len() != 1 || acq.At(0)[0].AsString() != "A2Bdone" {
		t.Fatalf("world Acquisitions = %d tuples", acq.Len())
	}
	roles, _ := world.Relation("Roles")
	if roles.Len() != 1 {
		t.Fatalf("world Roles = %d tuples", roles.Len())
	}
	edu, _ := world.Relation("Education")
	if edu.Len() != 0 {
		t.Fatalf("world Education = %d tuples", edu.Len())
	}
	if world.TotalTuples() != 2 {
		t.Fatalf("TotalTuples = %d", world.TotalTuples())
	}
}

func TestGenerateFixedDeterministic(t *testing.T) {
	udb := New(paperDB())
	a := GenerateFixed(udb, 0.5, 42)
	b := GenerateFixed(udb, 0.5, 42)
	for _, v := range udb.AllVars() {
		av, aok := a.Val.Get(v)
		bv, bok := b.Val.Get(v)
		if !aok || !bok || av != bv {
			t.Fatal("same seed must give identical ground truth")
		}
		if a.Prob[v] != 0.5 {
			t.Fatalf("Prob = %f", a.Prob[v])
		}
	}
	c := GenerateFixed(udb, 0.5, 43)
	diff := false
	for _, v := range udb.AllVars() {
		av, _ := a.Val.Get(v)
		cv, _ := c.Val.Get(v)
		if av != cv {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds should (with high probability) differ")
	}
}

func TestGenerateFixedExtremes(t *testing.T) {
	udb := New(paperDB())
	all := GenerateFixed(udb, 1.0, 1)
	none := GenerateFixed(udb, 0.0, 1)
	for _, v := range udb.AllVars() {
		if tv, _ := all.Val.Get(v); !tv {
			t.Fatal("p=1 must set every variable True")
		}
		if fv, _ := none.Val.Get(v); fv {
			t.Fatal("p=0 must set every variable False")
		}
	}
}

func TestDecisionTreeDeterministicAndBounded(t *testing.T) {
	attrs := []string{"source", "rel_name", "category"}
	t1 := NewDecisionTree(attrs, 4, 7)
	t2 := NewDecisionTree(attrs, 4, 7)
	metas := []map[string]string{
		{"source": "a.com", "rel_name": "acquisitions"},
		{"source": "b.com", "category": "sports"},
		{},
	}
	for _, m := range metas {
		p1, p2 := t1.Probability(m), t2.Probability(m)
		if p1 != p2 {
			t.Fatal("tree not deterministic in seed")
		}
		if p1 < 0.05 || p1 > 0.95 {
			t.Fatalf("leaf probability %f out of range", p1)
		}
	}
	// Identical metadata always maps to the same probability.
	if t1.Probability(metas[0]) != t1.Probability(map[string]string{"rel_name": "acquisitions", "source": "a.com"}) {
		t.Fatal("probability must depend only on metadata content")
	}
}

func TestGenerateRDTCorrelatesWithMetadata(t *testing.T) {
	// Two groups of tuples with distinct source metadata; the RDT should
	// assign each group a single shared probability.
	db := table.NewDatabase()
	rel := table.NewRelation("facts", table.NewSchema(table.Column{Name: "v", Kind: table.KindInt}))
	for i := 0; i < 100; i++ {
		src := "a.com"
		if i%2 == 1 {
			src = "b.com"
		}
		rel.MustAppend(table.Tuple{table.Int(int64(i))}, table.Metadata{"source": src})
	}
	db.MustAdd(rel)
	udb := New(db)
	gt := GenerateRDT(udb, 3, 99)
	probsBySource := make(map[string]map[float64]bool)
	for _, v := range udb.AllVars() {
		src := udb.MetaFor(v)["source"]
		if probsBySource[src] == nil {
			probsBySource[src] = make(map[float64]bool)
		}
		probsBySource[src][gt.Prob[v]] = true
	}
	for src, ps := range probsBySource {
		if len(ps) != 1 {
			t.Fatalf("source %s maps to %d distinct probabilities, want 1", src, len(ps))
		}
	}
}

func TestGenerateWithProbs(t *testing.T) {
	udb := New(paperDB())
	v0, _ := udb.VarFor("Acquisitions", 0)
	gt := GenerateWithProbs(udb, map[boolexpr.Var]float64{v0: 1.0}, 5)
	if got, _ := gt.Val.Get(v0); !got {
		t.Error("p=1 variable must be True")
	}
	if gt.Prob[v0] != 1.0 {
		t.Error("probability not recorded")
	}
	// Unlisted variables default to 0.5.
	v1, _ := udb.VarFor("Acquisitions", 1)
	if gt.Prob[v1] != 0.5 {
		t.Errorf("default probability = %f", gt.Prob[v1])
	}
	// Ground truth is total.
	for _, v := range udb.AllVars() {
		if !gt.Val.Assigned(v) {
			t.Fatal("ground truth must assign every variable")
		}
	}
}

package uncertain

import (
	"hash/fnv"
	"math/rand"
	"sort"

	"qres/internal/boolexpr"
)

// GroundTruth is a total valuation val* of the tuple variables together
// with the hidden per-variable probabilities it was drawn from. The
// probabilities are never given to the resolution algorithms (the paper's
// π is unknown and must be learned); experiments use them only for
// analysis and for the "known probabilities" comparison of Section 7.2.
type GroundTruth struct {
	Val  *boolexpr.Valuation
	Prob map[boolexpr.Var]float64
}

// GenerateFixed draws every variable independently True with probability p
// (the paper's fixed-probability setting, default 0.5). The draw is
// deterministic in seed.
func GenerateFixed(db *DB, p float64, seed int64) *GroundTruth {
	rng := rand.New(rand.NewSource(seed))
	gt := &GroundTruth{
		Val:  boolexpr.NewValuation(),
		Prob: make(map[boolexpr.Var]float64, db.NumVars()),
	}
	for _, v := range db.AllVars() {
		gt.Prob[v] = p
		gt.Val.Set(v, rng.Float64() < p)
	}
	return gt
}

// DecisionTree is a hidden random decision tree over metadata attributes,
// the paper's default synthetic ground truth for TPC-H (Section 7.1):
// "inner [nodes] are random decisions based on metadata, and the leaves are
// randomly drawn probabilities. For each tuple, we apply the decision tree
// on its metadata to obtain a probability and then randomly draw a
// correctness value according to this probability."
//
// Inner nodes branch on a hash bit of one metadata attribute's value, so
// tuples sharing attribute values share leaf probabilities — precisely the
// metadata→correctness correlation the Learner can pick up.
type DecisionTree struct {
	attr        string
	salt        uint64
	left, right *DecisionTree
	prob        float64
	leaf        bool
}

// NewDecisionTree builds a random tree of the given depth over the
// attribute names, deterministically in seed. Depth 0 yields a single
// random-probability leaf. Leaf probabilities are uniform in [0.05, 0.95],
// avoiding degenerate all-True/all-False leaves.
func NewDecisionTree(attrs []string, depth int, seed int64) *DecisionTree {
	rng := rand.New(rand.NewSource(seed))
	sorted := append([]string(nil), attrs...)
	sort.Strings(sorted)
	return buildRDT(sorted, depth, rng)
}

func buildRDT(attrs []string, depth int, rng *rand.Rand) *DecisionTree {
	if depth <= 0 || len(attrs) == 0 {
		return &DecisionTree{leaf: true, prob: 0.05 + 0.9*rng.Float64()}
	}
	return &DecisionTree{
		attr:  attrs[rng.Intn(len(attrs))],
		salt:  rng.Uint64(),
		left:  buildRDT(attrs, depth-1, rng),
		right: buildRDT(attrs, depth-1, rng),
	}
}

// Probability returns the correctness probability the tree assigns to a
// tuple with the given metadata. Missing attributes route like the empty
// string.
func (t *DecisionTree) Probability(meta map[string]string) float64 {
	node := t
	for !node.leaf {
		h := fnv.New64a()
		h.Write([]byte(node.attr))
		h.Write([]byte{0})
		h.Write([]byte(meta[node.attr]))
		if (h.Sum64()^node.salt)&1 == 0 {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.prob
}

// GenerateRDT draws the ground truth from a hidden random decision tree of
// the given depth over the union of metadata attribute names observed in
// db. The tree structure and the correctness draws are both deterministic
// in seed.
func GenerateRDT(db *DB, depth int, seed int64) *GroundTruth {
	// Collect the attribute universe.
	attrSet := make(map[string]struct{})
	for _, v := range db.AllVars() {
		for a := range db.MetaFor(v) {
			attrSet[a] = struct{}{}
		}
	}
	attrs := make([]string, 0, len(attrSet))
	for a := range attrSet {
		attrs = append(attrs, a)
	}
	tree := NewDecisionTree(attrs, depth, seed)

	rng := rand.New(rand.NewSource(seed + 1))
	gt := &GroundTruth{
		Val:  boolexpr.NewValuation(),
		Prob: make(map[boolexpr.Var]float64, db.NumVars()),
	}
	for _, v := range db.AllVars() {
		p := tree.Probability(db.MetaFor(v))
		gt.Prob[v] = p
		gt.Val.Set(v, rng.Float64() < p)
	}
	return gt
}

// GenerateWithProbs draws each variable independently according to the
// given per-variable probabilities (variables not listed default to p=0.5).
func GenerateWithProbs(db *DB, probs map[boolexpr.Var]float64, seed int64) *GroundTruth {
	rng := rand.New(rand.NewSource(seed))
	gt := &GroundTruth{
		Val:  boolexpr.NewValuation(),
		Prob: make(map[boolexpr.Var]float64, db.NumVars()),
	}
	for _, v := range db.AllVars() {
		p, ok := probs[v]
		if !ok {
			p = 0.5
		}
		gt.Prob[v] = p
		gt.Val.Set(v, rng.Float64() < p)
	}
	return gt
}

// Package testdb provides the paper's running example (Tables 1–2 and the
// Figure 2 query) as a reusable fixture for tests, examples and the demo
// binary. Keeping it in one place lets every layer of the system be checked
// against the exact provenance expressions printed in the paper.
package testdb

import (
	"qres/internal/engine"
	"qres/internal/table"
	"qres/internal/uncertain"
)

// PaperDatabase builds the example database of the paper's Table 1:
// Acquisitions (a0–a3), Roles (r0–r5) and Education (e0–e5).
func PaperDatabase() *table.Database {
	db := table.NewDatabase()

	acq := table.NewRelation("Acquisitions", table.NewSchema(
		table.Column{Name: "Acquired", Kind: table.KindString},
		table.Column{Name: "Acquiring", Kind: table.KindString},
		table.Column{Name: "Date", Kind: table.KindDate},
	))
	acqRows := []struct {
		acquired, acquiring string
		y, m, d             int
		source              string
	}{
		{"A2Bdone", "Zazzer", 2020, 11, 7, "example.com"},
		{"microBarg", "Fiffer", 2017, 5, 1, "bizwire.example"},
		{"fPharm", "Fiffer", 2016, 2, 1, "bizwire.example"},
		{"Optobest", "microBarg", 2015, 8, 8, "example.com"},
	}
	for _, r := range acqRows {
		acq.MustAppend(
			table.Tuple{table.String_(r.acquired), table.String_(r.acquiring), table.Date(r.y, r.m, r.d)},
			table.Metadata{"source": r.source, "has_value": r.acquired},
		)
	}
	db.MustAdd(acq)

	roles := table.NewRelation("Roles", table.NewSchema(
		table.Column{Name: "Organization", Kind: table.KindString},
		table.Column{Name: "Role", Kind: table.KindString},
		table.Column{Name: "Member", Kind: table.KindString},
	))
	for _, r := range [][3]string{
		{"A2Bdone", "Founder", "Usha Koirala"},
		{"A2Bdone", "Founding member", "Pavel Lebedev"},
		{"A2Bdone", "Founding member", "Nana Alvi"},
		{"microBarg", "Co-founder", "Nana Alvi"},
		{"microBarg", "Co-founder", "Gao Yawen"},
		{"microBarg", "CTO", "Amaal Kader"},
	} {
		roles.MustAppend(
			table.Tuple{table.String_(r[0]), table.String_(r[1]), table.String_(r[2])},
			table.Metadata{"source": "people.example", "has_value": r[2]},
		)
	}
	db.MustAdd(roles)

	edu := table.NewRelation("Education", table.NewSchema(
		table.Column{Name: "Alumni", Kind: table.KindString},
		table.Column{Name: "Institute", Kind: table.KindString},
		table.Column{Name: "Year", Kind: table.KindInt},
	))
	for _, r := range []struct {
		alumni, inst string
		year         int64
	}{
		{"Usha Koirala", "U. Melbourne", 2017},
		{"Pavel Lebedev", "U. Melbourne", 2017},
		{"Nana Alvi", "U. Sau Paolo", 2010},
		{"Nana Alvi", "U. Melbourne", 2017},
		{"Gao Yawen", "U. Sau Paolo", 2010},
		{"Amaal Kader", "U. Cape Town", 2005},
	} {
		edu.MustAppend(
			table.Tuple{table.String_(r.alumni), table.String_(r.inst), table.Int(r.year)},
			table.Metadata{"source": "alumni.example", "has_value": r.alumni},
		)
	}
	db.MustAdd(edu)
	return db
}

// PaperUncertainDB returns the uncertain version of the paper database,
// with one Boolean variable per tuple.
func PaperUncertainDB() *uncertain.DB {
	return uncertain.New(PaperDatabase())
}

// PaperQuery builds the Figure 2 query as an algebra plan:
//
//	SELECT DISTINCT a.Acquired, e.Institute
//	FROM Acquisitions AS a, Roles AS r, Education AS e
//	WHERE a.Acquired = r.Organization AND r.Member = e.Alumni
//	  AND a.Date >= 2017-01-01 AND r.Role LIKE '%found%'
//	  AND e.Year <= year(a.Date)
func PaperQuery() engine.Node {
	ar := engine.Join(
		engine.Scan("Acquisitions", "a"),
		engine.Scan("Roles", "r"),
		engine.Cmp(engine.Col("a", "Acquired"), engine.OpEq, engine.Col("r", "Organization")),
	)
	are := engine.Join(
		ar,
		engine.Scan("Education", "e"),
		engine.Cmp(engine.Col("r", "Member"), engine.OpEq, engine.Col("e", "Alumni")),
	)
	filtered := engine.Select(are, engine.And(
		engine.Cmp(engine.Col("a", "Date"), engine.OpGe, engine.Const(table.Date(2017, 1, 1))),
		engine.Like(engine.Col("r", "Role"), "%found%"),
		engine.Cmp(engine.Col("e", "Year"), engine.OpLe, engine.Year(engine.Col("a", "Date"))),
	))
	return engine.Project(filtered, true, engine.Col("a", "Acquired"), engine.Col("e", "Institute"))
}

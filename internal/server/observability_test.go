package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"qres/internal/obs"
)

// jsonBody marshals v into a request body reader.
func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// decodeBody decodes a JSON response body into out and closes it.
func decodeBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// doWithRequestID issues a request carrying an X-Request-Id header and
// returns the response (caller closes the body).
func doWithRequestID(t *testing.T, method, url, reqID string, body io.Reader) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if reqID != "" {
		req.Header.Set("X-Request-Id", reqID)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRequestIDsInTraceSpans drives one session over HTTP with distinct
// request IDs per call and asserts (a) the IDs are echoed in responses,
// (b) every pipeline span emitted on behalf of the session carries the
// session ID, and (c) each span carries the ID of the specific request
// that triggered it.
func TestRequestIDsInTraceSpans(t *testing.T) {
	trace := &obs.Collector{}
	_, base := startServer(t, Config{Trace: trace})

	var info SessionInfo
	resp := doWithRequestID(t, http.MethodPost, base+"/v1/sessions", "req-create",
		jsonBody(t, CreateSessionRequest{Query: paperSQL, Seed: 1, Trees: 25}))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "req-create" {
		t.Errorf("create response X-Request-Id = %q, want req-create", got)
	}
	decodeBody(t, resp, &info)

	// Setup spans (query evaluation, repository reuse, splitting, ...)
	// belong to the creating request.
	for _, ev := range trace.Events() {
		if ev.Request != "req-create" {
			t.Errorf("setup span %s carries request %q, want req-create", ev.Stage, ev.Request)
		}
		if ev.SessionID != info.ID {
			t.Errorf("setup span %s carries session %q, want %q", ev.Stage, ev.SessionID, info.ID)
		}
	}
	if trace.StageCount(obs.StageQueryEval) == 0 {
		t.Fatal("no query_eval span traced during session creation")
	}

	resp = doWithRequestID(t, http.MethodGet, base+"/v1/sessions/"+info.ID+"/probe", "req-probe", nil)
	var pr ProbeResponse
	decodeBody(t, resp, &pr)
	if pr.Done || pr.Probe == nil {
		t.Fatal("expected an outstanding probe")
	}

	resp = doWithRequestID(t, http.MethodPost, base+"/v1/sessions/"+info.ID+"/answer", "req-answer",
		jsonBody(t, AnswerRequest{Table: pr.Probe.Table, Index: pr.Probe.Index, Answer: true}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "req-answer" {
		t.Errorf("answer response X-Request-Id = %q, want req-answer", got)
	}
	resp.Body.Close()

	byStage := map[obs.Stage]string{}
	for _, ev := range trace.Events() {
		if ev.SessionID != info.ID {
			t.Errorf("span %s carries session %q, want %q", ev.Stage, ev.SessionID, info.ID)
		}
		if ev.Request == "" {
			t.Errorf("span %s carries no request ID", ev.Stage)
		}
		byStage[ev.Stage] = ev.Request // last writer wins: the most recent span per stage
	}
	if got := byStage[obs.StageSelector]; got != "req-probe" {
		t.Errorf("selector span carries request %q, want req-probe", got)
	}
	for _, stage := range []obs.Stage{obs.StageProbe, obs.StageSimplify} {
		if got := byStage[stage]; got != "req-answer" {
			t.Errorf("%s span carries request %q, want req-answer", stage, got)
		}
	}

	// A request without X-Request-Id gets a generated one.
	resp = doWithRequestID(t, http.MethodGet, base+"/v1/sessions/"+info.ID+"/status", "", nil)
	if got := resp.Header.Get("X-Request-Id"); got == "" {
		t.Error("no generated X-Request-Id on response")
	}
	resp.Body.Close()
}

// TestHTTPMetricsAndSlowLog checks the per-route latency summaries (with
// the 0.99 quantile), in-flight gauge, runtime gauges and the structured
// slow-request log.
func TestHTTPMetricsAndSlowLog(t *testing.T) {
	slow := &obs.Collector{}
	_, base := startServer(t, Config{
		SlowLog:              slow,
		SlowRequestThreshold: time.Nanosecond, // every request is "slow"
	})

	resp := doWithRequestID(t, http.MethodGet, base+"/healthz", "req-health", nil)
	resp.Body.Close()

	resp = doWithRequestID(t, http.MethodGet, base+"/metrics", "", nil)
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`qres_http_request_seconds{route="healthz",class="2xx",quantile="0.99"}`,
		`qres_http_requests_total{route="healthz",class="2xx"} 1`,
		`qres_http_in_flight{route="metrics"} 1`, // this scrape is in flight
		`qres_slow_requests_total{route="healthz"} 1`,
		"qres_go_goroutines",
		"qres_go_heap_alloc_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	evs := slow.Events()
	if len(evs) == 0 {
		t.Fatal("no slow-request events logged")
	}
	found := false
	for _, ev := range evs {
		if ev.Stage != obs.StageHTTPRequest {
			t.Errorf("slow-log stage = %q, want %q", ev.Stage, obs.StageHTTPRequest)
		}
		if ev.Request == "req-health" {
			found = true
		}
	}
	if !found {
		t.Errorf("no slow-log event for req-health: %+v", evs)
	}
}

// TestBackpressureRejectionCounter verifies that session creations beyond
// the cap are counted, alongside the 429 status-class series.
func TestBackpressureRejectionCounter(t *testing.T) {
	s, base := startServer(t, Config{MaxSessions: 1})

	create := func() int {
		resp := doWithRequestID(t, http.MethodPost, base+"/v1/sessions", "",
			jsonBody(t, CreateSessionRequest{Query: paperSQL, Seed: 1, Trees: 25}))
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := create(); got != http.StatusCreated {
		t.Fatalf("first create: status %d", got)
	}
	if got := create(); got != http.StatusTooManyRequests {
		t.Fatalf("second create: status %d, want 429", got)
	}
	if got := s.reg.Counter("backpressure_rejections_total").Value(); got != 1 {
		t.Errorf("backpressure_rejections_total = %d, want 1", got)
	}

	resp := doWithRequestID(t, http.MethodGet, base+"/metrics", "", nil)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := `qres_http_requests_total{route="create_session",class="4xx"} 1`; !strings.Contains(string(body), want) {
		t.Errorf("/metrics missing %q", want)
	}
}

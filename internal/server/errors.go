package server

import (
	"errors"

	"qres/internal/resolve"
)

// Stable machine-readable error codes of the v1 API. Every non-2xx
// response body is {"error": {"code": ..., "message": ...}}; clients
// branch on the code, the message is human-readable detail that may
// change between releases.
const (
	// CodeBadRequest: malformed JSON or an invalid configuration value.
	CodeBadRequest = "bad_request"
	// CodeUnknownSession: the session ID names no live session (never
	// created, expired, or deleted).
	CodeUnknownSession = "unknown_session"
	// CodeUnknownVariable: the referenced tuple is not in the database.
	CodeUnknownVariable = "unknown_variable"
	// CodeSessionDone: the session finished; no further probes or answers.
	CodeSessionDone = "session_done"
	// CodeNoProbePending: an answer arrived with no probe outstanding.
	CodeNoProbePending = "no_probe_pending"
	// CodeProbeMismatch: the answer names a different tuple than the
	// outstanding probe.
	CodeProbeMismatch = "probe_mismatch"
	// CodeCapacity: the session cap is reached; retry later (HTTP 429).
	CodeCapacity = "capacity"
	// CodeInternal: an unexpected server-side fault.
	CodeInternal = "internal"
)

// errUnknownSession is the single unknown-session error every handler maps
// onto CodeUnknownSession.
var errUnknownSession = errors.New("unknown session")

// errorCode resolves an error to its stable wire code: typed sentinels map
// directly, anything else falls back on the HTTP status class.
func errorCode(err error, status int) string {
	switch {
	case errors.Is(err, errUnknownSession):
		return CodeUnknownSession
	case errors.Is(err, resolve.ErrUnknownVariable):
		return CodeUnknownVariable
	case errors.Is(err, resolve.ErrSessionDone):
		return CodeSessionDone
	case errors.Is(err, resolve.ErrNoProbePending):
		return CodeNoProbePending
	case errors.Is(err, resolve.ErrProbeMismatch):
		return CodeProbeMismatch
	case errors.Is(err, errCapacity):
		return CodeCapacity
	}
	switch {
	case status == 404:
		return CodeUnknownSession
	case status == 429:
		return CodeCapacity
	case status >= 400 && status < 500:
		return CodeBadRequest
	default:
		return CodeInternal
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qres/internal/engine"
	"qres/internal/resolve"
	"qres/internal/sqlparse"
	"qres/internal/store"
	"qres/internal/testdb"
	"qres/internal/uncertain"
)

// paperSQL is the Figure 2 query (with the paper's dotted date literal).
const paperSQL = `
SELECT DISTINCT a.Acquired, e.Institute
FROM Acquisitions AS a, Roles AS r, Education AS e
WHERE a.Acquired = r.Organization AND
      r.Member = e.Alumni AND a.Date >= 2017.01.01 AND
      r.Role LIKE '%found%' AND e.YEAR <= year(a.Date)
`

// startServer builds the service around the paper database (unless cfg.DB
// is set) and serves it on a loopback listener, shutting down on cleanup.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = testdb.PaperUncertainDB()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Shutdown
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, "http://" + ln.Addr().String()
}

// doJSON issues a request with an optional JSON body, decodes a 2xx
// response into out, and returns the status code.
func doJSON(method, url string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			return resp.StatusCode, fmt.Errorf("Content-Type %q, want application/json", ct)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func mustJSON(t *testing.T, method, url string, body, out any, want int) {
	t.Helper()
	code, err := doJSON(method, url, body, out)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	if code != want {
		t.Fatalf("%s %s: status %d, want %d", method, url, code, want)
	}
}

// gtAnswer is the test's remote oracle: it answers a probe from the
// generated ground truth.
func gtAnswer(udb *uncertain.DB, gt *uncertain.GroundTruth, table string, index int) (bool, error) {
	v, ok := udb.VarFor(table, index)
	if !ok {
		return false, fmt.Errorf("probe for unknown tuple %s[%d]", table, index)
	}
	val, assigned := gt.Val.Get(v)
	if !assigned {
		return false, fmt.Errorf("ground truth has no value for %s[%d]", table, index)
	}
	return val, nil
}

// driveSession plays the oracle over HTTP until the session is done and
// returns how many answers it submitted.
func driveSession(base, id string, udb *uncertain.DB, gt *uncertain.GroundTruth) (int, error) {
	answers := 0
	for i := 0; i < 1000; i++ {
		var pr ProbeResponse
		code, err := doJSON("GET", base+"/v1/sessions/"+id+"/probe", nil, &pr)
		if err != nil || code != http.StatusOK {
			return answers, fmt.Errorf("probe: status %d, err %v", code, err)
		}
		if pr.Done {
			return answers, nil
		}
		ans, err := gtAnswer(udb, gt, pr.Probe.Table, pr.Probe.Index)
		if err != nil {
			return answers, err
		}
		var ar AnswerResponse
		code, err = doJSON("POST", base+"/v1/sessions/"+id+"/answer",
			AnswerRequest{Table: pr.Probe.Table, Index: pr.Probe.Index, Answer: ans}, &ar)
		if err != nil || code != http.StatusOK {
			return answers, fmt.Errorf("answer: status %d, err %v", code, err)
		}
		answers++
		if ar.Done {
			return answers, nil
		}
	}
	return answers, fmt.Errorf("session %s did not finish", id)
}

// wantStatuses evaluates the query's provenance under the ground truth:
// the resolution the service must converge to.
func wantStatuses(t *testing.T, udb *uncertain.DB, gt *uncertain.GroundTruth) []string {
	t.Helper()
	plan, err := sqlparse.ParseAndCompile(paperSQL, udb.Data())
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(udb, plan)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		if row.Prov.Eval(gt.Val) {
			out[i] = "correct"
		} else {
			out[i] = "incorrect"
		}
	}
	return out
}

// TestEndToEndResolution drives a full resolution over a real loopback
// listener: create a session, alternate probe/answer until done, and check
// the final status equals the ground-truth query answer Q(D_val*).
func TestEndToEndResolution(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	gt := uncertain.GenerateFixed(udb, 0.5, 7)
	s, base := startServer(t, Config{DB: udb})

	var info SessionInfo
	mustJSON(t, "POST", base+"/v1/sessions",
		CreateSessionRequest{Query: paperSQL, Strategy: "general", Learning: "online", Seed: 3},
		&info, http.StatusCreated)
	if info.ID == "" || info.Rows == 0 || info.Done {
		t.Fatalf("bad session info: %+v", info)
	}

	// Probe delivery is idempotent: a retried GET returns the same probe.
	var p1, p2 ProbeResponse
	mustJSON(t, "GET", base+"/v1/sessions/"+info.ID+"/probe", nil, &p1, http.StatusOK)
	mustJSON(t, "GET", base+"/v1/sessions/"+info.ID+"/probe", nil, &p2, http.StatusOK)
	if p1.Done || p2.Done || p1.Probe.Table != p2.Probe.Table || p1.Probe.Index != p2.Probe.Index {
		t.Fatalf("probe not idempotent: %+v vs %+v", p1.Probe, p2.Probe)
	}

	answers, err := driveSession(base, info.ID, udb, gt)
	if err != nil {
		t.Fatal(err)
	}
	if answers == 0 {
		t.Fatal("session finished without any probes")
	}

	var st StatusResponse
	mustJSON(t, "GET", base+"/v1/sessions/"+info.ID+"/status", nil, &st, http.StatusOK)
	if !st.Done || st.Probes != answers {
		t.Fatalf("final status: %+v, submitted %d answers", st.SessionInfo, answers)
	}
	want := wantStatuses(t, udb, gt)
	if len(st.RowStatus) != len(want) {
		t.Fatalf("status has %d rows, want %d", len(st.RowStatus), len(want))
	}
	for i, rs := range st.RowStatus {
		if rs.Status != want[i] {
			t.Errorf("row %d: status %q, ground truth %q", i, rs.Status, want[i])
		}
	}

	// Every answer landed in the shared repository.
	if s.Repo().Len() != answers {
		t.Errorf("repository has %d records, want %d", s.Repo().Len(), answers)
	}

	var infos []SessionInfo
	mustJSON(t, "GET", base+"/v1/sessions", nil, &infos, http.StatusOK)
	if len(infos) != 1 || infos[0].ID != info.ID {
		t.Fatalf("session list: %+v", infos)
	}
	mustJSON(t, "DELETE", base+"/v1/sessions/"+info.ID, nil, nil, http.StatusNoContent)
	mustJSON(t, "GET", base+"/v1/sessions/"+info.ID+"/status", nil, nil, http.StatusNotFound)
}

// TestSessionsShareRepository resolves the same query twice: the second
// session answers everything from the shared repository without a single
// probe reaching the remote oracle.
func TestSessionsShareRepository(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	gt := uncertain.GenerateFixed(udb, 0.5, 9)
	_, base := startServer(t, Config{DB: udb})

	create := CreateSessionRequest{Query: paperSQL, Strategy: "general", Learning: "online", Seed: 5}
	var first SessionInfo
	mustJSON(t, "POST", base+"/v1/sessions", create, &first, http.StatusCreated)
	answers, err := driveSession(base, first.ID, udb, gt)
	if err != nil {
		t.Fatal(err)
	}
	if answers == 0 {
		t.Fatal("first session probed nothing")
	}

	var second SessionInfo
	mustJSON(t, "POST", base+"/v1/sessions", create, &second, http.StatusCreated)
	if !second.Done {
		t.Fatalf("second session not already resolved: %+v", second)
	}
	if second.KnownReused == 0 {
		t.Error("second session reports no repository reuse")
	}
	var pr ProbeResponse
	mustJSON(t, "GET", base+"/v1/sessions/"+second.ID+"/probe", nil, &pr, http.StatusOK)
	if !pr.Done {
		t.Fatalf("second session asked for a probe: %+v", pr.Probe)
	}
}

func TestSessionCapacity(t *testing.T) {
	_, base := startServer(t, Config{MaxSessions: 1})
	create := CreateSessionRequest{Query: paperSQL}

	var first SessionInfo
	mustJSON(t, "POST", base+"/v1/sessions", create, &first, http.StatusCreated)
	mustJSON(t, "POST", base+"/v1/sessions", create, nil, http.StatusTooManyRequests)
	mustJSON(t, "DELETE", base+"/v1/sessions/"+first.ID, nil, nil, http.StatusNoContent)
	mustJSON(t, "POST", base+"/v1/sessions", create, nil, http.StatusCreated)
}

func TestSessionTTLEviction(t *testing.T) {
	s, base := startServer(t, Config{SessionTTL: 20 * time.Millisecond})
	var info SessionInfo
	mustJSON(t, "POST", base+"/v1/sessions", CreateSessionRequest{Query: paperSQL}, &info, http.StatusCreated)
	time.Sleep(60 * time.Millisecond)
	if n := s.mgr.sweep(); n != 1 {
		t.Fatalf("sweep evicted %d sessions, want 1", n)
	}
	mustJSON(t, "GET", base+"/v1/sessions/"+info.ID+"/status", nil, nil, http.StatusNotFound)
}

func TestErrorResponses(t *testing.T) {
	_, base := startServer(t, Config{})

	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid JSON: status %d", resp.StatusCode)
	}
	mustJSON(t, "POST", base+"/v1/sessions", CreateSessionRequest{Query: ""}, nil, http.StatusBadRequest)
	mustJSON(t, "POST", base+"/v1/sessions",
		CreateSessionRequest{Query: paperSQL, Strategy: "definitely-not-a-strategy"}, nil, http.StatusBadRequest)
	mustJSON(t, "POST", base+"/v1/sessions",
		CreateSessionRequest{Query: "SELECT nope FROM nowhere"}, nil, http.StatusBadRequest)
	mustJSON(t, "GET", base+"/v1/sessions/deadbeef/probe", nil, nil, http.StatusNotFound)
	mustJSON(t, "POST", base+"/v1/sessions/deadbeef/answer",
		AnswerRequest{Table: "Roles", Index: 0, Answer: true}, nil, http.StatusNotFound)
	mustJSON(t, "DELETE", base+"/v1/sessions/deadbeef", nil, nil, http.StatusNotFound)

	var info SessionInfo
	mustJSON(t, "POST", base+"/v1/sessions", CreateSessionRequest{Query: paperSQL}, &info, http.StatusCreated)

	// Answer with no outstanding probe: conflict, session unharmed.
	mustJSON(t, "POST", base+"/v1/sessions/"+info.ID+"/answer",
		AnswerRequest{Table: "Roles", Index: 0, Answer: true}, nil, http.StatusConflict)

	var pr ProbeResponse
	mustJSON(t, "GET", base+"/v1/sessions/"+info.ID+"/probe", nil, &pr, http.StatusOK)
	if pr.Done {
		t.Fatal("session done before any answer")
	}
	// Answer naming a tuple other than the outstanding probe: conflict.
	other := AnswerRequest{Table: "Roles", Index: 0, Answer: true}
	if pr.Probe.Table == other.Table && pr.Probe.Index == other.Index {
		other.Index = 1
	}
	mustJSON(t, "POST", base+"/v1/sessions/"+info.ID+"/answer", other, nil, http.StatusConflict)
	// Answer naming a tuple that does not exist: bad request.
	mustJSON(t, "POST", base+"/v1/sessions/"+info.ID+"/answer",
		AnswerRequest{Table: "NoSuchTable", Index: 0, Answer: true}, nil, http.StatusBadRequest)
	// The outstanding probe is still answerable after the rejections.
	mustJSON(t, "POST", base+"/v1/sessions/"+info.ID+"/answer",
		AnswerRequest{Table: pr.Probe.Table, Index: pr.Probe.Index, Answer: true}, nil, http.StatusOK)
}

func TestHealthzAndMetrics(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	gt := uncertain.GenerateFixed(udb, 0.5, 13)
	_, base := startServer(t, Config{DB: udb})

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	var info SessionInfo
	mustJSON(t, "POST", base+"/v1/sessions", CreateSessionRequest{Query: paperSQL, Seed: 1}, &info, http.StatusCreated)
	if _, err := driveSession(base, info.ID, udb, gt); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"qres_stage_seconds_count{stage=\"probe\"",
		"qres_stage_seconds{stage=\"probe\"", // quantile series
		"qres_sessions_created_total 1",
		"qres_sessions_active",
		"qres_answers_total",
		"qres_repository_records",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
}

// TestCrashRestartRecovery kills the service mid-session (WAL closed, no
// snapshot) and checks the repository is restored from snapshot+WAL with no
// acknowledged answer lost; a fresh session then reuses the recovered
// answers and still converges to the ground truth.
func TestCrashRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	udb := testdb.PaperUncertainDB()
	gt := uncertain.GenerateFixed(udb, 0.5, 11)

	store, repo, err := resolve.OpenStore(dir, udb.Registry().Name, udb.Registry().Lookup)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{DB: udb, Repo: repo, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv)

	create := CreateSessionRequest{Query: paperSQL, Strategy: "general", Learning: "online", Seed: 21}
	var info SessionInfo
	mustJSON(t, "POST", hts.URL+"/v1/sessions", create, &info, http.StatusCreated)

	// Answer a few probes, then crash before the session completes.
	const partial = 3
	for i := 0; i < partial; i++ {
		var pr ProbeResponse
		mustJSON(t, "GET", hts.URL+"/v1/sessions/"+info.ID+"/probe", nil, &pr, http.StatusOK)
		if pr.Done {
			t.Fatalf("session done after only %d answers", i)
		}
		ans, err := gtAnswer(udb, gt, pr.Probe.Table, pr.Probe.Index)
		if err != nil {
			t.Fatal(err)
		}
		mustJSON(t, "POST", hts.URL+"/v1/sessions/"+info.ID+"/answer",
			AnswerRequest{Table: pr.Probe.Table, Index: pr.Probe.Index, Answer: ans}, nil, http.StatusOK)
	}
	hts.Close()
	close(srv.sweepStop) // stop the janitor without snapshotting
	<-srv.sweepDone
	if err := store.Close(); err != nil { // crash-equivalent: WAL left as is
		t.Fatal(err)
	}

	// Restart: every acknowledged answer must come back from the WAL.
	store2, repo2, err := resolve.OpenStore(dir, udb.Registry().Name, udb.Registry().Lookup)
	if err != nil {
		t.Fatal(err)
	}
	if repo2.Len() != partial {
		t.Fatalf("recovered %d records, want %d", repo2.Len(), partial)
	}
	if store2.WALRecords() != partial {
		t.Fatalf("recovered WAL holds %d records, want %d", store2.WALRecords(), partial)
	}
	srv2, err := New(Config{DB: udb, Repo: repo2, Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	hts2 := httptest.NewServer(srv2)

	var info2 SessionInfo
	mustJSON(t, "POST", hts2.URL+"/v1/sessions", create, &info2, http.StatusCreated)
	answers, err := driveSession(hts2.URL, info2.ID, udb, gt)
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	mustJSON(t, "GET", hts2.URL+"/v1/sessions/"+info2.ID+"/status", nil, &st, http.StatusOK)
	if st.KnownReused < partial {
		t.Errorf("restarted session reused %d recovered answers, want >= %d", st.KnownReused, partial)
	}
	want := wantStatuses(t, udb, gt)
	for i, rs := range st.RowStatus {
		if rs.Status != want[i] {
			t.Errorf("row %d after restart: status %q, ground truth %q", i, rs.Status, want[i])
		}
	}
	if repo2.Len() != partial+answers {
		t.Errorf("repository has %d records, want %d", repo2.Len(), partial+answers)
	}

	// Graceful shutdown snapshots; a third open needs no WAL replay.
	hts2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	store3, repo3, err := resolve.OpenStore(dir, udb.Registry().Name, udb.Registry().Lookup)
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	if store3.WALRecords() != 0 {
		t.Errorf("WAL holds %d records after snapshot, want 0", store3.WALRecords())
	}
	if repo3.Len() != repo2.Len() {
		t.Errorf("snapshot lost records: %d vs %d", repo3.Len(), repo2.Len())
	}
}

// TestSegmentedStoreCrashRestart runs the crash-restart scenario on the
// segmented storage engine: acknowledged answers survive a crash-
// equivalent close, the restarted session reuses them, and the /v1/store
// endpoint reports the engine's state along the way.
func TestSegmentedStoreCrashRestart(t *testing.T) {
	dir := t.TempDir()
	udb := testdb.PaperUncertainDB()
	gt := uncertain.GenerateFixed(udb, 0.5, 11)
	opts := store.Options{NameFn: udb.Registry().Name, ResolveFn: udb.Registry().Lookup}

	st, repo, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{DB: udb, Repo: repo, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv)

	// Before any answers: persistence on, segmented engine, empty WAL.
	var status StoreStatusResponse
	mustJSON(t, "GET", hts.URL+"/v1/store", nil, &status, http.StatusOK)
	if !status.Persistent || status.Engine != "segmented" {
		t.Fatalf("store status = %+v, want persistent segmented", status)
	}
	if status.Stats == nil || status.Stats.Segments == 0 {
		t.Fatalf("store status missing segmented stats: %+v", status)
	}

	create := CreateSessionRequest{Query: paperSQL, Strategy: "general", Learning: "online", Seed: 21}
	var info SessionInfo
	mustJSON(t, "POST", hts.URL+"/v1/sessions", create, &info, http.StatusCreated)
	const partial = 3
	for i := 0; i < partial; i++ {
		var pr ProbeResponse
		mustJSON(t, "GET", hts.URL+"/v1/sessions/"+info.ID+"/probe", nil, &pr, http.StatusOK)
		if pr.Done {
			t.Fatalf("session done after only %d answers", i)
		}
		ans, err := gtAnswer(udb, gt, pr.Probe.Table, pr.Probe.Index)
		if err != nil {
			t.Fatal(err)
		}
		mustJSON(t, "POST", hts.URL+"/v1/sessions/"+info.ID+"/answer",
			AnswerRequest{Table: pr.Probe.Table, Index: pr.Probe.Index, Answer: ans}, nil, http.StatusOK)
	}
	mustJSON(t, "GET", hts.URL+"/v1/store", nil, &status, http.StatusOK)
	if status.WALRecords != partial {
		t.Errorf("store status WALRecords = %d, want %d", status.WALRecords, partial)
	}
	if status.Stats.Fsyncs == 0 {
		t.Errorf("store status reports no fsyncs after %d answers", partial)
	}
	hts.Close()
	close(srv.sweepStop) // stop the janitor without snapshotting
	<-srv.sweepDone
	if err := st.Close(); err != nil { // crash-equivalent: no snapshot
		t.Fatal(err)
	}

	st2, repo2, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if repo2.Len() != partial {
		t.Fatalf("recovered %d records, want %d", repo2.Len(), partial)
	}
	srv2, err := New(Config{DB: udb, Repo: repo2, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	hts2 := httptest.NewServer(srv2)
	var info2 SessionInfo
	mustJSON(t, "POST", hts2.URL+"/v1/sessions", create, &info2, http.StatusCreated)
	if _, err := driveSession(hts2.URL, info2.ID, udb, gt); err != nil {
		t.Fatal(err)
	}
	var sess StatusResponse
	mustJSON(t, "GET", hts2.URL+"/v1/sessions/"+info2.ID+"/status", nil, &sess, http.StatusOK)
	if sess.KnownReused < partial {
		t.Errorf("restarted session reused %d recovered answers, want >= %d", sess.KnownReused, partial)
	}

	// Graceful shutdown snapshots; the third open has no tail to replay.
	hts2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st3, repo3, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st3.WALRecords() != 0 {
		t.Errorf("WAL holds %d records after snapshot, want 0", st3.WALRecords())
	}
	if repo3.Len() != repo2.Len() {
		t.Errorf("snapshot lost records: %d vs %d", repo3.Len(), repo2.Len())
	}
}

// TestStoreStatusWithoutPersistence reports a non-persistent service
// truthfully.
func TestStoreStatusWithoutPersistence(t *testing.T) {
	_, base := startServer(t, Config{})
	var status StoreStatusResponse
	mustJSON(t, "GET", base+"/v1/store", nil, &status, http.StatusOK)
	if status.Persistent || status.Engine != "" || status.Stats != nil {
		t.Errorf("store status = %+v, want non-persistent with no engine", status)
	}
}

// TestConcurrentSessions drives several sessions at once against one
// server (run under -race): all share the repository and all must converge
// to the ground truth.
func TestConcurrentSessions(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	gt := uncertain.GenerateFixed(udb, 0.5, 31)
	_, base := startServer(t, Config{DB: udb, MaxSessions: 16})
	want := wantStatuses(t, udb, gt)

	const n = 4
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			create := CreateSessionRequest{Query: paperSQL, Strategy: "general", Learning: "online", Seed: seed}
			var info SessionInfo
			code, err := doJSON("POST", base+"/v1/sessions", create, &info)
			if err != nil || code != http.StatusCreated {
				errs <- fmt.Errorf("create: status %d, err %v", code, err)
				return
			}
			if !info.Done {
				if _, err := driveSession(base, info.ID, udb, gt); err != nil {
					errs <- err
					return
				}
			}
			var st StatusResponse
			code, err = doJSON("GET", base+"/v1/sessions/"+info.ID+"/status", nil, &st)
			if err != nil || code != http.StatusOK {
				errs <- fmt.Errorf("status: %d, err %v", code, err)
				return
			}
			for row, rs := range st.RowStatus {
				if rs.Status != want[row] {
					errs <- fmt.Errorf("session %s row %d: %q, ground truth %q", info.ID, row, rs.Status, want[row])
					return
				}
			}
		}(int64(100 + i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

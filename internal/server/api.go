package server

import "qres/internal/store"

// Wire types of the resolution service's HTTP/JSON API (version v1).
//
// A resolution session is created over a query and a strategy; a remote
// oracle then alternates GET /v1/sessions/{id}/probe (which verification
// the Probe Selector wants next) with POST /v1/sessions/{id}/answer until
// the session reports done. Probe delivery is idempotent: retrying the
// GET returns the same outstanding probe, and the POST names the tuple it
// answers, so a lost response cannot misattribute an answer.

// CreateSessionRequest starts a resolution session.
type CreateSessionRequest struct {
	// Query is the SPJU SQL statement to resolve.
	Query string `json:"query"`
	// Strategy selects probe selection: qvalue, ro, general (default),
	// random, greedy, lal-only.
	Strategy string `json:"strategy,omitempty"`
	// Learning selects probability learning: ep, offline, online (default).
	Learning string `json:"learning,omitempty"`
	// Model selects the Learner's classifier: rf (default) or nb.
	Model string `json:"model,omitempty"`
	// Seed fixes the session's random choices (0 is a valid fixed seed).
	Seed int64 `json:"seed,omitempty"`
	// Trees overrides the forest size (default 100).
	Trees int `json:"trees,omitempty"`
	// Parallelism bounds the session's worker counts per parallel
	// dimension. Omitted dimensions (or the whole object) default to one
	// worker per CPU; results are bit-identical for any combination.
	Parallelism *ParallelismJSON `json:"parallelism,omitempty"`
	// Incremental toggles the incremental scoring caches (and with them
	// component-sharded selection). Omitted means on; probe choices are
	// identical either way, so switching it off is purely diagnostic.
	Incremental *bool `json:"incremental,omitempty"`
	// ForestWorkers bounds forest-training parallelism (0 = one worker
	// per CPU, 1 = serial).
	//
	// Deprecated: set Parallelism.Forest instead. Honored only when
	// Parallelism leaves the forest dimension unset.
	ForestWorkers int `json:"forest_workers,omitempty"`
}

// ParallelismJSON is the wire form of the per-dimension worker bounds
// (zero = one worker per CPU, 1 = serial).
type ParallelismJSON struct {
	// Forest bounds forest-training parallelism in the Learner.
	Forest int `json:"forest,omitempty"`
	// Rescore bounds incremental-rescore parallelism in the utility caches.
	Rescore int `json:"rescore,omitempty"`
	// Shards bounds how many connected components are scored concurrently.
	Shards int `json:"shards,omitempty"`
	// Engine bounds morsel-driven parallelism when the session's query is
	// evaluated. Results are bit-identical for any value.
	Engine int `json:"engine,omitempty"`
}

// SessionInfo describes one live session.
type SessionInfo struct {
	ID string `json:"id"`
	// Strategy is the configuration's display name (e.g. "General+LAL").
	Strategy string `json:"strategy"`
	// Rows is the number of query result rows under resolution.
	Rows int `json:"rows"`
	// Probes is the number of answers recorded so far.
	Probes int `json:"probes"`
	// KnownReused counts verifications served from the shared repository
	// instead of the oracle.
	KnownReused int  `json:"known_reused"`
	Done        bool `json:"done"`
	// Components is the number of variable-disjoint connected components
	// the session's provenance splits into (each resolved by its own shard
	// when there is more than one).
	Components int `json:"components"`
	// ComponentGroup fingerprints the component structure; sessions over
	// the same query and repository state share a group and are co-located
	// on one shard group over the shared repository view.
	ComponentGroup string `json:"component_group"`
	// Parallelism reports the session's effective worker bounds.
	Parallelism ParallelismJSON `json:"parallelism"`
	// CreatedUnix and LastUsedUnix are Unix seconds.
	CreatedUnix  int64 `json:"created_unix"`
	LastUsedUnix int64 `json:"last_used_unix"`
}

// ProbeResponse is the outstanding verification request, or done.
type ProbeResponse struct {
	Done bool `json:"done"`
	// Probe is set when Done is false.
	Probe *ProbeJSON `json:"probe,omitempty"`
}

// ProbeJSON renders one probe request for a remote oracle.
type ProbeJSON struct {
	Table string `json:"table"`
	Index int    `json:"index"`
	// Round is the probe-selection round this request belongs to.
	Round int `json:"round"`
	// Values are the tuple's rendered column values.
	Values []string `json:"values"`
	// Meta is the tuple's metadata.
	Meta map[string]string `json:"meta,omitempty"`
}

// AnswerRequest delivers the oracle's verdict for the outstanding probe.
type AnswerRequest struct {
	Table  string `json:"table"`
	Index  int    `json:"index"`
	Answer bool   `json:"answer"`
}

// AnswerResponse acknowledges a recorded answer.
type AnswerResponse struct {
	Done bool `json:"done"`
	// Probes is the total number of answers recorded in this session.
	Probes int `json:"probes"`
}

// RowStatusJSON is the live resolution status of one output row.
type RowStatusJSON struct {
	Row int `json:"row"`
	// Values are the row's rendered column values.
	Values []string `json:"values"`
	// Status is "unknown", "correct" or "incorrect".
	Status string `json:"status"`
}

// StatusResponse reports a session's live resolution state — the paper's
// interactive view of which answers are already decided.
type StatusResponse struct {
	SessionInfo
	RowStatus []RowStatusJSON `json:"row_status"`
}

// StoreStatusResponse (GET /v1/store) describes the persistence engine
// behind the shared repository.
type StoreStatusResponse struct {
	// Persistent reports whether answers are durably logged at all.
	Persistent bool `json:"persistent"`
	// Engine names the storage engine ("segmented", "flat"), empty when
	// persistence is disabled.
	Engine string `json:"engine,omitempty"`
	// WALRecords is the replay backlog a restart right now would face.
	WALRecords int `json:"wal_records"`
	// RepositoryRecords is the size of the in-memory shared repository.
	RepositoryRecords int `json:"repository_records"`
	// Stats carries the segmented engine's full counters (segment
	// inventory, group-commit and compaction totals); nil for other
	// engines.
	Stats *store.Stats `json:"stats,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody carries a stable machine-readable code (see the Code*
// constants) plus human-readable detail. Clients branch on Code; Message
// may change between releases.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

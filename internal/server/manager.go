package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"qres/internal/engine"
	"qres/internal/obs"
	"qres/internal/resolve"
)

// session is one live resolution session hosted by the service. The
// per-session mutex serializes probe selection and answer recording; the
// session is parked (no goroutine, no lock held) between the two, so a
// remote oracle may take arbitrarily long per answer without pinning
// server resources.
type session struct {
	id      string
	created time.Time

	mu       sync.Mutex
	inner    *resolve.Session
	result   *engine.Result
	name     string          // configuration display name
	scope    *obs.Scope      // request-scoped trace identity (session + request IDs)
	group    string          // component signature; sessions with equal groups co-locate
	par      ParallelismJSON // effective worker bounds, echoed in SessionInfo
	lastUsed time.Time
	probes   int
	done     bool
}

// touch updates the idle clock. Callers hold s.mu.
func (s *session) touch() { s.lastUsed = time.Now() }

// manager owns the live sessions: bounded admission (max sessions, 429
// backpressure), lookup, TTL eviction of idle sessions, and the shard
// groups — sessions with equal component signatures, counted together so
// the service can see how much co-locatable load each structure carries
// over the one shared repository view.
type manager struct {
	max int
	ttl time.Duration
	reg *obs.Registry

	mu       sync.Mutex
	sessions map[string]*session
	groups   map[string]int // component signature -> live session count
}

func newManager(max int, ttl time.Duration, reg *obs.Registry) *manager {
	return &manager{max: max, ttl: ttl, reg: reg,
		sessions: make(map[string]*session), groups: make(map[string]int)}
}

// errCapacity is returned by add when the session cap is reached.
var errCapacity = fmt.Errorf("session capacity reached")

// add admits a new session, sweeping expired ones first so idle sessions
// never block new work.
func (m *manager) add(s *session) error {
	m.sweep()
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.sessions) >= m.max {
		return errCapacity
	}
	m.sessions[s.id] = s
	if s.group != "" {
		m.groups[s.group]++
	}
	m.gaugesLocked()
	m.reg.Counter("sessions_created_total").Inc()
	return nil
}

// dropGroupLocked releases one session's group reference. Callers hold m.mu.
func (m *manager) dropGroupLocked(s *session) {
	if s.group == "" {
		return
	}
	if m.groups[s.group]--; m.groups[s.group] <= 0 {
		delete(m.groups, s.group)
	}
}

// gaugesLocked refreshes the session/group gauges. Callers hold m.mu.
func (m *manager) gaugesLocked() {
	m.reg.Gauge("sessions_active").Set(float64(len(m.sessions)))
	m.reg.Gauge("component_groups_active").Set(float64(len(m.groups)))
}

// get returns the session and refreshes its idle clock.
func (m *manager) get(id string) (*session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// remove deletes a session (explicit DELETE, or after retrieval of a
// finished resolution).
func (m *manager) remove(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return false
	}
	delete(m.sessions, id)
	m.dropGroupLocked(s)
	m.gaugesLocked()
	return true
}

// list snapshots the live sessions.
func (m *manager) list() []*session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, s)
	}
	return out
}

// sweep evicts sessions idle longer than the TTL and reports how many.
func (m *manager) sweep() int {
	if m.ttl <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-m.ttl)
	m.mu.Lock()
	defer m.mu.Unlock()
	evicted := 0
	for id, s := range m.sessions {
		s.mu.Lock()
		idle := s.lastUsed.Before(cutoff)
		s.mu.Unlock()
		if idle {
			delete(m.sessions, id)
			m.dropGroupLocked(s)
			evicted++
		}
	}
	if evicted > 0 {
		m.gaugesLocked()
		m.reg.Counter("sessions_expired_total").Add(int64(evicted))
	}
	return evicted
}

// newSessionID returns a 16-hex-digit random identifier.
func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return hex.EncodeToString(b[:])
}

package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// postRaw posts a raw JSON payload and decodes the response body into a
// generic map, returning it with the status code. Unlike doJSON it decodes
// error responses too, so tests can assert on the error body shape.
func postRaw(t *testing.T, url, payload string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, body
}

// errCode extracts the code from a {"error": {"code": ..., "message": ...}}
// body, failing the test if the body has any other shape.
func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	e, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("error body missing nested object: %v", body)
	}
	code, ok := e["code"].(string)
	if !ok || code == "" {
		t.Fatalf("error body missing code: %v", body)
	}
	if msg, ok := e["message"].(string); !ok || msg == "" {
		t.Fatalf("error body missing message: %v", body)
	}
	return code
}

// Every error response carries the documented {"error": {"code", "message"}}
// body, and the codes are the stable machine-readable names from the README
// error contract — clients dispatch on them, so they are part of the API.
func TestErrorCodeContract(t *testing.T) {
	_, base := startServer(t, Config{MaxSessions: 1})

	if st, body := postRaw(t, base+"/v1/sessions", `{"query": ""}`); st != http.StatusBadRequest {
		t.Errorf("empty query: status %d", st)
	} else if c := errCode(t, body); c != CodeBadRequest {
		t.Errorf("empty query: code %q, want %q", c, CodeBadRequest)
	}

	resp, err := http.Get(base + "/v1/sessions/deadbeef/probe")
	if err != nil {
		t.Fatal(err)
	}
	var nf map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&nf); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status %d", resp.StatusCode)
	} else if c := errCode(t, nf); c != CodeUnknownSession {
		t.Errorf("unknown session: code %q, want %q", c, CodeUnknownSession)
	}

	var info SessionInfo
	mustJSON(t, "POST", base+"/v1/sessions", CreateSessionRequest{Query: paperSQL}, &info, http.StatusCreated)

	// Session cap of one: the next create is rejected with the capacity code.
	if st, body := postRaw(t, base+"/v1/sessions", `{"query": "SELECT Organization FROM Roles"}`); st != http.StatusTooManyRequests {
		t.Errorf("capacity: status %d", st)
	} else if c := errCode(t, body); c != CodeCapacity {
		t.Errorf("capacity: code %q, want %q", c, CodeCapacity)
	}

	sessURL := base + "/v1/sessions/" + info.ID

	// Answering before fetching a probe: no_probe_pending.
	if st, body := postRaw(t, sessURL+"/answer", `{"table": "Roles", "index": 0, "answer": true}`); st != http.StatusConflict {
		t.Errorf("no probe pending: status %d", st)
	} else if c := errCode(t, body); c != CodeNoProbePending {
		t.Errorf("no probe pending: code %q, want %q", c, CodeNoProbePending)
	}

	var pr ProbeResponse
	mustJSON(t, "GET", sessURL+"/probe", nil, &pr, http.StatusOK)
	if pr.Done {
		t.Fatal("session done before any answer")
	}

	// Answering a tuple that does not exist: unknown_variable.
	if st, body := postRaw(t, sessURL+"/answer", `{"table": "NoSuchTable", "index": 0, "answer": true}`); st != http.StatusBadRequest {
		t.Errorf("unknown variable: status %d", st)
	} else if c := errCode(t, body); c != CodeUnknownVariable {
		t.Errorf("unknown variable: code %q, want %q", c, CodeUnknownVariable)
	}

	// Answering a tuple other than the outstanding probe: probe_mismatch.
	other := AnswerRequest{Table: "Roles", Index: 0}
	if pr.Probe.Table == other.Table && pr.Probe.Index == other.Index {
		other.Index = 1
	}
	raw, _ := json.Marshal(other)
	if st, body := postRaw(t, sessURL+"/answer", string(raw)); st != http.StatusConflict {
		t.Errorf("probe mismatch: status %d", st)
	} else if c := errCode(t, body); c != CodeProbeMismatch {
		t.Errorf("probe mismatch: code %q, want %q", c, CodeProbeMismatch)
	}
}

// The create API accepts both the deprecated flat worker fields and the
// new nested parallelism object, and SessionInfo always emits the new
// shape with deprecated fields folded in.
func TestParallelismFieldCompat(t *testing.T) {
	_, base := startServer(t, Config{})

	// Old shape: flat forest_workers still parses and is folded into the
	// emitted parallelism object.
	st, body := postRaw(t, base+"/v1/sessions",
		`{"query": "SELECT Organization FROM Roles", "strategy": "general", "learning": "offline", "trees": 5, "forest_workers": 3}`)
	if st != http.StatusCreated {
		t.Fatalf("create with forest_workers: status %d (%v)", st, body)
	}
	par, ok := body["parallelism"].(map[string]any)
	if !ok {
		t.Fatalf("SessionInfo missing parallelism object: %v", body)
	}
	if f, _ := par["forest"].(float64); int(f) != 3 {
		t.Errorf("deprecated forest_workers=3 not folded into parallelism.forest: %v", par)
	}

	// New shape: nested parallelism round-trips, and the new field wins
	// when both are present.
	st, body = postRaw(t, base+"/v1/sessions",
		`{"query": "SELECT Organization FROM Roles", "strategy": "general", "learning": "offline", "trees": 5, "forest_workers": 3, "parallelism": {"forest": 2, "shards": 1}}`)
	if st != http.StatusCreated {
		t.Fatalf("create with parallelism: status %d (%v)", st, body)
	}
	par, _ = body["parallelism"].(map[string]any)
	if f, _ := par["forest"].(float64); int(f) != 2 {
		t.Errorf("parallelism.forest should win over forest_workers: %v", par)
	}
	if s, _ := par["shards"].(float64); int(s) != 1 {
		t.Errorf("parallelism.shards not echoed: %v", par)
	}
	if g, _ := body["component_group"].(string); len(g) != 16 {
		t.Errorf("component_group not a 16-hex signature: %q", g)
	}
	if c, _ := body["components"].(float64); c < 1 {
		t.Errorf("components not reported: %v", body["components"])
	}

	// incremental: false is accepted (sessions fall back to full rescans;
	// resolution behavior is covered by the resolve-level equivalence tests).
	st, body = postRaw(t, base+"/v1/sessions",
		`{"query": "SELECT Organization FROM Roles", "incremental": false}`)
	if st != http.StatusCreated {
		t.Fatalf("create with incremental=false: status %d (%v)", st, body)
	}

	// The info endpoint emits the same parallelism shape as create.
	id, _ := body["id"].(string)
	resp, err := http.Get(base + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var again map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatalf("decode info: %v", err)
	}
	if _, ok := again["parallelism"].(map[string]any); !ok {
		t.Errorf("GET session info missing parallelism: %v", again)
	}
}

// Package server exposes resolution sessions as an HTTP/JSON service: the
// paper's oracle is a human (crowd worker or domain expert) answering one
// probe at a time, so the service splits the resolution loop at the probe
// boundary — GET a probe, deliberate for as long as it takes, POST the
// answer — while hosting many concurrent sessions against one loaded
// uncertain database. All sessions share a single Known Probes Repository
// (cross-session probe reuse, Section 4's accumulation over time), which
// is made durable by a write-ahead log appended on every answer plus an
// atomic snapshot on graceful shutdown.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"qres/internal/engine"
	"qres/internal/obs"
	"qres/internal/resolve"
	"qres/internal/sqlparse"
	"qres/internal/store"
	"qres/internal/uncertain"
)

// ProbeStore is the durability contract the service needs from a storage
// engine: the answer path pairs each repository add with a WAL append
// inside one Update, graceful shutdown snapshots and closes. Both the flat
// resolve.Store and the segmented store.Store satisfy it.
type ProbeStore interface {
	// Update runs fn with an append function; the appended records are
	// durable when Update returns.
	Update(fn func(append func(...resolve.ProbeRecord) error) error) error
	// Snapshot persists the repository so recovery no longer needs the
	// records the WAL held at the time of the call.
	Snapshot(repo *resolve.Repository) error
	// WALRecords reports the records a restart right now would replay.
	WALRecords() int
	// Close releases the store without snapshotting.
	Close() error
}

// Config assembles a resolution service.
type Config struct {
	// DB is the loaded uncertain database every session queries. Required.
	DB *uncertain.DB
	// Repo is the shared Known Probes Repository. Nil creates an empty
	// one (or, when Store is set, the store's recovered repository is
	// used instead).
	Repo *resolve.Repository
	// Store persists the shared repository (WAL + snapshot). Nil disables
	// persistence.
	Store ProbeStore
	// MaxSessions caps concurrently live sessions; creation beyond the
	// cap returns 429 (default 64).
	MaxSessions int
	// SessionTTL evicts sessions idle longer than this (default 30m).
	SessionTTL time.Duration
	// Parallel is the default per-session worker bounds, used by sessions
	// whose create request carries no "parallelism" object (zero = one
	// worker per CPU). Results are bit-identical for any bounds.
	Parallel resolve.Parallelism
	// Registry collects service and per-stage pipeline metrics, rendered
	// by GET /metrics. Nil creates a private registry.
	Registry *obs.Registry
	// Trace receives a span event for every pipeline stage each hosted
	// session executes (selector, retrain, probe, ...). Spans carry the
	// hosting session's ID and the ID of the HTTP request that triggered
	// the work. Nil disables span tracing (metrics still collect).
	Trace obs.Sink
	// SlowLog receives one structured event (stage "http_request") per
	// request slower than SlowRequestThreshold. Nil disables the log; the
	// "slow_requests_total" counter increments either way.
	SlowLog obs.Sink
	// SlowRequestThreshold is the slow-request latency bound (default
	// 500ms).
	SlowRequestThreshold time.Duration
	// RetrainStallThreshold counts answer-path retrains at least this slow
	// as "retrain_stalls_total" (default 100ms; negative disables).
	RetrainStallThreshold time.Duration
}

// Server is the resolution service: an http.Handler plus the session
// manager and shared repository behind it.
type Server struct {
	udb   *uncertain.DB
	repo  *resolve.Repository
	store ProbeStore
	reg   *obs.Registry
	mgr   *manager
	mux   *http.ServeMux

	trace          obs.Sink
	slowLog        obs.Sink
	slowThreshold  time.Duration
	stallThreshold time.Duration
	defaultPar     resolve.Parallelism

	httpServer *http.Server
	sweepStop  chan struct{}
	sweepDone  chan struct{}
}

// New builds the service. A background janitor evicts idle sessions;
// Shutdown (or Close) stops it.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = 30 * time.Minute
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Repo == nil {
		cfg.Repo = resolve.NewRepository()
	}
	if cfg.SlowRequestThreshold <= 0 {
		cfg.SlowRequestThreshold = 500 * time.Millisecond
	}
	switch {
	case cfg.RetrainStallThreshold == 0:
		cfg.RetrainStallThreshold = 100 * time.Millisecond
	case cfg.RetrainStallThreshold < 0:
		cfg.RetrainStallThreshold = 0
	}
	s := &Server{
		udb:            cfg.DB,
		repo:           cfg.Repo,
		store:          cfg.Store,
		reg:            cfg.Registry,
		trace:          cfg.Trace,
		slowLog:        cfg.SlowLog,
		slowThreshold:  cfg.SlowRequestThreshold,
		stallThreshold: cfg.RetrainStallThreshold,
		defaultPar:     cfg.Parallel,
		mgr:            newManager(cfg.MaxSessions, cfg.SessionTTL, cfg.Registry),
		mux:            http.NewServeMux(),
		sweepStop:      make(chan struct{}),
		sweepDone:      make(chan struct{}),
	}
	s.routes()
	go s.janitor(cfg.SessionTTL)
	return s, nil
}

// routes wires the v1 API. Every route runs under the instrumentation
// middleware (request IDs, latency histograms, slow-request log); the
// route label is the logical operation, keeping metric cardinality fixed.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/sessions", s.instrument("create_session", s.handleCreateSession))
	s.mux.HandleFunc("GET /v1/sessions", s.instrument("list_sessions", s.handleListSessions))
	s.mux.HandleFunc("GET /v1/sessions/{id}/probe", s.instrument("probe", s.handleProbe))
	s.mux.HandleFunc("POST /v1/sessions/{id}/answer", s.instrument("answer", s.handleAnswer))
	s.mux.HandleFunc("GET /v1/sessions/{id}/status", s.instrument("status", s.handleStatus))
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.instrument("status", s.handleStatus))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("delete_session", s.handleDeleteSession))
	s.mux.HandleFunc("GET /v1/store", s.instrument("store_status", s.handleStoreStatus))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// janitor periodically evicts idle sessions until Shutdown.
func (s *Server) janitor(ttl time.Duration) {
	defer close(s.sweepDone)
	period := ttl / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-t.C:
			s.mgr.sweep()
		}
	}
}

// Serve accepts connections on ln until Shutdown. It blocks, returning
// http.ErrServerClosed after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.httpServer = &http.Server{Handler: s}
	return s.httpServer.Serve(ln)
}

// Shutdown gracefully stops the service: in-flight handlers drain (via
// http.Server.Shutdown when Serve is running), the janitor stops, and the
// shared repository is snapshotted atomically with the WAL flushed and
// reset — after Shutdown the snapshot alone reproduces every acknowledged
// answer.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.httpServer != nil {
		err = s.httpServer.Shutdown(ctx)
	}
	select {
	case <-s.sweepStop:
	default:
		close(s.sweepStop)
	}
	<-s.sweepDone
	if s.store != nil {
		if serr := s.store.Snapshot(s.repo); serr != nil && err == nil {
			err = serr
		}
		if cerr := s.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Close is Shutdown with a short drain deadline.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// Repo exposes the shared repository (for tests and the serve binary).
func (s *Server) Repo() *resolve.Repository { return s.repo }

// --- handlers ---

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, errors.New("query is required"))
		return
	}
	cfg, err := sessionConfig(req, s.defaultPar)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	plan, err := sqlparse.ParseAndCompile(req.Query, s.udb.Data())
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("query: %w", err))
		return
	}
	// The session's observability scope is created before any pipeline
	// work runs, so even the setup spans (query evaluation, provenance,
	// initial training) carry the session ID and the creating request's ID.
	id := newSessionID()
	scope := obs.NewScope(id)
	scope.SetRequest(RequestID(r.Context()))
	cfg.Obs = obs.New("", s.trace, s.reg).WithScope(scope)
	cfg.RetrainStallThreshold = s.stallThreshold
	// Session queries evaluate under the morsel-parallel executor; the
	// config's Engine dimension bounds the worker count (0 = per CPU).
	result, err := engine.RunWith(s.udb, plan, engine.Exec{Obs: cfg.Obs, Workers: cfg.Parallel.Engine})
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("query: %w", err))
		return
	}
	inner, err := resolve.NewSession(s.udb, result, nil, s.repo, cfg)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	sess := &session{
		id:       id,
		created:  time.Now(),
		lastUsed: time.Now(),
		inner:    inner,
		result:   result,
		name:     cfg.Name(),
		scope:    scope,
		group:    inner.ComponentSignature(),
		par:      effectiveParallelism(cfg),
		done:     inner.Done(),
	}
	if err := s.mgr.add(sess); err != nil {
		s.reg.Counter("backpressure_rejections_total").Inc()
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	writeJSONStatus(w, http.StatusCreated, s.info(sess))
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	sessions := s.mgr.list()
	infos := make([]SessionInfo, 0, len(sessions))
	for _, sess := range sessions {
		infos = append(infos, s.info(sess))
	}
	writeJSON(w, infos)
}

func (s *Server) handleProbe(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownSession)
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.touch()
	sess.scope.SetRequest(RequestID(r.Context()))
	req, done, err := sess.inner.NextProbe()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if done {
		sess.done = true
		writeJSON(w, ProbeResponse{Done: true})
		return
	}
	ref, ok := s.udb.RefFor(req.Var)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("probe selected unknown variable %d", req.Var))
		return
	}
	writeJSON(w, ProbeResponse{Probe: &ProbeJSON{
		Table:  ref.Relation,
		Index:  ref.Index,
		Round:  req.Round,
		Values: s.tupleValues(ref),
		Meta:   req.Meta,
	}})
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownSession)
		return
	}
	var req AnswerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	v, ok := s.udb.VarFor(req.Table, req.Index)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: no tuple %s[%d]", resolve.ErrUnknownVariable, req.Table, req.Index))
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.touch()
	sess.scope.SetRequest(RequestID(r.Context()))
	// SubmitAnswer adds the record to the shared repository and the append
	// logs it to the WAL; running both inside one Store.Update makes the
	// pair atomic with respect to Snapshot, so a periodic snapshot cannot
	// capture the repository add and then see the append land in the
	// freshly reset WAL (which would replay the record twice on recovery).
	var done bool
	var submitErr error
	submitAndLog := func(append func(...resolve.ProbeRecord) error) error {
		done, submitErr = sess.inner.SubmitAnswer(v, req.Answer)
		if submitErr != nil || append == nil {
			return nil
		}
		return append(resolve.ProbeRecord{Var: v, HasVar: true, Meta: s.udb.MetaFor(v), Answer: req.Answer})
	}
	var walErr error
	if s.store != nil {
		walErr = s.store.Update(submitAndLog)
	} else {
		_ = submitAndLog(nil)
	}
	if submitErr != nil {
		// Answer for the wrong tuple, or no probe outstanding: the
		// session state is untouched, the client should re-GET the probe.
		writeError(w, http.StatusConflict, submitErr)
		return
	}
	if walErr != nil {
		// The answer is recorded in memory but not durable; surface
		// the fault rather than acknowledging a lost write.
		writeError(w, http.StatusInternalServerError, fmt.Errorf("wal append: %w", walErr))
		return
	}
	sess.probes++
	sess.done = done
	s.reg.Counter("answers_total").Inc()
	if s.store != nil {
		s.reg.Gauge("wal_records").Set(float64(s.store.WALRecords()))
	}
	writeJSON(w, AnswerResponse{Done: done, Probes: sess.probes})
}

// handleStoreStatus reports the persistence engine behind the shared
// repository. The segmented engine additionally exposes its full stats
// (segments, group-commit counters, compactions); the flat engine reports
// just its WAL backlog.
func (s *Server) handleStoreStatus(w http.ResponseWriter, r *http.Request) {
	resp := StoreStatusResponse{
		Persistent:        s.store != nil,
		RepositoryRecords: s.repo.Len(),
	}
	if s.store != nil {
		resp.Engine = "flat"
		resp.WALRecords = s.store.WALRecords()
		if st, ok := s.store.(interface{ Stats() store.Stats }); ok {
			stats := st.Stats()
			resp.Engine = stats.Engine
			resp.Stats = &stats
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownSession)
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.touch()
	resp := StatusResponse{SessionInfo: s.infoLocked(sess)}
	for i, st := range sess.inner.Snapshot() {
		values := make([]string, len(sess.result.Rows[i].Tuple))
		for j, v := range sess.result.Rows[i].Tuple {
			values[j] = v.String()
		}
		resp.RowStatus = append(resp.RowStatus, RowStatusJSON{Row: i, Values: values, Status: st.String()})
	}
	writeJSON(w, resp)
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if !s.mgr.remove(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, errUnknownSession)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.Gauge("repository_records").Set(float64(s.repo.Len()))
	obs.CollectRuntime(s.reg)
	if err := obs.WriteText(w, s.reg.Snapshot()); err != nil {
		writeError(w, http.StatusInternalServerError, err)
	}
}

// --- helpers ---

// info snapshots a session's public description (taking its lock).
func (s *Server) info(sess *session) SessionInfo {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return s.infoLocked(sess)
}

// infoLocked is info with sess.mu already held.
func (s *Server) infoLocked(sess *session) SessionInfo {
	stats := sess.inner.Stats()
	return SessionInfo{
		ID:             sess.id,
		Strategy:       sess.name,
		Rows:           len(sess.result.Rows),
		Probes:         stats.Probes,
		KnownReused:    stats.KnownReused,
		Done:           sess.inner.Done(),
		Components:     sess.inner.Components(),
		ComponentGroup: sess.group,
		Parallelism:    sess.par,
		CreatedUnix:    sess.created.Unix(),
		LastUsedUnix:   sess.lastUsed.Unix(),
	}
}

// effectiveParallelism renders the worker bounds a config resolves to on
// the wire — the deprecated forest_workers field folds into the new shape,
// so responses always emit the current contract.
func effectiveParallelism(cfg resolve.Config) ParallelismJSON {
	p := ParallelismJSON{
		Forest:  cfg.Parallel.Forest,
		Rescore: cfg.Parallel.Rescore,
		Shards:  cfg.Parallel.Shards,
		Engine:  cfg.Parallel.Engine,
	}
	if p.Forest == 0 {
		p.Forest = cfg.ForestWorkers
	}
	if p.Rescore == 0 {
		p.Rescore = cfg.RescoreWorkers
	}
	return p
}

// tupleValues renders the referenced tuple's column values.
func (s *Server) tupleValues(ref uncertain.TupleRef) []string {
	rel, ok := s.udb.Data().Relation(ref.Relation)
	if !ok {
		return nil
	}
	tup := rel.At(ref.Index)
	out := make([]string, len(tup))
	for i, v := range tup {
		out[i] = v.String()
	}
	return out
}

// sessionConfig maps API names onto a resolve.Config (the same taxonomy
// the public qres options use). def is the server's default worker bounds
// for requests without a parallelism object; the deprecated forest_workers
// field is still honored when that object leaves the dimension unset.
func sessionConfig(req CreateSessionRequest, def resolve.Parallelism) (resolve.Config, error) {
	cfg := resolve.Config{Seed: req.Seed, Trees: req.Trees,
		ForestWorkers: req.ForestWorkers, Parallel: def}
	if p := req.Parallelism; p != nil {
		cfg.Parallel = resolve.Parallelism{
			Forest: p.Forest, Rescore: p.Rescore, Shards: p.Shards, Engine: p.Engine,
		}
	}
	if req.Incremental != nil && !*req.Incremental {
		cfg.DisableIncremental = true
	}
	switch strings.ToLower(req.Strategy) {
	case "", "general":
		cfg.Utility = resolve.General{}
	case "qvalue", "q-value":
		cfg.Utility = resolve.QValue{}
	case "ro":
		cfg.Utility = resolve.RO{}
	case "random":
		cfg.Baseline = resolve.BaselineRandom
	case "greedy":
		cfg.Baseline = resolve.BaselineGreedy
	case "lal-only", "lalonly":
		cfg.Baseline = resolve.BaselineLALOnly
	default:
		return cfg, fmt.Errorf("unknown strategy %q", req.Strategy)
	}
	switch strings.ToLower(req.Learning) {
	case "", "online":
		cfg.Learning = resolve.LearnOnline
	case "offline":
		cfg.Learning = resolve.LearnOffline
	case "ep":
		cfg.Learning = resolve.LearnEP
	default:
		return cfg, fmt.Errorf("unknown learning mode %q", req.Learning)
	}
	switch strings.ToLower(req.Model) {
	case "", "rf":
		cfg.Model = resolve.ModelRF
	case "nb":
		cfg.Model = resolve.ModelNB
	default:
		return cfg, fmt.Errorf("unknown model %q", req.Model)
	}
	return cfg, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	_ = json.NewEncoder(w).Encode(v)
}

// writeJSONStatus writes a JSON body with a non-200 status, setting the
// Content-Type before WriteHeader (headers set afterwards are ignored).
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError renders the stable error contract: HTTP status plus an
// {"error": {"code", "message"}} body, with the code resolved from the
// error's typed identity (errors.Is against the resolution sentinels).
func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: ErrorBody{
		Code:    errorCode(err, code),
		Message: err.Error(),
	}})
}

package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"time"

	"qres/internal/obs"
)

// Request-scoped observability: every request gets an ID (the client's
// X-Request-Id when present, a generated one otherwise) which is echoed in
// the response, threaded through the request context into the session's
// *obs.Scope — so every pipeline span the request triggers carries it —
// and stamped on the structured slow-request log. Around the handler the
// middleware maintains the per-route latency histogram, status-class
// request counter and in-flight gauge the load harness scrapes.

func init() {
	obs.RegisterMetricLabels("http_request_seconds", "route", "class")
	obs.RegisterMetricLabels("http_requests_total", "route", "class")
	obs.RegisterMetricLabels("http_in_flight", "route")
	obs.RegisterMetricLabels("slow_requests_total", "route")
}

// requestIDKey is the context key the request ID travels under.
type requestIDKey struct{}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID extracts the request ID from a context ("" when absent).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// newRequestID returns a 16-hex-digit random request identifier.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

// WriteHeader implements http.ResponseWriter.
func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// statusClass buckets a status code for metric labels ("2xx", "4xx", ...).
func statusClass(code int) string {
	return strconv.Itoa(code/100) + "xx"
}

// instrument wraps a route handler with request-scoped observability. The
// route label is the handler's logical name (e.g. "answer"), not the raw
// path, so label cardinality stays bounded.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = newRequestID()
		}
		w.Header().Set("X-Request-Id", reqID)
		r = r.WithContext(WithRequestID(r.Context(), reqID))

		inFlight := s.reg.Gauge("http_in_flight", route)
		inFlight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		dur := time.Since(start)
		inFlight.Add(-1)

		class := statusClass(rec.status)
		s.reg.Histogram("http_request_seconds", route, class).Observe(dur.Seconds())
		s.reg.Counter("http_requests_total", route, class).Inc()
		if dur >= s.slowThreshold {
			s.reg.Counter("slow_requests_total", route).Inc()
			if s.slowLog != nil {
				s.slowLog.Emit(obs.Event{
					Time:    start,
					Stage:   obs.StageHTTPRequest,
					Round:   -1,
					Dur:     dur,
					Request: reqID,
					Attrs: []obs.Attr{
						obs.Str("route", route),
						obs.Str("method", r.Method),
						obs.Str("path", r.URL.Path),
						obs.Int("status", rec.status),
					},
				})
			}
		}
	}
}

package resolve

import (
	"sort"

	"qres/internal/boolexpr"
)

// roEpsilon is the ε of the paper's Formula (2): a small positive constant
// keeping α finite when the minimal term weight is 0.
const roEpsilon = 1e-6

// Utility assigns numeric scores to candidate probes, quantifying each
// probe's expected contribution towards evaluating the Boolean provenance
// expressions (paper Section 5). The three implementations recast the
// Interactive Boolean Evaluation algorithms of [28], [15]/[31] and [4] as
// score functions: for any expressions and probabilities, the probe the
// original algorithm would choose receives the highest score.
type Utility interface {
	// Name is the paper's name for the function ("Q-Value", "RO",
	// "General").
	Name() string
	// NeedsCNF reports whether the function requires per-expression CNFs
	// (only Q-Value does; large expressions are then split first).
	NeedsCNF() bool
	// Scores computes the round's utility for every candidate. prob gives
	// the Learner's current estimate π̃; round counts selection rounds
	// from 0 (the General utility alternates its two sub-functions on it).
	Scores(w *workset, prob func(boolexpr.Var) float64, candidates []boolexpr.Var, round int) map[boolexpr.Var]float64
}

// QValue is the paper's Formula (1): the expected drop in the nt·nc
// product (DNF terms × CNF clauses) over all expressions containing the
// candidate. It is maximal for probes guaranteed to decide expressions —
// either count reaching 0 zeroes the product — and balances proving True
// (clauses vanish) against proving False (terms vanish). Derived from the
// Stochastic Boolean Function Evaluation analysis of Deshpande,
// Hellerstein and Kletenik [28].
type QValue struct{}

// Name implements Utility.
func (QValue) Name() string { return "Q-Value" }

// NeedsCNF implements Utility: Q-Value is the one CNF-dependent function.
func (QValue) NeedsCNF() bool { return true }

// Scores implements Utility.
func (QValue) Scores(w *workset, prob func(boolexpr.Var) float64, candidates []boolexpr.Var, _ int) map[boolexpr.Var]float64 {
	out := make(map[boolexpr.Var]float64, len(candidates))
	for _, v := range candidates {
		out[v] = qvalueVarScore(w, v, prob(v))
	}
	return out
}

// qvalueVarScore is one candidate's Formula (1) score: the expected drop
// in the nt·nc product over the undecided expressions containing v. It is
// shared verbatim by the full recompute and the incremental cache so both
// paths produce bit-identical floats.
func qvalueVarScore(w *workset, v boolexpr.Var, p float64) float64 {
	var score float64
	for _, i := range w.exprsWith(v) {
		e, cnf := w.exprs[i], w.cnfs[i]
		nt, nc := float64(e.NumTerms()), float64(cnf.NumClauses())
		ntT, ncT, ntF, ncF := e.AssumeCounts(cnf, v)
		score += nt*nc -
			p*float64(ntT)*float64(ncT) -
			(1-p)*float64(ntF)*float64(ncF)
	}
	return score
}

// RO is the paper's Formula (2): highest for the variables least likely to
// be True inside the DNF terms most likely to be True, across all
// expressions. Such variables make progress in both directions — verifying
// the likeliest term proves an expression True; a False answer eliminates
// the variable's term. The term weight W(T) = (1/|T|)·Π π̃(x) divides the
// term's truth probability by the probes needed to evaluate it; the factor
// α = (1+ε)/(ε + min_T W(T)) guarantees that term weight dominates the
// (1−π̃) tie-breaker. Recast from Boros and Ünlüyurt's read-once algorithm
// [15] as extended to multiple expressions in [31].
type RO struct{}

// Name implements Utility.
func (RO) Name() string { return "RO" }

// NeedsCNF implements Utility.
func (RO) NeedsCNF() bool { return false }

// Scores implements Utility.
func (RO) Scores(w *workset, prob func(boolexpr.Var) float64, candidates []boolexpr.Var, _ int) map[boolexpr.Var]float64 {
	return roScores(w, prob, candidates)
}

// weightGapTolerance is the resolution below which term weights count as
// tied when sizing α.
const weightGapTolerance = 1e-12

// roScores is Formula (2), shared by RO and the alternating General.
func roScores(w *workset, prob func(boolexpr.Var) float64, candidates []boolexpr.Var) map[boolexpr.Var]float64 {
	// bestTermWeight[v] = max weight of any term containing v; weights
	// collects every undecided term's weight for sizing α.
	bestTermWeight := make(map[boolexpr.Var]float64, len(candidates))
	var weights []float64
	for _, e := range w.exprs {
		if e.Decided() {
			continue
		}
		for _, t := range e.Terms() {
			weight := termWeight(t, prob)
			weights = append(weights, weight)
			for _, x := range t {
				if weight > bestTermWeight[x] {
					bestTermWeight[x] = weight
				}
			}
		}
	}
	alpha := roAlpha(weights)
	out := make(map[boolexpr.Var]float64, len(candidates))
	for _, v := range candidates {
		out[v] = roVarScore(prob(v), bestTermWeight[v], alpha)
	}
	return out
}

// termWeight is the paper's W(T) = (1/|T|)·Π π̃(x): the term's truth
// probability divided by the probes needed to evaluate it. Shared by the
// full recompute and the incremental per-expression weight cache.
func termWeight(t boolexpr.Term, prob func(boolexpr.Var) float64) float64 {
	weight := 1.0
	for _, x := range t {
		weight *= prob(x)
	}
	return weight / float64(len(t))
}

// roVarScore is one candidate's Formula (2) score given its best term
// weight and the dominance factor α.
func roVarScore(p, bestWeight, alpha float64) float64 {
	return (1 - p) + alpha*(bestWeight+roEpsilon)
}

// roAlpha sizes α from the multiset of undecided term weights. α must
// satisfy two dominance requirements from the paper's Formula (2)
// discussion: α·(W(T)+ε) > 1 for every term, so the weight summand always
// beats the (1−π̃) ≤ 1 tie-breaker — giving α ≥ (1+ε)/(ε+minW) — and, for
// "utility is strictly greater for variables occurring in terms with
// maximal weight" to hold, α·ΔW > 1 for every positive gap ΔW between
// distinct term weights — giving α > 1/gap for the smallest positive gap
// (weights within weightGapTolerance count as tied). weights is sorted in
// place.
func roAlpha(weights []float64) float64 {
	minW, gap := weightStats(weights)
	return roAlphaFromStats(minW, gap)
}

// roAlphaFromStats derives α from precomputed multiset statistics — the
// entry point of the incremental path, which maintains the sorted multiset
// across probes instead of re-sorting.
func roAlphaFromStats(minW, gap float64) float64 {
	alpha := (1 + roEpsilon) / (roEpsilon + minW)
	if gap > 0 {
		if a := (1 + roEpsilon) / gap; a > alpha {
			alpha = a
		}
	}
	return alpha
}

// weightStats returns the minimum term weight and the smallest positive
// difference between distinct weights (0 when all weights tie or the set
// is empty). weights is sorted in place.
func weightStats(weights []float64) (minW, gap float64) {
	if len(weights) == 0 {
		return 0, 0
	}
	sort.Float64s(weights)
	return weightStatsSorted(weights)
}

// weightStatsSorted is weightStats over an already-ascending slice — the
// incremental path maintains the multiset sorted and skips the sort.
func weightStatsSorted(weights []float64) (minW, gap float64) {
	if len(weights) == 0 {
		return 0, 0
	}
	minW = weights[0]
	gap = 0.0
	for i := 1; i < len(weights); i++ {
		if d := weights[i] - weights[i-1]; d > weightGapTolerance && (gap == 0 || d < gap) {
			gap = d
		}
	}
	return minW, gap
}

// General is the paper's third utility (Formulas (3) and (2) used
// alternately): one step targets proving expressions False — scoring each
// variable by the expected number of DNF terms its falsification would
// eliminate, Formula (3) — and the next targets proving them True via
// Formula (2), avoiding CNF computation entirely. Inspired by the
// alternating algorithm of Allen, Hellerstein, Kletenik and Ünlüyurt [4].
type General struct{}

// Name implements Utility.
func (General) Name() string { return "General" }

// NeedsCNF implements Utility.
func (General) NeedsCNF() bool { return false }

// Scores implements Utility.
func (General) Scores(w *workset, prob func(boolexpr.Var) float64, candidates []boolexpr.Var, round int) map[boolexpr.Var]float64 {
	if round%2 == 1 {
		return roScores(w, prob, candidates)
	}
	// Formula (3): (1 − π̃(v)) · Σ_φ (nt(φ) − nt(val_{v=False}(φ))).
	// The sum is exactly the number of undecided DNF terms containing v.
	termCount := make(map[boolexpr.Var]int, len(candidates))
	for _, e := range w.exprs {
		if e.Decided() {
			continue
		}
		for _, t := range e.Terms() {
			for _, x := range t {
				termCount[x]++
			}
		}
	}
	out := make(map[boolexpr.Var]float64, len(candidates))
	for _, v := range candidates {
		out[v] = generalFalseScore(prob(v), termCount[v])
	}
	return out
}

// generalFalseScore is one candidate's Formula (3) score from its
// undecided-term occurrence count.
func generalFalseScore(p float64, termCount int) float64 {
	return (1 - p) * float64(termCount)
}

// termOccurrences counts the undecided DNF terms containing v — the
// per-variable form of Formula (3)'s sum, used by the incremental cache to
// rescore only the variables a probe touched. Term counts are integers, so
// the per-variable scan and the full map build agree exactly.
func termOccurrences(w *workset, v boolexpr.Var) int {
	n := 0
	for _, i := range w.exprsWith(v) {
		for _, t := range w.exprs[i].Terms() {
			if t.Contains(v) {
				n++
			}
		}
	}
	return n
}

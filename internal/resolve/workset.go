package resolve

import (
	"fmt"
	"math/rand"
	"sort"

	"qres/internal/boolexpr"
)

// workset is the evolving state of Boolean evaluation: the (possibly
// split) provenance expressions simplified under all probe answers so far,
// their CNFs when the utility function needs them, and the inverted index
// from variables to the expressions they occur in. The index is built once
// at session start and maintained incrementally: each probe touches only
// the expressions that mention the probed variable, and the candidate set
// is kept as a live sorted list instead of being re-derived from scratch
// every round.
type workset struct {
	exprs  []boolexpr.Expr
	partOf []int // expression index -> original output-row index

	needCNF  bool
	cnfBound int
	cnfs     []boolexpr.CNF

	exprVars []map[boolexpr.Var]bool
	varIndex map[boolexpr.Var][]int

	// occ counts, per variable, the undecided expressions containing it;
	// cands is the ascending candidate list derived from it (variables
	// with occ > 0). Both are maintained by applyProbe.
	occ   map[boolexpr.Var]int
	cands []boolexpr.Var

	undecided int
	// rev is bumped once per applyProbe; score caches use it to verify
	// they reconciled every delta.
	rev uint64
}

// newWorkset builds the working state. exprs are the provenance
// expressions after splitting; partOf aligns them with output rows. When
// needCNF is set, every expression's CNF is computed up front (bounded by
// cnfBound clauses); a bound violation is an error — the caller should
// have split the expression first.
func newWorkset(exprs []boolexpr.Expr, partOf []int, needCNF bool, cnfBound int) (*workset, error) {
	w := &workset{
		exprs:    append([]boolexpr.Expr(nil), exprs...),
		partOf:   append([]int(nil), partOf...),
		needCNF:  needCNF,
		cnfBound: cnfBound,
		varIndex: make(map[boolexpr.Var][]int),
		occ:      make(map[boolexpr.Var]int),
	}
	w.exprVars = make([]map[boolexpr.Var]bool, len(w.exprs))
	if needCNF {
		w.cnfs = make([]boolexpr.CNF, len(w.exprs))
	}
	for i, e := range w.exprs {
		if err := w.refresh(i, e); err != nil {
			return nil, err
		}
		if !e.Decided() {
			w.undecided++
			for v := range w.exprVars[i] {
				w.occ[v]++
			}
		}
	}
	w.cands = make([]boolexpr.Var, 0, len(w.occ))
	for v := range w.occ {
		w.cands = append(w.cands, v)
	}
	sort.Slice(w.cands, func(i, j int) bool { return w.cands[i] < w.cands[j] })
	return w, nil
}

// refresh re-derives the per-expression caches after expression i becomes
// (or is initialized as) e.
func (w *workset) refresh(i int, e boolexpr.Expr) error {
	w.exprs[i] = e
	vars := e.Vars()
	set := make(map[boolexpr.Var]bool, len(vars))
	for _, v := range vars {
		set[v] = true
		w.varIndex[v] = appendUnique(w.varIndex[v], i)
	}
	w.exprVars[i] = set
	if w.needCNF {
		cnf, ok := e.ToCNF(w.cnfBound)
		if !ok {
			return fmt.Errorf("resolve: CNF of expression %d exceeds %d clauses; split it first", i, w.cnfBound)
		}
		w.cnfs[i] = cnf
	}
	return nil
}

func appendUnique(xs []int, x int) []int {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// done reports whether every expression is decided.
func (w *workset) done() bool { return w.undecided == 0 }

// exprsWith returns the indices of undecided expressions that still
// contain v, filtering stale index entries lazily.
func (w *workset) exprsWith(v boolexpr.Var) []int {
	idxs := w.varIndex[v]
	out := idxs[:0:0]
	for _, i := range idxs {
		if !w.exprs[i].Decided() && w.exprVars[i][v] {
			out = append(out, i)
		}
	}
	return out
}

// candidates returns the variables still occurring in undecided
// expressions, in ascending order: the candidate probes of the next
// iteration. Probing any other variable cannot advance evaluation, and
// the resolution invariant (never probe a variable that no longer matters)
// is enforced by drawing probes from this set only. The returned slice is
// a copy of the maintained list, so callers may hold it across applyProbe.
func (w *workset) candidates() []boolexpr.Var {
	return append([]boolexpr.Var(nil), w.cands...)
}

// probeDelta describes the effect of applying one probe answer: which
// expressions were re-simplified, which of those became decided, and which
// other variables had their surroundings change. It is the currency of the
// incremental hot path — score caches reconcile exactly this delta instead
// of rescoring every candidate.
type probeDelta struct {
	// probed is the answered variable; it leaves the candidate set.
	probed boolexpr.Var
	answer bool
	// touched are the indices of the undecided expressions that contained
	// probed and were re-simplified (every other expression kept its
	// cached simplified DNF and CNF untouched).
	touched []int
	// decided is the subset of touched that became Boolean constants.
	decided []int
	// affected are the variables other than probed occurring in the
	// touched expressions before simplification, ascending: exactly the
	// variables whose cached per-variable aggregates may now be stale.
	affected []boolexpr.Var
	// dropped is the subset of affected that no longer occurs in any
	// undecided expression and therefore left the candidate set.
	dropped []boolexpr.Var
}

// applyProbe substitutes the answer for v into every expression containing
// it, re-simplifying only those and updating the inverted index, the
// occurrence counts and the live candidate list. It returns the probe
// delta for cache reconciliation.
func (w *workset) applyProbe(v boolexpr.Var, answer bool) (*probeDelta, error) {
	val := boolexpr.NewValuation()
	val.Set(v, answer)
	d := &probeDelta{probed: v, answer: answer}
	affected := make(map[boolexpr.Var]bool)
	for _, i := range w.exprsWith(v) {
		for u := range w.exprVars[i] {
			w.occ[u]-- // expr i was undecided and contained u
			if u != v {
				affected[u] = true
			}
		}
		simplified := w.exprs[i].Simplify(val)
		if err := w.refresh(i, simplified); err != nil {
			return nil, err
		}
		if simplified.Decided() {
			w.undecided--
			d.decided = append(d.decided, i)
		} else {
			for u := range w.exprVars[i] {
				w.occ[u]++
			}
		}
		d.touched = append(d.touched, i)
	}
	delete(w.varIndex, v)
	delete(w.occ, v)
	w.dropCand(v)
	d.affected = make([]boolexpr.Var, 0, len(affected))
	for u := range affected {
		d.affected = append(d.affected, u)
	}
	sort.Slice(d.affected, func(i, j int) bool { return d.affected[i] < d.affected[j] })
	for _, u := range d.affected {
		if w.occ[u] == 0 {
			delete(w.occ, u)
			w.dropCand(u)
			d.dropped = append(d.dropped, u)
		}
	}
	w.rev++
	return d, nil
}

// dropCand removes v from the sorted candidate list, if present.
func (w *workset) dropCand(v boolexpr.Var) {
	i := sort.Search(len(w.cands), func(i int) bool { return w.cands[i] >= v })
	if i < len(w.cands) && w.cands[i] == v {
		w.cands = append(w.cands[:i], w.cands[i+1:]...)
	}
}

// rowStatus aggregates part truth values back to original output rows
// (inverse of splitting): a row is True if some part is True, False if all
// parts are False, and undecided otherwise.
func (w *workset) rowStatus(numRows int) []rowState {
	states := make([]rowState, numRows)
	counts := make([]int, numRows)
	falses := make([]int, numRows)
	for i, e := range w.exprs {
		row := w.partOf[i]
		counts[row]++
		switch {
		case e.IsTrue():
			states[row] = rowTrue
		case e.IsFalse():
			falses[row]++
		}
	}
	for r := range states {
		if states[r] != rowTrue && counts[r] > 0 && falses[r] == counts[r] {
			states[r] = rowFalse
		}
	}
	return states
}

// rowState is the resolution status of one output row.
type rowState uint8

// Row statuses.
const (
	rowUndecided rowState = iota
	rowTrue
	rowFalse
)

// prepareExpressions applies known probe answers, optionally splits large
// expressions, and returns the working expressions with their row mapping.
// Splitting follows the paper's pre-processing (Section 7.1): when an
// expression's CNF would exceed cnfBound clauses (or always, when
// splitAll is set), its terms are partitioned randomly into parts of at
// most maxTerms terms.
func prepareExpressions(
	exprs []boolexpr.Expr,
	known *boolexpr.Valuation,
	split bool, splitAll bool, needCNF bool, maxTerms, cnfBound int,
	rng *rand.Rand,
) (parts []boolexpr.Expr, partOf []int) {
	for row, e := range exprs {
		s := e.Simplify(known)
		needSplit := false
		if split && !s.Decided() {
			if splitAll {
				needSplit = s.NumTerms() > maxTerms
			} else if _, ok := s.ToCNF(cnfBound); !ok {
				needSplit = true
			}
		}
		if needSplit {
			bound := 0
			if needCNF {
				bound = cnfBound
			}
			for _, p := range splitToFit(s, maxTerms, bound, rng) {
				parts = append(parts, p)
				partOf = append(partOf, row)
			}
			continue
		}
		parts = append(parts, s)
		partOf = append(partOf, row)
	}
	return parts, partOf
}

// splitToFit splits e into parts of at most maxTerms terms and, when
// cnfBound > 0, keeps halving the term bound of any part whose CNF still
// exceeds the clause bound. A term bound of maxTerms does not by itself
// bound the CNF — a B-term k-DNF can have k^B clauses — so for wide terms
// (e.g. Q8's 8-way joins) parts shrink further, down to single-term parts
// whose CNF is always |term| unit clauses.
func splitToFit(e boolexpr.Expr, maxTerms, cnfBound int, rng *rand.Rand) []boolexpr.Expr {
	parts := boolexpr.Split(e, maxTerms, rng)
	if cnfBound <= 0 {
		return parts
	}
	var out []boolexpr.Expr
	for _, p := range parts {
		if _, ok := p.ToCNF(cnfBound); ok || p.NumTerms() <= 1 {
			out = append(out, p)
			continue
		}
		half := p.NumTerms() / 2
		if half >= maxTerms {
			half = maxTerms / 2
		}
		if half < 1 {
			half = 1
		}
		out = append(out, splitToFit(p, half, cnfBound, rng)...)
	}
	return out
}

package resolve

import "fmt"

// Combine balances a probe's Boolean-evaluation utility u against its
// expected uncertainty reduction v (paper Section 6). Every provided
// function satisfies the two desiderata: Monotonicity (better on both
// axes never ranks lower) and ε-Convergence to Utility (once uncertainty
// reduction is uniformly small, ranking follows utility alone).
type Combine struct {
	name string
	f    func(u, v float64) float64
}

// Name returns the combination function's display name.
func (c Combine) Name() string { return c.name }

// Eval applies the combination function.
func (c Combine) Eval(u, v float64) float64 {
	if c.f == nil {
		return u // zero value: utility only
	}
	return c.f(u, v)
}

// CombineProduct is f(u,v) = u·(v+1), the paper's empirically best choice:
// it converges to the utility score as the model stabilizes (v→0) while
// still boosting model-improving probes early on.
func CombineProduct() Combine {
	return Combine{name: "u*(v+1)", f: func(u, v float64) float64 { return u * (v + 1) }}
}

// CombineLinear is f(u,v) = αu + βv, the linear combination common in
// Information Retrieval score fusion.
func CombineLinear(alpha, beta float64) Combine {
	return Combine{
		name: fmt.Sprintf("%g*u+%g*v", alpha, beta),
		f:    func(u, v float64) float64 { return alpha*u + beta*v },
	}
}

// CombineUtilityOnly is f(u,v) = u, which vacuously satisfies both
// desiderata; it is what EP and Offline configurations use.
func CombineUtilityOnly() Combine {
	return Combine{name: "u", f: func(u, _ float64) float64 { return u }}
}

// CombineThreshold is the indicator-based choice: rank by uncertainty
// (shifted above every utility by maxUtil) while the estimated reduction
// exceeds theta, and by utility afterwards.
func CombineThreshold(theta, maxUtil float64) Combine {
	return Combine{
		name: fmt.Sprintf("I[v<=%g]u+I[v>%g](v+MAX)", theta, theta),
		f: func(u, v float64) float64 {
			if v > theta {
				return v + maxUtil
			}
			return u
		},
	}
}

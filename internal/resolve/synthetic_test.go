package resolve

import (
	"fmt"
	"math/rand"
	"testing"

	"qres/internal/boolexpr"
	"qres/internal/engine"
	"qres/internal/oracle"
	"qres/internal/table"
	"qres/internal/uncertain"
)

// syntheticWorkload builds an uncertain database of nvars tuples (with
// source metadata) and a fabricated query result whose provenance is
// random monotone DNF over those tuples' variables — a harsher stress for
// the resolution loop than real query provenance, since terms and
// expression overlaps are arbitrary.
func syntheticWorkload(t *testing.T, nvars, nexprs, maxTerms, maxTermSize int, seed int64) (*uncertain.DB, *engine.Result) {
	t.Helper()
	db := table.NewDatabase()
	rel := table.NewRelation("facts", table.NewSchema(table.Column{Name: "id", Kind: table.KindInt}))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nvars; i++ {
		rel.MustAppend(table.Tuple{table.Int(int64(i))},
			table.Metadata{"source": fmt.Sprintf("src-%d", i%5)})
	}
	db.MustAdd(rel)
	udb := uncertain.New(db)

	res := &engine.Result{Columns: []engine.OutCol{{Name: "id", Kind: table.KindInt}}}
	for i := 0; i < nexprs; i++ {
		nt := 1 + rng.Intn(maxTerms)
		terms := make([]boolexpr.Term, 0, nt)
		for j := 0; j < nt; j++ {
			size := 1 + rng.Intn(maxTermSize)
			vars := make([]boolexpr.Var, 0, size)
			for k := 0; k < size; k++ {
				vars = append(vars, boolexpr.Var(rng.Intn(nvars)))
			}
			terms = append(terms, boolexpr.NewTerm(vars...))
		}
		res.Rows = append(res.Rows, engine.Row{
			Tuple: table.Tuple{table.Int(int64(i))},
			Prov:  boolexpr.NewExpr(terms...),
		})
	}
	return udb, res
}

// Every strategy must compute the exact ground-truth answer on random
// overlapping provenance, including with forced splitting (SplitAll) and
// tight CNF bounds — the end-to-end counterpart of the boolexpr
// simplification and splitting properties.
func TestSyntheticResolutionExactness(t *testing.T) {
	for trial := int64(0); trial < 6; trial++ {
		udb, res := syntheticWorkload(t, 40, 12, 6, 4, 1000+trial)
		gt := uncertain.GenerateFixed(udb, 0.5, 2000+trial)
		want := groundTruthAnswer(res, gt.Val)

		configs := []Config{
			{Baseline: BaselineRandom, Seed: trial},
			{Baseline: BaselineGreedy, Seed: trial},
			{Utility: QValue{}, Learning: LearnEP, Seed: trial, CNFClauseBound: 64},
			{Utility: RO{}, Learning: LearnEP, Seed: trial},
			{Utility: General{}, Learning: LearnEP, Seed: trial},
			{Utility: General{}, Learning: LearnEP, Seed: trial, SplitAll: true, SplitMaxTerms: 2},
			{Utility: QValue{}, Learning: LearnEP, Seed: trial, SplitAll: true, SplitMaxTerms: 3, CNFClauseBound: 128},
		}
		for _, cfg := range configs {
			sess, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), nil, cfg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, cfg.Name(), err)
			}
			out, err := sess.Run()
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, cfg.Name(), err)
			}
			for _, a := range out.Answers {
				if a.Correct != want[a.Row] {
					t.Errorf("trial %d %s: row %d resolved %t, want %t",
						trial, cfg.Name(), a.Row, a.Correct, want[a.Row])
				}
			}
		}
	}
}

// Probing cost accounting: with a Costs map, Stats.Cost is the sum of the
// probed variables' costs, and cost-aware selection prefers cheap probes.
func TestCostAccountingAndAwareness(t *testing.T) {
	udb, res := syntheticWorkload(t, 30, 8, 5, 3, 77)
	gt := uncertain.GenerateFixed(udb, 0.5, 78)

	costs := make(map[boolexpr.Var]float64)
	for _, v := range res.UniqueVars() {
		if int(v)%2 == 0 {
			costs[v] = 10
		}
	}
	costOf := func(v boolexpr.Var) float64 {
		if c, ok := costs[v]; ok {
			return c
		}
		return 1
	}

	run := func(aware bool) (float64, []boolexpr.Var) {
		rec := oracle.NewRecorder(oracle.NewGroundTruth(gt.Val))
		sess, err := NewSession(udb, res, rec, nil, Config{
			Utility: General{}, Learning: LearnEP, Seed: 5,
			Costs: costs, CostAware: aware,
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return out.Stats.Cost, rec.Probes()
	}

	blindCost, blindProbes := run(false)
	awareCost, awareProbes := run(true)

	// Accounting invariant on both runs.
	check := func(cost float64, probes []boolexpr.Var) {
		var want float64
		for _, v := range probes {
			want += costOf(v)
		}
		if cost != want {
			t.Errorf("Stats.Cost = %f, recomputed %f", cost, want)
		}
	}
	check(blindCost, blindProbes)
	check(awareCost, awareProbes)

	// Cost-aware selection prefers cheap probes: the fraction of
	// expensive probes must not increase.
	expensive := func(probes []boolexpr.Var) float64 {
		if len(probes) == 0 {
			return 0
		}
		n := 0
		for _, v := range probes {
			if costOf(v) > 1 {
				n++
			}
		}
		return float64(n) / float64(len(probes))
	}
	if expensive(awareProbes) > expensive(blindProbes) {
		t.Errorf("cost-aware run used more expensive probes (%.2f) than blind (%.2f)",
			expensive(awareProbes), expensive(blindProbes))
	}
}

// Sharing a repository across sessions transfers knowledge: a second
// session over the same result with the first session's repository needs
// no probes at all.
func TestRepositoryAccumulationAcrossSessions(t *testing.T) {
	udb, res := syntheticWorkload(t, 25, 6, 4, 3, 55)
	gt := uncertain.GenerateFixed(udb, 0.5, 56)
	repo := NewRepository()

	first, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), repo, Config{Utility: General{}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out1, err := first.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), repo, Config{Utility: General{}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	out2, err := second.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out2.Probes != 0 {
		t.Errorf("second session probed %d times despite shared repository (first used %d)",
			out2.Probes, out1.Probes)
	}
	for i := range out1.Answers {
		if out1.Answers[i].Correct != out2.Answers[i].Correct {
			t.Error("sessions disagree")
		}
	}
}

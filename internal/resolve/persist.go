package resolve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"qres/internal/boolexpr"
)

// Repository persistence: the paper's Known Probes Repository outlives a
// single session — answers collected for one query seed the Learner for
// the next (Section 4). SaveJSON/LoadJSON serialize the repository as
// JSONL, one probe record per line; SaveJSONFile adds crash consistency
// (temp file + fsync + atomic rename) for on-disk snapshots.
//
// Variable identifiers are only meaningful relative to the uncertain
// database they were allocated for; records therefore persist the
// variable's registry name, and loading binds names back to variables via
// the caller-supplied resolver (or keeps records metadata-only when a name
// no longer resolves, which still makes them Learner training data).

type jsonProbe struct {
	Var    string            `json:"var,omitempty"`
	Meta   map[string]string `json:"meta,omitempty"`
	Answer bool              `json:"answer"`
}

// SaveJSON writes the repository; name maps variables to stable names
// (typically Registry.Name of the owning uncertain database). The records
// are snapshotted under the repository lock first, so concurrent sessions
// may keep appending while the snapshot is encoded.
func (r *Repository) SaveJSON(w io.Writer, name func(boolexpr.Var) string) error {
	records := r.Records()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range records {
		if err := enc.Encode(encodeProbe(rec, name)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// encodeProbe converts a record to its serialized form.
func encodeProbe(rec ProbeRecord, name func(boolexpr.Var) string) jsonProbe {
	jp := jsonProbe{Meta: rec.Meta, Answer: rec.Answer}
	if rec.HasVar && name != nil {
		jp.Var = name(rec.Var)
	}
	return jp
}

// SaveJSONFile writes the repository snapshot crash-consistently: the
// records are encoded into a temporary file in the destination directory,
// fsynced, and atomically renamed over path, so a crash mid-write never
// leaves a truncated snapshot where a complete one (or none) used to be.
func (r *Repository) SaveJSONFile(path string, name func(boolexpr.Var) string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := r.SaveJSON(tmp, name); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename within it is durable. Errors are
// reported, but platforms where directories cannot be fsynced are not
// treated as failures.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return err
	}
	return nil
}

// LoadJSON reads records written by SaveJSON into a new repository.
// resolve maps stable names back to variables; records whose name does not
// resolve (or when resolve is nil) are kept as metadata-only training
// examples.
//
// A malformed final line is skipped rather than failing the whole restore:
// it is the signature of a crash mid-append to a write-ahead log, and every
// complete line before it is still good. Corruption followed by further
// well-formed lines is still an error — that is damage, not truncation.
func LoadJSON(rd io.Reader, resolve func(name string) (boolexpr.Var, bool)) (*Repository, error) {
	repo, _, err := loadJSON(rd, resolve)
	return repo, err
}

// LoadJSONStats is LoadJSON, additionally reporting whether a truncated
// trailing line was skipped (so callers can log the partial write).
func LoadJSONStats(rd io.Reader, resolve func(name string) (boolexpr.Var, bool)) (repo *Repository, truncated bool, err error) {
	return loadJSON(rd, resolve)
}

func loadJSON(rd io.Reader, resolve func(name string) (boolexpr.Var, bool)) (*Repository, bool, error) {
	repo := NewRepository()
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	badLine := 0 // most recent undecodable line, pending a verdict
	var badErr error
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if badLine != 0 {
			// A well-formed line after a bad one: mid-file corruption.
			return nil, false, fmt.Errorf("resolve: probes line %d: %w", badLine, badErr)
		}
		var jp jsonProbe
		if err := json.Unmarshal(raw, &jp); err != nil {
			badLine, badErr = line, err
			continue
		}
		if jp.Var != "" && resolve != nil {
			if v, ok := resolve(jp.Var); ok {
				repo.AddVar(v, jp.Meta, jp.Answer)
				continue
			}
		}
		repo.Add(jp.Meta, jp.Answer)
	}
	if err := sc.Err(); err != nil {
		return nil, false, err
	}
	if badLine != 0 {
		// The undecodable line was the last one: a torn trailing write.
		return repo, true, nil
	}
	return repo, false, nil
}

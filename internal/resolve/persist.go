package resolve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"qres/internal/boolexpr"
)

// Repository persistence: the paper's Known Probes Repository outlives a
// single session — answers collected for one query seed the Learner for
// the next (Section 4). SaveJSON/LoadJSON serialize the repository as
// JSONL, one probe record per line.
//
// Variable identifiers are only meaningful relative to the uncertain
// database they were allocated for; records therefore persist the
// variable's registry name, and loading binds names back to variables via
// the caller-supplied resolver (or keeps records metadata-only when a name
// no longer resolves, which still makes them Learner training data).

type jsonProbe struct {
	Var    string            `json:"var,omitempty"`
	Meta   map[string]string `json:"meta,omitempty"`
	Answer bool              `json:"answer"`
}

// SaveJSON writes the repository; name maps variables to stable names
// (typically Registry.Name of the owning uncertain database).
func (r *Repository) SaveJSON(w io.Writer, name func(boolexpr.Var) string) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range r.records {
		jp := jsonProbe{Meta: rec.Meta, Answer: rec.Answer}
		if rec.HasVar && name != nil {
			jp.Var = name(rec.Var)
		}
		if err := enc.Encode(jp); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadJSON reads records written by SaveJSON into a new repository.
// resolve maps stable names back to variables; records whose name does not
// resolve (or when resolve is nil) are kept as metadata-only training
// examples.
func LoadJSON(rd io.Reader, resolve func(name string) (boolexpr.Var, bool)) (*Repository, error) {
	repo := NewRepository()
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var jp jsonProbe
		if err := json.Unmarshal(raw, &jp); err != nil {
			return nil, fmt.Errorf("resolve: probes line %d: %w", line, err)
		}
		if jp.Var != "" && resolve != nil {
			if v, ok := resolve(jp.Var); ok {
				repo.AddVar(v, jp.Meta, jp.Answer)
				continue
			}
		}
		repo.Add(jp.Meta, jp.Answer)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return repo, nil
}

package resolve

import (
	"bytes"
	"strings"
	"testing"

	"qres/internal/boolexpr"
)

func TestRepositorySaveLoadRoundTrip(t *testing.T) {
	reg := boolexpr.NewRegistry()
	a := reg.Intern("facts[0]")
	b := reg.Intern("facts[1]")

	repo := NewRepository()
	repo.AddVar(a, map[string]string{"source": "x"}, true)
	repo.AddVar(b, map[string]string{"source": "y"}, false)
	repo.Add(map[string]string{"source": "z"}, true) // metadata-only

	var buf bytes.Buffer
	if err := repo.SaveJSON(&buf, reg.Name); err != nil {
		t.Fatal(err)
	}

	back, err := LoadJSON(&buf, func(name string) (boolexpr.Var, bool) {
		return reg.Lookup(name)
	})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("Len = %d, want 3", back.Len())
	}
	if ans, ok := back.Answer(a); !ok || !ans {
		t.Error("answer for facts[0] lost")
	}
	if ans, ok := back.Answer(b); !ok || ans {
		t.Error("answer for facts[1] lost")
	}
	// The metadata-only record survives as training data.
	found := false
	for _, rec := range back.Records() {
		if !rec.HasVar && rec.Meta["source"] == "z" && rec.Answer {
			found = true
		}
	}
	if !found {
		t.Error("metadata-only record lost")
	}
}

func TestLoadJSONUnresolvedNamesDegradeToTraining(t *testing.T) {
	input := `{"var":"gone[0]","meta":{"source":"x"},"answer":true}` + "\n"
	repo, err := LoadJSON(strings.NewReader(input), func(string) (boolexpr.Var, bool) {
		return 0, false
	})
	if err != nil {
		t.Fatal(err)
	}
	if repo.Len() != 1 {
		t.Fatal("record lost")
	}
	if repo.Records()[0].HasVar {
		t.Error("unresolved name must not bind a variable")
	}
	// Nil resolver behaves the same.
	repo2, err := LoadJSON(strings.NewReader(input), nil)
	if err != nil || repo2.Len() != 1 || repo2.Records()[0].HasVar {
		t.Error("nil resolver handling wrong")
	}
}

func TestLoadJSONErrors(t *testing.T) {
	if _, err := LoadJSON(strings.NewReader("not json\n"), nil); err == nil {
		t.Fatal("garbage accepted")
	}
}

package resolve

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qres/internal/boolexpr"
)

func TestRepositorySaveLoadRoundTrip(t *testing.T) {
	reg := boolexpr.NewRegistry()
	a := reg.Intern("facts[0]")
	b := reg.Intern("facts[1]")

	repo := NewRepository()
	repo.AddVar(a, map[string]string{"source": "x"}, true)
	repo.AddVar(b, map[string]string{"source": "y"}, false)
	repo.Add(map[string]string{"source": "z"}, true) // metadata-only

	var buf bytes.Buffer
	if err := repo.SaveJSON(&buf, reg.Name); err != nil {
		t.Fatal(err)
	}

	back, err := LoadJSON(&buf, func(name string) (boolexpr.Var, bool) {
		return reg.Lookup(name)
	})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("Len = %d, want 3", back.Len())
	}
	if ans, ok := back.Answer(a); !ok || !ans {
		t.Error("answer for facts[0] lost")
	}
	if ans, ok := back.Answer(b); !ok || ans {
		t.Error("answer for facts[1] lost")
	}
	// The metadata-only record survives as training data.
	found := false
	for _, rec := range back.Records() {
		if !rec.HasVar && rec.Meta["source"] == "z" && rec.Answer {
			found = true
		}
	}
	if !found {
		t.Error("metadata-only record lost")
	}
}

func TestLoadJSONUnresolvedNamesDegradeToTraining(t *testing.T) {
	input := `{"var":"gone[0]","meta":{"source":"x"},"answer":true}` + "\n"
	repo, err := LoadJSON(strings.NewReader(input), func(string) (boolexpr.Var, bool) {
		return 0, false
	})
	if err != nil {
		t.Fatal(err)
	}
	if repo.Len() != 1 {
		t.Fatal("record lost")
	}
	if repo.Records()[0].HasVar {
		t.Error("unresolved name must not bind a variable")
	}
	// Nil resolver behaves the same.
	repo2, err := LoadJSON(strings.NewReader(input), nil)
	if err != nil || repo2.Len() != 1 || repo2.Records()[0].HasVar {
		t.Error("nil resolver handling wrong")
	}
}

func TestLoadJSONErrors(t *testing.T) {
	// Corruption followed by more well-formed data is damage, not a torn
	// trailing write, and must fail the restore.
	input := "not json\n" + `{"answer":true}` + "\n"
	if _, err := LoadJSON(strings.NewReader(input), nil); err == nil {
		t.Fatal("mid-file garbage accepted")
	}
}

func TestLoadJSONSkipsTruncatedTrailingLine(t *testing.T) {
	// A torn trailing line — the signature of a crash mid-append to the
	// WAL — is skipped; every complete line before it is restored.
	input := `{"meta":{"source":"x"},"answer":true}` + "\n" +
		`{"meta":{"source":"y"},"answer":false}` + "\n" +
		`{"meta":{"source":"z"},"ans` // truncated mid-write
	repo, truncated, err := LoadJSONStats(strings.NewReader(input), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Error("truncated trailing line not reported")
	}
	if repo.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (torn line skipped)", repo.Len())
	}
	// A file that is nothing but one torn line restores to empty.
	repo2, truncated2, err := LoadJSONStats(strings.NewReader("not json"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated2 || repo2.Len() != 0 {
		t.Errorf("single torn line: truncated=%v len=%d, want true, 0", truncated2, repo2.Len())
	}
}

func TestStoreRepairsTornWALOnRecovery(t *testing.T) {
	reg := boolexpr.NewRegistry()
	a := reg.Intern("facts[0]")
	b := reg.Intern("facts[1]")
	name := reg.Name
	resolveFn := func(n string) (boolexpr.Var, bool) { return reg.Lookup(n) }

	// A WAL with one complete record and a torn trailing write.
	dir := t.TempDir()
	torn := `{"var":"facts[0]","meta":{"source":"x"},"answer":true}` + "\n" +
		`{"var":"facts[1]","meta":{"sou` // crash mid-append
	if err := os.WriteFile(filepath.Join(dir, walFile), []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	store, repo, err := OpenStore(dir, name, resolveFn)
	if err != nil {
		t.Fatal(err)
	}
	if repo.Len() != 1 {
		t.Fatalf("recovered Len = %d, want 1 (torn line dropped)", repo.Len())
	}
	// The first append after recovery must start on a clean line boundary,
	// not concatenate onto the torn fragment.
	repo.AddVar(b, map[string]string{"source": "y"}, false)
	if err := store.Append(ProbeRecord{Var: b, HasVar: true, Meta: map[string]string{"source": "y"}, Answer: false}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// The next recovery sees only well-formed lines and loses nothing.
	store2, repo2, err := OpenStore(dir, name, resolveFn)
	if err != nil {
		t.Fatalf("recovery after post-repair append: %v", err)
	}
	defer store2.Close()
	if repo2.Len() != 2 {
		t.Fatalf("second recovery Len = %d, want 2", repo2.Len())
	}
	if ans, ok := repo2.Answer(a); !ok || !ans {
		t.Error("pre-crash answer lost")
	}
	if ans, ok := repo2.Answer(b); !ok || ans {
		t.Error("post-repair answer lost")
	}

	// Mid-file damage (bad line followed by good ones) is not repaired:
	// recovery reports it instead of silently dropping acknowledged lines.
	dir2 := t.TempDir()
	damaged := "not json\n" + `{"var":"facts[0]","answer":true}` + "\n"
	if err := os.WriteFile(filepath.Join(dir2, walFile), []byte(damaged), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenStore(dir2, name, resolveFn); err == nil {
		t.Error("mid-file WAL corruption accepted")
	}
	if got, err := os.ReadFile(filepath.Join(dir2, walFile)); err != nil || string(got) != damaged {
		t.Errorf("damaged WAL modified by failed recovery: %q", got)
	}
}

func TestStoreWALCorruptionErrorLocatesDamage(t *testing.T) {
	// Mid-file damage is reported as a WALCorruptionError carrying the
	// byte offset of the damaged line and the index of the record it
	// would have held, so an operator can find (and decide about) the
	// damage without a hex dump.
	reg := boolexpr.NewRegistry()
	reg.Intern("facts[0]")
	name := reg.Name
	resolveFn := func(n string) (boolexpr.Var, bool) { return reg.Lookup(n) }

	dir := t.TempDir()
	good1 := `{"var":"facts[0]","meta":{"source":"x"},"answer":true}` + "\n"
	bad := "}}corrupt{{" + "\n"
	good2 := `{"var":"facts[0]","meta":{"source":"y"},"answer":false}` + "\n"
	damaged := good1 + bad + good2
	walPath := filepath.Join(dir, walFile)
	if err := os.WriteFile(walPath, []byte(damaged), 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err := OpenStore(dir, name, resolveFn)
	if err == nil {
		t.Fatal("mid-file WAL corruption accepted")
	}
	var ce *WALCorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v (type %T) does not wrap *WALCorruptionError", err, err)
	}
	if ce.Path != walPath {
		t.Errorf("Path = %q, want %q", ce.Path, walPath)
	}
	if want := int64(len(good1)); ce.Offset != want {
		t.Errorf("Offset = %d, want %d", ce.Offset, want)
	}
	if ce.Record != 1 {
		t.Errorf("Record = %d, want 1", ce.Record)
	}
	if ce.Err == nil {
		t.Error("Err is nil, want the underlying decode failure")
	}
	// Reporting must not modify the file.
	if got, rerr := os.ReadFile(walPath); rerr != nil || string(got) != damaged {
		t.Errorf("damaged WAL modified by failed recovery: %q", got)
	}
}

func TestStoreUpdateExcludesSnapshot(t *testing.T) {
	reg := boolexpr.NewRegistry()
	a := reg.Intern("facts[0]")
	name := reg.Name
	resolveFn := func(n string) (boolexpr.Var, bool) { return reg.Lookup(n) }

	dir := t.TempDir()
	store, repo, err := OpenStore(dir, name, resolveFn)
	if err != nil {
		t.Fatal(err)
	}
	// Repository add + WAL append inside one Update: a snapshot taken at
	// any point sees both effects or neither, so recovery never replays a
	// record the snapshot already contains.
	err = store.Update(func(append func(...ProbeRecord) error) error {
		repo.AddVar(a, map[string]string{"source": "x"}, true)
		return append(ProbeRecord{Var: a, HasVar: true, Meta: map[string]string{"source": "x"}, Answer: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	if store.WALRecords() != 1 {
		t.Fatalf("WALRecords = %d, want 1", store.WALRecords())
	}
	if err := store.Snapshot(repo); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	_, repo2, err := OpenStore(dir, name, resolveFn)
	if err != nil {
		t.Fatal(err)
	}
	if repo2.Len() != 1 {
		t.Fatalf("recovered Len = %d, want 1 (no duplicate replay)", repo2.Len())
	}
}

func TestSaveJSONFileAtomic(t *testing.T) {
	reg := boolexpr.NewRegistry()
	a := reg.Intern("facts[0]")
	repo := NewRepository()
	repo.AddVar(a, map[string]string{"source": "x"}, true)

	path := filepath.Join(t.TempDir(), "probes.snapshot.jsonl")
	if err := repo.SaveJSONFile(path, reg.Name); err != nil {
		t.Fatal(err)
	}
	// Overwriting an existing snapshot goes through the same temp+rename.
	repo.Add(map[string]string{"source": "y"}, false)
	if err := repo.SaveJSONFile(path, reg.Name); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := LoadJSON(f, func(name string) (boolexpr.Var, bool) { return reg.Lookup(name) })
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("Len = %d, want 2", back.Len())
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("leftover files in snapshot dir: %v", entries)
	}
}

func TestStoreRecoversSnapshotPlusWAL(t *testing.T) {
	reg := boolexpr.NewRegistry()
	a := reg.Intern("facts[0]")
	b := reg.Intern("facts[1]")
	c := reg.Intern("facts[2]")
	name := reg.Name
	resolveFn := func(n string) (boolexpr.Var, bool) { return reg.Lookup(n) }

	dir := t.TempDir()
	store, repo, err := OpenStore(dir, name, resolveFn)
	if err != nil {
		t.Fatal(err)
	}
	if repo.Len() != 0 {
		t.Fatalf("fresh store not empty: %d", repo.Len())
	}

	// Two answers land in repo + WAL, then a graceful snapshot.
	repo.AddVar(a, map[string]string{"source": "x"}, true)
	if err := store.Append(ProbeRecord{Var: a, HasVar: true, Meta: map[string]string{"source": "x"}, Answer: true}); err != nil {
		t.Fatal(err)
	}
	repo.AddVar(b, map[string]string{"source": "y"}, false)
	if err := store.Append(ProbeRecord{Var: b, HasVar: true, Meta: map[string]string{"source": "y"}, Answer: false}); err != nil {
		t.Fatal(err)
	}
	if store.WALRecords() != 2 {
		t.Fatalf("WALRecords = %d, want 2", store.WALRecords())
	}
	if err := store.Snapshot(repo); err != nil {
		t.Fatal(err)
	}
	if store.WALRecords() != 0 {
		t.Fatalf("WAL not reset after snapshot: %d", store.WALRecords())
	}

	// One more answer after the snapshot, then a crash (no snapshot).
	repo.AddVar(c, map[string]string{"source": "z"}, true)
	if err := store.Append(ProbeRecord{Var: c, HasVar: true, Meta: map[string]string{"source": "z"}, Answer: true}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: snapshot (a, b) + WAL replay (c), nothing lost.
	store2, repo2, err := OpenStore(dir, name, resolveFn)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if repo2.Len() != 3 {
		t.Fatalf("recovered Len = %d, want 3", repo2.Len())
	}
	for _, tc := range []struct {
		v    boolexpr.Var
		want bool
	}{{a, true}, {b, false}, {c, true}} {
		if ans, ok := repo2.Answer(tc.v); !ok || ans != tc.want {
			t.Errorf("answer for %s: got (%v,%v), want (%v,true)", reg.Name(tc.v), ans, ok, tc.want)
		}
	}
	if store2.WALRecords() != 1 {
		t.Errorf("recovered WALRecords = %d, want 1", store2.WALRecords())
	}
}

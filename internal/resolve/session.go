package resolve

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"qres/internal/boolexpr"
	"qres/internal/engine"
	"qres/internal/learn"
	"qres/internal/obs"
	"qres/internal/stats"
	"qres/internal/uncertain"
)

// Oracle reveals the ground-truth correctness val*(x) of the tuple labeled
// by a variable (paper Section 2.2). Implementations live in
// internal/oracle: ground-truth lookup, noisy and latency-simulating
// wrappers.
type Oracle interface {
	Probe(v boolexpr.Var) (bool, error)
}

// Baseline selects one of the paper's non-framework baselines; with
// BaselineNone the Config's Utility drives a full framework instantiation.
type Baseline uint8

// Baselines of Section 7.1.
const (
	BaselineNone Baseline = iota
	BaselineRandom
	BaselineGreedy
	BaselineLALOnly
)

// Parallelism consolidates the session's worker-count knobs, one field
// per parallel dimension. The zero value of every field means "default"
// (one worker per CPU); 1 forces serial execution. Each dimension is a
// pure latency/throughput knob: trained models, utility scores and probe
// choices are bit-identical for any worker counts.
type Parallelism struct {
	// Forest bounds forest-training parallelism in the Learner.
	Forest int
	// Rescore bounds the incremental rescore fan-out within one component
	// shard (or across the whole workset when sharding is inactive).
	Rescore int
	// Shards bounds how many component shards run probe scoring
	// concurrently within one selection round.
	Shards int
	// Engine bounds morsel-driven parallelism at query-evaluation time
	// (the engine's streaming executor). It is consumed by the serving
	// layer and the public DB.Query path, not by the resolution loop
	// itself, which operates on an already-evaluated result.
	Engine int
}

// Config assembles a resolution-session configuration: either a baseline,
// or a (utility function × learning mode × combination function) framework
// instantiation as compared throughout the paper's Section 7.
type Config struct {
	// Utility is the utility function (QValue{}, RO{}, General{}) of a
	// framework instantiation. Ignored when Baseline is set.
	Utility Utility
	// Baseline selects Random / Greedy / LAL-only instead of a utility.
	Baseline Baseline
	// Learning is the probability-learning mode (EP / Offline / Online).
	Learning LearningMode
	// Model is the Learner's classifier (random forest by default).
	Model ModelKind
	// Combine balances utility and uncertainty reduction. The zero value
	// defaults to u·(v+1) in online mode and utility-only otherwise,
	// matching the paper's defaults.
	Combine *Combine
	// Trees is the forest size (default 100).
	Trees int
	// MinTrain is the repository size below which probabilities stay at
	// 0.5 (default 20).
	MinTrain int
	// LAL is the uncertainty-reduction regressor; nil defaults to the
	// shared pre-trained instance in online mode.
	LAL *learn.LAL
	// KnownProbs, when non-nil, gives the session the true per-variable
	// probabilities and disables learning — the "known and independent
	// probabilities" setting used to isolate utility computation.
	KnownProbs map[boolexpr.Var]float64
	// Costs assigns per-variable verification costs (default 1.0 for
	// unlisted variables); the session's Stats accumulate total cost
	// alongside the probe count.
	Costs map[boolexpr.Var]float64
	// CostAware makes the Probe Selector rank candidates by combined
	// score per unit cost — the cost-aware probe selection the paper's
	// Section 9 sketches as future work ("validation of some tuples may
	// require more effort than the validation of others"). Without it,
	// Costs is accounting-only.
	CostAware bool
	// Seed drives every random choice in the session.
	Seed int64

	// Obs is the observability handle: when non-nil, the session emits a
	// structured span event (and a registry timing observation) for every
	// pipeline stage — repository reuse, splitting, per-component probe
	// selection, oracle probes, simplification, learner retraining. A nil
	// handle disables instrumentation at near-zero cost.
	Obs *obs.Obs

	// Parallel bounds worker fan-out per dimension (forest training,
	// incremental rescore, component shards). Zero-valued fields default
	// to one worker per CPU. It subsumes the deprecated ForestWorkers and
	// RescoreWorkers fields, which are still honored when the matching
	// Parallel field is zero.
	Parallel Parallelism

	// DisableIncremental turns off incremental scoring: every round then
	// recomputes all probabilities and utility scores from scratch (and
	// component sharding, which builds on the incremental caches, is off
	// too). Incremental scoring is ON by default — probe choices are
	// bit-identical either way, because the caches reuse the full path's
	// arithmetic on unchanged inputs — so this switch exists only for
	// benchmarking the speedup and as an escape hatch. Wire APIs expose
	// the positive form ("incremental", default true) instead of this
	// double negative.
	DisableIncremental bool
	// DisableSharding turns off component-sharded probe selection: the
	// workset is then scored as one monolithic unit even when it splits
	// into variable-disjoint components. Probe choices are bit-identical
	// with sharding on or off; the switch exists for benchmarking the
	// sharded speedup and as an escape hatch.
	DisableSharding bool
	// RescoreWorkers bounds the parallelism of the incremental rescore
	// (default GOMAXPROCS). Results are deterministic for any value.
	//
	// Deprecated: set Parallel.Rescore instead. Honored only when
	// Parallel.Rescore is zero.
	RescoreWorkers int
	// ForestWorkers bounds forest-training parallelism in the Learner
	// (0 = one worker per CPU, 1 = serial). Trained models — and hence
	// probe choices — are bit-identical for any value.
	//
	// Deprecated: set Parallel.Forest instead. Honored only when
	// Parallel.Forest is zero.
	ForestWorkers int
	// FullRetrain disables the Learner's warm-started retrain path (see
	// LearnerConfig.FullRetrain); models are identical either way.
	FullRetrain bool
	// RetrainStallThreshold counts online retrains that hold up the answer
	// path for at least this long as "retrain_stalls_total" (0 disables).
	// A serving deployment watches this counter to decide when retraining
	// must move off the probe critical path.
	RetrainStallThreshold time.Duration

	// DisableSplitting turns off expression splitting entirely; sessions
	// whose utility needs CNF then fail on oversized expressions.
	DisableSplitting bool
	// SplitAll splits every expression larger than SplitMaxTerms, even
	// when its CNF would fit (the Figure 8 "with splitting" setting for
	// CNF-free algorithms).
	SplitAll bool
	// SplitMaxTerms is the bound B on terms per split part (default 8).
	SplitMaxTerms int
	// CNFClauseBound caps CNF size; expressions exceeding it are split
	// (default 4096 clauses).
	CNFClauseBound int
}

func (c Config) withDefaults() Config {
	// The deprecated per-dimension worker fields feed the consolidated
	// Parallelism struct, which explicit Parallel fields override.
	if c.Parallel.Forest == 0 {
		c.Parallel.Forest = c.ForestWorkers
	}
	if c.Parallel.Rescore == 0 {
		c.Parallel.Rescore = c.RescoreWorkers
	}
	if c.SplitMaxTerms <= 0 {
		c.SplitMaxTerms = 8
	}
	if c.CNFClauseBound <= 0 {
		c.CNFClauseBound = 4096
	}
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.LAL == nil && c.Learning == LearnOnline && c.KnownProbs == nil &&
		c.Baseline != BaselineGreedy && c.Baseline != BaselineRandom {
		c.LAL = learn.SharedLAL()
	}
	return c
}

// Name renders the configuration as the paper's figures label it, e.g.
// "Q-Value+LAL", "RO+EP", "General+Offline", "Random", "Greedy".
func (c Config) Name() string {
	switch c.Baseline {
	case BaselineRandom:
		return "Random"
	case BaselineGreedy:
		return "Greedy"
	case BaselineLALOnly:
		return "LAL only"
	}
	u := "?"
	if c.Utility != nil {
		u = c.Utility.Name()
	}
	return fmt.Sprintf("%s+%s", u, c.Learning)
}

// Stats collects per-session counters and the per-component timing
// distributions reported in the paper's Table 4.
type Stats struct {
	// Probes is the number of oracle calls issued, the paper's primary
	// metric.
	Probes int
	// Cost is the total verification cost (equals Probes when no Costs
	// map is configured).
	Cost float64
	// KnownReused counts variables resolved from the repository without
	// an oracle call (Step 3).
	KnownReused int
	// TuplesResimplified counts provenance expressions re-simplified by
	// probe answers over the session — the expressions actually touched via
	// the variable→expression inverted index, not the full working set.
	TuplesResimplified int
	// VarsRescored counts candidate variables whose utility aggregate was
	// recomputed during scoring. With the incremental path this is only the
	// variables co-occurring with probed ones; the full path rescores every
	// candidate every round.
	VarsRescored int
	// ScoreCacheHits and ScoreCacheMisses count candidates served from the
	// incremental utility-score cache versus recomputed.
	ScoreCacheHits   int
	ScoreCacheMisses int
	// ProbCacheHits and ProbCacheMisses count Learner probability estimates
	// served from cache versus recomputed. The cache empties whenever the
	// model retrains (Learner.Version moves).
	ProbCacheHits   int
	ProbCacheMisses int
	// ShardRoundsReused counts per-shard selection rounds served entirely
	// from a shard's cached winner: the shard received no probe delta and
	// the model did not retrain, so its previous argmax is still exact and
	// scoring is skipped. Zero when component sharding is inactive.
	ShardRoundsReused int
	// Learner, LAL, Utility and Selector time each framework component
	// per probe selection. Baselines populate the timers they exercise
	// (Random and Greedy only the Selector; LAL-only also the LAL timer).
	Learner  stats.Timer
	LAL      stats.Timer
	Utility  stats.Timer
	Selector stats.Timer
}

// Merge accumulates other's counters and timing samples into st, used to
// aggregate per-component statistics from parallel sub-sessions.
func (st *Stats) Merge(other *Stats) {
	st.Probes += other.Probes
	st.Cost += other.Cost
	st.KnownReused += other.KnownReused
	st.TuplesResimplified += other.TuplesResimplified
	st.VarsRescored += other.VarsRescored
	st.ScoreCacheHits += other.ScoreCacheHits
	st.ScoreCacheMisses += other.ScoreCacheMisses
	st.ProbCacheHits += other.ProbCacheHits
	st.ProbCacheMisses += other.ProbCacheMisses
	st.ShardRoundsReused += other.ShardRoundsReused
	st.Learner.Merge(&other.Learner)
	st.LAL.Merge(&other.LAL)
	st.Utility.Merge(&other.Utility)
	st.Selector.Merge(&other.Selector)
}

// Summary renders the session counters and per-component timing
// distributions as a Table-4-style multi-line report (times in seconds).
func (st *Stats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "probes=%d cost=%.1f known_reused=%d\n", st.Probes, st.Cost, st.KnownReused)
	fmt.Fprintf(&b, "resimplified=%d rescored=%d score_cache=%d/%d prob_cache=%d/%d (hits/misses) shard_reuse=%d\n",
		st.TuplesResimplified, st.VarsRescored,
		st.ScoreCacheHits, st.ScoreCacheMisses,
		st.ProbCacheHits, st.ProbCacheMisses,
		st.ShardRoundsReused)
	row := func(name string, t *stats.Timer) {
		s := t.Summary()
		fmt.Fprintf(&b, "%-9s n=%-5d %s\n", name, s.Count, s)
	}
	row("learner", &st.Learner)
	row("lal", &st.LAL)
	row("utility", &st.Utility)
	row("selector", &st.Selector)
	return b.String()
}

// RowAnswer is the resolved status of one output row.
type RowAnswer struct {
	Row     int  // index into the query result's rows
	Correct bool // ground-truth membership in Q(D_val*)
}

// Outcome is the final result of a resolution session: the exact
// ground-truth answer set and the cost of obtaining it.
type Outcome struct {
	// Answers has one entry per output row of the query result.
	Answers []RowAnswer
	// Probes is the number of oracle calls issued.
	Probes int
	// Stats are the detailed session statistics.
	Stats *Stats
}

// CorrectRows returns the indices of rows decided correct, i.e. the exact
// ground-truth answer set Q(D_val*) as row indices.
func (o *Outcome) CorrectRows() []int {
	var out []int
	for _, a := range o.Answers {
		if a.Correct {
			out = append(out, a.Row)
		}
	}
	return out
}

// Session is one run of the iterative resolution process (framework Steps
// 3–5) for a fixed query result, oracle and configuration.
type Session struct {
	db       *uncertain.DB
	result   *engine.Result
	oracle   Oracle
	repo     *Repository
	learner  *Learner
	strategy Strategy
	cfg      Config

	work   *workset
	inc    *incState           // incremental scoring caches; nil when disabled or sharded
	val    *boolexpr.Valuation // accumulated answers for provenance variables
	lalBuf []float64           // reused uncertainty-score buffer, one per round
	rng    *rand.Rand
	round  int
	stats  Stats
	obs    *obs.Obs
	err    error

	// shards are the per-component sub-resolutions when component-sharded
	// selection is active (nil otherwise); varShard maps each candidate
	// variable to the shard owning its component. componentCount and
	// componentSig describe the workset's component structure at session
	// start regardless of whether sharding activated.
	shards         []*shard
	varShard       map[boolexpr.Var]int
	shardWorkers   int
	scoredBuf      []*shard // per-round scratch for nextSharded's partition
	componentCount int
	componentSig   string

	// repoSeen is the repository length whose records this session has
	// already reconciled against its candidates. The repository is
	// append-only, so NextProbe skips the per-candidate known-answer scan
	// entirely while Len() still equals repoSeen: a variable can only become
	// known through a new record.
	repoSeen int

	// pending is the outstanding probe request of the async API: selected
	// by NextProbe, waiting for SubmitAnswer. Nil when no probe is parked.
	pending   *ProbeRequest
	pendingAt time.Time
}

// ProbeRequest describes one outstanding probe: the variable the Probe
// Selector chose, the tuple metadata a remote oracle needs to verify it,
// and the probe-selection round it belongs to. It is the currency of the
// asynchronous session API (NextProbe / SubmitAnswer), which decouples
// probe selection from answer delivery so that a remote oracle — a crowd
// worker or expert taking seconds to minutes per answer — does not hold a
// goroutine or lock while deliberating.
type ProbeRequest struct {
	Var   boolexpr.Var
	Round int
	Meta  map[string]string
}

// NewSession prepares a resolution session. The repository seeds the
// Learner and supplies already-known answers, which are substituted into
// the provenance before any oracle call; the repository is extended in
// place as the session probes, so passing a shared repository across
// sessions models the paper's accumulation of probe answers over time
// (clone it to isolate runs). orc may be nil for sessions driven through
// the asynchronous NextProbe/SubmitAnswer API, where answers arrive from
// a remote oracle; Step then fails, but Run after completion still works.
func NewSession(db *uncertain.DB, result *engine.Result, orc Oracle, repo *Repository, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if cfg.Baseline == BaselineNone && cfg.Utility == nil {
		return nil, errors.New("resolve: config needs a Utility or a Baseline")
	}
	if repo == nil {
		repo = NewRepository()
	}
	s := &Session{
		db:     db,
		result: result,
		oracle: orc,
		repo:   repo,
		cfg:    cfg,
		val:    boolexpr.NewValuation(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		obs:    cfg.Obs.WithSession(cfg.Name()),
	}

	s.learner = NewLearner(db, repo, LearnerConfig{
		Mode:           cfg.Learning,
		Model:          cfg.Model,
		Trees:          cfg.Trees,
		MinTrain:       cfg.MinTrain,
		ForestWorkers:  cfg.Parallel.Forest,
		FullRetrain:    cfg.FullRetrain,
		LAL:            cfg.LAL,
		Seed:           cfg.Seed,
		KnownProbs:     cfg.KnownProbs,
		Obs:            s.obs,
		StallThreshold: cfg.RetrainStallThreshold,
	})

	switch cfg.Baseline {
	case BaselineRandom:
		s.strategy = randomStrategy{rng: rand.New(rand.NewSource(cfg.Seed + 1))}
	case BaselineGreedy:
		s.strategy = greedyStrategy{}
	case BaselineLALOnly:
		s.strategy = lalOnlyStrategy{}
	default:
		combine := CombineUtilityOnly()
		if cfg.Combine != nil {
			combine = *cfg.Combine
		} else if cfg.Learning == LearnOnline {
			combine = CombineProduct()
		}
		s.strategy = utilityStrategy{util: cfg.Utility, combine: combine}
	}

	// Step 3: plug in truth values already known from previous probes. The
	// length is captured before the scan so that any record added
	// concurrently after this point keeps Len() ahead of repoSeen and
	// triggers a NextProbe rescan.
	reuseStart := time.Now()
	s.repoSeen = repo.Len()
	exprs := result.Provenance()
	known := boolexpr.NewValuation()
	for _, e := range exprs {
		for _, v := range e.Vars() {
			if ans, ok := repo.Answer(v); ok {
				known.Set(v, ans)
				s.val.Set(v, ans)
				s.stats.KnownReused++
			}
		}
	}
	s.obs.Emit(obs.StageRepoReuse, -1, reuseStart, time.Since(reuseStart),
		obs.Int("reused", s.stats.KnownReused),
		obs.Int("exprs", len(exprs)),
		obs.Int("repo_size", repo.Len()))

	splitStart := time.Now()
	needCNF := s.strategy.NeedsCNF()
	parts, partOf := prepareExpressions(
		exprs, known,
		!cfg.DisableSplitting, cfg.SplitAll, needCNF,
		cfg.SplitMaxTerms, cfg.CNFClauseBound,
		s.rng,
	)
	work, err := newWorkset(parts, partOf, needCNF, cfg.CNFClauseBound)
	if err != nil {
		return nil, err
	}
	s.work = work

	// Component structure: always derived (it labels the session for
	// shard-group placement in serving mode); shards are only built when
	// the configuration is eligible and the workset actually splits.
	groups := boolexpr.Components(work.exprs)
	s.componentCount = len(groups)
	s.componentSig = componentSignature(work, groups)
	switch {
	case s.shardingEligible(groups):
		s.buildShards(groups)
	case !cfg.DisableIncremental:
		s.inc = newIncState(work, s.learner, cfg.Parallel.Rescore, nil)
	}
	s.obs.Emit(obs.StageSplit, -1, splitStart, time.Since(splitStart),
		obs.Int("parts", len(parts)),
		obs.Int("undecided", work.undecided),
		obs.Int("components", s.componentCount),
		obs.Int("shards", len(s.shards)),
		obs.Bool("cnf", needCNF))
	s.obs.Gauge("undecided_exprs", float64(work.undecided))
	return s, nil
}

// Components reports how many variable-disjoint connected components the
// working expressions formed at session start (0 when the session started
// fully decided). Components share no variables, so they are resolved by
// independent per-component score caches when sharding is active.
func (s *Session) Components() int { return s.componentCount }

// ComponentSignature is a stable fingerprint of the workset's component
// structure at session start. Sessions with equal signatures resolve
// structurally identical worksets; serving deployments group such
// sessions onto shard groups sharing one repository view.
func (s *Session) ComponentSignature() string { return s.componentSig }

// Name returns the configuration's display name.
func (s *Session) Name() string { return s.cfg.Name() }

// Done reports whether every provenance expression is decided.
func (s *Session) Done() bool { return s.work.done() }

// Stats returns the live session statistics.
func (s *Session) Stats() *Stats { return &s.stats }

// Learner exposes the session's Learner (for feature-importance analysis).
func (s *Session) Learner() *Learner { return s.learner }

// Valuation returns the partial valuation accumulated so far. The returned
// valuation must not be modified.
func (s *Session) Valuation() *boolexpr.Valuation { return s.val }

// NextProbe runs probe selection (framework Sub-steps 4.1–4.3) and parks
// the session on the chosen variable, returning the probe request a remote
// oracle needs. It never calls the oracle. Calling NextProbe again before
// SubmitAnswer returns the same outstanding request without re-running
// selection, so the endpoint is idempotent and the RNG state is untouched
// by retries. Variables that concurrent sessions sharing the repository
// have answered since this session was created are applied directly (the
// late counterpart of the constructor's Step 3 reuse) rather than sent to
// the oracle. done=true (with a zero request) means every expression is
// already decided.
func (s *Session) NextProbe() (req ProbeRequest, done bool, err error) {
	if s.err != nil {
		return ProbeRequest{}, true, s.err
	}
	if s.pending != nil {
		return *s.pending, false, nil
	}
	for {
		if s.work.done() {
			return ProbeRequest{}, true, nil
		}
		// The known-answer scan only matters when the repository has grown
		// since this session last reconciled against it: answers this session
		// applied itself are already out of the candidate set, so with an
		// unchanged Len() the live candidate list can be used as is (read-only
		// until the next applyProbe) without the copy or the per-candidate
		// repository lookups.
		candidates := s.work.cands
		if n := s.repo.Len(); n != s.repoSeen {
			candidates = s.work.candidates()
			unknown := candidates[:0:0]
			for _, v := range candidates {
				if ans, ok := s.repo.Answer(v); ok {
					if err := s.applyKnown(v, ans); err != nil {
						return ProbeRequest{}, true, err
					}
					continue
				}
				unknown = append(unknown, v)
			}
			s.repoSeen = n
			if len(unknown) < len(candidates) {
				// Applied answers may have decided expressions; re-derive the
				// candidate set before running selection.
				continue
			}
			candidates = unknown
		}
		if len(candidates) == 0 {
			// Cannot happen for sound worksets: undecided expressions always
			// contain variables.
			s.err = errors.New("resolve: undecided expressions but no candidates")
			return ProbeRequest{}, true, s.err
		}
		v, err := s.strategy.next(s, candidates)
		if err != nil {
			s.err = err
			return ProbeRequest{}, true, err
		}
		if s.val.Assigned(v) {
			s.err = fmt.Errorf("resolve: strategy re-probed variable %d", v)
			return ProbeRequest{}, true, s.err
		}
		// Selection can be slow; a concurrent session may have answered the
		// chosen variable meanwhile. Apply the answer and reselect.
		if ans, ok := s.repo.Answer(v); ok {
			if err := s.applyKnown(v, ans); err != nil {
				return ProbeRequest{}, true, err
			}
			continue
		}
		s.pending = &ProbeRequest{Var: v, Round: s.round, Meta: s.db.MetaFor(v)}
		s.pendingAt = time.Now()
		return *s.pending, false, nil
	}
}

// applyKnown plugs a repository-known answer into the working expressions
// without an oracle probe, counting it as repository reuse.
func (s *Session) applyKnown(v boolexpr.Var, answer bool) error {
	start := time.Now()
	s.val.Set(v, answer)
	s.stats.KnownReused++
	delta, err := s.work.applyProbe(v, answer)
	if err != nil {
		s.err = err
		return err
	}
	s.noteDelta(delta)
	s.obs.Emit(obs.StageRepoReuse, s.round, start, time.Since(start),
		obs.Int("var", int(v)), obs.Int("decided", len(delta.decided)),
		obs.Int("undecided", s.work.undecided))
	s.obs.Gauge("undecided_exprs", float64(s.work.undecided))
	return nil
}

// noteDelta accounts one probe delta: the resimplification counters and
// the incremental caches' dirty sets both feed off it. With sharding
// active the delta routes to the one shard owning the probed variable —
// components share no variables, so a probe can never touch another
// shard's state.
func (s *Session) noteDelta(d *probeDelta) {
	s.stats.TuplesResimplified += len(d.touched)
	s.obs.Count("tuples_resimplified", int64(len(d.touched)))
	if s.shards != nil {
		s.shards[s.varShard[d.probed]].noteDelta(d)
		return
	}
	s.inc.noteDelta(d)
}

// Pending returns the outstanding probe request, if any.
func (s *Session) Pending() (ProbeRequest, bool) {
	if s.pending == nil {
		return ProbeRequest{}, false
	}
	return *s.pending, true
}

// SubmitAnswer delivers the oracle's answer for the outstanding probe:
// the answer is recorded in the repository (Step 5), the Learner retrains
// in online mode, the working expressions are simplified, and the session
// advances to the next round. v must match the variable returned by
// NextProbe; answering with no probe outstanding or for a different
// variable is an error that leaves the session state untouched.
func (s *Session) SubmitAnswer(v boolexpr.Var, answer bool) (done bool, err error) {
	if s.err != nil {
		return true, s.err
	}
	if s.pending == nil {
		if s.work.done() {
			return true, ErrSessionDone
		}
		return false, ErrNoProbePending
	}
	if v != s.pending.Var {
		return false, fmt.Errorf("%w: answer for variable %d but probe %d is outstanding", ErrProbeMismatch, v, s.pending.Var)
	}
	// The probe span's duration is the oracle's answer latency: the time
	// between selection and answer delivery.
	s.obs.Emit(obs.StageProbe, s.round, s.pendingAt, time.Since(s.pendingAt),
		obs.Int("var", int(v)), obs.Bool("answer", answer))
	s.pending = nil
	s.stats.Probes++
	s.stats.Cost += s.cost(v)
	s.val.Set(v, answer)
	s.learner.Observe(v, answer) // Step 5 + online retraining
	s.repoSeen++                 // Observe appends exactly one record for our own probe

	simplifyStart := time.Now()
	delta, err := s.work.applyProbe(v, answer)
	if err != nil {
		s.err = err
		return true, err
	}
	s.noteDelta(delta)
	s.obs.Emit(obs.StageSimplify, s.round, simplifyStart, time.Since(simplifyStart),
		obs.Int("decided", len(delta.decided)),
		obs.Int("resimplified", len(delta.touched)),
		obs.Int("undecided", s.work.undecided))
	s.obs.Gauge("undecided_exprs", float64(s.work.undecided))
	s.round++
	return s.work.done(), nil
}

// Step performs one synchronous iteration: select a probe, ask the oracle
// inline, record the answer, and simplify. It reports whether the session
// is done after the step. Calling Step on a finished session is a no-op
// returning done=true. Step is NextProbe + oracle call + SubmitAnswer;
// sessions constructed without an oracle must use the async pair instead.
func (s *Session) Step() (probed boolexpr.Var, done bool, err error) {
	req, done, err := s.NextProbe()
	if done || err != nil {
		return 0, done, err
	}
	if s.oracle == nil {
		s.err = ErrNoOracle
		return 0, true, s.err
	}
	answer, err := s.oracle.Probe(req.Var)
	if err != nil {
		s.err = fmt.Errorf("resolve: oracle probe failed: %w", err)
		return 0, true, s.err
	}
	done, err = s.SubmitAnswer(req.Var, answer)
	return req.Var, done, err
}

// component times one framework component of the current probe-selection
// round, recording the duration both in the per-session Stats timer and as
// an observability span.
func (s *Session) component(stage obs.Stage, t *stats.Timer, fn func(), attrs ...obs.Attr) {
	start := time.Now()
	fn()
	d := time.Since(start)
	t.Observe(d)
	s.obs.Emit(stage, s.round, start, d, attrs...)
}

// Run drives the session to completion and returns the outcome: the exact
// resolved answer set and the probe count. The algorithms are "correct by
// design" (paper Section 7.1) — they stop only when every expression is
// decided.
func (s *Session) Run() (*Outcome, error) {
	for !s.work.done() {
		if _, _, err := s.Step(); err != nil {
			return nil, err
		}
	}
	return s.outcome(), nil
}

// RowStatus is the live resolution status of one output row.
type RowStatus uint8

// Row statuses reported by Snapshot.
const (
	// RowUnknown: the row's provenance is not yet decided.
	RowUnknown RowStatus = iota
	// RowCorrect: the row is certainly a ground-truth answer.
	RowCorrect
	// RowIncorrect: the row is certainly not a ground-truth answer.
	RowIncorrect
)

// String renders the status.
func (s RowStatus) String() string {
	switch s {
	case RowCorrect:
		return "correct"
	case RowIncorrect:
		return "incorrect"
	default:
		return "unknown"
	}
}

// Snapshot reports the current resolution status of every output row —
// the paper's interactive view ("at each point of this iterative process,
// the user can view the current subset of query results determined to be
// (in)correct"). It can be called between Step invocations.
func (s *Session) Snapshot() []RowStatus {
	states := s.work.rowStatus(len(s.result.Rows))
	out := make([]RowStatus, len(states))
	for i, st := range states {
		switch st {
		case rowTrue:
			out[i] = RowCorrect
		case rowFalse:
			out[i] = RowIncorrect
		default:
			out[i] = RowUnknown
		}
	}
	return out
}

// cost returns the verification cost of probing v (1 by default).
func (s *Session) cost(v boolexpr.Var) float64 {
	if s.cfg.Costs == nil {
		return 1
	}
	if c, ok := s.cfg.Costs[v]; ok && c > 0 {
		return c
	}
	return 1
}

// outcome aggregates part statuses back to output-row answers.
func (s *Session) outcome() *Outcome {
	states := s.work.rowStatus(len(s.result.Rows))
	answers := make([]RowAnswer, len(states))
	for i, st := range states {
		answers[i] = RowAnswer{Row: i, Correct: st == rowTrue}
	}
	return &Outcome{Answers: answers, Probes: s.stats.Probes, Stats: &s.stats}
}

package resolve

import (
	"testing"

	"qres/internal/engine"
	"qres/internal/oracle"
	"qres/internal/testdb"
	"qres/internal/uncertain"
)

// paperSetup builds the paper's running example with a fixed ground truth.
func paperSetup(t *testing.T, seed int64) (*uncertain.DB, *engine.Result, *uncertain.GroundTruth) {
	t.Helper()
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	gt := uncertain.GenerateRDT(udb, 3, seed)
	return udb, res, gt
}

// TestAsyncMatchesSynchronousResolve drives the same configuration once
// through the synchronous Run loop and once through the asynchronous
// NextProbe/SubmitAnswer pair, asserting identical probe counts, probe
// sequences and row resolutions.
func TestAsyncMatchesSynchronousResolve(t *testing.T) {
	for _, strat := range []Config{
		{Utility: General{}, Learning: LearnOnline, Seed: 7},
		{Utility: RO{}, Learning: LearnOffline, Seed: 7},
		{Baseline: BaselineRandom, Seed: 7},
	} {
		udb, res, gt := paperSetup(t, 11)
		orc := oracle.NewGroundTruth(gt.Val)

		syncSess, err := NewSession(udb, res, orc, NewRepository(), strat)
		if err != nil {
			t.Fatal(err)
		}
		syncOut, err := syncSess.Run()
		if err != nil {
			t.Fatal(err)
		}

		asyncSess, err := NewSession(udb, res, nil, NewRepository(), strat)
		if err != nil {
			t.Fatal(err)
		}
		var sequence []ProbeRequest
		for {
			req, done, err := asyncSess.NextProbe()
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
			// Idempotence: a retried NextProbe returns the same request.
			again, done2, err := asyncSess.NextProbe()
			if err != nil || done2 || again.Var != req.Var {
				t.Fatalf("NextProbe not idempotent: %v %v %v vs %v", again, done2, err, req)
			}
			sequence = append(sequence, req)
			answer, ok := gt.Val.Get(req.Var)
			if !ok {
				t.Fatalf("no ground truth for %d", req.Var)
			}
			if _, err := asyncSess.SubmitAnswer(req.Var, answer); err != nil {
				t.Fatal(err)
			}
		}
		asyncOut, err := asyncSess.Run()
		if err != nil {
			t.Fatal(err)
		}

		if len(sequence) != syncOut.Probes {
			t.Errorf("%s: async probes = %d, sync = %d", strat.Name(), len(sequence), syncOut.Probes)
		}
		if asyncOut.Probes != syncOut.Probes {
			t.Errorf("%s: outcome probes differ: %d vs %d", strat.Name(), asyncOut.Probes, syncOut.Probes)
		}
		if len(asyncOut.Answers) != len(syncOut.Answers) {
			t.Fatalf("%s: answer counts differ", strat.Name())
		}
		for i := range asyncOut.Answers {
			if asyncOut.Answers[i] != syncOut.Answers[i] {
				t.Errorf("%s: row %d resolved differently: %+v vs %+v",
					strat.Name(), i, asyncOut.Answers[i], syncOut.Answers[i])
			}
			want := res.Rows[i].Prov.Eval(gt.Val)
			if asyncOut.Answers[i].Correct != want {
				t.Errorf("%s: row %d = %v, ground truth %v", strat.Name(), i, asyncOut.Answers[i].Correct, want)
			}
		}
	}
}

// TestAsyncInterleavedSessions interleaves two async sessions over the
// same query (round-robin, one probe each per turn) sharing nothing, and
// checks each still matches its own synchronous run — parking one session
// must not perturb another.
func TestAsyncInterleavedSessions(t *testing.T) {
	udb, res, gt := paperSetup(t, 23)
	cfg := Config{Utility: General{}, Learning: LearnOnline, Seed: 3}

	ref, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), NewRepository(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	refOut, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	a, err := NewSession(udb, res, nil, NewRepository(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSession(udb, res, nil, NewRepository(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[*Session]int{}
	for !a.Done() || !b.Done() {
		for _, s := range []*Session{a, b} {
			req, done, err := s.NextProbe()
			if err != nil {
				t.Fatal(err)
			}
			if done {
				continue
			}
			answer, _ := gt.Val.Get(req.Var)
			if _, err := s.SubmitAnswer(req.Var, answer); err != nil {
				t.Fatal(err)
			}
			counts[s]++
		}
	}
	for _, s := range []*Session{a, b} {
		if counts[s] != refOut.Probes {
			t.Errorf("interleaved session probes = %d, reference = %d", counts[s], refOut.Probes)
		}
		out, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i := range out.Answers {
			if out.Answers[i] != refOut.Answers[i] {
				t.Errorf("row %d resolved differently under interleaving", i)
			}
		}
	}
}

// TestNextProbeAppliesConcurrentAnswers shares one repository between two
// sessions created before any answers exist. After the first session
// resolves, the second must apply the repository's answers inside
// NextProbe instead of selecting already-known variables for the oracle —
// the cross-session reuse that session creation alone cannot provide.
func TestNextProbeAppliesConcurrentAnswers(t *testing.T) {
	udb, res, gt := paperSetup(t, 29)
	cfg := Config{Utility: General{}, Learning: LearnOnline, Seed: 9}
	shared := NewRepository()

	a, err := NewSession(udb, res, nil, shared, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSession(udb, res, nil, shared, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drive a to completion; its answers land in the shared repository.
	for {
		req, done, err := a.NextProbe()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		answer, _ := gt.Val.Get(req.Var)
		if _, err := a.SubmitAnswer(req.Var, answer); err != nil {
			t.Fatal(err)
		}
	}
	// b was created against an empty repository, so none of a's answers
	// were reused at construction; NextProbe must pick them up now and
	// never hand a known variable to the oracle.
	for {
		req, done, err := b.NextProbe()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if _, known := shared.Answer(req.Var); known {
			t.Fatalf("NextProbe selected repository-known variable %d", req.Var)
		}
		answer, _ := gt.Val.Get(req.Var)
		if _, err := b.SubmitAnswer(req.Var, answer); err != nil {
			t.Fatal(err)
		}
	}
	// The answers that decided a's expressions decide b's identical ones,
	// so b resolves entirely from the repository.
	if got := b.Stats().Probes; got != 0 {
		t.Errorf("second session probed %d times, want 0 (full reuse)", got)
	}
	if b.Stats().KnownReused == 0 {
		t.Error("no repository reuse recorded")
	}
	out, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Answers {
		if want := res.Rows[i].Prov.Eval(gt.Val); out.Answers[i].Correct != want {
			t.Errorf("row %d = %v, ground truth %v", i, out.Answers[i].Correct, want)
		}
	}
}

// TestSubmitAnswerValidation covers the async API's error paths.
func TestSubmitAnswerValidation(t *testing.T) {
	udb, res, gt := paperSetup(t, 5)
	s, err := NewSession(udb, res, nil, NewRepository(), Config{Utility: General{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitAnswer(0, true); err == nil {
		t.Error("answer with no outstanding probe accepted")
	}
	req, done, err := s.NextProbe()
	if err != nil || done {
		t.Fatalf("NextProbe: done=%v err=%v", done, err)
	}
	if _, err := s.SubmitAnswer(req.Var+1000, true); err == nil {
		t.Error("answer for wrong variable accepted")
	}
	// The session is still usable after rejected submissions.
	if p, ok := s.Pending(); !ok || p.Var != req.Var {
		t.Fatal("pending probe lost after rejected answers")
	}
	answer, _ := gt.Val.Get(req.Var)
	if _, err := s.SubmitAnswer(req.Var, answer); err != nil {
		t.Fatal(err)
	}
	// Step on an oracle-less session fails cleanly (unless already done).
	if !s.Done() {
		if _, _, err := s.Step(); err == nil {
			t.Error("Step without oracle accepted")
		}
	}
}

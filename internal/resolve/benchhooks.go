package resolve

import "qres/internal/boolexpr"

// NewWorksetForBench builds a working set over raw expressions for the
// repository-level utility micro-benchmarks. It intentionally returns the
// unexported workset type: external callers can hold the value and pass it
// to Utility.Scores but cannot depend on its internals, keeping the type's
// invariants owned by this package.
func NewWorksetForBench(exprs []boolexpr.Expr, partOf []int, needCNF bool) (*workset, error) {
	return newWorkset(exprs, partOf, needCNF, 4096)
}

// WorksetCandidates exposes the candidate-probe set for benchmarks.
func WorksetCandidates(w *workset) []boolexpr.Var {
	return w.candidates()
}

package resolve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"qres/internal/boolexpr"
)

// Durable probes store: the resolution service persists the shared Known
// Probes Repository as a snapshot file plus a write-ahead log. Every
// answered probe is appended (and fsynced) to the WAL before the answer
// is acknowledged; on a clean shutdown the full repository is snapshotted
// atomically (SaveJSONFile) and the WAL is reset. Recovery truncates a
// torn trailing WAL line left by a crash mid-append, then loads the
// snapshot and replays the repaired WAL, so a crash loses no acknowledged
// answer and appends after recovery start on a clean line boundary.

// Snapshot and WAL file names inside a store directory.
const (
	snapshotFile = "probes.snapshot.jsonl"
	walFile      = "probes.wal.jsonl"
)

// WAL is an append-only JSONL probe log. Append encodes the records,
// writes them with a single write call per batch and fsyncs before
// returning, making every acknowledged append durable. Safe for
// concurrent use.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	name func(boolexpr.Var) string
}

// OpenWAL opens (creating if needed) the log at path for appending; name
// maps variables to stable names, as in SaveJSON.
func OpenWAL(path string, name func(boolexpr.Var) string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &WAL{f: f, name: name}, nil
}

// Append encodes the records as JSONL, appends them in one write, and
// fsyncs the file. Batches are serialized, so each is a whole number of
// lines: readers never see lines interleaved from two batches.
func (w *WAL) Append(recs ...ProbeRecord) error {
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	for _, rec := range recs {
		line, err := json.Marshal(encodeProbe(rec, w.name))
		if err != nil {
			return err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// Store combines an atomic snapshot with a write-ahead log under one
// directory, persisting a shared repository across service restarts.
// Safe for concurrent Appends; Snapshot excludes concurrent appends for
// the duration of the snapshot.
type Store struct {
	dir    string
	nameFn func(boolexpr.Var) string

	mu      sync.Mutex
	wal     *WAL
	walRecs int // records appended to the WAL since the last snapshot
}

// OpenStore opens (creating if needed) the probes store in dir and
// recovers the repository it holds: the snapshot, then the WAL replayed on
// top. nameFn maps variables to stable names for writing; resolveFn maps
// names back for reading (both typically from the uncertain database's
// registry). The returned repository is live: pass records to
// Store.Append as they are answered, and Snapshot on shutdown.
func OpenStore(dir string, nameFn func(boolexpr.Var) string, resolveFn func(string) (boolexpr.Var, bool)) (*Store, *Repository, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	repo, err := loadStoreFile(filepath.Join(dir, snapshotFile), resolveFn)
	if err != nil {
		return nil, nil, fmt.Errorf("resolve: store snapshot: %w", err)
	}
	walPath := filepath.Join(dir, walFile)
	if err := repairWAL(walPath); err != nil {
		return nil, nil, fmt.Errorf("resolve: store wal repair: %w", err)
	}
	walRepo, err := loadStoreFile(walPath, resolveFn)
	if err != nil {
		return nil, nil, fmt.Errorf("resolve: store wal: %w", err)
	}
	walRecs := 0
	if walRepo != nil {
		for _, rec := range walRepo.Records() {
			if repo == nil {
				repo = NewRepository()
			}
			if rec.HasVar {
				repo.AddVar(rec.Var, rec.Meta, rec.Answer)
			} else {
				repo.Add(rec.Meta, rec.Answer)
			}
			walRecs++
		}
	}
	if repo == nil {
		repo = NewRepository()
	}
	wal, err := OpenWAL(walPath, nameFn)
	if err != nil {
		return nil, nil, err
	}
	return &Store{dir: dir, nameFn: nameFn, wal: wal, walRecs: walRecs}, repo, nil
}

// WALCorruptionError reports mid-file WAL damage — a malformed line with
// well-formed lines after it, which a crash mid-append cannot produce —
// with enough location to act on: the file, the byte offset of the damaged
// line, and the index of the record it held.
type WALCorruptionError struct {
	// Path is the damaged WAL file.
	Path string
	// Offset is the byte offset of the damaged line's first byte.
	Offset int64
	// Record is the zero-based index, within the file, of the record the
	// damaged line would have held.
	Record int
	// Err is the underlying decode failure.
	Err error
}

// Error renders the location and cause.
func (e *WALCorruptionError) Error() string {
	return fmt.Sprintf("corrupt WAL %s: record %d at byte offset %d: %v",
		e.Path, e.Record, e.Offset, e.Err)
}

// Unwrap exposes the underlying decode failure to errors.Is/As.
func (e *WALCorruptionError) Unwrap() error { return e.Err }

// repairWAL truncates the log at path to the end of its last complete,
// well-formed line. After a crash mid-append the file can end in a torn
// fragment; replay skips the fragment, but appends must not be allowed to
// concatenate onto it — the next record would share its line (losing that
// acknowledged record) and the following recovery would then fail, seeing
// a bad line followed by well-formed ones. Dropping the fragment never
// loses an acknowledged answer: Append writes each record with its
// trailing newline in one write and acknowledges only after fsync, so a
// line missing its terminator (or undecodable) was never acknowledged.
// Only a trailing tear is repaired; damage followed by further well-formed
// lines is never a tear — it is reported as a WALCorruptionError carrying
// the byte offset and record index of the damaged line, with the file left
// untouched.
func repairWAL(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	validEnd := 0
	records := 0
	for off := 0; off < len(data); {
		lineStart := off
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated trailing fragment
		}
		line := data[off : off+nl]
		off += nl + 1
		if len(line) > 0 {
			var jp jsonProbe
			if jerr := json.Unmarshal(line, &jp); jerr != nil {
				if len(bytes.TrimSpace(data[off:])) > 0 {
					return &WALCorruptionError{
						Path:   path,
						Offset: int64(lineStart),
						Record: records,
						Err:    jerr,
					}
				}
				break
			}
			records++
		}
		validEnd = off
	}
	if validEnd == len(data) {
		return nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if err := f.Truncate(int64(validEnd)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadStoreFile loads one JSONL file, returning (nil, nil) when absent.
func loadStoreFile(path string, resolveFn func(string) (boolexpr.Var, bool)) (*Repository, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	repo, _, err := loadJSON(f, resolveFn)
	return repo, err
}

// Append durably logs newly answered probes. It must be called after the
// records were added to the repository (the repository is the source of
// truth for snapshots; the WAL only covers the window since the last one).
// Callers that may Snapshot concurrently with answering must instead wrap
// the repository add and the append together in Update, or a snapshot
// taken between the two captures the record and the append then lands in
// the freshly reset WAL, making recovery replay it twice.
func (s *Store) Append(recs ...ProbeRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(recs...)
}

// Update runs fn while holding the store lock, excluding Snapshot for its
// duration. fn receives an append function behaving like Store.Append;
// performing the repository add and the WAL append inside one Update makes
// the pair atomic with respect to Snapshot, so a snapshot observes either
// both effects or neither and recovery never duplicates a record.
func (s *Store) Update(fn func(append func(...ProbeRecord) error) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fn(s.appendLocked)
}

func (s *Store) appendLocked(recs ...ProbeRecord) error {
	if err := s.wal.Append(recs...); err != nil {
		return err
	}
	s.walRecs += len(recs)
	return nil
}

// WALRecords reports how many records the WAL holds beyond the snapshot.
func (s *Store) WALRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walRecs
}

// Snapshot atomically persists the full repository and resets the WAL:
// after it returns, the snapshot alone reproduces repo. Called on graceful
// shutdown; it is also safe to call periodically to bound WAL growth,
// provided every concurrent answer path adds to the repository and appends
// to the WAL inside a single Update call (as the server does).
func (s *Store) Snapshot(repo *Repository) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := repo.SaveJSONFile(filepath.Join(s.dir, snapshotFile), s.nameFn); err != nil {
		return err
	}
	// The snapshot now covers everything; truncate the WAL.
	if err := s.wal.Close(); err != nil {
		return err
	}
	if err := os.Truncate(filepath.Join(s.dir, walFile), 0); err != nil {
		return err
	}
	wal, err := OpenWAL(filepath.Join(s.dir, walFile), s.nameFn)
	if err != nil {
		return err
	}
	s.wal = wal
	s.walRecs = 0
	return nil
}

// Close closes the WAL without snapshotting (crash-equivalent shutdown:
// recovery replays the WAL).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Close()
}

// Package resolve implements the paper's primary contribution: the
// query-guided uncertainty-resolution framework (Sections 4–6). Given the
// provenance-annotated answer of an SPJU query over an uncertain database
// and an oracle revealing tuple correctness, a Session iteratively selects
// oracle probes — combining learned answer probabilities, Boolean-
// evaluation utility functions (Q-Value, RO, General) and active-learning
// uncertainty reduction (LAL) — until the truth value of every provenance
// expression, and hence the exact ground-truth query answer, is decided.
package resolve

import (
	"qres/internal/boolexpr"
	"qres/internal/learn"
)

// ProbeRecord is one resolved tuple: its metadata and the oracle's answer.
// The variable is recorded when known (probes of the current database);
// initial repository entries imported from other sessions may carry only
// metadata and answer.
type ProbeRecord struct {
	Var    boolexpr.Var
	HasVar bool
	Meta   map[string]string
	Answer bool
}

// Repository is the Known Probes Repository (paper Figure 3): the set of
// tuples whose correctness was already revealed, with their metadata. It
// is the Learner's training set, seeded before a session with probes of
// tuples outside the query provenance (Section 7.1: 1280 by default) and
// extended with every answer obtained during resolution.
type Repository struct {
	records []ProbeRecord
	byVar   map[boolexpr.Var]bool // answers of variable-bearing records
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{byVar: make(map[boolexpr.Var]bool)}
}

// Add records an answer for a tuple identified only by metadata (initial,
// off-provenance training probes).
func (r *Repository) Add(meta map[string]string, answer bool) {
	r.records = append(r.records, ProbeRecord{Meta: meta, Answer: answer})
}

// AddVar records an answer for the tuple labeled by v.
func (r *Repository) AddVar(v boolexpr.Var, meta map[string]string, answer bool) {
	r.records = append(r.records, ProbeRecord{Var: v, HasVar: true, Meta: meta, Answer: answer})
	r.byVar[v] = answer
}

// Answer reports the recorded answer for v, if any. Sessions consult it in
// Step 3 to plug in truth values known from previous probes (possibly of
// other queries) before issuing any new ones.
func (r *Repository) Answer(v boolexpr.Var) (answer, known bool) {
	answer, known = r.byVar[v]
	return answer, known
}

// Len returns the number of records.
func (r *Repository) Len() int { return len(r.records) }

// Records returns all records; the slice must not be modified.
func (r *Repository) Records() []ProbeRecord { return r.records }

// Metas returns the metadata of all records, the input for fitting a
// feature encoder.
func (r *Repository) Metas() []map[string]string {
	out := make([]map[string]string, len(r.records))
	for i, rec := range r.records {
		out[i] = rec.Meta
	}
	return out
}

// Dataset encodes the repository into a training set under enc.
func (r *Repository) Dataset(enc *learn.Encoder) *learn.Dataset {
	d := &learn.Dataset{}
	for _, rec := range r.records {
		d.Add(enc.Encode(rec.Meta), rec.Answer)
	}
	return d
}

// Clone returns an independent copy, so experiments can reuse one seeded
// repository across algorithm configurations without cross-contamination.
func (r *Repository) Clone() *Repository {
	out := &Repository{
		records: append([]ProbeRecord(nil), r.records...),
		byVar:   make(map[boolexpr.Var]bool, len(r.byVar)),
	}
	for k, v := range r.byVar {
		out.byVar[k] = v
	}
	return out
}

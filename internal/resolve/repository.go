// Package resolve implements the paper's primary contribution: the
// query-guided uncertainty-resolution framework (Sections 4–6). Given the
// provenance-annotated answer of an SPJU query over an uncertain database
// and an oracle revealing tuple correctness, a Session iteratively selects
// oracle probes — combining learned answer probabilities, Boolean-
// evaluation utility functions (Q-Value, RO, General) and active-learning
// uncertainty reduction (LAL) — until the truth value of every provenance
// expression, and hence the exact ground-truth query answer, is decided.
package resolve

import (
	"sync"

	"qres/internal/boolexpr"
	"qres/internal/learn"
)

// ProbeRecord is one resolved tuple: its metadata and the oracle's answer.
// The variable is recorded when known (probes of the current database);
// initial repository entries imported from other sessions may carry only
// metadata and answer.
type ProbeRecord struct {
	Var    boolexpr.Var
	HasVar bool
	Meta   map[string]string
	Answer bool
}

// Repository is the Known Probes Repository (paper Figure 3): the set of
// tuples whose correctness was already revealed, with their metadata. It
// is the Learner's training set, seeded before a session with probes of
// tuples outside the query provenance (Section 7.1: 1280 by default) and
// extended with every answer obtained during resolution.
//
// A Repository is safe for concurrent use: the resolution service shares
// one repository across many live sessions (cross-session probe reuse),
// so every accessor takes the repository lock. Accessors return copies of
// internal state; the Meta maps inside returned records are shared with
// the repository and must be treated as immutable by callers.
type Repository struct {
	mu        sync.RWMutex
	records   []ProbeRecord
	byVar     map[boolexpr.Var]bool // answers of variable-bearing records
	positives int                   // records with Answer == true
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{byVar: make(map[boolexpr.Var]bool)}
}

// Add records an answer for a tuple identified only by metadata (initial,
// off-provenance training probes).
func (r *Repository) Add(meta map[string]string, answer bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.records = append(r.records, ProbeRecord{Meta: meta, Answer: answer})
	if answer {
		r.positives++
	}
}

// AddVar records an answer for the tuple labeled by v.
func (r *Repository) AddVar(v boolexpr.Var, meta map[string]string, answer bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.records = append(r.records, ProbeRecord{Var: v, HasVar: true, Meta: meta, Answer: answer})
	r.byVar[v] = answer
	if answer {
		r.positives++
	}
}

// Answer reports the recorded answer for v, if any. Sessions consult it in
// Step 3 to plug in truth values known from previous probes (possibly of
// other queries, or of concurrent sessions sharing the repository) before
// issuing any new ones.
func (r *Repository) Answer(v boolexpr.Var) (answer, known bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	answer, known = r.byVar[v]
	return answer, known
}

// Len returns the number of records.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.records)
}

// PositiveFraction returns the fraction of records answered True (0.5 for
// an empty repository) — the class prior the LAL regressor conditions on.
// It is O(1): the count is maintained incrementally.
func (r *Repository) PositiveFraction() float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.records) == 0 {
		return 0.5
	}
	return float64(r.positives) / float64(len(r.records))
}

// Records returns a copy of all records, so callers can iterate without
// holding the repository lock and cannot mutate the repository's own
// slice. The Meta maps are shared and must not be modified.
func (r *Repository) Records() []ProbeRecord {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]ProbeRecord(nil), r.records...)
}

// RecordsSince returns a copy of the records appended after the first n.
// Warm-started learners track an encoding watermark and fetch only the
// delta on retrain, instead of re-reading (and re-encoding) the whole
// repository. The Meta maps are shared and must not be modified.
func (r *Repository) RecordsSince(n int) []ProbeRecord {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n >= len(r.records) {
		return nil
	}
	return append([]ProbeRecord(nil), r.records[n:]...)
}

// Metas returns the metadata of all records, the input for fitting a
// feature encoder. The slice is freshly allocated; the maps are shared
// and must not be modified.
func (r *Repository) Metas() []map[string]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]map[string]string, len(r.records))
	for i, rec := range r.records {
		out[i] = rec.Meta
	}
	return out
}

// Dataset encodes the repository into a training set under enc.
func (r *Repository) Dataset(enc *learn.Encoder) *learn.Dataset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d := &learn.Dataset{}
	for _, rec := range r.records {
		d.Add(enc.Encode(rec.Meta), rec.Answer)
	}
	return d
}

// Clone returns an independent copy, so experiments can reuse one seeded
// repository across algorithm configurations without cross-contamination.
func (r *Repository) Clone() *Repository {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := &Repository{
		records:   append([]ProbeRecord(nil), r.records...),
		byVar:     make(map[boolexpr.Var]bool, len(r.byVar)),
		positives: r.positives,
	}
	for k, v := range r.byVar {
		out.byVar[k] = v
	}
	return out
}

package resolve

import (
	"fmt"
	"math/rand"

	"qres/internal/boolexpr"
	"qres/internal/obs"
)

// Strategy selects the next variable to probe among the candidates of the
// current round. The framework instantiations (utility × learning mode ×
// combination function) and the paper's baselines (Random, Greedy,
// LAL-only) all implement it.
type Strategy interface {
	// Name identifies the strategy in reports ("Q-Value+LAL", "Greedy", ...).
	Name() string
	// NeedsCNF reports whether the session must maintain CNFs.
	NeedsCNF() bool
	// next picks one of candidates; candidates is non-empty and sorted.
	next(s *Session, candidates []boolexpr.Var) (boolexpr.Var, error)
}

// randomStrategy probes variables in a random order (baseline).
type randomStrategy struct{ rng *rand.Rand }

func (randomStrategy) Name() string   { return "Random" }
func (randomStrategy) NeedsCNF() bool { return false }
func (r randomStrategy) next(s *Session, candidates []boolexpr.Var) (boolexpr.Var, error) {
	var v boolexpr.Var
	s.component(obs.StageSelector, &s.stats.Selector, func() {
		v = candidates[r.rng.Intn(len(candidates))]
	}, obs.Int("candidates", len(candidates)))
	return v, nil
}

// greedyStrategy probes the variable with the most occurrences in the
// (current, simplified) DNF provenance (baseline). It accounts for the
// Boolean structure but ignores probabilities.
type greedyStrategy struct{}

func (greedyStrategy) Name() string   { return "Greedy" }
func (greedyStrategy) NeedsCNF() bool { return false }
func (greedyStrategy) next(s *Session, candidates []boolexpr.Var) (boolexpr.Var, error) {
	var best boolexpr.Var
	s.component(obs.StageSelector, &s.stats.Selector, func() {
		counts := make(map[boolexpr.Var]int)
		for _, e := range s.work.exprs {
			if e.Decided() {
				continue
			}
			for _, t := range e.Terms() {
				for _, v := range t {
					counts[v]++
				}
			}
		}
		bestCount := -1
		best = candidates[0]
		for _, v := range candidates {
			if c := counts[v]; c > bestCount {
				best, bestCount = v, c
			}
		}
	}, obs.Int("candidates", len(candidates)))
	return best, nil
}

// lalOnlyStrategy ranks purely by the Learner's uncertainty-reduction
// estimate, i.e. standard active learning with no Boolean-evaluation
// signal (the paper's "LAL only" baseline, which performs poorly).
type lalOnlyStrategy struct{}

func (lalOnlyStrategy) Name() string   { return "LAL only" }
func (lalOnlyStrategy) NeedsCNF() bool { return false }
func (lalOnlyStrategy) next(s *Session, candidates []boolexpr.Var) (boolexpr.Var, error) {
	var scores []float64
	s.component(obs.StageLAL, &s.stats.LAL, func() {
		s.lalBuf = s.learner.UncertaintyBatch(candidates, s.lalBuf)
		scores = s.lalBuf
	}, obs.Int("candidates", len(candidates)))
	var best boolexpr.Var
	s.component(obs.StageSelector, &s.stats.Selector, func() {
		bestScore := -1.0
		best = candidates[0]
		for i, v := range candidates {
			if scores[i] > bestScore {
				best, bestScore = v, scores[i]
			}
		}
	})
	return best, nil
}

// utilityStrategy is a full framework instantiation: Learner probabilities
// feed a utility function, LAL scores uncertainty reduction, and the Probe
// Selector combines them with a Combine function (Steps 4.1–4.3).
type utilityStrategy struct {
	util    Utility
	combine Combine
}

func (u utilityStrategy) Name() string {
	return fmt.Sprintf("%s+%s", u.util.Name(), "?") // overridden by Session.Name
}

func (u utilityStrategy) NeedsCNF() bool { return u.util.NeedsCNF() }

func (u utilityStrategy) next(s *Session, candidates []boolexpr.Var) (boolexpr.Var, error) {
	// Component-sharded selection: when the workset splits into multiple
	// connected components, each runs Steps 4.1–4.3 on its own shard and
	// the winners merge under the same selector policy (see shard.go).
	if s.shards != nil {
		return s.nextSharded(u)
	}
	// Sub-step 4.1a: probability estimation, timed as "Learner". With the
	// incremental path, estimates are served from the per-version cache and
	// only new (or model-invalidated) candidates hit the classifier.
	var probs map[boolexpr.Var]float64
	s.component(obs.StageLearner, &s.stats.Learner, func() {
		if s.inc != nil {
			var hits, misses int
			probs, hits, misses = s.inc.candidateProbs(candidates)
			s.stats.ProbCacheHits += hits
			s.stats.ProbCacheMisses += misses
			s.obs.Count("prob_cache_hits", int64(hits))
			s.obs.Count("prob_cache_misses", int64(misses))
		} else {
			probs = make(map[boolexpr.Var]float64, len(candidates))
			for _, v := range candidates {
				probs[v] = s.learner.Prob(v)
			}
			s.stats.ProbCacheMisses += len(candidates)
			s.obs.Count("prob_cache_misses", int64(len(candidates)))
		}
	}, obs.Int("candidates", len(candidates)))

	// Sub-step 4.2: utility computation, timed under the utility's name.
	// The incremental path rescores only the variables whose surroundings
	// changed since the last round; probe choices stay bit-identical to the
	// full recompute because both paths share their arithmetic.
	var score func(boolexpr.Var) float64
	s.component(obs.StageUtility, &s.stats.Utility, func() {
		if s.inc != nil {
			if fn, st, ok := s.inc.scores(u.util, candidates, probs, s.round); ok {
				score = fn
				s.stats.VarsRescored += st.rescored
				s.stats.ScoreCacheHits += st.hits
				s.stats.ScoreCacheMisses += st.misses
				s.obs.Count("vars_rescored", int64(st.rescored))
				s.obs.Count("score_cache_hits", int64(st.hits))
				s.obs.Count("score_cache_misses", int64(st.misses))
				return
			}
		}
		scores := u.util.Scores(s.work,
			func(v boolexpr.Var) float64 { return probs[v] },
			candidates, s.round)
		score = func(v boolexpr.Var) float64 { return scores[v] }
		s.stats.VarsRescored += len(candidates)
		s.stats.ScoreCacheMisses += len(candidates)
		s.obs.Count("vars_rescored", int64(len(candidates)))
		s.obs.Count("score_cache_misses", int64(len(candidates)))
	}, obs.Str("utility", u.util.Name()))

	// Sub-step 4.1b: uncertainty reduction (LAL), timed separately. The
	// batch call reuses the session's score buffer across rounds and
	// snapshots the repository state once per round; outside online mode
	// the slice stays nil and uncertainty is 0 for every candidate.
	var uncertainty []float64
	if s.learner.Mode() == LearnOnline {
		s.component(obs.StageLAL, &s.stats.LAL, func() {
			s.lalBuf = s.learner.UncertaintyBatch(candidates, s.lalBuf)
			uncertainty = s.lalBuf
		})
	}

	// Sub-step 4.3: the Probe Selector combines and picks the argmax,
	// breaking ties by smallest variable for determinism. In cost-aware
	// mode candidates are ranked by score per unit cost (the Section 9
	// extension).
	var best boolexpr.Var
	s.component(obs.StageSelector, &s.stats.Selector, func() {
		bestScore := 0.0
		first := true
		for i, v := range candidates {
			unc := 0.0
			if uncertainty != nil {
				unc = uncertainty[i]
			}
			f := u.combine.Eval(score(v), unc)
			if s.cfg.CostAware {
				f /= s.cost(v)
			}
			if first || f > bestScore {
				best, bestScore, first = v, f, false
			}
		}
	})
	return best, nil
}

package resolve

import "errors"

// Sentinel errors of the session lifecycle. The public qres package
// re-exports them and internal/server maps each onto a stable
// machine-readable error code, so callers branch with errors.Is instead
// of matching message strings. Wrapped variants carry detail (the
// variables involved); errors.Is still matches the sentinel.
var (
	// ErrSessionDone: the operation needs an unfinished session, but every
	// expression is already decided.
	ErrSessionDone = errors.New("resolve: session is already done")
	// ErrNoProbePending: an answer arrived with no probe outstanding.
	ErrNoProbePending = errors.New("resolve: no probe outstanding; call NextProbe first")
	// ErrProbeMismatch: an answer names a different variable than the
	// outstanding probe.
	ErrProbeMismatch = errors.New("resolve: answer does not match the outstanding probe")
	// ErrNoOracle: Step was called on a session constructed without an
	// oracle (such sessions are driven through NextProbe/SubmitAnswer).
	ErrNoOracle = errors.New("resolve: session has no oracle; use NextProbe/SubmitAnswer")
	// ErrUnknownVariable: a reference names a tuple/variable the database
	// does not know.
	ErrUnknownVariable = errors.New("resolve: unknown variable")
)

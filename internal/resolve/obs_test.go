package resolve

import (
	"strings"
	"testing"

	"qres/internal/boolexpr"
	"qres/internal/engine"
	"qres/internal/obs"
	"qres/internal/oracle"
	"qres/internal/testdb"
	"qres/internal/uncertain"
)

// frameworkObsConfig is a full framework instantiation exercising every
// pipeline stage: online learning with a tiny retrain threshold so the
// classifier (and LAL) activate within the paper example's probe budget.
func frameworkObsConfig(o *obs.Obs) Config {
	return Config{
		Utility:  General{},
		Learning: LearnOnline,
		Trees:    5,
		MinTrain: 2,
		Seed:     11,
		Obs:      o,
	}
}

// Every pipeline stage of a traced framework session must emit at least
// one span event (the ISSUE's acceptance criterion), and per-round
// component spans must match the probe count exactly.
func TestSessionEmitsSpansPerStage(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	gt := uncertain.GenerateFixed(udb, 0.5, 42)

	col := &obs.Collector{}
	reg := obs.NewRegistry()
	o := obs.New("test", col, reg)

	sess, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), nil, frameworkObsConfig(o))
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Probes == 0 {
		t.Fatal("session resolved with zero probes; test needs a probing session")
	}

	for _, stage := range []obs.Stage{
		obs.StageRepoReuse, obs.StageSplit, obs.StageRetrain, obs.StageForestFit,
		obs.StageLearner, obs.StageLAL, obs.StageUtility, obs.StageSelector,
		obs.StageProbe, obs.StageSimplify,
	} {
		if col.StageCount(stage) == 0 {
			t.Errorf("stage %s emitted no span events", stage)
		}
	}

	// Per-round components fire exactly once per probe selection.
	for _, stage := range []obs.Stage{obs.StageLearner, obs.StageUtility, obs.StageSelector, obs.StageProbe, obs.StageSimplify} {
		if got := col.StageCount(stage); got != out.Probes {
			t.Errorf("stage %s: %d spans, want one per probe (%d)", stage, got, out.Probes)
		}
	}

	// The registry mirrors the sink: stage_seconds histograms labeled by
	// stage and session name carry the same counts.
	name := frameworkObsConfig(nil).Name()
	snap := reg.Snapshot()
	h, ok := snap.Histograms[obs.Key("stage_seconds", string(obs.StageProbe), name)]
	if !ok {
		t.Fatalf("registry has no probe histogram; keys: %v", histKeys(snap))
	}
	if h.Count != int64(out.Probes) {
		t.Errorf("probe histogram count = %d, want %d", h.Count, out.Probes)
	}
}

func histKeys(s obs.Snapshot) []string {
	var out []string
	for k := range s.Histograms {
		out = append(out, k)
	}
	return out
}

// The Stats timers of session.go (the paper's Table 4 components) must be
// populated by a framework-instantiation Run — the previously-dead timers
// satellite of the observability ISSUE.
func TestStatsTimersPopulatedAfterRun(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	gt := uncertain.GenerateFixed(udb, 0.5, 7)

	sess, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), nil, frameworkObsConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := out.Stats
	checks := []struct {
		name  string
		count int
	}{
		{"Learner", st.Learner.Count()},
		{"LAL", st.LAL.Count()},
		{"Utility", st.Utility.Count()},
		{"Selector", st.Selector.Count()},
	}
	for _, c := range checks {
		if c.count == 0 {
			t.Errorf("Stats.%s timer is empty after Run", c.name)
		}
		if c.count != out.Probes {
			t.Errorf("Stats.%s has %d samples, want one per probe (%d)", c.name, c.count, out.Probes)
		}
	}
	summary := st.Summary()
	for _, want := range []string{"probes=", "learner", "lal", "utility", "selector"} {
		if !strings.Contains(summary, want) {
			t.Errorf("Stats.Summary() missing %q:\n%s", want, summary)
		}
	}
}

// Baselines populate the Selector timer too (Random/Greedy previously left
// every timer empty).
func TestBaselineSelectorTimerPopulated(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	gt := uncertain.GenerateFixed(udb, 0.5, 3)
	for _, cfg := range []Config{
		{Baseline: BaselineRandom, Seed: 1},
		{Baseline: BaselineGreedy, Seed: 1},
	} {
		sess, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Stats.Selector.Count(); got != out.Probes {
			t.Errorf("%s: Selector timer has %d samples, want %d", cfg.Name(), got, out.Probes)
		}
	}
}

// ResolveParallel shares one obs handle across concurrent sub-sessions;
// under -race this validates the registry, the sinks and the merged Stats
// aggregation. The paper example is a single connected component, so the
// test hand-builds a result whose rows carry variable-disjoint provenance
// (one literal per row) to force several concurrent sub-sessions.
func TestParallelSharedObservability(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	base, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	gt := uncertain.GenerateFixed(udb, 0.5, 5)

	vars := base.UniqueVars()
	if len(vars) < 2 {
		t.Fatalf("paper example has %d unique variables; need >= 2", len(vars))
	}
	res := &engine.Result{Columns: base.Columns}
	for _, v := range vars {
		res.Rows = append(res.Rows, engine.Row{Prov: boolexpr.Lit(v)})
	}

	col := &obs.Collector{}
	reg := obs.NewRegistry()
	cfg := Config{Utility: General{}, Learning: LearnEP, Seed: 2, Obs: obs.New("par", col, reg)}
	out, err := ResolveParallel(udb, res, oracle.NewGroundTruth(gt.Val), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Components != len(vars) {
		t.Fatalf("got %d components, want %d", out.Components, len(vars))
	}
	if got := col.StageCount(obs.StageProbe); got != out.Probes {
		t.Errorf("collector saw %d probe spans, want %d", got, out.Probes)
	}
	// Merged parallel stats carry every sub-session's component timings.
	if got := out.Stats.Selector.Count(); got != out.Probes {
		t.Errorf("merged Stats.Selector has %d samples, want %d", got, out.Probes)
	}
	if got := out.Stats.Utility.Count(); got != out.Probes {
		t.Errorf("merged Stats.Utility has %d samples, want %d", got, out.Probes)
	}
	if out.Stats.Probes != out.Probes {
		t.Errorf("merged Stats.Probes = %d, want %d", out.Stats.Probes, out.Probes)
	}
}

package resolve

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"qres/internal/boolexpr"
	"qres/internal/oracle"
	"qres/internal/uncertain"
)

// The inverted index and the probe delta drive every incremental cache, so
// their behaviour is pinned case by case: which expressions a probe
// touches, which variables become dirty, and which leave the candidate set.
func TestWorksetInvertedIndex(t *testing.T) {
	// Shorthands: expression i is a DNF over small variable numbers.
	expr := func(terms ...boolexpr.Term) boolexpr.Expr { return boolexpr.NewExpr(terms...) }
	term := func(vs ...boolexpr.Var) boolexpr.Term { return boolexpr.NewTerm(vs...) }

	cases := []struct {
		name   string
		exprs  []boolexpr.Expr
		probe  boolexpr.Var
		answer bool

		wantTouched  []int
		wantDecided  []int
		wantAffected []boolexpr.Var
		wantDropped  []boolexpr.Var
		wantCands    []boolexpr.Var
	}{
		{
			// A fresh variable joins only its own expressions: probing it
			// must leave the disjoint expression untouched.
			name:         "disjoint expression untouched",
			exprs:        []boolexpr.Expr{expr(term(0, 1)), expr(term(2, 3))},
			probe:        0,
			answer:       true,
			wantTouched:  []int{0},
			wantDecided:  nil,
			wantAffected: []boolexpr.Var{1},
			wantDropped:  nil,
			wantCands:    []boolexpr.Var{1, 2, 3},
		},
		{
			// answered-true: x0=True satisfies a term of both expressions,
			// deciding them and orphaning the other term's variable.
			name:         "answered true decides and orphans",
			exprs:        []boolexpr.Expr{expr(term(0)), expr(term(0), term(1))},
			probe:        0,
			answer:       true,
			wantTouched:  []int{0, 1},
			wantDecided:  []int{0, 1},
			wantAffected: []boolexpr.Var{1},
			wantDropped:  []boolexpr.Var{1},
			wantCands:    nil,
		},
		{
			// answered-false: x0=False kills its term but the union survives
			// through the other term.
			name:         "answered false shrinks union",
			exprs:        []boolexpr.Expr{expr(term(0, 1), term(2))},
			probe:        0,
			answer:       false,
			wantTouched:  []int{0},
			wantDecided:  nil,
			wantAffected: []boolexpr.Var{1, 2},
			wantDropped:  []boolexpr.Var{1},
			wantCands:    []boolexpr.Var{2},
		},
		{
			// A variable shared across unions touches every expression it
			// occurs in; co-variables of all of them become affected.
			name: "variable shared across unions",
			exprs: []boolexpr.Expr{
				expr(term(0, 1), term(4)),
				expr(term(0, 2)),
				expr(term(3)),
			},
			probe:        0,
			answer:       false,
			wantTouched:  []int{0, 1},
			wantDecided:  []int{1},
			wantAffected: []boolexpr.Var{1, 2, 4},
			wantDropped:  []boolexpr.Var{1, 2},
			wantCands:    []boolexpr.Var{3, 4},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			partOf := make([]int, len(tc.exprs))
			for i := range partOf {
				partOf[i] = i
			}
			w, err := newWorkset(tc.exprs, partOf, false, 0)
			if err != nil {
				t.Fatal(err)
			}
			d, err := w.applyProbe(tc.probe, tc.answer)
			if err != nil {
				t.Fatal(err)
			}
			check := func(field string, got, want any) {
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s = %v, want %v", field, got, want)
				}
			}
			check("touched", d.touched, tc.wantTouched)
			check("decided", d.decided, tc.wantDecided)
			check("affected", d.affected, tc.wantAffected)
			check("dropped", d.dropped, tc.wantDropped)
			got := append([]boolexpr.Var{}, w.cands...)
			want := append([]boolexpr.Var{}, tc.wantCands...)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("candidates = %v, want %v", got, want)
			}
			// The live occ counts must agree with a from-scratch recount.
			fresh := make(map[boolexpr.Var]int)
			for i, e := range w.exprs {
				if e.Decided() {
					continue
				}
				for v := range w.exprVars[i] {
					fresh[v]++
				}
			}
			if !reflect.DeepEqual(w.occ, fresh) {
				t.Errorf("occ = %v, want %v", w.occ, fresh)
			}
		})
	}
}

// The incremental hot path must be invisible: for every utility and
// learning mode, the probe sequence and the resolved answer set must be
// bit-identical to the full per-round recompute. Synthetic workloads with
// heavy variable sharing exercise the caches far harder than real query
// provenance.
func TestIncrementalEquivalenceSynthetic(t *testing.T) {
	for trial := int64(0); trial < 3; trial++ {
		udb, res := syntheticWorkload(t, 50, 14, 6, 4, 4000+trial)
		gt := uncertain.GenerateFixed(udb, 0.5, 4100+trial)

		known := make(map[boolexpr.Var]float64)
		for _, v := range res.UniqueVars() {
			known[v] = 0.1 + 0.8*float64(int(v)%7)/6
		}

		// A pre-seeded repository lets Offline and Online modes actually
		// train (MinTrain reached) so their classifier probabilities flow
		// through the caches too.
		seedRepo := NewRepository()
		n := 0
		for _, v := range res.UniqueVars() {
			if n >= 25 {
				break
			}
			if int(v)%3 == 0 {
				ans, _ := gt.Val.Get(v)
				seedRepo.AddVar(v, udb.MetaFor(v), ans)
				n++
			}
		}

		base := []Config{
			{Utility: QValue{}, Learning: LearnEP, CNFClauseBound: 256},
			{Utility: RO{}, Learning: LearnEP},
			{Utility: General{}, Learning: LearnEP},
			{Utility: General{}, KnownProbs: known},
			{Utility: RO{}, KnownProbs: known},
			{Utility: General{}, Learning: LearnOffline, Trees: 10},
			{Utility: General{}, Learning: LearnOnline, Trees: 5},
		}
		for ci, cfg := range base {
			cfg.Seed = trial
			name := fmt.Sprintf("trial%d/%s", trial, cfg.Name())

			run := func(disable bool, workers int) ([]boolexpr.Var, []RowStatus, *Stats) {
				c := cfg
				c.DisableIncremental = disable
				c.RescoreWorkers = workers
				rec := oracle.NewRecorder(oracle.NewGroundTruth(gt.Val))
				sess, err := NewSession(udb, res, rec, seedRepo.Clone(), c)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if _, err := sess.Run(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				return rec.Probes(), sess.Snapshot(), sess.Stats()
			}

			fullProbes, fullSnap, _ := run(true, 0)
			incProbes, incSnap, incStats := run(false, 0)
			if !reflect.DeepEqual(fullProbes, incProbes) {
				t.Fatalf("%s: probe sequence diverged\nfull: %v\ninc:  %v", name, fullProbes, incProbes)
			}
			if !reflect.DeepEqual(fullSnap, incSnap) {
				t.Fatalf("%s: answer set diverged", name)
			}
			// Rescore parallelism must not change choices either.
			parProbes, parSnap, _ := run(false, 4)
			if !reflect.DeepEqual(fullProbes, parProbes) || !reflect.DeepEqual(fullSnap, parSnap) {
				t.Fatalf("%s: parallel rescore diverged", name)
			}
			// Outside online mode the caches must actually be doing work:
			// at least one score has to be served from cache (the synthetic
			// workloads always have non-adjacent variables).
			if cfg.Learning != LearnOnline && ci < 5 && incStats.ScoreCacheHits == 0 {
				t.Errorf("%s: incremental run had zero score-cache hits", name)
			}
		}
	}
}

// Incremental sessions sharing one repository must be race-free: answers
// recorded by one session are reused by the others mid-flight (applyKnown
// deltas), which exercises the cache-reconciliation path concurrently with
// repository writes. Run with -race.
func TestIncrementalConcurrentSharedRepository(t *testing.T) {
	udb, res := syntheticWorkload(t, 60, 16, 5, 4, 9000)
	gt := uncertain.GenerateFixed(udb, 0.5, 9001)
	repo := NewRepository()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{Utility: General{}, Learning: LearnEP, Seed: int64(i)}
			if i%2 == 0 {
				cfg.Utility = RO{}
			}
			sess, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), repo, cfg)
			if err != nil {
				errs <- err
				return
			}
			if _, err := sess.Run(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	want := groundTruthAnswer(res, gt.Val)
	cfg := Config{Utility: General{}, Learning: LearnEP, Seed: 99}
	sess, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range out.Answers {
		if a.Correct != want[a.Row] {
			t.Errorf("row %d resolved %t, want %t", a.Row, a.Correct, want[a.Row])
		}
	}
}

package resolve

import (
	"fmt"
	"sync"
	"testing"

	"qres/internal/boolexpr"
	"qres/internal/engine"
	"qres/internal/learn"
	"qres/internal/oracle"
	"qres/internal/stats"
	"qres/internal/testdb"
	"qres/internal/uncertain"
)

// TestRepositoryConcurrentAccess hammers one shared repository from many
// goroutines mixing every accessor — the access pattern of the resolution
// service, where concurrent sessions Add/Answer while learners snapshot
// Records/Metas/Dataset and the store saves. Run under -race.
func TestRepositoryConcurrentAccess(t *testing.T) {
	repo := NewRepository()
	reg := boolexpr.NewRegistry()
	vars := make([]boolexpr.Var, 64)
	for i := range vars {
		vars[i] = reg.Intern(fmt.Sprintf("t[%d]", i))
	}

	const writers, readers, rounds = 8, 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				meta := map[string]string{"source": fmt.Sprintf("s%d", i%7)}
				if i%2 == 0 {
					repo.AddVar(vars[(w*rounds+i)%len(vars)], meta, i%3 == 0)
				} else {
					repo.Add(meta, i%3 == 0)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch i % 5 {
				case 0:
					repo.Answer(vars[i%len(vars)])
				case 1:
					_ = repo.Len()
				case 2:
					_ = repo.Records()
				case 3:
					if metas := repo.Metas(); len(metas) > 0 {
						enc := learn.NewEncoder(metas)
						_ = repo.Dataset(enc)
					}
				case 4:
					_ = repo.PositiveFraction()
					_ = repo.Clone()
				}
			}
		}(r)
	}
	wg.Wait()

	want := writers * rounds
	if repo.Len() != want {
		t.Fatalf("Len = %d, want %d", repo.Len(), want)
	}
}

// TestRecordsReturnsCopy verifies a handler mutating the returned slices
// cannot corrupt repository state out from under the WAL.
func TestRecordsReturnsCopy(t *testing.T) {
	repo := NewRepository()
	repo.Add(map[string]string{"source": "x"}, true)
	recs := repo.Records()
	recs[0].Answer = false
	recs[0].HasVar = true
	if got := repo.Records()[0]; got.Answer != true || got.HasVar {
		t.Error("mutating Records() result changed repository state")
	}
	metas := repo.Metas()
	metas[0] = map[string]string{"source": "hacked"}
	if repo.Metas()[0]["source"] != "x" {
		t.Error("mutating Metas() slice changed repository state")
	}
}

// TestSharedRepositoryAcrossParallelSessions runs many full resolution
// sessions concurrently against one shared repository (the server's
// deployment shape: cross-session probe reuse with per-session learners
// retraining from the shared training set). Run under -race.
func TestSharedRepositoryAcrossParallelSessions(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	gt := uncertain.GenerateRDT(udb, 3, 17)
	shared := NewRepository()

	const sessions = 6
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{Utility: General{}, Learning: LearnOnline, Seed: stats.SubSeed(99, i)}
			sess, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), shared, cfg)
			if err != nil {
				errs[i] = err
				return
			}
			out, err := sess.Run()
			if err != nil {
				errs[i] = err
				return
			}
			for r := range out.Answers {
				if out.Answers[r].Correct != res.Rows[r].Prov.Eval(gt.Val) {
					errs[i] = fmt.Errorf("session %d: row %d wrong", i, r)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if repoLen := shared.Len(); repoLen == 0 {
		t.Fatal("shared repository empty after parallel sessions")
	}
}

package resolve

import (
	"sync"

	"qres/internal/boolexpr"
	"qres/internal/engine"
	"qres/internal/stats"
	"qres/internal/uncertain"
)

// ParallelOutcome extends Outcome with the parallelism metrics of the
// paper's Section 6 discussion: variable-disjoint expression components
// are resolved by concurrent independent sessions without changing each
// component's probe choices, so the total probe count is preserved while
// wall-clock latency drops to roughly the largest component's.
type ParallelOutcome struct {
	Outcome
	// Components is the number of variable-disjoint groups resolved
	// concurrently.
	Components int
	// CriticalPathProbes is the maximum probe count over components: the
	// number of sequential oracle rounds when each component probes
	// independently in parallel.
	CriticalPathProbes int
}

// ResolveParallel partitions the result's provenance expressions into
// variable-disjoint components and resolves each concurrently with an
// independent sub-session (Section 6, "Parallel probe selection"). The
// oracle must be safe for concurrent use. Each sub-session starts from a
// clone of the seeded repository: learning proceeds per component, which
// is the price of concurrency (cross-component probe answers are not
// shared mid-flight).
func ResolveParallel(db *uncertain.DB, result *engine.Result, orc Oracle, repo *Repository, cfg Config) (*ParallelOutcome, error) {
	if repo == nil {
		repo = NewRepository()
	}
	exprs := result.Provenance()
	groups := boolexpr.Components(exprs)

	// Rows whose expressions are already decided (constant provenance)
	// belong to no component; resolve their status directly.
	answers := make([]RowAnswer, len(result.Rows))
	for i := range answers {
		answers[i] = RowAnswer{Row: i, Correct: exprs[i].IsTrue()}
	}

	type compResult struct {
		rows    []int
		outcome *Outcome
		err     error
	}
	results := make([]compResult, len(groups))
	var wg sync.WaitGroup
	for g, rowIdxs := range groups {
		wg.Add(1)
		go func(g int, rowIdxs []int) {
			defer wg.Done()
			sub := &engine.Result{Columns: result.Columns}
			for _, r := range rowIdxs {
				sub.Rows = append(sub.Rows, result.Rows[r])
			}
			subCfg := cfg
			subCfg.Seed = stats.SubSeed(cfg.Seed, g)
			sess, err := NewSession(db, sub, orc, repo.Clone(), subCfg)
			if err != nil {
				results[g] = compResult{err: err}
				return
			}
			out, err := sess.Run()
			results[g] = compResult{rows: rowIdxs, outcome: out, err: err}
		}(g, rowIdxs)
	}
	wg.Wait()

	// Aggregate component outcomes; Stats.Merge folds every sub-session's
	// counters and per-component timing samples into one distribution (the
	// timers are mutex-protected, so merging after the barrier is safe even
	// though sub-sessions populated them concurrently).
	total := &ParallelOutcome{Components: len(groups)}
	agg := &Stats{}
	for _, cr := range results {
		if cr.err != nil {
			return nil, cr.err
		}
		for i, a := range cr.outcome.Answers {
			answers[cr.rows[i]].Correct = a.Correct
		}
		agg.Merge(cr.outcome.Stats)
		if cr.outcome.Probes > total.CriticalPathProbes {
			total.CriticalPathProbes = cr.outcome.Probes
		}
	}
	total.Probes = agg.Probes
	total.Answers = answers
	total.Stats = agg
	return total, nil
}

package resolve

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"qres/internal/boolexpr"
	"qres/internal/engine"
	"qres/internal/oracle"
	"qres/internal/table"
	"qres/internal/uncertain"
)

// multiComponentWorkload builds a synthetic workset of `comps` connected
// components: each component draws its variables from a private range, so
// the union-find split is exactly `comps` groups. Rows interleave the
// components (row i belongs to component i%comps), exercising grouping of
// non-contiguous expression indices.
func multiComponentWorkload(t testing.TB, comps, varsPer, exprsPer, maxTerms, maxTermSize int, seed int64) (*uncertain.DB, *engine.Result) {
	t.Helper()
	db := table.NewDatabase()
	rel := table.NewRelation("facts", table.NewSchema(table.Column{Name: "id", Kind: table.KindInt}))
	rng := rand.New(rand.NewSource(seed))
	nvars := comps * varsPer
	for i := 0; i < nvars; i++ {
		rel.MustAppend(table.Tuple{table.Int(int64(i))},
			table.Metadata{"source": fmt.Sprintf("src-%d", i%5)})
	}
	db.MustAdd(rel)
	udb := uncertain.New(db)

	res := &engine.Result{Columns: []engine.OutCol{{Name: "id", Kind: table.KindInt}}}
	for i := 0; i < comps*exprsPer; i++ {
		c := i % comps
		nt := 1 + rng.Intn(maxTerms)
		terms := make([]boolexpr.Term, 0, nt)
		for j := 0; j < nt; j++ {
			size := 1 + rng.Intn(maxTermSize)
			vars := make([]boolexpr.Var, 0, size)
			for k := 0; k < size; k++ {
				vars = append(vars, boolexpr.Var(c*varsPer+rng.Intn(varsPer)))
			}
			terms = append(terms, boolexpr.NewTerm(vars...))
		}
		res.Rows = append(res.Rows, engine.Row{
			Tuple: table.Tuple{table.Int(int64(i))},
			Prov:  boolexpr.NewExpr(terms...),
		})
	}
	return udb, res
}

// Component-sharded selection must be invisible: for every utility and
// learning mode, and for any shard-worker count, the probe sequence and
// the resolved answer set must be bit-identical to the monolithic path.
func TestShardEquivalenceSynthetic(t *testing.T) {
	for trial := int64(0); trial < 2; trial++ {
		udb, res := multiComponentWorkload(t, 5, 12, 4, 4, 3, 5000+trial)
		gt := uncertain.GenerateFixed(udb, 0.5, 5100+trial)

		known := make(map[boolexpr.Var]float64)
		for _, v := range res.UniqueVars() {
			known[v] = 0.1 + 0.8*float64(int(v)%7)/6
		}
		seedRepo := NewRepository()
		n := 0
		for _, v := range res.UniqueVars() {
			if n >= 25 {
				break
			}
			if int(v)%3 == 0 {
				ans, _ := gt.Val.Get(v)
				seedRepo.AddVar(v, udb.MetaFor(v), ans)
				n++
			}
		}

		base := []Config{
			{Utility: QValue{}, Learning: LearnEP, CNFClauseBound: 256},
			{Utility: RO{}, Learning: LearnEP},
			{Utility: General{}, Learning: LearnEP},
			{Utility: General{}, KnownProbs: known},
			{Utility: RO{}, KnownProbs: known},
			{Utility: General{}, Learning: LearnOffline, Trees: 10},
			{Utility: General{}, Learning: LearnOnline, Trees: 5},
		}
		for _, cfg := range base {
			cfg.Seed = trial
			name := fmt.Sprintf("trial%d/%s", trial, cfg.Name())

			run := func(mutate func(*Config)) ([]boolexpr.Var, []RowStatus, *Stats, *Session) {
				c := cfg
				mutate(&c)
				rec := oracle.NewRecorder(oracle.NewGroundTruth(gt.Val))
				sess, err := NewSession(udb, res, rec, seedRepo.Clone(), c)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if _, err := sess.Run(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				return rec.Probes(), sess.Snapshot(), sess.Stats(), sess
			}

			monoProbes, monoSnap, _, mono := run(func(c *Config) { c.DisableSharding = true })
			if mono.shards != nil {
				t.Fatalf("%s: DisableSharding session built shards", name)
			}
			if mono.Components() < 2 {
				t.Fatalf("%s: workload has %d components; need >= 2", name, mono.Components())
			}
			for _, workers := range []int{0, 1, 2, 8} {
				probes, snap, _, sess := run(func(c *Config) { c.Parallel.Shards = workers })
				if sess.shards == nil {
					t.Fatalf("%s: sharding did not engage", name)
				}
				if !reflect.DeepEqual(monoProbes, probes) {
					t.Fatalf("%s: probe sequence diverged at %d shard workers\nmono: %v\nshard: %v",
						name, workers, monoProbes, probes)
				}
				if !reflect.DeepEqual(monoSnap, snap) {
					t.Fatalf("%s: answer set diverged at %d shard workers", name, workers)
				}
			}
		}
	}
}

// Between Learner retrains, a shard untouched by probe deltas must serve
// its round from the cached winner: whole rounds skip scoring entirely.
func TestShardWinnerReuse(t *testing.T) {
	udb, res := multiComponentWorkload(t, 6, 10, 4, 3, 3, 7000)
	gt := uncertain.GenerateFixed(udb, 0.5, 7001)
	for _, cfg := range []Config{
		{Utility: QValue{}, Learning: LearnEP, CNFClauseBound: 256},
		{Utility: General{}, Learning: LearnEP},
	} {
		sess, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(); err != nil {
			t.Fatal(err)
		}
		if sess.shards == nil {
			t.Fatalf("%s: sharding did not engage", cfg.Name())
		}
		if sess.Stats().ShardRoundsReused == 0 {
			t.Errorf("%s: no shard round was served from a cached winner", cfg.Name())
		}
	}
}

// Sharded sessions sharing one repository must be race-free: answers
// recorded by one session flow into the others mid-flight, reconciling
// shard caches concurrently with repository writes. Run with -race.
func TestShardConcurrentSharedRepository(t *testing.T) {
	udb, res := multiComponentWorkload(t, 5, 12, 4, 3, 3, 8000)
	gt := uncertain.GenerateFixed(udb, 0.5, 8001)
	repo := NewRepository()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{Utility: General{}, Learning: LearnEP, Seed: int64(i),
				Parallel: Parallelism{Shards: 1 + i%4}}
			if i%2 == 0 {
				cfg.Utility = RO{}
			}
			sess, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), repo, cfg)
			if err != nil {
				errs <- err
				return
			}
			// Later sessions may find the workset partly (or fully) decided
			// by earlier ones' repository answers, so sharding engaging is
			// timing-dependent here; the point is race-freedom under -race.
			if _, err := sess.Run(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	want := groundTruthAnswer(res, gt.Val)
	sess, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), repo,
		Config{Utility: General{}, Learning: LearnEP, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range out.Answers {
		if a.Correct != want[a.Row] {
			t.Errorf("row %d resolved %t, want %t", a.Row, a.Correct, want[a.Row])
		}
	}
}

// Configurations outside the sharded path's contract must fall back to
// monolithic selection — and still resolve correctly.
func TestShardIneligibleConfigs(t *testing.T) {
	udb, res := multiComponentWorkload(t, 4, 10, 3, 3, 3, 8100)
	gt := uncertain.GenerateFixed(udb, 0.5, 8101)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"baseline random", Config{Baseline: BaselineRandom}},
		{"incremental off", Config{Utility: General{}, Learning: LearnEP, DisableIncremental: true}},
		{"sharding off", Config{Utility: General{}, Learning: LearnEP, DisableSharding: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sess, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), nil, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if sess.shards != nil {
				t.Fatal("ineligible config built shards")
			}
			if _, err := sess.Run(); err != nil {
				t.Fatal(err)
			}
			want := groundTruthAnswer(res, gt.Val)
			for i, st := range sess.Snapshot() {
				wantSt := RowIncorrect
				if want[i] {
					wantSt = RowCorrect
				}
				if st != wantSt {
					t.Errorf("row %d status %v, want %v", i, st, wantSt)
				}
			}
		})
	}
}

// The component signature must be a pure function of the workset's
// component structure: identical across sessions over the same query and
// repository state, different when the structure differs.
func TestShardComponentSignature(t *testing.T) {
	udb, res := multiComponentWorkload(t, 5, 12, 4, 3, 3, 8200)
	gt := uncertain.GenerateFixed(udb, 0.5, 8201)
	cfg := Config{Utility: General{}, Learning: LearnEP}

	mk := func(r *engine.Result) *Session {
		sess, err := NewSession(udb, r, oracle.NewGroundTruth(gt.Val), nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	a, b := mk(res), mk(res)
	if a.ComponentSignature() == "" || len(a.ComponentSignature()) != 16 {
		t.Fatalf("malformed signature %q", a.ComponentSignature())
	}
	if a.ComponentSignature() != b.ComponentSignature() {
		t.Errorf("same workload, different signatures: %s vs %s",
			a.ComponentSignature(), b.ComponentSignature())
	}
	// Each variable block yields at least one component; sparse random
	// draws inside a block may split it further.
	if a.Components() < 5 {
		t.Errorf("Components() = %d, want >= 5", a.Components())
	}

	udb2, res2 := multiComponentWorkload(t, 3, 12, 4, 3, 3, 8200)
	sess2, err := NewSession(udb2, res2, oracle.NewGroundTruth(gt.Val), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sess2.ComponentSignature() == a.ComponentSignature() {
		t.Error("structurally different worksets share a signature")
	}
}

// The k-way merged weight statistics must equal the single-multiset scan
// over the concatenation — including duplicate weights across shards and
// sub-tolerance gaps.
func TestShardMergedWeightStats(t *testing.T) {
	cases := []struct {
		name  string
		lists [][]float64
	}{
		{"empty", nil},
		{"one list", [][]float64{{0.1, 0.5, 0.9}}},
		{"disjoint", [][]float64{{0.1, 0.4}, {0.2, 0.3}, {0.05}}},
		{"duplicates across lists", [][]float64{{0.2, 0.2, 0.7}, {0.2, 0.7}}},
		{"tiny gaps", [][]float64{{0.3, 0.3 + 1e-13}, {0.3 + 2e-13, 0.5}}},
		{"some empty", [][]float64{{}, {0.6, 0.8}, {}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var all []float64
			for _, l := range tc.lists {
				all = append(all, l...)
			}
			sort.Float64s(all)
			wantMin, wantGap := weightStatsSorted(all)
			gotMin, gotGap := mergedWeightStats(tc.lists)
			if gotMin != wantMin || gotGap != wantGap {
				t.Errorf("mergedWeightStats = (%v, %v), want (%v, %v)",
					gotMin, gotGap, wantMin, wantGap)
			}
		})
	}
}

// BenchmarkShardStepSynthetic measures per-probe wall time on a wide
// multi-component synthetic workset, monolithic versus sharded at
// 1/2/4/8 shard workers. With a stable Learner version and a cacheable
// score kind every round, the monolithic path still rebuilds its
// candidate scan over the whole workset per probe while the sharded path
// rescans only the probed component and serves the rest from cached
// winners — this is the workload class results/BENCH_shard.json pins the
// >=1.5x 4-worker speedup target on.
func BenchmarkShardStepSynthetic(b *testing.B) {
	udb, res := multiComponentWorkload(b, 400, 12, 5, 5, 2, 9000)
	gt := uncertain.GenerateFixed(udb, 0.5, 9100)
	known := make(map[boolexpr.Var]float64)
	for _, v := range res.UniqueVars() {
		known[v] = 0.1 + 0.8*float64(int(v)%7)/6
	}

	modes := []struct {
		name   string
		mutate func(*Config)
	}{
		{"monolithic", func(c *Config) { c.DisableSharding = true }},
		{"shards-1", func(c *Config) { c.Parallel.Shards = 1 }},
		{"shards-2", func(c *Config) { c.Parallel.Shards = 2 }},
		{"shards-4", func(c *Config) { c.Parallel.Shards = 4 }},
		{"shards-8", func(c *Config) { c.Parallel.Shards = 8 }},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			cfg := Config{Utility: QValue{}, KnownProbs: known, CNFClauseBound: 256, Seed: 7}
			mode.mutate(&cfg)
			var steps int
			var inLoop time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sess, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), nil, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				start := time.Now()
				for !sess.Done() {
					if _, _, err := sess.Step(); err != nil {
						b.Fatal(err)
					}
					steps++
				}
				inLoop += time.Since(start)
			}
			if steps > 0 {
				b.ReportMetric(float64(inLoop.Nanoseconds())/float64(steps), "ns/step")
			}
		})
	}
}

package resolve

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"qres/internal/boolexpr"
	"qres/internal/oracle"
	"qres/internal/uncertain"
)

// seedRepository fills a repository with off-provenance training records
// (metadata drawn from the same source universe the synthetic workload
// uses) so online learners start above MinTrain.
func seedRepository(n int) *Repository {
	repo := NewRepository()
	for i := 0; i < n; i++ {
		repo.Add(map[string]string{
			"source":   fmt.Sprintf("src-%d", i%5),
			"rel_name": "facts",
		}, i%3 == 0)
	}
	return repo
}

// TestWarmRetrainMatchesFullRetrain runs the same online session once with
// the warm-started retrain path and once with FullRetrain: probe
// sequences, probe counts and resolved answers must be bit-identical,
// because encoder reuse and append-only encoding reproduce exactly the
// matrix a cold rebuild encodes.
func TestWarmRetrainMatchesFullRetrain(t *testing.T) {
	udb, res := syntheticWorkload(t, 40, 12, 6, 4, 4242)
	gt := uncertain.GenerateFixed(udb, 0.5, 4243)
	seed := seedRepository(30)

	run := func(full bool) ([]boolexpr.Var, *Outcome) {
		rec := oracle.NewRecorder(oracle.NewGroundTruth(gt.Val))
		sess, err := NewSession(udb, res, rec, seed.Clone(), Config{
			Utility: General{}, Learning: LearnOnline, Seed: 9,
			MinTrain: 20, Trees: 25, FullRetrain: full,
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rec.Probes(), out
	}

	warmProbes, warmOut := run(false)
	fullProbes, fullOut := run(true)
	if !reflect.DeepEqual(warmProbes, fullProbes) {
		t.Fatalf("probe sequences diverge:\nwarm: %v\nfull: %v", warmProbes, fullProbes)
	}
	if !reflect.DeepEqual(warmOut.Answers, fullOut.Answers) {
		t.Fatal("resolved answers diverge between warm and full retrain")
	}
	if warmOut.Probes != fullOut.Probes {
		t.Fatalf("probe counts diverge: warm %d, full %d", warmOut.Probes, fullOut.Probes)
	}
}

// TestWarmRetrainProbsMatchFull drives two learners over the same
// observation stream — one warm, one always cold — and compares every
// probability estimate after every retrain. This pins the Learner-level
// equivalence directly, independent of session scoring.
func TestWarmRetrainProbsMatchFull(t *testing.T) {
	udb, res := syntheticWorkload(t, 30, 8, 5, 3, 555)
	gt := uncertain.GenerateFixed(udb, 0.5, 556)
	vars := res.UniqueVars()

	mk := func(full bool) *Learner {
		return NewLearner(udb, seedRepository(25), LearnerConfig{
			Mode: LearnOnline, Trees: 20, MinTrain: 20, Seed: 3,
			FullRetrain: full,
		})
	}
	warm, cold := mk(false), mk(true)
	for step, v := range vars {
		ans, _ := gt.Val.Get(v)
		warm.Observe(v, ans)
		cold.Observe(v, ans)
		for _, u := range vars {
			if pw, pc := warm.Prob(u), cold.Prob(u); pw != pc {
				t.Fatalf("step %d: Prob(%d) warm %v != cold %v", step, u, pw, pc)
			}
		}
	}
	if warm.Retrains() != cold.Retrains() {
		t.Fatalf("retrain counts diverge: warm %d, cold %d", warm.Retrains(), cold.Retrains())
	}
}

// TestProbBatchMatchesProb checks the batched learner reads against the
// scalar path across modes: trained online forest, untrained (below
// MinTrain), and KnownProbs bypass.
func TestProbBatchMatchesProb(t *testing.T) {
	udb, res := syntheticWorkload(t, 30, 8, 5, 3, 777)
	vars := res.UniqueVars()

	trained := NewLearner(udb, seedRepository(40), LearnerConfig{
		Mode: LearnOnline, Trees: 20, MinTrain: 20, Seed: 1,
	})
	untrained := NewLearner(udb, seedRepository(5), LearnerConfig{
		Mode: LearnOnline, Trees: 20, MinTrain: 20, Seed: 1,
	})
	known := NewLearner(udb, NewRepository(), LearnerConfig{
		Mode:       LearnOnline,
		KnownProbs: map[boolexpr.Var]float64{vars[0]: 0.9},
	})
	for name, l := range map[string]*Learner{
		"trained": trained, "untrained": untrained, "known": known,
	} {
		probs := l.ProbBatch(vars, nil)
		for i, v := range vars {
			if want := l.Prob(v); probs[i] != want {
				t.Fatalf("%s: ProbBatch[%d] = %v, Prob = %v", name, i, probs[i], want)
			}
		}
		unc := l.UncertaintyBatch(vars, nil)
		for i, v := range vars {
			if want := l.Uncertainty(v); unc[i] != want {
				t.Fatalf("%s: UncertaintyBatch[%d] = %v, Uncertainty = %v", name, i, unc[i], want)
			}
		}
	}
}

// TestLearnerConcurrentReadsDuringRetrain hammers Prob/ProbBatch/
// UncertaintyBatch from reader goroutines while the main goroutine keeps
// observing answers (each one an online retrain). Run under -race this
// verifies the snapshot discipline: readers never see a model mid-update.
func TestLearnerConcurrentReadsDuringRetrain(t *testing.T) {
	udb, res := syntheticWorkload(t, 40, 10, 5, 3, 888)
	gt := uncertain.GenerateFixed(udb, 0.5, 889)
	vars := res.UniqueVars()

	l := NewLearner(udb, seedRepository(25), LearnerConfig{
		Mode: LearnOnline, Trees: 15, MinTrain: 20, Seed: 2,
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var probs, unc []float64
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r % 3 {
				case 0:
					for _, v := range vars {
						if p := l.Prob(v); p < 0 || p > 1 {
							t.Errorf("Prob out of range: %v", p)
							return
						}
					}
				case 1:
					probs = l.ProbBatch(vars, probs)
				default:
					unc = l.UncertaintyBatch(vars, unc)
				}
			}
		}(r)
	}
	for _, v := range vars {
		ans, _ := gt.Val.Get(v)
		l.Observe(v, ans)
	}
	close(stop)
	wg.Wait()
}

package resolve

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"qres/internal/boolexpr"
)

// rescoreParallelMin is the number of variables below which the rescore
// runs serially: goroutine fan-out costs more than a few hundred float
// operations.
const rescoreParallelMin = 64

// scoreStats reports one scoring call's cache behaviour: how many
// candidate variables were actually rescored (cache misses) and how many
// kept their cached score.
type scoreStats struct {
	rescored int
	hits     int
	misses   int
}

// incState is the per-session incremental scoring state: caches of
// probability estimates and per-variable utility aggregates that survive
// across probe-selection rounds and are reconciled against probe deltas
// instead of being rebuilt. All caches key on two invariants:
//
//   - Learner.Prob is a pure function of the variable while the Learner's
//     Version is unchanged, so probabilities (and everything derived from
//     them) stay valid until the model retrains — at which point every
//     cache is dropped wholesale. EP, KnownProbs and offline learners keep
//     one version for the whole session; online learning retrains per
//     probe, degrading gracefully to the full recompute it is anyway
//     equivalent to.
//   - Simplification never introduces variables, so the candidate set only
//     shrinks and cache keys are maintained purely by deletions driven by
//     probeDelta.
//
// Per utility the cached aggregate is exactly the expensive part of the
// full recompute, evaluated with the same shared helpers (qvalueVarScore,
// termWeight, weightStatsSorted, ...) in the same operation order, which
// is what makes incremental scores bit-identical to the full path.
type incState struct {
	work    *workset
	learner *Learner
	workers int

	// exprIDs restricts full-scan cache builds to this expression subset (a
	// component shard); nil means the whole workset. Delta reconciliation
	// needs no restriction — the session routes each delta to the one shard
	// whose component it touches.
	exprIDs []int

	// ver is the Learner version the caches were built against; haveVer
	// distinguishes "version 0" from "never initialized".
	ver     uint64
	haveVer bool

	// probs caches Learner.Prob per candidate; probsComplete records that
	// it covers the whole candidate set, which then only shrinks (noteDelta
	// deletes exactly the variables leaving), so later rounds skip the
	// per-candidate miss scan entirely.
	probs         map[boolexpr.Var]float64
	probsComplete bool

	// qv caches the Q-Value Formula (1) score per candidate; qvDirty are
	// the variables whose entries must be recomputed before use.
	qv      map[boolexpr.Var]float64
	qvDirty map[boolexpr.Var]bool

	// tc caches the undecided-term occurrence count per variable (the sum
	// of the General utility's Formula (3)); tcDirty as above. Counts are
	// integers, so incremental maintenance is exact by construction.
	tc      map[boolexpr.Var]int
	tcDirty map[boolexpr.Var]bool

	// ro caches the Formula (2) term-weight structures.
	ro *roCache
}

// roCache is the incremental state of Formula (2): per-expression term
// weights, the global sorted weight multiset sizing α, and each variable's
// best (maximum) containing-term weight.
type roCache struct {
	// weights maps an undecided expression index to its per-term weights,
	// aligned with Expr.Terms().
	weights map[int][]float64
	// sorted is the ascending multiset of every undecided term's weight —
	// the input of weightStatsSorted, maintained by binary-search
	// insertion and removal instead of a full re-sort.
	sorted []float64
	// bestW is each candidate's maximum containing-term weight.
	bestW map[boolexpr.Var]float64

	dirtyExprs map[int]bool
	dirtyVars  map[boolexpr.Var]bool
}

// newIncState builds the incremental scoring state for a session or one
// component shard of it. workers bounds rescore parallelism; <= 0 defaults
// to GOMAXPROCS. exprIDs scopes full-scan cache builds to that expression
// subset; nil covers the whole workset.
func newIncState(work *workset, learner *Learner, workers int, exprIDs []int) *incState {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &incState{work: work, learner: learner, workers: workers, exprIDs: exprIDs}
}

// eachUndecided visits the undecided expressions in scope — the exprIDs
// subset if set, otherwise the whole workset — in ascending index order.
func (inc *incState) eachUndecided(fn func(i int, e boolexpr.Expr)) {
	if inc.exprIDs != nil {
		for _, i := range inc.exprIDs {
			if e := inc.work.exprs[i]; !e.Decided() {
				fn(i, e)
			}
		}
		return
	}
	for i, e := range inc.work.exprs {
		if !e.Decided() {
			fn(i, e)
		}
	}
}

// noteDelta reconciles the cache key sets against one probe delta, eagerly:
// the probed and dropped variables leave every cache, variables whose
// surroundings changed are marked dirty, and touched expressions are queued
// for weight refresh. Value recomputation is deferred to the next scoring
// call (lazily, so several deltas between scoring rounds — e.g. a burst of
// repository-known answers — coalesce into one reconcile pass).
func (inc *incState) noteDelta(d *probeDelta) {
	if inc == nil {
		return
	}
	gone := func(v boolexpr.Var) {
		delete(inc.probs, v)
		delete(inc.qv, v)
		delete(inc.qvDirty, v)
		delete(inc.tc, v)
		delete(inc.tcDirty, v)
		if inc.ro != nil {
			delete(inc.ro.bestW, v)
			delete(inc.ro.dirtyVars, v)
		}
	}
	for _, u := range d.affected {
		if inc.qv != nil {
			inc.qvDirty[u] = true
		}
		if inc.tc != nil {
			inc.tcDirty[u] = true
		}
		if inc.ro != nil {
			inc.ro.dirtyVars[u] = true
		}
	}
	if inc.ro != nil {
		for _, i := range d.touched {
			inc.ro.dirtyExprs[i] = true
		}
	}
	gone(d.probed)
	for _, u := range d.dropped {
		gone(u)
	}
}

// ensureVersion drops every cache when the Learner's model has moved since
// they were built. While the version is unchanged the caches stay valid,
// because Prob is then a pure function of the variable.
func (inc *incState) ensureVersion() {
	v := inc.learner.Version()
	if inc.haveVer && v == inc.ver {
		return
	}
	inc.ver, inc.haveVer = v, true
	inc.probs, inc.probsComplete = nil, false
	inc.qv, inc.qvDirty = nil, nil
	inc.tc, inc.tcDirty = nil, nil
	inc.ro = nil
}

// candidateProbs returns the Learner's probability estimates for the
// candidates, serving unchanged variables from the cache. The returned map
// is the cache itself; callers must treat it as read-only for the round.
func (inc *incState) candidateProbs(candidates []boolexpr.Var) (probs map[boolexpr.Var]float64, hits, misses int) {
	inc.ensureVersion()
	if inc.probsComplete {
		return inc.probs, len(candidates), 0
	}
	inc.probs = make(map[boolexpr.Var]float64, len(candidates))
	vals := make([]float64, len(candidates))
	// Chunked batch prediction: each worker serves a contiguous candidate
	// range through ProbBatch (one model snapshot, batched forest
	// traversal), writing positionally into vals. The floats equal per-call
	// Prob exactly, for any worker count.
	inc.parallelChunks(len(candidates), func(lo, hi int) {
		inc.learner.ProbBatch(candidates[lo:hi], vals[lo:hi])
	})
	for i, v := range candidates {
		inc.probs[v] = vals[i]
	}
	inc.probsComplete = true
	return inc.probs, 0, len(candidates)
}

// scores reconciles the round's utility caches and returns a score lookup
// for the selector. Returning a function instead of materializing a map
// keeps the steady-state round free of O(candidates) map construction: the
// selector evaluates each candidate once, with the exact floats the full
// recompute would put in its map. ok is false for utilities the cache does
// not understand; the caller then falls back to the full Utility.Scores
// path.
func (inc *incState) scores(util Utility, candidates []boolexpr.Var, probs map[boolexpr.Var]float64, round int) (func(boolexpr.Var) float64, scoreStats, bool) {
	switch util.(type) {
	case QValue:
		fn, st := inc.qvalueScores(candidates, probs)
		return fn, st, true
	case RO:
		fn, st := inc.roScores(candidates, probs)
		return fn, st, true
	case General:
		if round%2 == 1 {
			fn, st := inc.roScores(candidates, probs)
			return fn, st, true
		}
		fn, st := inc.generalFalseScores(candidates, probs)
		return fn, st, true
	default:
		return nil, scoreStats{}, false
	}
}

// qvalueScores maintains the per-variable Formula (1) cache: dirty
// variables are rescored (in parallel) with the same qvalueVarScore the
// full path uses; everything else keeps its cached score.
func (inc *incState) qvalueScores(candidates []boolexpr.Var, probs map[boolexpr.Var]float64) (func(boolexpr.Var) float64, scoreStats) {
	var st scoreStats
	if inc.qv == nil {
		inc.qv = make(map[boolexpr.Var]float64, len(candidates))
		inc.qvDirty = make(map[boolexpr.Var]bool)
		inc.rescoreInto(candidates, func(v boolexpr.Var) float64 {
			return qvalueVarScore(inc.work, v, probs[v])
		}, inc.qv)
		st.rescored, st.misses = len(candidates), len(candidates)
	} else if len(inc.qvDirty) > 0 {
		dirty := sortedVarSet(inc.qvDirty)
		inc.rescoreInto(dirty, func(v boolexpr.Var) float64 {
			return qvalueVarScore(inc.work, v, probs[v])
		}, inc.qv)
		st.rescored, st.misses = len(dirty), len(dirty)
		inc.qvDirty = make(map[boolexpr.Var]bool)
	}
	st.hits = len(candidates) - st.misses
	qv := inc.qv
	return func(v boolexpr.Var) float64 { return qv[v] }, st
}

// generalFalseScores maintains the Formula (3) term-occurrence cache and
// derives the round's scores from it. The occurrence counts are exact
// integers, so the delta-maintained counts match the full scan bit for bit.
func (inc *incState) generalFalseScores(candidates []boolexpr.Var, probs map[boolexpr.Var]float64) (func(boolexpr.Var) float64, scoreStats) {
	var st scoreStats
	if inc.tc == nil {
		inc.tc = make(map[boolexpr.Var]int, len(candidates))
		inc.tcDirty = make(map[boolexpr.Var]bool)
		inc.eachUndecided(func(_ int, e boolexpr.Expr) {
			for _, t := range e.Terms() {
				for _, x := range t {
					inc.tc[x]++
				}
			}
		})
		st.rescored, st.misses = len(candidates), len(candidates)
	} else if len(inc.tcDirty) > 0 {
		dirty := sortedVarSet(inc.tcDirty)
		counts := make([]int, len(dirty))
		inc.parallelFill(len(dirty), func(i int) {
			counts[i] = termOccurrences(inc.work, dirty[i])
		})
		for i, v := range dirty {
			inc.tc[v] = counts[i]
		}
		st.rescored, st.misses = len(dirty), len(dirty)
		inc.tcDirty = make(map[boolexpr.Var]bool)
	}
	st.hits = len(candidates) - st.misses
	tc := inc.tc
	return func(v boolexpr.Var) float64 { return generalFalseScore(probs[v], tc[v]) }, st
}

// roScores maintains the Formula (2) caches and derives the round's score
// function from them: reconcile the weight structures, size α from the
// maintained multiset with the same weightStatsSorted the full path sorts
// into, and combine. Component shards call the two halves — roReconcile
// and roScoreFn — separately, because their α must come from the k-way
// merge of every shard's multiset rather than one shard's own.
func (inc *incState) roScores(candidates []boolexpr.Var, probs map[boolexpr.Var]float64) (func(boolexpr.Var) float64, scoreStats) {
	st := inc.roReconcile(candidates, probs)
	minW, gap := weightStatsSorted(inc.ro.sorted)
	return inc.roScoreFn(probs, roAlphaFromStats(minW, gap)), st
}

// roReconcile maintains the Formula (2) caches: touched expressions refresh
// their term weights in the sorted multiset, dirty variables recompute
// their best containing-term weight.
func (inc *incState) roReconcile(candidates []boolexpr.Var, probs map[boolexpr.Var]float64) scoreStats {
	inc.ensureVersion()
	prob := func(v boolexpr.Var) float64 { return probs[v] }
	var st scoreStats
	if inc.ro == nil {
		c := &roCache{
			weights:    make(map[int][]float64),
			bestW:      make(map[boolexpr.Var]float64, len(candidates)),
			dirtyExprs: make(map[int]bool),
			dirtyVars:  make(map[boolexpr.Var]bool),
		}
		inc.eachUndecided(func(i int, e boolexpr.Expr) {
			terms := e.Terms()
			ws := make([]float64, len(terms))
			for ti, t := range terms {
				w := termWeight(t, prob)
				ws[ti] = w
				for _, x := range t {
					if w > c.bestW[x] {
						c.bestW[x] = w
					}
				}
			}
			c.weights[i] = ws
			c.sorted = append(c.sorted, ws...)
		})
		sort.Float64s(c.sorted)
		inc.ro = c
		st.rescored, st.misses = len(candidates), len(candidates)
	} else {
		c := inc.ro
		if len(c.dirtyExprs) > 0 {
			for i := range c.dirtyExprs {
				for _, w := range c.weights[i] {
					c.sorted = removeSortedFloat(c.sorted, w)
				}
				delete(c.weights, i)
				e := inc.work.exprs[i]
				if e.Decided() {
					continue
				}
				terms := e.Terms()
				ws := make([]float64, len(terms))
				for ti, t := range terms {
					ws[ti] = termWeight(t, prob)
					c.sorted = insertSortedFloat(c.sorted, ws[ti])
				}
				c.weights[i] = ws
			}
			c.dirtyExprs = make(map[int]bool)
		}
		if len(c.dirtyVars) > 0 {
			dirty := sortedVarSet(c.dirtyVars)
			best := make([]float64, len(dirty))
			inc.parallelFill(len(dirty), func(i int) {
				v := dirty[i]
				var b float64
				for _, ei := range inc.work.exprsWith(v) {
					ws := c.weights[ei]
					for ti, t := range inc.work.exprs[ei].Terms() {
						if t.Contains(v) && ws[ti] > b {
							b = ws[ti]
						}
					}
				}
				best[i] = b
			})
			for i, v := range dirty {
				c.bestW[v] = best[i]
			}
			st.rescored, st.misses = len(dirty), len(dirty)
			c.dirtyVars = make(map[boolexpr.Var]bool)
		}
	}
	st.hits = len(candidates) - st.misses
	return st
}

// roScoreFn is Formula (2)'s final combine, (1−π̃) + α·(W+ε), over the
// reconciled best-weight cache. α arrives as an argument so shards can
// share the globally derived value.
func (inc *incState) roScoreFn(probs map[boolexpr.Var]float64, alpha float64) func(boolexpr.Var) float64 {
	bestW := inc.ro.bestW
	return func(v boolexpr.Var) float64 { return roVarScore(probs[v], bestW[v], alpha) }
}

// rescoreInto computes fn for every variable (in parallel past the
// threshold) and writes the results into dst. Results land positionally in
// a slice first, so scheduling order never affects the outcome: the rescore
// is deterministic for any worker count.
func (inc *incState) rescoreInto(vars []boolexpr.Var, fn func(boolexpr.Var) float64, dst map[boolexpr.Var]float64) {
	vals := make([]float64, len(vars))
	inc.parallelFill(len(vars), func(i int) {
		vals[i] = fn(vars[i])
	})
	for i, v := range vars {
		dst[v] = vals[i]
	}
}

// parallelFill invokes fn(i) for i in [0, n), fanning out across the
// configured workers when n crosses the parallelism threshold. fn must
// write only to position i of its output, keeping the fill deterministic.
func (inc *incState) parallelFill(n int, fn func(i int)) {
	workers := inc.workers
	if workers > n {
		workers = n
	}
	if n < rescoreParallelMin || workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// parallelChunks invokes fn(lo, hi) over a partition of [0, n) into one
// contiguous chunk per worker, serially below the parallelism threshold.
// fn must write only into its own [lo, hi) range of any shared output, so
// the fill is deterministic for any worker count.
func (inc *incState) parallelChunks(n int, fn func(lo, hi int)) {
	workers := inc.workers
	if workers > n {
		workers = n
	}
	if n < rescoreParallelMin || workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// sortedVarSet returns the set's variables in ascending order.
func sortedVarSet(set map[boolexpr.Var]bool) []boolexpr.Var {
	out := make([]boolexpr.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// insertSortedFloat inserts x into the ascending slice by binary search.
func insertSortedFloat(xs []float64, x float64) []float64 {
	i := sort.SearchFloat64s(xs, x)
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = x
	return xs
}

// removeSortedFloat removes one occurrence of x from the ascending slice.
// x is always present: the multiset holds exactly the weights previously
// inserted for live expressions, and term weights are recomputed with the
// same bit-identical termWeight that produced them.
func removeSortedFloat(xs []float64, x float64) []float64 {
	i := sort.SearchFloat64s(xs, x)
	return append(xs[:i], xs[i+1:]...)
}

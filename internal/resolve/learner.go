package resolve

import (
	"sync"
	"time"

	"qres/internal/boolexpr"
	"qres/internal/learn"
	"qres/internal/obs"
	"qres/internal/uncertain"
)

// LearningMode selects how (and whether) probe-answer probabilities are
// learned, matching the configurations compared in the paper's Section 7:
// EP never learns and returns 0.5 for every variable; Offline trains once
// on the initial repository; Online retrains after every probe answer and
// additionally scores candidates with LAL.
type LearningMode uint8

// Learning modes.
const (
	LearnEP LearningMode = iota
	LearnOffline
	LearnOnline
)

// String names the mode as in the paper's figures.
func (m LearningMode) String() string {
	switch m {
	case LearnEP:
		return "EP"
	case LearnOffline:
		return "Offline"
	case LearnOnline:
		return "LAL"
	default:
		return "Learning(?)"
	}
}

// ModelKind selects the Learner's classifier.
type ModelKind uint8

// Classifier choices: random forest (the paper's default) and naive Bayes
// (its comparison model).
const (
	ModelRF ModelKind = iota
	ModelNB
)

// String names the model.
func (m ModelKind) String() string {
	if m == ModelNB {
		return "NB"
	}
	return "RF"
}

// probModel is the minimal classifier interface the Learner needs.
type probModel interface {
	ProbTrue(x []int32) float64
}

// featureCache memoizes per-variable encoded feature vectors. A cache is
// valid only for the encoder it was built under, so the Learner swaps in a
// fresh one whenever the encoder epoch moves; while the epoch is stable
// (the common case — online retraining almost never grows the
// attribute/value universe), Prob and Uncertainty stop paying an
// enc.Encode per candidate per round. The internal lock makes concurrent
// lookups from the parallel rescore fan-out safe; double insertion of the
// same variable is harmless because encoding is deterministic.
type featureCache struct {
	mu sync.RWMutex
	m  map[boolexpr.Var][]int32
}

func newFeatureCache() *featureCache {
	return &featureCache{m: make(map[boolexpr.Var][]int32)}
}

func (c *featureCache) get(v boolexpr.Var) ([]int32, bool) {
	c.mu.RLock()
	x, ok := c.m[v]
	c.mu.RUnlock()
	return x, ok
}

func (c *featureCache) put(v boolexpr.Var, x []int32) {
	c.mu.Lock()
	c.m[v] = x
	c.mu.Unlock()
}

// Learner is the framework's Learner module (paper Section 4, Figure 3):
// it trains a classifier on the Known Probes Repository to predict probe
// answers from tuple metadata, exposes vote-fraction probability estimates
// for candidate probes, and (in online mode) LAL-based estimates of the
// uncertainty reduction each probe would yield.
//
// Retraining is warm-started: the encoder is reused while the repository's
// attribute/value universe hasn't grown (Encoder.Covers), the encoded
// feature matrix is append-only and fed by a repository watermark (only
// records appended since the last retrain are encoded), and per-variable
// feature vectors are cached per encoder epoch. The resulting models are
// bit-identical to a cold rebuild — reused encoders are provably equal to
// what NewEncoder would reproduce — which the equivalence tests assert.
//
// A Learner is safe for concurrent use: probability and uncertainty reads
// may run in parallel with a retraining Observe. Readers snapshot the
// published (encoder, classifier) pair under a read lock and traverse the
// immutable model outside it.
type Learner struct {
	mode           LearningMode
	model          ModelKind
	db             *uncertain.DB
	repo           *Repository
	lal            *learn.LAL
	trees          int
	minTrain       int
	seed           int64
	forestWorkers  int
	fullRetrain    bool
	knownProbs     map[boolexpr.Var]float64
	obs            *obs.Obs
	stallThreshold time.Duration

	mu       sync.RWMutex
	enc      *learn.Encoder
	encEpoch uint64
	xc       *featureCache
	data     *learn.Dataset // append-only encoded training matrix
	encoded  int            // repository watermark: records encoded into data
	clf      probModel
	forest   *learn.Forest // non-nil iff model == ModelRF and trained
	retrains int
	version  uint64
}

// LearnerConfig bundles Learner construction parameters.
type LearnerConfig struct {
	Mode  LearningMode
	Model ModelKind
	// Trees is the forest size (default 100, as in the paper).
	Trees int
	// MinTrain is the repository size below which the Learner falls back
	// to equal probabilities (the paper uses 20: "we use EP to select
	// probes until the probes repository is of size at least 20").
	MinTrain int
	// ForestWorkers bounds forest-training parallelism (0 = one worker
	// per CPU, 1 = serial). Models are bit-identical for any value.
	ForestWorkers int
	// FullRetrain disables the warm-started retrain path: every
	// (re)training pass rebuilds the encoder and re-encodes the whole
	// repository, as the pre-warm-start implementation did. Models are
	// identical either way; the switch exists for benchmarking the
	// speedup and as an escape hatch.
	FullRetrain bool
	// LAL scores uncertainty reduction in online mode; nil disables it
	// (scores become 0 and the selector degenerates to utility-only).
	LAL *learn.LAL
	// Seed makes retraining deterministic.
	Seed int64
	// KnownProbs, when non-nil, bypasses learning entirely: Prob returns
	// the mapped value (0.5 for unmapped variables) and Uncertainty is 0.
	// It models the "probabilities known and independent" setting of the
	// paper's Section 3 analysis and the experiments that isolate utility
	// computation from learning (Sections 7.2–7.3).
	KnownProbs map[boolexpr.Var]float64
	// Obs, when non-nil, receives a span event per (re)training pass.
	Obs *obs.Obs
	// StallThreshold flags online retrains that stall the answer path:
	// when an Observe-triggered retrain takes at least this long, the
	// "retrain_stalls_total" counter is incremented (0 disables). Only
	// answer-path retrains count; the constructor's initial fit does not.
	StallThreshold time.Duration
}

// NewLearner builds a Learner over the repository. In Offline and Online
// modes the classifier is trained immediately from the current repository
// contents.
func NewLearner(db *uncertain.DB, repo *Repository, cfg LearnerConfig) *Learner {
	if cfg.Trees <= 0 {
		cfg.Trees = 100
	}
	if cfg.MinTrain <= 0 {
		cfg.MinTrain = 20
	}
	l := &Learner{
		mode:           cfg.Mode,
		model:          cfg.Model,
		db:             db,
		repo:           repo,
		lal:            cfg.LAL,
		trees:          cfg.Trees,
		minTrain:       cfg.MinTrain,
		seed:           cfg.Seed,
		forestWorkers:  cfg.ForestWorkers,
		fullRetrain:    cfg.FullRetrain,
		knownProbs:     cfg.KnownProbs,
		obs:            cfg.Obs,
		stallThreshold: cfg.StallThreshold,
		xc:             newFeatureCache(),
	}
	if l.mode != LearnEP && l.knownProbs == nil {
		l.obs.Gauge("forest_workers", float64(learn.EffectiveWorkers(cfg.ForestWorkers)))
		l.mu.Lock()
		l.retrainLocked()
		l.mu.Unlock()
	}
	return l
}

// Mode returns the learning mode.
func (l *Learner) Mode() LearningMode { return l.mode }

// Retrains returns how many times the classifier has been (re)trained.
func (l *Learner) Retrains() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.retrains
}

// Version identifies the current probability model: it starts at 0 and is
// bumped by every successful (re)training pass. While the version is
// unchanged, Prob is a pure function of the variable — EP, KnownProbs and
// offline learners keep one version for the whole session — which is what
// lets the incremental hot path cache probabilities and utility scores
// across rounds and invalidate them exactly when the model moves.
func (l *Learner) Version() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.version
}

// Trained reports whether a classifier is currently available (enough
// training data has been seen).
func (l *Learner) Trained() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.clf != nil
}

// retrainLocked refits the classifier from the repository; the caller
// holds l.mu. Below MinTrain records the Learner stays untrained (EP
// behaviour).
//
// The warm path appends: records past the encoding watermark are checked
// against the live encoder's universe, and when covered only they are
// encoded into the append-only matrix. Any new attribute or value falls
// back to the cold rebuild (fresh encoder, full re-encode, new epoch) —
// exactly what every retrain used to do unconditionally.
func (l *Learner) retrainLocked() {
	if l.repo.Len() < l.minTrain {
		return
	}
	start := time.Now()
	rowsEncoded := 0
	reused := false
	if l.enc != nil && !l.fullRetrain {
		recs := l.repo.RecordsSince(l.encoded)
		if encoderCovers(l.enc, recs) {
			for _, rec := range recs {
				l.data.Add(l.enc.Encode(rec.Meta), rec.Answer)
			}
			l.encoded += len(recs)
			rowsEncoded = len(recs)
			reused = true
		}
	}
	if !reused {
		recs := l.repo.Records()
		metas := make([]map[string]string, len(recs))
		for i := range recs {
			metas[i] = recs[i].Meta
		}
		l.enc = learn.NewEncoder(metas)
		l.encEpoch++
		l.xc = newFeatureCache()
		data := &learn.Dataset{
			X: make([][]int32, 0, len(recs)),
			Y: make([]bool, 0, len(recs)),
		}
		for _, rec := range recs {
			data.Add(l.enc.Encode(rec.Meta), rec.Answer)
		}
		l.data = data
		l.encoded = len(recs)
		rowsEncoded = len(recs)
	}
	encodeDone := time.Now()

	switch l.model {
	case ModelNB:
		l.clf = learn.FitNaiveBayes(l.data)
		l.forest = nil
	default:
		f := learn.FitForest(l.data, learn.ForestConfig{
			Trees:   l.trees,
			Seed:    l.seed + int64(l.retrains),
			Workers: l.forestWorkers,
			Obs:     l.obs,
		})
		l.clf = f
		l.forest = f
	}
	l.retrains++
	l.version++
	l.obs.Count("rows_encoded", int64(rowsEncoded))
	if reused {
		l.obs.Count("encoder_reuse", 1)
	} else {
		l.obs.Count("encoder_rebuild", 1)
	}
	l.obs.Emit(obs.StageRetrain, -1, start, time.Since(start),
		obs.Int("examples", l.data.Len()),
		obs.Str("model", l.model.String()),
		obs.Int("retrains", l.retrains),
		obs.Int("rows_encoded", rowsEncoded),
		obs.Bool("encoder_reused", reused),
		obs.F64("encode_ms", float64(encodeDone.Sub(start))/1e6),
		obs.F64("fit_ms", float64(time.Since(encodeDone))/1e6))
}

// encoderCovers reports whether every record's metadata lies inside the
// encoder's attribute/value universe.
func encoderCovers(enc *learn.Encoder, recs []ProbeRecord) bool {
	for _, rec := range recs {
		if !enc.Covers(rec.Meta) {
			return false
		}
	}
	return true
}

// snapshot returns the published model under the read lock. The returned
// encoder, classifier and cache are immutable or internally synchronized,
// so callers use them lock-free.
func (l *Learner) snapshot() (enc *learn.Encoder, clf probModel, forest *learn.Forest, xc *featureCache) {
	l.mu.RLock()
	enc, clf, forest, xc = l.enc, l.clf, l.forest, l.xc
	l.mu.RUnlock()
	return enc, clf, forest, xc
}

// encodeVar returns v's feature vector under enc, served from the
// epoch-scoped cache.
func (l *Learner) encodeVar(enc *learn.Encoder, xc *featureCache, v boolexpr.Var) []int32 {
	if x, ok := xc.get(v); ok {
		return x
	}
	x := enc.Encode(l.db.MetaFor(v))
	xc.put(v, x)
	return x
}

// Prob estimates π̃(x): the probability the oracle would answer True for
// the tuple labeled by v. Untrained learners (EP mode, or too little data)
// return the uninformed 0.5.
func (l *Learner) Prob(v boolexpr.Var) float64 {
	if l.knownProbs != nil {
		if p, ok := l.knownProbs[v]; ok {
			return p
		}
		return 0.5
	}
	if l.mode == LearnEP {
		return 0.5
	}
	enc, clf, _, xc := l.snapshot()
	if clf == nil {
		return 0.5
	}
	return clf.ProbTrue(l.encodeVar(enc, xc, v))
}

// ProbBatch estimates Prob for every variable in vars, writing into out
// (reused when it has capacity). One model snapshot serves the whole
// batch, feature vectors come from the epoch-scoped cache, and forest
// classifiers predict through the allocation-free batch traversal. The
// floats equal per-call Prob exactly, so the incremental and full scoring
// paths stay bit-identical.
func (l *Learner) ProbBatch(vars []boolexpr.Var, out []float64) []float64 {
	if cap(out) < len(vars) {
		out = make([]float64, len(vars))
	}
	out = out[:len(vars)]
	if l.knownProbs != nil {
		for i, v := range vars {
			if p, ok := l.knownProbs[v]; ok {
				out[i] = p
			} else {
				out[i] = 0.5
			}
		}
		return out
	}
	if l.mode == LearnEP {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	enc, clf, _, xc := l.snapshot()
	if clf == nil {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	xs := make([][]int32, len(vars))
	for i, v := range vars {
		xs[i] = l.encodeVar(enc, xc, v)
	}
	if f, ok := clf.(*learn.Forest); ok {
		f.ProbTrueBatch(xs, out)
		return out
	}
	for i, x := range xs {
		out[i] = clf.ProbTrue(x)
	}
	return out
}

// Uncertainty estimates the expected reduction in the Learner's
// generalization error from probing v (Sub-step 4.1's second output).
// It is zero outside online mode, when no LAL regressor is configured, or
// while the classifier is untrained — in all of which cases the Probe
// Selector effectively ranks by utility alone.
func (l *Learner) Uncertainty(v boolexpr.Var) float64 {
	if l.knownProbs != nil || l.mode != LearnOnline || l.lal == nil {
		return 0
	}
	enc, _, forest, xc := l.snapshot()
	if forest == nil {
		return 0
	}
	x := l.encodeVar(enc, xc, v)
	return l.lal.Score(forest, l.repo.Len(), l.repo.PositiveFraction(), x)
}

// UncertaintyBatch estimates Uncertainty for every variable in vars,
// writing into out (reused when it has capacity). The repository size and
// class prior are snapshotted once per batch and the LAL regressor runs
// its batched forest traversals, removing the per-candidate allocations
// and repository lock round-trips of the scalar path.
func (l *Learner) UncertaintyBatch(vars []boolexpr.Var, out []float64) []float64 {
	if cap(out) < len(vars) {
		out = make([]float64, len(vars))
	}
	out = out[:len(vars)]
	if l.knownProbs != nil || l.mode != LearnOnline || l.lal == nil {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	enc, _, forest, xc := l.snapshot()
	if forest == nil {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	trainSize, posFrac := l.repo.Len(), l.repo.PositiveFraction()
	xs := make([][]int32, len(vars))
	for i, v := range vars {
		xs[i] = l.encodeVar(enc, xc, v)
	}
	l.lal.ScoreBatch(forest, trainSize, posFrac, xs, out)
	return out
}

// Observe records a probe answer in the repository and, in online mode,
// retrains the classifier — the paper's Step 5 followed by the iterative
// return to Step 3. The retrain runs on the answer path, so retrains at
// or above the configured stall threshold are counted as stalls.
func (l *Learner) Observe(v boolexpr.Var, answer bool) {
	l.repo.AddVar(v, l.db.MetaFor(v), answer)
	if l.mode == LearnOnline && l.knownProbs == nil {
		start := time.Now()
		l.mu.Lock()
		l.retrainLocked()
		l.mu.Unlock()
		if l.stallThreshold > 0 && time.Since(start) >= l.stallThreshold {
			l.obs.Count("retrain_stalls_total", 1)
		}
	}
}

// FeatureImportances exposes the trained forest's mean-decrease-in-
// impurity importances keyed by attribute name (Section 7.4's analysis),
// or nil when unavailable.
func (l *Learner) FeatureImportances() map[string]float64 {
	l.mu.RLock()
	forest, enc := l.forest, l.enc
	l.mu.RUnlock()
	if forest == nil || enc == nil {
		return nil
	}
	imp := forest.FeatureImportances()
	out := make(map[string]float64, len(imp))
	for i, v := range imp {
		out[enc.Attr(i)] = v
	}
	return out
}

package resolve

import (
	"time"

	"qres/internal/boolexpr"
	"qres/internal/learn"
	"qres/internal/obs"
	"qres/internal/uncertain"
)

// LearningMode selects how (and whether) probe-answer probabilities are
// learned, matching the configurations compared in the paper's Section 7:
// EP never learns and returns 0.5 for every variable; Offline trains once
// on the initial repository; Online retrains after every probe answer and
// additionally scores candidates with LAL.
type LearningMode uint8

// Learning modes.
const (
	LearnEP LearningMode = iota
	LearnOffline
	LearnOnline
)

// String names the mode as in the paper's figures.
func (m LearningMode) String() string {
	switch m {
	case LearnEP:
		return "EP"
	case LearnOffline:
		return "Offline"
	case LearnOnline:
		return "LAL"
	default:
		return "Learning(?)"
	}
}

// ModelKind selects the Learner's classifier.
type ModelKind uint8

// Classifier choices: random forest (the paper's default) and naive Bayes
// (its comparison model).
const (
	ModelRF ModelKind = iota
	ModelNB
)

// String names the model.
func (m ModelKind) String() string {
	if m == ModelNB {
		return "NB"
	}
	return "RF"
}

// probModel is the minimal classifier interface the Learner needs.
type probModel interface {
	ProbTrue(x []int32) float64
}

// Learner is the framework's Learner module (paper Section 4, Figure 3):
// it trains a classifier on the Known Probes Repository to predict probe
// answers from tuple metadata, exposes vote-fraction probability estimates
// for candidate probes, and (in online mode) LAL-based estimates of the
// uncertainty reduction each probe would yield.
type Learner struct {
	mode     LearningMode
	model    ModelKind
	db       *uncertain.DB
	repo     *Repository
	lal      *learn.LAL
	trees    int
	minTrain int
	seed     int64

	enc        *learn.Encoder
	clf        probModel
	forest     *learn.Forest // non-nil iff model == ModelRF and trained
	retrains   int
	version    uint64
	knownProbs map[boolexpr.Var]float64
	obs        *obs.Obs
}

// LearnerConfig bundles Learner construction parameters.
type LearnerConfig struct {
	Mode  LearningMode
	Model ModelKind
	// Trees is the forest size (default 100, as in the paper).
	Trees int
	// MinTrain is the repository size below which the Learner falls back
	// to equal probabilities (the paper uses 20: "we use EP to select
	// probes until the probes repository is of size at least 20").
	MinTrain int
	// LAL scores uncertainty reduction in online mode; nil disables it
	// (scores become 0 and the selector degenerates to utility-only).
	LAL *learn.LAL
	// Seed makes retraining deterministic.
	Seed int64
	// KnownProbs, when non-nil, bypasses learning entirely: Prob returns
	// the mapped value (0.5 for unmapped variables) and Uncertainty is 0.
	// It models the "probabilities known and independent" setting of the
	// paper's Section 3 analysis and the experiments that isolate utility
	// computation from learning (Sections 7.2–7.3).
	KnownProbs map[boolexpr.Var]float64
	// Obs, when non-nil, receives a span event per (re)training pass.
	Obs *obs.Obs
}

// NewLearner builds a Learner over the repository. In Offline and Online
// modes the classifier is trained immediately from the current repository
// contents.
func NewLearner(db *uncertain.DB, repo *Repository, cfg LearnerConfig) *Learner {
	if cfg.Trees <= 0 {
		cfg.Trees = 100
	}
	if cfg.MinTrain <= 0 {
		cfg.MinTrain = 20
	}
	l := &Learner{
		mode:       cfg.Mode,
		model:      cfg.Model,
		db:         db,
		repo:       repo,
		lal:        cfg.LAL,
		trees:      cfg.Trees,
		minTrain:   cfg.MinTrain,
		seed:       cfg.Seed,
		knownProbs: cfg.KnownProbs,
		obs:        cfg.Obs,
	}
	if l.mode != LearnEP && l.knownProbs == nil {
		l.retrain()
	}
	return l
}

// Mode returns the learning mode.
func (l *Learner) Mode() LearningMode { return l.mode }

// Retrains returns how many times the classifier has been (re)trained.
func (l *Learner) Retrains() int { return l.retrains }

// Version identifies the current probability model: it starts at 0 and is
// bumped by every successful (re)training pass. While the version is
// unchanged, Prob is a pure function of the variable — EP, KnownProbs and
// offline learners keep one version for the whole session — which is what
// lets the incremental hot path cache probabilities and utility scores
// across rounds and invalidate them exactly when the model moves.
func (l *Learner) Version() uint64 { return l.version }

// Trained reports whether a classifier is currently available (enough
// training data has been seen).
func (l *Learner) Trained() bool { return l.clf != nil }

// retrain refits the encoder and classifier from the repository. Below
// MinTrain records the Learner stays untrained (EP behaviour).
func (l *Learner) retrain() {
	if l.repo.Len() < l.minTrain {
		return
	}
	start := time.Now()
	l.enc = learn.NewEncoder(l.repo.Metas())
	data := l.repo.Dataset(l.enc)
	switch l.model {
	case ModelNB:
		l.clf = learn.FitNaiveBayes(data)
		l.forest = nil
	default:
		f := learn.FitForest(data, learn.ForestConfig{
			Trees: l.trees, Seed: l.seed + int64(l.retrains), Obs: l.obs,
		})
		l.clf = f
		l.forest = f
	}
	l.retrains++
	l.version++
	l.obs.Emit(obs.StageRetrain, -1, start, time.Since(start),
		obs.Int("examples", l.repo.Len()),
		obs.Str("model", l.model.String()),
		obs.Int("retrains", l.retrains))
}

// Prob estimates π̃(x): the probability the oracle would answer True for
// the tuple labeled by v. Untrained learners (EP mode, or too little data)
// return the uninformed 0.5.
func (l *Learner) Prob(v boolexpr.Var) float64 {
	if l.knownProbs != nil {
		if p, ok := l.knownProbs[v]; ok {
			return p
		}
		return 0.5
	}
	if l.mode == LearnEP || l.clf == nil {
		return 0.5
	}
	return l.clf.ProbTrue(l.enc.Encode(l.db.MetaFor(v)))
}

// Uncertainty estimates the expected reduction in the Learner's
// generalization error from probing v (Sub-step 4.1's second output).
// It is zero outside online mode, when no LAL regressor is configured, or
// while the classifier is untrained — in all of which cases the Probe
// Selector effectively ranks by utility alone.
func (l *Learner) Uncertainty(v boolexpr.Var) float64 {
	if l.knownProbs != nil || l.mode != LearnOnline || l.lal == nil || l.forest == nil {
		return 0
	}
	x := l.enc.Encode(l.db.MetaFor(v))
	return l.lal.Score(l.forest, l.repo.Len(), l.repo.PositiveFraction(), x)
}

// Observe records a probe answer in the repository and, in online mode,
// retrains the classifier — the paper's Step 5 followed by the iterative
// return to Step 3.
func (l *Learner) Observe(v boolexpr.Var, answer bool) {
	l.repo.AddVar(v, l.db.MetaFor(v), answer)
	if l.mode == LearnOnline && l.knownProbs == nil {
		l.retrain()
	}
}

// FeatureImportances exposes the trained forest's mean-decrease-in-
// impurity importances keyed by attribute name (Section 7.4's analysis),
// or nil when unavailable.
func (l *Learner) FeatureImportances() map[string]float64 {
	if l.forest == nil || l.enc == nil {
		return nil
	}
	imp := l.forest.FeatureImportances()
	out := make(map[string]float64, len(imp))
	for i, v := range imp {
		out[l.enc.Attr(i)] = v
	}
	return out
}

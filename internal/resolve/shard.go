package resolve

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"qres/internal/boolexpr"
	"qres/internal/obs"
)

// Component-sharded probe selection. The workset's connected components
// share no variables (paper Section 6), so each one is scored by its own
// shard — a per-component candidate list, incremental score cache and
// cached winner — and the Probe Selector merges the per-shard argmaxes
// under the global policy (highest combined score, ties to the smallest
// variable). The merge is exact: the monolithic selector scans all
// candidates ascending and keeps the first maximum, i.e. the smallest
// variable of the global argmax set; that variable lives in some shard,
// where it is also the shard winner, so merging shard winners by
// (score desc, variable asc) returns exactly it. Probe choices are
// therefore bit-identical to the unsharded path for any shard-worker
// count, while wall-clock per round drops to the dirty shards' work: a
// probe delta touches exactly one component, every other shard's caches —
// and, between retrains, its winner — stay valid.

// shard is one connected component's share of probe selection.
type shard struct {
	id int
	// exprIDs are the component's expression indices into the session
	// workset, ascending.
	exprIDs []int
	// cands is the shard's ascending candidate list, maintained by probe
	// deltas exactly like the workset's global list.
	cands []boolexpr.Var
	// inc is the shard's incremental score cache, scoped to exprIDs.
	inc *incState
	// winners caches the shard's argmax per score kind. A slot is exact
	// while the shard receives no delta and the Learner does not retrain;
	// selection then skips the shard's scoring entirely.
	winners [numScoreKinds]shardWinner
	// lalBuf is the shard's reused uncertainty-score buffer.
	lalBuf []float64

	// probs/probStats/score/unc are the in-flight state of the current
	// selection round, written only by the goroutine scoring this shard.
	probs              map[boolexpr.Var]float64
	probHits, probMiss int
	scoreStat          scoreStats
	score              func(boolexpr.Var) float64
	unc                []float64
}

// shardWinner is a cached per-shard argmax: the winning variable and its
// combined selector score, tagged with the Learner version it was scored
// under.
type shardWinner struct {
	v     boolexpr.Var
	f     float64
	ver   uint64
	valid bool
}

// scoreKind names the score family a utility uses in a given round; the
// winner cache is keyed on it because the General utility alternates
// families between rounds.
type scoreKind uint8

const (
	kindQValue scoreKind = iota
	kindRO
	kindGeneralFalse
	numScoreKinds
)

// scoreKindFor returns the family util scores with in the given round.
func scoreKindFor(util Utility, round int) (scoreKind, bool) {
	switch util.(type) {
	case QValue:
		return kindQValue, true
	case RO:
		return kindRO, true
	case General:
		if round%2 == 1 {
			return kindRO, true
		}
		return kindGeneralFalse, true
	}
	return 0, false
}

// shardingEligible reports whether this configuration can run sharded
// selection: a known utility (its score families are what the shards
// cache), the incremental path on, and a workset that actually splits.
// Baselines keep the monolithic path — Random draws from one global RNG
// stream whose consumption order must not depend on shard structure.
func (s *Session) shardingEligible(groups [][]int) bool {
	if s.cfg.DisableSharding || s.cfg.DisableIncremental || s.cfg.Baseline != BaselineNone {
		return false
	}
	if _, ok := scoreKindFor(s.cfg.Utility, 0); !ok {
		return false
	}
	return len(groups) > 1
}

// buildShards materializes one shard per component and the variable→shard
// index. Shard order follows the components' stable order (ascending
// smallest expression index), which the selector merge preserves.
func (s *Session) buildShards(groups [][]int) {
	s.shards = make([]*shard, len(groups))
	s.varShard = make(map[boolexpr.Var]int)
	for id, g := range groups {
		sh := &shard{id: id, exprIDs: g}
		for _, i := range g {
			for v := range s.work.exprVars[i] {
				if _, seen := s.varShard[v]; !seen {
					s.varShard[v] = id
					sh.cands = append(sh.cands, v)
				}
			}
		}
		sort.Slice(sh.cands, func(i, j int) bool { return sh.cands[i] < sh.cands[j] })
		sh.inc = newIncState(s.work, s.learner, s.cfg.Parallel.Rescore, g)
		s.shards[id] = sh
	}
	s.shardWorkers = s.cfg.Parallel.Shards
	if s.shardWorkers <= 0 {
		s.shardWorkers = runtime.GOMAXPROCS(0)
	}
}

// noteDelta reconciles the shard against one probe delta: the probed and
// dropped variables leave the candidate list, the incremental caches mark
// their dirty sets, and every cached winner is invalidated (the winner
// may have been one of the departing variables).
func (sh *shard) noteDelta(d *probeDelta) {
	sh.inc.noteDelta(d)
	sh.dropCand(d.probed)
	for _, u := range d.dropped {
		sh.dropCand(u)
	}
	for k := range sh.winners {
		sh.winners[k].valid = false
	}
}

// dropCand removes v from the shard's sorted candidate list, if present.
func (sh *shard) dropCand(v boolexpr.Var) {
	i := sort.Search(len(sh.cands), func(i int) bool { return sh.cands[i] >= v })
	if i < len(sh.cands) && sh.cands[i] == v {
		sh.cands = append(sh.cands[:i], sh.cands[i+1:]...)
	}
}

// nextSharded is one probe-selection round over the component shards: the
// framework sub-steps 4.1–4.3 run per shard (in parallel across up to
// Parallel.Shards workers), then the per-shard winners merge under the
// global selector policy.
func (s *Session) nextSharded(u utilityStrategy) (boolexpr.Var, error) {
	kind, _ := scoreKindFor(u.util, s.round)
	ver := s.learner.Version()
	online := s.learner.Mode() == LearnOnline

	// Partition the live shards: a shard whose cached winner is still
	// exact (no delta since it was scored, same model version, same score
	// family, and no per-round uncertainty term) skips scoring and serves
	// every candidate from cache. RO-family rounds always rescore live
	// shards — α couples every score to the global term-weight multiset,
	// so cached combined scores go stale even in clean shards. The scored
	// buffer is reused across rounds: in steady state only the probed
	// component rescans, and this loop must stay O(#shards) with no
	// per-round allocation or it erases the win over the monolithic
	// O(#candidates) scan.
	scored := s.scoredBuf[:0]
	reused, total := 0, 0
	for _, sh := range s.shards {
		if len(sh.cands) == 0 {
			continue
		}
		total += len(sh.cands)
		if w := sh.winners[kind]; kind != kindRO && !online && w.valid && w.ver == ver {
			reused++
			s.stats.ProbCacheHits += len(sh.cands)
			s.stats.ScoreCacheHits += len(sh.cands)
			continue
		}
		scored = append(scored, sh)
	}
	s.scoredBuf = scored
	s.stats.ShardRoundsReused += reused

	// Sub-step 4.1a: probability estimation per shard (Learner).
	s.component(obs.StageLearner, &s.stats.Learner, func() {
		s.forEachShard(len(scored), func(i int) {
			sh := scored[i]
			sh.probs, sh.probHits, sh.probMiss = sh.inc.candidateProbs(sh.cands)
		})
		for _, sh := range scored {
			s.stats.ProbCacheHits += sh.probHits
			s.stats.ProbCacheMisses += sh.probMiss
			s.obs.Count("prob_cache_hits", int64(sh.probHits))
			s.obs.Count("prob_cache_misses", int64(sh.probMiss))
		}
	}, obs.Int("candidates", total), obs.Int("shards", len(scored)))

	// Sub-step 4.2: utility computation per shard. RO-family rounds split
	// in two phases around the global α: every shard first reconciles its
	// weight cache (including decided shards with unreconciled removals,
	// whose stale weights would otherwise pollute the multiset), then α
	// derives from the k-way merged per-shard multisets — bit-identical to
	// the monolithic multiset, because adjacent gaps depend only on the
	// merged values — and the per-shard score closures share it.
	s.component(obs.StageUtility, &s.stats.Utility, func() {
		if kind == kindRO {
			reconcile := scored
			for _, sh := range s.shards {
				if len(sh.cands) == 0 && sh.inc.ro != nil && len(sh.inc.ro.dirtyExprs) > 0 {
					reconcile = append(reconcile, sh)
				}
			}
			s.forEachShard(len(reconcile), func(i int) {
				sh := reconcile[i]
				sh.scoreStat = sh.inc.roReconcile(sh.cands, sh.probs)
			})
			lists := make([][]float64, 0, len(s.shards))
			for _, sh := range s.shards {
				if sh.inc.ro != nil && len(sh.inc.ro.sorted) > 0 {
					lists = append(lists, sh.inc.ro.sorted)
				}
			}
			alpha := roAlphaFromStats(mergedWeightStats(lists))
			for _, sh := range scored {
				sh.score = sh.inc.roScoreFn(sh.probs, alpha)
			}
		} else {
			s.forEachShard(len(scored), func(i int) {
				sh := scored[i]
				if kind == kindQValue {
					sh.score, sh.scoreStat = sh.inc.qvalueScores(sh.cands, sh.probs)
				} else {
					sh.score, sh.scoreStat = sh.inc.generalFalseScores(sh.cands, sh.probs)
				}
			})
		}
		for _, sh := range scored {
			s.stats.VarsRescored += sh.scoreStat.rescored
			s.stats.ScoreCacheHits += sh.scoreStat.hits
			s.stats.ScoreCacheMisses += sh.scoreStat.misses
			s.obs.Count("vars_rescored", int64(sh.scoreStat.rescored))
			s.obs.Count("score_cache_hits", int64(sh.scoreStat.hits))
			s.obs.Count("score_cache_misses", int64(sh.scoreStat.misses))
		}
	}, obs.Str("utility", u.util.Name()))

	// Sub-step 4.1b: uncertainty reduction (LAL), online mode only. The
	// per-variable estimate is a pure function of the shared Learner state,
	// so per-shard batches equal one monolithic batch.
	if online {
		s.component(obs.StageLAL, &s.stats.LAL, func() {
			s.forEachShard(len(scored), func(i int) {
				sh := scored[i]
				sh.lalBuf = s.learner.UncertaintyBatch(sh.cands, sh.lalBuf)
				sh.unc = sh.lalBuf
			})
		})
	}

	// Sub-step 4.3: per-shard argmax (ascending candidates, first maximum
	// kept — the monolithic scan restricted to the shard), then the global
	// merge by (combined score desc, variable asc).
	var best boolexpr.Var
	s.component(obs.StageSelector, &s.stats.Selector, func() {
		s.forEachShard(len(scored), func(i int) {
			sh := scored[i]
			bestScore := 0.0
			first := true
			var bv boolexpr.Var
			for ci, v := range sh.cands {
				unc := 0.0
				if sh.unc != nil {
					unc = sh.unc[ci]
				}
				f := u.combine.Eval(sh.score(v), unc)
				if s.cfg.CostAware {
					f /= s.cost(v)
				}
				if first || f > bestScore {
					bv, bestScore, first = v, f, false
				}
			}
			sh.winners[kind] = shardWinner{v: bv, f: bestScore, ver: ver, valid: true}
			sh.score, sh.unc = nil, nil
		})
		first := true
		var bestF float64
		for _, sh := range s.shards {
			if len(sh.cands) == 0 {
				continue
			}
			w := sh.winners[kind]
			if first || w.f > bestF || (w.f == bestF && w.v < best) {
				best, bestF, first = w.v, w.f, false
			}
		}
	}, obs.Int("shards_scored", len(scored)), obs.Int("shards_reused", reused))
	return best, nil
}

// forEachShard runs fn(i) for i in [0, n) across up to Parallel.Shards
// workers. fn must write only its own shard's state, which keeps every
// round deterministic for any worker count.
func (s *Session) forEachShard(n int, fn func(i int)) {
	workers := s.shardWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// mergedWeightStats is weightStatsSorted over the union of ascending
// multisets, streamed through a binary min-heap of list cursors instead of
// materializing the merge. The (minW, gap) pair equals the single-multiset
// scan bit for bit: both depend only on the merged values in ascending
// order, and ties stream in some order but contribute no gap either way.
func mergedWeightStats(lists [][]float64) (minW, gap float64) {
	pos := make([]int, len(lists))
	heap := make([]int, 0, len(lists)) // list indices, min-heap by current value
	val := func(li int) float64 { return lists[li][pos[li]] }
	down := func(i int) {
		for {
			l, r, sm := 2*i+1, 2*i+2, i
			if l < len(heap) && val(heap[l]) < val(heap[sm]) {
				sm = l
			}
			if r < len(heap) && val(heap[r]) < val(heap[sm]) {
				sm = r
			}
			if sm == i {
				return
			}
			heap[i], heap[sm] = heap[sm], heap[i]
			i = sm
		}
	}
	for li := range lists {
		if len(lists[li]) > 0 {
			heap = append(heap, li)
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		down(i)
	}
	if len(heap) == 0 {
		return 0, 0
	}
	first := true
	var prev float64
	for len(heap) > 0 {
		li := heap[0]
		w := val(li)
		if first {
			minW, first = w, false
		} else if d := w - prev; d > weightGapTolerance && (gap == 0 || d < gap) {
			gap = d
		}
		prev = w
		pos[li]++
		if pos[li] == len(lists[li]) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		down(0)
	}
	return minW, gap
}

// componentSignature fingerprints the workset's component structure:
// FNV-1a over each component's expression count, variable count and
// smallest variable, in the components' stable order. Sessions over the
// same query and repository state hash identically, which is what groups
// them onto one shard group in serving mode.
func componentSignature(w *workset, groups [][]int) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	put(uint64(len(groups)))
	for _, g := range groups {
		seen := make(map[boolexpr.Var]bool)
		minVar := boolexpr.Var(0)
		for _, i := range g {
			for v := range w.exprVars[i] {
				if !seen[v] {
					seen[v] = true
					if len(seen) == 1 || v < minVar {
						minVar = v
					}
				}
			}
		}
		put(uint64(len(g)))
		put(uint64(len(seen)))
		put(uint64(minVar))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

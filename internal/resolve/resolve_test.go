package resolve

import (
	"fmt"
	"math/rand"
	"testing"

	"qres/internal/boolexpr"
	"qres/internal/engine"
	"qres/internal/oracle"
	"qres/internal/table"
	"qres/internal/testdb"
	"qres/internal/uncertain"
)

// allConfigs enumerates a representative set of configurations covering
// every strategy, learning mode and utility.
func allConfigs(seed int64) []Config {
	small := 20 // small forests keep tests fast
	return []Config{
		{Baseline: BaselineRandom, Seed: seed},
		{Baseline: BaselineGreedy, Seed: seed},
		{Baseline: BaselineLALOnly, Learning: LearnOnline, Trees: small, Seed: seed},
		{Utility: QValue{}, Learning: LearnEP, Seed: seed},
		{Utility: QValue{}, Learning: LearnOffline, Trees: small, Seed: seed},
		{Utility: QValue{}, Learning: LearnOnline, Trees: small, Seed: seed},
		{Utility: RO{}, Learning: LearnEP, Seed: seed},
		{Utility: RO{}, Learning: LearnOnline, Trees: small, Seed: seed},
		{Utility: General{}, Learning: LearnEP, Seed: seed},
		{Utility: General{}, Learning: LearnOffline, Trees: small, Seed: seed},
		{Utility: General{}, Learning: LearnOnline, Trees: small, Seed: seed},
		{Utility: General{}, Learning: LearnOnline, Model: ModelNB, Trees: small, Seed: seed},
	}
}

// groundTruthAnswer computes the expected correct rows directly from
// provenance under the ground-truth valuation.
func groundTruthAnswer(res *engine.Result, val *boolexpr.Valuation) map[int]bool {
	out := make(map[int]bool)
	for i, row := range res.Rows {
		out[i] = row.Prov.Eval(val)
	}
	return out
}

// The headline correctness invariant (paper: "our algorithms are correct
// by design"): every configuration, on every ground truth, resolves the
// exact ground-truth answer set.
func TestSessionResolvesExactAnswer(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	for gtSeed := int64(0); gtSeed < 4; gtSeed++ {
		gt := uncertain.GenerateFixed(udb, 0.5, 100+gtSeed)
		want := groundTruthAnswer(res, gt.Val)
		orc := oracle.NewGroundTruth(gt.Val)
		for _, cfg := range allConfigs(7) {
			name := fmt.Sprintf("%s/gt%d", cfg.Name(), gtSeed)
			t.Run(name, func(t *testing.T) {
				sess, err := NewSession(udb, res, orc, nil, cfg)
				if err != nil {
					t.Fatal(err)
				}
				out, err := sess.Run()
				if err != nil {
					t.Fatal(err)
				}
				if len(out.Answers) != len(res.Rows) {
					t.Fatalf("got %d answers, want %d", len(out.Answers), len(res.Rows))
				}
				for _, a := range out.Answers {
					if a.Correct != want[a.Row] {
						t.Errorf("row %d: resolved %t, ground truth %t", a.Row, a.Correct, want[a.Row])
					}
				}
				// Cross-check against a full possible-world evaluation.
				world := udb.PossibleWorld(gt.Val)
				truth, err := engine.RunWorld(world, testdb.PaperQuery())
				if err != nil {
					t.Fatal(err)
				}
				correct := make(map[string]bool)
				for _, r := range out.CorrectRows() {
					correct[res.Rows[r].Tuple.Key()] = true
				}
				if len(correct) != len(truth) {
					t.Fatalf("resolved %d correct rows, world has %d", len(correct), len(truth))
				}
				for key := range truth {
					if !correct[key] {
						t.Error("world answer missing from resolved set")
					}
				}
			})
		}
	}
}

// Probe-budget invariants: at most one probe per unique provenance
// variable, no duplicates, and only variables from the provenance.
func TestProbeBudgetInvariants(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	inProv := make(map[boolexpr.Var]bool)
	for _, v := range res.UniqueVars() {
		inProv[v] = true
	}
	gt := uncertain.GenerateFixed(udb, 0.5, 5)
	for _, cfg := range allConfigs(11) {
		rec := oracle.NewRecorder(oracle.NewGroundTruth(gt.Val))
		sess, err := NewSession(udb, res, rec, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		probes := rec.Probes()
		if len(probes) != out.Probes {
			t.Errorf("%s: recorder %d vs outcome %d", cfg.Name(), len(probes), out.Probes)
		}
		if len(probes) > len(inProv) {
			t.Errorf("%s: %d probes exceeds %d unique vars", cfg.Name(), len(probes), len(inProv))
		}
		seen := make(map[boolexpr.Var]bool)
		for _, v := range probes {
			if seen[v] {
				t.Errorf("%s: variable %d probed twice", cfg.Name(), v)
			}
			seen[v] = true
			if !inProv[v] {
				t.Errorf("%s: probed variable %d outside provenance", cfg.Name(), v)
			}
		}
	}
}

// Known probe answers must be substituted before any oracle call (Step 3),
// and a repository that decides everything requires zero probes.
func TestKnownProbesReused(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	gt := uncertain.GenerateFixed(udb, 0.5, 9)

	// Full repository: every provenance variable already answered.
	repo := NewRepository()
	for _, v := range res.UniqueVars() {
		ans, _ := gt.Val.Get(v)
		repo.AddVar(v, udb.MetaFor(v), ans)
	}
	sess, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), repo, Config{Utility: General{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Probes != 0 {
		t.Fatalf("fully-known repository still issued %d probes", out.Probes)
	}
	if sess.Stats().KnownReused == 0 {
		t.Fatal("KnownReused not counted")
	}
	want := groundTruthAnswer(res, gt.Val)
	for _, a := range out.Answers {
		if a.Correct != want[a.Row] {
			t.Errorf("row %d wrong despite full repository", a.Row)
		}
	}

	// Partial repository must reduce (or at least not increase) probes.
	base, _ := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), nil, Config{Utility: General{}, Seed: 1})
	baseOut, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	partial := NewRepository()
	vs := res.UniqueVars()
	for _, v := range vs[:len(vs)/2] {
		ans, _ := gt.Val.Get(v)
		partial.AddVar(v, udb.MetaFor(v), ans)
	}
	half, _ := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), partial, Config{Utility: General{}, Seed: 1})
	halfOut, err := half.Run()
	if err != nil {
		t.Fatal(err)
	}
	if halfOut.Probes > baseOut.Probes {
		t.Errorf("partial repository increased probes: %d > %d", halfOut.Probes, baseOut.Probes)
	}
}

// Example 5.2 of the paper: with a0 probed True and π̃ = 0.1 for
// {a1, r1, e1, r4, e4} and 0.9 otherwise, Formula (3) gives a1 the maximal
// utility 2.7, and Formula (2) gives {e0, e2, e3, r0, r2} the shared
// maximal utility.
func TestUtilityPaperExample52(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	v := func(rel string, i int) boolexpr.Var {
		vv, _ := udb.VarFor(rel, i)
		return vv
	}
	a0 := v("Acquisitions", 0)
	low := map[boolexpr.Var]bool{
		v("Acquisitions", 1): true, v("Roles", 1): true, v("Education", 1): true,
		v("Roles", 4): true, v("Education", 4): true,
	}
	prob := func(x boolexpr.Var) float64 {
		if low[x] {
			return 0.1
		}
		return 0.9
	}

	known := boolexpr.NewValuation()
	known.Set(a0, true)
	parts, partOf := prepareExpressions(res.Provenance(), known, false, false, false, 8, 0, nil)
	w, err := newWorkset(parts, partOf, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	candidates := w.candidates()

	// Formula (3) (General's even rounds): a1 maximal with utility 2.7.
	gScores := General{}.Scores(w, prob, candidates, 0)
	a1 := v("Acquisitions", 1)
	if got := gScores[a1]; got < 2.699 || got > 2.701 {
		t.Errorf("General(a1) = %f, want 2.7", got)
	}
	for x, s := range gScores {
		if x != a1 && s >= gScores[a1] {
			t.Errorf("General: %d scored %f >= a1's %f", x, s, gScores[a1])
		}
	}

	// Formula (2) (RO): the five variables of the weight-0.405 terms tie
	// at the top.
	roScoresMap := RO{}.Scores(w, prob, candidates, 0)
	top := map[boolexpr.Var]bool{
		v("Education", 0): true, v("Education", 2): true, v("Education", 3): true,
		v("Roles", 0): true, v("Roles", 2): true,
	}
	var topScore float64
	for x := range top {
		topScore = roScoresMap[x]
		break
	}
	for x := range top {
		if diff := roScoresMap[x] - topScore; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("RO: expected tie among top variables, got %f vs %f", roScoresMap[x], topScore)
		}
	}
	for x, s := range roScoresMap {
		if !top[x] && s >= topScore-1e-9 {
			t.Errorf("RO: %d scored %f >= top %f", x, s, topScore)
		}
	}

	// General's odd rounds are Formula (2).
	gOdd := General{}.Scores(w, prob, candidates, 1)
	for x := range gOdd {
		if gOdd[x] != roScoresMap[x] {
			t.Errorf("General odd round must equal RO scores")
			break
		}
	}
}

// Q-Value must be maximal for a probe guaranteed to decide an expression.
func TestQValueDecidingProbeWins(t *testing.T) {
	// φ1 = x0 (deciding either way), φ2 = (x1∧x2) ∨ (x1∧x3): x1 decides
	// only when False.
	exprs := []boolexpr.Expr{
		boolexpr.Lit(0),
		boolexpr.NewExpr(boolexpr.NewTerm(1, 2), boolexpr.NewTerm(1, 3)),
	}
	w, err := newWorkset(exprs, []int{0, 1}, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	prob := func(boolexpr.Var) float64 { return 0.5 }
	scores := QValue{}.Scores(w, prob, w.candidates(), 0)
	// x0: nt*nc = 1; both hypothetical products are 0 → score 1.
	if scores[0] != 1 {
		t.Errorf("QValue(x0) = %f, want 1", scores[0])
	}
	// x1 in φ2: nt=2, nc: CNF = x1 ∧ (x2∨x3) → nc=2, base 4.
	// x1=True: ntT=2, ncT=1 → product 2. x1=False: decided → 0.
	// score = 4 - 0.5*2 - 0.5*0 = 3.
	if scores[1] != 3 {
		t.Errorf("QValue(x1) = %f, want 3", scores[1])
	}
	// x2: base 4; True: nt=2, clauses without x2 = 1 → 2; False: nt=1,
	// nc=2 → 2. score = 4 - 0.5*2 - 0.5*2 = 2.
	if scores[2] != 2 {
		t.Errorf("QValue(x2) = %f, want 2", scores[2])
	}
}

// Combination functions must satisfy the Section 6 desiderata.
func TestCombineDesiderata(t *testing.T) {
	combines := []Combine{
		CombineProduct(),
		CombineLinear(1, 2),
		CombineUtilityOnly(),
		CombineThreshold(0.05, 100),
	}
	rng := rand.New(rand.NewSource(3))
	for _, c := range combines {
		t.Run(c.Name(), func(t *testing.T) {
			for trial := 0; trial < 2000; trial++ {
				u1, u2 := rng.Float64()*10, rng.Float64()*10
				v1, v2 := rng.Float64(), rng.Float64()
				// Monotonicity: u1>=u2 and v1>=v2 ⇒ f(u1,v1) >= f(u2,v2).
				if u1 >= u2 && v1 >= v2 && c.Eval(u1, v1) < c.Eval(u2, v2) {
					t.Fatalf("monotonicity violated: f(%f,%f)=%f < f(%f,%f)=%f",
						u1, v1, c.Eval(u1, v1), u2, v2, c.Eval(u2, v2))
				}
				// ε-CtU with ε = 0.01: once uncertainties drop below ε,
				// ranking follows utility for any utility gap above the ε
				// scale (for u·(v+1) the gap must beat the residual u·ε
				// perturbation — the function converges to utility as
				// ε → 0 rather than at a fixed ε).
				e1, e2 := v1*0.01, v2*0.01
				if u1 > u2*(1+0.03)+1e-9 && c.Eval(u1, e1) <= c.Eval(u2, e2) {
					t.Fatalf("ε-CtU violated: f(%f,%f)=%f <= f(%f,%f)=%f",
						u1, e1, c.Eval(u1, e1), u2, e2, c.Eval(u2, e2))
				}
			}
		})
	}
	// Zero-value Combine behaves as utility-only.
	var zero Combine
	if zero.Eval(3, 9) != 3 {
		t.Error("zero Combine must return u")
	}
}

func TestWorksetLifecycle(t *testing.T) {
	// Two expressions sharing x1.
	exprs := []boolexpr.Expr{
		boolexpr.NewExpr(boolexpr.NewTerm(0, 1)),
		boolexpr.NewExpr(boolexpr.NewTerm(1), boolexpr.NewTerm(2)),
	}
	w, err := newWorkset(exprs, []int{0, 1}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.done() {
		t.Fatal("fresh workset must not be done")
	}
	if got := len(w.candidates()); got != 3 {
		t.Fatalf("candidates = %d, want 3", got)
	}

	// x1=True decides expression 1 (term {x1} satisfied) and shrinks 0.
	delta, err := w.applyProbe(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.decided) != 1 || delta.decided[0] != 1 {
		t.Fatalf("decided = %v, want [1]", delta.decided)
	}
	if !w.exprs[1].IsTrue() {
		t.Fatal("expression 1 should be True")
	}
	// x2 is now irrelevant (only occurred in the decided expression).
	cands := w.candidates()
	if len(cands) != 1 || cands[0] != 0 {
		t.Fatalf("candidates = %v, want [0]", cands)
	}

	// x0=False decides expression 0.
	if _, err := w.applyProbe(0, false); err != nil {
		t.Fatal(err)
	}
	if !w.done() {
		t.Fatal("workset should be done")
	}
	states := w.rowStatus(2)
	if states[0] != rowFalse || states[1] != rowTrue {
		t.Fatalf("rowStatus = %v", states)
	}
}

func TestWorksetSplitAggregation(t *testing.T) {
	// One row split into two parts; the row is True if either part is.
	parts := []boolexpr.Expr{
		boolexpr.NewExpr(boolexpr.NewTerm(0)),
		boolexpr.NewExpr(boolexpr.NewTerm(1)),
	}
	w, err := newWorkset(parts, []int{0, 0}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.applyProbe(0, false); err != nil {
		t.Fatal(err)
	}
	if st := w.rowStatus(1)[0]; st != rowUndecided {
		t.Fatalf("one False part must leave the row undecided, got %v", st)
	}
	if _, err := w.applyProbe(1, true); err != nil {
		t.Fatal(err)
	}
	if st := w.rowStatus(1)[0]; st != rowTrue {
		t.Fatalf("True part must make the row True, got %v", st)
	}
}

func TestPrepareExpressionsSplitting(t *testing.T) {
	// 20 disjoint 3-term conjunctions: CNF has 3^20 clauses, far over any
	// bound, so the expression must be split.
	terms := make([]boolexpr.Term, 20)
	for i := range terms {
		terms[i] = boolexpr.NewTerm(boolexpr.Var(3*i), boolexpr.Var(3*i+1), boolexpr.Var(3*i+2))
	}
	big := boolexpr.NewExpr(terms...)
	rng := rand.New(rand.NewSource(4))

	parts, partOf := prepareExpressions([]boolexpr.Expr{big}, boolexpr.NewValuation(), true, false, true, 5, 100, rng)
	if len(parts) < 4 {
		t.Fatalf("got %d parts, want >= 4 (20 terms / 5)", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += p.NumTerms()
		// With CNF required, every part must fit the clause bound (a
		// 5-term part of 3-var terms has 3^5 = 243 clauses > 100, so
		// parts are recursively halved).
		if _, ok := p.ToCNF(100); !ok {
			t.Fatalf("part %v exceeds the CNF bound", p)
		}
	}
	if total != 20 {
		t.Fatalf("terms lost or duplicated across parts: %d", total)
	}
	for _, r := range partOf {
		if r != 0 {
			t.Fatal("all parts must map to row 0")
		}
	}
	// Without splitting the workset construction must fail when CNF is
	// needed.
	if _, err := newWorkset([]boolexpr.Expr{big}, []int{0}, true, 100); err == nil {
		t.Fatal("expected CNF bound error")
	}
	// SplitAll splits by term count even when CNF is not needed.
	partsAll, _ := prepareExpressions([]boolexpr.Expr{big}, boolexpr.NewValuation(), true, true, false, 5, 0, rng)
	if len(partsAll) != 4 {
		t.Fatalf("SplitAll: got %d parts, want 4", len(partsAll))
	}
	// DisableSplitting keeps the expression whole.
	whole, _ := prepareExpressions([]boolexpr.Expr{big}, boolexpr.NewValuation(), false, false, true, 5, 100, rng)
	if len(whole) != 1 {
		t.Fatal("splitting disabled but expression was split")
	}
}

func TestSessionConfigErrors(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	gt := uncertain.GenerateFixed(udb, 0.5, 1)
	if _, err := NewSession(udb, res, oracle.NewGroundTruth(gt.Val), nil, Config{}); err == nil {
		t.Error("config without utility or baseline must fail")
	}
}

type failingOracle struct{}

func (failingOracle) Probe(boolexpr.Var) (bool, error) {
	return false, fmt.Errorf("oracle unavailable")
}

func TestOracleErrorPropagates(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(udb, res, failingOracle{}, nil, Config{Utility: General{}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err == nil {
		t.Fatal("oracle error must propagate")
	}
	// The session stays failed.
	if _, done, err := sess.Step(); !done || err == nil {
		t.Fatal("failed session must report its error from Step")
	}
}

func TestConfigNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Baseline: BaselineRandom}, "Random"},
		{Config{Baseline: BaselineGreedy}, "Greedy"},
		{Config{Baseline: BaselineLALOnly}, "LAL only"},
		{Config{Utility: QValue{}, Learning: LearnEP}, "Q-Value+EP"},
		{Config{Utility: RO{}, Learning: LearnOffline}, "RO+Offline"},
		{Config{Utility: General{}, Learning: LearnOnline}, "General+LAL"},
	}
	for _, c := range cases {
		if got := c.cfg.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	gt := uncertain.GenerateFixed(udb, 0.5, 77)
	want := groundTruthAnswer(res, gt.Val)
	cfg := Config{Utility: General{}, Learning: LearnEP, Seed: 5}

	out, err := ResolveParallel(udb, res, oracle.NewGroundTruth(gt.Val), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range out.Answers {
		if a.Correct != want[a.Row] {
			t.Errorf("parallel row %d: got %t, want %t", a.Row, a.Correct, want[a.Row])
		}
	}
	if out.Components < 1 {
		t.Error("expected at least one component")
	}
	if out.CriticalPathProbes > out.Probes {
		t.Error("critical path cannot exceed total probes")
	}
	if out.Probes == 0 && !allDecidedUpfront(res) {
		t.Error("parallel resolution issued no probes")
	}
}

func allDecidedUpfront(res *engine.Result) bool {
	for _, r := range res.Rows {
		if !r.Prov.Decided() {
			return false
		}
	}
	return true
}

func TestLearnerModes(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	repo := NewRepository()
	rng := rand.New(rand.NewSource(8))
	// Seed with >= MinTrain labeled examples whose answers follow the
	// source attribute.
	for i := 0; i < 40; i++ {
		src := "good.example"
		ans := true
		if i%2 == 0 {
			src = "bad.example"
			ans = false
		}
		repo.Add(map[string]string{"source": src, "rel_name": "x"}, ans)
	}
	_ = rng

	ep := NewLearner(udb, repo.Clone(), LearnerConfig{Mode: LearnEP})
	v, _ := udb.VarFor("Acquisitions", 0)
	if ep.Prob(v) != 0.5 {
		t.Error("EP learner must return 0.5")
	}
	if ep.Retrains() != 0 {
		t.Error("EP learner must never train")
	}

	off := NewLearner(udb, repo.Clone(), LearnerConfig{Mode: LearnOffline, Trees: 20, Seed: 1})
	if off.Retrains() != 1 {
		t.Errorf("offline learner retrains = %d, want 1", off.Retrains())
	}
	off.Observe(v, true)
	if off.Retrains() != 1 {
		t.Error("offline learner must not retrain on Observe")
	}

	on := NewLearner(udb, repo.Clone(), LearnerConfig{Mode: LearnOnline, Trees: 20, Seed: 1})
	r0 := on.Retrains()
	on.Observe(v, true)
	if on.Retrains() != r0+1 {
		t.Error("online learner must retrain on Observe")
	}

	// MinTrain gate: an online learner over a tiny repository returns 0.5
	// until 20 records accumulate.
	tiny := NewLearner(udb, NewRepository(), LearnerConfig{Mode: LearnOnline, Trees: 10, Seed: 1})
	if tiny.Trained() {
		t.Error("learner with empty repository must be untrained")
	}
	if tiny.Prob(v) != 0.5 {
		t.Error("untrained learner must return 0.5")
	}
	if tiny.Uncertainty(v) != 0 {
		t.Error("untrained learner must score 0 uncertainty")
	}
}

func TestLearnerProbsTrackMetadata(t *testing.T) {
	// Build a database whose tuples carry a source attribute, with a
	// repository that labels one source reliable and the other not; the
	// trained learner must separate the two.
	db := table.NewDatabase()
	rel := table.NewRelation("facts", table.NewSchema(table.Column{Name: "v", Kind: table.KindInt}))
	for i := 0; i < 10; i++ {
		src := "good.example"
		if i%2 == 1 {
			src = "bad.example"
		}
		rel.MustAppend(table.Tuple{table.Int(int64(i))}, table.Metadata{"source": src})
	}
	db.MustAdd(rel)
	udb := uncertain.New(db)

	repo := NewRepository()
	for i := 0; i < 60; i++ {
		src, ans := "good.example", true
		if i%2 == 1 {
			src, ans = "bad.example", false
		}
		repo.Add(map[string]string{"source": src, "rel_name": "facts"}, ans)
	}
	l := NewLearner(udb, repo, LearnerConfig{Mode: LearnOffline, Trees: 30, Seed: 2})
	vGood, _ := udb.VarFor("facts", 0)
	vBad, _ := udb.VarFor("facts", 1)
	if pg := l.Prob(vGood); pg < 0.8 {
		t.Errorf("P(good source) = %f, want high", pg)
	}
	if pb := l.Prob(vBad); pb > 0.2 {
		t.Errorf("P(bad source) = %f, want low", pb)
	}
	imp := l.FeatureImportances()
	if imp["source"] < imp["rel_name"] {
		t.Errorf("source importance %f should dominate rel_name %f", imp["source"], imp["rel_name"])
	}
}

func TestRepository(t *testing.T) {
	r := NewRepository()
	r.Add(map[string]string{"a": "1"}, true)
	r.AddVar(7, map[string]string{"a": "2"}, false)
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if ans, ok := r.Answer(7); !ok || ans {
		t.Error("Answer(7) wrong")
	}
	if _, ok := r.Answer(8); ok {
		t.Error("Answer(8) should be unknown")
	}
	clone := r.Clone()
	clone.AddVar(9, nil, true)
	if _, ok := r.Answer(9); ok {
		t.Error("Clone leaked into original")
	}
	if len(r.Metas()) != 2 {
		t.Error("Metas length wrong")
	}
}

// Determinism: identical configuration and seed yield identical probe
// sequences.
func TestSessionDeterministic(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	gt := uncertain.GenerateFixed(udb, 0.5, 3)
	run := func() []boolexpr.Var {
		rec := oracle.NewRecorder(oracle.NewGroundTruth(gt.Val))
		sess, err := NewSession(udb, res, rec, nil, Config{Utility: QValue{}, Learning: LearnEP, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(); err != nil {
			t.Fatal(err)
		}
		return rec.Probes()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("probe counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe sequence diverged at %d", i)
		}
	}
}

// The noisy-oracle extension: with a noise-free rate the wrapper is
// transparent; with rate 1 every answer flips, and the resolved answers
// follow the flipped valuation.
func TestNoisyOracle(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	gt := uncertain.GenerateFixed(udb, 0.5, 13)

	clean := oracle.NewNoisy(oracle.NewGroundTruth(gt.Val), 0, 1)
	sess, _ := NewSession(udb, res, clean, nil, Config{Utility: General{}, Seed: 3})
	out, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := groundTruthAnswer(res, gt.Val)
	for _, a := range out.Answers {
		if a.Correct != want[a.Row] {
			t.Error("rate-0 noisy oracle changed answers")
			break
		}
	}
}

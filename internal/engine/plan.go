package engine

import (
	"fmt"
	"strings"

	"qres/internal/boolexpr"
	"qres/internal/table"
)

// Source supplies base relations and their per-tuple provenance
// annotations. An uncertain database yields the tuple's Boolean variable;
// a possible world (a plain database) yields the constant True, so the
// same plans evaluate queries both with provenance tracking and under
// standard set semantics.
type Source interface {
	// Relation looks up a base relation by name.
	Relation(name string) (*table.Relation, bool)
	// Prov returns the provenance annotation of the idx-th tuple of the
	// named relation.
	Prov(relation string, idx int) boolexpr.Expr
}

// Node is a logical SPJU plan operator.
type Node interface {
	// exec evaluates the subtree against src, returning the bound output
	// schema and the materialized annotated rows.
	exec(src Source) (outSchema, []Row, error)
	String() string
}

// Row is one annotated output tuple: the values plus the Boolean
// provenance expression whose truth decides the tuple's correctness.
type Row struct {
	Tuple table.Tuple
	Prov  boolexpr.Expr
}

// Shape renders the plan's operator tree as a compact one-line signature
// without predicates or column lists, e.g. "Project(Join(Scan,Scan))".
// Query-evaluation trace spans attach it so traces identify the plan
// without reproducing its full String rendering.
//
// Shapes carry the rewrite pass's annotations: a selection the rewrite
// pushed down renders as "Select*", a fused ORDER BY … LIMIT k renders as
// "TopK[k]", and Limit renders its row budget as "Limit[n]". Rendering
// Shape(Rewrite(plan)) next to Shape(plan) therefore shows exactly what
// the rewrite did to a plan.
func Shape(n Node) string {
	switch t := n.(type) {
	case *scanNode:
		return "Scan"
	case *selectNode:
		op := "Select"
		if t.pushed {
			op = "Select*"
		}
		return op + "(" + Shape(t.input) + ")"
	case *joinNode:
		return "Join(" + Shape(t.left) + "," + Shape(t.right) + ")"
	case *projectNode:
		op := "Project"
		if t.distinct {
			op = "Distinct"
		}
		return op + "(" + Shape(t.input) + ")"
	case *unionNode:
		parts := make([]string, len(t.inputs))
		for i, in := range t.inputs {
			parts[i] = Shape(in)
		}
		return "Union(" + strings.Join(parts, ",") + ")"
	case *sortNode:
		return "Sort(" + Shape(t.input) + ")"
	case *limitNode:
		return fmt.Sprintf("Limit[%d](%s)", t.n, Shape(t.input))
	case *topKNode:
		return fmt.Sprintf("TopK[%d](%s)", t.n, Shape(t.input))
	default:
		return "?"
	}
}

// Scan reads a base relation under an alias. Output columns are qualified
// by the alias (or by the relation name if alias is empty).
func Scan(relation, alias string) Node { return &scanNode{relation, alias} }

type scanNode struct{ relation, alias string }

func (n *scanNode) exec(src Source) (outSchema, []Row, error) {
	rel, ok := src.Relation(n.relation)
	if !ok {
		return nil, nil, fmt.Errorf("engine: unknown relation %q", n.relation)
	}
	alias := n.alias
	if alias == "" {
		alias = n.relation
	}
	schema := make(outSchema, rel.Schema().Len())
	for i, c := range rel.Schema().Columns() {
		schema[i] = OutCol{Qualifier: alias, Name: c.Name, Kind: c.Kind}
	}
	rows := make([]Row, rel.Len())
	for i := 0; i < rel.Len(); i++ {
		rows[i] = Row{Tuple: rel.At(i), Prov: src.Prov(n.relation, i)}
	}
	return schema, rows, nil
}

func (n *scanNode) String() string {
	if n.alias != "" && !strings.EqualFold(n.alias, n.relation) {
		return fmt.Sprintf("Scan(%s AS %s)", n.relation, n.alias)
	}
	return fmt.Sprintf("Scan(%s)", n.relation)
}

// Select filters rows by a predicate; provenance passes through unchanged.
func Select(input Node, pred Predicate) Node { return &selectNode{input: input, pred: pred} }

type selectNode struct {
	input Node
	pred  Predicate
	// pushed marks a selection placed by the rewrite pass (rendered as
	// "Select*" in Shape); it has no execution semantics.
	pushed bool
}

func (n *selectNode) exec(src Source) (outSchema, []Row, error) {
	schema, rows, err := n.input.exec(src)
	if err != nil {
		return nil, nil, err
	}
	match, err := n.pred.bind(schema)
	if err != nil {
		return nil, nil, err
	}
	out := rows[:0:0]
	for _, r := range rows {
		if match(r.Tuple) {
			out = append(out, r)
		}
	}
	return schema, out, nil
}

func (n *selectNode) String() string {
	return fmt.Sprintf("Select(%s)[%s]", n.pred, n.input)
}

// Join computes the inner join of two inputs under a predicate over the
// concatenated schema. The provenance of a joined row is the conjunction
// of its inputs' provenance. Equality conditions of the form
// left-column = right-column are detected and executed as a hash join;
// remaining conditions are applied as a residual filter.
func Join(left, right Node, on Predicate) Node { return &joinNode{left, right, on} }

type joinNode struct {
	left, right Node
	on          Predicate
}

func (n *joinNode) exec(src Source) (outSchema, []Row, error) {
	ls, lrows, err := n.left.exec(src)
	if err != nil {
		return nil, nil, err
	}
	rs, rrows, err := n.right.exec(src)
	if err != nil {
		return nil, nil, err
	}
	schema := make(outSchema, 0, len(ls)+len(rs))
	schema = append(schema, ls...)
	schema = append(schema, rs...)

	// Split the condition into hashable equi-conditions (one side bound
	// entirely by left columns, the other by right columns) and a
	// residual predicate.
	equi, residual := splitEquiConds(n.on, ls, rs)

	match := func(table.Tuple) bool { return true }
	if residual != nil {
		match, err = residual.bind(schema)
		if err != nil {
			return nil, nil, err
		}
	}

	concat := func(l, r Row) Row {
		t := make(table.Tuple, 0, len(l.Tuple)+len(r.Tuple))
		t = append(t, l.Tuple...)
		t = append(t, r.Tuple...)
		return Row{Tuple: t, Prov: l.Prov.And(r.Prov)}
	}

	var out []Row
	if len(equi) > 0 {
		// Hash join on the equi-condition key.
		buckets := make(map[string][]int, len(rrows))
		for j, r := range rrows {
			key, ok := equiKey(r.Tuple, equi, false)
			if !ok {
				continue // NULL key never matches
			}
			buckets[key] = append(buckets[key], j)
		}
		for _, l := range lrows {
			key, ok := equiKey(l.Tuple, equi, true)
			if !ok {
				continue
			}
			for _, j := range buckets[key] {
				row := concat(l, rrows[j])
				if match(row.Tuple) {
					out = append(out, row)
				}
			}
		}
	} else {
		// Nested-loop theta join.
		for _, l := range lrows {
			for _, r := range rrows {
				row := concat(l, r)
				if match(row.Tuple) {
					out = append(out, row)
				}
			}
		}
	}
	return schema, out, nil
}

func (n *joinNode) String() string {
	return fmt.Sprintf("Join(%s)[%s, %s]", n.on, n.left, n.right)
}

// equiCond is an equality between a left-schema column and a right-schema
// column, identified by their positions in each input schema.
type equiCond struct{ leftIdx, rightIdx int }

// splitEquiConds peels hashable equality conditions off the top-level AND
// structure of pred. It returns the extracted conditions and the residual
// predicate (nil if everything was extracted).
func splitEquiConds(pred Predicate, ls, rs outSchema) ([]equiCond, Predicate) {
	var conds []equiCond
	var residual []Predicate

	var walk func(p Predicate)
	walk = func(p Predicate) {
		switch q := p.(type) {
		case andPred:
			for _, sub := range q.ps {
				walk(sub)
			}
		case cmpPred:
			if q.op == OpEq {
				if c, ok := extractEqui(q, ls, rs); ok {
					conds = append(conds, c)
					return
				}
			}
			residual = append(residual, p)
		default:
			residual = append(residual, p)
		}
	}
	if pred != nil {
		walk(pred)
	}
	if len(residual) == 0 {
		return conds, nil
	}
	return conds, And(residual...)
}

// extractEqui recognizes col-op-col equality predicates whose two columns
// resolve on opposite sides of the join.
func extractEqui(q cmpPred, ls, rs outSchema) (equiCond, bool) {
	lc, lok := q.left.(colRef)
	rc, rok := q.right.(colRef)
	if !lok || !rok {
		return equiCond{}, false
	}
	// left column on left schema, right column on right schema?
	if li, err := ls.resolve(lc.qualifier, lc.name); err == nil {
		if ri, err := rs.resolve(rc.qualifier, rc.name); err == nil {
			// Ensure the references are not also resolvable on the
			// opposite side, which would make the split ambiguous.
			if _, e1 := rs.resolve(lc.qualifier, lc.name); e1 != nil {
				if _, e2 := ls.resolve(rc.qualifier, rc.name); e2 != nil {
					return equiCond{leftIdx: li, rightIdx: ri}, true
				}
			}
		}
	}
	// Or flipped: left column on right schema, right column on left.
	if ri, err := rs.resolve(lc.qualifier, lc.name); err == nil {
		if li, err := ls.resolve(rc.qualifier, rc.name); err == nil {
			if _, e1 := ls.resolve(lc.qualifier, lc.name); e1 != nil {
				if _, e2 := rs.resolve(rc.qualifier, rc.name); e2 != nil {
					return equiCond{leftIdx: li, rightIdx: ri}, true
				}
			}
		}
	}
	return equiCond{}, false
}

// equiKey builds the hash key of a row for the given equi-conditions.
// It returns ok=false when any key component is NULL (NULL never joins).
func equiKey(t table.Tuple, conds []equiCond, left bool) (string, bool) {
	buf, ok := appendEquiKey(make([]byte, 0, 16*len(conds)), t, conds, left)
	if !ok {
		return "", false
	}
	return string(buf), true
}

// Project keeps the listed columns. With distinct=true duplicate output
// tuples are merged and their provenance disjoined, which is where DNF
// provenance expressions with multiple terms arise (paper Table 2). The
// projected columns lose their qualifier and take the name of the
// referenced column.
func Project(input Node, distinct bool, cols ...Scalar) Node {
	return &projectNode{input, distinct, cols}
}

type projectNode struct {
	input    Node
	distinct bool
	cols     []Scalar
}

func (n *projectNode) exec(src Source) (outSchema, []Row, error) {
	schema, rows, err := n.input.exec(src)
	if err != nil {
		return nil, nil, err
	}
	evals := make([]func(table.Tuple) table.Value, len(n.cols))
	out := make(outSchema, len(n.cols))
	for i, c := range n.cols {
		f, kind, err := c.bind(schema)
		if err != nil {
			return nil, nil, err
		}
		evals[i] = f
		name := c.String()
		if cr, ok := c.(colRef); ok {
			name = cr.name
		}
		out[i] = OutCol{Name: name, Kind: kind}
	}

	projected := make([]Row, 0, len(rows))
	for _, r := range rows {
		t := make(table.Tuple, len(evals))
		for i, f := range evals {
			t[i] = f(r.Tuple)
		}
		projected = append(projected, Row{Tuple: t, Prov: r.Prov})
	}
	if n.distinct {
		projected = mergeDuplicates(projected)
	}
	return out, projected, nil
}

func (n *projectNode) String() string {
	parts := make([]string, len(n.cols))
	for i, c := range n.cols {
		parts[i] = c.String()
	}
	d := ""
	if n.distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("Project(%s%s)[%s]", d, strings.Join(parts, ", "), n.input)
}

// Union combines inputs with set semantics: schemas must be kind-compatible
// position-wise, duplicates are merged, and merged rows' provenance is
// disjoined. Column names follow the first input, as in SQL.
func Union(inputs ...Node) Node { return &unionNode{inputs} }

type unionNode struct{ inputs []Node }

func (n *unionNode) exec(src Source) (outSchema, []Row, error) {
	if len(n.inputs) == 0 {
		return nil, nil, fmt.Errorf("engine: UNION of zero inputs")
	}
	var schema outSchema
	var all []Row
	for i, in := range n.inputs {
		s, rows, err := in.exec(src)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 {
			schema = s
		} else {
			if len(s) != len(schema) {
				return nil, nil, fmt.Errorf("engine: UNION arity mismatch: %d vs %d", len(schema), len(s))
			}
			for j := range s {
				a, b := schema[j].Kind, s[j].Kind
				if a != b && a != table.KindNull && b != table.KindNull && !table.Comparable(a, b) {
					return nil, nil, fmt.Errorf("engine: UNION kind mismatch at column %d: %s vs %s", j, a, b)
				}
			}
		}
		all = append(all, rows...)
	}
	return schema, mergeDuplicates(all), nil
}

func (n *unionNode) String() string {
	parts := make([]string, len(n.inputs))
	for i, in := range n.inputs {
		parts[i] = in.String()
	}
	return "Union[" + strings.Join(parts, ", ") + "]"
}

// mergeDuplicates deduplicates rows by tuple key, disjoining provenance of
// merged rows. First-occurrence order is preserved for determinism.
func mergeDuplicates(rows []Row) []Row {
	index := make(map[string]int, len(rows))
	out := make([]Row, 0, len(rows))
	for _, r := range rows {
		key := r.Tuple.Key()
		if i, ok := index[key]; ok {
			out[i].Prov = out[i].Prov.Or(r.Prov)
			continue
		}
		index[key] = len(out)
		out = append(out, r)
	}
	return out
}

// Package engine evaluates SPJU queries — the Positive Relational Algebra
// of Selection, Projection, inner Join and Union (paper Section 2.1) — over
// uncertain databases with Boolean provenance tracking (Section 2.3).
//
// Every output row carries a monotone DNF provenance expression built by
// the standard provenance-semiring rules: a scanned tuple is annotated with
// its own variable, a join conjoins the provenance of its inputs, and
// duplicate elimination (DISTINCT projection, UNION) disjoins the
// provenance of merged rows.
//
// Execution is streaming: Run rewrites the plan (predicate pushdown, top-k
// fusion — see Rewrite), compiles it to a tree of Volcano-style
// Open/Next/Close iterators, and drains the root, keeping provenance
// annotation on the streaming path. The original materialize-per-operator
// executor remains available as RunReference; it is the pinned control the
// equivalence tests and benchmarks compare against. ARCHITECTURE.md's
// "Query engine" chapter documents the iterator contract and the
// equivalence argument.
package engine

import (
	"fmt"
	"strings"

	"qres/internal/table"
)

// OutCol describes one column of an operator's output: an optional
// qualifier (the relation alias it came from), the column name, and its
// kind. Projection may clear the qualifier.
type OutCol struct {
	Qualifier string
	Name      string
	Kind      table.Kind
}

// String renders the column as "qualifier.name" or "name".
func (c OutCol) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// outSchema is the bound output schema of an operator.
type outSchema []OutCol

// resolve finds the position of the referenced column. A qualified
// reference must match both qualifier and name; an unqualified reference
// must match a unique column name. Matching is case-insensitive.
func (s outSchema) resolve(qualifier, name string) (int, error) {
	found := -1
	for i, c := range s {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qualifier != "" && !strings.EqualFold(c.Qualifier, qualifier) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("engine: ambiguous column reference %q", colRefString(qualifier, name))
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("engine: unknown column %q", colRefString(qualifier, name))
	}
	return found, nil
}

func colRefString(qualifier, name string) string {
	if qualifier != "" {
		return qualifier + "." + name
	}
	return name
}

// Scalar is a row-level expression yielding a value: a column reference, a
// constant, or the year() function the paper's example query uses.
type Scalar interface {
	// bind resolves column references against the input schema and
	// returns an evaluator plus the static kind of the result (KindNull
	// when the kind depends on the row, e.g. a column of nulls).
	bind(s outSchema) (func(row table.Tuple) table.Value, table.Kind, error)
	String() string
}

// Col references a column, optionally qualified by a relation alias.
func Col(qualifier, name string) Scalar { return colRef{qualifier, name} }

type colRef struct{ qualifier, name string }

func (c colRef) bind(s outSchema) (func(table.Tuple) table.Value, table.Kind, error) {
	idx, err := s.resolve(c.qualifier, c.name)
	if err != nil {
		return nil, table.KindNull, err
	}
	kind := s[idx].Kind
	return func(row table.Tuple) table.Value { return row[idx] }, kind, nil
}

func (c colRef) String() string { return colRefString(c.qualifier, c.name) }

// Const wraps a literal value.
func Const(v table.Value) Scalar { return constant{v} }

type constant struct{ v table.Value }

func (c constant) bind(outSchema) (func(table.Tuple) table.Value, table.Kind, error) {
	v := c.v
	return func(table.Tuple) table.Value { return v }, v.Kind(), nil
}

func (c constant) String() string { return c.v.String() }

// Year extracts the calendar year of a date-valued scalar, as in the
// paper's predicate "e.Year <= year(a.Date)".
func Year(of Scalar) Scalar { return yearOf{of} }

type yearOf struct{ of Scalar }

func (y yearOf) bind(s outSchema) (func(table.Tuple) table.Value, table.Kind, error) {
	inner, kind, err := y.of.bind(s)
	if err != nil {
		return nil, table.KindNull, err
	}
	if kind != table.KindDate && kind != table.KindNull {
		return nil, table.KindNull, fmt.Errorf("engine: year() applied to %s", kind)
	}
	return func(row table.Tuple) table.Value {
		v := inner(row)
		if v.Kind() != table.KindDate {
			return table.Null()
		}
		return table.Int(v.Year())
	}, table.KindInt, nil
}

func (y yearOf) String() string { return "year(" + y.of.String() + ")" }

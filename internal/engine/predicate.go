package engine

import (
	"fmt"
	"strings"

	"qres/internal/table"
)

// CmpOp enumerates comparison operators. The SPJU fragment permits negation
// inside selection predicates (e.g. Year != 2017) but not at the query
// operator level, so != and NOT are supported here while the algebra stays
// monotone.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Predicate is a row-level Boolean condition used by selections and join
// conditions. Predicates follow SQL three-valued logic collapsed to
// two-valued "matches / does not match": a comparison involving NULL does
// not match.
type Predicate interface {
	bind(s outSchema) (func(row table.Tuple) bool, error)
	String() string
}

// Cmp compares two scalars with the given operator.
func Cmp(left Scalar, op CmpOp, right Scalar) Predicate { return cmpPred{left, op, right} }

type cmpPred struct {
	left  Scalar
	op    CmpOp
	right Scalar
}

func (p cmpPred) bind(s outSchema) (func(table.Tuple) bool, error) {
	lf, lk, err := p.left.bind(s)
	if err != nil {
		return nil, err
	}
	rf, rk, err := p.right.bind(s)
	if err != nil {
		return nil, err
	}
	if lk != table.KindNull && rk != table.KindNull && !table.Comparable(lk, rk) {
		return nil, fmt.Errorf("engine: cannot compare %s with %s in %s", lk, rk, p)
	}
	op := p.op
	return func(row table.Tuple) bool {
		l, r := lf(row), rf(row)
		if l.IsNull() || r.IsNull() {
			return false
		}
		c, err := table.Compare(l, r)
		if err != nil {
			return false
		}
		switch op {
		case OpEq:
			return c == 0
		case OpNe:
			return c != 0
		case OpLt:
			return c < 0
		case OpLe:
			return c <= 0
		case OpGt:
			return c > 0
		case OpGe:
			return c >= 0
		}
		return false
	}, nil
}

func (p cmpPred) String() string {
	return fmt.Sprintf("%s %s %s", p.left, p.op, p.right)
}

// Like matches a scalar against a SQL LIKE pattern.
func Like(col Scalar, pattern string) Predicate { return likePred{col, pattern} }

type likePred struct {
	col     Scalar
	pattern string
}

func (p likePred) bind(s outSchema) (func(table.Tuple) bool, error) {
	f, kind, err := p.col.bind(s)
	if err != nil {
		return nil, err
	}
	if kind != table.KindString && kind != table.KindNull {
		return nil, fmt.Errorf("engine: LIKE applied to %s", kind)
	}
	pattern := p.pattern
	return func(row table.Tuple) bool {
		v := f(row)
		if v.Kind() != table.KindString {
			return false
		}
		return table.Like(v.AsString(), pattern)
	}, nil
}

func (p likePred) String() string {
	return fmt.Sprintf("%s LIKE '%s'", p.col, p.pattern)
}

// In matches a scalar against a list of constant values.
func In(col Scalar, values ...table.Value) Predicate { return inPred{col, values} }

type inPred struct {
	col    Scalar
	values []table.Value
}

func (p inPred) bind(s outSchema) (func(table.Tuple) bool, error) {
	f, _, err := p.col.bind(s)
	if err != nil {
		return nil, err
	}
	values := p.values
	return func(row table.Tuple) bool {
		v := f(row)
		for _, w := range values {
			if table.Equal(v, w) {
				return true
			}
		}
		return false
	}, nil
}

func (p inPred) String() string {
	parts := make([]string, len(p.values))
	for i, v := range p.values {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s IN (%s)", p.col, strings.Join(parts, ", "))
}

// IsNotNull matches rows where the scalar is non-NULL, used by the SPU
// hardness construction of Theorem 3.2 ("adding a selection criterion to Q
// to avoid NULL results").
func IsNotNull(col Scalar) Predicate { return notNullPred{col} }

type notNullPred struct{ col Scalar }

func (p notNullPred) bind(s outSchema) (func(table.Tuple) bool, error) {
	f, _, err := p.col.bind(s)
	if err != nil {
		return nil, err
	}
	return func(row table.Tuple) bool { return !f(row).IsNull() }, nil
}

func (p notNullPred) String() string { return p.col.String() + " IS NOT NULL" }

// And conjoins predicates; with no arguments it is the always-true
// predicate.
func And(ps ...Predicate) Predicate { return andPred{ps} }

type andPred struct{ ps []Predicate }

func (p andPred) bind(s outSchema) (func(table.Tuple) bool, error) {
	fs := make([]func(table.Tuple) bool, len(p.ps))
	for i, sub := range p.ps {
		f, err := sub.bind(s)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return func(row table.Tuple) bool {
		for _, f := range fs {
			if !f(row) {
				return false
			}
		}
		return true
	}, nil
}

func (p andPred) String() string { return joinPredStrings(p.ps, " AND ") }

// Or disjoins predicates; with no arguments it is the always-false
// predicate.
func Or(ps ...Predicate) Predicate { return orPred{ps} }

type orPred struct{ ps []Predicate }

func (p orPred) bind(s outSchema) (func(table.Tuple) bool, error) {
	fs := make([]func(table.Tuple) bool, len(p.ps))
	for i, sub := range p.ps {
		f, err := sub.bind(s)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return func(row table.Tuple) bool {
		for _, f := range fs {
			if f(row) {
				return true
			}
		}
		return false
	}, nil
}

func (p orPred) String() string { return joinPredStrings(p.ps, " OR ") }

// Not negates a predicate. Negation inside selection conditions is allowed
// in the SPJU fragment (paper Section 2.1).
func Not(p Predicate) Predicate { return notPred{p} }

type notPred struct{ p Predicate }

func (p notPred) bind(s outSchema) (func(table.Tuple) bool, error) {
	f, err := p.p.bind(s)
	if err != nil {
		return nil, err
	}
	return func(row table.Tuple) bool { return !f(row) }, nil
}

func (p notPred) String() string { return "NOT (" + p.p.String() + ")" }

func joinPredStrings(ps []Predicate, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = "(" + p.String() + ")"
	}
	return strings.Join(parts, sep)
}

package engine

import (
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"qres/internal/boolexpr"
	"qres/internal/obs"
	"qres/internal/table"
	"qres/internal/uncertain"
)

// Result is a materialized annotated query answer Q(D̄): the output schema,
// and one Row per output tuple carrying its provenance expression. The set
// of provenance expressions is the paper's Φ(Q, D̄).
//
// The derived provenance statistics (UniqueVars, MaxTermSize) are computed
// once on first use and cached; a Result's Rows must not be mutated after
// those accessors have been called. Results are handled by pointer.
type Result struct {
	Columns []OutCol
	Rows    []Row

	statsOnce sync.Once
	uniqVars  []boolexpr.Var
	maxTerm   int
}

// Provenance returns the provenance expression set Φ, aligned with Rows.
func (r *Result) Provenance() []boolexpr.Expr {
	out := make([]boolexpr.Expr, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.Prov
	}
	return out
}

// computeStats scans the provenance once, filling the cached statistics.
func (r *Result) computeStats() {
	r.statsOnce.Do(func() {
		seen := make(map[boolexpr.Var]struct{})
		for _, row := range r.Rows {
			for _, v := range row.Prov.Vars() {
				seen[v] = struct{}{}
			}
			if s := row.Prov.MaxTermSize(); s > r.maxTerm {
				r.maxTerm = s
			}
		}
		r.uniqVars = make([]boolexpr.Var, 0, len(seen))
		for v := range seen {
			r.uniqVars = append(r.uniqVars, v)
		}
		sort.Slice(r.uniqVars, func(i, j int) bool { return r.uniqVars[i] < r.uniqVars[j] })
	})
}

// UniqueVars returns the distinct variables occurring in the result's
// provenance, in ascending order — the candidate probes of the resolution
// problem, and the "# Unique variables" statistic of the paper's Table 3.
// The scan over all provenance runs once; subsequent calls return the
// cached answer (as a fresh slice the caller may modify).
func (r *Result) UniqueVars() []boolexpr.Var {
	r.computeStats()
	return append([]boolexpr.Var(nil), r.uniqVars...)
}

// MaxTermSize returns the k of the k-DNF provenance: the largest term size
// across all rows (the "Term Size" statistic of Table 3). Like UniqueVars,
// the answer is computed once and cached.
func (r *Result) MaxTermSize() int {
	r.computeStats()
	return r.maxTerm
}

// Header renders the column names, comma-separated.
func (r *Result) Header() string {
	parts := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		parts[i] = c.String()
	}
	return strings.Join(parts, ", ")
}

// uncertainSource adapts an uncertain database: the provenance of a tuple
// is its Boolean variable.
type uncertainSource struct{ db *uncertain.DB }

func (s uncertainSource) Relation(name string) (*table.Relation, bool) {
	return s.db.Data().Relation(name)
}

func (s uncertainSource) Prov(relation string, idx int) boolexpr.Expr {
	v, ok := s.db.VarFor(relation, idx)
	if !ok {
		return boolexpr.False()
	}
	return boolexpr.Lit(v)
}

// worldSource adapts a plain relational database (a possible world): every
// tuple is certainly present, so its provenance is the constant True.
type worldSource struct{ db *table.Database }

func (s worldSource) Relation(name string) (*table.Relation, bool) {
	return s.db.Relation(name)
}

func (s worldSource) Prov(string, int) boolexpr.Expr { return boolexpr.True() }

// Exec bundles the execution options of one streaming run: an optional
// instrumentation handle and the morsel-parallelism settings.
//
// Workers selects the engine worker count: 0 means one worker per CPU
// (runtime.GOMAXPROCS), 1 pins the run to the serial streaming executor,
// and n ≥ 2 fans eligible pipeline fragments out across n workers. The
// parallel path is bit-identical to the serial one — same columns, tuple
// order and provenance expressions — for any worker count; see
// ARCHITECTURE.md "Parallel execution" for the determinism argument.
//
// MorselSize is the number of driver-relation rows per morsel; 0 selects
// the default (1024). Smaller morsels only matter for tests that want many
// morsels over tiny relations.
type Exec struct {
	Obs        *obs.Obs
	Workers    int
	MorselSize int
}

// Run evaluates plan over the uncertain database with provenance tracking
// (Step 2 of the framework). Each output row's expression is True under a
// valuation iff the row belongs to the query answer on that possible world.
//
// Run uses the serial streaming executor: the plan is rewritten (predicate
// pushdown, top-k fusion — see Rewrite), compiled to a tree of Volcano
// iterators and drained. Results are row-for-row identical to the
// materializing reference executor, which stays available as RunReference
// for equivalence testing. RunWith adds morsel-driven parallelism with the
// same result contract.
func Run(db *uncertain.DB, plan Node) (*Result, error) {
	return RunWith(db, plan, Exec{Workers: 1})
}

// RunWith evaluates plan on the streaming executor with explicit execution
// options — the entry point for morsel-parallel evaluation. Results are
// bit-identical to Run for every Exec value.
func RunWith(db *uncertain.DB, plan Node, x Exec) (*Result, error) {
	return runStream(uncertainSource{db}, plan, x)
}

// RunReference evaluates plan with the pre-streaming materializing
// executor, with no plan rewriting: every operator computes its full output
// before its parent starts. It is the pinned control for the streaming
// path — equivalence tests and BenchmarkEngine run both and compare —
// mirroring the DisableIncremental / FitForestReference pattern used by
// the resolver and the learner.
func RunReference(db *uncertain.DB, plan Node) (*Result, error) {
	schema, rows, err := plan.exec(uncertainSource{db})
	if err != nil {
		return nil, err
	}
	return &Result{Columns: schema, Rows: rows}, nil
}

// RunObserved is Run with instrumentation. When o carries a metrics
// registry it maintains the engine counters (engine_rows_scanned_total,
// engine_rows_emitted_total, engine_predicates_pushed_total,
// engine_topk_fused_total). When o carries a span sink it additionally
// emits a query_eval span (annotated with the original and rewritten plan
// shapes and the output cardinality), one query_op span per streaming
// operator (rows produced, inclusive subtree time), and a provenance span
// summarizing the constructed annotations.
func RunObserved(db *uncertain.DB, plan Node, o *obs.Obs) (*Result, error) {
	return runStream(uncertainSource{db}, plan, Exec{Obs: o, Workers: 1})
}

// runStream rewrites, compiles and drains a plan against src under the
// given execution options, reporting through x.Obs (which may be nil).
func runStream(src Source, plan Node, x Exec) (*Result, error) {
	o := x.Obs
	workers := x.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	rewritten, rst := rewriteWithStats(plan)
	ctx := &compileCtx{
		src: src, stats: &execStats{},
		workers: workers, morsel: x.MorselSize,
		trace: o.Tracing(),
	}
	c, err := compileInput(rewritten, ctx)
	if err != nil {
		return nil, err
	}
	rows, err := drain(c)
	evalDur := time.Since(start)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: c.schema, Rows: rows}
	if o.Enabled() {
		o.Count("engine_rows_scanned_total", ctx.stats.scanned)
		o.Count("engine_rows_emitted_total", int64(len(rows)))
		o.Count("engine_predicates_pushed_total", int64(rst.pushed))
		o.Count("engine_topk_fused_total", int64(rst.topk))
		o.Count("engine_morsels_total", ctx.stats.morsels)
		o.Count("engine_parallel_pipelines_total", ctx.stats.pipelines)
		o.Gauge("engine_workers", float64(workers))
		o.Emit(obs.StageQueryEval, -1, start, evalDur,
			obs.Str("plan", Shape(plan)), obs.Str("rewritten", Shape(rewritten)),
			obs.Int("rows", len(rows)), obs.Int("scanned", int(ctx.stats.scanned)),
			obs.Int("pushed", rst.pushed))
		for _, op := range ctx.ops {
			o.Emit(obs.StageQueryOperator, -1, start, op.dur,
				obs.Str("op", op.label), obs.Int("rows", int(op.rows)))
		}
		pstart := time.Now()
		vars := res.UniqueVars()
		maxTerm := res.MaxTermSize()
		o.Emit(obs.StageProvenance, -1, pstart, time.Since(pstart),
			obs.Int("exprs", len(rows)), obs.Int("vars", len(vars)),
			obs.Int("max_term", maxTerm))
	}
	return res, nil
}

// drain opens the compiled iterator tree and collects every row, cloning
// scratch-backed tuples so the materialized Result owns its memory.
func drain(c compiled) ([]Row, error) {
	if err := c.it.Open(); err != nil {
		return nil, err
	}
	defer c.it.Close()
	var rows []Row
	for {
		r, ok, err := c.it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		if !c.stable {
			r.Tuple = cloneTuple(r.Tuple)
		}
		rows = append(rows, r)
	}
}

// RunWorld evaluates plan over a plain database under standard set
// semantics and returns the set of output tuple keys. Experiments use it to
// compute the ground-truth answer Q(D_val*) independently of provenance,
// which is how the resolution-correctness invariant is checked end to end.
// Like Run it executes on the serial streaming path.
func RunWorld(db *table.Database, plan Node) (map[string]table.Tuple, error) {
	res, err := runStream(worldSource{db}, plan, Exec{Workers: 1})
	if err != nil {
		return nil, err
	}
	out := make(map[string]table.Tuple, len(res.Rows))
	for _, r := range res.Rows {
		out[r.Tuple.Key()] = r.Tuple
	}
	return out, nil
}

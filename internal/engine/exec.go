package engine

import (
	"sort"
	"strings"
	"time"

	"qres/internal/boolexpr"
	"qres/internal/obs"
	"qres/internal/table"
	"qres/internal/uncertain"
)

// Result is a materialized annotated query answer Q(D̄): the output schema,
// and one Row per output tuple carrying its provenance expression. The set
// of provenance expressions is the paper's Φ(Q, D̄).
type Result struct {
	Columns []OutCol
	Rows    []Row
}

// Provenance returns the provenance expression set Φ, aligned with Rows.
func (r *Result) Provenance() []boolexpr.Expr {
	out := make([]boolexpr.Expr, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.Prov
	}
	return out
}

// UniqueVars returns the distinct variables occurring in the result's
// provenance, in ascending order — the candidate probes of the resolution
// problem, and the "# Unique variables" statistic of the paper's Table 3.
func (r *Result) UniqueVars() []boolexpr.Var {
	seen := make(map[boolexpr.Var]struct{})
	for _, row := range r.Rows {
		for _, v := range row.Prov.Vars() {
			seen[v] = struct{}{}
		}
	}
	out := make([]boolexpr.Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxTermSize returns the k of the k-DNF provenance: the largest term size
// across all rows (the "Term Size" statistic of Table 3).
func (r *Result) MaxTermSize() int {
	k := 0
	for _, row := range r.Rows {
		if s := row.Prov.MaxTermSize(); s > k {
			k = s
		}
	}
	return k
}

// Header renders the column names, comma-separated.
func (r *Result) Header() string {
	parts := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		parts[i] = c.String()
	}
	return strings.Join(parts, ", ")
}

// uncertainSource adapts an uncertain database: the provenance of a tuple
// is its Boolean variable.
type uncertainSource struct{ db *uncertain.DB }

func (s uncertainSource) Relation(name string) (*table.Relation, bool) {
	return s.db.Data().Relation(name)
}

func (s uncertainSource) Prov(relation string, idx int) boolexpr.Expr {
	v, ok := s.db.VarFor(relation, idx)
	if !ok {
		return boolexpr.False()
	}
	return boolexpr.Lit(v)
}

// worldSource adapts a plain relational database (a possible world): every
// tuple is certainly present, so its provenance is the constant True.
type worldSource struct{ db *table.Database }

func (s worldSource) Relation(name string) (*table.Relation, bool) {
	return s.db.Relation(name)
}

func (s worldSource) Prov(string, int) boolexpr.Expr { return boolexpr.True() }

// Run evaluates plan over the uncertain database with provenance tracking
// (Step 2 of the framework). Each output row's expression is True under a
// valuation iff the row belongs to the query answer on that possible world.
func Run(db *uncertain.DB, plan Node) (*Result, error) {
	return RunObserved(db, plan, nil)
}

// RunObserved is Run with instrumentation: when o is enabled it emits a
// query_eval span covering plan execution (annotated with the plan shape
// and output cardinality) and a provenance span summarizing the constructed
// annotations (expression count, unique variables, maximum term size).
func RunObserved(db *uncertain.DB, plan Node, o *obs.Obs) (*Result, error) {
	start := time.Now()
	schema, rows, err := plan.exec(uncertainSource{db})
	evalDur := time.Since(start)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: schema, Rows: rows}
	if o.Enabled() {
		o.Emit(obs.StageQueryEval, -1, start, evalDur,
			obs.Str("plan", Shape(plan)), obs.Int("rows", len(rows)))
		pstart := time.Now()
		vars := res.UniqueVars()
		maxTerm := res.MaxTermSize()
		o.Emit(obs.StageProvenance, -1, pstart, time.Since(pstart),
			obs.Int("exprs", len(rows)), obs.Int("vars", len(vars)),
			obs.Int("max_term", maxTerm))
	}
	return res, nil
}

// RunWorld evaluates plan over a plain database under standard set
// semantics and returns the set of output tuple keys. Experiments use it to
// compute the ground-truth answer Q(D_val*) independently of provenance,
// which is how the resolution-correctness invariant is checked end to end.
func RunWorld(db *table.Database, plan Node) (map[string]table.Tuple, error) {
	_, rows, err := plan.exec(worldSource{db})
	if err != nil {
		return nil, err
	}
	out := make(map[string]table.Tuple, len(rows))
	for _, r := range rows {
		out[r.Tuple.Key()] = r.Tuple
	}
	return out, nil
}

package engine_test

import (
	"math/rand"
	"strings"
	"testing"

	"qres/internal/boolexpr"
	"qres/internal/engine"
	"qres/internal/table"
	"qres/internal/testdb"
	"qres/internal/uncertain"
)

// TestPaperTable2Provenance reproduces the paper's Table 2 exactly: the
// four output tuples of the Figure 2 query over the Table 1 database, with
// their provenance expressions.
func TestPaperTable2Provenance(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d output tuples, want 4", len(res.Rows))
	}

	v := func(rel string, i int) boolexpr.Var {
		vv, ok := udb.VarFor(rel, i)
		if !ok {
			t.Fatalf("VarFor(%s,%d) failed", rel, i)
		}
		return vv
	}
	a0, a1 := v("Acquisitions", 0), v("Acquisitions", 1)
	r0, r1, r2, r3, r4 := v("Roles", 0), v("Roles", 1), v("Roles", 2), v("Roles", 3), v("Roles", 4)
	e0, e1, e2, e3, e4 := v("Education", 0), v("Education", 1), v("Education", 2), v("Education", 3), v("Education", 4)

	want := map[string]boolexpr.Expr{
		"A2Bdone|U. Melbourne": boolexpr.NewExpr(
			boolexpr.NewTerm(a0, r0, e0), boolexpr.NewTerm(a0, r1, e1), boolexpr.NewTerm(a0, r2, e3)),
		"A2Bdone|U. Sau Paolo":   boolexpr.NewExpr(boolexpr.NewTerm(a0, r2, e2)),
		"microBarg|U. Melbourne": boolexpr.NewExpr(boolexpr.NewTerm(a1, r3, e3)),
		"microBarg|U. Sau Paolo": boolexpr.NewExpr(
			boolexpr.NewTerm(a1, r3, e2), boolexpr.NewTerm(a1, r4, e4)),
	}

	got := make(map[string]boolexpr.Expr)
	for _, row := range res.Rows {
		key := row.Tuple[0].AsString() + "|" + row.Tuple[1].AsString()
		got[key] = row.Prov
	}
	for key, wexp := range want {
		gexp, ok := got[key]
		if !ok {
			t.Errorf("missing output tuple %q", key)
			continue
		}
		if !gexp.Equal(wexp) {
			t.Errorf("%q: provenance = %v, want %v",
				key, gexp.Format(udb.Registry()), wexp.Format(udb.Registry()))
		}
	}
	if res.MaxTermSize() != 3 {
		t.Errorf("MaxTermSize = %d, want 3 (3-DNF)", res.MaxTermSize())
	}
	if n := len(res.UniqueVars()); n != 12 { // a0,a1 + r0..r4 + e0..e4
		t.Errorf("UniqueVars = %d, want 12", n)
	}
}

// Example 2.3: a0 = a1 = False must falsify all four expressions, and
// a0 = r0 = e0 = True must verify the first output tuple.
func TestPaperExample23(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	a0, _ := udb.VarFor("Acquisitions", 0)
	a1, _ := udb.VarFor("Acquisitions", 1)

	val := boolexpr.NewValuation()
	val.Set(a0, false)
	val.Set(a1, false)
	for _, row := range res.Rows {
		if !row.Prov.Simplify(val).IsFalse() {
			t.Errorf("a0=a1=False should falsify %v", row.Prov.Format(udb.Registry()))
		}
	}

	r0, _ := udb.VarFor("Roles", 0)
	e0, _ := udb.VarFor("Education", 0)
	val2 := boolexpr.NewValuation()
	val2.Set(a0, true)
	val2.Set(r0, true)
	val2.Set(e0, true)
	verified := 0
	for _, row := range res.Rows {
		if row.Prov.Simplify(val2).IsTrue() {
			verified++
		}
	}
	if verified != 1 {
		t.Errorf("a0=r0=e0=True should verify exactly the first tuple, got %d", verified)
	}
}

// The fundamental provenance property (paper Section 2.3): for any
// valuation val, Q(D_val) = { t in Q(D) : val satisfies prov(t) }.
func TestProvenanceSemanticsProperty(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	plan := testdb.PaperQuery()
	res, err := engine.Run(udb, plan)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		val := boolexpr.NewValuation()
		for _, v := range udb.AllVars() {
			val.Set(v, rng.Intn(2) == 0)
		}
		world := udb.PossibleWorld(val)
		truth, err := engine.RunWorld(world, plan)
		if err != nil {
			t.Fatal(err)
		}
		// Every annotated row's expression must agree with membership in
		// the world's answer.
		fromProv := make(map[string]bool)
		for _, row := range res.Rows {
			if row.Prov.Eval(val) {
				fromProv[row.Tuple.Key()] = true
			}
		}
		if len(fromProv) != len(truth) {
			t.Fatalf("trial %d: provenance says %d answers, world says %d", trial, len(fromProv), len(truth))
		}
		for key := range truth {
			if !fromProv[key] {
				t.Fatalf("trial %d: tuple in world answer but provenance false", trial)
			}
		}
	}
}

func newTestDB(t *testing.T, relations map[string][][]table.Value, schemas map[string]*table.Schema) *uncertain.DB {
	t.Helper()
	db := table.NewDatabase()
	for name, schema := range schemas {
		rel := table.NewRelation(name, schema)
		for _, row := range relations[name] {
			rel.MustAppend(table.Tuple(row), nil)
		}
		db.MustAdd(rel)
	}
	return uncertain.New(db)
}

func TestScanUnknownRelation(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	if _, err := engine.Run(udb, engine.Scan("missing", "m")); err == nil {
		t.Fatal("scan of unknown relation should fail")
	}
}

func TestSelectPredicates(t *testing.T) {
	udb := newTestDB(t,
		map[string][][]table.Value{
			"r": {
				{table.Int(1), table.String_("alpha")},
				{table.Int(2), table.String_("beta")},
				{table.Int(3), table.Null()},
			},
		},
		map[string]*table.Schema{
			"r": table.NewSchema(
				table.Column{Name: "id", Kind: table.KindInt},
				table.Column{Name: "name", Kind: table.KindString},
			),
		})

	cases := []struct {
		name string
		pred engine.Predicate
		want int
	}{
		{"eq", engine.Cmp(engine.Col("", "id"), engine.OpEq, engine.Const(table.Int(2))), 1},
		{"ne", engine.Cmp(engine.Col("", "id"), engine.OpNe, engine.Const(table.Int(2))), 2},
		{"lt", engine.Cmp(engine.Col("", "id"), engine.OpLt, engine.Const(table.Int(3))), 2},
		{"ge", engine.Cmp(engine.Col("", "id"), engine.OpGe, engine.Const(table.Int(2))), 2},
		{"like", engine.Like(engine.Col("", "name"), "%a"), 2}, // alpha, beta; NULL never matches
		{"in", engine.In(engine.Col("", "id"), table.Int(1), table.Int(3)), 2},
		{"notnull", engine.IsNotNull(engine.Col("", "name")), 2},
		{"not", engine.Not(engine.Cmp(engine.Col("", "id"), engine.OpEq, engine.Const(table.Int(1)))), 2},
		{"and-empty", engine.And(), 3},
		{"or-empty", engine.Or(), 0},
		{"or", engine.Or(
			engine.Cmp(engine.Col("", "id"), engine.OpEq, engine.Const(table.Int(1))),
			engine.Cmp(engine.Col("", "id"), engine.OpEq, engine.Const(table.Int(3))),
		), 2},
		// NULL comparisons never match, even negated.
		{"null-cmp", engine.Cmp(engine.Col("", "name"), engine.OpNe, engine.Const(table.String_("zzz"))), 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := engine.Run(udb, engine.Select(engine.Scan("r", ""), c.pred))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != c.want {
				t.Fatalf("got %d rows, want %d", len(res.Rows), c.want)
			}
		})
	}
}

func TestPredicateBindErrors(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	base := engine.Scan("Acquisitions", "a")
	bad := []engine.Node{
		// Unknown column.
		engine.Select(base, engine.Cmp(engine.Col("a", "nope"), engine.OpEq, engine.Const(table.Int(1)))),
		// Kind mismatch string vs int.
		engine.Select(base, engine.Cmp(engine.Col("a", "Acquired"), engine.OpLt, engine.Const(table.Int(1)))),
		// LIKE on a date.
		engine.Select(base, engine.Like(engine.Col("a", "Date"), "%x%")),
		// year() of a string.
		engine.Select(base, engine.Cmp(engine.Year(engine.Col("a", "Acquired")), engine.OpEq, engine.Const(table.Int(2020)))),
		// Ambiguous unqualified reference across a self-join.
		engine.Select(
			engine.Join(engine.Scan("Acquisitions", "x"), engine.Scan("Acquisitions", "y"),
				engine.Cmp(engine.Col("x", "Acquired"), engine.OpEq, engine.Col("y", "Acquiring"))),
			engine.Cmp(engine.Col("", "Date"), engine.OpGe, engine.Const(table.Date(2017, 1, 1)))),
	}
	for i, plan := range bad {
		if _, err := engine.Run(udb, plan); err == nil {
			t.Errorf("plan %d: expected bind error", i)
		}
	}
}

func TestJoinHashAndThetaAgree(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	// Equi-join (hash path).
	hash := engine.Join(
		engine.Scan("Acquisitions", "a"), engine.Scan("Roles", "r"),
		engine.Cmp(engine.Col("a", "Acquired"), engine.OpEq, engine.Col("r", "Organization")))
	// The same join forced through the theta path by wrapping the
	// condition so the equi-extractor cannot see a bare col=col.
	theta := engine.Join(
		engine.Scan("Acquisitions", "a"), engine.Scan("Roles", "r"),
		engine.Not(engine.Cmp(engine.Col("a", "Acquired"), engine.OpNe, engine.Col("r", "Organization"))))

	rh, err := engine.Run(udb, hash)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := engine.Run(udb, theta)
	if err != nil {
		t.Fatal(err)
	}
	if len(rh.Rows) != len(rt.Rows) {
		t.Fatalf("hash join %d rows, theta join %d rows", len(rh.Rows), len(rt.Rows))
	}
	keys := func(rows []engine.Row) map[string]string {
		m := make(map[string]string)
		for _, r := range rows {
			m[r.Tuple.Key()] = r.Prov.String()
		}
		return m
	}
	kh, kt := keys(rh.Rows), keys(rt.Rows)
	for k, p := range kh {
		if kt[k] != p {
			t.Fatalf("provenance mismatch between join paths: %q vs %q", p, kt[k])
		}
	}
}

func TestJoinMixedResidual(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	// Equality plus an inequality residual in one condition.
	plan := engine.Join(
		engine.Scan("Acquisitions", "a"), engine.Scan("Roles", "r"),
		engine.And(
			engine.Cmp(engine.Col("a", "Acquired"), engine.OpEq, engine.Col("r", "Organization")),
			engine.Like(engine.Col("r", "Role"), "%found%"),
		))
	res, err := engine.Run(udb, plan)
	if err != nil {
		t.Fatal(err)
	}
	// A2Bdone matches roles 0,1,2; microBarg matches roles 3,4 (CTO
	// filtered out by the residual LIKE).
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(res.Rows))
	}
	// Join provenance is the conjunction of the inputs' variables.
	for _, row := range res.Rows {
		if row.Prov.NumTerms() != 1 || len(row.Prov.Terms()[0]) != 2 {
			t.Fatalf("join provenance should be a 2-variable conjunction, got %v", row.Prov)
		}
	}
}

func TestProjectWithoutDistinctKeepsDuplicates(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	plan := engine.Project(engine.Scan("Roles", "r"), false, engine.Col("r", "Organization"))
	res, err := engine.Run(udb, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("bag projection: got %d rows, want 6", len(res.Rows))
	}

	distinct := engine.Project(engine.Scan("Roles", "r"), true, engine.Col("r", "Organization"))
	res2, err := engine.Run(udb, distinct)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 2 {
		t.Fatalf("distinct projection: got %d rows, want 2", len(res2.Rows))
	}
	// Merged provenance: disjunction of the three A2Bdone role variables.
	for _, row := range res2.Rows {
		if row.Tuple[0].AsString() == "A2Bdone" && row.Prov.NumTerms() != 3 {
			t.Fatalf("A2Bdone provenance = %v, want 3 single-var terms", row.Prov)
		}
	}
}

func TestUnion(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	left := engine.Project(engine.Scan("Roles", "r"), true, engine.Col("r", "Member"))
	right := engine.Project(engine.Scan("Education", "e"), true, engine.Col("e", "Alumni"))
	res, err := engine.Run(udb, engine.Union(left, right))
	if err != nil {
		t.Fatal(err)
	}
	// Five distinct people on each side (Nana Alvi repeats), fully
	// overlapping.
	if len(res.Rows) != 5 {
		t.Fatalf("union: got %d rows, want 5", len(res.Rows))
	}
	// Overlapping rows' provenance is the disjunction across branches:
	// Nana Alvi appears in two Roles tuples and two Education tuples.
	for _, row := range res.Rows {
		if row.Tuple[0].AsString() == "Nana Alvi" {
			if row.Prov.NumTerms() != 4 {
				t.Fatalf("Nana Alvi provenance = %v, want 4 terms", row.Prov)
			}
		}
	}
	// Column names come from the first input.
	if res.Columns[0].Name != "Member" {
		t.Errorf("union column name = %q", res.Columns[0].Name)
	}
}

func TestUnionErrors(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	if _, err := engine.Run(udb, engine.Union()); err == nil {
		t.Error("empty union should fail")
	}
	// Arity mismatch.
	bad := engine.Union(
		engine.Project(engine.Scan("Roles", "r"), true, engine.Col("r", "Member")),
		engine.Project(engine.Scan("Roles", "r"), true, engine.Col("r", "Member"), engine.Col("r", "Role")),
	)
	if _, err := engine.Run(udb, bad); err == nil {
		t.Error("arity mismatch should fail")
	}
	// Kind mismatch string vs int.
	bad2 := engine.Union(
		engine.Project(engine.Scan("Roles", "r"), true, engine.Col("r", "Member")),
		engine.Project(engine.Scan("Education", "e"), true, engine.Col("e", "Year")),
	)
	if _, err := engine.Run(udb, bad2); err == nil {
		t.Error("kind mismatch should fail")
	}
}

func TestSelfJoinQualifiers(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	// Companies that acquired a company that itself acquired something:
	// x.Acquiring = y.Acquired. microBarg acquired Optobest and was
	// acquired by Fiffer → one match.
	plan := engine.Project(
		engine.Join(engine.Scan("Acquisitions", "x"), engine.Scan("Acquisitions", "y"),
			engine.Cmp(engine.Col("x", "Acquired"), engine.OpEq, engine.Col("y", "Acquiring"))),
		true, engine.Col("x", "Acquiring"), engine.Col("x", "Acquired"))
	res, err := engine.Run(udb, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
	if got := res.Rows[0].Tuple[0].AsString(); got != "Fiffer" {
		t.Errorf("acquirer = %q, want Fiffer", got)
	}
	// Self-join provenance: conjunction of two distinct variables.
	if row := res.Rows[0]; row.Prov.NumTerms() != 1 || len(row.Prov.Terms()[0]) != 2 {
		t.Errorf("provenance = %v", res.Rows[0].Prov)
	}
}

func TestPlanStrings(t *testing.T) {
	plan := testdb.PaperQuery()
	s := plan.String()
	for _, want := range []string{"Project(DISTINCT", "Join", "Scan(Acquisitions AS a)", "LIKE '%found%'"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string missing %q: %s", want, s)
		}
	}
}

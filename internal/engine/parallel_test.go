package engine_test

import (
	"fmt"
	"math/rand"
	"testing"

	"qres/internal/engine"
	"qres/internal/obs"
	"qres/internal/table"
	"qres/internal/uncertain"
)

// propDB builds the uncertain database the randomized-plan property test
// runs against: three relations sharing column names (so random equi-joins
// bind), with NULL keys, duplicate keys, and enough rows to split into
// many morsels at the test morsel size.
func propDB(t *testing.T) *uncertain.DB {
	t.Helper()
	db := table.NewDatabase()
	col := func(name string, kind table.Kind) table.Column {
		return table.Column{Name: name, Kind: kind}
	}
	rng := rand.New(rand.NewSource(17))

	a := table.NewRelation("A", table.NewSchema(
		col("k", table.KindInt), col("g", table.KindInt), col("s", table.KindString)))
	for i := 0; i < 300; i++ {
		k := table.Int(int64(rng.Intn(40)))
		if rng.Intn(20) == 0 {
			k = table.Null() // NULL keys never join
		}
		a.MustAppend(table.Tuple{
			k,
			table.Int(int64(rng.Intn(6))),
			table.String_(fmt.Sprintf("a%d", rng.Intn(10))),
		}, nil)
	}
	db.MustAdd(a)

	b := table.NewRelation("B", table.NewSchema(
		col("k", table.KindInt), col("w", table.KindString)))
	for i := 0; i < 90; i++ {
		b.MustAppend(table.Tuple{
			table.Int(int64(rng.Intn(40))),
			table.String_(fmt.Sprintf("w%d", rng.Intn(7))),
		}, nil)
	}
	db.MustAdd(b)

	c := table.NewRelation("C", table.NewSchema(
		col("g", table.KindInt), col("c", table.KindString)))
	for i := 0; i < 25; i++ {
		c.MustAppend(table.Tuple{
			table.Int(int64(rng.Intn(6))),
			table.String_(fmt.Sprintf("c%d", rng.Intn(5))),
		}, nil)
	}
	db.MustAdd(c)

	return uncertain.New(db)
}

// planGen generates random plans over the property database. Every plan
// tracks its output columns (qualifier, name) so selections, projections
// and joins always bind; error-path fidelity has its own test.
type planGen struct {
	rng   *rand.Rand
	alias int
}

// genCol is one column of a generated plan's output schema.
type genCol struct {
	qual, name string
	intKind    bool
}

func (g *planGen) nextAlias() string {
	g.alias++
	return fmt.Sprintf("t%d", g.alias)
}

// unambiguousCols filters cols to those a Col reference resolves uniquely:
// qualified columns (aliases are unique) and unqualified names occurring
// once. Projection and union outputs are unqualified, so joining them can
// otherwise make references ambiguous — a legitimate bind error, but the
// property test wants plans that run.
func unambiguousCols(cols []genCol) []genCol {
	count := map[string]int{}
	for _, c := range cols {
		count[c.name]++
	}
	var out []genCol
	for _, c := range cols {
		if c.qual != "" || count[c.name] == 1 {
			out = append(out, c)
		}
	}
	return out
}

// firstInt returns the first int-kinded column, if any.
func firstInt(cols []genCol) (genCol, bool) {
	for _, c := range cols {
		if c.intKind {
			return c, true
		}
	}
	return genCol{}, false
}

// genScan picks a base relation under a fresh alias.
func (g *planGen) genScan() (engine.Node, []genCol) {
	al := g.nextAlias()
	switch g.rng.Intn(3) {
	case 0:
		return engine.Scan("A", al), []genCol{
			{al, "k", true}, {al, "g", true}, {al, "s", false}}
	case 1:
		return engine.Scan("B", al), []genCol{{al, "k", true}, {al, "w", false}}
	default:
		return engine.Scan("C", al), []genCol{{al, "g", true}, {al, "c", false}}
	}
}

// genPred builds a random predicate over the unambiguous columns of cand:
// a column/constant or column/column comparison.
func (g *planGen) genPred(cand []genCol) engine.Predicate {
	ops := []engine.CmpOp{engine.OpEq, engine.OpNe, engine.OpLt, engine.OpLe, engine.OpGt, engine.OpGe}
	op := ops[g.rng.Intn(len(ops))]
	c := cand[g.rng.Intn(len(cand))]
	if g.rng.Intn(3) == 0 {
		// column-vs-column of matching kind, if one exists
		for _, other := range cand {
			if other != c && other.intKind == c.intKind {
				return engine.Cmp(engine.Col(c.qual, c.name), op, engine.Col(other.qual, other.name))
			}
		}
	}
	var konst engine.Scalar
	if c.intKind {
		konst = engine.Const(table.Int(int64(g.rng.Intn(40))))
	} else {
		konst = engine.Const(table.String_(fmt.Sprintf("a%d", g.rng.Intn(10))))
	}
	return engine.Cmp(engine.Col(c.qual, c.name), op, konst)
}

// genJoin joins two generated subtrees on a shared column name (k or g)
// when both sides expose one unambiguously, falling back to a theta join
// on int columns, or to the bare left subtree when no unambiguous pair
// exists.
func (g *planGen) genJoin(depth int) (engine.Node, []genCol) {
	l, lc := g.gen(depth - 1)
	r, rc := g.gen(depth - 1)
	out := append(append([]genCol{}, lc...), rc...)
	// Join predicates bind against the concatenated schema, so candidates
	// must be unambiguous in the combined column set.
	cand := unambiguousCols(out)
	pick := func(side []genCol, name string) (genCol, bool) {
		for _, c := range cand {
			if c.name != name {
				continue
			}
			for _, s := range side {
				if s == c {
					return c, true
				}
			}
		}
		return genCol{}, false
	}
	for _, name := range []string{"k", "g"} {
		la, lok := pick(lc, name)
		ra, rok := pick(rc, name)
		if lok && rok {
			on := engine.Cmp(engine.Col(la.qual, la.name), engine.OpEq, engine.Col(ra.qual, ra.name))
			return engine.Join(l, r, on), out
		}
	}
	// No shared key: theta join on any unambiguous int column pair.
	var lcand, rcand []genCol
	for _, c := range cand {
		for _, s := range lc {
			if s == c {
				lcand = append(lcand, c)
			}
		}
		for _, s := range rc {
			if s == c {
				rcand = append(rcand, c)
			}
		}
	}
	li, lok := firstInt(lcand)
	ri, rok := firstInt(rcand)
	if !lok || !rok {
		return l, lc
	}
	on := engine.Cmp(engine.Col(li.qual, li.name), engine.OpLt, engine.Col(ri.qual, ri.name))
	return engine.Join(l, r, on), out
}

// gen produces one random subtree of the given maximum operator depth.
func (g *planGen) gen(depth int) (engine.Node, []genCol) {
	if depth <= 0 {
		return g.genScan()
	}
	switch g.rng.Intn(6) {
	case 0:
		return g.genScan()
	case 1:
		in, cols := g.gen(depth - 1)
		cand := unambiguousCols(cols)
		if len(cand) == 0 {
			return in, cols
		}
		return engine.Select(in, g.genPred(cand)), cols
	case 2:
		return g.genJoin(depth)
	case 3:
		in, cols := g.gen(depth - 1)
		cand := unambiguousCols(cols)
		if len(cand) == 0 {
			return in, cols
		}
		n := 1 + g.rng.Intn(len(cand))
		perm := g.rng.Perm(len(cand))[:n]
		scalars := make([]engine.Scalar, n)
		out := make([]genCol, n)
		for i, p := range perm {
			scalars[i] = engine.Col(cand[p].qual, cand[p].name)
			out[i] = genCol{"", cand[p].name, cand[p].intKind}
		}
		return engine.Project(in, g.rng.Intn(2) == 0, scalars...), out
	case 4:
		// UNION of two single-int-column projections, so arity and kinds
		// always line up.
		l, lc := g.gen(depth - 1)
		r, rc := g.gen(depth - 1)
		li, lok := firstInt(unambiguousCols(lc))
		ri, rok := firstInt(unambiguousCols(rc))
		if !lok || !rok {
			return l, lc
		}
		u := engine.Union(
			engine.Project(l, false, engine.Col(li.qual, li.name)),
			engine.Project(r, false, engine.Col(ri.qual, ri.name)))
		return u, []genCol{{"", li.name, true}}
	default:
		in, cols := g.gen(depth - 1)
		cand := unambiguousCols(cols)
		if len(cand) == 0 {
			return in, cols
		}
		c := cand[g.rng.Intn(len(cand))]
		sorted := engine.Sort(in, engine.SortKey{
			By: engine.Col(c.qual, c.name), Desc: g.rng.Intn(2) == 0})
		switch g.rng.Intn(3) {
		case 0:
			return sorted, cols
		case 1:
			return engine.Limit(sorted, g.rng.Intn(30)-1), cols // includes -1 and 0
		default:
			return engine.Limit(in, g.rng.Intn(30)-1), cols
		}
	}
}

// TestParallelRandomPlans is the randomized-plan property test of the
// morsel-parallel executor: a seeded generator emits plans over scans,
// selections, joins, unions, distinct projections, sorts and limits, and
// every plan must produce bit-identical results — columns, row order,
// tuples, provenance — on the materializing reference, the serial
// streaming executor, and the parallel executor at 2, 4 and 8 workers
// (morsel size 8, so even the 25-row relation splits into multiple
// morsels).
func TestParallelRandomPlans(t *testing.T) {
	udb := propDB(t)
	g := &planGen{rng: rand.New(rand.NewSource(11))}
	for i := 0; i < 60; i++ {
		plan, _ := g.gen(3)
		name := fmt.Sprintf("plan%02d_%s", i, engine.Shape(plan))
		if len(name) > 120 {
			name = name[:120]
		}
		t.Run(name, func(t *testing.T) {
			want, err := engine.RunReference(udb, plan)
			if err != nil {
				t.Fatalf("reference failed on generated plan: %v", err)
			}
			for _, w := range []int{1, 2, 4, 8} {
				got, err := engine.RunWith(udb, plan, engine.Exec{Workers: w, MorselSize: 8})
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if wh, gh := want.Header(), got.Header(); wh != gh {
					t.Fatalf("workers=%d column mismatch: %q vs %q", w, wh, gh)
				}
				if len(want.Rows) != len(got.Rows) {
					t.Fatalf("workers=%d row count mismatch: %d vs %d", w, len(want.Rows), len(got.Rows))
				}
				for r := range want.Rows {
					if wk, gk := want.Rows[r].Tuple.Key(), got.Rows[r].Tuple.Key(); wk != gk {
						t.Fatalf("workers=%d row %d tuple mismatch: %s vs %s",
							w, r, want.Rows[r].Tuple, got.Rows[r].Tuple)
					}
					if !want.Rows[r].Prov.Equal(got.Rows[r].Prov) {
						t.Fatalf("workers=%d row %d provenance mismatch: %s vs %s",
							w, r, want.Rows[r].Prov, got.Rows[r].Prov)
					}
				}
			}
		})
	}
}

// TestParallelWorkerDefaults pins the Exec.Workers contract: 0 resolves to
// one worker per CPU and still matches the serial result.
func TestParallelWorkerDefaults(t *testing.T) {
	udb := propDB(t)
	plan := engine.Join(engine.Scan("A", "a"), engine.Scan("B", "b"),
		engine.Cmp(engine.Col("a", "k"), engine.OpEq, engine.Col("b", "k")))
	want, err := engine.Run(udb, plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := engine.RunWith(udb, plan, engine.Exec{MorselSize: 8}) // Workers: 0
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("row count mismatch: %d vs %d", len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		if want.Rows[i].Tuple.Key() != got.Rows[i].Tuple.Key() {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

// TestParallelObservability checks the parallel executor's instrumentation:
// with a metrics registry attached, a fanned-out run must report the morsels
// it claimed, the pipelines it built, and the resolved worker count, on top
// of the serial scan counters.
func TestParallelObservability(t *testing.T) {
	udb := propDB(t)
	plan := engine.Join(engine.Scan("A", "a"), engine.Scan("B", "b"),
		engine.Cmp(engine.Col("a", "k"), engine.OpEq, engine.Col("b", "k")))
	reg := obs.NewRegistry()
	o := obs.New("test", nil, reg)
	if _, err := engine.RunWith(udb, plan, engine.Exec{Workers: 4, MorselSize: 8, Obs: o}); err != nil {
		t.Fatal(err)
	}
	counter := func(name string) int64 { return reg.Counter(name, "test").Value() }
	// A has 300 rows: at morsel size 8 the probe-side scan splits into
	// ceil(300/8) = 38 morsels, all of which must be claimed and merged.
	if got := counter("engine_morsels_total"); got != 38 {
		t.Errorf("engine_morsels_total = %d, want 38", got)
	}
	if got := counter("engine_parallel_pipelines_total"); got != 1 {
		t.Errorf("engine_parallel_pipelines_total = %d, want 1", got)
	}
	if got := reg.Gauge("engine_workers", "test").Value(); got != 4 {
		t.Errorf("engine_workers gauge = %v, want 4", got)
	}
	if got := counter("engine_rows_scanned_total"); got == 0 {
		t.Error("engine_rows_scanned_total not incremented on the parallel path")
	}
}

package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"qres/internal/boolexpr"
	"qres/internal/table"
)

// This file implements morsel-driven parallel execution of pipeline
// fragments. A fragment is the probe-side spine of a plan subtree —
// scan → fused selections → projection → probe side of joins — whose only
// base-relation driver is its leftmost scan. The driver relation is split
// into fixed-size morsels (contiguous row ranges); a pool of workers claims
// morsels from a shared counter, runs its own private copy of the fragment
// over each claimed range, and an ordered-merge exchange emits the morsel
// outputs strictly in morsel order.
//
// Determinism argument. The serial streaming executor emits the fragment's
// rows in driver-scan order. Morsels partition the driver into contiguous
// ranges, each worker preserves intra-morsel order (its fragment is the
// same operator chain the serial compiler would build), and the exchange
// concatenates morsel buffers in morsel index order — so the merged stream
// is the serial stream, row for row. Join build sides are drained once,
// serially, in the same order the serial build would see, and bucket lists
// store build-row indices in ascending order, so every probe emits matches
// in serial build order and every provenance conjunction is constructed
// from identical operands in an identical order. Results — columns, tuple
// order, and provenance expressions — are therefore bit-identical to the
// serial streaming executor for any worker count and any morsel size.
//
// Pipeline breakers (sort, top-k, duplicate elimination, union merge) and
// Limit run serially above the exchange; only the per-row fragment below
// them fans out.

// defaultMorselSize is the number of driver-relation rows per morsel when
// Exec.MorselSize is unset. Fragments over relations that do not fill at
// least two morsels run serially — the pool overhead would dominate.
const defaultMorselSize = 1024

// compileInput compiles a plan subtree that feeds a pipeline breaker (or
// the executor's root drain), fanning its pipeline fragment out across the
// worker pool when the compilation is parallel and the subtree qualifies.
// Any fragment that does not qualify — or whose compilation fails — falls
// back to the serial compiler, which also surfaces binding errors exactly
// as the serial path would.
func compileInput(n Node, ctx *compileCtx) (compiled, error) {
	if c, ok := tryExchange(n, ctx); ok {
		return c, nil
	}
	return compile(n, ctx)
}

// fragmentEligible reports whether n is a parallelizable pipeline
// fragment: a spine of scans, selections, non-distinct projections and
// join probe sides. Joins only need their left (probe) input on the spine;
// the right input becomes a shared build and may be any plan.
func fragmentEligible(n Node) bool {
	switch t := n.(type) {
	case *scanNode:
		return true
	case *selectNode:
		return fragmentEligible(t.input)
	case *projectNode:
		return !t.distinct && fragmentEligible(t.input)
	case *joinNode:
		return fragmentEligible(t.left)
	default:
		return false
	}
}

// driverRelation resolves the fragment's leftmost scan — the relation whose
// rows are partitioned into morsels.
func driverRelation(n Node, src Source) (*table.Relation, bool) {
	switch t := n.(type) {
	case *scanNode:
		return src.Relation(t.relation)
	case *selectNode:
		return driverRelation(t.input, src)
	case *projectNode:
		return driverRelation(t.input, src)
	case *joinNode:
		return driverRelation(t.left, src)
	}
	return nil, false
}

// tryExchange attempts to compile n as a parallel pipeline fragment behind
// an ordered-merge exchange. It declines (ok=false) when the compilation is
// serial or tracing (per-operator spans assume one iterator tree), when n
// is not a fragment, when the driver relation does not fill at least two
// morsels, or when any binding step fails — the caller then falls back to
// the serial compiler.
func tryExchange(n Node, ctx *compileCtx) (compiled, bool) {
	if ctx.workers < 2 || ctx.trace {
		return compiled{}, false
	}
	if !fragmentEligible(n) {
		return compiled{}, false
	}
	rel, ok := driverRelation(n, ctx.src)
	if !ok {
		return compiled{}, false
	}
	morsel := ctx.morsel
	if morsel <= 0 {
		morsel = defaultMorselSize
	}
	if rel.Len() <= morsel {
		return compiled{}, false
	}
	nMorsels := (rel.Len() + morsel - 1) / morsel
	workers := ctx.workers
	if workers > nMorsels {
		workers = nMorsels
	}
	sh := &exchShared{
		stats:    ctx.stats,
		relLen:   rel.Len(),
		morsel:   morsel,
		nMorsels: nMorsels,
		workers:  workers,
		builds:   make(map[*joinNode]*sharedBuild),
	}
	var schema outSchema
	for w := 0; w < workers; w++ {
		c, ms, err := compileFragment(n, ctx, sh)
		if err != nil {
			return compiled{}, false
		}
		sh.frags = append(sh.frags, &workerFrag{root: c.it, scan: ms, stable: c.stable})
		if w == 0 {
			schema = c.schema
		}
	}
	ctx.stats.pipelines++
	return compiled{schema: schema, it: &exchangeIter{sh: sh}, stable: true}, true
}

// compileFragment builds one worker's private instance of the fragment:
// its own iterators, scratch buffers and bound closures, sharing only the
// immutable base relations and the per-join shared build tables. Binding
// runs in the same order as the serial compiler (children before the
// operator's own expressions), so any error it can produce is exactly the
// error the serial fallback will surface.
func compileFragment(n Node, ctx *compileCtx, sh *exchShared) (compiled, *morselScanIter, error) {
	switch t := n.(type) {
	case *scanNode:
		rel, ok := ctx.src.Relation(t.relation)
		if !ok {
			return compiled{}, nil, fmt.Errorf("engine: unknown relation %q", t.relation)
		}
		alias := t.alias
		if alias == "" {
			alias = t.relation
		}
		schema := make(outSchema, rel.Schema().Len())
		for i, c := range rel.Schema().Columns() {
			schema[i] = OutCol{Qualifier: alias, Name: c.Name, Kind: c.Kind}
		}
		ms := &morselScanIter{rel: rel, prov: provFetcher(ctx.src, t.relation)}
		return compiled{schema: schema, it: ms, stable: true}, ms, nil

	case *selectNode:
		c, ms, err := compileFragment(t.input, ctx, sh)
		if err != nil {
			return compiled{}, nil, err
		}
		match, err := t.pred.bind(c.schema)
		if err != nil {
			return compiled{}, nil, err
		}
		// Same fusion as the serial compiler: filters run inside the scan,
		// before the provenance fetch.
		if sc, ok := c.it.(*morselScanIter); ok {
			sc.filters = append(sc.filters, match)
			return c, ms, nil
		}
		return compiled{schema: c.schema, it: &selIter{in: c.it, match: match}, stable: c.stable}, ms, nil

	case *projectNode:
		c, ms, err := compileFragment(t.input, ctx, sh)
		if err != nil {
			return compiled{}, nil, err
		}
		evals := make([]func(table.Tuple) table.Value, len(t.cols))
		out := make(outSchema, len(t.cols))
		for i, col := range t.cols {
			f, kind, err := col.bind(c.schema)
			if err != nil {
				return compiled{}, nil, err
			}
			evals[i] = f
			name := col.String()
			if cr, ok := col.(colRef); ok {
				name = cr.name
			}
			out[i] = OutCol{Name: name, Kind: kind}
		}
		it := &projectIter{in: c.it, evals: evals, scratch: make(table.Tuple, len(evals))}
		return compiled{schema: out, it: it, stable: false}, ms, nil

	case *joinNode:
		lc, ms, err := compileFragment(t.left, ctx, sh)
		if err != nil {
			return compiled{}, nil, err
		}
		sb := sh.builds[t]
		if sb == nil {
			// The build side compiles once, serially (no nested exchange:
			// it drains exactly once, before the workers launch).
			bctx := &compileCtx{src: ctx.src, stats: ctx.stats}
			rc, err := compile(t.right, bctx)
			if err != nil {
				return compiled{}, nil, err
			}
			equi, _ := splitEquiConds(t.on, lc.schema, rc.schema)
			sb = &sharedBuild{
				in:       rc.it,
				schema:   rc.schema,
				stable:   rc.stable,
				conds:    equi,
				sizeHint: estimateRows(t.right, ctx.src),
			}
			sh.builds[t] = sb
			sh.buildOrder = append(sh.buildOrder, sb)
		}
		schema := make(outSchema, 0, len(lc.schema)+len(sb.schema))
		schema = append(schema, lc.schema...)
		schema = append(schema, sb.schema...)
		equi, residual := splitEquiConds(t.on, lc.schema, sb.schema)
		var match func(table.Tuple) bool
		if residual != nil {
			match, err = residual.bind(schema)
			if err != nil {
				return compiled{}, nil, err
			}
		}
		scratch := make(table.Tuple, 0, len(schema))
		if len(equi) > 0 {
			it := &hashProbeIter{in: lc.it, build: sb, conds: equi, match: match, scratch: scratch}
			return compiled{schema: schema, it: it, stable: false}, ms, nil
		}
		it := &loopProbeIter{in: lc.it, build: sb, match: match, scratch: scratch}
		return compiled{schema: schema, it: it, stable: false}, ms, nil
	}
	return compiled{}, nil, fmt.Errorf("engine: node %T is not fragment-eligible", n)
}

// morselScanIter is the parallel counterpart of scanIter: it streams one
// contiguous row range [lo, hi) of the driver relation, with the same
// filter fusion (filters run before the provenance fetch). The range is
// re-pointed and the iterator re-opened for every morsel the owning worker
// claims. Scanned-row counts accumulate locally and are flushed atomically
// per morsel, keeping the hot loop free of shared-memory traffic.
type morselScanIter struct {
	rel     *table.Relation
	prov    func(i int) boolexpr.Expr
	filters []func(table.Tuple) bool
	lo, hi  int
	i       int
	scanned int64
}

// Open implements iter.
func (s *morselScanIter) Open() error {
	s.i = s.lo
	return nil
}

// Next implements iter.
func (s *morselScanIter) Next() (Row, bool, error) {
scan:
	for s.i < s.hi {
		i := s.i
		s.i++
		s.scanned++
		t := s.rel.At(i)
		for _, f := range s.filters {
			if !f(t) {
				continue scan
			}
		}
		return Row{Tuple: t, Prov: s.prov(i)}, true, nil
	}
	return Row{}, false, nil
}

// Close implements iter.
func (s *morselScanIter) Close() {}

// buildPart is one partition of a shared hash-join build table: the key
// index and bucket lists for the build rows whose key hash falls in this
// partition. Bucket lists hold global build-row indices in ascending
// order — exactly the order the serial build would probe them in.
type buildPart struct {
	index map[string]int32
	lists [][]int32
}

// sharedBuild materializes one join's build side once for all workers. The
// input drains serially (preserving the serial build's row order and
// NULL-key skips); the hash index is then constructed in parallel, one
// goroutine per key-hash partition, each inserting its rows in ascending
// global order. After run returns the structure is immutable and safe for
// concurrent probes.
type sharedBuild struct {
	in       iter
	schema   outSchema
	stable   bool
	conds    []equiCond // empty for theta (nested-loop) builds
	sizeHint int

	rows   []Row
	keyBuf []byte
	offs   []int32
	parts  []buildPart
	nparts uint64
	done   bool
}

// run drains the build input and constructs the partitioned index using up
// to workers goroutines.
func (b *sharedBuild) run(workers int) error {
	b.done = true
	if err := b.in.Open(); err != nil {
		return err
	}
	defer b.in.Close()
	b.rows = make([]Row, 0, clampPreSize(b.sizeHint))
	var hashes []uint64
	b.offs = append(b.offs[:0], 0)
	for {
		r, ok, err := b.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if len(b.conds) > 0 {
			start := len(b.keyBuf)
			nb, keyOK := appendEquiKey(b.keyBuf, r.Tuple, b.conds, false)
			if !keyOK {
				b.keyBuf = nb[:start]
				continue // NULL key never joins, as in the serial build
			}
			b.keyBuf = nb
			b.offs = append(b.offs, int32(len(b.keyBuf)))
			hashes = append(hashes, fnv64(b.keyBuf[start:]))
		}
		t := r.Tuple
		if !b.stable {
			t = cloneTuple(t)
		}
		b.rows = append(b.rows, Row{Tuple: t, Prov: r.Prov})
	}
	if len(b.conds) == 0 {
		return nil // theta build: probes walk rows directly
	}
	nparts := workers
	if nparts > len(b.rows) {
		nparts = len(b.rows)
	}
	if nparts < 1 {
		nparts = 1
	}
	b.nparts = uint64(nparts)
	b.parts = make([]buildPart, nparts)
	perPart := len(b.rows)/nparts + 1
	if perPart > maxPreSize {
		perPart = maxPreSize
	}
	var wg sync.WaitGroup
	for p := 0; p < nparts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			part := buildPart{index: make(map[string]int32, perPart)}
			pp := uint64(p)
			for i := range b.rows {
				if hashes[i]%b.nparts != pp {
					continue
				}
				key := b.keyBuf[b.offs[i]:b.offs[i+1]]
				if id, hit := part.index[string(key)]; hit {
					part.lists[id] = append(part.lists[id], int32(i))
				} else {
					part.index[string(key)] = int32(len(part.lists))
					part.lists = append(part.lists, []int32{int32(i)})
				}
			}
			b.parts[p] = part
		}(p)
	}
	wg.Wait()
	return nil
}

// bucket returns the ascending build-row indices matching key, or nil.
func (b *sharedBuild) bucket(key []byte) []int32 {
	if len(b.rows) == 0 {
		return nil
	}
	part := &b.parts[fnv64(key)%b.nparts]
	if id, hit := part.index[string(key)]; hit {
		return part.lists[id]
	}
	return nil
}

// close releases the build input if run never drained it (an earlier build
// errored, or the tree was closed before the first Next).
func (b *sharedBuild) close() {
	if !b.done {
		b.done = true
		b.in.Close()
	}
	b.rows, b.parts, b.keyBuf, b.offs = nil, nil, nil, nil
}

// fnv64 is FNV-1a over the key bytes, used to assign build keys to
// partitions and route probes to the owning partition.
func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// hashProbeIter is the probe side of a parallel hash join: the fragment's
// rows stream through, probing the shared build table and emitting
// concatenations into a per-worker scratch tuple. Emission order per probe
// row follows the bucket's ascending build order — identical to the serial
// hashJoinIter.
type hashProbeIter struct {
	in    iter
	build *sharedBuild
	conds []equiCond
	match func(table.Tuple) bool

	buf    []byte
	cur    Row
	have   bool
	bucket []int32
	bi     int

	scratch table.Tuple
}

// Open implements iter.
func (j *hashProbeIter) Open() error {
	j.have, j.bucket, j.bi = false, nil, 0
	return j.in.Open()
}

// Next implements iter.
func (j *hashProbeIter) Next() (Row, bool, error) {
	for {
		for j.have && j.bi < len(j.bucket) {
			r := j.build.rows[j.bucket[j.bi]]
			j.bi++
			t := append(append(j.scratch[:0], j.cur.Tuple...), r.Tuple...)
			if j.match != nil && !j.match(t) {
				continue
			}
			return Row{Tuple: t, Prov: j.cur.Prov.And(r.Prov)}, true, nil
		}
		l, ok, err := j.in.Next()
		if err != nil || !ok {
			return Row{}, false, err
		}
		key, keyOK := appendEquiKey(j.buf[:0], l.Tuple, j.conds, true)
		j.buf = key
		if !keyOK {
			continue
		}
		j.cur, j.have, j.bi = l, true, 0
		j.bucket = j.build.bucket(key)
	}
}

// Close implements iter.
func (j *hashProbeIter) Close() { j.in.Close() }

// loopProbeIter is the probe side of a parallel theta join: every fragment
// row nested-loops against the shared build rows, in build order, exactly
// like the serial loopJoinIter.
type loopProbeIter struct {
	in    iter
	build *sharedBuild
	match func(table.Tuple) bool

	cur  Row
	have bool
	ri   int

	scratch table.Tuple
}

// Open implements iter.
func (j *loopProbeIter) Open() error {
	j.have, j.ri = false, 0
	return j.in.Open()
}

// Next implements iter.
func (j *loopProbeIter) Next() (Row, bool, error) {
	for {
		for j.have && j.ri < len(j.build.rows) {
			r := j.build.rows[j.ri]
			j.ri++
			t := append(append(j.scratch[:0], j.cur.Tuple...), r.Tuple...)
			if j.match != nil && !j.match(t) {
				continue
			}
			return Row{Tuple: t, Prov: j.cur.Prov.And(r.Prov)}, true, nil
		}
		l, ok, err := j.in.Next()
		if err != nil || !ok {
			return Row{}, false, err
		}
		j.cur, j.have, j.ri = l, true, 0
	}
}

// Close implements iter.
func (j *loopProbeIter) Close() { j.in.Close() }

// workerFrag is one worker's private fragment instance: the iterator tree,
// its driver scan (whose range is re-pointed per morsel), and whether the
// tree's output tuples are stable (scratch-backed rows are cloned into the
// morsel buffer otherwise).
type workerFrag struct {
	root   iter
	scan   *morselScanIter
	stable bool
}

// exchShared is the state one exchange shares between its workers and the
// merge side: the morsel geometry, the per-worker fragments, the shared
// join builds, and the per-morsel output buffers and completion signals.
type exchShared struct {
	stats    *execStats
	relLen   int
	morsel   int
	nMorsels int
	workers  int

	frags      []*workerFrag
	builds     map[*joinNode]*sharedBuild
	buildOrder []*sharedBuild

	next    int64 // atomic: next morsel to claim
	cancel  int32 // atomic: stop claiming new morsels
	scanned int64 // atomic: rows scanned by morsel scans

	out   [][]Row
	errs  []error
	ready []chan struct{}
	wg    sync.WaitGroup

	started   bool
	closeOnce sync.Once
}

// start drains the shared builds (serially, in fragment registration
// order) and launches the worker pool. It runs in the consumer's goroutine
// on the first Next, following the pipeline-breaker convention.
func (sh *exchShared) start() error {
	for _, b := range sh.buildOrder {
		if err := b.run(sh.workers); err != nil {
			return err
		}
	}
	sh.out = make([][]Row, sh.nMorsels)
	sh.errs = make([]error, sh.nMorsels)
	sh.ready = make([]chan struct{}, sh.nMorsels)
	for i := range sh.ready {
		sh.ready[i] = make(chan struct{})
	}
	for _, f := range sh.frags {
		sh.wg.Add(1)
		go sh.work(f)
	}
	return nil
}

// work is one worker's loop: claim the next morsel index, run the private
// fragment over its row range, publish the buffer, repeat. Workers claim
// indices in ascending order, so when a morsel errors every lower-numbered
// morsel is already claimed and will complete — the merge side never waits
// on an unclaimed morsel.
func (sh *exchShared) work(f *workerFrag) {
	defer sh.wg.Done()
	for {
		if atomic.LoadInt32(&sh.cancel) != 0 {
			return
		}
		m := int(atomic.AddInt64(&sh.next, 1)) - 1
		if m >= sh.nMorsels {
			return
		}
		rows, err := sh.runMorsel(f, m)
		sh.out[m], sh.errs[m] = rows, err
		close(sh.ready[m])
		if err != nil {
			atomic.StoreInt32(&sh.cancel, 1)
			return
		}
	}
}

// runMorsel executes one morsel: point the driver scan at the range,
// re-open the fragment, drain it, cloning scratch-backed tuples so the
// buffer owns its memory.
func (sh *exchShared) runMorsel(f *workerFrag, m int) ([]Row, error) {
	f.scan.lo = m * sh.morsel
	f.scan.hi = f.scan.lo + sh.morsel
	if f.scan.hi > sh.relLen {
		f.scan.hi = sh.relLen
	}
	defer func() {
		atomic.AddInt64(&sh.scanned, f.scan.scanned)
		f.scan.scanned = 0
	}()
	if err := f.root.Open(); err != nil {
		return nil, err
	}
	var rows []Row
	for {
		r, ok, err := f.root.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		if !f.stable {
			r.Tuple = cloneTuple(r.Tuple)
		}
		rows = append(rows, r)
	}
}

// exchangeIter is the ordered-merge gather side of one parallel pipeline:
// it emits morsel buffers strictly in morsel index order, waiting for each
// buffer to be published. Its output is stable (buffers own their rows)
// and bit-identical to draining the serial fragment. The exchange is
// single-pass: builds drain and workers launch on the first Next, and
// Close cancels outstanding morsels, joins the pool, and flushes the
// scan/morsel counters into the run's stats.
type exchangeIter struct {
	sh  *exchShared
	m   int
	cur []Row
	i   int
	err error
}

// Open implements iter. The fragment iterators are opened per morsel by
// the workers; there is nothing to prepare eagerly.
func (e *exchangeIter) Open() error { return nil }

// Next implements iter.
func (e *exchangeIter) Next() (Row, bool, error) {
	if e.err != nil {
		return Row{}, false, e.err
	}
	sh := e.sh
	if !sh.started {
		sh.started = true
		if err := sh.start(); err != nil {
			e.err = err
			return Row{}, false, err
		}
	}
	for {
		if e.i < len(e.cur) {
			r := e.cur[e.i]
			e.i++
			return r, true, nil
		}
		if e.m >= sh.nMorsels {
			return Row{}, false, nil
		}
		m := e.m
		e.m++
		<-sh.ready[m]
		if err := sh.errs[m]; err != nil {
			e.err = err
			return Row{}, false, err
		}
		e.cur, e.i = sh.out[m], 0
		sh.out[m] = nil
	}
}

// Close implements iter.
func (e *exchangeIter) Close() {
	sh := e.sh
	sh.closeOnce.Do(func() {
		atomic.StoreInt32(&sh.cancel, 1)
		sh.wg.Wait()
		sh.stats.scanned += atomic.LoadInt64(&sh.scanned)
		claimed := atomic.LoadInt64(&sh.next)
		if claimed > int64(sh.nMorsels) {
			claimed = int64(sh.nMorsels)
		}
		sh.stats.morsels += claimed
		for _, b := range sh.buildOrder {
			b.close()
		}
	})
}

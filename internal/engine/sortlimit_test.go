package engine_test

import (
	"testing"

	"qres/internal/engine"
	"qres/internal/table"
	"qres/internal/testdb"
	"qres/internal/uncertain"
)

func TestSortNode(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	plan := engine.Sort(engine.Scan("Education", "e"),
		engine.SortKey{By: engine.Col("e", "Year"), Desc: true},
		engine.SortKey{By: engine.Col("e", "Alumni")})
	res, err := engine.Run(udb, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	years := make([]int64, len(res.Rows))
	for i, r := range res.Rows {
		years[i] = r.Tuple[2].AsInt()
	}
	for i := 1; i < len(years); i++ {
		if years[i] > years[i-1] {
			t.Fatalf("not descending: %v", years)
		}
	}
	// Provenance passes through sorting untouched.
	for _, r := range res.Rows {
		if r.Prov.NumTerms() != 1 {
			t.Fatalf("sort changed provenance: %v", r.Prov)
		}
	}
}

func TestSortNullsAndErrors(t *testing.T) {
	db := table.NewDatabase()
	rel := table.NewRelation("t", table.NewSchema(table.Column{Name: "x", Kind: table.KindInt}))
	rel.MustAppend(table.Tuple{table.Int(2)}, nil)
	rel.MustAppend(table.Tuple{table.Null()}, nil)
	rel.MustAppend(table.Tuple{table.Int(1)}, nil)
	db.MustAdd(rel)
	udb := uncertain.New(db)

	res, err := engine.Run(udb, engine.Sort(engine.Scan("t", ""),
		engine.SortKey{By: engine.Col("", "x")}))
	if err != nil {
		t.Fatal(err)
	}
	// NULL sorts first ascending.
	if !res.Rows[0].Tuple[0].IsNull() || res.Rows[1].Tuple[0].AsInt() != 1 {
		t.Fatalf("order = %v", res.Rows)
	}
	// Unknown sort column fails to bind.
	if _, err := engine.Run(udb, engine.Sort(engine.Scan("t", ""),
		engine.SortKey{By: engine.Col("", "nope")})); err == nil {
		t.Fatal("unknown sort key accepted")
	}
}

func TestLimitNode(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	for _, c := range []struct{ n, want int }{{0, 0}, {2, 2}, {6, 6}, {99, 6}, {-1, 6}} {
		res, err := engine.Run(udb, engine.Limit(engine.Scan("Education", "e"), c.n))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != c.want {
			t.Errorf("Limit(%d) = %d rows, want %d", c.n, len(res.Rows), c.want)
		}
	}
}

func TestCrossJoin(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	// Join with the empty conjunction: a pure cross product.
	plan := engine.Join(engine.Scan("Acquisitions", "a"), engine.Scan("Roles", "r"), engine.And())
	res, err := engine.Run(udb, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4*6 {
		t.Fatalf("cross product = %d rows, want 24", len(res.Rows))
	}
	// Each row's provenance is the conjunction of the two inputs.
	for _, r := range res.Rows {
		if r.Prov.NumTerms() != 1 || len(r.Prov.Terms()[0]) != 2 {
			t.Fatalf("provenance = %v", r.Prov)
		}
	}
}

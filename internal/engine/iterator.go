package engine

import (
	"fmt"
	"sort"
	"time"

	"qres/internal/boolexpr"
	"qres/internal/table"
)

// iter is the Volcano-style streaming operator interface every plan node
// compiles to. The contract, which ARCHITECTURE.md documents in full:
//
//   - Open prepares the iterator for a fresh pass: it resets cursor state
//     and recursively opens children. Current operators cannot fail here
//     (all binding happens at compile time), but the error return keeps
//     the conventional Volcano signature.
//   - Next returns the next annotated row. ok=false signals exhaustion;
//     after that every further call returns ok=false. A returned Row's
//     Tuple is only guaranteed valid until the next call to Next — unless
//     the compiled subtree is marked stable, operators reuse a scratch
//     tuple, and consumers that retain rows must clone them.
//   - Close releases per-pass resources (materialized build sides, dedup
//     state) and recursively closes children.
//
// Pipeline breakers (sort, top-k, duplicate elimination, the hash-join
// build side) drain their input inside the first Next call rather than in
// Open, so a Limit above them that never pulls (LIMIT 0) does no work.
type iter interface {
	Open() error
	Next() (Row, bool, error)
	Close()
}

// execStats aggregates the cheap per-run counters the streaming executor
// always maintains (independent of tracing): the number of base-relation
// tuples read by all scans, and — on the parallel path — the number of
// morsels executed and pipeline fragments fanned out.
type execStats struct {
	scanned   int64
	morsels   int64
	pipelines int64
}

// compileCtx carries the shared state of one compilation: the source to
// bind against, the run's counters, the parallel-execution settings
// (workers < 2 compiles fully serial trees; morsel is the rows-per-morsel
// grain), and — when per-operator tracing is requested — the
// instrumentation wrappers created so far.
type compileCtx struct {
	src     Source
	stats   *execStats
	workers int
	morsel  int
	trace   bool
	ops     []*opIter
}

// maxPreSize caps every cardinality-hint-driven pre-allocation (hash-join
// build tables, materialized loop-join and sort buffers, top-k heaps). The
// hints from estimateRows are upper bounds, not estimates — a selective
// filter under a large base relation can inflate them by orders of
// magnitude — so an uncapped make() at SF 1+ could reserve gigabytes for a
// handful of rows. Buffers grow past the cap organically via append.
const maxPreSize = 1 << 20

// clampPreSize converts a cardinality hint into a safe pre-allocation
// size: unknown (-1) becomes zero, and anything above maxPreSize is
// capped.
func clampPreSize(hint int) int {
	if hint < 0 {
		return 0
	}
	if hint > maxPreSize {
		return maxPreSize
	}
	return hint
}

// compiled is the result of compiling a plan subtree: its bound output
// schema, the iterator producing its rows, and whether returned tuples are
// stable (safe to retain without cloning). Scans are stable because base
// relations are immutable; operators that build output tuples in a scratch
// buffer (project, join concatenation) are not; pipeline breakers that
// materialize their output (sort, top-k, dedup) restore stability.
type compiled struct {
	schema outSchema
	it     iter
	stable bool
}

// wrap attaches a per-operator tracing wrapper when the compilation is
// tracing; otherwise it returns c unchanged.
func (ctx *compileCtx) wrap(label string, c compiled) compiled {
	if !ctx.trace {
		return c
	}
	op := &opIter{in: c.it, label: label}
	ctx.ops = append(ctx.ops, op)
	c.it = op
	return c
}

// unwrapOp strips a tracing wrapper, exposing the underlying operator for
// compile-time fusion decisions.
func unwrapOp(it iter) iter {
	if op, ok := it.(*opIter); ok {
		return op.in
	}
	return it
}

// compile binds a plan subtree against the source and builds its iterator
// tree. All schema resolution and predicate/scalar binding happens here, so
// the streaming path surfaces exactly the errors the materializing path
// surfaces (unknown relations and columns, ambiguous references, kind
// mismatches) before any row is produced. Children compile before the
// operator's own expressions bind, matching the materializing executor's
// error order.
func compile(n Node, ctx *compileCtx) (compiled, error) {
	switch t := n.(type) {
	case *scanNode:
		rel, ok := ctx.src.Relation(t.relation)
		if !ok {
			return compiled{}, fmt.Errorf("engine: unknown relation %q", t.relation)
		}
		alias := t.alias
		if alias == "" {
			alias = t.relation
		}
		schema := make(outSchema, rel.Schema().Len())
		for i, c := range rel.Schema().Columns() {
			schema[i] = OutCol{Qualifier: alias, Name: c.Name, Kind: c.Kind}
		}
		it := &scanIter{rel: rel, prov: provFetcher(ctx.src, t.relation), stats: ctx.stats}
		return ctx.wrap(t.String(), compiled{schema: schema, it: it, stable: true}), nil

	case *selectNode:
		c, err := compile(t.input, ctx)
		if err != nil {
			return compiled{}, err
		}
		match, err := t.pred.bind(c.schema)
		if err != nil {
			return compiled{}, err
		}
		// Fuse filters into a scan: the predicate then runs before the
		// tuple's provenance annotation is fetched, so filtered-out base
		// tuples never cost a variable lookup. The scan's trace span
		// reports post-filter rows in that case.
		if sc, ok := unwrapOp(c.it).(*scanIter); ok {
			sc.filters = append(sc.filters, match)
			return c, nil
		}
		return ctx.wrap("Select", compiled{
			schema: c.schema,
			it:     &selIter{in: c.it, match: match},
			stable: c.stable,
		}), nil

	case *joinNode:
		lc, err := compile(t.left, ctx)
		if err != nil {
			return compiled{}, err
		}
		rc, err := compile(t.right, ctx)
		if err != nil {
			return compiled{}, err
		}
		schema := make(outSchema, 0, len(lc.schema)+len(rc.schema))
		schema = append(schema, lc.schema...)
		schema = append(schema, rc.schema...)
		equi, residual := splitEquiConds(t.on, lc.schema, rc.schema)
		var match func(table.Tuple) bool
		if residual != nil {
			match, err = residual.bind(schema)
			if err != nil {
				return compiled{}, err
			}
		}
		scratch := make(table.Tuple, 0, len(schema))
		if len(equi) > 0 {
			it := &hashJoinIter{
				left: lc.it, right: rc.it, conds: equi, match: match,
				rightStable: rc.stable, sizeHint: estimateRows(t.right, ctx.src),
				scratch: scratch,
			}
			return ctx.wrap("HashJoin", compiled{schema: schema, it: it, stable: false}), nil
		}
		it := &loopJoinIter{
			left: lc.it, right: rc.it, match: match,
			rightStable: rc.stable, sizeHint: estimateRows(t.right, ctx.src),
			scratch: scratch,
		}
		return ctx.wrap("NestedLoopJoin", compiled{schema: schema, it: it, stable: false}), nil

	case *projectNode:
		if t.distinct {
			// Only the non-distinct projection fragment fans out; dedup (a
			// pipeline breaker) merges the exchange's ordered output
			// serially, preserving first-occurrence order and provenance
			// disjunction order.
			if pc, ok := tryExchange(&projectNode{input: t.input, cols: t.cols}, ctx); ok {
				it := &dedupIter{in: pc.it, clone: !pc.stable}
				return compiled{schema: pc.schema, it: it, stable: true}, nil
			}
		}
		c, err := compile(t.input, ctx)
		if err != nil {
			return compiled{}, err
		}
		evals := make([]func(table.Tuple) table.Value, len(t.cols))
		out := make(outSchema, len(t.cols))
		for i, col := range t.cols {
			f, kind, err := col.bind(c.schema)
			if err != nil {
				return compiled{}, err
			}
			evals[i] = f
			name := col.String()
			if cr, ok := col.(colRef); ok {
				name = cr.name
			}
			out[i] = OutCol{Name: name, Kind: kind}
		}
		var it iter = &projectIter{in: c.it, evals: evals, scratch: make(table.Tuple, len(evals))}
		label := "Project"
		if t.distinct {
			// Projected tuples live in a scratch buffer, so dedup clones.
			it = &dedupIter{in: it, clone: true}
			label = "Distinct"
		}
		return ctx.wrap(label, compiled{schema: out, it: it, stable: t.distinct}), nil

	case *unionNode:
		if len(t.inputs) == 0 {
			return compiled{}, fmt.Errorf("engine: UNION of zero inputs")
		}
		var schema outSchema
		ins := make([]iter, len(t.inputs))
		clone := false
		for i, in := range t.inputs {
			c, err := compileInput(in, ctx)
			if err != nil {
				return compiled{}, err
			}
			if i == 0 {
				schema = c.schema
			} else {
				if len(c.schema) != len(schema) {
					return compiled{}, fmt.Errorf("engine: UNION arity mismatch: %d vs %d", len(schema), len(c.schema))
				}
				for j := range c.schema {
					a, b := schema[j].Kind, c.schema[j].Kind
					if a != b && a != table.KindNull && b != table.KindNull && !table.Comparable(a, b) {
						return compiled{}, fmt.Errorf("engine: UNION kind mismatch at column %d: %s vs %s", j, a, b)
					}
				}
			}
			ins[i] = c.it
			if !c.stable {
				clone = true
			}
		}
		it := &dedupIter{in: &chainIter{ins: ins}, clone: clone}
		return ctx.wrap("Union", compiled{schema: schema, it: it, stable: true}), nil

	case *sortNode:
		c, err := compileInput(t.input, ctx)
		if err != nil {
			return compiled{}, err
		}
		evals, err := bindSortKeys(t.keys, c.schema)
		if err != nil {
			return compiled{}, err
		}
		it := &sortIter{in: c.it, keys: t.keys, evals: evals, clone: !c.stable,
			sizeHint: estimateRows(t.input, ctx.src)}
		return ctx.wrap("Sort", compiled{schema: c.schema, it: it, stable: true}), nil

	case *topKNode:
		c, err := compileInput(t.input, ctx)
		if err != nil {
			return compiled{}, err
		}
		evals, err := bindSortKeys(t.keys, c.schema)
		if err != nil {
			return compiled{}, err
		}
		it := &topKIter{in: c.it, keys: t.keys, evals: evals, clone: !c.stable, k: t.n}
		return ctx.wrap(fmt.Sprintf("TopK(%d)", t.n), compiled{schema: c.schema, it: it, stable: true}), nil

	case *limitNode:
		c, err := compile(t.input, ctx)
		if err != nil {
			return compiled{}, err
		}
		it := &limitIter{in: c.it, n: t.n}
		return ctx.wrap(fmt.Sprintf("Limit(%d)", t.n), compiled{schema: c.schema, it: it, stable: c.stable}), nil

	default:
		return compiled{}, fmt.Errorf("engine: cannot compile %T", n)
	}
}

// bindSortKeys binds the key scalars of a Sort or TopK against its input
// schema.
func bindSortKeys(keys []SortKey, s outSchema) ([]func(table.Tuple) table.Value, error) {
	evals := make([]func(table.Tuple) table.Value, len(keys))
	for i, k := range keys {
		f, _, err := k.By.bind(s)
		if err != nil {
			return nil, err
		}
		evals[i] = f
	}
	return evals, nil
}

// provFetcher builds the per-tuple provenance lookup for one scanned
// relation, hoisting source-specific work out of the row loop: an uncertain
// database resolves its variable column once (the generic Source path would
// pay a per-tuple relation lookup), and a possible world reuses one shared
// True constant instead of rebuilding it per tuple.
func provFetcher(src Source, relation string) func(i int) boolexpr.Expr {
	switch s := src.(type) {
	case uncertainSource:
		if vars := s.db.Vars(relation); vars != nil {
			return func(i int) boolexpr.Expr { return boolexpr.Lit(vars[i]) }
		}
	case worldSource:
		t := boolexpr.True()
		return func(int) boolexpr.Expr { return t }
	}
	return func(i int) boolexpr.Expr { return src.Prov(relation, i) }
}

// estimateRows bounds the output cardinality of a subtree from base
// relation sizes, used to pre-size hash-join build tables. It returns -1
// when no bound is available (joins, whose output is unbounded without
// statistics). Selections only shrink their input, so the bound stays an
// upper bound.
func estimateRows(n Node, src Source) int {
	switch t := n.(type) {
	case *scanNode:
		if rel, ok := src.Relation(t.relation); ok {
			return rel.Len()
		}
		return -1
	case *selectNode:
		return estimateRows(t.input, src)
	case *projectNode:
		return estimateRows(t.input, src)
	case *sortNode:
		return estimateRows(t.input, src)
	case *limitNode:
		e := estimateRows(t.input, src)
		if t.n >= 0 && (e < 0 || t.n < e) {
			return t.n
		}
		return e
	case *topKNode:
		e := estimateRows(t.input, src)
		if e < 0 || t.n < e {
			return t.n
		}
		return e
	case *unionNode:
		total := 0
		for _, in := range t.inputs {
			e := estimateRows(in, src)
			if e < 0 {
				return -1
			}
			total += e
		}
		return total
	default:
		return -1
	}
}

// cloneTuple copies a scratch-backed tuple so it can be retained past the
// next Next call.
func cloneTuple(t table.Tuple) table.Tuple {
	out := make(table.Tuple, len(t))
	copy(out, t)
	return out
}

// appendDedupKey appends the tuple's canonical dedup key to buf. The
// encoding is byte-for-byte identical to table.Tuple.Key, but appending to
// a reused buffer lets dedup look keys up without allocating a string per
// row.
func appendDedupKey(buf []byte, t table.Tuple) []byte {
	for _, v := range t {
		buf = v.EncodeKey(buf)
		buf = append(buf, 0)
	}
	return buf
}

// scanIter streams a base relation, applying any filters fused in from
// selections directly above the scan. Filters run before the provenance
// fetch, and returned tuples alias the relation's immutable storage (the
// subtree is stable). The raw tuple count — before filtering — feeds the
// run's rows-scanned counter.
type scanIter struct {
	rel     *table.Relation
	prov    func(i int) boolexpr.Expr
	filters []func(table.Tuple) bool
	stats   *execStats
	i       int
}

// Open implements iter.
func (s *scanIter) Open() error {
	s.i = 0
	return nil
}

// Next implements iter.
func (s *scanIter) Next() (Row, bool, error) {
scan:
	for s.i < s.rel.Len() {
		i := s.i
		s.i++
		s.stats.scanned++
		t := s.rel.At(i)
		for _, f := range s.filters {
			if !f(t) {
				continue scan
			}
		}
		return Row{Tuple: t, Prov: s.prov(i)}, true, nil
	}
	return Row{}, false, nil
}

// Close implements iter.
func (s *scanIter) Close() {}

// selIter filters its input by a bound predicate; provenance and tuple
// stability pass through unchanged.
type selIter struct {
	in    iter
	match func(table.Tuple) bool
}

// Open implements iter.
func (s *selIter) Open() error { return s.in.Open() }

// Next implements iter.
func (s *selIter) Next() (Row, bool, error) {
	for {
		r, ok, err := s.in.Next()
		if err != nil || !ok {
			return Row{}, false, err
		}
		if s.match(r.Tuple) {
			return r, true, nil
		}
	}
}

// Close implements iter.
func (s *selIter) Close() { s.in.Close() }

// projectIter evaluates the projection scalars into a reused scratch tuple
// (its output is therefore volatile) and passes provenance through.
type projectIter struct {
	in      iter
	evals   []func(table.Tuple) table.Value
	scratch table.Tuple
}

// Open implements iter.
func (p *projectIter) Open() error { return p.in.Open() }

// Next implements iter.
func (p *projectIter) Next() (Row, bool, error) {
	r, ok, err := p.in.Next()
	if err != nil || !ok {
		return Row{}, false, err
	}
	for i, f := range p.evals {
		p.scratch[i] = f(r.Tuple)
	}
	return Row{Tuple: p.scratch, Prov: r.Prov}, true, nil
}

// Close implements iter.
func (p *projectIter) Close() { p.in.Close() }

// chainIter concatenates its inputs in order (the pre-dedup stream of a
// UNION).
type chainIter struct {
	ins []iter
	i   int
}

// Open implements iter.
func (c *chainIter) Open() error {
	c.i = 0
	for _, in := range c.ins {
		if err := in.Open(); err != nil {
			return err
		}
	}
	return nil
}

// Next implements iter.
func (c *chainIter) Next() (Row, bool, error) {
	for c.i < len(c.ins) {
		r, ok, err := c.ins[c.i].Next()
		if err != nil {
			return Row{}, false, err
		}
		if ok {
			return r, true, nil
		}
		c.i++
	}
	return Row{}, false, nil
}

// Close implements iter.
func (c *chainIter) Close() {
	for _, in := range c.ins {
		in.Close()
	}
}

// dedupIter merges duplicate tuples, disjoining their provenance — the
// streaming counterpart of mergeDuplicates, with identical first-occurrence
// output order. Duplicate elimination is a pipeline breaker (a late
// duplicate disjoins into an earlier row's provenance), so the input drains
// on the first Next. Keys are built in a reused buffer and looked up
// without allocating; one key string is allocated per distinct row.
type dedupIter struct {
	in    iter
	clone bool
	rows  []Row
	done  bool
	i     int
	buf   []byte
}

// Open implements iter.
func (d *dedupIter) Open() error {
	d.rows, d.done, d.i = nil, false, 0
	return d.in.Open()
}

// Next implements iter.
func (d *dedupIter) Next() (Row, bool, error) {
	if !d.done {
		if err := d.drain(); err != nil {
			return Row{}, false, err
		}
		d.done = true
	}
	if d.i >= len(d.rows) {
		return Row{}, false, nil
	}
	r := d.rows[d.i]
	d.i++
	return r, true, nil
}

func (d *dedupIter) drain() error {
	index := make(map[string]int)
	for {
		r, ok, err := d.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		d.buf = appendDedupKey(d.buf[:0], r.Tuple)
		if j, seen := index[string(d.buf)]; seen {
			d.rows[j].Prov = d.rows[j].Prov.Or(r.Prov)
			continue
		}
		t := r.Tuple
		if d.clone {
			t = cloneTuple(t)
		}
		index[string(d.buf)] = len(d.rows)
		d.rows = append(d.rows, Row{Tuple: t, Prov: r.Prov})
	}
}

// Close implements iter.
func (d *dedupIter) Close() {
	d.rows = nil
	d.in.Close()
}

// hashJoinIter executes an equi-join: the right input is drained into a
// hash table on the first Next (pre-sized from base-relation cardinalities
// when a bound is known), then left rows stream through, probing the table
// and emitting concatenations into a reused scratch tuple. Output order
// matches the materializing executor: left input order, then right build
// order within a key. NULL key components never match, on either side. The
// joined row's provenance conjunction is only computed for rows that
// survive the residual predicate.
type hashJoinIter struct {
	left, right iter
	conds       []equiCond
	match       func(table.Tuple) bool
	rightStable bool
	sizeHint    int

	built  bool
	index  map[string]int32
	lists  [][]int32
	rows   []Row
	buf    []byte
	cur    Row
	have   bool
	bucket []int32
	bi     int

	scratch table.Tuple
}

// Open implements iter.
func (j *hashJoinIter) Open() error {
	j.built, j.index, j.lists, j.rows = false, nil, nil, nil
	j.have, j.bucket, j.bi = false, nil, 0
	if err := j.left.Open(); err != nil {
		return err
	}
	return j.right.Open()
}

// Next implements iter.
func (j *hashJoinIter) Next() (Row, bool, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return Row{}, false, err
		}
		j.built = true
	}
	for {
		for j.have && j.bi < len(j.bucket) {
			r := j.rows[j.bucket[j.bi]]
			j.bi++
			t := append(append(j.scratch[:0], j.cur.Tuple...), r.Tuple...)
			if j.match != nil && !j.match(t) {
				continue
			}
			return Row{Tuple: t, Prov: j.cur.Prov.And(r.Prov)}, true, nil
		}
		l, ok, err := j.left.Next()
		if err != nil || !ok {
			return Row{}, false, err
		}
		key, keyOK := appendEquiKey(j.buf[:0], l.Tuple, j.conds, true)
		j.buf = key
		if !keyOK {
			continue
		}
		j.cur, j.have, j.bi = l, true, 0
		if id, hit := j.index[string(key)]; hit {
			j.bucket = j.lists[id]
		} else {
			j.bucket = nil
		}
	}
}

// build drains the right input into the hash table. Buckets hold row
// indices (grouped per key via an index map to a shared list table) so
// inserting into an existing bucket allocates no key string.
func (j *hashJoinIter) build() error {
	size := clampPreSize(j.sizeHint)
	j.index = make(map[string]int32, size)
	j.rows = make([]Row, 0, size)
	for {
		r, ok, err := j.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		key, keyOK := appendEquiKey(j.buf[:0], r.Tuple, j.conds, false)
		j.buf = key
		if !keyOK {
			continue // NULL key never joins
		}
		t := r.Tuple
		if !j.rightStable {
			t = cloneTuple(t)
		}
		j.rows = append(j.rows, Row{Tuple: t, Prov: r.Prov})
		ri := int32(len(j.rows) - 1)
		if id, hit := j.index[string(key)]; hit {
			j.lists[id] = append(j.lists[id], ri)
		} else {
			j.index[string(key)] = int32(len(j.lists))
			j.lists = append(j.lists, []int32{ri})
		}
	}
}

// Close implements iter.
func (j *hashJoinIter) Close() {
	j.index, j.lists, j.rows = nil, nil, nil
	j.left.Close()
	j.right.Close()
}

// loopJoinIter executes a theta join by materializing the right input once
// and nested-looping left rows against it, concatenating into a reused
// scratch tuple. As in the hash path, the provenance conjunction is only
// computed for rows that pass the join predicate.
type loopJoinIter struct {
	left, right iter
	match       func(table.Tuple) bool
	rightStable bool
	sizeHint    int

	built bool
	rows  []Row
	cur   Row
	have  bool
	ri    int

	scratch table.Tuple
}

// Open implements iter.
func (j *loopJoinIter) Open() error {
	j.built, j.rows, j.have, j.ri = false, nil, false, 0
	if err := j.left.Open(); err != nil {
		return err
	}
	return j.right.Open()
}

// Next implements iter.
func (j *loopJoinIter) Next() (Row, bool, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return Row{}, false, err
		}
		j.built = true
	}
	for {
		for j.have && j.ri < len(j.rows) {
			r := j.rows[j.ri]
			j.ri++
			t := append(append(j.scratch[:0], j.cur.Tuple...), r.Tuple...)
			if j.match != nil && !j.match(t) {
				continue
			}
			return Row{Tuple: t, Prov: j.cur.Prov.And(r.Prov)}, true, nil
		}
		l, ok, err := j.left.Next()
		if err != nil || !ok {
			return Row{}, false, err
		}
		j.cur, j.have, j.ri = l, true, 0
	}
}

func (j *loopJoinIter) build() error {
	size := clampPreSize(j.sizeHint)
	j.rows = make([]Row, 0, size)
	for {
		r, ok, err := j.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		t := r.Tuple
		if !j.rightStable {
			t = cloneTuple(t)
		}
		j.rows = append(j.rows, Row{Tuple: t, Prov: r.Prov})
	}
}

// Close implements iter.
func (j *loopJoinIter) Close() {
	j.rows = nil
	j.left.Close()
	j.right.Close()
}

// sortIter is the pipeline-breaking ORDER BY operator: it drains its input
// (cloning volatile tuples) into a buffer pre-sized from the capped
// cardinality hint, stable-sorts with the shared comparator, and streams
// the sorted rows (which it owns, so the output is stable).
type sortIter struct {
	in       iter
	keys     []SortKey
	evals    []func(table.Tuple) table.Value
	clone    bool
	sizeHint int

	rows []Row
	done bool
	i    int
}

// Open implements iter.
func (s *sortIter) Open() error {
	s.rows, s.done, s.i = nil, false, 0
	return s.in.Open()
}

// Next implements iter.
func (s *sortIter) Next() (Row, bool, error) {
	if !s.done {
		if s.rows == nil {
			s.rows = make([]Row, 0, clampPreSize(s.sizeHint))
		}
		for {
			r, ok, err := s.in.Next()
			if err != nil {
				return Row{}, false, err
			}
			if !ok {
				break
			}
			if s.clone {
				r.Tuple = cloneTuple(r.Tuple)
			}
			s.rows = append(s.rows, r)
		}
		sort.SliceStable(s.rows, func(a, b int) bool {
			return compareRows(s.keys, s.evals, s.rows[a].Tuple, s.rows[b].Tuple) < 0
		})
		s.done = true
	}
	if s.i >= len(s.rows) {
		return Row{}, false, nil
	}
	r := s.rows[s.i]
	s.i++
	return r, true, nil
}

// Close implements iter.
func (s *sortIter) Close() {
	s.rows = nil
	s.in.Close()
}

// topkEntry is one heap element of topKIter: the retained row plus its
// input ordinal, which breaks key ties exactly like the stable sort the
// operator replaces.
type topkEntry struct {
	row Row
	ord int
}

// topKIter is the fused ORDER BY … LIMIT k operator: a bounded max-heap of
// the k best rows seen so far, keyed by the sort keys with input ordinal as
// tie-break. The result is bit-identical to stable-sorting the full input
// and truncating to k, but memory stays O(k) and the final sort is
// O(k log k). With k = 0 the input is never pulled.
type topKIter struct {
	in    iter
	keys  []SortKey
	evals []func(table.Tuple) table.Value
	clone bool
	k     int

	entries []topkEntry
	done    bool
	i       int
}

// Open implements iter.
func (t *topKIter) Open() error {
	t.entries, t.done, t.i = nil, false, 0
	return t.in.Open()
}

// after reports whether a sorts strictly after b: by keys, then by input
// ordinal. The heap keeps its worst (last-sorting) entry at the root.
func (t *topKIter) after(a, b topkEntry) bool {
	if c := compareRows(t.keys, t.evals, a.row.Tuple, b.row.Tuple); c != 0 {
		return c > 0
	}
	return a.ord > b.ord
}

// Next implements iter.
func (t *topKIter) Next() (Row, bool, error) {
	if !t.done {
		if t.k > 0 {
			if err := t.drain(); err != nil {
				return Row{}, false, err
			}
			sort.Slice(t.entries, func(a, b int) bool { return t.after(t.entries[b], t.entries[a]) })
		}
		t.done = true
	}
	if t.i >= len(t.entries) {
		return Row{}, false, nil
	}
	r := t.entries[t.i].row
	t.i++
	return r, true, nil
}

func (t *topKIter) drain() error {
	if t.entries == nil {
		// k comes straight from the query's LIMIT, so cap the heap's
		// pre-allocation like every other hinted buffer.
		t.entries = make([]topkEntry, 0, clampPreSize(t.k))
	}
	for ord := 0; ; ord++ {
		r, ok, err := t.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if len(t.entries) < t.k {
			if t.clone {
				r.Tuple = cloneTuple(r.Tuple)
			}
			t.entries = append(t.entries, topkEntry{row: r, ord: ord})
			t.siftUp(len(t.entries) - 1)
			continue
		}
		e := topkEntry{row: r, ord: ord}
		// Replace the current worst only if the new row sorts strictly
		// before it; on a full key tie the earlier ordinal wins, exactly
		// as a stable sort would keep the earlier row.
		if t.after(t.entries[0], e) {
			if t.clone {
				e.row.Tuple = cloneTuple(e.row.Tuple)
			}
			t.entries[0] = e
			t.siftDown(0)
		}
	}
}

func (t *topKIter) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.after(t.entries[i], t.entries[parent]) {
			return
		}
		t.entries[i], t.entries[parent] = t.entries[parent], t.entries[i]
		i = parent
	}
}

func (t *topKIter) siftDown(i int) {
	n := len(t.entries)
	for {
		largest := i
		if l := 2*i + 1; l < n && t.after(t.entries[l], t.entries[largest]) {
			largest = l
		}
		if r := 2*i + 2; r < n && t.after(t.entries[r], t.entries[largest]) {
			largest = r
		}
		if largest == i {
			return
		}
		t.entries[i], t.entries[largest] = t.entries[largest], t.entries[i]
		i = largest
	}
}

// Close implements iter.
func (t *topKIter) Close() {
	t.entries = nil
	t.in.Close()
}

// limitIter truncates its input to n rows (n < 0 keeps everything, as in
// the materializing executor). Once the budget is spent — immediately, for
// LIMIT 0 — it stops pulling, so upstream operators do no further work.
type limitIter struct {
	in      iter
	n       int
	emitted int
}

// Open implements iter.
func (l *limitIter) Open() error {
	l.emitted = 0
	return l.in.Open()
}

// Next implements iter.
func (l *limitIter) Next() (Row, bool, error) {
	if l.n >= 0 && l.emitted >= l.n {
		return Row{}, false, nil
	}
	r, ok, err := l.in.Next()
	if err != nil || !ok {
		return Row{}, false, err
	}
	l.emitted++
	return r, true, nil
}

// Close implements iter.
func (l *limitIter) Close() { l.in.Close() }

// opIter is the per-operator tracing wrapper compiled in when a span sink
// is attached: it counts the rows an operator emits and accumulates the
// inclusive time (operator plus its subtree) spent inside Next. The
// executor turns each wrapper into one query_op span after the run.
type opIter struct {
	in    iter
	label string
	rows  int64
	dur   time.Duration
}

// Open implements iter.
func (o *opIter) Open() error { return o.in.Open() }

// Next implements iter.
func (o *opIter) Next() (Row, bool, error) {
	start := time.Now()
	r, ok, err := o.in.Next()
	o.dur += time.Since(start)
	if ok {
		o.rows++
	}
	return r, ok, err
}

// Close implements iter.
func (o *opIter) Close() { o.in.Close() }

// compareRows orders two tuples by bound sort keys: -1 when a sorts before
// b, +1 after, 0 on a full tie. The semantics are shared by the
// materializing sort, the streaming sort and top-k: NULLs first ascending,
// incomparable or equal keys fall through to the next key, Desc reverses.
func compareRows(keys []SortKey, evals []func(table.Tuple) table.Value, a, b table.Tuple) int {
	for i, k := range keys {
		va, vb := evals[i](a), evals[i](b)
		c, err := table.Compare(va, vb)
		if err != nil || c == 0 {
			continue
		}
		if k.Desc {
			return -c
		}
		return c
	}
	return 0
}

// appendEquiKey appends the hash-join key of a tuple under the given
// equi-conditions to buf, returning ok=false when any component is NULL
// (NULL never joins). Sharing the buffer across rows keeps probe-side key
// construction allocation-free.
func appendEquiKey(buf []byte, t table.Tuple, conds []equiCond, left bool) ([]byte, bool) {
	for _, c := range conds {
		idx := c.rightIdx
		if left {
			idx = c.leftIdx
		}
		v := t[idx]
		if v.IsNull() {
			return buf, false
		}
		buf = v.EncodeKey(buf)
		buf = append(buf, 0)
	}
	return buf, true
}

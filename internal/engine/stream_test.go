package engine_test

import (
	"fmt"
	"strings"
	"testing"

	"qres/internal/boolexpr"
	"qres/internal/datagen"
	"qres/internal/engine"
	"qres/internal/obs"
	"qres/internal/sqlparse"
	"qres/internal/table"
	"qres/internal/testdb"
	"qres/internal/uncertain"
)

// equivalenceWorkers are the engine worker counts every equivalence test
// exercises against the materializing reference; 1 is the serial streaming
// path, the rest fan out through the morsel exchange. The tiny morsel size
// forces multi-morsel execution even on test-sized relations.
var equivalenceWorkers = []int{1, 2, 4, 8}

const testMorselSize = 16

// assertEquivalent runs plan on every executor — the serial streaming path
// (Run, which rewrites and compiles to iterators), the morsel-parallel
// path for each worker count, and the pinned materializing reference
// (RunReference) — and requires row-for-row identical results: same
// columns, same row order, same tuples, same provenance expressions.
func assertEquivalent(t *testing.T, udb *uncertain.DB, plan engine.Node) {
	t.Helper()
	want, werr := engine.RunReference(udb, plan)
	for _, w := range equivalenceWorkers {
		mode := fmt.Sprintf("parallel(%d)", w)
		var got *engine.Result
		var gerr error
		if w == 1 {
			mode = "streaming"
			got, gerr = engine.Run(udb, plan)
		} else {
			got, gerr = engine.RunWith(udb, plan, engine.Exec{Workers: w, MorselSize: testMorselSize})
		}
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("error mismatch: reference=%v %s=%v", werr, mode, gerr)
		}
		if werr != nil {
			if werr.Error() != gerr.Error() {
				t.Fatalf("error text mismatch:\nreference: %v\n%s: %v", werr, mode, gerr)
			}
			continue
		}
		if wh, gh := want.Header(), got.Header(); wh != gh {
			t.Fatalf("column mismatch: reference %q vs %s %q", wh, mode, gh)
		}
		if len(want.Rows) != len(got.Rows) {
			t.Fatalf("row count mismatch: reference %d vs %s %d", len(want.Rows), mode, len(got.Rows))
		}
		for i := range want.Rows {
			if wk, gk := want.Rows[i].Tuple.Key(), got.Rows[i].Tuple.Key(); wk != gk {
				t.Fatalf("row %d tuple mismatch: reference %s vs %s %s",
					i, want.Rows[i].Tuple, mode, got.Rows[i].Tuple)
			}
			if !want.Rows[i].Prov.Equal(got.Rows[i].Prov) {
				t.Fatalf("row %d provenance mismatch: reference %s vs %s %s",
					i, want.Rows[i].Prov, mode, got.Rows[i].Prov)
			}
		}
	}
}

// assertEquivalentErr asserts every executor fails with the same error
// text — including the parallel path, whose compile falls back to the
// serial compiler on any binding error so error fidelity is preserved.
func assertEquivalentErr(t *testing.T, udb *uncertain.DB, plan engine.Node) {
	t.Helper()
	_, werr := engine.RunReference(udb, plan)
	_, gerr := engine.Run(udb, plan)
	if werr == nil || gerr == nil {
		t.Fatalf("expected both executors to fail: reference=%v streaming=%v", werr, gerr)
	}
	if werr.Error() != gerr.Error() {
		t.Fatalf("error text mismatch:\nreference: %v\nstreaming: %v", werr, gerr)
	}
	_, perr := engine.RunWith(udb, plan, engine.Exec{Workers: 4, MorselSize: testMorselSize})
	if perr == nil || perr.Error() != werr.Error() {
		t.Fatalf("error text mismatch:\nreference: %v\nparallel(4): %v", werr, perr)
	}
}

// TestStreamingMatchesReferencePaper covers the running example and plan
// variants layered on it: sorting, limiting, top-k, non-distinct
// projection and unions.
func TestStreamingMatchesReferencePaper(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	base := testdb.PaperQuery()
	plans := map[string]engine.Node{
		"paper":      base,
		"sorted":     engine.Sort(base, engine.SortKey{By: engine.Col("", "Acquired")}),
		"sortedDesc": engine.Sort(base, engine.SortKey{By: engine.Col("", "Institute"), Desc: true}),
		"limited":    engine.Limit(base, 2),
		"topk": engine.Limit(
			engine.Sort(base, engine.SortKey{By: engine.Col("", "Acquired")}), 2),
		"unlimited": engine.Limit(base, -1),
		"union":     engine.Union(base, base),
		"projectDup": engine.Project(
			engine.Scan("Roles", "r"), false, engine.Col("r", "Organization")),
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) { assertEquivalent(t, udb, plan) })
	}
}

// TestStreamingMatchesReferenceTPCH runs every TPC-H-like workload query
// in the generator's catalog through both executors.
func TestStreamingMatchesReferenceTPCH(t *testing.T) {
	udb := datagen.TPCH(datagen.TPCHConfig{SF: 0.004, Seed: 7})
	for name, sql := range datagen.TPCHQueries() {
		t.Run(name, func(t *testing.T) {
			plan, err := sqlparse.ParseAndCompile(sql, udb.Data())
			if err != nil {
				t.Fatalf("compile %s: %v", name, err)
			}
			assertEquivalent(t, udb, plan)
		})
	}
}

// TestStreamingMatchesReferenceNELL runs the NELL knowledge-base workload
// queries through both executors.
func TestStreamingMatchesReferenceNELL(t *testing.T) {
	udb := datagen.NELL(datagen.DefaultNELLConfig(11))
	for name, sql := range datagen.NELLQueries() {
		t.Run(name, func(t *testing.T) {
			plan, err := sqlparse.ParseAndCompile(sql, udb.Data())
			if err != nil {
				t.Fatalf("compile %s: %v", name, err)
			}
			assertEquivalent(t, udb, plan)
		})
	}
}

// edgeDB builds a small uncertain database exercising the operator edge
// cases: an empty relation, NULL join keys on both sides, and duplicate
// rows for distinct/union merging.
func edgeDB() *uncertain.DB {
	db := table.NewDatabase()
	col := func(name string, k table.Kind) table.Column { return table.Column{Name: name, Kind: k} }

	left := table.NewRelation("L", table.NewSchema(
		col("k", table.KindInt), col("v", table.KindString)))
	left.MustAppend(table.Tuple{table.Int(1), table.String_("a")}, nil)
	left.MustAppend(table.Tuple{table.Null(), table.String_("null-key")}, nil)
	left.MustAppend(table.Tuple{table.Int(2), table.String_("b")}, nil)
	left.MustAppend(table.Tuple{table.Int(1), table.String_("a")}, nil) // duplicate of row 0
	db.MustAdd(left)

	right := table.NewRelation("R", table.NewSchema(
		col("k", table.KindInt), col("w", table.KindString)))
	right.MustAppend(table.Tuple{table.Int(1), table.String_("x")}, nil)
	right.MustAppend(table.Tuple{table.Null(), table.String_("null-key")}, nil)
	right.MustAppend(table.Tuple{table.Int(3), table.String_("z")}, nil)
	db.MustAdd(right)

	empty := table.NewRelation("E", table.NewSchema(
		col("k", table.KindInt), col("v", table.KindString)))
	db.MustAdd(empty)

	return uncertain.New(db)
}

// TestStreamingEdgeCases runs the operator edge cases the streaming path
// must preserve — empty inputs, NULL join keys (the equiKey miss path on
// both probe and build sides), duplicate elimination in Union and
// DISTINCT projection, LIMIT 0 — against both executors.
func TestStreamingEdgeCases(t *testing.T) {
	udb := edgeDB()
	join := func(l, r engine.Node, lq, rq string) engine.Node {
		return engine.Join(l, r, engine.Cmp(engine.Col(lq, "k"), engine.OpEq, engine.Col(rq, "k")))
	}
	lScan := func() engine.Node { return engine.Scan("L", "l") }
	rScan := func() engine.Node { return engine.Scan("R", "r") }
	eScan := func() engine.Node { return engine.Scan("E", "e") }
	plans := map[string]engine.Node{
		"emptyScan":      eScan(),
		"emptyLeftJoin":  join(eScan(), rScan(), "e", "r"),
		"emptyRightJoin": join(lScan(), eScan(), "l", "e"),
		"emptyTheta": engine.Join(eScan(), rScan(),
			engine.Cmp(engine.Col("e", "k"), engine.OpLt, engine.Col("r", "k"))),
		"nullKeysHash": join(lScan(), rScan(), "l", "r"),
		"nullKeysTheta": engine.Join(lScan(), rScan(),
			engine.Cmp(engine.Col("l", "k"), engine.OpLe, engine.Col("r", "k"))),
		"distinctDup":     engine.Project(lScan(), true, engine.Col("l", "k"), engine.Col("l", "v")),
		"distinctOfEmpty": engine.Project(eScan(), true, engine.Col("e", "k")),
		"unionDup":        engine.Union(lScan(), eScan(), lScan()),
		"unionProjected": engine.Union(
			engine.Project(lScan(), false, engine.Col("l", "k")),
			engine.Project(rScan(), false, engine.Col("r", "k"))),
		"limitZero": engine.Limit(lScan(), 0),
		"limitZeroTopK": engine.Limit(
			engine.Sort(lScan(), engine.SortKey{By: engine.Col("l", "k")}), 0),
		"limitPastEnd":  engine.Limit(lScan(), 100),
		"sortWithNulls": engine.Sort(lScan(), engine.SortKey{By: engine.Col("l", "k")}),
		"sortWithNullsDesc": engine.Sort(lScan(),
			engine.SortKey{By: engine.Col("l", "k"), Desc: true}),
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) { assertEquivalent(t, udb, plan) })
	}
}

// TestStreamingTopKTieStability pits the bounded-heap top-k against
// stable-sort-then-truncate on an input dominated by key ties: every
// tie must resolve to the earlier input row, in input order.
func TestStreamingTopKTieStability(t *testing.T) {
	db := table.NewDatabase()
	rel := table.NewRelation("T", table.NewSchema(
		table.Column{Name: "grp", Kind: table.KindInt},
		table.Column{Name: "id", Kind: table.KindInt}))
	for i := 0; i < 60; i++ {
		rel.MustAppend(table.Tuple{table.Int(int64(i % 3)), table.Int(int64(i))}, nil)
	}
	db.MustAdd(rel)
	udb := uncertain.New(db)
	for _, k := range []int{0, 1, 2, 5, 59, 60, 61} {
		for _, desc := range []bool{false, true} {
			plan := engine.Limit(engine.Sort(engine.Scan("T", "t"),
				engine.SortKey{By: engine.Col("t", "grp"), Desc: desc}), k)
			t.Run(fmt.Sprintf("k=%d,desc=%v", k, desc), func(t *testing.T) {
				assertEquivalent(t, udb, plan)
			})
		}
	}
}

// TestStreamingErrorFidelity checks the streaming compiler surfaces the
// same errors as the materializing executor, including ones pushdown could
// accidentally repair: an unqualified reference that is ambiguous across a
// self-join must stay ambiguous.
func TestStreamingErrorFidelity(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	selfJoin := engine.Join(
		engine.Scan("Acquisitions", "a"),
		engine.Scan("Acquisitions", "b"),
		engine.And())
	plans := map[string]engine.Node{
		"unknownRelation": engine.Scan("Nope", ""),
		"unknownColumn": engine.Select(engine.Scan("Roles", "r"),
			engine.Cmp(engine.Col("r", "Nope"), engine.OpEq, engine.Const(table.Int(1)))),
		"ambiguousUnqualified": engine.Select(selfJoin,
			engine.Cmp(engine.Col("", "Date"), engine.OpGe, engine.Const(table.Date(2017, 1, 1)))),
		"unionArity": engine.Union(
			engine.Project(engine.Scan("Roles", "r"), false, engine.Col("r", "Member")),
			engine.Project(engine.Scan("Roles", "r"), false,
				engine.Col("r", "Member"), engine.Col("r", "Role"))),
		"pushedUnknownColumn": engine.Select(
			engine.Join(engine.Scan("Acquisitions", "a"), engine.Scan("Roles", "r"), engine.And()),
			engine.Cmp(engine.Col("a", "Nope"), engine.OpEq, engine.Const(table.Int(1)))),
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) { assertEquivalentErr(t, udb, plan) })
	}
}

// TestRewriteShapes pins the rewrite pass's behavior through Shape: pushed
// selections render as Select*, straddling conjuncts merge into the join,
// ORDER BY … LIMIT fuses to TopK, and the original plan is not mutated.
func TestRewriteShapes(t *testing.T) {
	base := testdb.PaperQuery()
	before := engine.Shape(base)
	if want := "Distinct(Select(Join(Join(Scan,Scan),Scan)))"; before != want {
		t.Fatalf("paper plan shape = %q, want %q", before, want)
	}
	after := engine.Shape(engine.Rewrite(base))
	if want := "Distinct(Join(Join(Select*(Scan),Select*(Scan)),Scan))"; after != want {
		t.Errorf("rewritten paper shape = %q, want %q", after, want)
	}
	if again := engine.Shape(base); again != before {
		t.Errorf("Rewrite mutated its input: shape now %q", again)
	}

	topk := engine.Limit(engine.Sort(base, engine.SortKey{By: engine.Col("", "Acquired")}), 3)
	if got := engine.Shape(engine.Rewrite(topk)); !strings.HasPrefix(got, "TopK[3](") {
		t.Errorf("Limit(Sort) did not fuse: %q", got)
	}
	// A negative (unbounded) limit must not fuse.
	all := engine.Limit(engine.Sort(base, engine.SortKey{By: engine.Col("", "Acquired")}), -1)
	if got := engine.Shape(engine.Rewrite(all)); !strings.HasPrefix(got, "Limit[-1](Sort(") {
		t.Errorf("unbounded limit fused unexpectedly: %q", got)
	}
	// An unqualified conjunct stays where the user wrote it.
	unq := engine.Select(
		engine.Join(engine.Scan("Acquisitions", "a"), engine.Scan("Roles", "r"), engine.And()),
		engine.Cmp(engine.Col("", "Role"), engine.OpEq, engine.Const(table.String_("CEO"))))
	if got := engine.Shape(engine.Rewrite(unq)); got != "Select(Join(Scan,Scan))" {
		t.Errorf("unqualified conjunct moved: %q", got)
	}
}

// TestResultStatsCached is the regression test for the
// UniqueVars/MaxTermSize fix: both are computed once and cached, so
// mutating Rows afterwards (or the slice UniqueVars returned) must not
// change later answers.
func TestResultStatsCached(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	vars1 := res.UniqueVars()
	term1 := res.MaxTermSize()
	if len(vars1) == 0 || term1 == 0 {
		t.Fatalf("expected non-trivial stats, got %d vars, term %d", len(vars1), term1)
	}
	// Callers own the returned slice: scribbling on it must not leak into
	// the cache.
	want := append([]boolexpr.Var(nil), vars1...)
	vars1[0] += 999
	// Dropping all rows after the first computation must not change the
	// cached statistics either.
	res.Rows = nil
	vars2 := res.UniqueVars()
	if !equalVars(vars2, want) {
		t.Errorf("UniqueVars changed after mutation: %v vs %v", vars2, want)
	}
	if got := res.MaxTermSize(); got != term1 {
		t.Errorf("MaxTermSize changed after Rows mutation: %d vs %d", got, term1)
	}
}

func equalVars(a, b []boolexpr.Var) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEngineObservability checks the streaming executor's instrumentation:
// the always-on counters and, with a span sink attached, the per-operator
// query_op spans and the rewrite annotations on the query_eval span.
func TestEngineObservability(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	reg := obs.NewRegistry()
	sink := &obs.Collector{}
	o := obs.New("test", sink, reg)
	if _, err := engine.RunObserved(udb, testdb.PaperQuery(), o); err != nil {
		t.Fatal(err)
	}
	counter := func(name string) int64 { return reg.Counter(name, "test").Value() }
	if got := counter("engine_rows_scanned_total"); got == 0 {
		t.Error("engine_rows_scanned_total not incremented")
	}
	if got := counter("engine_rows_emitted_total"); got == 0 {
		t.Error("engine_rows_emitted_total not incremented")
	}
	if got := counter("engine_predicates_pushed_total"); got != 3 {
		t.Errorf("engine_predicates_pushed_total = %d, want 3 (two scan pushes + one join merge)", got)
	}
	if sink.StageCount(obs.StageQueryEval) != 1 {
		t.Error("missing query_eval span")
	}
	if sink.StageCount(obs.StageQueryOperator) == 0 {
		t.Error("missing query_op spans")
	}
	var rewritten string
	for _, ev := range sink.Events() {
		if ev.Stage != obs.StageQueryEval {
			continue
		}
		for _, a := range ev.Attrs {
			if a.Key == "rewritten" {
				rewritten, _ = a.Value.(string)
			}
		}
	}
	if !strings.Contains(rewritten, "Select*") {
		t.Errorf("query_eval span rewritten shape %q lacks pushdown annotation", rewritten)
	}

	// Without a sink the same run keeps counters but skips per-op spans.
	reg2 := obs.NewRegistry()
	o2 := obs.New("test", nil, reg2)
	if _, err := engine.RunObserved(udb, testdb.PaperQuery(), o2); err != nil {
		t.Fatal(err)
	}
	if got := reg2.Counter("engine_rows_scanned_total", "test").Value(); got == 0 {
		t.Error("counters must not require a span sink")
	}
}

// TestRunWorldStreaming checks possible-world evaluation (set semantics)
// still matches the provenance-tracking result keys after the streaming
// refactor.
func TestRunWorldStreaming(t *testing.T) {
	db := testdb.PaperDatabase()
	out, err := engine.RunWorld(db, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("expected rows from RunWorld")
	}
	for key, tup := range out {
		if key != tup.Key() {
			t.Errorf("map key %q does not match tuple key %q", key, tup.Key())
		}
	}
}

package engine

import (
	"fmt"
	"sort"
	"strings"

	"qres/internal/table"
)

// SortKey orders output rows by one scalar.
type SortKey struct {
	By   Scalar
	Desc bool
}

// Sort orders the input's rows by the given keys (stable; NULLs first
// ascending). Ordering does not affect provenance — it only fixes the row
// order that a subsequent Limit truncates, which is how the paper's
// Figure 6 subsets results ("the use of a LIMIT operator over a random
// ordering of the output").
func Sort(input Node, keys ...SortKey) Node { return &sortNode{input, keys} }

type sortNode struct {
	input Node
	keys  []SortKey
}

func (n *sortNode) exec(src Source) (outSchema, []Row, error) {
	schema, rows, err := n.input.exec(src)
	if err != nil {
		return nil, nil, err
	}
	evals := make([]func(table.Tuple) table.Value, len(n.keys))
	for i, k := range n.keys {
		f, _, err := k.By.bind(schema)
		if err != nil {
			return nil, nil, err
		}
		evals[i] = f
	}
	out := append([]Row(nil), rows...)
	sort.SliceStable(out, func(a, b int) bool {
		return compareRows(n.keys, evals, out[a].Tuple, out[b].Tuple) < 0
	})
	return schema, out, nil
}

func (n *sortNode) String() string {
	parts := make([]string, len(n.keys))
	for i, k := range n.keys {
		dir := ""
		if k.Desc {
			dir = " DESC"
		}
		parts[i] = k.By.String() + dir
	}
	return fmt.Sprintf("Sort(%s)[%s]", strings.Join(parts, ", "), n.input)
}

// Limit keeps the first n rows of the input. Combined with Sort it
// implements ORDER BY ... LIMIT; on its own it truncates in the input's
// deterministic order. Limiting shrinks the resolution problem: dropped
// rows' provenance never has to be decided.
func Limit(input Node, n int) Node { return &limitNode{input, n} }

type limitNode struct {
	input Node
	n     int
}

func (l *limitNode) exec(src Source) (outSchema, []Row, error) {
	schema, rows, err := l.input.exec(src)
	if err != nil {
		return nil, nil, err
	}
	if l.n >= 0 && len(rows) > l.n {
		rows = rows[:l.n]
	}
	return schema, rows, nil
}

func (l *limitNode) String() string {
	return fmt.Sprintf("Limit(%d)[%s]", l.n, l.input)
}

// topKNode is the fused ORDER BY … LIMIT k operator the rewrite pass
// produces from Limit(Sort(x)) when k ≥ 0. Streaming execution keeps a
// bounded heap of the k best rows (see topKIter) instead of sorting the
// full input; the result is identical to stable-sorting and truncating.
// Only the rewrite constructs this node, so the materializing reference
// executor never sees it — its exec below sorts and truncates, keeping the
// Node contract total.
type topKNode struct {
	input Node
	keys  []SortKey
	n     int
}

func (t *topKNode) exec(src Source) (outSchema, []Row, error) {
	schema, rows, err := (&sortNode{input: t.input, keys: t.keys}).exec(src)
	if err != nil {
		return nil, nil, err
	}
	if len(rows) > t.n {
		rows = rows[:t.n]
	}
	return schema, rows, nil
}

func (t *topKNode) String() string {
	parts := make([]string, len(t.keys))
	for i, k := range t.keys {
		dir := ""
		if k.Desc {
			dir = " DESC"
		}
		parts[i] = k.By.String() + dir
	}
	return fmt.Sprintf("TopK(%d; %s)[%s]", t.n, strings.Join(parts, ", "), t.input)
}

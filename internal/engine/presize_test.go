package engine

import (
	"math"
	"testing"

	"qres/internal/boolexpr"
	"qres/internal/table"
)

// presizeInput streams n tiny rows with True provenance — a stand-in for a
// build or sort input whose cardinality hint is wildly inflated.
type presizeInput struct {
	n, i int
	row  table.Tuple
}

func (p *presizeInput) Open() error {
	p.i = 0
	return nil
}

func (p *presizeInput) Next() (Row, bool, error) {
	if p.i >= p.n {
		return Row{}, false, nil
	}
	p.i++
	return Row{Tuple: p.row, Prov: boolexpr.True()}, true, nil
}

func (p *presizeInput) Close() {}

// TestPreSizeCapClamp pins the clampPreSize contract: unknown hints
// allocate nothing, sane hints pass through, and inflated hints are capped
// at maxPreSize.
func TestPreSizeCapClamp(t *testing.T) {
	cases := []struct{ hint, want int }{
		{-1, 0},
		{0, 0},
		{4096, 4096},
		{maxPreSize, maxPreSize},
		{maxPreSize + 1, maxPreSize},
		{math.MaxInt32, maxPreSize},
	}
	for _, c := range cases {
		if got := clampPreSize(c.hint); got != c.want {
			t.Errorf("clampPreSize(%d) = %d, want %d", c.hint, got, c.want)
		}
	}
}

// TestPreSizeCapRegression feeds each hinted operator a hint of
// math.MaxInt32 over a tiny input — the shape of a bad estimate at SF 1 —
// and requires the pre-allocated buffers to stay at or under maxPreSize
// instead of reserving gigabytes.
func TestPreSizeCapRegression(t *testing.T) {
	const hint = math.MaxInt32
	in := func(n int) *presizeInput {
		return &presizeInput{n: n, row: table.Tuple{table.Int(7)}}
	}
	drainAll := func(t *testing.T, it iter) {
		t.Helper()
		if err := it.Open(); err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		for {
			_, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return
			}
		}
	}

	t.Run("hashJoin", func(t *testing.T) {
		j := &hashJoinIter{
			left: in(3), right: in(5),
			conds:       []equiCond{{leftIdx: 0, rightIdx: 0}},
			rightStable: true, sizeHint: hint,
			scratch: make(table.Tuple, 0, 2),
		}
		if err := j.Open(); err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		if _, _, err := j.Next(); err != nil {
			t.Fatal(err)
		}
		if cap(j.rows) > maxPreSize {
			t.Fatalf("hash join build pre-allocated %d rows, cap is %d", cap(j.rows), maxPreSize)
		}
	})

	t.Run("loopJoin", func(t *testing.T) {
		j := &loopJoinIter{
			left: in(3), right: in(5),
			rightStable: true, sizeHint: hint,
			scratch: make(table.Tuple, 0, 2),
		}
		if err := j.Open(); err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		if _, _, err := j.Next(); err != nil {
			t.Fatal(err)
		}
		if cap(j.rows) > maxPreSize {
			t.Fatalf("loop join build pre-allocated %d rows, cap is %d", cap(j.rows), maxPreSize)
		}
	})

	t.Run("sort", func(t *testing.T) {
		s := &sortIter{in: in(5), sizeHint: hint}
		if err := s.Open(); err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, _, err := s.Next(); err != nil {
			t.Fatal(err)
		}
		if cap(s.rows) > maxPreSize {
			t.Fatalf("sort pre-allocated %d rows, cap is %d", cap(s.rows), maxPreSize)
		}
	})

	t.Run("topK", func(t *testing.T) {
		k := &topKIter{in: in(5), k: hint}
		drainAll(t, k)
		if cap(k.entries) > maxPreSize {
			t.Fatalf("top-k pre-allocated %d entries, cap is %d", cap(k.entries), maxPreSize)
		}
	})

	t.Run("sharedBuild", func(t *testing.T) {
		b := &sharedBuild{
			in: in(5), stable: true,
			conds:    []equiCond{{leftIdx: 0, rightIdx: 0}},
			sizeHint: hint,
		}
		if err := b.run(4); err != nil {
			t.Fatal(err)
		}
		if cap(b.rows) > maxPreSize {
			t.Fatalf("shared build pre-allocated %d rows, cap is %d", cap(b.rows), maxPreSize)
		}
	})
}

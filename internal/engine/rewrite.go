package engine

import "strings"

// Rewrite applies the engine's plan-rewrite pass and returns a new,
// semantically equivalent plan; the input plan is never mutated (plans are
// routinely reused across runs). The pass performs three rewrites:
//
//   - Predicate pushdown: selection conjuncts referencing a single side of
//     a join sink below it, all the way into a Select directly above the
//     relevant Scan (where the streaming executor fuses them into the scan
//     loop). Conjuncts referencing both sides of a join merge into the
//     join condition, where equality conjuncts become hash-join keys.
//   - Same-side join conditions: conjuncts of a join's own condition that
//     reference only one input likewise sink into that input.
//   - Top-k fusion: Limit(Sort(x)) with a non-negative limit becomes a
//     single TopK operator with a bounded heap.
//
// Pushdown is deliberately conservative so the rewritten plan binds with
// exactly the errors of the original: only conjuncts whose column
// references are all alias-qualified move (an unqualified reference could
// be ambiguous, and the error must surface where the user wrote it), a
// conjunct only sinks to a join side when its qualifiers resolve uniquely
// there, and nothing pushes through Project or Union (both rewrite the
// visible schema) or through Limit/TopK (filtering before truncation
// changes the result).
func Rewrite(plan Node) Node {
	n, _ := rewriteWithStats(plan)
	return n
}

// rewriteStats counts what the rewrite did, feeding the executor's
// engine_predicates_pushed / engine_topk_fused counters and the rewrite
// annotations in trace spans.
type rewriteStats struct {
	// pushed counts selection conjuncts relocated below the operator they
	// were written on (into a pushed Select or a join condition).
	pushed int
	// topk counts Limit(Sort) pairs fused into TopK operators.
	topk int
}

// rewriteWithStats is Rewrite, also reporting what changed.
func rewriteWithStats(plan Node) (Node, rewriteStats) {
	var st rewriteStats
	return rewriteNode(plan, &st), st
}

func rewriteNode(n Node, st *rewriteStats) Node {
	switch t := n.(type) {
	case *scanNode:
		return t

	case *selectNode:
		in := rewriteNode(t.input, st)
		conjs := flattenPred(t.pred)
		node, rem := pushConjuncts(in, conjs)
		st.pushed += len(conjs) - len(rem)
		if len(rem) == 0 {
			return node
		}
		return &selectNode{input: node, pred: combinePred(rem), pushed: t.pushed}

	case *joinNode:
		l := rewriteNode(t.left, st)
		r := rewriteNode(t.right, st)
		return rewriteJoin(l, r, flattenPred(t.on), st)

	case *projectNode:
		return &projectNode{input: rewriteNode(t.input, st), distinct: t.distinct, cols: t.cols}

	case *unionNode:
		ins := make([]Node, len(t.inputs))
		for i, in := range t.inputs {
			ins[i] = rewriteNode(in, st)
		}
		return &unionNode{inputs: ins}

	case *sortNode:
		return &sortNode{input: rewriteNode(t.input, st), keys: t.keys}

	case *limitNode:
		in := rewriteNode(t.input, st)
		if s, ok := in.(*sortNode); ok && t.n >= 0 {
			st.topk++
			return &topKNode{input: s.input, keys: s.keys, n: t.n}
		}
		return &limitNode{input: in, n: t.n}

	default:
		return n
	}
}

// rewriteJoin builds the rewritten join of l and r under the condition
// conjuncts: same-side conjuncts sink into their input, the rest stay in
// the join condition.
func rewriteJoin(l, r Node, conjs []Predicate, st *rewriteStats) Node {
	la, ra := aliases(l), aliases(r)
	var leftList, rightList, on []Predicate
	for _, c := range conjs {
		switch side(c, la, ra) {
		case sideLeft:
			leftList = append(leftList, c)
		case sideRight:
			rightList = append(rightList, c)
		default:
			on = append(on, c)
		}
	}
	l2, remL := pushConjuncts(l, leftList)
	r2, remR := pushConjuncts(r, rightList)
	st.pushed += len(leftList) - len(remL) + len(rightList) - len(remR)
	// Conjuncts assigned to a side but not absorbed there (e.g. blocked by
	// a Project inside the subtree) return to the join condition, which is
	// evaluated over the same concatenated schema they were written
	// against.
	on = append(on, remL...)
	on = append(on, remR...)
	return &joinNode{left: l2, right: r2, on: combineOn(on)}
}

// pushSide classifies where a conjunct can move relative to a join.
type pushSide uint8

const (
	sideNone pushSide = iota
	sideLeft
	sideRight
)

// side decides whether conjunct c can sink into the left or right input of
// a join whose inputs expose the alias sets la and ra. It requires every
// column reference to be qualified, and every qualifier to resolve on
// exactly one side — a qualifier known to both sides would bind ambiguously
// above the join, and that error must be preserved, so the conjunct stays
// put.
func side(c Predicate, la, ra map[string]bool) pushSide {
	quals, ok := predQualifiers(c)
	if !ok || len(quals) == 0 {
		return sideNone
	}
	left, right := false, false
	for q := range quals {
		inL, inR := la[q], ra[q]
		switch {
		case inL && !inR:
			left = true
		case inR && !inL:
			right = true
		default:
			return sideNone
		}
	}
	if left && right {
		return sideNone
	}
	if left {
		return sideLeft
	}
	return sideRight
}

// pushConjuncts sinks as many of the conjuncts as possible into n,
// returning the rewritten node and the conjuncts that could not be
// absorbed (absorption count = len(conjs) − len(remaining)). Pushing never
// crosses Project, Union, Limit or TopK.
func pushConjuncts(n Node, conjs []Predicate) (Node, []Predicate) {
	if len(conjs) == 0 {
		return n, nil
	}
	switch t := n.(type) {
	case *scanNode:
		alias := strings.ToLower(t.alias)
		if alias == "" {
			alias = strings.ToLower(t.relation)
		}
		var here, rem []Predicate
		for _, c := range conjs {
			quals, ok := predQualifiers(c)
			if ok && len(quals) > 0 && onlyQualifier(quals, alias) {
				here = append(here, c)
			} else {
				rem = append(rem, c)
			}
		}
		if len(here) == 0 {
			return n, rem
		}
		return &selectNode{input: t, pred: combinePred(here), pushed: true}, rem

	case *selectNode:
		in, rem := pushConjuncts(t.input, conjs)
		if in == t.input {
			return n, rem
		}
		return &selectNode{input: in, pred: t.pred, pushed: t.pushed}, rem

	case *sortNode:
		in, rem := pushConjuncts(t.input, conjs)
		if in == t.input {
			return n, rem
		}
		return &sortNode{input: in, keys: t.keys}, rem

	case *joinNode:
		la, ra := aliases(t.left), aliases(t.right)
		var leftList, rightList, merge, rem []Predicate
		for _, c := range conjs {
			switch side(c, la, ra) {
			case sideLeft:
				leftList = append(leftList, c)
			case sideRight:
				rightList = append(rightList, c)
			default:
				if mergeableIntoOn(c, la, ra) {
					merge = append(merge, c)
				} else {
					rem = append(rem, c)
				}
			}
		}
		if len(leftList) == 0 && len(rightList) == 0 && len(merge) == 0 {
			return n, rem
		}
		l2, remL := pushConjuncts(t.left, leftList)
		r2, remR := pushConjuncts(t.right, rightList)
		on := flattenPred(t.on)
		on = append(on, merge...)
		on = append(on, remL...)
		on = append(on, remR...)
		return &joinNode{left: l2, right: r2, on: combineOn(on)}, rem

	default:
		// Project, Union, Limit, TopK (and anything unknown): schema or
		// semantics change across the boundary, so nothing sinks.
		return n, conjs
	}
}

// mergeableIntoOn reports whether a conjunct that cannot sink to one side
// may instead merge into the join condition: all its references must be
// qualified and all qualifiers known within the join (the concatenated
// schema the condition binds against is identical to the schema above the
// join, so binding behavior — including ambiguity errors for a qualifier
// visible on both sides — is preserved).
func mergeableIntoOn(c Predicate, la, ra map[string]bool) bool {
	quals, ok := predQualifiers(c)
	if !ok || len(quals) == 0 {
		return false
	}
	for q := range quals {
		if !la[q] && !ra[q] {
			return false
		}
	}
	return true
}

// onlyQualifier reports whether alias is the only qualifier in the set.
func onlyQualifier(quals map[string]bool, alias string) bool {
	for q := range quals {
		if q != alias {
			return false
		}
	}
	return true
}

// aliases returns the set of lowercase relation aliases whose qualified
// columns are visible in the subtree's output schema. Project erases
// qualifiers and Union exposes its first input's schema, so those cases
// return the visibility boundary rather than every alias underneath.
func aliases(n Node) map[string]bool {
	switch t := n.(type) {
	case *scanNode:
		a := t.alias
		if a == "" {
			a = t.relation
		}
		return map[string]bool{strings.ToLower(a): true}
	case *selectNode:
		return aliases(t.input)
	case *sortNode:
		return aliases(t.input)
	case *limitNode:
		return aliases(t.input)
	case *topKNode:
		return aliases(t.input)
	case *joinNode:
		out := aliases(t.left)
		for a := range aliases(t.right) {
			out[a] = true
		}
		return out
	case *unionNode:
		if len(t.inputs) > 0 {
			return aliases(t.inputs[0])
		}
		return map[string]bool{}
	default:
		// Project output columns carry no qualifiers.
		return map[string]bool{}
	}
}

// flattenPred splits the top-level AND structure of a predicate into its
// conjuncts.
func flattenPred(p Predicate) []Predicate {
	var out []Predicate
	var walk func(Predicate)
	walk = func(q Predicate) {
		if a, ok := q.(andPred); ok {
			for _, sub := range a.ps {
				walk(sub)
			}
			return
		}
		out = append(out, q)
	}
	if p != nil {
		walk(p)
	}
	return out
}

// combinePred rebuilds a predicate from conjuncts (which is never empty
// when called).
func combinePred(conjs []Predicate) Predicate {
	if len(conjs) == 1 {
		return conjs[0]
	}
	return And(conjs...)
}

// combineOn rebuilds a join condition from conjuncts; with none left the
// condition is the empty conjunction (always true — a cross join).
func combineOn(conjs []Predicate) Predicate {
	if len(conjs) == 0 {
		return And()
	}
	return combinePred(conjs)
}

// predQualifiers collects the lowercase qualifiers of every column
// reference in a predicate. ok=false means the predicate contains an
// unqualified reference or a construct the walker does not recognize, in
// which case the rewrite leaves it where it is.
func predQualifiers(p Predicate) (map[string]bool, bool) {
	quals := map[string]bool{}
	if !walkPredRefs(p, quals) {
		return nil, false
	}
	return quals, true
}

func walkPredRefs(p Predicate, quals map[string]bool) bool {
	switch q := p.(type) {
	case cmpPred:
		return walkScalarRefs(q.left, quals) && walkScalarRefs(q.right, quals)
	case likePred:
		return walkScalarRefs(q.col, quals)
	case inPred:
		return walkScalarRefs(q.col, quals)
	case notNullPred:
		return walkScalarRefs(q.col, quals)
	case andPred:
		for _, sub := range q.ps {
			if !walkPredRefs(sub, quals) {
				return false
			}
		}
		return true
	case orPred:
		for _, sub := range q.ps {
			if !walkPredRefs(sub, quals) {
				return false
			}
		}
		return true
	case notPred:
		return walkPredRefs(q.p, quals)
	default:
		return false
	}
}

func walkScalarRefs(s Scalar, quals map[string]bool) bool {
	switch c := s.(type) {
	case colRef:
		if c.qualifier == "" {
			return false
		}
		quals[strings.ToLower(c.qualifier)] = true
		return true
	case constant:
		return true
	case yearOf:
		return walkScalarRefs(c.of, quals)
	default:
		return false
	}
}

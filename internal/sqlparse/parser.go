package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"qres/internal/table"
)

// Parse parses an SPJU SQL statement.
func Parse(input string) (*Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing input starting at %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sqlparse: "+format+" (at offset %d)", append(args, p.peek().pos)...)
}

// keyword reports whether the next token is the given keyword
// (case-insensitive) and consumes it if so.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

// peekKeyword reports whether the next token is the keyword, without
// consuming.
func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errorf("expected %s, found %q", strings.ToUpper(kw), p.peek().text)
	}
	return nil
}

func (p *parser) symbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.symbol(sym) {
		return p.errorf("expected %q, found %q", sym, p.peek().text)
	}
	return nil
}

// reserved keywords that terminate identifiers in clause positions.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "union": true,
	"and": true, "or": true, "not": true, "like": true, "in": true,
	"is": true, "null": true, "as": true, "distinct": true,
	"order": true, "by": true, "limit": true,
}

func (p *parser) parseStmt() (*Stmt, error) {
	stmt := &Stmt{Limit: -1}
	for {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.Selects = append(stmt.Selects, sel)
		if !p.keyword("union") {
			break
		}
		// Plain UNION (set semantics); UNION ALL is not in the fragment.
		if p.peekKeyword("all") {
			return nil, p.errorf("UNION ALL is not supported (set semantics only)")
		}
	}
	if p.keyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseScalar()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: col}
			if p.keyword("desc") {
				item.Desc = true
			} else {
				p.keyword("asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("limit") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("LIMIT expects a number, found %q", t.text)
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	sel.Distinct = p.keyword("distinct")

	if p.symbol("*") {
		sel.Star = true
	} else {
		for {
			item, err := p.parseScalar()
			if err != nil {
				return nil, err
			}
			sel.Items = append(sel.Items, item)
			if !p.symbol(",") {
				break
			}
		}
	}

	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, ref)
		if !p.symbol(",") {
			break
		}
	}

	if p.keyword("where") {
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		sel.Where = cond
	}
	return sel, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.peek()
	if t.kind != tokIdent || reserved[strings.ToLower(t.text)] {
		return TableRef{}, p.errorf("expected relation name, found %q", t.text)
	}
	p.next()
	ref := TableRef{Name: t.text, Alias: t.text}
	p.keyword("as") // optional AS
	a := p.peek()
	if a.kind == tokIdent && !reserved[strings.ToLower(a.text)] {
		p.next()
		ref.Alias = a.text
	}
	return ref, nil
}

func (p *parser) parseOr() (CondExpr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	parts := []CondExpr{left}
	for p.keyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return OrCond{Parts: parts}, nil
}

func (p *parser) parseAnd() (CondExpr, error) {
	left, err := p.parsePrimaryCond()
	if err != nil {
		return nil, err
	}
	parts := []CondExpr{left}
	for p.keyword("and") {
		right, err := p.parsePrimaryCond()
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return AndCond{Parts: parts}, nil
}

func (p *parser) parsePrimaryCond() (CondExpr, error) {
	if p.keyword("not") {
		inner, err := p.parsePrimaryCond()
		if err != nil {
			return nil, err
		}
		return NotCond{Inner: inner}, nil
	}
	if p.symbol("(") {
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return cond, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (CondExpr, error) {
	left, err := p.parseScalar()
	if err != nil {
		return nil, err
	}

	negate := p.keyword("not")

	switch {
	case p.keyword("like"):
		t := p.peek()
		if t.kind != tokString {
			return nil, p.errorf("LIKE expects a string pattern, found %q", t.text)
		}
		p.next()
		return LikeCond{Col: left, Pattern: t.text, Negate: negate}, nil

	case p.keyword("in"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var values []table.Value
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			values = append(values, lit)
			if !p.symbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return InCond{Col: left, Values: values, Negate: negate}, nil

	case negate:
		return nil, p.errorf("NOT must precede LIKE or IN here")

	case p.keyword("is"):
		neg := !p.keyword("not") // IS NOT NULL → Negate=false; IS NULL → true
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		return NotNullCond{Col: left, Negate: neg}, nil
	}

	t := p.peek()
	if t.kind != tokSymbol {
		return nil, p.errorf("expected comparison operator, found %q", t.text)
	}
	op := t.text
	switch op {
	case "=", "!=", "<>", "<", "<=", ">", ">=":
		p.next()
	default:
		return nil, p.errorf("unsupported operator %q", op)
	}
	if op == "<>" {
		op = "!="
	}
	right, err := p.parseScalar()
	if err != nil {
		return nil, err
	}
	return CmpCond{Left: left, Op: op, Right: right}, nil
}

func (p *parser) parseScalar() (ScalarExpr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		return LitExpr{Value: numberValue(t.text)}, nil
	case tokDate:
		p.next()
		v, err := dateValue(t.text)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		return LitExpr{Value: v}, nil
	case tokString:
		p.next()
		return LitExpr{Value: table.String_(t.text)}, nil
	case tokIdent:
		lower := strings.ToLower(t.text)
		if lower == "year" && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			p.next()
			p.next() // '('
			inner, err := p.parseScalar()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return YearExpr{Of: inner}, nil
		}
		if lower == "date" && p.toks[p.pos+1].kind == tokString {
			p.next()
			s := p.next()
			v, err := dateValue(s.text)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			return LitExpr{Value: v}, nil
		}
		if lower == "null" {
			p.next()
			return LitExpr{Value: table.Null()}, nil
		}
		if reserved[lower] {
			return nil, p.errorf("unexpected keyword %q", t.text)
		}
		p.next()
		if p.symbol(".") {
			col := p.peek()
			if col.kind != tokIdent {
				return nil, p.errorf("expected column after %q.", t.text)
			}
			p.next()
			return ColExpr{Qualifier: t.text, Name: col.text}, nil
		}
		return ColExpr{Name: t.text}, nil
	}
	return nil, p.errorf("expected scalar expression, found %q", t.text)
}

func (p *parser) parseLiteral() (table.Value, error) {
	s, err := p.parseScalar()
	if err != nil {
		return table.Value{}, err
	}
	lit, ok := s.(LitExpr)
	if !ok {
		return table.Value{}, p.errorf("expected literal value")
	}
	return lit.Value, nil
}

func numberValue(text string) table.Value {
	if strings.Contains(text, ".") {
		f, _ := strconv.ParseFloat(text, 64)
		return table.Float(f)
	}
	i, _ := strconv.ParseInt(text, 10, 64)
	return table.Int(i)
}

func dateValue(text string) (table.Value, error) {
	parts := strings.FieldsFunc(text, func(r rune) bool { return r == '-' || r == '.' || r == '/' })
	if len(parts) != 3 {
		return table.Value{}, fmt.Errorf("malformed date %q", text)
	}
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	d, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || m < 1 || m > 12 || d < 1 || d > 31 {
		return table.Value{}, fmt.Errorf("malformed date %q", text)
	}
	return table.Date(y, m, d), nil
}

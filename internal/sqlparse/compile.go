package sqlparse

import (
	"fmt"
	"strings"

	"qres/internal/engine"
	"qres/internal/table"
)

// Catalog resolves relation names to schemas; *table.Database satisfies it.
type Catalog interface {
	Relation(name string) (*table.Relation, bool)
}

// Compile translates the statement into an engine plan over the catalog:
// left-deep joins in FROM order, with single-table conditions pushed below
// the joins and join conditions attached at the lowest join where all
// their columns are available (so equality conditions execute as hash
// joins), topped by projection and UNION.
func (s *Stmt) Compile(cat Catalog) (engine.Node, error) {
	if len(s.Selects) == 0 {
		return nil, fmt.Errorf("sqlparse: empty statement")
	}
	var nodes []engine.Node
	for _, sel := range s.Selects {
		n, err := compileSelect(sel, cat)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
	node := nodes[0]
	if len(nodes) > 1 {
		node = engine.Union(nodes...)
	}
	// ORDER BY keys bind against the output schema (projected names are
	// unqualified); LIMIT truncates after ordering.
	if len(s.OrderBy) > 0 {
		keys := make([]engine.SortKey, 0, len(s.OrderBy))
		for _, item := range s.OrderBy {
			sc, err := compileScalar(item.Col)
			if err != nil {
				return nil, err
			}
			keys = append(keys, engine.SortKey{By: sc, Desc: item.Desc})
		}
		node = engine.Sort(node, keys...)
	}
	if s.Limit >= 0 {
		node = engine.Limit(node, s.Limit)
	}
	return node, nil
}

// ParseAndCompile is the convenience one-shot front door.
func ParseAndCompile(query string, cat Catalog) (engine.Node, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return stmt.Compile(cat)
}

// compileSelect compiles one SELECT block.
func compileSelect(sel *SelectStmt, cat Catalog) (engine.Node, error) {
	// Bind FROM entries and alias schemas.
	type fromEntry struct {
		ref    TableRef
		schema *table.Schema
	}
	entries := make([]fromEntry, 0, len(sel.From))
	byAlias := make(map[string]*table.Schema)
	for _, ref := range sel.From {
		rel, ok := cat.Relation(ref.Name)
		if !ok {
			return nil, fmt.Errorf("sqlparse: unknown relation %q", ref.Name)
		}
		key := strings.ToLower(ref.Alias)
		if _, dup := byAlias[key]; dup {
			return nil, fmt.Errorf("sqlparse: duplicate alias %q", ref.Alias)
		}
		byAlias[key] = rel.Schema()
		entries = append(entries, fromEntry{ref: ref, schema: rel.Schema()})
	}

	// Resolve unqualified column references against the FROM schemas.
	resolve := func(c ColExpr) (ColExpr, error) {
		if c.Qualifier != "" {
			schema, ok := byAlias[strings.ToLower(c.Qualifier)]
			if !ok {
				return c, fmt.Errorf("sqlparse: unknown alias %q", c.Qualifier)
			}
			if _, ok := schema.Index(c.Name); !ok {
				return c, fmt.Errorf("sqlparse: relation %q has no column %q", c.Qualifier, c.Name)
			}
			return c, nil
		}
		found := ""
		for _, e := range entries {
			if _, ok := e.schema.Index(c.Name); ok {
				if found != "" {
					return c, fmt.Errorf("sqlparse: ambiguous column %q", c.Name)
				}
				found = e.ref.Alias
			}
		}
		if found == "" {
			return c, fmt.Errorf("sqlparse: unknown column %q", c.Name)
		}
		c.Qualifier = found
		return c, nil
	}

	// Split WHERE into top-level conjuncts and resolve their columns.
	var conjuncts []CondExpr
	var flatten func(c CondExpr)
	flatten = func(c CondExpr) {
		if and, ok := c.(AndCond); ok {
			for _, p := range and.Parts {
				flatten(p)
			}
			return
		}
		conjuncts = append(conjuncts, c)
	}
	if sel.Where != nil {
		flatten(sel.Where)
	}
	for i, c := range conjuncts {
		rc, err := resolveCond(c, resolve)
		if err != nil {
			return nil, err
		}
		conjuncts[i] = rc
	}

	// Push single-alias conjuncts below the joins.
	placed := make([]bool, len(conjuncts))
	scanFor := func(i int) (engine.Node, error) {
		alias := strings.ToLower(entries[i].ref.Alias)
		node := engine.Node(engine.Scan(entries[i].ref.Name, entries[i].ref.Alias))
		var preds []engine.Predicate
		for ci, c := range conjuncts {
			if placed[ci] {
				continue
			}
			quals := condQualifiers(c)
			if len(quals) == 1 && quals[alias] {
				p, err := compileCond(c)
				if err != nil {
					return nil, err
				}
				preds = append(preds, p)
				placed[ci] = true
			} else if len(quals) == 0 && i == 0 {
				// Constant condition: evaluate once, at the first scan.
				p, err := compileCond(c)
				if err != nil {
					return nil, err
				}
				preds = append(preds, p)
				placed[ci] = true
			}
		}
		if len(preds) > 0 {
			node = engine.Select(node, engine.And(preds...))
		}
		return node, nil
	}

	current, err := scanFor(0)
	if err != nil {
		return nil, err
	}
	avail := map[string]bool{strings.ToLower(entries[0].ref.Alias): true}
	for i := 1; i < len(entries); i++ {
		right, err := scanFor(i)
		if err != nil {
			return nil, err
		}
		alias := strings.ToLower(entries[i].ref.Alias)
		nowAvail := map[string]bool{alias: true}
		for a := range avail {
			nowAvail[a] = true
		}
		var joinPreds []engine.Predicate
		for ci, c := range conjuncts {
			if placed[ci] {
				continue
			}
			quals := condQualifiers(c)
			if len(quals) == 0 {
				continue
			}
			subset := true
			for q := range quals {
				if !nowAvail[q] {
					subset = false
					break
				}
			}
			if subset {
				p, err := compileCond(c)
				if err != nil {
					return nil, err
				}
				joinPreds = append(joinPreds, p)
				placed[ci] = true
			}
		}
		current = engine.Join(current, right, engine.And(joinPreds...))
		avail = nowAvail
	}
	for ci := range conjuncts {
		if !placed[ci] {
			p, err := compileCond(conjuncts[ci])
			if err != nil {
				return nil, err
			}
			current = engine.Select(current, p)
		}
	}

	// Projection.
	if sel.Star {
		if !sel.Distinct {
			return current, nil
		}
		// SELECT DISTINCT *: project every column explicitly.
		var cols []engine.Scalar
		for _, e := range entries {
			for _, c := range e.schema.Columns() {
				cols = append(cols, engine.Col(e.ref.Alias, c.Name))
			}
		}
		return engine.Project(current, true, cols...), nil
	}
	cols := make([]engine.Scalar, 0, len(sel.Items))
	for _, item := range sel.Items {
		rs, err := resolveScalar(item, resolve)
		if err != nil {
			return nil, err
		}
		s, err := compileScalar(rs)
		if err != nil {
			return nil, err
		}
		cols = append(cols, s)
	}
	return engine.Project(current, sel.Distinct, cols...), nil
}

// resolveScalar rewrites unqualified column references.
func resolveScalar(s ScalarExpr, resolve func(ColExpr) (ColExpr, error)) (ScalarExpr, error) {
	switch v := s.(type) {
	case ColExpr:
		return resolve(v)
	case YearExpr:
		inner, err := resolveScalar(v.Of, resolve)
		if err != nil {
			return nil, err
		}
		return YearExpr{Of: inner}, nil
	default:
		return s, nil
	}
}

// resolveCond rewrites unqualified column references inside a condition.
func resolveCond(c CondExpr, resolve func(ColExpr) (ColExpr, error)) (CondExpr, error) {
	switch v := c.(type) {
	case CmpCond:
		l, err := resolveScalar(v.Left, resolve)
		if err != nil {
			return nil, err
		}
		r, err := resolveScalar(v.Right, resolve)
		if err != nil {
			return nil, err
		}
		return CmpCond{Left: l, Op: v.Op, Right: r}, nil
	case LikeCond:
		col, err := resolveScalar(v.Col, resolve)
		if err != nil {
			return nil, err
		}
		return LikeCond{Col: col, Pattern: v.Pattern, Negate: v.Negate}, nil
	case InCond:
		col, err := resolveScalar(v.Col, resolve)
		if err != nil {
			return nil, err
		}
		return InCond{Col: col, Values: v.Values, Negate: v.Negate}, nil
	case NotNullCond:
		col, err := resolveScalar(v.Col, resolve)
		if err != nil {
			return nil, err
		}
		return NotNullCond{Col: col, Negate: v.Negate}, nil
	case AndCond:
		parts := make([]CondExpr, len(v.Parts))
		for i, p := range v.Parts {
			rp, err := resolveCond(p, resolve)
			if err != nil {
				return nil, err
			}
			parts[i] = rp
		}
		return AndCond{Parts: parts}, nil
	case OrCond:
		parts := make([]CondExpr, len(v.Parts))
		for i, p := range v.Parts {
			rp, err := resolveCond(p, resolve)
			if err != nil {
				return nil, err
			}
			parts[i] = rp
		}
		return OrCond{Parts: parts}, nil
	case NotCond:
		inner, err := resolveCond(v.Inner, resolve)
		if err != nil {
			return nil, err
		}
		return NotCond{Inner: inner}, nil
	default:
		return nil, fmt.Errorf("sqlparse: unknown condition %T", c)
	}
}

// condQualifiers collects the (lower-cased) aliases referenced by a
// condition.
func condQualifiers(c CondExpr) map[string]bool {
	out := make(map[string]bool)
	var walkScalar func(s ScalarExpr)
	walkScalar = func(s ScalarExpr) {
		switch v := s.(type) {
		case ColExpr:
			out[strings.ToLower(v.Qualifier)] = true
		case YearExpr:
			walkScalar(v.Of)
		}
	}
	var walk func(c CondExpr)
	walk = func(c CondExpr) {
		switch v := c.(type) {
		case CmpCond:
			walkScalar(v.Left)
			walkScalar(v.Right)
		case LikeCond:
			walkScalar(v.Col)
		case InCond:
			walkScalar(v.Col)
		case NotNullCond:
			walkScalar(v.Col)
		case AndCond:
			for _, p := range v.Parts {
				walk(p)
			}
		case OrCond:
			for _, p := range v.Parts {
				walk(p)
			}
		case NotCond:
			walk(v.Inner)
		}
	}
	walk(c)
	return out
}

// compileScalar converts a resolved scalar AST to an engine scalar.
func compileScalar(s ScalarExpr) (engine.Scalar, error) {
	switch v := s.(type) {
	case ColExpr:
		return engine.Col(v.Qualifier, v.Name), nil
	case LitExpr:
		return engine.Const(v.Value), nil
	case YearExpr:
		inner, err := compileScalar(v.Of)
		if err != nil {
			return nil, err
		}
		return engine.Year(inner), nil
	default:
		return nil, fmt.Errorf("sqlparse: unknown scalar %T", s)
	}
}

var cmpOps = map[string]engine.CmpOp{
	"=": engine.OpEq, "!=": engine.OpNe,
	"<": engine.OpLt, "<=": engine.OpLe,
	">": engine.OpGt, ">=": engine.OpGe,
}

// compileCond converts a resolved condition AST to an engine predicate.
func compileCond(c CondExpr) (engine.Predicate, error) {
	switch v := c.(type) {
	case CmpCond:
		l, err := compileScalar(v.Left)
		if err != nil {
			return nil, err
		}
		r, err := compileScalar(v.Right)
		if err != nil {
			return nil, err
		}
		op, ok := cmpOps[v.Op]
		if !ok {
			return nil, fmt.Errorf("sqlparse: unknown operator %q", v.Op)
		}
		return engine.Cmp(l, op, r), nil
	case LikeCond:
		col, err := compileScalar(v.Col)
		if err != nil {
			return nil, err
		}
		p := engine.Like(col, v.Pattern)
		if v.Negate {
			p = engine.Not(p)
		}
		return p, nil
	case InCond:
		col, err := compileScalar(v.Col)
		if err != nil {
			return nil, err
		}
		p := engine.In(col, v.Values...)
		if v.Negate {
			p = engine.Not(p)
		}
		return p, nil
	case NotNullCond:
		col, err := compileScalar(v.Col)
		if err != nil {
			return nil, err
		}
		p := engine.IsNotNull(col)
		if v.Negate {
			p = engine.Not(p)
		}
		return p, nil
	case AndCond:
		parts := make([]engine.Predicate, len(v.Parts))
		for i, sub := range v.Parts {
			p, err := compileCond(sub)
			if err != nil {
				return nil, err
			}
			parts[i] = p
		}
		return engine.And(parts...), nil
	case OrCond:
		parts := make([]engine.Predicate, len(v.Parts))
		for i, sub := range v.Parts {
			p, err := compileCond(sub)
			if err != nil {
				return nil, err
			}
			parts[i] = p
		}
		return engine.Or(parts...), nil
	case NotCond:
		inner, err := compileCond(v.Inner)
		if err != nil {
			return nil, err
		}
		return engine.Not(inner), nil
	default:
		return nil, fmt.Errorf("sqlparse: unknown condition %T", c)
	}
}

package sqlparse_test

import (
	"strings"
	"testing"

	"qres/internal/boolexpr"
	"qres/internal/engine"
	"qres/internal/sqlparse"
	"qres/internal/table"
	"qres/internal/testdb"
	"qres/internal/uncertain"
)

// paperSQL is the Figure 2 query verbatim (with the paper's dotted date
// literal).
const paperSQL = `
SELECT DISTINCT a.Acquired, e.Institute
FROM Acquisitions AS a, Roles AS r, Education AS e
WHERE a.Acquired = r.Organization AND
      r.Member = e.Alumni AND a.Date >= 2017.01.01 AND
      r.Role LIKE '%found%' AND e.YEAR <= year(a.Date)
`

// The SQL front door must produce exactly the same annotated result as the
// hand-built algebra plan, including provenance.
func TestPaperSQLMatchesAlgebra(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	plan, err := sqlparse.ParseAndCompile(paperSQL, udb.Data())
	if err != nil {
		t.Fatal(err)
	}
	got, err := engine.Run(udb, plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Run(udb, testdb.PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("SQL: %d rows, algebra: %d rows", len(got.Rows), len(want.Rows))
	}
	wantProv := make(map[string]boolexpr.Expr)
	for _, r := range want.Rows {
		wantProv[r.Tuple.Key()] = r.Prov
	}
	for _, r := range got.Rows {
		w, ok := wantProv[r.Tuple.Key()]
		if !ok {
			t.Fatalf("unexpected tuple %v", r.Tuple)
		}
		if !r.Prov.Equal(w) {
			t.Fatalf("provenance mismatch for %v: %v vs %v", r.Tuple, r.Prov, w)
		}
	}
	// The compiled plan must use hash joins (equi-conditions were placed
	// at joins, not left for a post-filter over a cross product).
	s := plan.String()
	if !strings.Contains(s, "Join(((a.Acquired = r.Organization))") &&
		!strings.Contains(s, "a.Acquired = r.Organization") {
		t.Errorf("join condition missing from plan: %s", s)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * WHERE x = 1",
		"SELECT * FROM",
		"SELECT a. FROM t",
		"FROM t SELECT *",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE x LIKE 5",
		"SELECT * FROM t WHERE x IN 5",
		"SELECT * FROM t WHERE x IS 5",
		"SELECT * FROM t WHERE x NOT = 5",
		"SELECT * FROM t WHERE x = 'unterminated",
		"SELECT * FROM t extra garbage ; here",
		"SELECT * FROM t UNION ALL SELECT * FROM t",
		"SELECT * FROM t WHERE x ~ 5",
		"SELECT * FROM t WHERE x = DATE 'not-a-date'",
		"SELECT * FROM t WHERE d = 2017.13.45",
	}
	for _, q := range bad {
		if _, err := sqlparse.Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	db := testdb.PaperDatabase()
	bad := []string{
		"SELECT * FROM Missing",
		"SELECT x.foo FROM Acquisitions AS x",
		"SELECT foo FROM Acquisitions",
		"SELECT Acquired FROM Acquisitions AS a, Acquisitions AS b", // ambiguous
		"SELECT z.Acquired FROM Acquisitions AS a",                  // unknown alias
		"SELECT a.Acquired FROM Acquisitions AS a, Roles AS a",      // duplicate alias
	}
	for _, q := range bad {
		stmt, err := sqlparse.Parse(q)
		if err != nil {
			t.Errorf("Parse(%q) failed unexpectedly: %v", q, err)
			continue
		}
		if _, err := stmt.Compile(db); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", q)
		}
	}
}

func TestSelectStarAndDistinct(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := runSQL(t, udb, "SELECT * FROM Roles")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 || len(res.Columns) != 3 {
		t.Fatalf("star select: %d rows × %d cols", len(res.Rows), len(res.Columns))
	}
	res, err = runSQL(t, udb, "SELECT DISTINCT * FROM Roles")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("distinct star: %d rows", len(res.Rows))
	}
	res, err = runSQL(t, udb, "SELECT DISTINCT Organization FROM Roles")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("distinct single column: %d rows, want 2", len(res.Rows))
	}
}

func TestUnionSQL(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := runSQL(t, udb,
		"SELECT Member FROM Roles UNION SELECT Alumni FROM Education")
	if err != nil {
		t.Fatal(err)
	}
	// Five distinct people appear on each side (Nana Alvi repeats), fully
	// overlapping across the two branches.
	if len(res.Rows) != 5 {
		t.Fatalf("union: %d rows, want 5 distinct people", len(res.Rows))
	}
}

func TestWhereVariants(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT * FROM Acquisitions WHERE Date >= 2017-01-01", 2},
		{"SELECT * FROM Acquisitions WHERE Date >= DATE '2017-01-01'", 2},
		{"SELECT * FROM Acquisitions WHERE year(Date) = 2017", 1},
		{"SELECT * FROM Acquisitions WHERE Acquiring = 'Fiffer' AND year(Date) != 2016", 1},
		{"SELECT * FROM Roles WHERE Role LIKE '%found%'", 5},
		{"SELECT * FROM Roles WHERE Role NOT LIKE '%found%'", 1},
		{"SELECT * FROM Education WHERE Year IN (2010, 2005)", 3},
		{"SELECT * FROM Education WHERE Year NOT IN (2010, 2005)", 3},
		{"SELECT * FROM Education WHERE Alumni IS NOT NULL", 6},
		{"SELECT * FROM Education WHERE Alumni IS NULL", 0},
		{"SELECT * FROM Education WHERE NOT (Year = 2017)", 3},
		{"SELECT * FROM Education WHERE Year = 2017 OR Year = 2005", 4},
		{"SELECT * FROM Education WHERE (Year = 2017 OR Year = 2005) AND Institute LIKE 'U.%'", 4},
	}
	for _, c := range cases {
		res, err := runSQL(t, udb, c.sql)
		if err != nil {
			t.Errorf("%q: %v", c.sql, err)
			continue
		}
		if len(res.Rows) != c.want {
			t.Errorf("%q: %d rows, want %d", c.sql, len(res.Rows), c.want)
		}
	}
}

func TestJoinConditionPlacement(t *testing.T) {
	// A three-way join where the second join condition references tables
	// 1 and 3: the condition must attach at the second join, not filter a
	// cross product afterwards.
	udb := testdb.PaperUncertainDB()
	res, err := runSQL(t, udb, `
		SELECT DISTINCT a.Acquired
		FROM Acquisitions AS a, Roles AS r, Education AS e
		WHERE a.Acquired = r.Organization AND r.Member = e.Alumni AND e.Year <= year(a.Date)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(res.Rows))
	}
}

func TestCaseInsensitiveKeywordsAndComments(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := runSQL(t, udb, `
		select distinct organization -- trailing comment
		from Roles where role like '%CTO%'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows, want 1", len(res.Rows))
	}
}

func TestStringEscapes(t *testing.T) {
	db := table.NewDatabase()
	rel := table.NewRelation("t", table.NewSchema(table.Column{Name: "s", Kind: table.KindString}))
	rel.MustAppend(table.Tuple{table.String_("it's")}, nil)
	rel.MustAppend(table.Tuple{table.String_("plain")}, nil)
	db.MustAdd(rel)
	udb := uncertainFor(db)
	res, err := runSQL(t, udb, "SELECT * FROM t WHERE s = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows, want 1", len(res.Rows))
	}
}

func runSQL(t *testing.T, udb *uncertain.DB, query string) (*engine.Result, error) {
	t.Helper()
	plan, err := sqlparse.ParseAndCompile(query, udb.Data())
	if err != nil {
		return nil, err
	}
	return engine.Run(udb, plan)
}

func uncertainFor(db *table.Database) *uncertain.DB { return uncertain.New(db) }

package sqlparse

import "qres/internal/table"

// Stmt is a parsed SPJU query: one or more SELECT blocks combined by
// UNION, with an optional trailing ORDER BY / LIMIT applying to the whole
// result.
type Stmt struct {
	Selects []*SelectStmt
	OrderBy []OrderItem
	// Limit caps the number of output rows; -1 means no limit.
	Limit int
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  ScalarExpr
	Desc bool
}

// SelectStmt is one SELECT block.
type SelectStmt struct {
	Distinct bool
	Star     bool
	Items    []ScalarExpr
	From     []TableRef
	Where    CondExpr // nil when absent
}

// TableRef is an entry of the FROM list.
type TableRef struct {
	Name  string
	Alias string // defaults to Name
}

// ScalarExpr is a parsed scalar: column reference, literal, or year().
type ScalarExpr interface{ scalarNode() }

// ColExpr references a column, optionally qualified.
type ColExpr struct {
	Qualifier string
	Name      string
}

func (ColExpr) scalarNode() {}

// LitExpr is a literal value.
type LitExpr struct {
	Value table.Value
}

func (LitExpr) scalarNode() {}

// YearExpr is the year(<scalar>) function.
type YearExpr struct {
	Of ScalarExpr
}

func (YearExpr) scalarNode() {}

// CondExpr is a parsed condition.
type CondExpr interface{ condNode() }

// CmpCond compares two scalars with =, !=, <, <=, >, >=.
type CmpCond struct {
	Left  ScalarExpr
	Op    string
	Right ScalarExpr
}

func (CmpCond) condNode() {}

// LikeCond is <scalar> [NOT] LIKE 'pattern'.
type LikeCond struct {
	Col     ScalarExpr
	Pattern string
	Negate  bool
}

func (LikeCond) condNode() {}

// InCond is <scalar> [NOT] IN (literals).
type InCond struct {
	Col    ScalarExpr
	Values []table.Value
	Negate bool
}

func (InCond) condNode() {}

// NotNullCond is <scalar> IS [NOT] NULL. The paper's SPU reduction uses IS
// NOT NULL selections.
type NotNullCond struct {
	Col    ScalarExpr
	Negate bool // true for IS NULL
}

func (NotNullCond) condNode() {}

// AndCond conjoins conditions.
type AndCond struct {
	Parts []CondExpr
}

func (AndCond) condNode() {}

// OrCond disjoins conditions.
type OrCond struct {
	Parts []CondExpr
}

func (OrCond) condNode() {}

// NotCond negates a condition (allowed inside selections in the SPJU
// fragment).
type NotCond struct {
	Inner CondExpr
}

func (NotCond) condNode() {}

package sqlparse_test

import (
	"testing"

	"qres/internal/sqlparse"
	"qres/internal/testdb"
)

func TestOrderByAndLimit(t *testing.T) {
	udb := testdb.PaperUncertainDB()

	res, err := runSQL(t, udb, `SELECT Alumni, Year FROM Education ORDER BY Year DESC, Alumni ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Year 2017 first (three rows, alphabetical), then 2010, 2005.
	wantFirst := []string{"Nana Alvi", "Pavel Lebedev", "Usha Koirala"}
	for i, want := range wantFirst {
		if got := res.Rows[i].Tuple[0].AsString(); got != want {
			t.Errorf("row %d = %q, want %q", i, got, want)
		}
		if res.Rows[i].Tuple[1].AsInt() != 2017 {
			t.Errorf("row %d year = %v", i, res.Rows[i].Tuple[1])
		}
	}
	if res.Rows[5].Tuple[1].AsInt() != 2005 {
		t.Errorf("last row year = %v", res.Rows[5].Tuple[1])
	}

	// LIMIT truncates after the ordering. (ORDER BY binds against the
	// output schema, so the key must be projected.)
	res, err = runSQL(t, udb, `SELECT Alumni, Year FROM Education ORDER BY Year LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("limited rows = %d", len(res.Rows))
	}
	if got := res.Rows[0].Tuple[0].AsString(); got != "Amaal Kader" { // year 2005
		t.Errorf("first = %q", got)
	}

	// LIMIT 0 and oversized limits.
	res, err = runSQL(t, udb, `SELECT Alumni FROM Education LIMIT 0`)
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0: rows=%d err=%v", len(res.Rows), err)
	}
	res, err = runSQL(t, udb, `SELECT Alumni FROM Education LIMIT 100`)
	if err != nil || len(res.Rows) != 6 {
		t.Fatalf("LIMIT 100: rows=%d err=%v", len(res.Rows), err)
	}
}

func TestOrderByAppliesToUnion(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	res, err := runSQL(t, udb, `
		SELECT Member FROM Roles
		UNION SELECT Alumni FROM Education
		ORDER BY Member DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Tuple[0].AsString() != "Usha Koirala" {
		t.Fatalf("got %v", res.Rows)
	}
}

func TestOrderByQualifiedAndYear(t *testing.T) {
	udb := testdb.PaperUncertainDB()
	// ORDER BY over a star select can reference qualified columns.
	res, err := runSQL(t, udb, `SELECT * FROM Acquisitions AS a ORDER BY year(a.Date) DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Tuple[0].AsString() != "A2Bdone" { // 2020 acquisition
		t.Fatalf("got %v", res.Rows[0].Tuple)
	}
}

func TestOrderByLimitErrors(t *testing.T) {
	bad := []string{
		"SELECT x FROM t ORDER x",
		"SELECT x FROM t ORDER BY",
		"SELECT x FROM t LIMIT",
		"SELECT x FROM t LIMIT 'five'",
		"SELECT x FROM t LIMIT 1.5",
	}
	for _, q := range bad {
		if _, err := parseOnly(q); err == nil {
			t.Errorf("Parse(%q) succeeded", q)
		}
	}
	// Unknown ORDER BY column fails at bind time.
	udb := testdb.PaperUncertainDB()
	if _, err := runSQL(t, udb, `SELECT Alumni FROM Education ORDER BY nope`); err == nil {
		t.Error("unknown ORDER BY column accepted")
	}
	// ORDER BY binds against the output schema: a projected-away column
	// is rejected.
	if _, err := runSQL(t, udb, `SELECT Alumni FROM Education ORDER BY Year LIMIT 3`); err == nil {
		t.Error("projected-away ORDER BY key accepted")
	}
}

func parseOnly(q string) (interface{}, error) {
	return sqlparse.Parse(q)
}

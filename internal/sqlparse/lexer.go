// Package sqlparse implements a front-end for the SPJU SQL fragment the
// paper works with (Section 2.1): SELECT [DISTINCT] over comma-joined
// relations with conjunctive/disjunctive WHERE conditions (comparisons,
// LIKE, IN, IS NOT NULL, NOT inside conditions), combined with UNION.
// Queries compile to internal/engine algebra plans with single-table
// predicate pushdown and join-condition placement, so the engine's hash
// joins apply.
//
// The fragment deliberately excludes nesting, aggregation and negation at
// the operator level — exactly the paper's query class, for which
// provenance is monotone k-DNF.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokDate // yyyy.mm.dd or yyyy-mm-dd numeric date literal
	tokSymbol
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer scans the input into tokens. Identifiers and keywords are
// case-insensitive; keyword recognition happens in the parser via
// case-folded comparison.
type lexer struct {
	input string
	pos   int
	toks  []token
}

func lex(input string) ([]token, error) {
	l := &lexer{input: input}
	for {
		l.skipSpace()
		if l.pos >= len(l.input) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		c := l.input[l.pos]
		switch {
		case isIdentStart(c):
			l.lexIdent()
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == '-' && l.pos+1 < len(l.input) && l.input[l.pos+1] == '-' {
			// SQL line comment.
			for l.pos < len(l.input) && l.input[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
		l.pos++
	}
	l.emit(tokIdent, l.input[start:l.pos], start)
}

// lexNumber scans integers, decimals, and the paper's dotted date literals
// (2017.01.01). A number with exactly two dot-separated integer groups is
// a decimal; three groups form a date. Dash-separated dates (2017-01-01)
// are handled at parse level via the DATE keyword or quoted strings, and
// also directly here when the shape matches digits-dash-digits-dash-digits
// with no spaces.
func (l *lexer) lexNumber() error {
	start := l.pos
	digits := func() {
		for l.pos < len(l.input) && l.input[l.pos] >= '0' && l.input[l.pos] <= '9' {
			l.pos++
		}
	}
	digits()
	groups := 1
	for l.pos < len(l.input) && l.input[l.pos] == '.' &&
		l.pos+1 < len(l.input) && l.input[l.pos+1] >= '0' && l.input[l.pos+1] <= '9' {
		l.pos++
		digits()
		groups++
	}
	text := l.input[start:l.pos]
	switch groups {
	case 3:
		l.emit(tokDate, strings.ReplaceAll(text, ".", "-"), start)
	case 1, 2:
		// Check for a dash-separated date: 2017-01-01 (only when the
		// integer has 4 digits, so subtraction expressions, which the
		// fragment does not support anyway, cannot be confused).
		if groups == 1 && l.pos-start == 4 && l.peekDashDate() {
			l.pos++ // '-'
			digits()
			l.pos++ // '-'
			digits()
			l.emit(tokDate, l.input[start:l.pos], start)
			return nil
		}
		l.emit(tokNumber, text, start)
	default:
		return fmt.Errorf("sqlparse: malformed number %q at %d", text, start)
	}
	return nil
}

// peekDashDate reports whether the input continues with -dd-dd.
func (l *lexer) peekDashDate() bool {
	rest := l.input[l.pos:]
	if len(rest) < 6 || rest[0] != '-' {
		return false
	}
	i := 1
	for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
		i++
	}
	if i == 1 || i >= len(rest) || rest[i] != '-' {
		return false
	}
	j := i + 1
	for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
		j++
	}
	return j > i+1
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.input) && l.input[l.pos+1] == '\'' {
				b.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokString, b.String(), start)
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparse: unterminated string at %d", start)
}

func (l *lexer) lexSymbol() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.input) {
		two = l.input[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "!=", "<>":
		l.pos += 2
		l.emit(tokSymbol, two, start)
		return nil
	}
	c := l.input[l.pos]
	switch c {
	case ',', '(', ')', '=', '<', '>', '*', '.':
		l.pos++
		l.emit(tokSymbol, string(c), start)
		return nil
	}
	return fmt.Errorf("sqlparse: unexpected character %q at %d", c, start)
}

package learn

import "runtime"

// streamSeed derives the seed of the i-th parallel RNG stream from a master
// seed with a splitmix64-style finalizer. Workers that fit trees (or run
// synthetic LAL tasks) concurrently each construct their own rand.Rand from
// streamSeed(seed, i), so the randomness a unit of work consumes depends
// only on (seed, i) — never on scheduling — which is what makes training
// bit-identical for any worker count.
func streamSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// EffectiveWorkers resolves a Workers configuration value: 0 (or negative)
// means one worker per available CPU, anything else is taken as given.
func EffectiveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// Package learn implements the machine-learning substrate of the
// framework's Learner module (paper Section 4): a categorical decision-tree
// classifier, a random forest with vote-fraction probability estimation
// (the paper's default, 100 trees), a naive Bayes classifier (the paper's
// comparison model), a regression forest, and Learning Active Learning
// (LAL [59]) for estimating the uncertainty reduction a candidate probe
// would yield.
//
// Everything is written from scratch on the standard library; the paper's
// prototype used scikit-learn for the same algorithms.
package learn

import (
	"fmt"
	"sort"
)

// Unknown is the category code for attribute values never seen by the
// encoder (including missing attributes).
const Unknown int32 = -1

// Encoder maps tuple metadata (attribute name → string value) to dense
// categorical feature vectors. Attribute order and value dictionaries are
// fixed at construction from a sample of metadata maps, so encoding is
// stable across the lifetime of a resolution session.
type Encoder struct {
	attrs []string
	dicts []map[string]int32
}

// NewEncoder builds an encoder from the attribute universe observed in
// metas: one feature per attribute name, one category code per observed
// value. Attributes are sorted by name for determinism.
func NewEncoder(metas []map[string]string) *Encoder {
	attrSet := make(map[string]struct{})
	for _, m := range metas {
		for a := range m {
			attrSet[a] = struct{}{}
		}
	}
	attrs := make([]string, 0, len(attrSet))
	for a := range attrSet {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)

	enc := &Encoder{attrs: attrs, dicts: make([]map[string]int32, len(attrs))}
	for i := range enc.dicts {
		enc.dicts[i] = make(map[string]int32)
	}
	for _, m := range metas {
		for i, a := range attrs {
			if v, ok := m[a]; ok {
				if _, seen := enc.dicts[i][v]; !seen {
					enc.dicts[i][v] = int32(len(enc.dicts[i]))
				}
			}
		}
	}
	return enc
}

// NumFeatures returns the number of encoded features (attributes).
func (e *Encoder) NumFeatures() int { return len(e.attrs) }

// Attr returns the attribute name of feature f.
func (e *Encoder) Attr(f int) string { return e.attrs[f] }

// Cardinality returns the number of known codes of feature f.
func (e *Encoder) Cardinality(f int) int { return len(e.dicts[f]) }

// Covers reports whether meta lies entirely inside the encoder's
// attribute/value universe: every attribute is a known feature and every
// value has a category code. When it holds, rebuilding the encoder with
// meta included would reproduce this encoder exactly (attribute order and
// value dictionaries are first-occurrence stable), so warm-started
// learners may keep the encoder — and every feature vector encoded under
// it — instead of re-encoding the world.
func (e *Encoder) Covers(meta map[string]string) bool {
	for a, v := range meta {
		i := sort.SearchStrings(e.attrs, a)
		if i >= len(e.attrs) || e.attrs[i] != a {
			return false
		}
		if _, ok := e.dicts[i][v]; !ok {
			return false
		}
	}
	return true
}

// Encode maps metadata to a feature vector. Missing or unseen values
// encode as Unknown.
func (e *Encoder) Encode(meta map[string]string) []int32 {
	x := make([]int32, len(e.attrs))
	for i, a := range e.attrs {
		code := Unknown
		if v, ok := meta[a]; ok {
			if c, seen := e.dicts[i][v]; seen {
				code = c
			}
		}
		x[i] = code
	}
	return x
}

// Dataset is a labeled sample for binary classification: rows of
// categorical feature codes with Boolean labels (tuple correctness).
type Dataset struct {
	X [][]int32
	Y []bool
}

// Add appends one labeled example.
func (d *Dataset) Add(x []int32, y bool) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Y) }

// NumFeatures returns the feature-vector width (0 for an empty dataset).
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks internal consistency (equal lengths, uniform width).
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("learn: %d feature rows but %d labels", len(d.X), len(d.Y))
	}
	w := d.NumFeatures()
	for i, x := range d.X {
		if len(x) != w {
			return fmt.Errorf("learn: row %d has width %d, want %d", i, len(x), w)
		}
	}
	return nil
}

// PositiveFraction returns the fraction of True labels (0.5 on empty data,
// the uninformed prior the framework's EP mode uses).
func (d *Dataset) PositiveFraction() float64 {
	if len(d.Y) == 0 {
		return 0.5
	}
	n := 0
	for _, y := range d.Y {
		if y {
			n++
		}
	}
	return float64(n) / float64(len(d.Y))
}

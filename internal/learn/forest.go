package learn

import (
	"math"
	"math/rand"
	"time"

	"qres/internal/obs"
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	// Trees is the ensemble size; the paper uses 100 by default.
	Trees int
	// MaxDepth bounds individual trees; 0 means unbounded.
	MaxDepth int
	// MinLeaf is the minimum examples per leaf.
	MinLeaf int
	// Seed makes training deterministic.
	Seed int64
	// Obs, when non-nil, receives a forest_fit span per training run.
	Obs *obs.Obs
}

// DefaultForestConfig mirrors the paper's setup: 100 trees, unbounded
// depth, leaves down to a single example.
func DefaultForestConfig(seed int64) ForestConfig {
	return ForestConfig{Trees: 100, Seed: seed}
}

// Forest is a random-forest binary classifier with the standard
// probability generalization the paper relies on (Section 4): "considering
// each tree as a 'vote' for the class it assigns ... and using the
// percentage of votes as the probability".
type Forest struct {
	trees []*Tree
	nf    int
	cfg   ForestConfig
}

// FitForest trains a forest on d: each tree sees a bootstrap sample of the
// rows and √d-feature subsampling per split. Training is deterministic in
// cfg.Seed. An empty dataset yields a forest that predicts 0.5 everywhere.
func FitForest(d *Dataset, cfg ForestConfig) *Forest {
	if cfg.Trees <= 0 {
		cfg.Trees = 100
	}
	start := time.Now()
	f := &Forest{nf: d.NumFeatures(), cfg: cfg}
	if d.Len() == 0 {
		return f
	}
	featSample := int(math.Ceil(math.Sqrt(float64(d.NumFeatures()))))
	rng := rand.New(rand.NewSource(cfg.Seed))
	for t := 0; t < cfg.Trees; t++ {
		// Bootstrap sample (with replacement, same size as the data).
		idx := make([]int, d.Len())
		for i := range idx {
			idx[i] = rng.Intn(d.Len())
		}
		tree := FitTree(d, idx, TreeConfig{
			MaxDepth:      cfg.MaxDepth,
			MinLeaf:       cfg.MinLeaf,
			FeatureSample: featSample,
		}, rng)
		f.trees = append(f.trees, tree)
	}
	cfg.Obs.Emit(obs.StageForestFit, -1, start, time.Since(start),
		obs.Int("trees", cfg.Trees), obs.Int("examples", d.Len()),
		obs.Int("features", d.NumFeatures()))
	return f
}

// NumTrees returns the ensemble size (0 before training on data).
func (f *Forest) NumTrees() int { return len(f.trees) }

// ProbTrue estimates P(correct | x) as the fraction of trees voting True.
func (f *Forest) ProbTrue(x []int32) float64 {
	if len(f.trees) == 0 {
		return 0.5
	}
	votes := 0
	for _, t := range f.trees {
		if t.Predict(x) {
			votes++
		}
	}
	return float64(votes) / float64(len(f.trees))
}

// VoteStats returns the mean and variance of the per-tree soft
// probabilities for x. The variance is a disagreement measure LAL uses as
// a learning-state feature.
func (f *Forest) VoteStats(x []int32) (mean, variance float64) {
	if len(f.trees) == 0 {
		return 0.5, 0
	}
	var sum, sq float64
	for _, t := range f.trees {
		p := t.ProbTrue(x)
		sum += p
		sq += p * p
	}
	n := float64(len(f.trees))
	mean = sum / n
	variance = sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// Predict returns the majority-vote class for x.
func (f *Forest) Predict(x []int32) bool { return f.ProbTrue(x) >= 0.5 }

// FeatureImportances returns the normalized mean decrease in impurity per
// feature (summing to 1 when any split exists), the statistic the paper's
// Section 7.4 feature-importance analysis reports.
func (f *Forest) FeatureImportances() []float64 {
	imp := make([]float64, f.nf)
	for _, t := range f.trees {
		t.accumulateImportance(imp)
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// Accuracy evaluates classification accuracy on a labeled dataset.
func (f *Forest) Accuracy(d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i, x := range d.X {
		if f.Predict(x) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

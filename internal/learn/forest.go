package learn

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"qres/internal/obs"
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	// Trees is the ensemble size; the paper uses 100 by default.
	Trees int
	// MaxDepth bounds individual trees; 0 means unbounded.
	MaxDepth int
	// MinLeaf is the minimum examples per leaf.
	MinLeaf int
	// Seed makes training deterministic.
	Seed int64
	// Workers bounds tree-level training parallelism: 0 defaults to one
	// worker per CPU, 1 forces serial training. The trained ensemble is
	// bit-identical for every value — each tree consumes its own RNG
	// stream derived from (Seed, tree index) and lands positionally in
	// the ensemble, so scheduling never influences the model.
	Workers int
	// Obs, when non-nil, receives a forest_fit span per training run.
	Obs *obs.Obs
}

// DefaultForestConfig mirrors the paper's setup: 100 trees, unbounded
// depth, leaves down to a single example.
func DefaultForestConfig(seed int64) ForestConfig {
	return ForestConfig{Trees: 100, Seed: seed}
}

// Forest is a random-forest binary classifier with the standard
// probability generalization the paper relies on (Section 4): "considering
// each tree as a 'vote' for the class it assigns ... and using the
// percentage of votes as the probability".
type Forest struct {
	trees []*Tree
	nf    int
	cfg   ForestConfig
}

// FitForest trains a forest on d: each tree sees a bootstrap sample of the
// rows and √d-feature subsampling per split. Training is deterministic in
// cfg.Seed for any cfg.Workers value. An empty dataset yields a forest
// that predicts 0.5 everywhere.
func FitForest(d *Dataset, cfg ForestConfig) *Forest {
	if cfg.Trees <= 0 {
		cfg.Trees = 100
	}
	start := time.Now()
	f := &Forest{nf: d.NumFeatures(), cfg: cfg}
	if d.Len() == 0 {
		return f
	}
	featSample := int(math.Ceil(math.Sqrt(float64(d.NumFeatures()))))
	tcfg := TreeConfig{MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf, FeatureSample: featSample}
	n, mc, nf := d.Len(), maxCode(d), d.NumFeatures()
	f.trees = make([]*Tree, cfg.Trees)

	// fitOne trains tree t from its own deterministic RNG stream into a
	// worker-owned scratch (bootstrap indices and split-count buffers are
	// pooled across the worker's trees) and writes it positionally.
	fitOne := func(sc *treeScratch, t int) {
		rng := rand.New(rand.NewSource(streamSeed(cfg.Seed, t)))
		idx := sc.idx[:n]
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		f.trees[t] = fitNode(d, idx, tcfg, rng, 0, float64(n), sc)
	}

	workers := EffectiveWorkers(cfg.Workers)
	if workers > cfg.Trees {
		workers = cfg.Trees
	}
	if workers <= 1 {
		sc := newTreeScratch(n, mc, nf)
		for t := 0; t < cfg.Trees; t++ {
			fitOne(sc, t)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := newTreeScratch(n, mc, nf)
				for {
					t := int(atomic.AddInt64(&next, 1))
					if t >= cfg.Trees {
						return
					}
					fitOne(sc, t)
				}
			}()
		}
		wg.Wait()
	}
	cfg.Obs.Emit(obs.StageForestFit, -1, start, time.Since(start),
		obs.Int("trees", cfg.Trees), obs.Int("examples", d.Len()),
		obs.Int("features", d.NumFeatures()), obs.Int("workers", workers))
	return f
}

// NumTrees returns the ensemble size (0 before training on data).
func (f *Forest) NumTrees() int { return len(f.trees) }

// ProbTrue estimates P(correct | x) as the fraction of trees voting True.
func (f *Forest) ProbTrue(x []int32) float64 {
	if len(f.trees) == 0 {
		return 0.5
	}
	votes := 0
	for _, t := range f.trees {
		if t.Predict(x) {
			votes++
		}
	}
	return float64(votes) / float64(len(f.trees))
}

// ProbTrueBatch estimates P(correct | x) for every vector in xs, writing
// into out (reused when it has capacity, so steady-state callers allocate
// nothing per candidate). Trees traverse in the outer loop, so each
// tree's nodes stay hot across the whole batch. Results equal per-call
// ProbTrue bit for bit: votes are small integers, exact in float64.
func (f *Forest) ProbTrueBatch(xs [][]int32, out []float64) []float64 {
	out = sizedFloats(out, len(xs))
	if len(f.trees) == 0 {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	for i := range out {
		out[i] = 0
	}
	for _, t := range f.trees {
		for i, x := range xs {
			if t.Predict(x) {
				out[i]++
			}
		}
	}
	n := float64(len(f.trees))
	for i := range out {
		out[i] /= n
	}
	return out
}

// VoteStats returns the mean and variance of the per-tree soft
// probabilities for x. The variance is a disagreement measure LAL uses as
// a learning-state feature.
func (f *Forest) VoteStats(x []int32) (mean, variance float64) {
	if len(f.trees) == 0 {
		return 0.5, 0
	}
	var sum, sq float64
	for _, t := range f.trees {
		p := t.ProbTrue(x)
		sum += p
		sq += p * p
	}
	n := float64(len(f.trees))
	mean = sum / n
	variance = sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// VoteStatsBatch computes VoteStats for every vector in xs, accumulating
// into the reusable means/variances buffers (grown only when capacity is
// short). Per-candidate accumulation follows tree order, so the returned
// floats equal per-call VoteStats exactly.
func (f *Forest) VoteStatsBatch(xs [][]int32, means, variances []float64) (m, v []float64) {
	means = sizedFloats(means, len(xs))
	variances = sizedFloats(variances, len(xs))
	if len(f.trees) == 0 {
		for i := range means {
			means[i], variances[i] = 0.5, 0
		}
		return means, variances
	}
	for i := range means {
		means[i], variances[i] = 0, 0
	}
	for _, t := range f.trees {
		for i, x := range xs {
			p := t.ProbTrue(x)
			means[i] += p
			variances[i] += p * p
		}
	}
	n := float64(len(f.trees))
	for i := range means {
		mean := means[i] / n
		va := variances[i]/n - mean*mean
		if va < 0 {
			va = 0
		}
		means[i], variances[i] = mean, va
	}
	return means, variances
}

// sizedFloats returns buf resliced to n, reallocating only when capacity
// is insufficient.
func sizedFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// Predict returns the majority-vote class for x.
func (f *Forest) Predict(x []int32) bool { return f.ProbTrue(x) >= 0.5 }

// FeatureImportances returns the normalized mean decrease in impurity per
// feature (summing to 1 when any split exists), the statistic the paper's
// Section 7.4 feature-importance analysis reports.
func (f *Forest) FeatureImportances() []float64 {
	imp := make([]float64, f.nf)
	for _, t := range f.trees {
		t.accumulateImportance(imp)
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// Accuracy evaluates classification accuracy on a labeled dataset.
func (f *Forest) Accuracy(d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i, x := range d.X {
		if f.Predict(x) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

package learn

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// RegDataset is a sample for regression: rows of numeric features with
// float targets. LAL regresses expected error reduction on learning-state
// features.
type RegDataset struct {
	X [][]float64
	Y []float64
}

// Add appends one example.
func (d *RegDataset) Add(x []float64, y float64) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Len returns the number of examples.
func (d *RegDataset) Len() int { return len(d.Y) }

// NumFeatures returns the feature width (0 for an empty dataset).
func (d *RegDataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// regTree is a binary regression tree with numeric threshold splits
// (x[feature] <= threshold goes left) minimizing within-node variance.
type regTree struct {
	feature     int
	threshold   float64
	left, right *regTree
	value       float64
	leaf        bool
}

// regTreeConfig controls regression-tree induction.
type regTreeConfig struct {
	maxDepth      int
	minLeaf       int
	featureSample int
}

func fitRegTree(d *RegDataset, idx []int, cfg regTreeConfig, rng *rand.Rand, depth int) *regTree {
	if len(idx) == 0 {
		return &regTree{leaf: true}
	}
	mean := 0.0
	for _, i := range idx {
		mean += d.Y[i]
	}
	mean /= float64(len(idx))
	minLeaf := cfg.minLeaf
	if minLeaf <= 0 {
		minLeaf = 1
	}
	if (cfg.maxDepth > 0 && depth >= cfg.maxDepth) || len(idx) < 2*minLeaf {
		return &regTree{leaf: true, value: mean}
	}

	feature, threshold, ok := bestRegSplit(d, idx, cfg, rng)
	if !ok {
		return &regTree{leaf: true, value: mean}
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < minLeaf || len(right) < minLeaf {
		return &regTree{leaf: true, value: mean}
	}
	return &regTree{
		feature:   feature,
		threshold: threshold,
		left:      fitRegTree(d, left, cfg, rng, depth+1),
		right:     fitRegTree(d, right, cfg, rng, depth+1),
	}
}

// bestRegSplit finds the (feature, threshold) split minimizing the summed
// squared error of the two children, scanning sorted feature values with
// running sums (the standard O(n log n) CART scan).
func bestRegSplit(d *RegDataset, idx []int, cfg regTreeConfig, rng *rand.Rand) (int, float64, bool) {
	nf := d.NumFeatures()
	features := make([]int, nf)
	for i := range features {
		features[i] = i
	}
	if cfg.featureSample > 0 && cfg.featureSample < nf && rng != nil {
		rng.Shuffle(nf, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:cfg.featureSample]
	}

	var totalSum, totalSq float64
	for _, i := range idx {
		totalSum += d.Y[i]
		totalSq += d.Y[i] * d.Y[i]
	}
	n := float64(len(idx))
	parentSSE := totalSq - totalSum*totalSum/n

	bestGain := 1e-12
	bestFeature, bestThreshold := -1, 0.0
	order := make([]int, len(idx))
	for _, f := range features {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return d.X[order[a]][f] < d.X[order[b]][f] })
		var leftSum, leftSq float64
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			leftSum += d.Y[i]
			leftSq += d.Y[i] * d.Y[i]
			x0, x1 := d.X[i][f], d.X[order[k+1]][f]
			if x0 == x1 {
				continue
			}
			nl := float64(k + 1)
			nr := n - nl
			sseL := leftSq - leftSum*leftSum/nl
			sseR := (totalSq - leftSq) - (totalSum-leftSum)*(totalSum-leftSum)/nr
			gain := parentSSE - sseL - sseR
			if gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestThreshold = (x0 + x1) / 2
			}
		}
	}
	return bestFeature, bestThreshold, bestFeature >= 0
}

func (t *regTree) predict(x []float64) float64 {
	node := t
	for !node.leaf {
		if x[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.value
}

// RegForestConfig controls regression-forest training.
type RegForestConfig struct {
	Trees    int
	MaxDepth int
	MinLeaf  int
	Seed     int64
	// Workers bounds tree-level parallelism (0 = one per CPU, 1 =
	// serial); the ensemble is bit-identical for any value, exactly as in
	// ForestConfig.Workers.
	Workers int
}

// RegForest is a random forest of regression trees: bootstrap rows,
// subsampled features, averaged predictions.
type RegForest struct {
	trees []*regTree
}

// FitRegForest trains a regression forest on d, deterministic in cfg.Seed
// for any cfg.Workers value: every tree draws from its own seed-derived
// RNG stream and lands positionally in the ensemble.
func FitRegForest(d *RegDataset, cfg RegForestConfig) *RegForest {
	if cfg.Trees <= 0 {
		cfg.Trees = 50
	}
	f := &RegForest{}
	if d.Len() == 0 {
		return f
	}
	featSample := d.NumFeatures()/3 + 1 // the regression-forest convention d/3
	n := d.Len()
	f.trees = make([]*regTree, cfg.Trees)
	fitOne := func(idx []int, t int) {
		rng := rand.New(rand.NewSource(streamSeed(cfg.Seed, t)))
		idx = idx[:n]
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		f.trees[t] = fitRegTree(d, idx, regTreeConfig{
			maxDepth:      cfg.MaxDepth,
			minLeaf:       cfg.MinLeaf,
			featureSample: featSample,
		}, rng, 0)
	}
	workers := EffectiveWorkers(cfg.Workers)
	if workers > cfg.Trees {
		workers = cfg.Trees
	}
	if workers <= 1 {
		idx := make([]int, n)
		for t := 0; t < cfg.Trees; t++ {
			fitOne(idx, t)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				idx := make([]int, n)
				for {
					t := int(atomic.AddInt64(&next, 1))
					if t >= cfg.Trees {
						return
					}
					fitOne(idx, t)
				}
			}()
		}
		wg.Wait()
	}
	return f
}

// Predict returns the forest-averaged regression estimate for x.
func (f *RegForest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	var sum float64
	for _, t := range f.trees {
		sum += t.predict(x)
	}
	return sum / float64(len(f.trees))
}

// NumTrees returns the ensemble size.
func (f *RegForest) NumTrees() int { return len(f.trees) }
